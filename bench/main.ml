(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Tables 1-4, Figures 7-8, the §5.5 overhead
   numbers, plus the DESIGN.md ablations), then runs bechamel
   micro-benchmarks over the performance-critical primitives.

   Budgets scale with EOF_BENCH_SCALE (default 1.0). *)

open Eof_expt
module Text_table = Eof_util.Text_table

let section title = print_endline (Text_table.section title)

(* --- paper artifacts -------------------------------------------------- *)

let run_artifacts () =
  let t0 = Unix.gettimeofday () in
  section "Table 1: supported targets (EOF vs GDBFuzz vs Tardis vs SHIFT)";
  print_endline (Table1.render ());

  let iterations = Runner.scaled 3000 in
  Printf.printf "\n[full-system matrix: %d payloads x %d seeds per tool/OS...]\n%!"
    iterations Runner.repetitions;
  let cells = Runner.full_system_matrix ~iterations () in

  section "Table 2: previously unknown bugs detected by EOF";
  print_endline (Table2.render cells);

  section "Table 3: coverage comparison (EOF / EOF-nf / Tardis / Gustave)";
  print_endline (Table3.render cells);

  section "Figure 7: coverage growth on four embedded OSs (24 virtual hours)";
  print_endline (Fig7.render ~iterations cells);
  let csv_out path text =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
    Printf.printf "[series data written to %s]\n" path
  in
  csv_out "fig7.csv" (Fig7.to_csv ~iterations cells);

  let app_iterations = Runner.scaled 2000 in
  Printf.printf "\n[application-level matrix: %d payloads x %d seeds per tool/component...]\n%!"
    app_iterations Runner.repetitions;
  let app_cells = App_level.matrix ~iterations:app_iterations () in

  section "Table 4: application-level coverage (EOF / GDBFuzz / SHIFT)";
  print_endline (Table4.render app_cells);

  section "Figure 8: application-level coverage growth";
  print_endline (Fig8.render ~iterations:app_iterations app_cells);
  csv_out "fig8.csv" (Fig8.to_csv ~iterations:app_iterations app_cells);

  section "Section 5.5.1: memory overhead of instrumentation";
  print_endline (Overhead.render_memory ());

  section "Section 5.5.2: execution overhead of instrumentation";
  print_endline (Overhead.render_execution ());

  section "Ablation A1: PC-stall liveness watchdog";
  print_endline (Ablation.render_a1 ());

  section "Ablation A2: dependency-aware generation";
  print_endline (Ablation.render_a2 ());

  section "Extension E1: interrupt-path fuzzing via peripheral event injection";
  print_endline (Ablation.render_irq ());

  Printf.printf "\n[artifact regeneration took %.1f s]\n%!" (Unix.gettimeofday () -. t0)

(* --- micro-benchmarks -------------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let open Eof_hw in
  (* RSP frame round-trip. *)
  let rsp_payload = Eof_debug.Rsp.render_command (Eof_debug.Rsp.Read_mem { addr = 0x20000000; len = 64 }) in
  let rsp_frame = Eof_debug.Rsp.make_frame rsp_payload in
  let t_rsp =
    Test.make ~name:"rsp_decode" (Staged.stage (fun () ->
        let d = Eof_debug.Rsp.Decoder.create () in
        ignore (Eof_debug.Rsp.Decoder.feed d rsp_frame : Eof_debug.Rsp.Decoder.event list)))
  in
  (* CRC over a 4 KiB sector. *)
  let sector = String.make 4096 '\x5A' in
  let t_crc =
    Test.make ~name:"crc32_4k" (Staged.stage (fun () ->
        ignore (Eof_util.Crc32.digest_string sector : int32)))
  in
  (* Wire encode/decode of a mid-size program. *)
  let prog =
    List.init 12 (fun i ->
        { Eof_agent.Wire.api_index = i; args = [ Eof_agent.Wire.W_int 42L; Eof_agent.Wire.W_str "payload" ] })
  in
  let encoded =
    match Eof_agent.Wire.encode ~endianness:Arch.Little prog with
    | Ok s -> s
    | Error e -> failwith e
  in
  let t_wire_enc =
    Test.make ~name:"wire_encode" (Staged.stage (fun () ->
        ignore (Eof_agent.Wire.encode ~endianness:Arch.Little prog : (string, string) result)))
  in
  let t_wire_dec =
    Test.make ~name:"wire_decode" (Staged.stage (fun () ->
        ignore
          (Eof_agent.Wire.decode ~endianness:Arch.Little encoded
            : (Eof_agent.Wire.program, string) result)))
  in
  (* Spec parse of the synthesized Zephyr spec. *)
  let zephyr_build =
    Eof_os.Osbuild.make ~board_profile:Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  let spec_text =
    Eof_spec.Synth.syzlang_of_api (Eof_os.Osbuild.api_signatures zephyr_build)
  in
  let t_spec =
    Test.make ~name:"spec_parse" (Staged.stage (fun () ->
        ignore (Eof_spec.Parser.parse spec_text : (Eof_spec.Ast.t, string) result)))
  in
  (* Program generation. *)
  let table = Eof_os.Osbuild.api_signatures zephyr_build in
  let spec = match Eof_spec.Synth.validated_of_api table with Ok s -> s | Error e -> failwith e in
  let gen = Eof_core.Gen.create ~rng:(Eof_util.Rng.create 1L) ~spec ~table () in
  let t_gen =
    Test.make ~name:"prog_generate" (Staged.stage (fun () ->
        ignore (Eof_core.Gen.generate gen ~max_len:12 : Eof_core.Prog.t)))
  in
  (* Heap allocator churn. *)
  let ram = Memory.create ~base:0x2000_0000 ~size:65536 ~endianness:Arch.Little in
  let heap =
    match Eof_rtos.Heap.init ~mem:ram ~base:0x2000_1000 ~size:8192 with
    | Ok h -> h
    | Error e -> failwith e
  in
  let t_heap =
    Test.make ~name:"heap_alloc_free" (Staged.stage (fun () ->
        match Eof_rtos.Heap.alloc heap 64 with
        | Some a -> ignore (Eof_rtos.Heap.free heap a : (unit, string) result)
        | None -> ()))
  in
  (* JSON parse. *)
  let json_text = "{\"s\":\"v\",\"n\":-3.5e2,\"b\":true,\"a\":[1,2,3],\"o\":{\"k\":null}}" in
  let null_instr = Eof_rtos.Instr.null ~count:64 in
  let t_json =
    Test.make ~name:"json_parse" (Staged.stage (fun () ->
        ignore
          (Eof_exec.Target.run_silent (fun () -> Eof_apps.Json.parse ~instr:null_instr json_text)
            : (Eof_apps.Json.t, string) result)))
  in
  (* Coverage record decode (a full buffer's worth). *)
  let raw_records = String.init 4096 (fun i -> Char.chr (i land 0xFF)) in
  let t_cov =
    Test.make ~name:"cov_decode_1k" (Staged.stage (fun () ->
        ignore
          (Eof_cov.Sancov.decode_records ~endianness:Arch.Little ~count:1024 raw_records
            : int list)))
  in
  (* The same decode through the allocation-free hot path: straight into
     a reused scratch array, no per-record list cells. *)
  let scratch = Array.make 1024 0 in
  let t_cov_into =
    Test.make ~name:"cov_decode_into_1k" (Staged.stage (fun () ->
        ignore
          (Eof_cov.Sancov.decode_records_into ~endianness:Arch.Little ~count:1024
             raw_records scratch
            : int)))
  in
  (* vBatch codec round-trip for a full fused drain request. *)
  let batch_ops =
    [
      Eof_debug.Rsp.B_continue;
      Eof_debug.Rsp.B_read_counted
        { count_addr = 0x2000_0000; data_addr = 0x2000_0004; stride = 4;
          max_count = 1024; reset = true };
      Eof_debug.Rsp.B_read_counted
        { count_addr = 0x2000_2000; data_addr = 0x2000_2004; stride = 8;
          max_count = 1024; reset = true };
      Eof_debug.Rsp.B_monitor "uart";
    ]
  in
  let batch_wire = Eof_debug.Rsp.render_batch_ops batch_ops in
  let t_batch =
    Test.make ~name:"vbatch_codec" (Staged.stage (fun () ->
        ignore
          (Eof_debug.Rsp.parse_batch_ops batch_wire
            : (Eof_debug.Rsp.batch_op list, Eof_util.Eof_error.t) result)))
  in
  [ t_rsp; t_crc; t_wire_enc; t_wire_dec; t_spec; t_gen; t_heap; t_json; t_cov;
    t_cov_into; t_batch ]

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  section "Micro-benchmarks (bechamel, monotonic clock)";
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw =
    Benchmark.all cfg [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"eof" ~fmt:"%s/%s" (micro_tests ()))
  in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows = List.sort compare !rows in
  print_endline
    (Text_table.render
       ~align:[ Text_table.Left; Text_table.Right ]
       ~header:[ "operation"; "time/run" ]
       (List.map
          (fun (name, ns) ->
            let time =
              if Float.is_nan ns then "n/a"
              else if ns > 1_000_000. then Printf.sprintf "%.2f ms" (ns /. 1e6)
              else if ns > 1_000. then Printf.sprintf "%.2f us" (ns /. 1e3)
              else Printf.sprintf "%.1f ns" ns
            in
            [ name; time ])
          rows));
  rows

(* --- debug-link batching comparison ------------------------------------ *)

type link_stats = {
  mode : string;
  exchanges : int;
  requests : int;
  elapsed_us : float;
  coverage : int;
  crash_events : int;
  payloads : int;
  counters : (string * int) list;  (* full obs counter snapshot *)
}

let run_linked_campaign ~batch_link ~iterations =
  let build =
    Eof_os.Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  (* A sinkless bus: events stay off, but the monotonic counters
     accumulate — the per-payload link numbers in BENCH.json's "obs"
     section come from this snapshot. *)
  let obs = Eof_obs.Obs.create () in
  let transport = Eof_debug.Transport.create ~obs () in
  let machine =
    match Eof_agent.Machine.create ~obs ~transport build with
    | Ok m -> m
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let config = { Eof_core.Campaign.default_config with iterations; seed = 11L; batch_link } in
  match Eof_core.Campaign.run ~machine ~obs config build with
  | Error e -> failwith (Eof_util.Eof_error.to_string e)
  | Ok o ->
    {
      mode = (if batch_link then "batched" else "unbatched");
      exchanges = Eof_debug.Transport.exchanges transport;
      requests = Eof_debug.Session.requests (Eof_agent.Machine.session machine);
      elapsed_us = Eof_debug.Transport.elapsed_us transport;
      coverage = o.Eof_core.Campaign.coverage;
      crash_events = o.Eof_core.Campaign.crash_events;
      payloads = Eof_obs.Obs.counter_value obs "campaign.payloads";
      counters = Eof_obs.Obs.counters obs;
    }

let run_link_comparison () =
  section "Debug-link batching: vBatch-fused drain vs per-request link";
  let iterations = Runner.scaled 400 in
  Printf.printf "[same Zephyr campaign, seed 11, %d payloads per link mode...]\n%!"
    iterations;
  let unbatched = run_linked_campaign ~batch_link:false ~iterations in
  let batched = run_linked_campaign ~batch_link:true ~iterations in
  let row s =
    [ s.mode; string_of_int s.exchanges; string_of_int s.requests;
      Printf.sprintf "%.0f" (s.elapsed_us /. 1000.);
      string_of_int s.coverage; string_of_int s.crash_events ]
  in
  print_endline
    (Text_table.render
       ~align:Text_table.[ Left; Right; Right; Right; Right; Right ]
       ~header:[ "link mode"; "exchanges"; "requests"; "link ms"; "coverage"; "crashes" ]
       [ row unbatched; row batched ]);
  Printf.printf
    "[exchange reduction %.2fx, link-time reduction %.2fx; coverage %s]\n"
    (float_of_int unbatched.exchanges /. float_of_int batched.exchanges)
    (unbatched.elapsed_us /. batched.elapsed_us)
    (if unbatched.coverage = batched.coverage && unbatched.crash_events = batched.crash_events
     then "and crashes identical"
     else "DIVERGED (bug!)");
  (unbatched, batched)

(* --- link resilience ---------------------------------------------------- *)

type resilience_stats = {
  fault_rate : float;
  res_payloads : int;
  retries : int;
  resyncs : int;
  rung_resets : int;
  rung_reflashes : int;
  rung_dead : int;
  clean_wall_s : float;  (* fault-rate 0, no injector attached *)
  inert_wall_s : float;  (* fault-rate 0, injector attached but inert *)
  rate0_identical : bool;  (* clean vs inert outcomes bit-equal *)
}

let run_resilience () =
  section "Link resilience: recovery ladder under a seeded 2% fault schedule";
  let iterations = Runner.scaled 400 in
  let fault_rate = 0.02 in
  Printf.printf
    "[Zephyr campaign, seed 11, %d payloads, fault rate %.0f%%, fault seed 42...]\n%!"
    iterations (fault_rate *. 100.);
  (* Boards are stateful (flash wear, heap churn): every campaign below
     gets a freshly made build, so the clean/inert pair is comparable. *)
  let mk_build () =
    Eof_os.Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  let obs = Eof_obs.Obs.create () in
  let config =
    { Eof_core.Campaign.default_config with
      iterations; seed = 11L; fault_rate; fault_seed = 42L }
  in
  (match Eof_core.Campaign.run ~obs config (mk_build ()) with
  | Error e -> failwith (Eof_util.Eof_error.to_string e)
  | Ok _ -> ());
  let c name = Eof_obs.Obs.counter_value obs name in
  let payloads = max 1 (c "campaign.payloads") in
  let retries = c "session.retries" in
  let resyncs = c "recover.resync" in
  let rung_resets = c "recover.reset" in
  let rung_reflashes = c "recover.reflash" in
  let rung_dead = c "recover.dead" in
  print_endline
    (Text_table.render
       ~align:Text_table.[ Left; Right ]
       ~header:[ "recovery rung"; "fires" ]
       [
         [ "1 retry (exchange re-sent)"; string_of_int retries ];
         [ "2 resync (decoder flush)"; string_of_int resyncs ];
         [ "3 board reset"; string_of_int rung_resets ];
         [ "4 partition reflash"; string_of_int rung_reflashes ];
         [ "5 board dead"; string_of_int rung_dead ];
       ]);
  Printf.printf "[%.3f retries/payload over %d payloads]\n"
    (float_of_int retries /. float_of_int payloads)
    payloads;
  (* The injector wrapper's cost when inert: the same clean campaign with
     and without an attached rate-0 injector must produce identical
     outcomes, and the attached run's wall-clock shows the wrapper tax. *)
  let clean_config = { config with fault_rate = 0. } in
  let timed f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let outcome = function
    | Ok o -> o
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let clean, clean_wall_s =
    timed (fun () -> outcome (Eof_core.Campaign.run clean_config (mk_build ())))
  in
  let inert_build = mk_build () in
  let inert_machine =
    match
      Eof_agent.Machine.create
        ~inject:{ Eof_debug.Inject.default_config with rate = 0. } inert_build
    with
    | Ok m -> m
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let inert, inert_wall_s =
    timed (fun () ->
        outcome (Eof_core.Campaign.run ~machine:inert_machine clean_config inert_build))
  in
  let rate0_identical =
    clean.Eof_core.Campaign.coverage = inert.Eof_core.Campaign.coverage
    && clean.Eof_core.Campaign.crash_events = inert.Eof_core.Campaign.crash_events
    && clean.Eof_core.Campaign.virtual_s = inert.Eof_core.Campaign.virtual_s
  in
  Printf.printf
    "[inert-injector overhead at fault-rate 0: %.2fx wall clock (%.2fs vs %.2fs); outcomes %s]\n"
    (inert_wall_s /. Float.max 1e-9 clean_wall_s)
    inert_wall_s clean_wall_s
    (if rate0_identical then "identical" else "DIVERGED (bug!)");
  {
    fault_rate;
    res_payloads = payloads;
    retries;
    resyncs;
    rung_resets;
    rung_reflashes;
    rung_dead;
    clean_wall_s;
    inert_wall_s;
    rate0_identical;
  }

(* --- board-farm scaling ------------------------------------------------- *)

let run_scaling () =
  section "Board-farm scaling: one campaign budget across 1/2/4/8 boards";
  let iterations = Runner.scaled 1200 in
  Printf.printf
    "[Zephyr campaign, seed 11, %d payloads total per point, Domain backend...]\n%!"
    iterations;
  let points = Scaling.run ~iterations () in
  if points = [] then failwith "scaling experiment produced no points";
  print_endline (Scaling.render points);
  (match
     List.find_opt (fun (p : Scaling.point) -> p.Scaling.boards = 4) points
   with
   | Some p ->
     Printf.printf "[throughput at 4 boards: %.2fx of 1 board%s]\n"
       p.Scaling.speedup
       (if p.Scaling.speedup >= 2.5 then "" else " — BELOW the 2.5x target")
   | None -> ());
  (iterations, points)

(* --- native backend ------------------------------------------------------ *)

type native_stats = {
  nat_iterations : int;
  nat_link_wall_s : float;
  nat_native_wall_s : float;
  nat_link_virtual_s : float;
  nat_native_virtual_s : float;
  nat_executed : int;
  digest_identical : bool;
}

(* The tentpole measurement: the same campaign over the debug link and
   in-process, payloads per virtual second each way. Virtual time is
   the honest axis — it is where the link's per-exchange latency lives;
   wall clock additionally shows the host-side cost of RSP framing. *)
let run_native_comparison () =
  section "Native backend: in-process execution vs the debug link";
  let iterations = Runner.scaled 800 in
  Printf.printf "[Zephyr campaign, seed 11, %d payloads, link vs native...]\n%!"
    iterations;
  let mk_build () =
    Eof_os.Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  let config = { Eof_core.Campaign.default_config with iterations; seed = 11L } in
  let timed backend =
    let t0 = Unix.gettimeofday () in
    match
      Eof_core.Campaign.run { config with Eof_core.Campaign.backend } (mk_build ())
    with
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
    | Ok o -> (o, Unix.gettimeofday () -. t0)
  in
  let link_o, link_wall = timed Eof_agent.Machine.Link in
  let native_o, native_wall = timed Eof_agent.Machine.Native in
  let digest_identical =
    String.equal
      (Eof_core.Report.campaign_digest link_o)
      (Eof_core.Report.campaign_digest native_o)
  in
  let per_s executed virtual_s =
    float_of_int executed /. Float.max 1e-9 virtual_s
  in
  let link_pps = per_s link_o.Eof_core.Campaign.executed_programs link_o.Eof_core.Campaign.virtual_s in
  let native_pps =
    per_s native_o.Eof_core.Campaign.executed_programs native_o.Eof_core.Campaign.virtual_s
  in
  let speedup = native_pps /. Float.max 1e-9 link_pps in
  print_endline
    (Text_table.render
       ~align:Text_table.[ Left; Right; Right; Right ]
       ~header:[ "backend"; "payloads/virtual-s"; "virtual s"; "wall s" ]
       [
         [ "debug link"; Printf.sprintf "%.0f" link_pps;
           Printf.sprintf "%.3f" link_o.Eof_core.Campaign.virtual_s;
           Printf.sprintf "%.2f" link_wall ];
         [ "native"; Printf.sprintf "%.0f" native_pps;
           Printf.sprintf "%.3f" native_o.Eof_core.Campaign.virtual_s;
           Printf.sprintf "%.2f" native_wall ];
       ]);
  Printf.printf "[native throughput: %.1fx the debug link%s; digests %s]\n" speedup
    (if speedup >= 20. then "" else " — BELOW the 20x target")
    (if digest_identical then "identical" else "DIVERGED (bug!)");
  {
    nat_iterations = iterations;
    nat_link_wall_s = link_wall;
    nat_native_wall_s = native_wall;
    nat_link_virtual_s = link_o.Eof_core.Campaign.virtual_s;
    nat_native_virtual_s = native_o.Eof_core.Campaign.virtual_s;
    nat_executed = native_o.Eof_core.Campaign.executed_programs;
    digest_identical;
  }

(* --- copy-on-write snapshots --------------------------------------------- *)

type snapshot_stats = {
  snap_total_pages : int;
  snap_reflash_virtual_s : float;
  snap_points : (float * int * float) list;
      (** dirty fraction of RAM, pages actually copied, restore virtual s *)
  snap_speedup_at_10pct : float;
  snap_ladder_pps : float;
  snap_fresh_pps : float;
  snap_fresh_overhead : float;
  snap_digest_identical : bool;  (** ladder vs snapshot policy, fault-free *)
}

(* Restore cost must scale with pages written since the save, not with
   partition size: the full reflash pays O(image) link traffic every
   time, the snapshot restore pays one QSnapshot exchange plus
   O(dirty pages) of copy-back cycles. *)
let run_snapshot () =
  section "Copy-on-write snapshots: O(dirty pages) restore vs full reflash";
  let build =
    Eof_os.Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  let machine =
    match Eof_agent.Machine.create build with
    | Ok m -> m
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let profile = Eof_hw.Board.profile (Eof_os.Osbuild.board build) in
  let image = Eof_os.Osbuild.image build in
  let virtual_s () = Eof_agent.Machine.virtual_elapsed_s machine in
  (* Baseline: the partition-by-partition reflash, measured before any
     snapshot exists so nothing can shortcut it. *)
  let t0 = virtual_s () in
  (match
     Eof_core.Liveness.restore_partitions machine
       ~flash_base:profile.Eof_hw.Board.flash_base ~image
       ~table:image.Eof_hw.Image.table
   with
  | Ok _ -> ()
  | Error e -> failwith (Eof_util.Eof_error.to_string e));
  let reflash_virtual_s = virtual_s () -. t0 in
  let total_pages =
    match Eof_agent.Machine.snapshot_save machine with
    | Ok pages -> pages
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let ram_pages = profile.Eof_hw.Board.ram_size / Eof_hw.Memory.page_size in
  let point fraction =
    let k = max 1 (int_of_float (fraction *. float_of_int ram_pages)) in
    for p = 0 to k - 1 do
      match
        Eof_agent.Machine.write_u32 machine
          ~addr:(profile.Eof_hw.Board.ram_base + (p * Eof_hw.Memory.page_size))
          0xD1D1D1D1l
      with
      | Ok () -> ()
      | Error e -> failwith (Eof_util.Eof_error.to_string e)
    done;
    let t0 = virtual_s () in
    match Eof_agent.Machine.snapshot_restore machine with
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
    | Ok dirty -> (fraction, dirty, virtual_s () -. t0)
  in
  let points = List.map point [ 0.01; 0.05; 0.10; 0.25; 0.50 ] in
  print_endline
    (Text_table.render
       ~align:Text_table.[ Right; Right; Right; Right ]
       ~header:[ "dirty frac"; "pages copied"; "restore virtual us"; "vs reflash" ]
       (List.map
          (fun (f, dirty, s) ->
            [ Printf.sprintf "%.0f%%" (100. *. f);
              string_of_int dirty;
              Printf.sprintf "%.1f" (1e6 *. s);
              Printf.sprintf "%.0fx" (reflash_virtual_s /. Float.max 1e-9 s) ])
          points));
  let restore_at_10pct =
    match List.find_opt (fun (f, _, _) -> f = 0.10) points with
    | Some (_, _, s) -> s
    | None -> infinity
  in
  let speedup_at_10pct = reflash_virtual_s /. Float.max 1e-9 restore_at_10pct in
  Printf.printf
    "[full reflash %.1f virtual us; snapshot restore at 10%% dirty: %.1fx cheaper%s]\n"
    (1e6 *. reflash_virtual_s) speedup_at_10pct
    (if speedup_at_10pct >= 5. then "" else " — BELOW the 5x target");
  (* Fresh-state-per-program costs one restore + reboot per payload;
     what it buys is no cross-payload state leakage. And on a fault-free
     link the snapshot policy must change nothing observable. *)
  let iterations = Runner.scaled 400 in
  Printf.printf "[Zephyr campaign, seed 11, %d payloads, ladder vs fresh-per-program...]\n%!"
    iterations;
  let mk_build () =
    Eof_os.Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  let campaign reset_policy =
    match
      Eof_core.Campaign.run
        { Eof_core.Campaign.default_config with iterations; seed = 11L; reset_policy }
        (mk_build ())
    with
    | Ok o -> o
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let ladder_o = campaign Eof_core.Campaign.Ladder in
  let snapshot_o = campaign Eof_core.Campaign.Snapshot in
  let fresh_o = campaign Eof_core.Campaign.Fresh_per_program in
  let digest_identical =
    String.equal
      (Eof_core.Report.campaign_digest ladder_o)
      (Eof_core.Report.campaign_digest snapshot_o)
  in
  let pps (o : Eof_core.Campaign.outcome) =
    float_of_int o.Eof_core.Campaign.executed_programs
    /. Float.max 1e-9 o.Eof_core.Campaign.virtual_s
  in
  let ladder_pps = pps ladder_o and fresh_pps = pps fresh_o in
  Printf.printf
    "[ladder %.0f payloads/virtual-s, fresh-per-program %.0f (%.2fx the virtual cost); ladder/snapshot digests %s]\n"
    ladder_pps fresh_pps (ladder_pps /. Float.max 1e-9 fresh_pps)
    (if digest_identical then "identical" else "DIVERGED (bug!)");
  {
    snap_total_pages = total_pages;
    snap_reflash_virtual_s = reflash_virtual_s;
    snap_points = points;
    snap_speedup_at_10pct = speedup_at_10pct;
    snap_ladder_pps = ladder_pps;
    snap_fresh_pps = fresh_pps;
    snap_fresh_overhead = ladder_pps /. Float.max 1e-9 fresh_pps;
    snap_digest_identical = digest_identical;
  }

(* --- fleet hub ----------------------------------------------------------- *)

type hub_stats = {
  hub_tenants : int;
  hub_farms : int;
  hub_iterations : int;  (** per tenant *)
  hub_payloads : int;
  hub_wall_s : float;
  hub_nosync_wall_s : float;
  hub_transplants : int;
  hub_crashes_deduped : int;
  hub_crash_sum : int;  (** per-tenant crash counts, before fleet dedup *)
  hub_deterministic : bool;
  hub_reassigned : int;  (** shard leases moved off the scripted-dead worker *)
  hub_payloads_lost : int;  (** reported work written off at the revoke *)
  hub_recovery_lag_s : float;  (** virtual shard progress discarded *)
  hub_kill_deterministic : bool;  (** scripted-death rerun byte-identical *)
  hub_replay_frames : int;  (** journal frames replayed at the resume *)
  hub_replay_wall_s : float;  (** wall cost of replaying the finished journal *)
  hub_resume_digest_identical : bool;
      (** halt + journal resume reaches the uninterrupted fleet digest *)
}

let run_hub_fleet () =
  section "Fleet hub: two tenants sharded across two farms";
  let iterations = Runner.scaled 400 in
  Printf.printf
    "[2 tenants x 2 farms, %d payloads per tenant, in-process deterministic fleet...]\n%!"
    iterations;
  let module Tenant = Eof_hub.Tenant in
  let module Worker = Eof_hub.Worker in
  let module Inproc = Eof_hub.Inproc in
  let resolve os =
    match Eof_expt.Targets.find os with
    | None -> Error (Printf.sprintf "unknown OS %s" os)
    | Some target ->
      let build = Eof_expt.Targets.build_hw target in
      let table = Eof_os.Osbuild.api_signatures build in
      (match Eof_spec.Synth.validated_of_api table with
      | Error e -> Error e
      | Ok spec ->
        Ok
          {
            Worker.mk_build = (fun _ -> Eof_expt.Targets.build_hw target);
            spec;
            table;
          })
  in
  let tenants =
    [
      { Tenant.default with Tenant.tenant = "alice"; os = "Zephyr"; seed = 7L;
        iterations; farms = 2 };
      { Tenant.default with Tenant.tenant = "bob"; os = "FreeRTOS"; seed = 11L;
        iterations; farms = 2 };
    ]
  in
  let run ?corpus_sync ?journal ?kill ?halt_after () =
    match
      Inproc.run ?corpus_sync ?journal ?kill ?halt_after ~farms:2 tenants ~resolve
    with
    | Ok o -> o
    | Error e -> failwith e
  in
  let a = run () in
  let b = run () in
  let nosync = run ~corpus_sync:false () in
  let deterministic = String.equal (Inproc.summary a) (Inproc.summary b) in
  (* Recovery drill: silence worker 1 a quarter of the way into its
     share of the budget; its shards are revoked on the heartbeat
     deadline and restarted on worker 0. *)
  let kill_at = max 10 (iterations / 4) in
  Printf.printf "[worker-death drill: silencing worker 1 after %d payloads...]\n%!"
    kill_at;
  let killed = run ~kill:(1, kill_at) () in
  let killed2 = run ~kill:(1, kill_at) () in
  let kill_deterministic =
    String.equal (Inproc.summary killed) (Inproc.summary killed2)
  in
  (* Crash-safety drill: journal, halt mid-campaign, resume; then replay
     the finished journal once more to price the replay itself. *)
  Printf.printf "[journal drill: halting mid-campaign and resuming...]\n%!";
  let journal = Filename.temp_file "eof-bench" ".journal" in
  Sys.remove journal;
  let resumed, replay_only_wall_s =
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists journal then Sys.remove journal)
      (fun () ->
        ignore (run ~journal ~halt_after:iterations () : Inproc.outcome);
        let resumed = run ~journal () in
        (* every campaign in the journal is now finished: a third run
           replays it and completes without executing a payload *)
        let t0 = Unix.gettimeofday () in
        ignore (run ~journal () : Inproc.outcome);
        (resumed, Unix.gettimeofday () -. t0))
  in
  let resume_identical =
    String.equal (Inproc.summary a) (Inproc.summary resumed)
  in
  let wall_s = Float.min a.Inproc.wall_s b.Inproc.wall_s in
  let crash_sum =
    List.fold_left
      (fun acc (r : Inproc.tenant_result) -> acc + r.Inproc.crashes)
      0 a.Inproc.tenants
  in
  print_string (Inproc.summary a);
  Printf.printf
    "[%.0f payloads/s aggregate; corpus-sync overhead %.2fx (%d transplants); %d crashes deduped from %d; reruns %s]\n"
    (float_of_int a.Inproc.payloads /. Float.max 1e-9 wall_s)
    (wall_s /. Float.max 1e-9 nosync.Inproc.wall_s)
    a.Inproc.transplants a.Inproc.crashes_deduped crash_sum
    (if deterministic then "byte-identical" else "DIVERGED (bug!)");
  Printf.printf
    "[recovery: %d shards reassigned, %d payloads written off, %.2f virtual s lag, rerun %s; journal: %d frames replayed in %.3fs, resume %s]\n"
    killed.Inproc.reassignments killed.Inproc.payloads_lost
    killed.Inproc.recovery_lag
    (if kill_deterministic then "byte-identical" else "DIVERGED (bug!)")
    resumed.Inproc.replayed_frames replay_only_wall_s
    (if resume_identical then "= uninterrupted digest" else "DIVERGED (bug!)");
  {
    hub_tenants = List.length tenants;
    hub_farms = 2;
    hub_iterations = iterations;
    hub_payloads = a.Inproc.payloads;
    hub_wall_s = wall_s;
    hub_nosync_wall_s = nosync.Inproc.wall_s;
    hub_transplants = a.Inproc.transplants;
    hub_crashes_deduped = a.Inproc.crashes_deduped;
    hub_crash_sum = crash_sum;
    hub_deterministic = deterministic;
    hub_reassigned = killed.Inproc.reassignments;
    hub_payloads_lost = killed.Inproc.payloads_lost;
    hub_recovery_lag_s = killed.Inproc.recovery_lag;
    hub_kill_deterministic = kill_deterministic;
    hub_replay_frames = resumed.Inproc.replayed_frames;
    hub_replay_wall_s = replay_only_wall_s;
    hub_resume_digest_identical = resume_identical;
  }

(* --- corpus scheduling and compiled generators --------------------------- *)

type schedule_stats = {
  sched_iterations : int;  (** per OS per schedule *)
  sched_oses : string list;
  sched_catalog : int;
  sched_uniform_found : (int * float) list;  (** bug id, virtual s to first hit *)
  sched_energy_found : (int * float) list;
  sched_uniform_median_ttb : float option;  (** over bugs both schedules found *)
  sched_energy_median_ttb : float option;
  sched_interp_ns : float;
  sched_compiled_ns : float;
  sched_divergence : int;  (** byte-differing programs, compiled vs interp *)
}

(* Step one native-backend campaign to its budget, stamping the virtual
   clock the first time each Table-2 bug shows up in the dedup'd crash
   list. *)
let time_to_bugs ~schedule ~iterations (target : Targets.hw_target) =
  let config =
    {
      Eof_core.Campaign.default_config with
      iterations;
      seed = 11L;
      backend = Eof_agent.Machine.Native;
      schedule;
    }
  in
  let st =
    match Eof_core.Campaign.init config (Targets.build_hw target) with
    | Ok st -> st
    | Error e -> failwith (Eof_util.Eof_error.to_string e)
  in
  let found = ref [] in
  let seen = ref 0 in
  while not (Eof_core.Campaign.finished st) do
    Eof_core.Campaign.step st;
    let crashes = Eof_core.Campaign.crashes_so_far st in
    let n = List.length crashes in
    if n > !seen then begin
      let now = Eof_core.Campaign.virtual_s st in
      List.iteri
        (fun i crash ->
          if i >= !seen then
            match Targets.match_bug crash with
            | Some bug when not (List.mem_assoc bug.Targets.id !found) ->
              found := (bug.Targets.id, now) :: !found
            | _ -> ())
        crashes;
      seen := n
    end
  done;
  ignore (Eof_core.Campaign.finish st : Eof_core.Campaign.outcome);
  List.rev !found

let median = function
  | [] -> None
  | l ->
    let sorted = List.sort compare l in
    let n = List.length sorted in
    let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
    Some ((a +. b) /. 2.)

(* Generator cost: ns per generated program, spec walking vs compiled
   candidate sets, plus the divergence gate — the two modes must emit
   byte-identical streams per seed. *)
let generator_comparison () =
  let build =
    Eof_os.Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Eof_os.Zephyr.spec
  in
  let table = Eof_os.Osbuild.api_signatures build in
  let spec =
    match Eof_spec.Synth.validated_of_api table with
    | Ok s -> s
    | Error e -> failwith e
  in
  let mk mode seed =
    Eof_core.Gen.create ~dep_aware:true ~mode ~rng:(Eof_util.Rng.create seed) ~spec
      ~table ()
  in
  let time mode =
    let n = Runner.scaled 30_000 in
    let gen = mk mode 1L in
    (* warm the memoized compile before the clock starts *)
    ignore (Eof_core.Gen.generate gen ~max_len:12 : Eof_core.Prog.t);
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (Eof_core.Gen.generate gen ~max_len:12 : Eof_core.Prog.t)
    done;
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (max 1 n)
  in
  let interp_ns = time Eof_core.Gen.Interp in
  let compiled_ns = time Eof_core.Gen.Compiled in
  let divergence = ref 0 in
  let encode p =
    match Eof_agent.Wire.encode ~endianness:Eof_hw.Arch.Little (Eof_core.Prog.to_wire p) with
    | Ok s -> s
    | Error e -> failwith e
  in
  List.iter
    (fun seed ->
      let gi = mk Eof_core.Gen.Interp seed and gc = mk Eof_core.Gen.Compiled seed in
      for i = 1 to 200 do
        let pi = Eof_core.Gen.generate gi ~max_len:(2 + (i mod 12)) in
        let pc = Eof_core.Gen.generate gc ~max_len:(2 + (i mod 12)) in
        if not (String.equal (encode pi) (encode pc)) then incr divergence;
        let mi = Eof_core.Gen.mutate gi pi ~max_len:16 in
        let mc = Eof_core.Gen.mutate gc pc ~max_len:16 in
        if not (String.equal (encode mi) (encode mc)) then incr divergence
      done)
    [ 1L; 7L; 11L; 42L; 1337L ];
  (interp_ns, compiled_ns, !divergence)

let run_schedule () =
  section "Corpus scheduling: time-to-bug, uniform vs energy, and compiled generators";
  let iterations = Runner.scaled 4000 in
  Printf.printf
    "[%d native payloads per OS per schedule, seed 11, %d-bug catalog...]\n%!"
    iterations (List.length Targets.catalog);
  let oses =
    List.map (fun (t : Targets.hw_target) -> t.Targets.spec.Eof_os.Osbuild.os_name)
      Targets.all
  in
  let sweep schedule =
    List.concat_map
      (fun (t : Targets.hw_target) -> time_to_bugs ~schedule ~iterations t)
      Targets.all
  in
  let uniform = sweep Eof_core.Corpus.Uniform in
  let energy = sweep Eof_core.Corpus.Energy in
  let common = List.filter (fun (id, _) -> List.mem_assoc id energy) uniform in
  let u_median = median (List.map snd common) in
  let e_median =
    median (List.map (fun (id, _) -> List.assoc id energy) common)
  in
  let bug_row (id, ttb) other =
    [
      string_of_int id;
      Printf.sprintf "%.3f" ttb;
      (match List.assoc_opt id other with
       | Some t -> Printf.sprintf "%.3f" t
       | None -> "-");
    ]
  in
  print_endline
    (Text_table.render
       ~align:Text_table.[ Right; Right; Right ]
       ~header:[ "bug id"; "uniform ttb (virt s)"; "energy ttb (virt s)" ]
       (List.map (fun b -> bug_row b energy) uniform
       @ List.filter_map
           (fun (id, ttb) ->
             if List.mem_assoc id uniform then None
             else Some [ string_of_int id; "-"; Printf.sprintf "%.3f" ttb ])
           energy));
  Printf.printf
    "[uniform found %d bugs, energy %d; median ttb on the %d common bugs: uniform %s, energy %s]\n"
    (List.length uniform) (List.length energy) (List.length common)
    (match u_median with Some m -> Printf.sprintf "%.3fs" m | None -> "n/a")
    (match e_median with Some m -> Printf.sprintf "%.3fs" m | None -> "n/a");
  let interp_ns, compiled_ns, divergence = generator_comparison () in
  Printf.printf
    "[generator: interp %.0f ns/prog, compiled %.0f ns/prog (%.2fx); %d divergent programs%s]\n"
    interp_ns compiled_ns
    (interp_ns /. Float.max 1e-9 compiled_ns)
    divergence
    (if divergence = 0 then "" else " — BUG, modes must be byte-identical");
  {
    sched_iterations = iterations;
    sched_oses = oses;
    sched_catalog = List.length Targets.catalog;
    sched_uniform_found = uniform;
    sched_energy_found = energy;
    sched_uniform_median_ttb = u_median;
    sched_energy_median_ttb = e_median;
    sched_interp_ns = interp_ns;
    sched_compiled_ns = compiled_ns;
    sched_divergence = divergence;
  }

(* --- machine-readable results ------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Every section is optional: a failed stage becomes a JSON null, never
   a missing BENCH.json. *)
let write_bench_json ~micro ~link ~scaling ~resilience ~native ~snapshot ~hub
    ~schedule path =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"micro_ns_per_run\": ";
  (match micro with
  | None -> Buffer.add_string b "null"
  | Some micro ->
    Buffer.add_string b "{\n";
    List.iteri
      (fun i (name, ns) ->
        Buffer.add_string b
          (Printf.sprintf "    \"%s\": %s%s\n" (json_escape name)
             (if Float.is_nan ns then "null" else Printf.sprintf "%.1f" ns)
             (if i < List.length micro - 1 then "," else "")))
      micro;
    Buffer.add_string b "  }");
  Buffer.add_string b ",\n  \"debug_link\": ";
  (match link with
  | None -> Buffer.add_string b "null"
  | Some (unbatched, batched) ->
    Buffer.add_string b "{\n";
    let stats s =
      Printf.sprintf
        "{ \"exchanges\": %d, \"requests\": %d, \"elapsed_us\": %.0f, \"coverage\": %d, \"crash_events\": %d }"
        s.exchanges s.requests s.elapsed_us s.coverage s.crash_events
    in
    Buffer.add_string b (Printf.sprintf "    \"unbatched\": %s,\n" (stats unbatched));
    Buffer.add_string b (Printf.sprintf "    \"batched\": %s,\n" (stats batched));
    Buffer.add_string b
      (Printf.sprintf "    \"exchange_reduction\": %.3f,\n"
         (float_of_int unbatched.exchanges /. float_of_int batched.exchanges));
    Buffer.add_string b
      (Printf.sprintf "    \"link_time_reduction\": %.3f,\n"
         (unbatched.elapsed_us /. batched.elapsed_us));
    Buffer.add_string b
      (Printf.sprintf "    \"outcomes_identical\": %b\n"
         (unbatched.coverage = batched.coverage
         && unbatched.crash_events = batched.crash_events));
    Buffer.add_string b "  }");
  Buffer.add_string b ",\n  \"obs\": ";
  (match link with
  | None -> Buffer.add_string b "null"
  | Some (_, batched) ->
    (* Counter-derived link economics of the batched (default) mode. *)
    let c name =
      match List.assoc_opt name batched.counters with Some v -> v | None -> 0
    in
    let payloads = max 1 batched.payloads in
    let per v = float_of_int v /. float_of_int payloads in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf "    \"exchanges_per_payload\": %.3f,\n"
         (per (c "transport.exchanges")));
    Buffer.add_string b
      (Printf.sprintf "    \"bytes_per_payload\": %.1f,\n"
         (per (c "transport.bytes_tx" + c "transport.bytes_rx")));
    Buffer.add_string b
      (Printf.sprintf
         "    \"drain_spans\": { \"count\": %d, \"total_us\": %d },\n"
         (c "span.covlink.exchange.count" + c "span.covlink.drain.count")
         (c "span.covlink.exchange.us" + c "span.covlink.drain.us"));
    Buffer.add_string b "    \"counters\": {\n";
    let n = List.length batched.counters in
    List.iteri
      (fun i (name, v) ->
        Buffer.add_string b
          (Printf.sprintf "      \"%s\": %d%s\n" (json_escape name) v
             (if i < n - 1 then "," else "")))
      batched.counters;
    Buffer.add_string b "    }\n  }");
  Buffer.add_string b ",\n  \"farm_scaling\": ";
  (match scaling with
  | None -> Buffer.add_string b "null"
  | Some (iterations, points) ->
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf "    \"backend\": \"domains\",\n    \"iterations\": %d,\n    \"series\": [\n"
         iterations);
    let n = List.length points in
    List.iteri
      (fun i (p : Scaling.point) ->
        Buffer.add_string b
          (Printf.sprintf
             "      { \"boards\": %d, \"payloads\": %d, \"coverage\": %d, \"virtual_s\": %.3f, \"wall_s\": %.3f, \"throughput_per_virtual_s\": %.2f, \"speedup\": %.3f, \"time_to_cov_s\": %s, \"crashes\": %d }%s\n"
             p.Scaling.boards p.Scaling.payloads p.Scaling.coverage
             p.Scaling.virtual_s p.Scaling.wall_s p.Scaling.throughput
             p.Scaling.speedup
             (match p.Scaling.time_to_cov with
             | Some t -> Printf.sprintf "%.3f" t
             | None -> "null")
             p.Scaling.crashes
             (if i < n - 1 then "," else "")))
      points;
    Buffer.add_string b "    ]\n  }");
  Buffer.add_string b ",\n  \"native\": ";
  (match native with
  | None -> Buffer.add_string b "null"
  | Some s ->
    let pps executed virtual_s = float_of_int executed /. Float.max 1e-9 virtual_s in
    let link_pps = pps s.nat_executed s.nat_link_virtual_s in
    let native_pps = pps s.nat_executed s.nat_native_virtual_s in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf "    \"iterations\": %d,\n    \"executed\": %d,\n"
         s.nat_iterations s.nat_executed);
    Buffer.add_string b
      (Printf.sprintf
         "    \"payloads_per_virtual_s\": { \"link\": %.1f, \"native\": %.1f },\n"
         link_pps native_pps);
    Buffer.add_string b
      (Printf.sprintf "    \"virtual_s\": { \"link\": %.4f, \"native\": %.4f },\n"
         s.nat_link_virtual_s s.nat_native_virtual_s);
    Buffer.add_string b
      (Printf.sprintf "    \"wall_s\": { \"link\": %.3f, \"native\": %.3f },\n"
         s.nat_link_wall_s s.nat_native_wall_s);
    Buffer.add_string b
      (Printf.sprintf "    \"speedup_virtual\": %.1f,\n"
         (native_pps /. Float.max 1e-9 link_pps));
    Buffer.add_string b
      (Printf.sprintf "    \"speedup_wall\": %.2f,\n"
         (s.nat_link_wall_s /. Float.max 1e-9 s.nat_native_wall_s));
    Buffer.add_string b
      (Printf.sprintf "    \"digest_identical\": %b\n" s.digest_identical);
    Buffer.add_string b "  }");
  Buffer.add_string b ",\n  \"resilience\": ";
  (match resilience with
  | None -> Buffer.add_string b "null"
  | Some r ->
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf "    \"fault_rate\": %.3f,\n    \"payloads\": %d,\n"
         r.fault_rate r.res_payloads);
    Buffer.add_string b
      (Printf.sprintf "    \"retries\": %d,\n    \"retries_per_payload\": %.3f,\n"
         r.retries
         (float_of_int r.retries /. float_of_int (max 1 r.res_payloads)));
    Buffer.add_string b
      (Printf.sprintf
         "    \"recoveries\": { \"resync\": %d, \"reset\": %d, \"reflash\": %d, \"dead\": %d },\n"
         r.resyncs r.rung_resets r.rung_reflashes r.rung_dead);
    Buffer.add_string b
      (Printf.sprintf
         "    \"injector_overhead_rate0\": { \"clean_wall_s\": %.3f, \"inert_wall_s\": %.3f, \"ratio\": %.3f, \"outcomes_identical\": %b }\n"
         r.clean_wall_s r.inert_wall_s
         (r.inert_wall_s /. Float.max 1e-9 r.clean_wall_s)
         r.rate0_identical);
    Buffer.add_string b "  }");
  Buffer.add_string b ",\n  \"snapshot\": ";
  (match snapshot with
  | None -> Buffer.add_string b "null"
  | Some s ->
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "    \"total_pages\": %d,\n    \"full_reflash_virtual_s\": %.6f,\n"
         s.snap_total_pages s.snap_reflash_virtual_s);
    Buffer.add_string b "    \"restore\": [\n";
    let n = List.length s.snap_points in
    List.iteri
      (fun i (fraction, dirty, virtual_s) ->
        Buffer.add_string b
          (Printf.sprintf
             "      { \"dirty_fraction\": %.2f, \"pages_copied\": %d, \"virtual_s\": %.6f }%s\n"
             fraction dirty virtual_s
             (if i < n - 1 then "," else "")))
      s.snap_points;
    Buffer.add_string b "    ],\n";
    Buffer.add_string b
      (Printf.sprintf "    \"speedup_at_10pct_dirty\": %.1f,\n"
         s.snap_speedup_at_10pct);
    Buffer.add_string b
      (Printf.sprintf
         "    \"fresh_per_program\": { \"ladder_pps\": %.1f, \"fresh_pps\": %.1f, \"overhead_ratio\": %.2f },\n"
         s.snap_ladder_pps s.snap_fresh_pps s.snap_fresh_overhead);
    Buffer.add_string b
      (Printf.sprintf "    \"digest_identical\": %b\n" s.snap_digest_identical);
    Buffer.add_string b "  }");
  Buffer.add_string b ",\n  \"hub\": ";
  (match hub with
  | None -> Buffer.add_string b "null"
  | Some h ->
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "    \"tenants\": %d,\n    \"farms\": %d,\n    \"iterations_per_tenant\": %d,\n"
         h.hub_tenants h.hub_farms h.hub_iterations);
    Buffer.add_string b
      (Printf.sprintf "    \"payloads\": %d,\n    \"payloads_per_s\": %.1f,\n"
         h.hub_payloads
         (float_of_int h.hub_payloads /. Float.max 1e-9 h.hub_wall_s));
    Buffer.add_string b
      (Printf.sprintf
         "    \"corpus_sync\": { \"wall_s\": %.3f, \"nosync_wall_s\": %.3f, \"overhead_ratio\": %.3f, \"transplants\": %d },\n"
         h.hub_wall_s h.hub_nosync_wall_s
         (h.hub_wall_s /. Float.max 1e-9 h.hub_nosync_wall_s)
         h.hub_transplants);
    Buffer.add_string b
      (Printf.sprintf
         "    \"crashes\": { \"deduped\": %d, \"tenant_sum\": %d },\n"
         h.hub_crashes_deduped h.hub_crash_sum);
    Buffer.add_string b
      (Printf.sprintf
         "    \"reassignment\": { \"shards_reassigned\": %d, \"payloads_lost\": %d, \"recovery_lag_virtual_s\": %.4f, \"kill_deterministic\": %b, \"replay_frames\": %d, \"replay_wall_s\": %.4f, \"resume_digest_identical\": %b },\n"
         h.hub_reassigned h.hub_payloads_lost h.hub_recovery_lag_s
         h.hub_kill_deterministic h.hub_replay_frames h.hub_replay_wall_s
         h.hub_resume_digest_identical);
    Buffer.add_string b
      (Printf.sprintf "    \"deterministic\": %b\n" h.hub_deterministic);
    Buffer.add_string b "  }");
  Buffer.add_string b ",\n  \"schedule\": ";
  (match schedule with
  | None -> Buffer.add_string b "null"
  | Some s ->
    let found_json found other =
      let n = List.length found in
      String.concat ""
        (List.mapi
           (fun i (id, ttb) ->
             Printf.sprintf
               "      { \"id\": %d, \"ttb_virtual_s\": %.4f, \"other_ttb_virtual_s\": %s }%s\n"
               id ttb
               (match List.assoc_opt id other with
                | Some t -> Printf.sprintf "%.4f" t
                | None -> "null")
               (if i < n - 1 then "," else ""))
           found)
    in
    let med = function
      | Some m -> Printf.sprintf "%.4f" m
      | None -> "null"
    in
    Buffer.add_string b "{\n";
    Buffer.add_string b
      (Printf.sprintf
         "    \"iterations_per_os\": %d,\n    \"oses\": [%s],\n    \"catalog_bugs\": %d,\n"
         s.sched_iterations
         (String.concat ", "
            (List.map (fun os -> Printf.sprintf "\"%s\"" (json_escape os)) s.sched_oses))
         s.sched_catalog);
    Buffer.add_string b
      (Printf.sprintf
         "    \"uniform\": { \"bugs_found\": %d, \"median_ttb_virtual_s\": %s },\n"
         (List.length s.sched_uniform_found)
         (med s.sched_uniform_median_ttb));
    Buffer.add_string b
      (Printf.sprintf
         "    \"energy\": { \"bugs_found\": %d, \"median_ttb_virtual_s\": %s },\n"
         (List.length s.sched_energy_found)
         (med s.sched_energy_median_ttb));
    Buffer.add_string b "    \"uniform_bugs\": [\n";
    Buffer.add_string b (found_json s.sched_uniform_found s.sched_energy_found);
    Buffer.add_string b "    ],\n    \"energy_bugs\": [\n";
    Buffer.add_string b (found_json s.sched_energy_found s.sched_uniform_found);
    Buffer.add_string b "    ],\n";
    Buffer.add_string b
      (Printf.sprintf
         "    \"generator\": { \"interp_ns_per_prog\": %.1f, \"compiled_ns_per_prog\": %.1f, \"speedup\": %.3f, \"divergence\": %d }\n"
         s.sched_interp_ns s.sched_compiled_ns
         (s.sched_interp_ns /. Float.max 1e-9 s.sched_compiled_ns)
         s.sched_divergence);
    Buffer.add_string b "  }");
  Buffer.add_string b "\n}\n";
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (Buffer.contents b));
  Printf.printf "[machine-readable results written to %s]\n" path

(* A stage that dies prints why and yields None; the run keeps going and
   BENCH.json is written regardless of which stages survived. *)
let guarded name f =
  try Some (f ())
  with e ->
    Printf.printf "\n[%s stage failed: %s]\n%!" name (Printexc.to_string e);
    None

let () =
  ignore (guarded "artifact" run_artifacts : unit option);
  let scaling = guarded "farm-scaling" run_scaling in
  let link = guarded "debug-link" run_link_comparison in
  let resilience = guarded "resilience" run_resilience in
  let native = guarded "native-backend" run_native_comparison in
  let snapshot = guarded "snapshot" run_snapshot in
  let hub = guarded "hub-fleet" run_hub_fleet in
  let schedule = guarded "schedule" run_schedule in
  let micro = guarded "micro-benchmark" run_micro in
  write_bench_json ~micro ~link ~scaling ~resilience ~native ~snapshot ~hub
    ~schedule "BENCH.json"
