open Eof_util

let test_rng_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7L in
  for _ = 1 to 1000 do
    let v = Rng.int rng 10 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 10);
    let w = Rng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in inclusive range" true (w >= -5 && w <= 5)
  done

let test_rng_split_independent () =
  let a = Rng.create 1L in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.next64 a) in
  let ys = List.init 10 (fun _ -> Rng.next64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_weighted () =
  let rng = Rng.create 3L in
  let seen_b = ref false in
  for _ = 1 to 200 do
    match Rng.weighted rng [ ("a", 1); ("b", 9) ] with
    | "b" -> seen_b := true
    | _ -> ()
  done;
  Alcotest.(check bool) "heavy item sampled" true !seen_b;
  Alcotest.check_raises "zero total" (Invalid_argument "Rng.weighted: total weight must be positive")
    (fun () -> ignore (Rng.weighted rng [ ("a", 0) ]))

let test_bitset_basics () =
  let b = Bitset.create 100 in
  Alcotest.(check int) "empty" 0 (Bitset.count b);
  Alcotest.(check bool) "fresh add" true (Bitset.add b 7);
  Alcotest.(check bool) "repeat add" false (Bitset.add b 7);
  Bitset.set b 99;
  Alcotest.(check int) "count" 2 (Bitset.count b);
  Alcotest.(check (list int)) "to_list" [ 7; 99 ] (Bitset.to_list b);
  Bitset.clear b 7;
  Alcotest.(check bool) "cleared" false (Bitset.mem b 7);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.set b 100)

let test_bitset_union_diff () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.set a 1;
  Bitset.set b 1;
  Bitset.set b 2;
  Bitset.set b 63;
  let added = Bitset.union_into ~dst:a ~src:b in
  Alcotest.(check int) "two new bits" 2 added;
  Alcotest.(check int) "count" 3 (Bitset.count a);
  let c = Bitset.create 64 in
  Bitset.set c 2;
  Bitset.set c 5;
  Alcotest.(check (list int)) "diff" [ 5 ] (Bitset.diff_new ~base:a ~candidate:c)

let test_crc32_known () =
  (* Standard test vector: CRC-32("123456789") = 0xCBF43926. *)
  Alcotest.(check int32) "vector" 0xCBF43926l (Crc32.digest_string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.digest_string "")

let test_crc32_incremental () =
  let whole = Crc32.digest_string "hello world" in
  let crc = ref (Crc32.start ()) in
  String.iter (fun c -> crc := Crc32.update !crc c) "hello world";
  Alcotest.(check int32) "incremental matches" whole (Crc32.finish !crc)

let test_hex_roundtrip () =
  Alcotest.(check string) "encode" "4f4b" (Hex.encode "OK");
  Alcotest.(check string) "decode" "OK" (Hex.decode_exn "4f4b");
  Alcotest.(check string) "decode upper" "OK" (Hex.decode_exn "4F4B");
  (match Hex.decode "abc" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "odd length accepted");
  match Hex.decode "zz" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad digit accepted"

let test_hex_dump () =
  let d = Hex.dump "AB" in
  Alcotest.(check bool) "has offset" true (String.length d > 0 && String.sub d 0 8 = "00000000");
  Alcotest.(check bool) "has ascii" true (String.length d > 0)

let test_ring_fifo () =
  let r = Ring.create 3 in
  Alcotest.(check bool) "no drop" false (Ring.push r 1);
  ignore (Ring.push r 2 : bool);
  ignore (Ring.push r 3 : bool);
  Alcotest.(check bool) "full" true (Ring.is_full r);
  Alcotest.(check bool) "overrun drops" true (Ring.push r 4);
  Alcotest.(check (option int)) "oldest evicted" (Some 2) (Ring.pop r);
  Alcotest.(check (list int)) "drain order" [ 3; 4 ] (Ring.drain r);
  Alcotest.(check int) "dropped count" 1 (Ring.dropped r)

let test_varint_roundtrip () =
  List.iter
    (fun v ->
      let buf = Buffer.create 10 in
      Varint.write buf v;
      match Varint.read (Buffer.contents buf) ~pos:0 with
      | Some (v', next) ->
        Alcotest.(check int64) "value" v v';
        Alcotest.(check int) "consumed all" (Buffer.length buf) next
      | None -> Alcotest.fail "decode failed")
    [ 0L; 1L; 127L; 128L; 300L; Int64.max_int; -1L ]

let test_varint_signed () =
  List.iter
    (fun v ->
      let buf = Buffer.create 10 in
      Varint.write_int buf v;
      match Varint.read_int (Buffer.contents buf) ~pos:0 with
      | Some (v', _) -> Alcotest.(check int) "signed value" v v'
      | None -> Alcotest.fail "decode failed")
    [ 0; 1; -1; 63; -64; 1000000; -1000000; max_int; min_int ]

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.; 2.; 3. ]);
  let lo, hi = Stats.min_max [ 3.; 1.; 2. ] in
  Alcotest.(check (float 1e-9)) "min" 1. lo;
  Alcotest.(check (float 1e-9)) "max" 3. hi;
  Alcotest.(check (float 1e-9)) "stddev singleton" 0. (Stats.stddev [ 5. ]);
  Alcotest.(check (float 1e-9)) "p50" 2. (Stats.percentile 50. [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-6)) "improvement" 50.
    (Stats.improvement_pct ~baseline:100. ~subject:150.);
  Alcotest.(check string) "fmt_pct" "+48.27%" (Stats.fmt_pct 48.27)

let test_intervals () =
  let t = Intervals.add_exn Intervals.empty ~lo:0 ~hi:10 in
  let t = Intervals.add_exn t ~lo:20 ~hi:30 in
  Alcotest.(check bool) "mem" true (Intervals.mem t 5);
  Alcotest.(check bool) "gap" false (Intervals.mem t 15);
  Alcotest.(check bool) "covers" true (Intervals.covers t ~lo:2 ~hi:9);
  Alcotest.(check bool) "not covers across gap" false (Intervals.covers t ~lo:5 ~hi:25);
  Alcotest.(check bool) "overlaps" true (Intervals.overlaps t ~lo:9 ~hi:12);
  (match Intervals.add t ~lo:5 ~hi:6 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "overlap accepted");
  match Intervals.add t ~lo:7 ~hi:7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty accepted"

let test_text_table () =
  let s =
    Text_table.render ~align:[ Text_table.Left; Text_table.Right ]
      ~header:[ "name"; "count" ]
      [ [ "alpha"; "1" ]; [ "b" ] ]
  in
  Alcotest.(check bool) "contains header" true
    (String.length s > 0 && String.index_opt s '|' <> None);
  Alcotest.(check bool) "pads short rows" true (String.length s > 40)

(* Property tests. *)
let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hex.decode_exn (Hex.encode s) = s)

let prop_bitset_add_mem =
  QCheck.Test.make ~name:"bitset add implies mem" ~count:200
    QCheck.(small_list (int_bound 255))
    (fun xs ->
      let b = Bitset.create 256 in
      List.iter (Bitset.set b) xs;
      List.for_all (Bitset.mem b) xs && Bitset.count b = List.length (List.sort_uniq compare xs))

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:500 QCheck.int64 (fun v ->
      let buf = Buffer.create 10 in
      Varint.write buf v;
      match Varint.read (Buffer.contents buf) ~pos:0 with
      | Some (v', _) -> Int64.equal v v'
      | None -> false)

let prop_crc_differs =
  QCheck.Test.make ~name:"crc32 detects single-byte flip" ~count:200
    QCheck.(pair (string_of_size Gen.(1 -- 64)) small_nat)
    (fun (s, i) ->
      QCheck.assume (String.length s > 0);
      let i = i mod String.length s in
      let flipped = Bytes.of_string s in
      Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor 0xFF));
      Crc32.digest_string s <> Crc32.digest_string (Bytes.to_string flipped))

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng split" `Quick test_rng_split_independent;
    Alcotest.test_case "rng weighted" `Quick test_rng_weighted;
    Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
    Alcotest.test_case "bitset union/diff" `Quick test_bitset_union_diff;
    Alcotest.test_case "crc32 vector" `Quick test_crc32_known;
    Alcotest.test_case "crc32 incremental" `Quick test_crc32_incremental;
    Alcotest.test_case "hex roundtrip" `Quick test_hex_roundtrip;
    Alcotest.test_case "hex dump" `Quick test_hex_dump;
    Alcotest.test_case "ring fifo" `Quick test_ring_fifo;
    Alcotest.test_case "varint roundtrip" `Quick test_varint_roundtrip;
    Alcotest.test_case "varint signed" `Quick test_varint_signed;
    Alcotest.test_case "stats" `Quick test_stats;
    Alcotest.test_case "intervals" `Quick test_intervals;
    Alcotest.test_case "text table" `Quick test_text_table;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_bitset_add_mem;
    QCheck_alcotest.to_alcotest prop_varint_roundtrip;
    QCheck_alcotest.to_alcotest prop_crc_differs;
  ]

(* Additional stats sanity used by the experiment aggregation. *)
let test_stats_percentiles_edges () =
  Alcotest.(check (float 1e-9)) "p0" 1. (Stats.percentile 0. [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p100" 3. (Stats.percentile 100. [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p25 interp" 1.5 (Stats.percentile 25. [ 1.; 2.; 3. ]);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile 101. [ 1. ]))

let prop_percentile_bounded =
  QCheck.Test.make ~name:"percentile stays within sample range" ~count:200
    QCheck.(pair (float_bound_inclusive 100.) (list_of_size Gen.(1 -- 20) (float_bound_inclusive 1000.)))
    (fun (p, xs) ->
      QCheck.assume (xs <> []);
      let v = Stats.percentile p xs in
      let lo, hi = Stats.min_max xs in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let suite =
  suite
  @ [
      Alcotest.test_case "stats percentile edges" `Quick test_stats_percentiles_edges;
      QCheck_alcotest.to_alcotest prop_percentile_bounded;
    ]
