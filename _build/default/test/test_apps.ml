open Eof_apps
module Instr = Eof_rtos.Instr

let ni () = Instr.null ~count:64

let parse_ok s =
  match Json.parse ~instr:(ni ()) s with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "parse %S: %s" s e)

let test_json_values () =
  Alcotest.(check bool) "null" true (parse_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (parse_ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (Json.equal (parse_ok "42") (Json.Num 42.));
  Alcotest.(check bool) "neg frac exp" true
    (Json.equal (parse_ok "-3.5e2") (Json.Num (-350.)));
  Alcotest.(check bool) "string" true (parse_ok "\"hi\"" = Json.Str "hi");
  Alcotest.(check bool) "escapes" true
    (parse_ok "\"a\\n\\t\\\"\\\\\"" = Json.Str "a\n\t\"\\");
  Alcotest.(check bool) "unicode" true (parse_ok "\"\\u0041\"" = Json.Str "A");
  Alcotest.(check bool) "array" true
    (Json.equal (parse_ok "[1, 2, 3]") (Json.Arr [ Json.Num 1.; Json.Num 2.; Json.Num 3. ]));
  Alcotest.(check bool) "object" true
    (Json.equal
       (parse_ok "{\"a\": 1, \"b\": [true]}")
       (Json.Obj [ ("a", Json.Num 1.); ("b", Json.Arr [ Json.Bool true ]) ]))

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse ~instr:(ni ()) s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [ ""; "{"; "[1,"; "tru"; "01x"; "\"unterminated"; "{\"a\" 1}"; "[1] trailing";
      "\"bad \\q escape\""; "{1: 2}"; "\"ctrl \x01 char\"" ]

let test_json_depth_limit () =
  let deep = String.concat "" (List.init 10 (fun _ -> "[")) ^ "1"
             ^ String.concat "" (List.init 10 (fun _ -> "]")) in
  let doc = parse_ok deep in
  Alcotest.(check int) "depth" 10 (Json.depth doc);
  (match Json.encode ~instr:(ni ()) ~max_depth:8 doc with
   | Error `Too_deep -> ()
   | Ok _ -> Alcotest.fail "depth limit not enforced");
  match Json.encode ~instr:(ni ()) ~max_depth:16 doc with
  | Ok _ -> ()
  | Error `Too_deep -> Alcotest.fail "within limit rejected"

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "v\n");
        ("n", Json.Num (-350.));
        ("b", Json.Bool true);
        ("x", Json.Null);
        ("a", Json.Arr [ Json.Num 1.; Json.Str "\"q\"" ]);
      ]
  in
  let text = Json.encode_exn doc in
  Alcotest.(check bool) "roundtrip" true (Json.equal (parse_ok text) doc)

let http_parse s =
  match Http.parse_request ~instr:(ni ()) s with
  | Ok r -> r
  | Error e -> Alcotest.fail (Printf.sprintf "http parse: %s" e)

let test_http_request_line () =
  let r = http_parse "GET /status HTTP/1.1\r\nHost: dev\r\n\r\n" in
  Alcotest.(check string) "method" "GET" (Http.meth_to_string r.Http.meth);
  Alcotest.(check string) "target" "/status" r.Http.target;
  Alcotest.(check (option string)) "host header" (Some "dev") (Http.header r "HOST")

let test_http_body () =
  let r = http_parse "POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nbodyEXTRA" in
  Alcotest.(check string) "body clipped to content-length" "body" r.Http.body;
  let r2 = http_parse "POST /x HTTP/1.1\r\nContent-Length: 999\r\n\r\nshort" in
  Alcotest.(check string) "body clipped to available" "short" r2.Http.body

let test_http_rejects () =
  List.iter
    (fun s ->
      match Http.parse_request ~instr:(ni ()) s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s))
    [ ""; "GET /\r\n\r\n"; "FROB / HTTP/1.1\r\n\r\n"; "GET nopath HTTP/1.1\r\n\r\n";
      "GET / FTP/9.9\r\n\r\n"; "no separator at all" ]

let make_server () =
  Http.Server.create ~instr:(ni ()) ~json_instr:(Instr.null ~count:64)

let test_http_server_routes () =
  let server = make_server () in
  let status raw = (Http.Server.handle server raw).Http.status in
  Alcotest.(check int) "root" 200 (status "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "status" 200 (status "GET /status HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "metrics" 200 (status "GET /metrics HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "devices" 200 (status "GET /devices?limit=2 HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "404" 404 (status "GET /nope HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "bad request" 400 (status "garbage");
  Alcotest.(check int) "delete" 204 (status "DELETE /devices HTTP/1.1\r\n\r\n");
  Alcotest.(check int) "served count" 7 (Http.Server.requests_served server)

let test_http_echo_json () =
  let server = make_server () in
  let post body =
    Http.Server.handle server
      (Printf.sprintf "POST /api/echo HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
         (String.length body) body)
  in
  let ok = post "{\"k\": 1}" in
  Alcotest.(check int) "echo ok" 200 ok.Http.status;
  Alcotest.(check bool) "echo body" true (ok.Http.body = "{\"k\":1}");
  Alcotest.(check int) "echo bad json" 400 (post "{nope").Http.status

let test_serial_stream_mode () =
  let reg = Eof_rtos.Kobj.create () in
  let obj = Serial.create ~reg ~name:"uart0" ~open_flag:Serial.flag_stream in
  let dev = Option.get (Serial.of_obj obj) in
  let panic = { Eof_rtos.Panic.os_name = "T"; panic_site = 1; assert_site = 2 } in
  let out = ref "" in
  Eof_exec.Target.run_silent (fun () ->
      match Serial.write ~panic ~instr:(ni ()) dev "a\nb" with
      | Ok n -> out := string_of_int n
      | Error _ -> Alcotest.fail "write failed");
  (* run_silent discards UART; what matters is the return count (pre-
     translation length) and the stale-path below. *)
  Alcotest.(check string) "write count" "3" !out

let test_serial_stale_faults () =
  let reg = Eof_rtos.Kobj.create () in
  let obj = Serial.create ~reg ~name:"uart0" ~open_flag:0 in
  let dev = Option.get (Serial.of_obj obj) in
  Serial.unregister dev;
  let panic = { Eof_rtos.Panic.os_name = "T"; panic_site = 1; assert_site = 2 } in
  match
    Eof_exec.Target.run_silent (fun () ->
        match Serial.write ~panic ~instr:(ni ()) dev "x" with
        | Ok _ -> `No_fault
        | Error _ -> `Error)
  with
  | `No_fault -> Alcotest.fail "stale write did not fault"
  | `Error -> Alcotest.fail "stale write returned an error instead of faulting"
  | exception Eof_hw.Fault.Trap _ -> ()

let test_sal_socket_validation () =
  let reg = Eof_rtos.Kobj.create () in
  let logged = ref [] in
  let sal =
    Sal.create ~reg ~instr:(ni ()) ~console:(fun s -> logged := s :: !logged)
  in
  (match Sal.socket sal ~domain:Sal.af_inet ~sock_type:Sal.sock_dgram ~protocol:0 with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "valid socket rejected");
  Alcotest.(check int) "creation attempt logged via console" 1 (List.length !logged);
  (match Sal.socket sal ~domain:12345 ~sock_type:1 ~protocol:0 with
   | Error e -> Alcotest.(check int64) "bad domain" Eof_rtos.Kerr.einval e
   | Ok _ -> Alcotest.fail "bad domain accepted");
  (* The attempt is logged before validation (Figure 6's call chain). *)
  Alcotest.(check int) "rejected attempt still logged" 2 (List.length !logged)

let test_sal_lifecycle () =
  let reg = Eof_rtos.Kobj.create () in
  let sal = Sal.create ~reg ~instr:(ni ()) ~console:(fun _ -> ()) in
  let sock =
    match Sal.socket sal ~domain:Sal.af_inet ~sock_type:Sal.sock_stream ~protocol:0 with
    | Ok obj -> Option.get (Sal.of_obj obj)
    | Error _ -> Alcotest.fail "socket"
  in
  (match Sal.listen sal sock ~backlog:4 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "listen before bind accepted");
  (match Sal.bind sal sock ~port:8080 with Ok () -> () | Error _ -> Alcotest.fail "bind");
  (match Sal.listen sal sock ~backlog:4 with Ok () -> () | Error _ -> Alcotest.fail "listen");
  (match Sal.sendto sal sock (String.make 1473 'x') with
   | Error e -> Alcotest.(check int64) "over mtu" Eof_rtos.Kerr.enospc e
   | Ok _ -> Alcotest.fail "oversized datagram accepted");
  (match Sal.sendto sal sock "ping" with Ok 4 -> () | _ -> Alcotest.fail "send");
  (match Sal.close sal sock with Ok () -> () | Error _ -> Alcotest.fail "close");
  match Sal.sendto sal sock "x" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "send on closed socket accepted"

(* Property: JSON parse/encode round-trips for generated documents. *)
let json_gen =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                return Json.Null;
                map (fun b -> Json.Bool b) bool;
                map (fun i -> Json.Num (float_of_int i)) small_int;
                map (fun s -> Json.Str s) (string_size ~gen:printable (0 -- 8));
              ]
          else
            oneof
              [
                map (fun xs -> Json.Arr xs) (list_size (0 -- 3) (self (n / 2)));
                map
                  (fun kvs ->
                    Json.Obj (List.mapi (fun i (_, v) -> (Printf.sprintf "k%d" i, v)) kvs))
                  (list_size (0 -- 3) (pair (return ()) (self (n / 2))));
              ])
        (min n 6))

let prop_json_roundtrip =
  QCheck.Test.make ~name:"json roundtrip" ~count:200 (QCheck.make json_gen) (fun doc ->
      match Json.parse ~instr:(Instr.null ~count:64) (Json.encode_exn doc) with
      | Ok doc' -> Json.equal doc doc'
      | Error _ -> false)

let prop_json_parser_total =
  QCheck.Test.make ~name:"json parser never raises" ~count:500 QCheck.string (fun s ->
      match Json.parse ~instr:(Instr.null ~count:64) s with
      | Ok _ | Error _ -> true)

let prop_http_parser_total =
  QCheck.Test.make ~name:"http parser never raises" ~count:500 QCheck.string (fun s ->
      match Http.parse_request ~instr:(Instr.null ~count:64) s with
      | Ok _ | Error _ -> true)

let suite =
  [
    Alcotest.test_case "json values" `Quick test_json_values;
    Alcotest.test_case "json rejects" `Quick test_json_rejects;
    Alcotest.test_case "json depth limit" `Quick test_json_depth_limit;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "http request line" `Quick test_http_request_line;
    Alcotest.test_case "http body" `Quick test_http_body;
    Alcotest.test_case "http rejects" `Quick test_http_rejects;
    Alcotest.test_case "http server routes" `Quick test_http_server_routes;
    Alcotest.test_case "http echo json" `Quick test_http_echo_json;
    Alcotest.test_case "serial stream mode" `Quick test_serial_stream_mode;
    Alcotest.test_case "serial stale faults" `Quick test_serial_stale_faults;
    Alcotest.test_case "sal socket validation" `Quick test_sal_socket_validation;
    Alcotest.test_case "sal lifecycle" `Quick test_sal_lifecycle;
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_json_parser_total;
    QCheck_alcotest.to_alcotest prop_http_parser_total;
  ]

(* Additional HTTP coverage: query parsing and device routes. *)
let test_http_devices_query () =
  let server = make_server () in
  let get path = Http.Server.handle server (Printf.sprintf "GET %s HTTP/1.1\r\n\r\n" path) in
  let r = get "/devices?limit=2" in
  Alcotest.(check string) "two devices" "[\"dev0\",\"dev1\"]" r.Http.body;
  let r2 = get "/devices?limit=0" in
  Alcotest.(check string) "bad limit falls back" "[\"dev0\",\"dev1\",\"dev2\"]" r2.Http.body;
  ignore (get "/devices" : Http.response);
  (* DELETE shrinks the device table. *)
  ignore (Http.Server.handle server "DELETE /devices HTTP/1.1\r\n\r\n" : Http.response);
  let r3 = get "/devices?limit=9" in
  Alcotest.(check string) "one fewer" "[\"dev0\",\"dev1\"]" r3.Http.body

let test_json_num_formats () =
  List.iter
    (fun (text, expected) ->
      match Json.parse ~instr:(ni ()) text with
      | Ok (Json.Num f) ->
        Alcotest.(check (float 1e-9)) text expected f
      | Ok _ -> Alcotest.fail (text ^ ": not a number")
      | Error e -> Alcotest.fail (text ^ ": " ^ e))
    [ ("0", 0.); ("-0", 0.); ("10.5", 10.5); ("1e3", 1000.); ("2E+2", 200.);
      ("5e-1", 0.5); ("123456789", 123456789.) ]

let suite =
  suite
  @ [
      Alcotest.test_case "http devices query" `Quick test_http_devices_query;
      Alcotest.test_case "json number formats" `Quick test_json_num_formats;
    ]
