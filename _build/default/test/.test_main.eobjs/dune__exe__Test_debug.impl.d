test/test_debug.ml: Alcotest Board Engine Eof_debug Eof_exec Eof_hw Flash List Openocd Printf Profiles QCheck QCheck_alcotest Rsp Session String Target Transport
