test/test_spec.ml: Alcotest Ast Check Eof_expt Eof_os Eof_rtos Eof_spec Lexer List Option Parser Printf String Synth
