test/test_exec.ml: Alcotest Board Clock Engine Eof_exec Eof_hw Fault Fun Profiles Target Uart
