test/test_bugs.ml: Agent Alcotest Arch Board Bytes Eof_agent Eof_debug Eof_hw Eof_os Eof_rtos Freertos Int32 Int64 List Machine Nuttx Osbuild Printf Profiles Rtthread String Wire Zephyr
