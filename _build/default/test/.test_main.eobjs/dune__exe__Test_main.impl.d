test/test_main.ml: Alcotest Test_agent Test_apps Test_baselines Test_bugs Test_core Test_debug Test_exec Test_expt Test_hw Test_rtos Test_spec Test_util
