test/test_expt.ml: Alcotest Eof_core Eof_expt List String
