test/test_apps.ml: Alcotest Eof_apps Eof_exec Eof_hw Eof_rtos Http Json List Option Printf QCheck QCheck_alcotest Sal Serial String
