test/test_util.ml: Alcotest Bitset Buffer Bytes Char Crc32 Eof_util Gen Hex Int64 Intervals List QCheck QCheck_alcotest Ring Rng Stats String Text_table Varint
