test/test_baselines.ml: Alcotest Bytes Eof_agent Eof_baselines Eof_core Eof_hw Eof_os Eof_rtos Eof_util Freertos List Osbuild Pokos String Zephyr
