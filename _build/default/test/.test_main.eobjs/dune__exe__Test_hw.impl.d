test/test_hw.ml: Alcotest Arch Board Bytes Clock Eof_hw Fault Flash Fmt Gen Gpio Image List Memory Partition Printf Profiles QCheck QCheck_alcotest String Uart
