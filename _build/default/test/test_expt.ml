module Targets = Eof_expt.Targets
module Runner = Eof_expt.Runner
module Fig_render = Eof_expt.Fig_render

let test_catalog_shape () =
  Alcotest.(check int) "19 bugs" 19 (List.length Targets.catalog);
  Alcotest.(check int) "5 confirmed" 5
    (List.length (List.filter (fun (b : Targets.bug) -> b.Targets.confirmed) Targets.catalog));
  (* Distribution per the paper: Zephyr 4, RT-Thread 8, FreeRTOS 1, NuttX 6. *)
  let count os =
    List.length (List.filter (fun (b : Targets.bug) -> b.Targets.os = os) Targets.catalog)
  in
  Alcotest.(check int) "zephyr" 4 (count "Zephyr");
  Alcotest.(check int) "rtthread" 8 (count "RT-Thread");
  Alcotest.(check int) "freertos" 1 (count "FreeRTOS");
  Alcotest.(check int) "nuttx" 6 (count "NuttX");
  (* Every bug's OS is a real target and ids are 1..19. *)
  List.iter
    (fun (b : Targets.bug) ->
      Alcotest.(check bool) "os exists" true (Targets.find b.Targets.os <> None))
    Targets.catalog;
  Alcotest.(check (list int)) "ids" (List.init 19 (fun i -> i + 1))
    (List.sort compare (List.map (fun (b : Targets.bug) -> b.Targets.id) Targets.catalog))

let test_match_bug () =
  let crash op os =
    {
      Eof_core.Crash.os;
      kind = Eof_core.Crash.Kernel_panic;
      operation = op;
      scope = "";
      message = "";
      backtrace = [];
      detected_by = Eof_core.Crash.Exception_monitor;
      program = "";
      iteration = 0;
    }
  in
  (match Targets.match_bug (crash "rt_smem_setname" "RT-Thread") with
   | Some b -> Alcotest.(check int) "bug 11" 11 b.Targets.id
   | None -> Alcotest.fail "no match");
  (* Operation names are OS-scoped. *)
  (match Targets.match_bug (crash "rt_smem_setname" "Zephyr") with
   | None -> ()
   | Some _ -> Alcotest.fail "cross-OS match");
  Alcotest.(check (list int)) "found_ids dedups" [ 11 ]
    (Targets.found_ids [ crash "rt_smem_setname" "RT-Thread"; crash "rt_smem_setname" "RT-Thread" ])

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table1_static () =
  let text = Eof_expt.Table1.render () in
  Alcotest.(check bool) "mentions FreeRTOS" true (contains ~needle:"FreeRTOS" text);
  Alcotest.(check bool) "mentions MSP430" true (contains ~needle:"MSP430" text);
  Alcotest.(check int) "12 target rows" 12 (List.length Eof_expt.Table1.rows)

let test_runner_seeds_and_hours () =
  Alcotest.(check int) "n seeds" 5 (List.length (Runner.seeds 5));
  Alcotest.(check bool) "distinct" true
    (List.sort_uniq compare (Runner.seeds 5) = List.sort compare (Runner.seeds 5));
  let series =
    [ { Eof_core.Campaign.iteration = 0; virtual_s = 0.; coverage = 0 };
      { Eof_core.Campaign.iteration = 500; virtual_s = 1.; coverage = 10 };
      { Eof_core.Campaign.iteration = 1000; virtual_s = 2.; coverage = 20 } ]
  in
  let hours = Runner.hours_of_series ~iterations:1000 series in
  (match hours with
   | [ (h0, 0); (h1, 10); (h2, 20) ] ->
     Alcotest.(check (float 1e-9)) "start" 0. h0;
     Alcotest.(check (float 1e-9)) "mid" 12. h1;
     Alcotest.(check (float 1e-9)) "end" 24. h2
   | _ -> Alcotest.fail "bad mapping")

let test_fig_render_value_at () =
  let series = [ (0., 0); (6., 5); (12., 9) ] in
  Alcotest.(check int) "before first" 0 (Fig_render.value_at series 0.);
  Alcotest.(check int) "between" 5 (Fig_render.value_at series 7.);
  Alcotest.(check int) "after last" 9 (Fig_render.value_at series 24.)

let test_fig_render_output () =
  let runs = [ [ (0., 0); (12., 50); (24., 100) ]; [ (0., 0); (12., 40); (24., 90) ] ] in
  let text =
    Fig_render.render ~title:"(x) Demo"
      [ { Fig_render.label = "EOF"; glyph = 'E'; runs } ]
  in
  Alcotest.(check bool) "title" true (contains ~needle:"(x) Demo" text);
  Alcotest.(check bool) "band" true (contains ~needle:"[90-100]" text);
  Alcotest.(check bool) "legend" true (contains ~needle:"E=EOF" text)

let test_overhead_memory_static () =
  let text = Eof_expt.Overhead.render_memory () in
  Alcotest.(check bool) "has average" true (contains ~needle:"Average memory overhead" text);
  (* Every hardware OS appears with a positive increase. *)
  List.iter
    (fun os -> Alcotest.(check bool) os true (contains ~needle:os text))
    [ "NuttX"; "RT-Thread"; "Zephyr"; "FreeRTOS" ]

let suite =
  [
    Alcotest.test_case "bug catalog shape" `Quick test_catalog_shape;
    Alcotest.test_case "match_bug" `Quick test_match_bug;
    Alcotest.test_case "table1 static" `Quick test_table1_static;
    Alcotest.test_case "runner seeds/hours" `Quick test_runner_seeds_and_hours;
    Alcotest.test_case "fig value_at" `Quick test_fig_render_value_at;
    Alcotest.test_case "fig render output" `Quick test_fig_render_output;
    Alcotest.test_case "overhead memory table" `Quick test_overhead_memory_static;
  ]
