open Eof_hw
open Eof_exec
open Eof_debug

let test_checksum_frame () =
  Alcotest.(check int) "sum" 0x9a (Rsp.checksum "OK");
  Alcotest.(check string) "frame" "$OK#9a" (Rsp.make_frame "OK")

let test_escape_roundtrip () =
  let raw = "a$b#c}d*e" in
  let escaped = Rsp.escape_binary raw in
  Alcotest.(check bool) "no raw specials" true
    (not (String.contains escaped '$') && not (String.contains escaped '#'));
  match Rsp.unescape_binary escaped with
  | Ok s -> Alcotest.(check string) "roundtrip" raw s
  | Error e -> Alcotest.fail e

let test_decoder_stream () =
  let d = Rsp.Decoder.create () in
  (* Two frames split across feeds plus noise and an ack. *)
  let ev1 = Rsp.Decoder.feed d "+$O" in
  let ev2 = Rsp.Decoder.feed d ("K#9a" ^ "noise" ^ Rsp.make_frame "m0,4") in
  (match ev1 with
   | [ Rsp.Decoder.Ack ] -> ()
   | _ -> Alcotest.fail "expected ack");
  match ev2 with
  | [ Rsp.Decoder.Packet "OK"; Rsp.Decoder.Packet "m0,4" ] -> ()
  | _ -> Alcotest.fail "expected two packets"

let test_decoder_bad_checksum () =
  let d = Rsp.Decoder.create () in
  match Rsp.Decoder.feed d "$OK#00" with
  | [ Rsp.Decoder.Bad_checksum "OK" ] -> ()
  | _ -> Alcotest.fail "expected bad checksum"

let test_command_roundtrip () =
  let cases =
    [
      Rsp.Q_supported "swbreak+";
      Rsp.Read_mem { addr = 0x20000000; len = 64 };
      Rsp.Write_mem { addr = 0x100; data = "ab\x00\xFF" };
      Rsp.Insert_breakpoint 0x08004000;
      Rsp.Remove_breakpoint 0x08004000;
      Rsp.Continue;
      Rsp.Step;
      Rsp.Read_registers;
      Rsp.Halt_reason;
      Rsp.Flash_erase { addr = 0x08000000; len = 0x4000 };
      Rsp.Flash_write { addr = 0x08000000; data = "}$#*raw\x01" };
      Rsp.Flash_done;
      Rsp.Monitor "reset halt";
      Rsp.Kill;
    ]
  in
  List.iter
    (fun cmd ->
      match Rsp.parse_command (Rsp.render_command cmd) with
      | Ok cmd' -> Alcotest.(check bool) "roundtrip" true (cmd = cmd')
      | Error e -> Alcotest.fail e)
    cases

let test_command_rejects () =
  List.iter
    (fun payload ->
      match Rsp.parse_command payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" payload))
    [ ""; "Mdeadbeef"; "Z9,100,2"; "m100"; "vFlashWrite:zz"; "qUnknown" ]

let test_reply_roundtrip () =
  let pc_reg = 15 in
  List.iter
    (fun reply ->
      match Rsp.parse_reply ~pc_reg (Rsp.render_reply ~pc_reg reply) with
      | Ok reply' -> Alcotest.(check bool) "roundtrip" true (reply = reply')
      | Error e -> Alcotest.fail e)
    [
      Rsp.Ok_reply;
      Rsp.Error_reply 14;
      Rsp.Stop { signal = 5; pc = 0x08001234; detail = "swbreak" };
      Rsp.Stop { signal = 2; pc = 0x08000000; detail = "quantum" };
      Rsp.Exited 0;
    ]

(* A tiny machine for server/session tests: three sites then exit. *)
let make_machine () =
  let board = Board.create Profiles.stm32f4_disco in
  let base = (Board.profile board).Board.flash_base in
  let engine =
    Engine.create ~board ~fault_vector:(base + 0xF00) ~entry:(fun () ->
        Target.site (base + 0x100);
        Target.uart_tx "hello from target\n";
        Target.site (base + 0x104);
        Target.site (base + 0x108))
  in
  let server = Openocd.create ~board ~engine () in
  let transport = Transport.create () in
  (board, engine, server, transport)

let connect_exn (server, transport) =
  match Session.connect ~transport ~server with
  | Ok s -> s
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_session_memory () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let ram_base = (Board.profile board).Board.ram_base in
  (match Session.write_mem s ~addr:ram_base "fuzz" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_mem s ~addr:ram_base ~len:4 with
   | Ok data -> Alcotest.(check string) "rw over rsp" "fuzz" data
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.write_u32 s ~addr:(ram_base + 8) 0xCAFEBABEl with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_u32 s ~addr:(ram_base + 8) with
   | Ok v -> Alcotest.(check int32) "u32" 0xCAFEBABEl v
   | Error e -> Alcotest.fail (Session.error_to_string e));
  match Session.read_mem s ~addr:0x1 ~len:4 with
  | Error (Session.Remote _) -> ()
  | _ -> Alcotest.fail "unmapped read must fail remotely"

let test_session_breakpoint_flow () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let base = (Board.profile board).Board.flash_base in
  (match Session.set_breakpoint s (base + 0x104) with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.continue_ s with
   | Ok (Session.Stopped_breakpoint pc) -> Alcotest.(check int) "bp pc" (base + 0x104) pc
   | Ok _ -> Alcotest.fail "wrong stop"
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.read_pc s with
   | Ok pc -> Alcotest.(check int) "g pc" (base + 0x104) pc
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.drain_uart s with
   | Ok log -> Alcotest.(check string) "uart over monitor" "hello from target\n" log
   | Error e -> Alcotest.fail (Session.error_to_string e));
  match Session.continue_ s with
  | Ok Session.Target_exited -> ()
  | Ok _ -> Alcotest.fail "expected exit"
  | Error e -> Alcotest.fail (Session.error_to_string e)

let test_session_reset_and_flash () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  let base = (Board.profile board).Board.flash_base in
  (match Session.flash_erase s ~addr:base ~len:0x4000 with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.flash_write s ~addr:base "IMG}$#data" with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  (match Session.flash_done s with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check string) "flash content" "IMG}$#data"
    (Flash.read (Board.flash board) ~addr:base ~len:10);
  (match Session.reset_target s with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check int) "power cycled" 1 (Board.power_cycles board)

let test_transport_failures () =
  let _, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  Transport.set_failure_mode transport Transport.Down;
  (match Session.read_pc s with
   | Error Session.Timeout -> ()
   | _ -> Alcotest.fail "expected timeout on dead link");
  Transport.set_failure_mode transport Transport.Up;
  (match Session.read_pc s with
   | Ok _ -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check bool) "timeouts counted" true (Transport.timeouts transport >= 1);
  Alcotest.(check bool) "latency accrues" true (Transport.elapsed_us transport > 0.)

let test_quantum_stop_reports_pc () =
  let board = Board.create Profiles.stm32f4_disco in
  let base = (Board.profile board).Board.flash_base in
  let engine =
    Engine.create ~board ~fault_vector:(base + 0xF00) ~entry:(fun () ->
        let rec spin () =
          Target.site (base + 0x200);
          spin ()
        in
        spin ())
  in
  let server = Openocd.create ~continue_quantum:500 ~board ~engine () in
  let transport = Transport.create () in
  let s = connect_exn (server, transport) in
  match Session.continue_ s with
  | Ok (Session.Stopped_quantum pc) -> Alcotest.(check int) "spin pc" (base + 0x200) pc
  | Ok _ -> Alcotest.fail "expected quantum stop"
  | Error e -> Alcotest.fail (Session.error_to_string e)

let prop_decoder_frame_any_payload =
  QCheck.Test.make ~name:"decoder accepts any escaped framed payload" ~count:200
    QCheck.string (fun raw ->
      let payload = Rsp.escape_binary raw in
      let d = Rsp.Decoder.create () in
      match Rsp.Decoder.feed d (Rsp.make_frame payload) with
      | [ Rsp.Decoder.Packet p ] -> p = payload
      | _ -> false)

let suite =
  [
    Alcotest.test_case "checksum/frame" `Quick test_checksum_frame;
    Alcotest.test_case "escape roundtrip" `Quick test_escape_roundtrip;
    Alcotest.test_case "decoder stream" `Quick test_decoder_stream;
    Alcotest.test_case "decoder bad checksum" `Quick test_decoder_bad_checksum;
    Alcotest.test_case "command roundtrip" `Quick test_command_roundtrip;
    Alcotest.test_case "command rejects" `Quick test_command_rejects;
    Alcotest.test_case "reply roundtrip" `Quick test_reply_roundtrip;
    Alcotest.test_case "session memory" `Quick test_session_memory;
    Alcotest.test_case "session breakpoint flow" `Quick test_session_breakpoint_flow;
    Alcotest.test_case "session reset/flash" `Quick test_session_reset_and_flash;
    Alcotest.test_case "transport failures" `Quick test_transport_failures;
    Alcotest.test_case "quantum stop reports pc" `Quick test_quantum_stop_reports_pc;
    QCheck_alcotest.to_alcotest prop_decoder_frame_any_payload;
  ]

let test_gpio_injection_over_monitor () =
  let board, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  (match Eof_hw.Gpio.configure_irq (Board.gpio board) ~pin:2 Eof_hw.Gpio.Rising with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Session.inject_gpio s ~pin:2 ~level:true with
   | Ok () -> ()
   | Error e -> Alcotest.fail (Session.error_to_string e));
  Alcotest.(check bool) "level set" true (Eof_hw.Gpio.level (Board.gpio board) ~pin:2);
  Alcotest.(check int) "irq latched" 1 (Eof_hw.Gpio.pending_count (Board.gpio board));
  match Session.inject_gpio s ~pin:99 ~level:true with
  | Error (Session.Remote _) -> ()
  | _ -> Alcotest.fail "bad pin accepted"

let test_monitor_unknown_command () =
  let _, _, server, transport = make_machine () in
  let s = connect_exn (server, transport) in
  match Session.monitor s "frobnicate" with
  | Error (Session.Remote 1) -> ()
  | _ -> Alcotest.fail "unknown monitor command accepted"

let suite =
  suite
  @ [
      Alcotest.test_case "gpio injection over monitor" `Quick
        test_gpio_injection_over_monitor;
      Alcotest.test_case "unknown monitor command" `Quick test_monitor_unknown_command;
    ]

(* Property: every renderable command round-trips through the parser. *)
let prop_command_roundtrip =
  let cmd_gen =
    QCheck.Gen.(
      oneof
        [
          map2 (fun a l -> Rsp.Read_mem { addr = a land 0xFFFFFFF; len = l land 0xFFFF }) nat nat;
          map2
            (fun a (d : string) -> Rsp.Write_mem { addr = a land 0xFFFFFFF; data = d })
            nat (string_size (0 -- 32));
          map (fun a -> Rsp.Insert_breakpoint (a land 0xFFFFFFF)) nat;
          map (fun a -> Rsp.Remove_breakpoint (a land 0xFFFFFFF)) nat;
          return Rsp.Continue;
          return Rsp.Step;
          return Rsp.Read_registers;
          return Rsp.Halt_reason;
          map2 (fun a l -> Rsp.Flash_erase { addr = a land 0xFFFFFFF; len = l land 0xFFFFF }) nat nat;
          map2
            (fun a (d : string) -> Rsp.Flash_write { addr = a land 0xFFFFFFF; data = d })
            nat (string_size (0 -- 32));
          return Rsp.Flash_done;
          map (fun s -> Rsp.Monitor s) (string_size (1 -- 16));
          return Rsp.Kill;
        ])
  in
  QCheck.Test.make ~name:"rsp command roundtrip (generated)" ~count:300 (QCheck.make cmd_gen)
    (fun cmd ->
      match Rsp.parse_command (Rsp.render_command cmd) with
      | Ok cmd' -> cmd = cmd'
      | Error _ -> false)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_command_roundtrip ]

let test_read_pc_across_architectures () =
  (* The g-packet register dump must encode the PC correctly for every
     supported architecture's register numbering and endianness. *)
  List.iter
    (fun profile ->
      let board = Board.create profile in
      let site = profile.Board.flash_base + 0x123 * 4 in
      let engine =
        Engine.create ~board ~fault_vector:profile.Board.flash_base ~entry:(fun () ->
            Target.site site;
            Target.site (site + 4))
      in
      let server = Openocd.create ~board ~engine () in
      let transport = Transport.create () in
      let s = connect_exn (server, transport) in
      (match Session.step s with
       | Ok _ -> ()
       | Error e -> Alcotest.fail (Session.error_to_string e));
      match Session.read_pc s with
      | Ok pc -> Alcotest.(check int) profile.Board.name site pc
      | Error e -> Alcotest.fail (profile.Board.name ^ ": " ^ Session.error_to_string e))
    Profiles.all

let suite =
  suite
  @ [ Alcotest.test_case "read_pc across architectures" `Quick
        test_read_pc_across_architectures ]
