open Eof_hw
open Eof_rtos

let make_ram () = Memory.create ~base:0x2000_0000 ~size:65536 ~endianness:Arch.Little

let make_heap ?(size = 4096) () =
  let ram = make_ram () in
  match Heap.init ~mem:ram ~base:0x2000_1000 ~size with
  | Ok h -> (ram, h)
  | Error e -> Alcotest.fail e

let test_heap_init_validation () =
  let ram = make_ram () in
  (match Heap.init ~mem:ram ~base:0x2000_1000 ~size:8 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "tiny region accepted");
  (match Heap.init ~mem:ram ~base:0x2000_1004 ~size:64 with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "misaligned base accepted");
  match Heap.init ~mem:ram ~base:0x2000_1000 ~size:(1 lsl 20) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "oversized region accepted"

let test_heap_alloc_free () =
  let _, h = make_heap () in
  let a = Option.get (Heap.alloc h 100) in
  let b = Option.get (Heap.alloc h 200) in
  Alcotest.(check bool) "disjoint" true (b >= a + 100 || a >= b + 200);
  Alcotest.(check bool) "used grows" true (Heap.used_bytes h >= 300);
  (match Heap.free h a with Ok () -> () | Error e -> Alcotest.fail e);
  (match Heap.free h b with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "all free" 0 (Heap.used_bytes h);
  Alcotest.(check int) "coalesced to one block" 1 (Heap.block_count h)

let test_heap_double_free () =
  let _, h = make_heap () in
  let a = Option.get (Heap.alloc h 64) in
  (match Heap.free h a with Ok () -> () | Error e -> Alcotest.fail e);
  match Heap.free h a with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double free accepted"

let test_heap_exhaustion () =
  let _, h = make_heap ~size:256 () in
  let rec grab acc =
    match Heap.alloc h 32 with Some a -> grab (a :: acc) | None -> acc
  in
  let blocks = grab [] in
  Alcotest.(check bool) "some allocations" true (List.length blocks >= 4);
  Alcotest.(check (option int)) "exhausted" None (Heap.alloc h 32);
  List.iter (fun a -> ignore (Heap.free h a : (unit, string) result)) blocks;
  Alcotest.(check bool) "recovered" true (Heap.alloc h 128 <> None)

let test_heap_corruption_detected () =
  let ram, h = make_heap () in
  let a = Option.get (Heap.alloc h 32) in
  ignore a;
  (* Scribble the first block header. *)
  Memory.write_u32 ram (Heap.base h + 4) 0xBADC0DEl;
  (match Heap.check h with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "corruption not reported by check");
  try
    ignore (Heap.alloc h 8 : int option);
    Alcotest.fail "corrupted walk did not fault"
  with Fault.Trap f ->
    Alcotest.(check bool) "mem fault" true (f.Fault.kind = Fault.Mem_manage_fault)

let test_heap_lock () =
  let _, h = make_heap () in
  (match Heap.lock h with Ok () -> () | Error _ -> Alcotest.fail "first lock");
  (match Heap.lock h with
   | Error `Already_locked -> ()
   | Ok () -> Alcotest.fail "re-entry allowed");
  Heap.unlock h;
  match Heap.lock h with Ok () -> () | Error _ -> Alcotest.fail "relock after unlock"

let test_kobj_lifecycle () =
  let reg = Kobj.create () in
  let obj = Sem.create ~reg ~name:"s" ~initial:1 ~max_count:2 in
  let obj = match obj with Ok o -> o | Error _ -> Alcotest.fail "create" in
  Alcotest.(check int) "active" 1 (Kobj.active_count reg);
  (match Kobj.lookup_active reg obj.Kobj.handle ~kind:"sem" with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "lookup active");
  (match Kobj.lookup_active reg obj.Kobj.handle ~kind:"msgq" with
   | Error e -> Alcotest.(check int64) "kind mismatch" Kerr.einval e
   | Ok _ -> Alcotest.fail "wrong kind accepted");
  Kobj.delete obj;
  (match Kobj.lookup_active reg obj.Kobj.handle ~kind:"sem" with
   | Error e -> Alcotest.(check int64) "deleted" Kerr.enoent e
   | Ok _ -> Alcotest.fail "deleted still active");
  (* The carcass is still reachable through the unchecked lookup. *)
  Alcotest.(check bool) "carcass reachable" true (Kobj.lookup reg obj.Kobj.handle <> None)

let test_msgq_fifo () =
  let ram, h = make_heap () in
  ignore ram;
  let reg = Kobj.create () in
  let obj =
    match Msgq.create ~reg ~heap:h ~name:"q" ~capacity:2 ~item_size:4 with
    | Ok o -> o
    | Error _ -> Alcotest.fail "create"
  in
  let q = Option.get (Msgq.of_obj obj) in
  (match Msgq.recv q with
   | Error e -> Alcotest.(check int64) "empty" Kerr.eagain e
   | Ok _ -> Alcotest.fail "recv from empty");
  (match Msgq.send q "ab" with Ok () -> () | Error _ -> Alcotest.fail "send 1");
  (match Msgq.send q "cdef99" with Ok () -> () | Error _ -> Alcotest.fail "send 2");
  (match Msgq.send q "x" with
   | Error e -> Alcotest.(check int64) "full" Kerr.eagain e
   | Ok () -> Alcotest.fail "overfull");
  (match Msgq.recv q with
   | Ok m -> Alcotest.(check string) "padded fifo" "ab\000\000" m
   | Error _ -> Alcotest.fail "recv 1");
  (match Msgq.recv q with
   | Ok m -> Alcotest.(check string) "truncated fifo" "cdef" m
   | Error _ -> Alcotest.fail "recv 2")

let test_msgq_purge_poisons () =
  let _, h = make_heap () in
  let reg = Kobj.create () in
  let obj =
    match Msgq.create ~reg ~heap:h ~name:"q" ~capacity:2 ~item_size:4 with
    | Ok o -> o
    | Error _ -> Alcotest.fail "create"
  in
  let q = Option.get (Msgq.of_obj obj) in
  ignore (Msgq.send q "data" : (unit, int64) result);
  Msgq.purge q;
  Alcotest.(check bool) "purged flag" true q.Msgq.purged;
  Alcotest.(check int) "emptied" 0 (Msgq.count q)

let test_sem_bounds () =
  let reg = Kobj.create () in
  (match Sem.create ~reg ~name:"bad" ~initial:5 ~max_count:3 with
   | Error e -> Alcotest.(check int64) "invalid" Kerr.einval e
   | Ok _ -> Alcotest.fail "initial > max accepted");
  let obj =
    match Sem.create ~reg ~name:"s" ~initial:1 ~max_count:2 with
    | Ok o -> o
    | Error _ -> Alcotest.fail "create"
  in
  let s = Option.get (Sem.of_obj obj) in
  (match Sem.take s with Ok () -> () | Error _ -> Alcotest.fail "take");
  (match Sem.take s with
   | Error e -> Alcotest.(check int64) "empty take" Kerr.eagain e
   | Ok () -> Alcotest.fail "negative count");
  ignore (Sem.give s : (unit, int64) result);
  ignore (Sem.give s : (unit, int64) result);
  match Sem.give s with
  | Error e -> Alcotest.(check int64) "over give" Kerr.enospc e
  | Ok () -> Alcotest.fail "count above max"

let test_mutex_ownership () =
  let reg = Kobj.create () in
  let m = Option.get (Mutex.of_obj (Mutex.create ~reg ~name:"m")) in
  (match Mutex.lock m ~owner:1 with Ok () -> () | Error _ -> Alcotest.fail "lock");
  (match Mutex.lock m ~owner:1 with Ok () -> () | Error _ -> Alcotest.fail "recursive");
  (match Mutex.lock m ~owner:2 with
   | Error e -> Alcotest.(check int64) "contended" Kerr.ebusy e
   | Ok () -> Alcotest.fail "stolen");
  (match Mutex.unlock m ~owner:2 with
   | Error e -> Alcotest.(check int64) "not owner" Kerr.eperm e
   | Ok () -> Alcotest.fail "foreign unlock");
  ignore (Mutex.unlock m ~owner:1 : (unit, int64) result);
  Alcotest.(check (option int)) "still held (depth)" (Some 1) (Mutex.holder m);
  ignore (Mutex.unlock m ~owner:1 : (unit, int64) result);
  Alcotest.(check (option int)) "released" None (Mutex.holder m)

let test_event_flags () =
  let reg = Kobj.create () in
  let e = Option.get (Event.of_obj (Event.create ~reg ~name:"e")) in
  Event.send e 0b0101;
  (match Event.recv e ~mask:0b0001 ~all:false ~clear:false with
   | Ok got -> Alcotest.(check int) "any" 0b0001 got
   | Error _ -> Alcotest.fail "any");
  (match Event.recv e ~mask:0b0011 ~all:true ~clear:false with
   | Error e' -> Alcotest.(check int64) "all unsatisfied" Kerr.eagain e'
   | Ok _ -> Alcotest.fail "all with missing bit");
  (match Event.recv e ~mask:0b0101 ~all:true ~clear:true with
   | Ok got -> Alcotest.(check int) "all+clear" 0b0101 got
   | Error _ -> Alcotest.fail "all");
  Alcotest.(check int) "cleared" 0 (Event.flags e);
  match Event.recv e ~mask:0 ~all:false ~clear:false with
  | Error e' -> Alcotest.(check int64) "empty mask" Kerr.einval e'
  | Ok _ -> Alcotest.fail "empty mask accepted"

let test_timer_wheel () =
  let reg = Kobj.create () in
  let wheel = Swtimer.create_wheel () in
  let fired = ref 0 in
  let t1 =
    match
      Swtimer.create ~reg ~wheel ~name:"t1" ~kind:Swtimer.Oneshot ~period:2
        ~callback:(fun () -> incr fired)
    with
    | Ok o -> Option.get (Swtimer.of_obj o)
    | Error _ -> Alcotest.fail "create"
  in
  Swtimer.start t1;
  Alcotest.(check int) "tick 1: nothing" 0 (Swtimer.tick wheel);
  Alcotest.(check int) "tick 2: fires" 1 (Swtimer.tick wheel);
  Alcotest.(check int) "oneshot stops" 0 (Swtimer.tick wheel);
  Alcotest.(check int) "fired once" 1 !fired;
  let t2 =
    match
      Swtimer.create ~reg ~wheel ~name:"t2" ~kind:Swtimer.Periodic ~period:1
        ~callback:(fun () -> incr fired)
    with
    | Ok o -> Option.get (Swtimer.of_obj o)
    | Error _ -> Alcotest.fail "create periodic"
  in
  Swtimer.start t2;
  ignore (Swtimer.tick wheel : int);
  ignore (Swtimer.tick wheel : int);
  Alcotest.(check int) "periodic fires each tick" 3 !fired

let test_mempool () =
  let _, h = make_heap () in
  let reg = Kobj.create () in
  (match Mempool.validate_geometry ~block_size:0 ~block_count:4 with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "zero block size validated");
  let pool =
    match Mempool.create_unchecked ~reg ~heap:h ~name:"p" ~block_size:16 ~block_count:2 with
    | Ok o -> Option.get (Mempool.of_obj o)
    | Error _ -> Alcotest.fail "create"
  in
  let a = match Mempool.alloc pool with Ok a -> a | Error _ -> Alcotest.fail "alloc 1" in
  let _b = match Mempool.alloc pool with Ok b -> b | Error _ -> Alcotest.fail "alloc 2" in
  (match Mempool.alloc pool with
   | Error e -> Alcotest.(check int64) "exhausted" Kerr.enomem e
   | Ok _ -> Alcotest.fail "over-alloc");
  (match Mempool.free_block pool a with Ok () -> () | Error _ -> Alcotest.fail "free");
  (match Mempool.free_block pool a with
   | Error _ -> ()
   | Ok () -> Alcotest.fail "double free");
  (* The stride-0 pool faults on alloc (bug #7's mechanism). *)
  let zero =
    match Mempool.create_unchecked ~reg ~heap:h ~name:"z" ~block_size:0 ~block_count:4 with
    | Ok o -> Option.get (Mempool.of_obj o)
    | Error _ -> Alcotest.fail "create zero"
  in
  try
    ignore (Mempool.alloc zero : (int, int64) result);
    Alcotest.fail "stride-0 alloc did not fault"
  with Fault.Trap _ -> ()

let test_sched_priorities () =
  let reg = Kobj.create () in
  let wheel = Swtimer.create_wheel () in
  let sched = Sched.create ~reg ~wheel in
  let log = ref [] in
  let spawn name prio =
    match
      Sched.spawn sched ~name ~priority:prio ~stack_size:512 ~body:(fun _ ->
          log := name :: !log)
    with
    | Ok o -> Option.get (Sched.of_obj o)
    | Error _ -> Alcotest.fail "spawn"
  in
  let _lo = spawn "low" 10 in
  let hi = spawn "high" 1 in
  Sched.tick sched;
  Alcotest.(check (list string)) "high runs first" [ "high" ] !log;
  Sched.suspend hi;
  Sched.tick sched;
  Alcotest.(check (list string)) "low runs when high suspended" [ "low"; "high" ] !log;
  Sched.resume hi;
  Sched.tick sched;
  Alcotest.(check (list string)) "high again" [ "high"; "low"; "high" ] !log;
  match Sched.spawn sched ~name:"bad" ~priority:99 ~stack_size:512 ~body:(fun _ -> ()) with
  | Error e -> Alcotest.(check int64) "priority bounds" Kerr.einval e
  | Ok _ -> Alcotest.fail "bad priority accepted"

let test_sched_round_robin () =
  let reg = Kobj.create () in
  let wheel = Swtimer.create_wheel () in
  let sched = Sched.create ~reg ~wheel in
  let log = ref [] in
  let spawn name =
    ignore
      (Sched.spawn sched ~name ~priority:5 ~stack_size:512 ~body:(fun _ ->
           log := name :: !log))
  in
  spawn "a";
  spawn "b";
  Sched.run_ticks sched 4;
  let a_runs = List.length (List.filter (( = ) "a") !log) in
  let b_runs = List.length (List.filter (( = ) "b") !log) in
  Alcotest.(check int) "fair a" 2 a_runs;
  Alcotest.(check int) "fair b" 2 b_runs

let test_api_table_validation () =
  let entry name args ret =
    { Api.name; args; ret; doc = ""; weight = 1; handler = (fun _ -> Api.ok_status) }
  in
  (* Consuming an unproduced kind must be rejected. *)
  (try
     ignore
       (Api.make_table ~os:"X" [ entry "use" [ ("q", Api.A_res "queue") ] `Status ]);
     Alcotest.fail "unproduced resource accepted"
   with Invalid_argument _ -> ());
  (* Duplicate names rejected. *)
  (try
     ignore (Api.make_table ~os:"X" [ entry "a" [] `Status; entry "a" [] `Status ]);
     Alcotest.fail "duplicate accepted"
   with Invalid_argument _ -> ());
  let t =
    Api.make_table ~os:"X"
      [ entry "mk" [] (`Resource "queue"); entry "use" [ ("q", Api.A_res "queue") ] `Status ]
  in
  Alcotest.(check (list string)) "kinds" [ "queue" ] (Api.resource_kinds t);
  Alcotest.(check int) "producers" 1 (List.length (Api.producers t "queue"));
  Alcotest.(check int) "consumers" 1 (List.length (Api.consumers t "queue"))

let test_panic_and_assert_output () =
  let board = Board.create Profiles.stm32f4_disco in
  let ctx = { Panic.os_name = "TestOS"; panic_site = 0x100; assert_site = 0x104 } in
  let engine =
    Eof_exec.Engine.create ~board ~fault_vector:0x100 ~entry:(fun () ->
        Panic.kassert ctx false "something odd";
        Panic.panic ctx ~backtrace:[ "a.c : f : 1" ] "boom")
  in
  (match Eof_exec.Engine.run engine ~fuel:100 with
   | Eof_exec.Engine.Faulted _ -> ()
   | _ -> Alcotest.fail "expected fault");
  let log = Uart.drain (Board.uart board) in
  let contains needle =
    let nl = String.length needle and hl = String.length log in
    let rec go i = i + nl <= hl && (String.sub log i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "assert line" true (contains "ASSERTION FAILED: something odd");
  Alcotest.(check bool) "panic line" true (contains "KERNEL PANIC: boom");
  Alcotest.(check bool) "backtrace" true (contains "Level 1: a.c : f : 1")

(* Property: heap alloc/free in arbitrary interleavings preserves the
   block-tiling invariant. *)
let prop_heap_invariant =
  QCheck.Test.make ~name:"heap invariant under random alloc/free" ~count:100
    QCheck.(small_list (pair bool (int_bound 200)))
    (fun ops ->
      let _, h = make_heap () in
      let live = ref [] in
      List.iter
        (fun (is_alloc, n) ->
          if is_alloc || !live = [] then begin
            match Heap.alloc h (n + 1) with
            | Some a -> live := a :: !live
            | None -> ()
          end
          else begin
            match !live with
            | a :: rest ->
              live := rest;
              ignore (Heap.free h a : (unit, string) result)
            | [] -> ()
          end)
        ops;
      Heap.check h = Ok ())

let suite =
  [
    Alcotest.test_case "heap init validation" `Quick test_heap_init_validation;
    Alcotest.test_case "heap alloc/free/coalesce" `Quick test_heap_alloc_free;
    Alcotest.test_case "heap double free" `Quick test_heap_double_free;
    Alcotest.test_case "heap exhaustion" `Quick test_heap_exhaustion;
    Alcotest.test_case "heap corruption detected" `Quick test_heap_corruption_detected;
    Alcotest.test_case "heap lock" `Quick test_heap_lock;
    Alcotest.test_case "kobj lifecycle" `Quick test_kobj_lifecycle;
    Alcotest.test_case "msgq fifo" `Quick test_msgq_fifo;
    Alcotest.test_case "msgq purge poisons" `Quick test_msgq_purge_poisons;
    Alcotest.test_case "sem bounds" `Quick test_sem_bounds;
    Alcotest.test_case "mutex ownership" `Quick test_mutex_ownership;
    Alcotest.test_case "event flags" `Quick test_event_flags;
    Alcotest.test_case "timer wheel" `Quick test_timer_wheel;
    Alcotest.test_case "mempool" `Quick test_mempool;
    Alcotest.test_case "sched priorities" `Quick test_sched_priorities;
    Alcotest.test_case "sched round robin" `Quick test_sched_round_robin;
    Alcotest.test_case "api table validation" `Quick test_api_table_validation;
    Alcotest.test_case "panic/assert output" `Quick test_panic_and_assert_output;
    QCheck_alcotest.to_alcotest prop_heap_invariant;
  ]

let test_ramfs_roundtrip () =
  let _, h = make_heap ~size:8192 () in
  let fs = Ramfs.create ~heap:h ~max_files:4 ~max_file_bytes:512 in
  (match Ramfs.open_ fs ~path:"/log" ~create:false ~write:false with
   | Error e -> Alcotest.(check int64) "missing" Kerr.enoent e
   | Ok _ -> Alcotest.fail "opened missing file");
  let fd =
    match Ramfs.open_ fs ~path:"/log" ~create:true ~write:true with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "create"
  in
  (match Ramfs.write fs fd "hello " with Ok 6 -> () | _ -> Alcotest.fail "write 1");
  (match Ramfs.write fs fd "world" with Ok 5 -> () | _ -> Alcotest.fail "write 2");
  Alcotest.(check (option int)) "size" (Some 11) (Ramfs.size_of fs ~path:"/log");
  let rd =
    match Ramfs.open_ fs ~path:"/log" ~create:false ~write:false with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "reopen"
  in
  (match Ramfs.read fs rd ~max:6 with
   | Ok s -> Alcotest.(check string) "chunk 1" "hello " s
   | Error _ -> Alcotest.fail "read 1");
  (match Ramfs.read fs rd ~max:100 with
   | Ok s -> Alcotest.(check string) "chunk 2" "world" s
   | Error _ -> Alcotest.fail "read 2");
  (match Ramfs.read fs rd ~max:100 with
   | Ok "" -> ()
   | _ -> Alcotest.fail "eof");
  (match Ramfs.write fs rd "nope" with
   | Error e -> Alcotest.(check int64) "read-only" Kerr.eperm e
   | Ok _ -> Alcotest.fail "wrote through read-only fd")

let test_ramfs_limits_and_unlink () =
  let _, h = make_heap ~size:8192 () in
  let fs = Ramfs.create ~heap:h ~max_files:2 ~max_file_bytes:64 in
  let fd =
    match Ramfs.open_ fs ~path:"/a" ~create:true ~write:true with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "create"
  in
  (match Ramfs.write fs fd (String.make 100 'x') with
   | Error e -> Alcotest.(check int64) "file limit" Kerr.enospc e
   | Ok _ -> Alcotest.fail "over-limit write accepted");
  ignore (Ramfs.open_ fs ~path:"/b" ~create:true ~write:true : (Ramfs.fd, int64) result);
  (match Ramfs.open_ fs ~path:"/c" ~create:true ~write:true with
   | Error e -> Alcotest.(check int64) "file table full" Kerr.enospc e
   | Ok _ -> Alcotest.fail "third file accepted");
  (* Unlink frees the slot and stales the descriptor. *)
  (match Ramfs.unlink fs ~path:"/a" with Ok () -> () | Error _ -> Alcotest.fail "unlink");
  (match Ramfs.write fs fd "y" with
   | Error e -> Alcotest.(check int64) "stale fd" Kerr.enoent e
   | Ok _ -> Alcotest.fail "wrote through stale fd");
  (match Ramfs.open_ fs ~path:"/c" ~create:true ~write:true with
   | Ok _ -> ()
   | Error _ -> Alcotest.fail "slot not reclaimed");
  (match Ramfs.close fs fd with Ok () -> () | Error _ -> Alcotest.fail "close stale");
  match Ramfs.close fs fd with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double close accepted"

let test_ramfs_heap_backed () =
  let _, h = make_heap ~size:2048 () in
  let fs = Ramfs.create ~heap:h ~max_files:4 ~max_file_bytes:4096 in
  let fd =
    match Ramfs.open_ fs ~path:"/big" ~create:true ~write:true with
    | Ok fd -> fd
    | Error _ -> Alcotest.fail "create"
  in
  (* Exhaust the heap through the filesystem. *)
  let rec fill n =
    if n > 100 then Alcotest.fail "never exhausted"
    else
      match Ramfs.write fs fd (String.make 128 'z') with
      | Ok _ -> fill (n + 1)
      | Error e -> Alcotest.(check int64) "heap exhaustion surfaces" Kerr.enospc e
  in
  fill 0;
  (* Unlinking returns the storage. *)
  (match Ramfs.unlink fs ~path:"/big" with Ok () -> () | Error _ -> Alcotest.fail "unlink");
  Alcotest.(check bool) "heap recovered" true (Heap.alloc h 256 <> None)

let suite =
  suite
  @ [
      Alcotest.test_case "ramfs roundtrip" `Quick test_ramfs_roundtrip;
      Alcotest.test_case "ramfs limits/unlink" `Quick test_ramfs_limits_and_unlink;
      Alcotest.test_case "ramfs heap-backed" `Quick test_ramfs_heap_backed;
    ]

let test_task_and_timer_tables_bounded () =
  let reg = Kobj.create () in
  let wheel = Swtimer.create_wheel () in
  let sched = Sched.create ~reg ~wheel in
  for _ = 1 to Sched.max_tasks do
    match Sched.spawn sched ~name:"t" ~priority:5 ~stack_size:512 ~body:(fun _ -> ()) with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "spawn under the cap rejected"
  done;
  (match Sched.spawn sched ~name:"overflow" ~priority:5 ~stack_size:512 ~body:(fun _ -> ()) with
   | Error e -> Alcotest.(check int64) "tcb table full" Kerr.enospc e
   | Ok _ -> Alcotest.fail "spawned past the table");
  for _ = 1 to Swtimer.max_timers do
    match
      Swtimer.create ~reg ~wheel ~name:"tm" ~kind:Swtimer.Oneshot ~period:1
        ~callback:(fun () -> ())
    with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "timer under the cap rejected"
  done;
  match
    Swtimer.create ~reg ~wheel ~name:"tm" ~kind:Swtimer.Oneshot ~period:1
      ~callback:(fun () -> ())
  with
  | Error e -> Alcotest.(check int64) "timer table full" Kerr.enospc e
  | Ok _ -> Alcotest.fail "created past the table"

let test_finished_tasks_reaped () =
  let reg = Kobj.create () in
  let wheel = Swtimer.create_wheel () in
  let sched = Sched.create ~reg ~wheel in
  (* Churn far past the cap: finishing tasks must free their slots. *)
  for i = 1 to 3 * Sched.max_tasks do
    match
      Sched.spawn sched ~name:(Printf.sprintf "t%d" i) ~priority:5 ~stack_size:512
        ~body:(fun _ -> ())
    with
    | Ok obj ->
      (match Sched.of_obj obj with Some tcb -> Sched.finish tcb | None -> ())
    | Error _ -> Alcotest.fail "reaping failed to free slots"
  done

(* Property: msgq behaves as a bounded FIFO of fixed-size slots. *)
let prop_msgq_fifo =
  QCheck.Test.make ~name:"msgq is a bounded fifo" ~count:100
    QCheck.(small_list (option (string_of_size Gen.(0 -- 8))))
    (fun ops ->
      let _, h = make_heap () in
      let reg = Kobj.create () in
      match Msgq.create ~reg ~heap:h ~name:"q" ~capacity:3 ~item_size:4 with
      | Error _ -> false
      | Ok obj ->
        let q = Option.get (Msgq.of_obj obj) in
        let model = Queue.create () in
        let pad s =
          if String.length s >= 4 then String.sub s 0 4
          else s ^ String.make (4 - String.length s) '\000'
        in
        List.for_all
          (fun op ->
            match op with
            | Some msg ->
              (* send *)
              (match Msgq.send q msg with
               | Ok () ->
                 Queue.push (pad msg) model;
                 Queue.length model <= 3
               | Error _ -> Queue.length model = 3)
            | None ->
              (* recv *)
              (match Msgq.recv q with
               | Ok got -> (not (Queue.is_empty model)) && Queue.pop model = got
               | Error _ -> Queue.is_empty model))
          ops)

let suite =
  suite
  @ [
      Alcotest.test_case "task/timer tables bounded" `Quick
        test_task_and_timer_tables_bounded;
      Alcotest.test_case "finished tasks reaped" `Quick test_finished_tasks_reaped;
      QCheck_alcotest.to_alcotest prop_msgq_fifo;
    ]

let test_workq_semantics () =
  let wq = Workq.create ~drain_per_tick:2 in
  let log = ref [] in
  let a = Workq.make_item (fun () -> log := "a" :: !log) in
  let b = Workq.make_item (fun () -> log := "b" :: !log) in
  let c = Workq.make_item (fun () -> log := "c" :: !log) in
  Alcotest.(check bool) "submit a" true (Workq.submit wq a);
  Alcotest.(check bool) "double submit rejected" false (Workq.submit wq a);
  ignore (Workq.submit wq b : bool);
  ignore (Workq.submit wq c : bool);
  Alcotest.(check int) "pending" 3 (Workq.pending wq);
  Alcotest.(check int) "budgeted drain" 2 (Workq.drain_tick wq);
  Alcotest.(check (list string)) "fifo order" [ "b"; "a" ] !log;
  (* a has run, so it can be resubmitted. *)
  Alcotest.(check bool) "resubmit after run" true (Workq.submit wq a);
  Alcotest.(check int) "second drain" 2 (Workq.drain_tick wq);
  Alcotest.(check int) "executed total" 4 (Workq.executed wq);
  Alcotest.(check int) "drained dry" 0 (Workq.drain_tick wq)

let suite = suite @ [ Alcotest.test_case "workq semantics" `Quick test_workq_semantics ]
