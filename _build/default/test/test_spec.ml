open Eof_spec

let parse_ok text =
  match Parser.parse text with Ok s -> s | Error e -> Alcotest.fail e

let test_lexer_basics () =
  match Lexer.tokenize "foo(bar int[0:5]) # comment\nresource q" with
  | Error e -> Alcotest.fail e
  | Ok tokens ->
    let kinds = List.map (fun (p : Lexer.positioned) -> p.Lexer.token) tokens in
    Alcotest.(check bool) "shape" true
      (kinds
      = [ Lexer.IDENT "foo"; Lexer.LPAREN; Lexer.IDENT "bar"; Lexer.IDENT "int";
          Lexer.LBRACKET; Lexer.INT 0L; Lexer.COLON; Lexer.INT 5L; Lexer.RBRACKET;
          Lexer.RPAREN; Lexer.NEWLINE; Lexer.IDENT "resource"; Lexer.IDENT "q";
          Lexer.EOF ])

let test_lexer_numbers () =
  match Lexer.tokenize "0x1F -42 007" with
  | Error e -> Alcotest.fail e
  | Ok tokens ->
    let ints = List.filter_map (fun (p : Lexer.positioned) ->
        match p.Lexer.token with Lexer.INT v -> Some v | _ -> None) tokens in
    Alcotest.(check bool) "values" true (ints = [ 0x1FL; -42L; 7L ])

let test_lexer_hyphenated_idents () =
  match Lexer.tokenize "os RT-Thread" with
  | Error e -> Alcotest.fail e
  | Ok tokens ->
    let names = List.filter_map (fun (p : Lexer.positioned) ->
        match p.Lexer.token with Lexer.IDENT s -> Some s | _ -> None) tokens in
    Alcotest.(check (list string)) "hyphen kept" [ "os"; "RT-Thread" ] names

let test_lexer_errors () =
  match Lexer.tokenize "foo ? bar" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad char accepted"

let sample_spec = {|
# demo spec
os DemoOS

resource queue

q_create(len int[1:64], item int[1:128]) queue @weight=3
q_send(q queue, data buffer[64])
q_flags(mode flags[rd=1, wr=2])
q_label(name string[32])
q_probe(ptr ptr[0x20000000:0x20010000, null])
|}

let test_parse_sample () =
  let spec = parse_ok sample_spec in
  Alcotest.(check string) "os" "DemoOS" spec.Ast.os;
  Alcotest.(check (list string)) "resources" [ "queue" ] spec.Ast.resources;
  Alcotest.(check int) "calls" 5 (List.length spec.Ast.calls);
  let create = Option.get (Ast.find_call spec "q_create") in
  Alcotest.(check int) "weight" 3 create.Ast.weight;
  Alcotest.(check (option string)) "ret" (Some "queue") create.Ast.ret;
  (match List.assoc "len" create.Ast.args with
   | Ast.Ty_int { min; max } ->
     Alcotest.(check int64) "min" 1L min;
     Alcotest.(check int64) "max" 64L max
   | _ -> Alcotest.fail "len type");
  let probe = Option.get (Ast.find_call spec "q_probe") in
  (match List.assoc "ptr" probe.Ast.args with
   | Ast.Ty_ptr { base; size; null_ok } ->
     Alcotest.(check int) "base" 0x20000000 base;
     Alcotest.(check int) "size" 0x10000 size;
     Alcotest.(check bool) "null ok" true null_ok
   | _ -> Alcotest.fail "ptr type")

let test_parse_errors () =
  List.iter
    (fun text ->
      match Parser.parse text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" text))
    [
      "q_create(len int[1:64]";  (* unclosed paren *)
      "q_create(len int[1])";  (* bad int type *)
      "q_create(len flags[])";  (* empty flags *)
      "f() @speed=3";  (* unknown attribute *)
      "f() q extra_tokens_here(";  (* trailing garbage *)
    ]

let test_roundtrip_through_text () =
  let spec = parse_ok sample_spec in
  let text = Ast.to_syzlang spec in
  let spec2 = parse_ok text in
  Alcotest.(check bool) "print/parse roundtrip" true (Ast.equal spec spec2)

let test_check_catches () =
  let cases =
    [
      ("resource q\nf() q\n", false, "missing os");
      ("os X\nresource q\n", false, "resource without producer");
      ("os X\nf(a int[5:1])\n", false, "empty range");
      ("os X\nf(a q)\n", false, "undeclared resource");
      ("os X\nf(a int[0:1], a int[0:1])\n", false, "duplicate arg");
      ("os X\nf()\nf()\n", false, "duplicate call");
      ("os X\nf(s string[0])\n", false, "zero-length string");
      ("os X\nf(s buffer[9999])\n", false, "over wire limit");
      ("os X\nresource q\nmk() q\nuse(x q)\n", true, "valid spec");
    ]
  in
  List.iter
    (fun (text, should_pass, label) ->
      let spec = parse_ok text in
      match (Check.validate spec, should_pass) with
      | Ok _, true | Error _, false -> ()
      | Ok _, false -> Alcotest.fail (label ^ ": invalid spec accepted")
      | Error errs, true ->
        Alcotest.fail
          (label ^ ": " ^ String.concat "; " (List.map Check.error_to_string errs)))
    cases

let test_synth_roundtrip_all_oses () =
  (* Every personality's synthesized spec must survive the paper's
     post-validation gate and describe the same API table. *)
  List.iter
    (fun (t : Eof_expt.Targets.hw_target) ->
      let build = Eof_expt.Targets.build_hw t in
      let table = Eof_os.Osbuild.api_signatures build in
      match Synth.validated_of_api table with
      | Error e -> Alcotest.fail (Eof_os.Osbuild.os_name build ^ ": " ^ e)
      | Ok spec ->
        Alcotest.(check int)
          (Eof_os.Osbuild.os_name build ^ " call count")
          (List.length table.Eof_rtos.Api.entries)
          (List.length spec.Ast.calls);
        Alcotest.(check bool)
          (Eof_os.Osbuild.os_name build ^ " structural equality")
          true
          (Ast.equal spec (Synth.of_api table));
        (* The index map covers every call. *)
        Alcotest.(check int)
          (Eof_os.Osbuild.os_name build ^ " index map")
          (List.length spec.Ast.calls)
          (List.length (Synth.index_map spec table)))
    Eof_expt.Targets.all

let test_pseudo_detection () =
  let spec = parse_ok "os X\nsyz_do_thing()\nnormal_call()\n" in
  let pseudo = Option.get (Ast.find_call spec "syz_do_thing") in
  let normal = Option.get (Ast.find_call spec "normal_call") in
  Alcotest.(check bool) "pseudo" true (Ast.is_pseudo pseudo);
  Alcotest.(check bool) "normal" false (Ast.is_pseudo normal)

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer numbers" `Quick test_lexer_numbers;
    Alcotest.test_case "lexer hyphenated idents" `Quick test_lexer_hyphenated_idents;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parse sample" `Quick test_parse_sample;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip_through_text;
    Alcotest.test_case "checker rules" `Quick test_check_catches;
    Alcotest.test_case "synth roundtrip for all OSs" `Quick test_synth_roundtrip_all_oses;
    Alcotest.test_case "pseudo-syscall detection" `Quick test_pseudo_detection;
  ]
