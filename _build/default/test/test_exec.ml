open Eof_hw
open Eof_exec

let make_engine entry =
  let board = Board.create Profiles.stm32f4_disco in
  (board, Engine.create ~board ~fault_vector:0xDEAD ~entry)

let test_run_to_exit () =
  let _, e =
    make_engine (fun () ->
        Target.site 0x100;
        Target.site 0x104;
        Target.site 0x108)
  in
  (match Engine.run e ~fuel:100 with
   | Engine.Exited -> ()
   | _ -> Alcotest.fail "expected exit");
  Alcotest.(check int) "final pc" 0x108 (Engine.pc e);
  Alcotest.(check int64) "sites" 3L (Engine.sites_executed e);
  Alcotest.(check bool) "terminal" false (Engine.running e);
  match Engine.run e ~fuel:1 with
  | Engine.Exited -> ()
  | _ -> Alcotest.fail "terminal not sticky"

let test_fuel_exhaustion () =
  let _, e =
    make_engine (fun () ->
        for i = 0 to 9 do
          Target.site (0x100 + (4 * i))
        done)
  in
  (match Engine.run e ~fuel:4 with
   | Engine.Fuel_exhausted -> ()
   | _ -> Alcotest.fail "expected fuel stop");
  Alcotest.(check int) "pc after 4 sites" 0x10C (Engine.pc e);
  match Engine.run e ~fuel:100 with
  | Engine.Exited -> ()
  | _ -> Alcotest.fail "expected exit on resume"

let test_breakpoint () =
  let _, e =
    make_engine (fun () ->
        Target.site 0x100;
        Target.site 0x104;
        Target.site 0x108)
  in
  Engine.set_breakpoint e 0x104;
  (match Engine.run e ~fuel:100 with
   | Engine.Breakpoint_hit pc -> Alcotest.(check int) "bp pc" 0x104 pc
   | _ -> Alcotest.fail "expected breakpoint");
  (* Resume steps past the breakpointed site. *)
  match Engine.run e ~fuel:100 with
  | Engine.Exited -> ()
  | _ -> Alcotest.fail "expected exit after bp"

let test_fault () =
  let _, e =
    make_engine (fun () ->
        Target.site 0x100;
        Fault.usage "bad instruction")
  in
  (match Engine.run e ~fuel:100 with
   | Engine.Faulted f -> Alcotest.(check bool) "usage" true (f.Fault.kind = Fault.Usage_fault)
   | _ -> Alcotest.fail "expected fault");
  Alcotest.(check int) "pc at vector" 0xDEAD (Engine.pc e);
  Alcotest.(check bool) "fault recorded" true (Engine.last_fault e <> None)

let test_uart_and_cycles_effects () =
  let board, e =
    make_engine (fun () ->
        Target.uart_tx "ping\n";
        Target.cycles 123;
        Target.site 0x100)
  in
  (match Engine.run e ~fuel:10 with Engine.Exited -> () | _ -> Alcotest.fail "exit");
  Alcotest.(check string) "uart" "ping\n" (Uart.drain (Board.uart board));
  (* 123 explicit + 2 for the site crossing. *)
  Alcotest.(check int64) "cycles" 125L (Clock.cycles (Board.clock board))

let test_read_cycles_effect () =
  let seen = ref (-1L) in
  let _, e =
    make_engine (fun () ->
        Target.cycles 50;
        seen := Target.current_cycles ();
        Target.site 0x100)
  in
  (match Engine.run e ~fuel:10 with Engine.Exited -> () | _ -> Alcotest.fail "exit");
  Alcotest.(check int64) "target sees clock" 50L !seen

let test_reset_rearms () =
  let count = ref 0 in
  let _, e =
    make_engine (fun () ->
        incr count;
        Target.site 0x100;
        Target.site 0x104)
  in
  (match Engine.run e ~fuel:1 with Engine.Fuel_exhausted -> () | _ -> Alcotest.fail "fuel");
  Engine.reset e;
  Alcotest.(check bool) "running again" true (Engine.running e);
  (match Engine.run e ~fuel:100 with Engine.Exited -> () | _ -> Alcotest.fail "exit");
  Alcotest.(check int) "entry ran twice" 2 !count

let test_reset_unwinds_parked () =
  let cleaned = ref false in
  let _, e =
    make_engine (fun () ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () ->
            Target.site 0x100;
            Target.site 0x104))
  in
  (match Engine.run e ~fuel:1 with Engine.Fuel_exhausted -> () | _ -> Alcotest.fail "fuel");
  Alcotest.(check bool) "not yet" false !cleaned;
  Engine.reset e;
  Alcotest.(check bool) "finaliser ran on reset" true !cleaned

let test_step_one () =
  let _, e =
    make_engine (fun () ->
        Target.site 0x100;
        Target.site 0x104)
  in
  (match Engine.step_one e with
   | Engine.Fuel_exhausted -> Alcotest.(check int) "pc" 0x100 (Engine.pc e)
   | _ -> Alcotest.fail "step");
  match Engine.step_one e with
  | Engine.Fuel_exhausted -> Alcotest.(check int) "pc 2" 0x104 (Engine.pc e)
  | _ -> Alcotest.fail "step 2"

let test_infinite_loop_bounded () =
  let _, e =
    make_engine (fun () ->
        let rec spin () =
          Target.site 0x200;
          spin ()
        in
        spin ())
  in
  (* An infinite target loop must not hang the host: fuel bounds it. *)
  (match Engine.run e ~fuel:1000 with
   | Engine.Fuel_exhausted -> ()
   | _ -> Alcotest.fail "expected fuel stop");
  Alcotest.(check int) "stuck pc" 0x200 (Engine.pc e);
  match Engine.run e ~fuel:1000 with
  | Engine.Fuel_exhausted -> Alcotest.(check int) "still stuck" 0x200 (Engine.pc e)
  | _ -> Alcotest.fail "expected fuel stop again"

let suite =
  [
    Alcotest.test_case "run to exit" `Quick test_run_to_exit;
    Alcotest.test_case "fuel exhaustion" `Quick test_fuel_exhaustion;
    Alcotest.test_case "breakpoint" `Quick test_breakpoint;
    Alcotest.test_case "fault" `Quick test_fault;
    Alcotest.test_case "uart/cycles effects" `Quick test_uart_and_cycles_effects;
    Alcotest.test_case "read cycles effect" `Quick test_read_cycles_effect;
    Alcotest.test_case "reset rearms" `Quick test_reset_rearms;
    Alcotest.test_case "reset unwinds parked target" `Quick test_reset_unwinds_parked;
    Alcotest.test_case "single step" `Quick test_step_one;
    Alcotest.test_case "infinite loop bounded by fuel" `Quick test_infinite_loop_bounded;
  ]
