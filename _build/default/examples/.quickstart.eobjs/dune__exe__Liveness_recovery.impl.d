examples/liveness_recovery.ml: Board Eof_agent Eof_core Eof_debug Eof_hw Eof_os Flash Freertos Machine Option Osbuild Partition Printf Profiles
