examples/minimize_crash.mli:
