examples/liveness_recovery.mli:
