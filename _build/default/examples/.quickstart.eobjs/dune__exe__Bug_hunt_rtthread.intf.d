examples/bug_hunt_rtthread.mli:
