examples/bug_hunt_rtthread.ml: Arch Board Bytes Eof_agent Eof_debug Eof_hw Eof_os Eof_rtos Int32 List Machine Osbuild Printf Profiles Rtthread String Wire
