examples/minimize_crash.ml: Arch Bytes Eof_agent Eof_core Eof_debug Eof_hw Eof_os Eof_rtos Eof_spec Int32 List Machine Osbuild Printf Profiles String Wire Zephyr
