examples/quickstart.ml: Eof_core Eof_hw Eof_os List Osbuild Printf Zephyr
