examples/spec_authoring.ml: Eof_core Eof_hw Eof_os Eof_spec Eof_util List Osbuild Printf String Zephyr
