examples/quickstart.mli:
