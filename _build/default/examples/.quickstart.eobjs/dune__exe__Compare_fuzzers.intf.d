examples/compare_fuzzers.mli:
