examples/spec_authoring.mli:
