examples/compare_fuzzers.ml: Eof_core Eof_expt List Option Printf String
