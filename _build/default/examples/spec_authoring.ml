(* Specification tour: synthesize the Syzlang-style API specification
   for an OS from its API table (the LLM-substitute path), run it through
   the same parse/type-check gate the paper applies to GPT-4o output,
   and generate a few API-aware programs from it.

   Run with:  dune exec examples/spec_authoring.exe *)

open Eof_os
module Ast = Eof_spec.Ast
module Parser = Eof_spec.Parser
module Check = Eof_spec.Check
module Synth = Eof_spec.Synth
module Gen = Eof_core.Gen
module Prog = Eof_core.Prog

let () =
  let build = Osbuild.make ~board_profile:Eof_hw.Profiles.stm32f4_disco Zephyr.spec in
  let table = Osbuild.api_signatures build in

  (* 1. Emit the specification text. *)
  let text = Synth.syzlang_of_api table in
  print_endline "=== synthesized specification (first 30 lines) ===";
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 30)
  |> List.iter print_endline;
  Printf.printf "... (%d lines total)\n\n" (List.length (String.split_on_char '\n' text));

  (* 2. Post-validate: parse + type-check, as the paper gates LLM output. *)
  let spec =
    match Parser.parse text with
    | Error e -> failwith ("parse: " ^ e)
    | Ok spec ->
      (match Check.validate spec with
       | Error errs ->
         List.iter (fun e -> prerr_endline (Check.error_to_string e)) errs;
         failwith "validation failed"
       | Ok spec -> spec)
  in
  Printf.printf "validated: %d calls, %d resource kinds, %d pseudo-syscalls\n\n"
    (List.length spec.Ast.calls)
    (List.length spec.Ast.resources)
    (List.length (List.filter Ast.is_pseudo spec.Ast.calls));

  (* 3. A deliberately bad spec is rejected by the same gate. *)
  let bad = "os Demo\nresource q\n" (* no producer for q *) in
  (match Parser.parse bad with
   | Ok parsed ->
     (match Check.validate parsed with
      | Error errs ->
        Printf.printf "bad spec rejected as expected: %s\n\n"
          (Check.error_to_string (List.hd errs))
      | Ok _ -> failwith "bad spec accepted!")
   | Error e -> failwith e);

  (* 4. Generate API-aware programs from the validated spec. *)
  let rng = Eof_util.Rng.create 2024L in
  let gen = Gen.create ~rng ~spec ~table () in
  for i = 1 to 3 do
    let prog = Gen.generate gen ~max_len:6 in
    Printf.printf "--- generated program %d ---\n%s\n\n" i (Prog.to_string prog);
    match Prog.validate prog with
    | Ok () -> ()
    | Error e -> failwith ("generated invalid program: " ^ e)
  done
