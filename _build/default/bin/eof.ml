(* The eof command-line tool: fuzz a target, inspect specifications,
   list targets, or regenerate a single paper artifact. *)

open Cmdliner
module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash
module Targets = Eof_expt.Targets
module Runner = Eof_expt.Runner

let os_arg =
  let doc = "Target OS: FreeRTOS, RT-Thread, NuttX, Zephyr or PoKOS." in
  Arg.(value & opt string "Zephyr" & info [ "os" ] ~docv:"OS" ~doc)

let seed_arg =
  let doc = "Campaign seed." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let iterations_arg =
  let doc = "Payload budget (test cases to execute)." in
  Arg.(value & opt int 1000 & info [ "iterations"; "n" ] ~docv:"N" ~doc)

let target_of os =
  match Targets.find os with
  | Some t -> Ok t
  | None ->
    Error
      (Printf.sprintf "unknown OS %S (known: %s)" os
         (String.concat ", "
            (List.map (fun (t : Targets.hw_target) -> t.Targets.spec.Eof_os.Osbuild.os_name)
               Targets.all)))

(* --- eof fuzz ---------------------------------------------------------- *)

let fuzz os seed iterations no_feedback no_dep no_watchdog irq verbose crash_dir
    save_corpus load_corpus =
  match target_of os with
  | Error e ->
    prerr_endline e;
    1
  | Ok target ->
    let build = Targets.build_hw target in
    let profile = Eof_hw.Board.profile (Eof_os.Osbuild.board build) in
    Printf.printf "Fuzzing %s %s on %s over its %s debug port (%d payloads, seed %d)\n%!"
      (Eof_os.Osbuild.os_name build) (Eof_os.Osbuild.version build)
      profile.Eof_hw.Board.name
      (Eof_hw.Board.debug_port_name profile.Eof_hw.Board.debug_port)
      iterations seed;
    let table = Eof_os.Osbuild.api_signatures build in
    let initial_seeds =
      match load_corpus with
      | None -> []
      | Some path ->
        (match Eof_spec.Synth.validated_of_api table with
         | Error _ -> []
         | Ok spec ->
           (match Eof_core.Corpus_io.load ~path ~spec ~table with
            | Ok (progs, skipped) ->
              Printf.printf "loaded %d corpus seeds from %s (%d stale entries skipped)\n"
                (List.length progs) path skipped;
              progs
            | Error e ->
              prerr_endline ("could not load corpus: " ^ e);
              []))
    in
    let config =
      {
        Campaign.default_config with
        seed = Int64.of_int seed;
        iterations;
        feedback = not no_feedback;
        dep_aware = not no_dep;
        stall_watchdog = not no_watchdog;
        irq_injection = irq;
        initial_seeds;
      }
    in
    (match Campaign.run config build with
     | Error e ->
       prerr_endline ("campaign failed: " ^ e);
       1
     | Ok o ->
       Printf.printf
         "\ncoverage: %d branches | executed: %d | corpus: %d | resets: %d | reflashes: %d\n"
         o.Campaign.coverage o.Campaign.executed_programs o.Campaign.corpus_size
         o.Campaign.resets o.Campaign.reflashes;
       Printf.printf "crashes: %d distinct (%d events)\n\n"
         (List.length o.Campaign.crashes)
         o.Campaign.crash_events;
       List.iter
         (fun crash ->
           print_endline ("  " ^ Crash.summary crash);
           (match Targets.match_bug crash with
            | Some bug ->
              Printf.printf "    -> Table 2 bug #%d (%s)\n" bug.Targets.id
                bug.Targets.operation
            | None -> ());
           if verbose then begin
             print_endline "    triggering program:";
             String.split_on_char '\n' crash.Crash.program
             |> List.iter (fun l -> print_endline ("      " ^ l))
           end)
         o.Campaign.crashes;
       (match crash_dir with
        | None -> ()
        | Some dir ->
          (match Eof_core.Report.save_crashes ~dir o.Campaign.crashes with
           | Ok paths -> Printf.printf "\nwrote %d crash reports under %s\n" (List.length paths) dir
           | Error e -> prerr_endline ("could not write crash reports: " ^ e)));
       (match save_corpus with
        | None -> ()
        | Some path ->
          (match Eof_core.Corpus_io.save ~path o.Campaign.final_corpus with
           | Ok () ->
             Printf.printf "saved %d corpus seeds to %s\n"
               (List.length o.Campaign.final_corpus) path
           | Error e -> prerr_endline ("could not save corpus: " ^ e)));
       0)

let fuzz_cmd =
  let no_feedback =
    Arg.(value & flag & info [ "no-feedback" ] ~doc:"Disable coverage feedback (EOF-nf).")
  in
  let no_dep =
    Arg.(value & flag & info [ "no-dep" ] ~doc:"Disable dependency-aware generation.")
  in
  let no_watchdog =
    Arg.(value & flag & info [ "no-watchdog" ] ~doc:"Disable the PC-stall watchdog.")
  in
  let irq =
    Arg.(value & flag & info [ "irq" ] ~doc:"Inject GPIO edges (interrupt-path fuzzing).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print triggering programs.")
  in
  let crash_dir =
    Arg.(value & opt (some string) None
         & info [ "crash-dir" ] ~docv:"DIR" ~doc:"Write one report file per distinct crash.")
  in
  let save_corpus =
    Arg.(value & opt (some string) None
         & info [ "save-corpus" ] ~docv:"FILE" ~doc:"Save the final corpus.")
  in
  let load_corpus =
    Arg.(value & opt (some string) None
         & info [ "load-corpus" ] ~docv:"FILE" ~doc:"Seed the corpus from a saved file.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc:"Run an EOF campaign against a simulated board")
    Term.(
      const fuzz $ os_arg $ seed_arg $ iterations_arg $ no_feedback $ no_dep $ no_watchdog
      $ irq $ verbose $ crash_dir $ save_corpus $ load_corpus)

(* --- eof spec ----------------------------------------------------------- *)

let spec os =
  match target_of os with
  | Error e ->
    prerr_endline e;
    1
  | Ok target ->
    let build = Targets.build_hw target in
    let table = Eof_os.Osbuild.api_signatures build in
    print_string (Eof_spec.Synth.syzlang_of_api table);
    (match Eof_spec.Synth.validated_of_api table with
     | Ok _ ->
       prerr_endline "# specification parses and validates";
       0
     | Error e ->
       prerr_endline ("# INVALID: " ^ e);
       1)

let spec_cmd =
  Cmd.v
    (Cmd.info "spec" ~doc:"Print the synthesized Syzlang-style API specification")
    Term.(const spec $ os_arg)

(* --- eof targets ---------------------------------------------------------- *)

let targets () =
  List.iter
    (fun (t : Targets.hw_target) ->
      let os = t.Targets.spec.Eof_os.Osbuild.os_name in
      let bugs = List.filter (fun (b : Targets.bug) -> b.Targets.os = os) Targets.catalog in
      Printf.printf "%-10s %-10s on %-18s (%s, %d seeded bugs)\n" os
        t.Targets.spec.Eof_os.Osbuild.version t.Targets.board.Eof_hw.Board.name
        (Eof_hw.Arch.family_name t.Targets.board.Eof_hw.Board.arch.Eof_hw.Arch.family)
        (List.length bugs))
    Targets.all;
  0

let targets_cmd =
  Cmd.v (Cmd.info "targets" ~doc:"List evaluation targets") Term.(const targets $ const ())

(* --- eof artifact ----------------------------------------------------------- *)

let artifact name iterations =
  match name with
  | "table1" ->
    print_endline (Eof_expt.Table1.render ());
    0
  | "table2" | "table3" | "fig7" ->
    let cells = Runner.full_system_matrix ~iterations () in
    print_endline
      (match name with
       | "table2" -> Eof_expt.Table2.render cells
       | "table3" -> Eof_expt.Table3.render cells
       | _ -> Eof_expt.Fig7.render ~iterations cells);
    0
  | "table4" | "fig8" ->
    let cells = Eof_expt.App_level.matrix ~iterations () in
    print_endline
      (if name = "table4" then Eof_expt.Table4.render cells
       else Eof_expt.Fig8.render ~iterations cells);
    0
  | "overhead" ->
    print_endline (Eof_expt.Overhead.render_memory ());
    print_endline (Eof_expt.Overhead.render_execution ());
    0
  | "ablation" ->
    print_endline (Eof_expt.Ablation.render_a1 ());
    print_endline (Eof_expt.Ablation.render_a2 ());
    0
  | other ->
    prerr_endline
      (Printf.sprintf
         "unknown artifact %S (table1 table2 table3 table4 fig7 fig8 overhead ablation)"
         other);
    1

let artifact_cmd =
  let artifact_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT"
          ~doc:"One of: table1 table2 table3 table4 fig7 fig8 overhead ablation")
  in
  Cmd.v
    (Cmd.info "artifact" ~doc:"Regenerate one paper table or figure")
    Term.(const artifact $ artifact_name $ iterations_arg)

let main_cmd =
  let doc = "feedback-guided fuzzing of embedded OSs over a (simulated) debug port" in
  Cmd.group
    (Cmd.info "eof" ~version:"1.0.0" ~doc)
    [ fuzz_cmd; spec_cmd; targets_cmd; artifact_cmd ]

let () = exit (Cmd.eval' main_cmd)
