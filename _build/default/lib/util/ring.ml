type 'a t = {
  slots : 'a option array;
  mutable head : int; (* next pop *)
  mutable len : int;
  mutable dropped : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity";
  { slots = Array.make capacity None; head = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.slots

let length t = t.len

let is_empty t = t.len = 0

let is_full t = t.len = capacity t

let push t x =
  let cap = capacity t in
  if t.len = cap then begin
    (* Overrun: drop the oldest element. *)
    t.slots.((t.head + t.len) mod cap) <- Some x;
    t.head <- (t.head + 1) mod cap;
    t.dropped <- t.dropped + 1;
    true
  end
  else begin
    t.slots.((t.head + t.len) mod cap) <- Some x;
    t.len <- t.len + 1;
    false
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.slots.(t.head) in
    t.slots.(t.head) <- None;
    t.head <- (t.head + 1) mod capacity t;
    t.len <- t.len - 1;
    x
  end

let peek t = if t.len = 0 then None else t.slots.(t.head)

let clear t =
  Array.fill t.slots 0 (capacity t) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some x -> go (x :: acc) in
  go []

let dropped t = t.dropped
