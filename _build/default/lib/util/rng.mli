(** Deterministic pseudo-random number generation.

    All randomness in the code base flows through this module so that
    campaigns, tests and benchmarks are reproducible from a single 64-bit
    seed.  The generator is SplitMix64 (Steele, Lea & Flood 2014): tiny,
    fast, and statistically adequate for fuzzing workloads. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] makes a fresh generator. Distinct seeds give independent
    streams for all practical purposes. *)

val copy : t -> t
(** [copy t] duplicates the state; the two generators then evolve
    independently. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]. Useful to hand sub-components their own stream. *)

val next64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** 62 uniformly random non-negative bits as an OCaml [int]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val int64_in : t -> int64 -> int64 -> int64
(** Inclusive uniform range over int64. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [0,1]). *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on [||]. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> ('a * int) list -> 'a
(** [weighted t items] picks proportionally to the (positive) weights.
    @raise Invalid_argument if the total weight is not positive. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample : t -> int -> 'a list -> 'a list
(** [sample t k xs] is up to [k] distinct elements of [xs] in random
    order. *)

val bytes : t -> int -> Bytes.t
(** [bytes t n] is [n] uniformly random bytes. *)
