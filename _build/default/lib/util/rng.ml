type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 output function. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next64 t in
  { state = seed }

let bits t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias for large bounds. *)
  if bound land (bound - 1) = 0 then bits t land (bound - 1)
  else
    let rec go () =
      let r = bits t in
      let v = r mod bound in
      if r - v + (bound - 1) < 0 then go () else v
    in
    go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  if lo = hi then lo else lo + int t (hi - lo + 1)

let int64_in t lo hi =
  if Int64.compare hi lo < 0 then invalid_arg "Rng.int64_in: empty range";
  let span = Int64.sub hi lo in
  if Int64.equal span Int64.max_int then next64 t
  else
    let bound = Int64.add span 1L in
    (* Lemire-style rejection over the full 64-bit output. *)
    let rec go () =
      let r = Int64.shift_right_logical (next64 t) 1 in
      let v = Int64.rem r bound in
      if Int64.compare v 0L < 0 then go () else Int64.add lo v
    in
    go ()

let bool t = Int64.compare (next64 t) 0L < 0

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else
    let r = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
    r /. 9007199254740992. < p

let float t x = Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992. *. x

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let weighted t items =
  let total = List.fold_left (fun acc (_, w) -> acc + max 0 w) 0 items in
  if total <= 0 then invalid_arg "Rng.weighted: total weight must be positive";
  let target = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.weighted: internal"
    | (x, w) :: rest ->
      let acc = acc + max 0 w in
      if target < acc then x else go acc rest
  in
  go 0 items

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample t k xs =
  let a = Array.of_list xs in
  shuffle_in_place t a;
  let n = min k (Array.length a) in
  Array.to_list (Array.sub a 0 n)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b
