let write buf v =
  let v = ref v in
  let continue = ref true in
  while !continue do
    let byte = Int64.to_int (Int64.logand !v 0x7FL) in
    v := Int64.shift_right_logical !v 7;
    if Int64.equal !v 0L then begin
      Buffer.add_char buf (Char.chr byte);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (byte lor 0x80))
  done

let read s ~pos =
  let n = String.length s in
  let rec go i shift acc =
    if i >= n || shift > 63 then None
    else
      let byte = Char.code s.[i] in
      let acc = Int64.logor acc (Int64.shift_left (Int64.of_int (byte land 0x7F)) shift) in
      if byte land 0x80 = 0 then Some (acc, i + 1) else go (i + 1) (shift + 7) acc
  in
  if pos < 0 || pos >= n then None else go pos 0 0L

let zigzag i = Int64.logxor (Int64.shift_left (Int64.of_int i) 1) (Int64.shift_right (Int64.of_int i) 63)

let unzigzag v =
  Int64.to_int (Int64.logxor (Int64.shift_right_logical v 1) (Int64.neg (Int64.logand v 1L)))

let write_int buf i = write buf (zigzag i)

let read_int s ~pos =
  match read s ~pos with None -> None | Some (v, next) -> Some (unzigzag v, next)
