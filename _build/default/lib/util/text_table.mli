(** Plain-text table rendering for experiment output.

    Every reproduced paper table is printed through this module so that
    [bench/main.exe] output lines up and is easy to diff against
    EXPERIMENTS.md. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] draws a boxed ASCII table. [align] applies per
    column (default all [Left]); missing/extra entries default to [Left].
    Rows shorter than the header are padded with empty cells. *)

val section : string -> string
(** A prominent section banner used between reproduced artifacts. *)
