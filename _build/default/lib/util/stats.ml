let require_nonempty = function
  | [] -> invalid_arg "Stats: empty sample"
  | _ -> ()

let mean xs =
  require_nonempty xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let min_max xs =
  require_nonempty xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let stddev xs =
  require_nonempty xs;
  match xs with
  | [ _ ] -> 0.
  | _ ->
    let m = mean xs in
    let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (List.length xs - 1))

let percentile p xs =
  require_nonempty xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))

let improvement_pct ~baseline ~subject =
  if baseline = 0. then invalid_arg "Stats.improvement_pct: zero baseline";
  (subject -. baseline) /. baseline *. 100.

let meani xs = mean (List.map float_of_int xs)

let fmt1 x = Printf.sprintf "%.1f" x

let fmt_pct x = Printf.sprintf "%+.2f%%" x
