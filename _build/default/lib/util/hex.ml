let of_nibble n =
  if n < 0 || n > 15 then invalid_arg "Hex.of_nibble";
  if n < 10 then Char.chr (Char.code '0' + n) else Char.chr (Char.code 'a' + n - 10)

let to_nibble = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let encode_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then invalid_arg "Hex.encode_bytes";
  let out = Bytes.create (2 * len) in
  for i = 0 to len - 1 do
    let c = Char.code (Bytes.get b (pos + i)) in
    Bytes.set out (2 * i) (of_nibble (c lsr 4));
    Bytes.set out ((2 * i) + 1) (of_nibble (c land 0xF))
  done;
  Bytes.unsafe_to_string out

let encode s = encode_bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "odd-length hex string"
  else
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.unsafe_to_string out)
      else
        match (to_nibble s.[i], to_nibble s.[i + 1]) with
        | Some hi, Some lo ->
          Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | _ -> Error (Printf.sprintf "non-hex digit at offset %d" i)
    in
    go 0

let decode_exn s =
  match decode s with Ok v -> v | Error e -> invalid_arg ("Hex.decode_exn: " ^ e)

let dump ?(width = 16) s =
  if width <= 0 then invalid_arg "Hex.dump: width";
  let buf = Buffer.create (String.length s * 4) in
  let n = String.length s in
  let rows = (n + width - 1) / width in
  for row = 0 to rows - 1 do
    let off = row * width in
    Buffer.add_string buf (Printf.sprintf "%08x  " off);
    for i = 0 to width - 1 do
      if off + i < n then
        Buffer.add_string buf (Printf.sprintf "%02x " (Char.code s.[off + i]))
      else Buffer.add_string buf "   "
    done;
    Buffer.add_string buf " |";
    for i = 0 to width - 1 do
      if off + i < n then begin
        let c = s.[off + i] in
        Buffer.add_char buf (if c >= ' ' && c < '\127' then c else '.')
      end
    done;
    Buffer.add_string buf "|\n"
  done;
  Buffer.contents buf
