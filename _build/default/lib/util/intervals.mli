(** Sets of non-overlapping integer intervals.

    Used by the memory map to validate that flash partitions do not
    overlap and that debug-link accesses fall inside mapped regions.
    Intervals are half-open: [\[lo, hi)] with [lo < hi]. *)

type t

val empty : t

val add : t -> lo:int -> hi:int -> (t, string) result
(** Fails with a description if the interval is empty, negative, or
    overlaps an existing interval. *)

val add_exn : t -> lo:int -> hi:int -> t

val mem : t -> int -> bool
(** Is the point inside any interval? *)

val covers : t -> lo:int -> hi:int -> bool
(** Is the whole half-open range inside a single interval? *)

val overlaps : t -> lo:int -> hi:int -> bool

val find : t -> int -> (int * int) option
(** The interval containing the point, if any. *)

val to_list : t -> (int * int) list
(** Ascending by [lo]. *)
