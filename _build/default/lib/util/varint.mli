(** LEB128 variable-length integers.

    Used by the corpus on-disk format (not by the agent wire format, which
    deliberately sticks to fixed-width fields a bare-metal agent can parse
    with primitive loads). *)

val write : Buffer.t -> int64 -> unit
(** Unsigned LEB128 of the two's-complement bit pattern. *)

val read : string -> pos:int -> (int64 * int) option
(** [read s ~pos] is [Some (value, next_pos)] or [None] on truncation /
    overlong encoding (> 10 bytes). *)

val write_int : Buffer.t -> int -> unit
(** Zigzag-encoded signed int. *)

val read_int : string -> pos:int -> (int * int) option
