(** Bounded FIFO ring buffer.

    Backs the UART output queue and the simulated debug-transport pipes.
    Pushing into a full ring drops the *oldest* element (like a UART FIFO
    overrun), and reports the drop so callers can count overruns. *)

type 'a t

val create : int -> 'a t
(** [create capacity]. @raise Invalid_argument if [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int

val is_empty : 'a t -> bool

val is_full : 'a t -> bool

val push : 'a t -> 'a -> bool
(** [push t x] enqueues [x]. Returns [true] if an old element was dropped
    to make room. *)

val pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val clear : 'a t -> unit

val drain : 'a t -> 'a list
(** Pop everything, oldest first. *)

val dropped : 'a t -> int
(** Total elements dropped by overruns since creation/clear. *)
