(** Hexadecimal encoding helpers.

    The GDB remote serial protocol transmits memory contents and some
    command payloads as lowercase hex pairs; this module implements the
    encoding plus a human-oriented hexdump used by logs and examples. *)

val encode : string -> string
(** Lowercase hex pairs, e.g. [encode "OK" = "4f4b"]. *)

val encode_bytes : Bytes.t -> pos:int -> len:int -> string

val decode : string -> (string, string) result
(** Inverse of {!encode}. [Error _] on odd length or non-hex digits. *)

val decode_exn : string -> string
(** @raise Invalid_argument on malformed input. *)

val of_nibble : int -> char
(** [of_nibble n] for [0 <= n < 16]. *)

val to_nibble : char -> int option

val dump : ?width:int -> string -> string
(** Classic offset/hex/ASCII dump, [width] bytes per row (default 16). *)
