(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]).

    Used as the integrity check for flash partitions: the simulated
    bootloader refuses to boot an image whose partition checksums do not
    match, which is how image corruption manifests as a boot failure. *)

val digest_bytes : Bytes.t -> pos:int -> len:int -> int32
(** CRC of a byte range. @raise Invalid_argument on an invalid range. *)

val digest_string : string -> int32

val update : int32 -> char -> int32
(** Incremental update: feed one byte into a running CRC (state is the
    complemented register, i.e. [digest] values compose via
    [finish (List.fold_left update (start ()) chars)]). *)

val start : unit -> int32

val finish : int32 -> int32
