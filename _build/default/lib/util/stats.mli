(** Small-sample descriptive statistics for experiment reporting.

    Campaigns repeat 5 times per configuration (matching the paper's
    protocol); these helpers compute the aggregates shown in tables and
    figure bands. All functions raise [Invalid_argument] on empty input. *)

val mean : float list -> float

val min_max : float list -> float * float

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator; 0 for singletons). *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], linear interpolation. *)

val improvement_pct : baseline:float -> subject:float -> float
(** [(subject - baseline) / baseline * 100]. *)

val meani : int list -> float

val fmt1 : float -> string
(** One decimal place, as the paper prints branch counts. *)

val fmt_pct : float -> string
(** Signed percentage with two decimals, e.g. ["+48.27%"]. *)
