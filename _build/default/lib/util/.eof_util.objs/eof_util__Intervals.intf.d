lib/util/intervals.mli:
