lib/util/stats.mli:
