lib/util/bitset.mli:
