lib/util/varint.ml: Buffer Char Int64 String
