lib/util/intervals.ml: List Option Printf
