lib/util/ring.mli:
