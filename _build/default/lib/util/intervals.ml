(* Sorted list of disjoint half-open intervals; small N, so linear ops. *)
type t = (int * int) list

let empty = []

let overlaps t ~lo ~hi = List.exists (fun (a, b) -> lo < b && a < hi) t

let add t ~lo ~hi =
  if hi <= lo then Error (Printf.sprintf "empty interval [%d,%d)" lo hi)
  else if lo < 0 then Error (Printf.sprintf "negative interval start %d" lo)
  else if overlaps t ~lo ~hi then
    Error (Printf.sprintf "interval [0x%x,0x%x) overlaps an existing region" lo hi)
  else Ok (List.sort compare ((lo, hi) :: t))

let add_exn t ~lo ~hi =
  match add t ~lo ~hi with Ok t -> t | Error e -> invalid_arg ("Intervals.add_exn: " ^ e)

let find t p = List.find_opt (fun (a, b) -> p >= a && p < b) t

let mem t p = Option.is_some (find t p)

let covers t ~lo ~hi =
  hi > lo && List.exists (fun (a, b) -> lo >= a && hi <= b) t

let to_list t = t
