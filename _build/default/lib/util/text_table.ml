type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row
    else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let align_of i =
    match List.nth_opt align i with Some a -> a | None -> Left
  in
  let hline =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let render_row row =
    "|"
    ^ String.concat "|"
        (List.mapi (fun i cell -> " " ^ pad (align_of i) widths.(i) cell ^ " ") row)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (hline ^ "\n");
  Buffer.add_string buf (render_row header ^ "\n");
  Buffer.add_string buf (hline ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) rows;
  Buffer.add_string buf hline;
  Buffer.contents buf

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.sprintf "\n%s\n=== %s ===\n%s" bar title bar
