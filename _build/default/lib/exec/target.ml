type _ Effect.t +=
  | Site : int -> unit Effect.t
  | Cycles : int -> unit Effect.t
  | Uart_tx : string -> unit Effect.t
  | Read_cycles : int64 Effect.t

let site addr = Effect.perform (Site addr)

let cycles n = Effect.perform (Cycles n)

let uart_tx s = Effect.perform (Uart_tx s)

let current_cycles () = Effect.perform Read_cycles

let run_silent f =
  let handler : ('a, 'a) Effect.Deep.handler =
    {
      Effect.Deep.retc = (fun v -> v);
      exnc = raise;
      effc =
        (fun (type b) (eff : b Effect.t) ->
          match eff with
          | Site _ -> Some (fun (k : (b, _) Effect.Deep.continuation) -> Effect.Deep.continue k ())
          | Cycles _ -> Some (fun k -> Effect.Deep.continue k ())
          | Uart_tx _ -> Some (fun k -> Effect.Deep.continue k ())
          | Read_cycles -> Some (fun k -> Effect.Deep.continue k 0L)
          | _ -> None);
    }
  in
  Effect.Deep.match_with f () handler
