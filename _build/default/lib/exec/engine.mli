open Eof_hw

(** The execution engine: runs target code under an effect handler and
    gives the host debugger halt/resume/breakpoint/single-step control.

    One engine instance corresponds to one boot of the target. The host
    drives it exclusively in bounded quanta ({!run}); between quanta the
    target is parked on a captured continuation, which is when the debug
    server services memory reads/writes — mirroring how a hardware probe
    halts the core to access the bus. *)

type stop_reason =
  | Breakpoint_hit of int  (** parked at a breakpointed site *)
  | Fuel_exhausted  (** quantum consumed; target still runnable *)
  | Faulted of Fault.t  (** parked at the fault vector *)
  | Exited  (** target entry function returned *)

type t

val create : board:Board.t -> fault_vector:int -> entry:(unit -> unit) -> t
(** [fault_vector] is the flash address the PC parks at when a hardware
    fault unwinds to the engine. [entry] is the target's reset handler;
    it is not started until the first {!run}. *)

val board : t -> Board.t

val pc : t -> int
(** Synthetic program counter: the reset vector before the first run,
    then the address of the last crossed site, or the fault vector. *)

val running : t -> bool
(** [true] while the target can still make progress ([Exited]/[Faulted]
    are terminal until {!reset}). *)

val last_fault : t -> Fault.t option

val set_breakpoint : t -> int -> unit

val remove_breakpoint : t -> int -> unit

val clear_breakpoints : t -> unit

val breakpoints : t -> int list

val run : t -> fuel:int -> stop_reason
(** Execute up to [fuel] instrumentation sites. Resuming after a
    [Breakpoint_hit] steps past the breakpointed site first. [run] on a
    terminal engine returns the terminal reason again.
    @raise Invalid_argument if [fuel <= 0]. *)

val step_one : t -> stop_reason
(** Single-step: [run ~fuel:1], i.e. advance exactly one site. *)

val reset : t -> unit
(** Abandon the current execution (unwinding the parked continuation)
    and rearm [entry] for a fresh boot. Does not touch the board; callers
    reset the board separately. *)

val sites_executed : t -> int64
(** Total instrumentation sites crossed since creation (all boots). *)
