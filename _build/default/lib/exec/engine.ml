open Eof_hw

type stop_reason =
  | Breakpoint_hit of int
  | Fuel_exhausted
  | Faulted of Fault.t
  | Exited

(* Internal outcome of resuming the target until its next suspension. *)
type outcome =
  | O_site of int * (unit, outcome) Effect.Deep.continuation
  | O_done
  | O_fault of Fault.t
  | O_aborted  (** unwound by reset *)

exception Engine_reset

type status =
  | Ready  (** entry armed, not yet started *)
  | Parked of (unit, outcome) Effect.Deep.continuation
  | Terminal of stop_reason

type t = {
  board : Board.t;
  fault_vector : int;
  mutable entry : unit -> unit;
  mutable pc : int;
  mutable status : status;
  breakpoints : (int, unit) Hashtbl.t;
  mutable last_fault : Fault.t option;
  mutable sites_executed : int64;
  site_cost : int;  (** cycles charged per crossed site *)
}

let create ~board ~fault_vector ~entry =
  {
    board;
    fault_vector;
    entry;
    pc = (Board.profile board).Board.flash_base;
    status = Ready;
    breakpoints = Hashtbl.create 16;
    last_fault = None;
    sites_executed = 0L;
    site_cost = 2;
  }

let board t = t.board

let pc t = t.pc

let running t = match t.status with Terminal _ -> false | Ready | Parked _ -> true

let last_fault t = t.last_fault

let set_breakpoint t addr = Hashtbl.replace t.breakpoints addr ()

let remove_breakpoint t addr = Hashtbl.remove t.breakpoints addr

let clear_breakpoints t = Hashtbl.reset t.breakpoints

let breakpoints t = Hashtbl.fold (fun k () acc -> k :: acc) t.breakpoints []

let handler t : (unit, outcome) Effect.Deep.handler =
  {
    Effect.Deep.retc = (fun () -> O_done);
    exnc =
      (fun e ->
        match e with
        | Fault.Trap f -> O_fault f
        | Engine_reset -> O_aborted
        | e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Target.Site addr ->
          Some
            (fun (k : (a, outcome) Effect.Deep.continuation) -> O_site (addr, k))
        | Target.Cycles n ->
          Clock.advance (Board.clock t.board) n;
          Some (fun k -> Effect.Deep.continue k ())
        | Target.Uart_tx s ->
          Uart.write_string (Board.uart t.board) s;
          Some (fun k -> Effect.Deep.continue k ())
        | Target.Read_cycles ->
          let c = Clock.cycles (Board.clock t.board) in
          Some (fun k -> Effect.Deep.continue k c)
        | _ -> None);
  }

let start t = Effect.Deep.match_with t.entry () (handler t)

let settle t outcome ~fuel_left =
  (* Process outcomes until we must stop; returns the stop reason. *)
  let rec go outcome fuel_left =
    match outcome with
    | O_done ->
      t.status <- Terminal Exited;
      Exited
    | O_aborted ->
      t.status <- Terminal Exited;
      Exited
    | O_fault f ->
      t.pc <- t.fault_vector;
      t.last_fault <- Some f;
      let reason = Faulted f in
      t.status <- Terminal reason;
      reason
    | O_site (addr, k) ->
      t.pc <- addr;
      t.sites_executed <- Int64.add t.sites_executed 1L;
      Clock.advance (Board.clock t.board) t.site_cost;
      t.status <- Parked k;
      if Hashtbl.mem t.breakpoints addr then Breakpoint_hit addr
      else if fuel_left <= 0 then Fuel_exhausted
      else go (Effect.Deep.continue k ()) (fuel_left - 1)
  in
  go outcome fuel_left

let run t ~fuel =
  if fuel <= 0 then invalid_arg "Engine.run: fuel must be positive";
  match t.status with
  | Terminal reason -> reason
  | Ready ->
    (* First quantum of this boot: the first crossed site also consumes
       fuel, hence fuel - 1 left after it. *)
    settle t (start t) ~fuel_left:(fuel - 1)
  | Parked k ->
    t.status <- Ready;
    (* placeholder; settle overwrites *)
    settle t (Effect.Deep.continue k ()) ~fuel_left:(fuel - 1)

let step_one t = run t ~fuel:1

let reset t =
  (match t.status with
   | Parked k ->
     (* Unwind the suspended target so its resources are released. *)
     (match Effect.Deep.discontinue k Engine_reset with
      | O_aborted | O_done | O_fault _ -> ()
      | O_site (_, k') ->
        (* A handler in target code swallowed the reset and kept running;
           force the chain down. This cannot recurse unboundedly because
           each discontinue consumes a continuation. *)
        let rec drain k =
          match Effect.Deep.discontinue k Engine_reset with
          | O_site (_, k') -> drain k'
          | O_aborted | O_done | O_fault _ -> ()
        in
        drain k')
   | Ready | Terminal _ -> ());
  t.status <- Ready;
  t.pc <- (Board.profile t.board).Board.flash_base;
  t.last_fault <- None

let sites_executed t = t.sites_executed
