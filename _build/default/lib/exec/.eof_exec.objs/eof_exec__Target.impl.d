lib/exec/target.ml: Effect
