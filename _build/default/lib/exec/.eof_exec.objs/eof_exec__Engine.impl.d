lib/exec/engine.ml: Board Clock Effect Eof_hw Fault Hashtbl Int64 Target Uart
