lib/exec/engine.mli: Board Eof_hw Fault
