lib/exec/target.mli: Effect
