(** Effects performed by target-side code.

    Target code — the execution agent, the OS personality, the app
    modules — is ordinary OCaml run under the {!Engine} handler. Each
    {!site} call marks the crossing of an instrumentation site and is the
    engine's instruction boundary: the synthetic program counter moves
    there, breakpoints are checked, cycles are charged. Code that
    performs no effects is invisible to the debugger, exactly like
    straight-line machine code between instrumented branches. *)

val site : int -> unit
(** Cross the instrumentation site at the given flash address. *)

val cycles : int -> unit
(** Charge additional CPU cycles (models expensive straight-line code or
    instrumentation cost). *)

val uart_tx : string -> unit
(** Transmit bytes on the board's UART. *)

val current_cycles : unit -> int64
(** The board clock's cycle count, visible to target code (models a
    cycle-counter register such as ARM's DWT->CYCCNT). *)

val run_silent : (unit -> 'a) -> 'a
(** Run target code on the host with all target effects swallowed:
    sites and cycles are dropped, UART output is discarded, the cycle
    counter reads zero. For host-side uses of target-flavoured code —
    extracting API signatures at build time, unit tests. *)

(**/**)

(* Effect declarations, exposed for the engine's handler only. *)
type _ Effect.t +=
  | Site : int -> unit Effect.t
  | Cycles : int -> unit Effect.t
  | Uart_tx : string -> unit Effect.t
  | Read_cycles : int64 Effect.t
