let run ~seed ~iterations ~entry_api ~sample_modules ?(snapshot_every = 10) build =
  Appfuzz.run
    {
      Appfuzz.seed;
      iterations;
      entry_api;
      max_buf = 256;
      guidance = Appfuzz.Bp_sampling 6;
      sample_modules;
      snapshot_every;
    }
    build
