module Rng = Eof_util.Rng

type t = { rng : Rng.t; max_len : int }

let create ~rng ~max_len =
  if max_len <= 0 then invalid_arg "Bufgen.create: max_len";
  { rng; max_len }

let fresh t =
  (* Geometric-ish length distribution: short buffers dominate, as in
     AFL's initial queues. *)
  let len = 1 + Rng.int t.rng (1 + Rng.int t.rng t.max_len) in
  Bytes.unsafe_to_string (Rng.bytes t.rng len)

let havoc t buf =
  let b = ref (Bytes.of_string (if buf = "" then "\x00" else buf)) in
  let edits = 1 + Rng.int t.rng 8 in
  for _ = 1 to edits do
    let len = Bytes.length !b in
    match Rng.int t.rng 6 with
    | 0 ->
      (* bit flip *)
      let i = Rng.int t.rng len in
      Bytes.set !b i (Char.chr (Char.code (Bytes.get !b i) lxor (1 lsl Rng.int t.rng 8)))
    | 1 ->
      (* byte set *)
      Bytes.set !b (Rng.int t.rng len) (Char.chr (Rng.int t.rng 256))
    | 2 ->
      (* arithmetic *)
      let i = Rng.int t.rng len in
      let delta = Rng.int_in t.rng (-16) 16 in
      Bytes.set !b i (Char.chr ((Char.code (Bytes.get !b i) + delta) land 0xFF))
    | 3 when len > 1 ->
      (* chunk delete *)
      let start = Rng.int t.rng len in
      let n = 1 + Rng.int t.rng (len - start) in
      let keep = min n (len - 1) in
      b := Bytes.cat (Bytes.sub !b 0 start) (Bytes.sub !b (start + keep) (len - start - keep))
    | 4 when len < t.max_len ->
      (* chunk duplicate *)
      let start = Rng.int t.rng len in
      let n = min (1 + Rng.int t.rng 8) (len - start) in
      let n = min n (t.max_len - len) in
      if n > 0 then
        b :=
          Bytes.cat (Bytes.sub !b 0 (start + n))
            (Bytes.cat (Bytes.sub !b start n) (Bytes.sub !b (start + n) (len - start - n)))
    | _ ->
      (* interesting byte values *)
      let i = Rng.int t.rng len in
      Bytes.set !b i (Rng.choose t.rng [| '\x00'; '\xFF'; '\x7F'; '\x80'; ' '; '\n'; '{'; '"' |])
  done;
  if Bytes.length !b > t.max_len then Bytes.sub_string !b 0 t.max_len
  else Bytes.to_string !b

module Corpus = struct
  type store = {
    rng : Rng.t;
    mutable items : string list;
    hashes : (int, unit) Hashtbl.t;
  }

  let create ~rng = { rng; items = []; hashes = Hashtbl.create 64 }

  let add store buf =
    let h = Hashtbl.hash buf in
    if Hashtbl.mem store.hashes h then false
    else begin
      Hashtbl.replace store.hashes h ();
      store.items <- buf :: store.items;
      true
    end

  let pick store =
    match store.items with
    | [] -> None
    | items -> Some (List.nth items (Rng.int store.rng (List.length items)))

  let size store = List.length store.items
end
