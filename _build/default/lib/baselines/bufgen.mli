(** AFL-style byte-buffer generation, havoc mutation, and a buffer
    corpus — the input model shared by the application-level baselines
    (GDBFuzz, SHIFT) and Gustave's genome interpreter. No API awareness:
    buffers are opaque. *)

type t

val create : rng:Eof_util.Rng.t -> max_len:int -> t

val fresh : t -> string
(** Random bytes, length geometric-ish up to [max_len]. *)

val havoc : t -> string -> string
(** 1-8 stacked AFL havoc-style edits: bit flips, byte sets, chunk
    deletion/duplication, arithmetic on a byte. *)

(** Seed corpus over raw buffers. *)
module Corpus : sig
  type store

  val create : rng:Eof_util.Rng.t -> store

  val add : store -> string -> bool
  (** [false] on duplicates. *)

  val pick : store -> string option

  val size : store -> int
end
