lib/baselines/bufgen.mli: Eof_util
