lib/baselines/gustave.ml: Arch Array Board Bufgen Bytes Char Clock Engine Eof_agent Eof_core Eof_cov Eof_exec Eof_hw Eof_os Eof_rtos Eof_util Hashtbl Int32 Int64 List Memory Osbuild Profiles String
