lib/baselines/appfuzz.ml: Arch Array Board Bufgen Bytes Eof_agent Eof_core Eof_cov Eof_debug Eof_hw Eof_os Eof_rtos Eof_util Hashtbl Int32 List Osbuild Printf String
