lib/baselines/gdbfuzz.mli: Eof_core Eof_os Osbuild
