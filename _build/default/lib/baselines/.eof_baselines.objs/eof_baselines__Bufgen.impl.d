lib/baselines/bufgen.ml: Bytes Char Eof_util Hashtbl List
