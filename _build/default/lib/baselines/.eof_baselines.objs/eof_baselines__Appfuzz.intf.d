lib/baselines/appfuzz.mli: Eof_core Eof_os Osbuild
