lib/baselines/tardis.mli: Eof_core Eof_os Osbuild
