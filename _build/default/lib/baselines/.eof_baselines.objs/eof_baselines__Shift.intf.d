lib/baselines/shift.mli: Eof_core Eof_os Osbuild
