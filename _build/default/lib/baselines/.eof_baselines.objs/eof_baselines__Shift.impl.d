lib/baselines/shift.ml: Appfuzz Eof_os Osbuild Printf
