lib/baselines/gustave.mli: Eof_agent Eof_core Eof_os Eof_rtos Osbuild
