lib/baselines/gdbfuzz.ml: Appfuzz
