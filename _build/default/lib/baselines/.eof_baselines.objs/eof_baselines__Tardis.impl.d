lib/baselines/tardis.ml: Arch Board Bytes Clock Engine Eof_agent Eof_core Eof_cov Eof_exec Eof_hw Eof_os Eof_spec Eof_util Hashtbl Int32 List Memory Osbuild Profiles
