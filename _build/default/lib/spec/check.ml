type error = { where : string; reason : string }

let error_to_string e = Printf.sprintf "%s: %s" e.where e.reason

let rec find_dup = function
  | [] -> None
  | x :: rest -> if List.mem x rest then Some x else find_dup rest

(* The wire format bounds string arguments. *)
let max_wire_string = 1024

let validate (spec : Ast.t) =
  let errors = ref [] in
  let err where reason = errors := { where; reason } :: !errors in
  if spec.Ast.os = "" then err "header" "missing 'os <name>' declaration";
  (match find_dup spec.Ast.resources with
   | Some r -> err "resources" (Printf.sprintf "duplicate resource %S" r)
   | None -> ());
  List.iter (fun r -> if r = "" then err "resources" "empty resource name") spec.Ast.resources;
  (match find_dup (List.map (fun (c : Ast.call) -> c.Ast.name) spec.Ast.calls) with
   | Some n -> err "calls" (Printf.sprintf "duplicate call %S" n)
   | None -> ());
  List.iter
    (fun (call : Ast.call) ->
      let where = call.Ast.name in
      if call.Ast.name = "" then err "calls" "empty call name";
      if call.Ast.weight < 1 then
        err where (Printf.sprintf "weight %d is below 1" call.Ast.weight);
      (match find_dup (List.map fst call.Ast.args) with
       | Some a -> err where (Printf.sprintf "duplicate argument %S" a)
       | None -> ());
      (match call.Ast.ret with
       | Some kind when not (List.mem kind spec.Ast.resources) ->
         err where (Printf.sprintf "produces undeclared resource %S" kind)
       | _ -> ());
      List.iter
        (fun (arg_name, ty) ->
          let awhere = Printf.sprintf "%s.%s" call.Ast.name arg_name in
          match ty with
          | Ast.Ty_int { min; max } ->
            if Int64.compare min max > 0 then
              err awhere (Printf.sprintf "empty int range [%Ld:%Ld]" min max)
          | Ast.Ty_flags [] -> err awhere "empty flags list"
          | Ast.Ty_flags flags ->
            (match find_dup (List.map fst flags) with
             | Some f -> err awhere (Printf.sprintf "duplicate flag %S" f)
             | None -> ())
          | Ast.Ty_str { max_len } | Ast.Ty_buf { max_len } ->
            if max_len <= 0 then err awhere "non-positive length bound"
            else if max_len > max_wire_string then
              err awhere
                (Printf.sprintf "length bound %d exceeds the wire limit %d" max_len
                   max_wire_string)
          | Ast.Ty_ptr { base; size; null_ok = _ } ->
            if size <= 0 then err awhere "empty pointer region"
            else if base < 0 then err awhere "negative pointer base"
          | Ast.Ty_res kind ->
            if not (List.mem kind spec.Ast.resources) then
              err awhere (Printf.sprintf "consumes undeclared resource %S" kind))
        call.Ast.args)
    spec.Ast.calls;
  List.iter
    (fun kind ->
      if Ast.producers spec kind = [] then
        err "resources" (Printf.sprintf "resource %S has no producer" kind))
    spec.Ast.resources;
  match !errors with [] -> Ok spec | errs -> Error (List.rev errs)
