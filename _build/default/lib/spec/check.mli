(** Semantic validation of parsed specifications — the post-validation
    gate applied before any (LLM- or metadata-derived) specification is
    admitted to the corpus. *)

type error = { where : string; reason : string }

val validate : Ast.t -> (Ast.t, error list) result
(** Returns the spec unchanged when every rule passes, otherwise all
    violations:
    - an [os] name is present
    - call names and resource names are unique and non-empty
    - argument names are unique within a call
    - int ranges are non-empty ([min <= max])
    - flags lists are non-empty with unique names
    - string/buffer bounds are positive and within the wire limit
    - every consumed or produced resource kind is declared
    - every declared resource has at least one producer
    - weights are at least 1 *)

val error_to_string : error -> string
