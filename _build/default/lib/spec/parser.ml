exception Parse_error of string

type stream = { mutable tokens : Lexer.positioned list }

let fail (p : Lexer.positioned) msg =
  raise (Parse_error (Printf.sprintf "line %d, column %d: %s" p.Lexer.line p.Lexer.col msg))

let peek st =
  match st.tokens with
  | [] -> { Lexer.token = Lexer.EOF; line = 0; col = 0 }
  | p :: _ -> p

let next st =
  let p = peek st in
  (match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest);
  p

let expect st token =
  let p = next st in
  if p.Lexer.token <> token then
    fail p
      (Printf.sprintf "expected %s, found %s" (Lexer.token_to_string token)
         (Lexer.token_to_string p.Lexer.token))

let expect_ident st =
  let p = next st in
  match p.Lexer.token with
  | Lexer.IDENT s -> s
  | t -> fail p (Printf.sprintf "expected identifier, found %s" (Lexer.token_to_string t))

let expect_int st =
  let p = next st in
  match p.Lexer.token with
  | Lexer.INT v -> v
  | t -> fail p (Printf.sprintf "expected integer, found %s" (Lexer.token_to_string t))

let skip_newlines st =
  while (peek st).Lexer.token = Lexer.NEWLINE do
    ignore (next st : Lexer.positioned)
  done

let parse_bracketed_int st =
  expect st Lexer.LBRACKET;
  let v = expect_int st in
  expect st Lexer.RBRACKET;
  v

let parse_flags st =
  expect st Lexer.LBRACKET;
  let rec go acc =
    let name = expect_ident st in
    expect st Lexer.EQUALS;
    let v = expect_int st in
    let acc = (name, v) :: acc in
    match (peek st).Lexer.token with
    | Lexer.COMMA ->
      ignore (next st : Lexer.positioned);
      go acc
    | _ ->
      expect st Lexer.RBRACKET;
      List.rev acc
  in
  go []

let parse_type st =
  let p = peek st in
  let name = expect_ident st in
  match name with
  | "int" ->
    expect st Lexer.LBRACKET;
    let min = expect_int st in
    expect st Lexer.COLON;
    let max = expect_int st in
    expect st Lexer.RBRACKET;
    Ast.Ty_int { min; max }
  | "flags" -> Ast.Ty_flags (parse_flags st)
  | "string" ->
    let n = Int64.to_int (parse_bracketed_int st) in
    Ast.Ty_str { max_len = n }
  | "buffer" ->
    let n = Int64.to_int (parse_bracketed_int st) in
    Ast.Ty_buf { max_len = n }
  | "ptr" ->
    expect st Lexer.LBRACKET;
    let base = Int64.to_int (expect_int st) in
    expect st Lexer.COLON;
    let limit = Int64.to_int (expect_int st) in
    let null_ok =
      match (peek st).Lexer.token with
      | Lexer.COMMA ->
        ignore (next st : Lexer.positioned);
        let word = expect_ident st in
        if word <> "null" then fail p (Printf.sprintf "unknown ptr attribute %S" word);
        true
      | _ -> false
    in
    expect st Lexer.RBRACKET;
    Ast.Ty_ptr { base; size = limit - base; null_ok }
  | "os" | "resource" -> fail p (Printf.sprintf "reserved word %S used as a type" name)
  | res -> Ast.Ty_res res

let parse_params st =
  if (peek st).Lexer.token = Lexer.RPAREN then []
  else
    let rec go acc =
      let name = expect_ident st in
      let ty = parse_type st in
      let acc = (name, ty) :: acc in
      match (peek st).Lexer.token with
      | Lexer.COMMA ->
        ignore (next st : Lexer.positioned);
        go acc
      | _ -> List.rev acc
    in
    go []

let parse_call st name =
  expect st Lexer.LPAREN;
  let args = parse_params st in
  expect st Lexer.RPAREN;
  let ret =
    match (peek st).Lexer.token with
    | Lexer.IDENT r ->
      ignore (next st : Lexer.positioned);
      Some r
    | _ -> None
  in
  let weight =
    match (peek st).Lexer.token with
    | Lexer.AT ->
      ignore (next st : Lexer.positioned);
      let p = peek st in
      let key = expect_ident st in
      if key <> "weight" then fail p (Printf.sprintf "unknown attribute %S" key);
      expect st Lexer.EQUALS;
      Int64.to_int (expect_int st)
    | _ -> 1
  in
  { Ast.name; args; ret; weight; doc = "" }

let end_of_line st =
  match (peek st).Lexer.token with
  | Lexer.NEWLINE -> ignore (next st : Lexer.positioned)
  | Lexer.EOF -> ()
  | t -> fail (peek st) (Printf.sprintf "trailing %s" (Lexer.token_to_string t))

let parse text =
  match Lexer.tokenize text with
  | Error e -> Error e
  | Ok tokens ->
    let st = { tokens } in
    (try
       let os = ref "" in
       let resources = ref [] in
       let calls = ref [] in
       let rec loop () =
         skip_newlines st;
         match (peek st).Lexer.token with
         | Lexer.EOF -> ()
         | Lexer.IDENT "os" ->
           ignore (next st : Lexer.positioned);
           os := expect_ident st;
           end_of_line st;
           loop ()
         | Lexer.IDENT "resource" ->
           ignore (next st : Lexer.positioned);
           resources := expect_ident st :: !resources;
           end_of_line st;
           loop ()
         | Lexer.IDENT name ->
           ignore (next st : Lexer.positioned);
           calls := parse_call st name :: !calls;
           end_of_line st;
           loop ()
         | t ->
           fail (peek st)
             (Printf.sprintf "expected a declaration, found %s" (Lexer.token_to_string t))
       in
       loop ();
       Ok { Ast.os = !os; resources = List.rev !resources; calls = List.rev !calls }
     with Parse_error msg -> Error msg)
