type token =
  | IDENT of string
  | INT of int64
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUALS
  | AT
  | NEWLINE
  | EOF

type positioned = { token : token; line : int; col : int }

let token_to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT v -> Printf.sprintf "integer %Ld" v
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | LBRACKET -> "'['"
  | RBRACKET -> "']'"
  | COMMA -> "','"
  | COLON -> "':'"
  | EQUALS -> "'='"
  | AT -> "'@'"
  | NEWLINE -> "newline"
  | EOF -> "end of input"

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let is_digit c = c >= '0' && c <= '9'

type state = {
  input : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.col <- 1
   | Some _ -> st.col <- st.col + 1
   | None -> ());
  st.pos <- st.pos + 1

let tokenize input =
  let st = { input; pos = 0; line = 1; col = 1 } in
  let out = ref [] in
  let emit token line col = out := { token; line; col } :: !out in
  let last_was_newline () =
    match !out with
    | { token = NEWLINE; _ } :: _ | [] -> true
    | _ -> false
  in
  let error msg = Error (Printf.sprintf "line %d, column %d: %s" st.line st.col msg) in
  let rec run () =
    match peek st with
    | None ->
      emit EOF st.line st.col;
      Ok (List.rev !out)
    | Some c ->
      let line = st.line and col = st.col in
      (match c with
       | ' ' | '\t' | '\r' ->
         advance st;
         run ()
       | '\n' ->
         advance st;
         if not (last_was_newline ()) then emit NEWLINE line col;
         run ()
       | '#' ->
         let rec skip () =
           match peek st with
           | Some '\n' | None -> ()
           | Some _ ->
             advance st;
             skip ()
         in
         skip ();
         run ()
       | '(' ->
         advance st;
         emit LPAREN line col;
         run ()
       | ')' ->
         advance st;
         emit RPAREN line col;
         run ()
       | '[' ->
         advance st;
         emit LBRACKET line col;
         run ()
       | ']' ->
         advance st;
         emit RBRACKET line col;
         run ()
       | ',' ->
         advance st;
         emit COMMA line col;
         run ()
       | ':' ->
         advance st;
         emit COLON line col;
         run ()
       | '=' ->
         advance st;
         emit EQUALS line col;
         run ()
       | '@' ->
         advance st;
         emit AT line col;
         run ()
       | c when is_ident_start c ->
         let start = st.pos in
         while (match peek st with Some c -> is_ident_char c | None -> false) do
           advance st
         done;
         emit (IDENT (String.sub input start (st.pos - start))) line col;
         run ()
       | c when is_digit c || c = '-' ->
         let start = st.pos in
         advance st;
         (* allow hex after 0 *)
         (match (c, peek st) with
          | '0', Some ('x' | 'X') ->
            advance st;
            while
              (match peek st with
               | Some c -> is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
               | None -> false)
            do
              advance st
            done
          | _ ->
            while (match peek st with Some c -> is_digit c | None -> false) do
              advance st
            done);
         let text = String.sub input start (st.pos - start) in
         (match Int64.of_string_opt text with
          | Some v ->
            emit (INT v) line col;
            run ()
          | None -> error (Printf.sprintf "bad integer literal %S" text))
       | c -> error (Printf.sprintf "unexpected character %C" c))
  in
  run ()
