(** Recursive-descent parser for the specification language.

    Grammar (line-oriented):

    {v
    spec      ::= { line }
    line      ::= "os" IDENT
                | "resource" IDENT
                | call
    call      ::= IDENT "(" [ params ] ")" [ IDENT ] [ "@" "weight" "=" INT ]
    params    ::= param { "," param }
    param     ::= IDENT type
    type      ::= "int" "[" INT ":" INT "]"
                | "flags" "[" IDENT "=" INT { "," IDENT "=" INT } "]"
                | "string" "[" INT "]"
                | "buffer" "[" INT "]"
                | "ptr" "[" INT ":" INT [ "," "null" ] "]"
                | IDENT                  (resource reference)
    v}

    Parsing performs syntax checks only; semantic validation is
    {!Check.validate}'s job (the paper's post-validation gate for
    LLM-generated specifications runs both). *)

val parse : string -> (Ast.t, string) result
