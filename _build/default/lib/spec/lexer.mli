(** Tokenizer for the specification language. *)

type token =
  | IDENT of string
  | INT of int64
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | EQUALS
  | AT
  | NEWLINE
  | EOF

type positioned = { token : token; line : int; col : int }

val tokenize : string -> (positioned list, string) result
(** Comments ([#] to end of line) are dropped; consecutive newlines are
    collapsed. Integers may be decimal, negative, or [0x]-hex.
    Identifiers may contain [-] after the first character (OS names like
    [RT-Thread]). *)

val token_to_string : token -> string
