lib/spec/synth.ml: Api Ast Check Eof_rtos List Parser Printf String
