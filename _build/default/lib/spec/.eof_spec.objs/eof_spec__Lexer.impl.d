lib/spec/lexer.ml: Int64 List Printf String
