lib/spec/ast.ml: Buffer Format List Printf String
