lib/spec/check.ml: Ast Int64 List Printf
