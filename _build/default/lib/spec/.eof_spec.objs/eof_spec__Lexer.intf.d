lib/spec/lexer.mli:
