lib/spec/check.mli: Ast
