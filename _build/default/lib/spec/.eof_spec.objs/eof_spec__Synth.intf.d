lib/spec/synth.mli: Api Ast Eof_rtos
