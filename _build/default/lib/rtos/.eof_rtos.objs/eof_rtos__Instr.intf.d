lib/rtos/instr.mli: Eof_cov
