lib/rtos/swtimer.ml: Kerr Kobj List
