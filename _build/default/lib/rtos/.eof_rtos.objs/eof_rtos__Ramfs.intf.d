lib/rtos/ramfs.mli: Heap
