lib/rtos/workq.ml: Queue
