lib/rtos/kobj.ml: Hashtbl Kerr List
