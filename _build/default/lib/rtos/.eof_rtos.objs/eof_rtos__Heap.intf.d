lib/rtos/heap.mli: Eof_hw
