lib/rtos/event.ml: Kerr Kobj
