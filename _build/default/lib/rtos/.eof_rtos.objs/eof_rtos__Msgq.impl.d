lib/rtos/msgq.ml: Bytes Eof_hw Heap Kerr Kobj Memory String
