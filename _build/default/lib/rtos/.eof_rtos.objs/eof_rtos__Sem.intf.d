lib/rtos/sem.mli: Kobj
