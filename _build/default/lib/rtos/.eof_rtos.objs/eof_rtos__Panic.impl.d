lib/rtos/panic.ml: Eof_exec Eof_hw Klog List Printf
