lib/rtos/klog.mli:
