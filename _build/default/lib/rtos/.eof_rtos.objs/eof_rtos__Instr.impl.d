lib/rtos/instr.ml: Eof_cov Int64 Printf
