lib/rtos/kerr.mli:
