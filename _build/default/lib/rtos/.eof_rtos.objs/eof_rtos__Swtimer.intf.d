lib/rtos/swtimer.mli: Kobj
