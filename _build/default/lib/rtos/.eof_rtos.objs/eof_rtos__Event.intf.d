lib/rtos/event.mli: Kobj
