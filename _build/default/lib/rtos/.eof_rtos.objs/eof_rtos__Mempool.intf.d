lib/rtos/mempool.mli: Heap Kobj
