lib/rtos/sched.ml: Kerr Kobj List Swtimer
