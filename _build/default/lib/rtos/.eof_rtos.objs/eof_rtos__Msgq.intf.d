lib/rtos/msgq.mli: Eof_hw Heap Kobj
