lib/rtos/panic.mli:
