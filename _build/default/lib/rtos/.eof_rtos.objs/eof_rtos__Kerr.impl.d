lib/rtos/kerr.ml: Int64 Printf
