lib/rtos/mempool.ml: Eof_hw Heap Kerr Kobj List Printf
