lib/rtos/api.mli:
