lib/rtos/kobj.mli:
