lib/rtos/sched.mli: Kobj Swtimer
