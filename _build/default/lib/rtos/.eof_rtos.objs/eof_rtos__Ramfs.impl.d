lib/rtos/ramfs.ml: Bytes Eof_hw Hashtbl Heap Kerr List Memory Option Stdlib String
