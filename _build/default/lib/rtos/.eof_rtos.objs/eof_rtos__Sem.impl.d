lib/rtos/sem.ml: Kerr Kobj
