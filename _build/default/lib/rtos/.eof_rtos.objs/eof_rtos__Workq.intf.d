lib/rtos/workq.mli:
