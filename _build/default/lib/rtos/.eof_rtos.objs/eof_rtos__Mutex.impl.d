lib/rtos/mutex.ml: Kerr Kobj
