lib/rtos/heap.ml: Eof_hw Fault Int32 Memory Printf
