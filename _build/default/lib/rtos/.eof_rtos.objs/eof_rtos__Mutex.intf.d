lib/rtos/mutex.mli: Kobj
