lib/rtos/klog.ml: Eof_exec Printf
