lib/rtos/api.ml: Kerr List Printf String
