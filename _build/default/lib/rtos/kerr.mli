(** Kernel status codes.

    Embedded OSs return negative errno-style integers; personalities map
    these to their own naming in log output, but share the numeric space
    so the fuzzer's feedback layer can distinguish "call rejected" from
    "call made progress". *)

val ok : int64

val einval : int64

val enomem : int64

val enoent : int64

val etimedout : int64

val ebusy : int64

val eagain : int64

val enospc : int64

val eperm : int64

val name : int64 -> string
(** ["OK"], ["EINVAL"], ... or ["ERR<n>"] for unknown codes. *)

val is_error : int64 -> bool
