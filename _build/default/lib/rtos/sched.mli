(** Priority-based cooperative task scheduler.

    Tasks are closures invoked one quantum at a time; each kernel tick
    runs the timer wheel and then the highest-priority ready task
    (round-robin within a priority). The agent pumps ticks between API
    calls, which is how spawned worker tasks and timer callbacks
    interleave with the fuzzed call sequence. *)

type task_state = Ready | Suspended | Finished

type tcb = private {
  id : int;  (** kernel-object handle *)
  task_name : string;
  stack_size : int;
  mutable priority : int;  (** 0 = highest, 31 = lowest *)
  mutable state : task_state;
  mutable quanta_run : int;
  mutable last_run : int;
}

type Kobj.payload += Task of tcb

type t

val create : reg:Kobj.t -> wheel:Swtimer.wheel -> t

val max_priority : int
(** 31. *)

val max_tasks : int
(** Fixed TCB-table size (64). *)

val spawn :
  t -> name:string -> priority:int -> stack_size:int -> body:(tcb -> unit) ->
  (Kobj.obj, int64) result
(** [Kerr.einval] on priority outside [0, max_priority] or stack outside
    [128, 65536]; [Kerr.enospc] when the TCB table is full. *)

val tick : t -> unit
(** One kernel tick: advance timers, then run one task quantum. *)

val run_ticks : t -> int -> unit

val suspend : tcb -> unit

val resume : tcb -> unit

val finish : tcb -> unit

val set_priority : tcb -> int -> (unit, int64) result

val ready_count : t -> int

val ticks : t -> int

val of_obj : Kobj.obj -> tcb option
