(** Per-module instrumentation handles.

    When an OS image is built, each kernel/app module receives a site
    block and an [Instr.t] wrapping the SanCov runtime; module code calls
    [cmp]/[edge] with site indices local to its block. A [null] handle
    (used by host-side unit tests and uninstrumented builds of app-only
    experiments) keeps the code runnable with no engine underneath. *)

type t

val of_sancov : sancov:Eof_cov.Sancov.t -> block:Eof_cov.Sitemap.block -> t

val null : count:int -> t
(** No-op hooks with [count] virtual sites. *)

val count : t -> int

val site_addr : t -> int -> int
(** Absolute flash address of local site [i].
    @raise Invalid_argument when out of range (including for [null]). *)

val cmp : t -> int -> int64 -> int64 -> unit
(** [cmp t i a b]: cross local site [i] recording a comparison. *)

val edge : t -> int -> unit

val cmp_i : t -> int -> int -> int -> unit
(** [cmp] for OCaml ints. *)
