(** Work queues — deferred-work items drained by a kernel worker, the
    mechanism the paper names when contrasting Zephyr's "fully
    preemptive scheduling with work queues" against FreeRTOS's tick
    model.

    Items are one-shot closures; submitting an already-pending item is
    a no-op returning [false] (Zephyr semantics). The queue drains up to
    a budget per tick, so a submission storm back-pressures instead of
    starving the scheduler. *)

type item

type t

val create : drain_per_tick:int -> t

val make_item : (unit -> unit) -> item

val submit : t -> item -> bool
(** [true] if the item was queued, [false] if it was already pending. *)

val pending : t -> int

val drain_tick : t -> int
(** Run up to [drain_per_tick] pending items; returns how many ran. *)

val executed : t -> int
(** Total items executed since creation. *)
