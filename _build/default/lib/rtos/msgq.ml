open Eof_hw

type q = {
  mem : Memory.t;
  capacity : int;
  item_size : int;
  buf_addr : int;
  mutable head : int;
  mutable count : int;
  mutable purged : bool;
}

type Kobj.payload += Queue of q

let create ~reg ~heap ~name ~capacity ~item_size =
  if capacity <= 0 || item_size <= 0 || capacity > 1024 || item_size > 4096 then
    Error Kerr.einval
  else
    match Heap.alloc heap (capacity * item_size) with
    | None -> Error Kerr.enomem
    | Some buf_addr ->
      let q =
        {
          mem = Heap.memory heap;
          capacity;
          item_size;
          buf_addr;
          head = 0;
          count = 0;
          purged = false;
        }
      in
      Ok (Kobj.register reg ~kind:"msgq" ~name (Queue q))

let slot_addr q i = q.buf_addr + (((q.head + i) mod q.capacity) * q.item_size)

let send q msg =
  if q.count >= q.capacity then Error Kerr.eagain
  else begin
    let fitted =
      if String.length msg >= q.item_size then String.sub msg 0 q.item_size
      else msg ^ String.make (q.item_size - String.length msg) '\000'
    in
    Memory.write_bytes q.mem ~addr:(slot_addr q q.count) (Bytes.of_string fitted);
    q.count <- q.count + 1;
    Ok ()
  end

let recv q =
  if q.count <= 0 then Error Kerr.eagain
  else begin
    let msg = Memory.read_bytes q.mem ~addr:(slot_addr q 0) ~len:q.item_size in
    q.head <- (q.head + 1) mod q.capacity;
    q.count <- q.count - 1;
    Ok (Bytes.unsafe_to_string msg)
  end

let purge q =
  Memory.fill q.mem ~addr:q.buf_addr ~len:(q.capacity * q.item_size) '\xDD';
  q.head <- 0;
  q.count <- 0;
  q.purged <- true

let count q = q.count

let is_full q = q.count >= q.capacity

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Queue q -> Some q | _ -> None
