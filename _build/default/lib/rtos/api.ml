type arg_type =
  | A_int of { min : int64; max : int64 }
  | A_flags of (string * int64) list
  | A_str of { max_len : int }
  | A_buf of { max_len : int }
  | A_ptr of { base : int; size : int; null_ok : bool }
  | A_res of string

type value = V_int of int64 | V_str of string | V_res of int

type outcome = { status : int64; created : (string * int) option }

type entry = {
  name : string;
  args : (string * arg_type) list;
  ret : [ `Status | `Resource of string ];
  doc : string;
  weight : int;
  handler : value list -> outcome;
}

type table = { os : string; entries : entry list }

let produced_kind entry = match entry.ret with `Resource k -> Some k | `Status -> None

let make_table ~os entries =
  let names = List.map (fun e -> e.name) entries in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  (match dup names with
   | Some n -> invalid_arg (Printf.sprintf "Api.make_table: duplicate entry %s" n)
   | None -> ());
  List.iter
    (fun e ->
      if e.weight < 1 then
        invalid_arg (Printf.sprintf "Api.make_table: %s has weight %d" e.name e.weight))
    entries;
  let produced = List.filter_map produced_kind entries in
  List.iter
    (fun e ->
      List.iter
        (fun (arg_name, ty) ->
          match ty with
          | A_res kind when not (List.mem kind produced) ->
            invalid_arg
              (Printf.sprintf "Api.make_table: %s.%s consumes kind %s nobody produces"
                 e.name arg_name kind)
          | _ -> ())
        e.args)
    entries;
  { os; entries }

let find t name = List.find_opt (fun e -> e.name = name) t.entries

let resource_kinds t =
  List.filter_map produced_kind t.entries |> List.sort_uniq compare

let producers t kind = List.filter (fun e -> produced_kind e = Some kind) t.entries

let consumers t kind =
  List.filter
    (fun e -> List.exists (fun (_, ty) -> ty = A_res kind) e.args)
    t.entries

let nth args i = List.nth_opt args i

let get_int args i =
  match nth args i with Some (V_int v) -> Ok v | _ -> Error Kerr.einval

let get_str args i =
  match nth args i with Some (V_str s) -> Ok s | _ -> Error Kerr.einval

let get_buf args i =
  match nth args i with Some (V_str s) -> Ok s | _ -> Error Kerr.einval

let get_res args i =
  match nth args i with Some (V_res h) -> Ok h | _ -> Error Kerr.einval

let ok_status = { status = Kerr.ok; created = None }

let status code = { status = code; created = None }

let created ~kind ~handle = { status = Kerr.ok; created = Some (kind, handle) }

let arg_type_to_string = function
  | A_int { min; max } -> Printf.sprintf "int[%Ld:%Ld]" min max
  | A_flags flags ->
    Printf.sprintf "flags[%s]" (String.concat ", " (List.map fst flags))
  | A_str { max_len } -> Printf.sprintf "string[%d]" max_len
  | A_buf { max_len } -> Printf.sprintf "buffer[%d]" max_len
  | A_ptr { base; size; null_ok } ->
    Printf.sprintf "ptr[0x%x:0x%x%s]" base (base + size) (if null_ok then ", null" else "")
  | A_res kind -> Printf.sprintf "res[%s]" kind
