let ok = 0L

let einval = -22L

let enomem = -12L

let enoent = -2L

let etimedout = -110L

let ebusy = -16L

let eagain = -11L

let enospc = -28L

let eperm = -1L

let name code =
  if Int64.equal code ok then "OK"
  else if Int64.equal code einval then "EINVAL"
  else if Int64.equal code enomem then "ENOMEM"
  else if Int64.equal code enoent then "ENOENT"
  else if Int64.equal code etimedout then "ETIMEDOUT"
  else if Int64.equal code ebusy then "EBUSY"
  else if Int64.equal code eagain then "EAGAIN"
  else if Int64.equal code enospc then "ENOSPC"
  else if Int64.equal code eperm then "EPERM"
  else Printf.sprintf "ERR%Ld" code

let is_error code = Int64.compare code 0L < 0
