type m = { mutable owner : int option; mutable depth : int }

type Kobj.payload += Mutex of m

let create ~reg ~name = Kobj.register reg ~kind:"mutex" ~name (Mutex { owner = None; depth = 0 })

let lock m ~owner =
  match m.owner with
  | None ->
    m.owner <- Some owner;
    m.depth <- 1;
    Ok ()
  | Some o when o = owner ->
    m.depth <- m.depth + 1;
    Ok ()
  | Some _ -> Error Kerr.ebusy

let unlock m ~owner =
  match m.owner with
  | Some o when o = owner ->
    m.depth <- m.depth - 1;
    if m.depth <= 0 then begin
      m.owner <- None;
      m.depth <- 0
    end;
    Ok ()
  | _ -> Error Kerr.eperm

let holder m = m.owner

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Mutex m -> Some m | _ -> None
