type item = { run : unit -> unit; mutable pending : bool }

type t = {
  drain_per_tick : int;
  queue : item Queue.t;
  mutable executed : int;
}

let create ~drain_per_tick =
  if drain_per_tick <= 0 then invalid_arg "Workq.create: drain_per_tick";
  { drain_per_tick; queue = Queue.create (); executed = 0 }

let make_item run = { run; pending = false }

let submit t item =
  if item.pending then false
  else begin
    item.pending <- true;
    Queue.push item t.queue;
    true
  end

let pending t = Queue.length t.queue

let drain_tick t =
  let ran = ref 0 in
  while !ran < t.drain_per_tick && not (Queue.is_empty t.queue) do
    let item = Queue.pop t.queue in
    item.pending <- false;
    incr ran;
    t.executed <- t.executed + 1;
    item.run ()
  done;
  !ran

let executed t = t.executed
