type ctx = { os_name : string; panic_site : int; assert_site : int }

let panic ctx ~backtrace msg =
  Klog.panic_banner ~os:ctx.os_name msg;
  Klog.line "Stack frames at BUG: unexpected stop:";
  List.iteri
    (fun i frame -> Klog.line (Printf.sprintf "  Level %d: %s" (i + 1) frame))
    backtrace;
  (* Park at the exception handler so a host breakpoint can observe the
     crash before the fault unwinds the boot. *)
  Eof_exec.Target.site ctx.panic_site;
  Eof_hw.Fault.usage msg

let kassert ctx cond msg =
  if not cond then begin
    Klog.assert_failed ~os:ctx.os_name msg;
    Eof_exec.Target.site ctx.assert_site
  end
