open Eof_hw

type t = { mem : Memory.t; base : int; size : int; mutable locked : bool }

let header_bytes = 8

let min_alloc = 8

let min_region_bytes = header_bytes + min_alloc

let status_free = 0xFEED0000l

let status_used = 0xFEED0001l

let init ~mem ~base ~size =
  if size < min_region_bytes then
    Error
      (Printf.sprintf "heap region of %d bytes is below the %d-byte minimum" size
         min_region_bytes)
  else if base mod 8 <> 0 || size mod 8 <> 0 then
    Error "heap region must be 8-byte aligned"
  else if not (Memory.in_range mem ~addr:base ~len:size) then
    Error "heap region outside RAM"
  else begin
    let t = { mem; base; size; locked = false } in
    Memory.write_u32 mem base (Int32.of_int (size - header_bytes));
    Memory.write_u32 mem (base + 4) status_free;
    Ok t
  end

let base t = t.base

let memory t = t.mem

let size t = t.size

let read_header t addr =
  let payload = Int32.to_int (Memory.read_u32 t.mem addr) in
  let status = Memory.read_u32 t.mem (addr + 4) in
  let valid_status = Int32.equal status status_free || Int32.equal status status_used in
  if
    (not valid_status)
    || payload <= 0
    || payload mod 8 <> 0
    || addr + header_bytes + payload > t.base + t.size
  then
    Fault.mem_manage ~address:addr
      (Printf.sprintf "heap metadata corrupted (size=%d status=0x%08lx)" payload status);
  (payload, Int32.equal status status_used)

let write_header t addr ~payload ~used =
  Memory.write_u32 t.mem addr (Int32.of_int payload);
  Memory.write_u32 t.mem (addr + 4) (if used then status_used else status_free)

let iter_blocks t f =
  let rec go addr =
    if addr < t.base + t.size then begin
      let payload, used = read_header t addr in
      f ~addr ~payload ~used;
      go (addr + header_bytes + payload)
    end
  in
  go t.base

let round_up n = if n <= 0 then min_alloc else (n + 7) / 8 * 8

let alloc t n =
  let need = round_up n in
  let found = ref None in
  iter_blocks t (fun ~addr ~payload ~used ->
      if !found = None && (not used) && payload >= need then found := Some (addr, payload));
  match !found with
  | None -> None
  | Some (addr, payload) ->
    let remainder = payload - need in
    if remainder >= header_bytes + min_alloc then begin
      (* Split: the tail becomes a new free block. *)
      write_header t addr ~payload:need ~used:true;
      write_header t (addr + header_bytes + need) ~payload:(remainder - header_bytes)
        ~used:false;
      Some (addr + header_bytes)
    end
    else begin
      write_header t addr ~payload ~used:true;
      Some (addr + header_bytes)
    end

let coalesce t =
  (* One forward pass merging adjacent free blocks; repeated until no
     merge happens (at most a few passes on these small heaps). *)
  let merged = ref true in
  while !merged do
    merged := false;
    let prev_free = ref None in
    let rec go addr =
      if addr < t.base + t.size then begin
        let payload, used = read_header t addr in
        (match (!prev_free, used) with
         | Some (paddr, ppayload), false ->
           write_header t paddr ~payload:(ppayload + header_bytes + payload) ~used:false;
           merged := true
           (* restart the walk after a merge *)
         | _, false ->
           prev_free := Some (addr, payload);
           go (addr + header_bytes + payload)
         | _, true ->
           prev_free := None;
           go (addr + header_bytes + payload))
      end
    in
    go t.base
  done

let free t payload_addr =
  let header_addr = payload_addr - header_bytes in
  if header_addr < t.base || header_addr >= t.base + t.size then
    Error (Printf.sprintf "0x%08x is not inside the heap" payload_addr)
  else begin
    let found = ref `Missing in
    iter_blocks t (fun ~addr ~payload:_ ~used ->
        if addr = header_addr then found := if used then `Live else `Already_free);
    match !found with
    | `Missing -> Error (Printf.sprintf "0x%08x is not a block payload" payload_addr)
    | `Already_free -> Error (Printf.sprintf "double free of 0x%08x" payload_addr)
    | `Live ->
      let payload, _ = read_header t header_addr in
      write_header t header_addr ~payload ~used:false;
      coalesce t;
      Ok ()
  end

let lock t = if t.locked then Error `Already_locked else (t.locked <- true; Ok ())

let unlock t = t.locked <- false

let locked t = t.locked

let fold_blocks t f init =
  let acc = ref init in
  iter_blocks t (fun ~addr ~payload ~used -> acc := f !acc ~addr ~payload ~used);
  !acc

let used_bytes t =
  fold_blocks t (fun acc ~addr:_ ~payload ~used -> if used then acc + payload else acc) 0

let free_bytes t =
  fold_blocks t (fun acc ~addr:_ ~payload ~used -> if used then acc else acc + payload) 0

let largest_free t =
  fold_blocks t
    (fun acc ~addr:_ ~payload ~used -> if (not used) && payload > acc then payload else acc)
    0

let block_count t = fold_blocks t (fun acc ~addr:_ ~payload:_ ~used:_ -> acc + 1) 0

let check t =
  match
    fold_blocks t (fun acc ~addr:_ ~payload ~used:_ -> acc + header_bytes + payload) 0
  with
  | total when total = t.size -> Ok ()
  | total -> Error (Printf.sprintf "blocks cover %d of %d bytes" total t.size)
  | exception Fault.Trap f -> Error (Fault.to_string f)
