open Eof_hw

type file = {
  path : string;
  mutable addr : int;  (** heap payload backing the contents *)
  mutable capacity : int;
  mutable size : int;
  mutable generation : int;  (** bumped on unlink to stale old fds *)
}

type fd_state = {
  file : file;
  fd_generation : int;
  writable : bool;
  mutable offset : int;
  mutable closed : bool;
}

type fd = int

type t = {
  heap : Heap.t;
  mem : Memory.t;
  max_files : int;
  max_file_bytes : int;
  mutable files : file list;
  fds : (int, fd_state) Hashtbl.t;
  mutable next_fd : int;
}

let create ~heap ~max_files ~max_file_bytes =
  {
    heap;
    mem = Heap.memory heap;
    max_files;
    max_file_bytes;
    files = [];
    fds = Hashtbl.create 16;
    next_fd = 3; (* 0-2 are the traditional std streams *)
  }

let find_file t path = List.find_opt (fun f -> f.path = path && f.generation >= 0) t.files

let open_ t ~path ~create ~write =
  if path = "" || String.length path > 64 then Error Kerr.einval
  else begin
    let file =
      match find_file t path with
      | Some f -> Ok f
      | None ->
        if not create then Error Kerr.enoent
        else if List.length t.files >= t.max_files then Error Kerr.enospc
        else begin
          let f = { path; addr = 0; capacity = 0; size = 0; generation = 0 } in
          t.files <- f :: t.files;
          Ok f
        end
    in
    match file with
    | Error e -> Error e
    | Ok file ->
      let fd = t.next_fd in
      t.next_fd <- fd + 1;
      Hashtbl.replace t.fds fd
        {
          file;
          fd_generation = file.generation;
          writable = write;
          offset = 0;
          closed = false;
        };
      Ok fd
  end

let lookup t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Kerr.einval
  | Some st when st.closed -> Error Kerr.einval
  | Some st when st.fd_generation <> st.file.generation -> Error Kerr.enoent
  | Some st -> Ok st

let grow t file needed =
  if needed <= file.capacity then Ok ()
  else begin
    let new_capacity = max 32 (max needed (file.capacity * 2)) in
    match Heap.alloc t.heap new_capacity with
    | None -> Error Kerr.enospc
    | Some addr ->
      if file.capacity > 0 then begin
        let old = Memory.read_bytes t.mem ~addr:file.addr ~len:file.size in
        Memory.write_bytes t.mem ~addr old;
        ignore (Heap.free t.heap file.addr : (unit, string) result)
      end;
      file.addr <- addr;
      file.capacity <- new_capacity;
      Ok ()
  end

let write t fd data =
  match lookup t fd with
  | Error e -> Error e
  | Ok st ->
    if not st.writable then Error Kerr.eperm
    else begin
      let file = st.file in
      let needed = file.size + String.length data in
      if needed > t.max_file_bytes then Error Kerr.enospc
      else
        match grow t file needed with
        | Error e -> Error e
        | Ok () ->
          Memory.write_bytes t.mem ~addr:(file.addr + file.size) (Bytes.of_string data);
          file.size <- needed;
          Ok (String.length data)
    end

let read t fd ~max =
  match lookup t fd with
  | Error e -> Error e
  | Ok st ->
    let file = st.file in
    let available = file.size - st.offset in
    let n = min (Stdlib.max 0 max) (Stdlib.max 0 available) in
    if n = 0 then Ok ""
    else begin
      let data = Memory.read_bytes t.mem ~addr:(file.addr + st.offset) ~len:n in
      st.offset <- st.offset + n;
      Ok (Bytes.unsafe_to_string data)
    end

let close t fd =
  match Hashtbl.find_opt t.fds fd with
  | None -> Error Kerr.einval
  | Some st when st.closed -> Error Kerr.einval
  | Some st ->
    st.closed <- true;
    Ok ()

let unlink t ~path =
  match find_file t path with
  | None -> Error Kerr.enoent
  | Some file ->
    if file.capacity > 0 then ignore (Heap.free t.heap file.addr : (unit, string) result);
    file.generation <- file.generation + 1;
    file.size <- 0;
    file.capacity <- 0;
    t.files <- List.filter (fun f -> f != file) t.files;
    Ok ()

let size_of t ~path = Option.map (fun f -> f.size) (find_file t path)

let file_count t = List.length t.files

let open_fds t =
  Hashtbl.fold (fun _ st acc -> if st.closed then acc else acc + 1) t.fds 0
