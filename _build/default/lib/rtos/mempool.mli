(** Fixed-block memory pools.

    The pool's storage is a heap allocation carved into equal blocks with
    a free-list threaded through block indices. A pool created with a
    zero block size is representable — the RT-Thread personality's
    [rt_mp_create] fails to reject it, and [rt_mp_alloc] then divides by
    the zero stride (bug #7) — so validation here is the caller's
    responsibility, exposed via {!validate_geometry}. *)

type pool = private {
  block_size : int;
  block_count : int;
  base_addr : int;
  mutable free_list : int list;  (** free block indices *)
  mutable allocated : int;
}

type Kobj.payload += Pool of pool

val validate_geometry : block_size:int -> block_count:int -> (unit, int64) result
(** [Kerr.einval] for non-positive or oversized geometry. *)

val create_unchecked :
  reg:Kobj.t -> heap:Heap.t -> name:string -> block_size:int -> block_count:int ->
  (Kobj.obj, int64) result
(** Carves storage WITHOUT validating geometry (zero sizes included:
    the storage allocation is then the minimum heap block).
    [Kerr.enomem] if the heap cannot back it. *)

val alloc : pool -> (int, int64) result
(** Block address; [Kerr.enomem] when exhausted.
    @raise Fault.Trap usage fault on zero-stride geometry. *)

val free_block : pool -> int -> (unit, int64) result
(** Return a block by address; [Kerr.einval] if not a live block. *)

val available : pool -> int

val of_obj : Kobj.obj -> pool option
