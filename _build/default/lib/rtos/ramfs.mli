(** A small RAM filesystem (Figure 1's "file systems handle data
    storage" layer).

    Flat namespace, fixed file-count and size limits, contents stored in
    kernel-heap blocks in board RAM — so filesystem writes are physical
    and a corrupted heap takes the filesystem down with it, as on a real
    MCU. *)

type t

val create : heap:Heap.t -> max_files:int -> max_file_bytes:int -> t

type fd

val open_ : t -> path:string -> create:bool -> write:bool -> (fd, int64) result
(** [Kerr.enoent] when missing without [create]; [Kerr.enospc] when the
    file table is full; [Kerr.einval] on empty/oversized paths. *)

val write : t -> fd -> string -> (int, int64) result
(** Append. [Kerr.eperm] on read-only descriptors, [Kerr.enospc] past
    the per-file limit or when the heap cannot back the data. *)

val read : t -> fd -> max:int -> (string, int64) result
(** Read from the descriptor's offset, advancing it. Empty string at
    end of file. *)

val close : t -> fd -> (unit, int64) result
(** Double close is [Kerr.einval]. *)

val unlink : t -> path:string -> (unit, int64) result
(** Frees the file's storage. Open descriptors to it go stale and
    subsequent reads/writes fail with [Kerr.enoent]. *)

val size_of : t -> path:string -> int option

val file_count : t -> int

val open_fds : t -> int
