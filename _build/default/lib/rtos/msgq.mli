(** Fixed-size message queues (ring buffers in kernel RAM).

    Message payloads live in a heap-allocated ring in board RAM, moved
    with physical memory copies, so queue misuse can corrupt real bytes.
    [purge] invalidates the ring without freeing it — the dangling-ring
    state behind the Zephyr [z_impl_k_msgq_get] bug. *)

type q = private {
  mem : Eof_hw.Memory.t;
  capacity : int;  (** max messages *)
  item_size : int;  (** bytes per message *)
  buf_addr : int;  (** ring storage (heap payload address) *)
  mutable head : int;  (** index of the oldest message *)
  mutable count : int;
  mutable purged : bool;
}

type Kobj.payload += Queue of q

val create :
  reg:Kobj.t -> heap:Heap.t -> name:string -> capacity:int -> item_size:int ->
  (Kobj.obj, int64) result
(** Allocates the ring from the kernel heap. [Kerr.einval] on
    non-positive dimensions, [Kerr.enomem] if the ring does not fit. *)

val send : q -> string -> (unit, int64) result
(** Message is truncated/zero-padded to [item_size]. [Kerr.eagain] when
    full. *)

val recv : q -> (string, int64) result
(** [Kerr.eagain] when empty. Note: does NOT check [purged]; that check
    is the personality's job — or its bug. *)

val purge : q -> unit
(** Drop all messages and poison the ring storage. *)

val count : q -> int

val is_full : q -> bool

val of_obj : Kobj.obj -> q option
