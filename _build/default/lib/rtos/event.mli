(** Event flag groups (32 flags per group). *)

type e = private { mutable flags : int; mutable sends : int }

type Kobj.payload += Event of e

val create : reg:Kobj.t -> name:string -> Kobj.obj

val send : e -> int -> unit
(** OR the given flag bits in. *)

val recv : e -> mask:int -> all:bool -> clear:bool -> (int, int64) result
(** Check the mask against pending flags ([all] = every bit must be
    set, otherwise any). On success returns the matched flags, clearing
    them if [clear]. [Kerr.eagain] when unsatisfied, [Kerr.einval] on an
    empty mask. *)

val flags : e -> int

val of_obj : Kobj.obj -> e option
