(** Kernel logging to the UART.

    All kernel and app output goes through here and ends up in the
    board's UART FIFO, which the host redirects to its stdout channel and
    scans with the log monitor. Severity tags are stable strings the
    monitor's regular expressions key on. *)

val raw : string -> unit
(** Transmit the string as-is. *)

val line : string -> unit
(** Transmit the string plus a newline. *)

val info : os:string -> string -> unit
(** ["[<os>] <msg>\n"]. *)

val warn : os:string -> string -> unit

val err : os:string -> string -> unit
(** ["[<os>] ERROR: <msg>\n"]. *)

val assert_failed : os:string -> string -> unit
(** The assertion-failure line the log monitor matches:
    ["[<os>] ASSERTION FAILED: <msg>\n"]. *)

val panic_banner : os:string -> string -> unit
(** The panic line: ["[<os>] KERNEL PANIC: <msg>\n"]. *)
