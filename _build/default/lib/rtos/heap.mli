(** First-fit free-list heap allocator over a board RAM region.

    Block layout (all words in the region's endianness):

    {v
    +0  payload size in bytes (multiple of 8)
    +4  status word: 0xFEED0000 free, 0xFEED0001 used
    +8  payload...
    v}

    Blocks tile the region exactly. The allocator validates metadata on
    every walk; corrupted headers (from overflowing kernel code — e.g.
    the [rt_smem_setname] bug scribbles the next block's magic) raise a
    memory-management fault, which is precisely how such corruption shows
    up on hardware. *)

type t

val min_region_bytes : int
(** Smallest region [init] accepts (header + one minimal block). *)

val header_bytes : int

val init : mem:Eof_hw.Memory.t -> base:int -> size:int -> (t, string) result
(** Carve one free block covering the region. Fails on misaligned or
    undersized regions — callers that ignore this failure and use the
    heap anyway reproduce the Zephyr [k_heap_init] bug. *)

val base : t -> int

val memory : t -> Eof_hw.Memory.t
(** The RAM region the heap lives in (payload addresses index into it). *)

val size : t -> int

val alloc : t -> int -> int option
(** [alloc t n] returns the payload address of a fresh block of at least
    [n] bytes, or [None] when no block fits. [n <= 0] is rounded up to
    the minimum allocation. @raise Fault.Trap on corrupted metadata. *)

val free : t -> int -> (unit, string) result
(** Free by payload address. Rejects addresses that are not live block
    payloads; frees coalesce with free neighbours.
    @raise Fault.Trap on corrupted metadata. *)

val lock : t -> (unit, [ `Already_locked ]) result
(** The allocator's non-recursive lock; re-entry is the RT-Thread
    [_heap_lock] bug. *)

val unlock : t -> unit

val locked : t -> bool

val used_bytes : t -> int

val free_bytes : t -> int

val largest_free : t -> int

val block_count : t -> int

val check : t -> (unit, string) result
(** Non-faulting integrity walk (a [Result] version of what alloc/free
    enforce), for tests and the heap-stress API. *)

val iter_blocks : t -> (addr:int -> payload:int -> used:bool -> unit) -> unit
(** @raise Fault.Trap on corrupted metadata. *)
