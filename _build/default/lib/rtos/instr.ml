type t =
  | Live of { sancov : Eof_cov.Sancov.t; block : Eof_cov.Sitemap.block }
  | Null of { count : int }

let of_sancov ~sancov ~block = Live { sancov; block }

let null ~count = Null { count }

let count = function
  | Live { block; _ } -> block.Eof_cov.Sitemap.count
  | Null { count } -> count

let check t i =
  if i < 0 || i >= count t then
    invalid_arg (Printf.sprintf "Instr: site index %d out of range (count %d)" i (count t))

let site_addr t i =
  check t i;
  match t with
  | Live { block; _ } -> Eof_cov.Sitemap.site_addr block i
  | Null _ -> i * 4

let cmp t i a b =
  check t i;
  match t with
  | Live { sancov; block } ->
    Eof_cov.Sancov.cmp sancov ~site:(Eof_cov.Sitemap.site_addr block i) a b
  | Null _ -> ()

let edge t i =
  check t i;
  match t with
  | Live { sancov; block } ->
    Eof_cov.Sancov.edge sancov ~site:(Eof_cov.Sitemap.site_addr block i)
  | Null _ -> ()

let cmp_i t i a b = cmp t i (Int64.of_int a) (Int64.of_int b)
