(** Recursive mutexes owned by tasks. *)

type m = private { mutable owner : int option; mutable depth : int }

type Kobj.payload += Mutex of m

val create : reg:Kobj.t -> name:string -> Kobj.obj

val lock : m -> owner:int -> (unit, int64) result
(** Recursive for the same owner; [Kerr.ebusy] if held by another
    task. *)

val unlock : m -> owner:int -> (unit, int64) result
(** [Kerr.eperm] when not the owner. *)

val holder : m -> int option

val of_obj : Kobj.obj -> m option
