(** API tables: the typed surface an OS personality exposes to the
    execution agent and — via the generated Syzlang specifications — to
    the fuzzer.

    Each entry carries the machine-readable signature the spec
    synthesizer exports (argument types with value constraints, resource
    production/consumption) plus the handler the agent invokes. This is
    the single source of truth the paper obtains from headers + LLM
    extraction. *)

type arg_type =
  | A_int of { min : int64; max : int64 }  (** inclusive numeric range *)
  | A_flags of (string * int64) list  (** named OR-able flag values *)
  | A_str of { max_len : int }  (** NUL-free text *)
  | A_buf of { max_len : int }  (** raw bytes *)
  | A_ptr of { base : int; size : int; null_ok : bool }
      (** a pointer into target RAM (the spec knows the memory layout
          from the build-analysis step); [null_ok] admits NULL as a
          semi-valid value APIs are expected to reject *)
  | A_res of string  (** a resource kind, e.g. ["msgq"] *)

type value =
  | V_int of int64
  | V_str of string
  | V_res of int  (** resolved kernel-object handle *)

type outcome = {
  status : int64;
  created : (string * int) option;  (** resource kind, handle *)
}

type entry = {
  name : string;
  args : (string * arg_type) list;
  ret : [ `Status | `Resource of string ];
  doc : string;
  weight : int;  (** relative generation weight, >= 1 *)
  handler : value list -> outcome;
}

type table = { os : string; entries : entry list }

val make_table : os:string -> entry list -> table
(** Validates the table: unique entry names, positive weights, every
    consumed/produced resource kind consistent.
    @raise Invalid_argument on violations. *)

val find : table -> string -> entry option

val resource_kinds : table -> string list
(** All kinds produced by some entry, sorted. *)

val producers : table -> string -> entry list
(** Entries whose [ret] produces the kind. *)

val consumers : table -> string -> entry list
(** Entries with at least one [A_res kind] argument. *)

(** Handler-side argument accessors. Each checks position and variant
    and returns [Error Kerr.einval] on mismatch, so handlers degrade
    into API errors (not OCaml exceptions) on bad calls. *)

val get_int : value list -> int -> (int64, int64) result

val get_str : value list -> int -> (string, int64) result

val get_buf : value list -> int -> (string, int64) result

val get_res : value list -> int -> (int, int64) result

val ok_status : outcome

val status : int64 -> outcome

val created : kind:string -> handle:int -> outcome

val arg_type_to_string : arg_type -> string
