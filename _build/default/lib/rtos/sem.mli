(** Counting semaphores. *)

type s = private {
  max_count : int;
  mutable count : int;
  mutable takes : int;  (** successful takes (statistics) *)
  mutable gives : int;
}

type Kobj.payload += Sem of s

val create : reg:Kobj.t -> name:string -> initial:int -> max_count:int ->
  (Kobj.obj, int64) result
(** [Kerr.einval] unless [0 <= initial <= max_count] and [max_count > 0]. *)

val take : s -> (unit, int64) result
(** [Kerr.eagain] at zero. *)

val give : s -> (unit, int64) result
(** [Kerr.enospc] at [max_count] (matching Zephyr semantics). *)

val count : s -> int

val of_obj : Kobj.obj -> s option
