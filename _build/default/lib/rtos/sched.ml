type task_state = Ready | Suspended | Finished

type tcb = {
  id : int;
  task_name : string;
  stack_size : int;
  mutable priority : int;
  mutable state : task_state;
  mutable quanta_run : int;
  mutable last_run : int;
}

type Kobj.payload += Task of tcb

(* Bodies are kept outside the tcb so the record stays [private]-friendly
   and comparisons/printing of tcbs stay structural. *)
type t = {
  reg : Kobj.t;
  wheel : Swtimer.wheel;
  mutable tasks : (tcb * (tcb -> unit)) list;
  mutable tick_count : int;
}

let max_priority = 31

(* Fixed TCB table, as MCU kernels configure. *)
let max_tasks = 64

let create ~reg ~wheel = { reg; wheel; tasks = []; tick_count = 0 }

let live_tasks t =
  List.length (List.filter (fun (tcb, _) -> tcb.state <> Finished) t.tasks)

let spawn t ~name ~priority ~stack_size ~body =
  if priority < 0 || priority > max_priority then Error Kerr.einval
  else if stack_size < 128 || stack_size > 65536 then Error Kerr.einval
  else if live_tasks t >= max_tasks then Error Kerr.enospc
  else begin
    let tcb =
      {
        id = 0;
        task_name = name;
        stack_size;
        priority;
        state = Ready;
        quanta_run = 0;
        last_run = -1;
      }
    in
    let obj = Kobj.register t.reg ~kind:"task" ~name (Task tcb) in
    (* Rebuild with the real handle now that the registry assigned one. *)
    let tcb = { tcb with id = obj.Kobj.handle } in
    obj.Kobj.payload <- Task tcb;
    (* Reap finished TCBs so the table reflects live tasks only. *)
    t.tasks <- (tcb, body) :: List.filter (fun (x, _) -> x.state <> Finished) t.tasks;
    Ok obj
  end

let pick_next t =
  (* Highest priority first; within a priority, the least recently run. *)
  List.fold_left
    (fun best entry ->
      let tcb, _ = entry in
      if tcb.state <> Ready then best
      else
        match best with
        | None -> Some entry
        | Some (b, _) ->
          if
            tcb.priority < b.priority
            || (tcb.priority = b.priority && tcb.last_run < b.last_run)
          then Some entry
          else best)
    None t.tasks

let tick t =
  t.tick_count <- t.tick_count + 1;
  ignore (Swtimer.tick t.wheel : int);
  match pick_next t with
  | None -> ()
  | Some (tcb, body) ->
    tcb.last_run <- t.tick_count;
    tcb.quanta_run <- tcb.quanta_run + 1;
    body tcb

let run_ticks t n =
  for _ = 1 to n do
    tick t
  done

let suspend tcb = if tcb.state = Ready then tcb.state <- Suspended

let resume tcb = if tcb.state = Suspended then tcb.state <- Ready

let finish tcb = tcb.state <- Finished

let set_priority tcb priority =
  if priority < 0 || priority > max_priority then Error Kerr.einval
  else begin
    tcb.priority <- priority;
    Ok ()
  end

let ready_count t =
  List.length (List.filter (fun (tcb, _) -> tcb.state = Ready) t.tasks)

let ticks t = t.tick_count

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Task tcb -> Some tcb | _ -> None
