type e = { mutable flags : int; mutable sends : int }

type Kobj.payload += Event of e

let create ~reg ~name = Kobj.register reg ~kind:"event" ~name (Event { flags = 0; sends = 0 })

let send e bits =
  e.flags <- e.flags lor (bits land 0xFFFFFFFF);
  e.sends <- e.sends + 1

let recv e ~mask ~all ~clear =
  let mask = mask land 0xFFFFFFFF in
  if mask = 0 then Error Kerr.einval
  else
    let matched = e.flags land mask in
    let satisfied = if all then matched = mask else matched <> 0 in
    if not satisfied then Error Kerr.eagain
    else begin
      if clear then e.flags <- e.flags land lnot matched;
      Ok matched
    end

let flags e = e.flags

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Event e -> Some e | _ -> None
