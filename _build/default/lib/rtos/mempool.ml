type pool = {
  block_size : int;
  block_count : int;
  base_addr : int;
  mutable free_list : int list;
  mutable allocated : int;
}

type Kobj.payload += Pool of pool

let validate_geometry ~block_size ~block_count =
  if block_size <= 0 || block_count <= 0 || block_size > 4096 || block_count > 1024 then
    Error Kerr.einval
  else Ok ()

let create_unchecked ~reg ~heap ~name ~block_size ~block_count =
  let storage = max 8 (block_size * block_count) in
  match Heap.alloc heap storage with
  | None -> Error Kerr.enomem
  | Some base_addr ->
    let pool =
      {
        block_size;
        block_count;
        base_addr;
        free_list = List.init (max 0 block_count) (fun i -> i);
        allocated = 0;
      }
    in
    Ok (Kobj.register reg ~kind:"mempool" ~name (Pool pool))

let alloc pool =
  if pool.block_size <= 0 then
    (* The zero-stride walk of the real bug: block address arithmetic
       degenerates and the pool walks off its storage. *)
    Eof_hw.Fault.usage ~address:pool.base_addr
      (Printf.sprintf "memory pool stride is %d: free-list walk diverges" pool.block_size);
  match pool.free_list with
  | [] -> Error Kerr.enomem
  | i :: rest ->
    pool.free_list <- rest;
    pool.allocated <- pool.allocated + 1;
    Ok (pool.base_addr + (i * pool.block_size))

let free_block pool addr =
  if pool.block_size <= 0 then Error Kerr.einval
  else
    let off = addr - pool.base_addr in
    if off < 0 || off mod pool.block_size <> 0 then Error Kerr.einval
    else
      let i = off / pool.block_size in
      if i >= pool.block_count || List.mem i pool.free_list then Error Kerr.einval
      else begin
        pool.free_list <- i :: pool.free_list;
        pool.allocated <- pool.allocated - 1;
        Ok ()
      end

let available pool = List.length pool.free_list

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Pool p -> Some p | _ -> None
