(** Software timers driven by the kernel tick.

    A timer wheel advances once per scheduler tick; expiring timers run
    their callbacks in "timer context" — which is how the RT-Thread
    [_heap_lock] re-entry bug gets its interrupt-context flavour. *)

type kind = Oneshot | Periodic

type timer = private {
  kind : kind;
  period : int;  (** ticks *)
  callback : unit -> unit;
  mutable remaining : int;
  mutable active : bool;
  mutable fires : int;
}

type Kobj.payload += Timer of timer

type wheel

val create_wheel : unit -> wheel

val max_timers : int
(** Fixed timer-table size (64), as RTOS build configs declare. *)

val create :
  reg:Kobj.t -> wheel:wheel -> name:string -> kind:kind -> period:int ->
  callback:(unit -> unit) -> (Kobj.obj, int64) result
(** [Kerr.einval] on a non-positive period, [Kerr.enospc] when the
    timer table is full. The timer starts stopped. *)

val start : timer -> unit

val stop : timer -> unit

val tick : wheel -> int
(** Advance one tick; run expiring callbacks. Returns how many fired. *)

val active_count : wheel -> int

val of_obj : Kobj.obj -> timer option
