(** Kernel object registry.

    Every kernel object (task, queue, semaphore, timer, device, ...)
    gets an integer handle. Handles are never reused within a boot, and
    the registry deliberately keeps records for detached/deleted objects:
    several of the seeded Table-2 bugs are stale-handle bugs, which only
    exist because kernel code can still reach a dead object's carcass —
    as on the real RTOSes, where the handle is just a pointer. *)

type state = Active | Detached | Deleted

type payload = ..
(** Extended by each kernel-object module with its state record. *)

type obj = {
  handle : int;
  kind : string;
  mutable name : string;
  mutable state : state;
  mutable payload : payload;
}

type t

val create : unit -> t

val register : t -> kind:string -> name:string -> payload -> obj

val lookup : t -> int -> obj option
(** Unchecked lookup: returns detached/deleted carcasses too. Personality
    code that uses this without a state check is reproducing a bug. *)

val lookup_active : t -> int -> kind:string -> (obj, int64) result
(** The safe accessor: [Error Kerr.enoent] for unknown/dead handles,
    [Error Kerr.einval] for a kind mismatch. *)

val detach : obj -> unit

val delete : obj -> unit

val active_count : t -> int

val total_count : t -> int

val iter_active : t -> (obj -> unit) -> unit

val of_kind : t -> string -> obj list
(** Active objects of a kind, oldest first. *)

val state_name : state -> string
