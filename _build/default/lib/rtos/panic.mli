(** Kernel panic and assertion machinery.

    Each OS personality names its exception entry points (e.g. FreeRTOS
    [panic_handler()], RT-Thread [common_exception()]); the host's
    exception monitor sets breakpoints on them. A panic crosses the
    panic site — pausing under a breakpoint so the host can capture the
    backtrace and fault detail — then raises a usage fault that
    terminates the boot.

    Assertion failures are the softer class the paper's log monitor
    catches: they print an ASSERTION FAILED line and execution continues
    (possibly wedged), with no hardware fault. *)

type ctx = {
  os_name : string;
  panic_site : int;  (** flash address of the exception-handler symbol *)
  assert_site : int;  (** flash address of the assert-report symbol *)
}

val panic : ctx -> backtrace:string list -> string -> 'a
(** Log the panic banner and a stack-frame dump, cross the panic site,
    raise the fault. [backtrace] is innermost-first symbolic frames. *)

val kassert : ctx -> bool -> string -> unit
(** If the condition is false: log the assertion line, cross the assert
    site, and return (the kernel limps on). *)
