type state = Active | Detached | Deleted

type payload = ..

type obj = {
  handle : int;
  kind : string;
  mutable name : string;
  mutable state : state;
  mutable payload : payload;
}

type t = { objects : (int, obj) Hashtbl.t; mutable next_handle : int }

let create () = { objects = Hashtbl.create 64; next_handle = 1 }

let register t ~kind ~name payload =
  let handle = t.next_handle in
  t.next_handle <- handle + 1;
  let obj = { handle; kind; name; state = Active; payload } in
  Hashtbl.replace t.objects handle obj;
  obj

let lookup t handle = Hashtbl.find_opt t.objects handle

let lookup_active t handle ~kind =
  match Hashtbl.find_opt t.objects handle with
  | None -> Error Kerr.enoent
  | Some obj ->
    if obj.state <> Active then Error Kerr.enoent
    else if obj.kind <> kind then Error Kerr.einval
    else Ok obj

let detach obj = obj.state <- Detached

let delete obj = obj.state <- Deleted

let fold t f init =
  Hashtbl.fold (fun _ obj acc -> f acc obj) t.objects init

let active_count t = fold t (fun acc obj -> if obj.state = Active then acc + 1 else acc) 0

let total_count t = Hashtbl.length t.objects

let iter_active t f =
  Hashtbl.iter (fun _ obj -> if obj.state = Active then f obj) t.objects

let of_kind t kind =
  fold t (fun acc obj -> if obj.state = Active && obj.kind = kind then obj :: acc else acc) []
  |> List.sort (fun a b -> compare a.handle b.handle)

let state_name = function Active -> "active" | Detached -> "detached" | Deleted -> "deleted"
