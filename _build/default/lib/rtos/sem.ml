type s = {
  max_count : int;
  mutable count : int;
  mutable takes : int;
  mutable gives : int;
}

type Kobj.payload += Sem of s

let create ~reg ~name ~initial ~max_count =
  if max_count <= 0 || initial < 0 || initial > max_count then Error Kerr.einval
  else
    Ok
      (Kobj.register reg ~kind:"sem" ~name
         (Sem { max_count; count = initial; takes = 0; gives = 0 }))

let take s =
  if s.count <= 0 then Error Kerr.eagain
  else begin
    s.count <- s.count - 1;
    s.takes <- s.takes + 1;
    Ok ()
  end

let give s =
  if s.count >= s.max_count then Error Kerr.enospc
  else begin
    s.count <- s.count + 1;
    s.gives <- s.gives + 1;
    Ok ()
  end

let count s = s.count

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Sem s -> Some s | _ -> None
