type kind = Oneshot | Periodic

type timer = {
  kind : kind;
  period : int;
  callback : unit -> unit;
  mutable remaining : int;
  mutable active : bool;
  mutable fires : int;
}

type Kobj.payload += Timer of timer

type wheel = { mutable timers : timer list }

(* Fixed timer table, as RTOS configs declare (configTIMER_QUEUE_LENGTH
   and friends). *)
let max_timers = 64

let create_wheel () = { timers = [] }

let create ~reg ~wheel ~name ~kind ~period ~callback =
  if period <= 0 then Error Kerr.einval
  else if List.length wheel.timers >= max_timers then Error Kerr.enospc
  else begin
    let timer = { kind; period; callback; remaining = period; active = false; fires = 0 } in
    wheel.timers <- timer :: wheel.timers;
    Ok (Kobj.register reg ~kind:"timer" ~name (Timer timer))
  end

let start timer =
  timer.remaining <- timer.period;
  timer.active <- true

let stop timer = timer.active <- false

let tick wheel =
  let fired = ref 0 in
  List.iter
    (fun timer ->
      if timer.active then begin
        timer.remaining <- timer.remaining - 1;
        if timer.remaining <= 0 then begin
          incr fired;
          timer.fires <- timer.fires + 1;
          (match timer.kind with
           | Oneshot -> timer.active <- false
           | Periodic -> timer.remaining <- timer.period);
          timer.callback ()
        end
      end)
    wheel.timers;
  !fired

let active_count wheel = List.length (List.filter (fun t -> t.active) wheel.timers)

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Timer t -> Some t | _ -> None
