let raw s = Eof_exec.Target.uart_tx s

let line s =
  raw s;
  raw "\n"

let tagged ~os tag msg =
  if tag = "" then line (Printf.sprintf "[%s] %s" os msg)
  else line (Printf.sprintf "[%s] %s: %s" os tag msg)

let info ~os msg = tagged ~os "" msg

let warn ~os msg = tagged ~os "WARN" msg

let err ~os msg = tagged ~os "ERROR" msg

let assert_failed ~os msg = tagged ~os "ASSERTION FAILED" msg

let panic_banner ~os msg = tagged ~os "KERNEL PANIC" msg
