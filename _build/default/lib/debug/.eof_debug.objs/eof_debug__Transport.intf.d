lib/debug/transport.mli: Eof_util
