lib/debug/rsp.mli:
