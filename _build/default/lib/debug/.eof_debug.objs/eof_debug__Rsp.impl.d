lib/debug/rsp.ml: Buffer Char Eof_util Hex List Printf Result String
