lib/debug/openocd.ml: Arch Array Board Buffer Bytes Clock Engine Eof_exec Eof_hw Eof_util Fault Flash Gpio Int32 Int64 List Rsp String Uart
