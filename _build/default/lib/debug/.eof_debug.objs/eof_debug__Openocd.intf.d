lib/debug/openocd.mli: Board Engine Eof_exec Eof_hw
