lib/debug/transport.ml: Eof_util String
