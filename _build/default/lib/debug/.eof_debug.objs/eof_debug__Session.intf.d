lib/debug/session.mli: Openocd Transport
