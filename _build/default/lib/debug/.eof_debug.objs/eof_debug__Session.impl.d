lib/debug/session.ml: Arch Board Bytes Eof_hw Eof_util Int32 Int64 List Openocd Printf Result Rsp String Transport
