(** GDB Remote Serial Protocol: framing, escaping, and the command
    vocabulary EOF needs.

    All host-target interaction travels as RSP byte streams over the
    simulated probe link, so the protocol layer is real: packets are
    framed as [$payload#xx] with a mod-256 checksum, binary payloads use
    [}]-escaping, and malformed input is rejected the way a picky stub
    would reject it. *)

val checksum : string -> int
(** Sum of payload bytes mod 256. *)

val make_frame : string -> string
(** [$payload#xx]. The payload must already be escaped. *)

val escape_binary : string -> string
(** Escape [$], [#], [}] and [*] as [}(c lxor 0x20)] for binary payload
    sections (as used by [vFlashWrite]). *)

val unescape_binary : string -> (string, string) result

(** Incremental frame decoder. Feed raw bytes; collect events. *)
module Decoder : sig
  type t

  type event =
    | Packet of string  (** checksum-validated payload, still escaped *)
    | Ack
    | Nak
    | Break  (** 0x03 interrupt byte *)
    | Bad_checksum of string

  val create : unit -> t

  val feed : t -> string -> event list
  (** Events completed by these bytes, in order. Partial frames are
      buffered. *)
end

(** Host-to-target commands, parsed from packet payloads. *)
type command =
  | Q_supported of string
  | Read_mem of { addr : int; len : int }
  | Write_mem of { addr : int; data : string }
  | Insert_breakpoint of int
  | Remove_breakpoint of int
  | Continue
  | Step
  | Read_registers
  | Halt_reason
  | Flash_erase of { addr : int; len : int }
  | Flash_write of { addr : int; data : string }  (** data unescaped *)
  | Flash_done
  | Monitor of string  (** qRcmd, decoded from hex *)
  | Kill

val parse_command : string -> (command, string) result
(** Parse an unescaped packet payload. *)

val render_command : command -> string
(** Client side: payload text for a command (escaped where needed). *)

(** Target-to-host replies. *)
type stop_info = {
  signal : int;  (** 5 = TRAP (breakpoint/fault), 2 = INT (quantum) *)
  pc : int;
  detail : string;  (** "swbreak", "fault:<msg>", "quantum" *)
}

type reply =
  | Ok_reply
  | Error_reply of int
  | Hex_data of string  (** raw bytes, hex-encoded on the wire *)
  | Stop of stop_info
  | Exited of int
  | Supported of string
  | Raw of string  (** uninterpreted payload (qRcmd output, [g] dump) *)

val render_reply : pc_reg:int -> reply -> string
(** [pc_reg] is the architecture's PC register number for [T] stop
    replies. *)

val parse_reply : pc_reg:int -> string -> (reply, string) result
(** Client side. [Raw] is returned for payloads that match no structured
    form; callers with context (e.g. after [m]) interpret it. *)
