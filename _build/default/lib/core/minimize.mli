(** Crash-program minimization.

    Syzkaller-style triage: given a crashing program, repeatedly drop
    calls (cascading over resource dependencies) and simplify arguments
    while the target still crashes with the same signature, producing the
    small reproducers a maintainer actually reads — like the two-call
    case-study program in the paper's Figure 6. *)

type verdict = Crash of string | No_crash
(** What one execution of a candidate produced; [Crash sig] carries the
    crash's dedup signature. *)

val remove_call : Prog.t -> int -> Prog.t
(** Drop the call at the position plus (cascading) every later call that
    transitively consumed its result; remaining resource references are
    renumbered. *)

val minimize :
  ?max_execs:int ->
  exec:(Prog.t -> verdict) ->
  signature:string ->
  Prog.t ->
  Prog.t * int
(** [minimize ~exec ~signature prog] returns the reduced program and the
    number of candidate executions spent. The result still crashes with
    [signature] under [exec] (the original is returned unchanged if no
    reduction holds). Default budget: 200 executions. *)
