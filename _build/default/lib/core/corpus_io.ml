open Eof_spec

let arg_to_text = function
  | Prog.Int v -> Printf.sprintf "int=%Ld" v
  | Prog.Str s -> Printf.sprintf "str=%s" (Eof_util.Hex.encode s)
  | Prog.Res k -> Printf.sprintf "res=%d" k

let prog_to_text prog =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "prog\n";
  List.iter
    (fun (call : Prog.call) ->
      Buffer.add_string buf
        (Printf.sprintf "  call %s%s\n" call.Prog.spec.Ast.name
           (String.concat ""
              (List.map (fun a -> " " ^ arg_to_text a) call.Prog.args))))
    prog;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let parse_arg token =
  match String.index_opt token '=' with
  | None -> Error (Printf.sprintf "malformed argument %S" token)
  | Some i ->
    let key = String.sub token 0 i in
    let value = String.sub token (i + 1) (String.length token - i - 1) in
    (match key with
     | "int" ->
       (match Int64.of_string_opt value with
        | Some v -> Ok (Prog.Int v)
        | None -> Error (Printf.sprintf "bad int %S" value))
     | "str" ->
       (match Eof_util.Hex.decode value with
        | Ok s -> Ok (Prog.Str s)
        | Error e -> Error e)
     | "res" ->
       (match int_of_string_opt value with
        | Some k -> Ok (Prog.Res k)
        | None -> Error (Printf.sprintf "bad res %S" value))
     | k -> Error (Printf.sprintf "unknown argument kind %S" k))

let prog_of_lines ~spec ~table lines =
  let indexed = List.mapi (fun i (e : Eof_rtos.Api.entry) -> (e.Eof_rtos.Api.name, i)) table.Eof_rtos.Api.entries in
  let parse_call line =
    match String.split_on_char ' ' (String.trim line) with
    | "call" :: name :: args ->
      (match (Ast.find_call spec name, List.assoc_opt name indexed) with
       | Some spec_call, Some api_index ->
         let rec parse_args acc = function
           | [] -> Ok (List.rev acc)
           | "" :: rest -> parse_args acc rest
           | token :: rest ->
             (match parse_arg token with
              | Ok a -> parse_args (a :: acc) rest
              | Error _ as e -> e)
         in
         (match parse_args [] args with
          | Ok args -> Ok { Prog.spec = spec_call; api_index; args }
          | Error e -> Error e)
       | _ -> Error (Printf.sprintf "unknown call %S" name))
    | _ -> Error (Printf.sprintf "expected 'call ...', got %S" line)
  in
  let rec go acc = function
    | [] ->
      let prog = List.rev acc in
      (match Prog.validate prog with Ok () -> Ok prog | Error e -> Error e)
    | line :: rest ->
      (match parse_call line with Ok c -> go (c :: acc) rest | Error _ as e -> e)
  in
  go [] lines

let save ~path progs =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "# eof corpus v1\n";
        List.iter (fun p -> output_string oc (prog_to_text p)) progs);
    Ok ()
  with Sys_error e -> Error e

let load ~path ~spec ~table =
  try
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let rec go acc =
            match input_line ic with
            | line -> go (line :: acc)
            | exception End_of_file -> List.rev acc
          in
          go [])
    in
    (* Split into prog..end blocks. *)
    let progs = ref [] in
    let skipped = ref 0 in
    let current = ref None in
    List.iter
      (fun line ->
        let trimmed = String.trim line in
        if trimmed = "" || String.length trimmed > 0 && trimmed.[0] = '#' then ()
        else if trimmed = "prog" then current := Some []
        else if trimmed = "end" then begin
          (match !current with
           | None -> incr skipped
           | Some lines ->
             (match prog_of_lines ~spec ~table (List.rev lines) with
              | Ok prog when prog <> [] -> progs := prog :: !progs
              | Ok _ | Error _ -> incr skipped));
          current := None
        end
        else
          match !current with
          | Some lines -> current := Some (trimmed :: lines)
          | None -> incr skipped)
      lines;
    Ok (List.rev !progs, !skipped)
  with Sys_error e -> Error e
