type verdict = Crash of string | No_crash

let remove_call prog victim =
  (* Compute the set of positions to drop: the victim plus transitive
     consumers of dropped results. *)
  let n = List.length prog in
  let arr = Array.of_list prog in
  let dropped = Array.make n false in
  dropped.(victim) <- true;
  for idx = victim + 1 to n - 1 do
    let depends_on_dropped =
      List.exists
        (function Prog.Res k when k >= 0 && k < n -> dropped.(k) | _ -> false)
        arr.(idx).Prog.args
    in
    if depends_on_dropped then dropped.(idx) <- true
  done;
  (* Renumber the survivors' references. *)
  let new_pos = Array.make n (-1) in
  let next = ref 0 in
  for idx = 0 to n - 1 do
    if not dropped.(idx) then begin
      new_pos.(idx) <- !next;
      incr next
    end
  done;
  Array.to_list arr
  |> List.mapi (fun idx call -> (idx, call))
  |> List.filter_map (fun (idx, (call : Prog.call)) ->
         if dropped.(idx) then None
         else
           Some
             {
               call with
               Prog.args =
                 List.map
                   (function
                     | Prog.Res k when k >= 0 && k < n -> Prog.Res new_pos.(k)
                     | arg -> arg)
                   call.Prog.args;
             })

let simplify_arg = function
  | Prog.Int v when not (Int64.equal v 0L) -> Some (Prog.Int 0L)
  | Prog.Str s when String.length s > 0 ->
    Some (Prog.Str (String.sub s 0 (String.length s / 2)))
  | Prog.Int _ | Prog.Str _ | Prog.Res _ -> None

let minimize ?(max_execs = 200) ~exec ~signature prog =
  let execs = ref 0 in
  let still_crashes candidate =
    if !execs >= max_execs then false
    else begin
      incr execs;
      match exec candidate with Crash s -> s = signature | No_crash -> false
    end
  in
  (* Phase 1: drop calls, scanning back to front until a fixpoint. *)
  let current = ref prog in
  let progress = ref true in
  while !progress && !execs < max_execs do
    progress := false;
    let idx = ref (List.length !current - 1) in
    while !idx >= 0 && !execs < max_execs do
      (* A successful removal shrinks [current]; clamp the scan. *)
      if !idx < List.length !current then begin
        let candidate = remove_call !current !idx in
        if candidate <> [] && List.length candidate < List.length !current
           && still_crashes candidate
        then begin
          current := candidate;
          progress := true
        end
      end;
      decr idx
    done
  done;
  (* Phase 2: simplify arguments in place. *)
  List.iteri
    (fun pos (call : Prog.call) ->
      List.iteri
        (fun ai arg ->
          match simplify_arg arg with
          | None -> ()
          | Some simpler ->
            if !execs < max_execs then begin
              let candidate =
                List.mapi
                  (fun p (c : Prog.call) ->
                    if p <> pos then c
                    else
                      {
                        c with
                        Prog.args =
                          List.mapi (fun j a -> if j = ai then simpler else a) c.Prog.args;
                      })
                  !current
              in
              if still_crashes candidate then current := candidate
            end)
        call.Prog.args)
    !current;
  (!current, !execs)
