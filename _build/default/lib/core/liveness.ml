open Eof_hw
open Eof_os
module Session = Eof_debug.Session

type verdict = Alive | First_observation | Connection_lost | Pc_stalled of int

type t = { mutable last_pc : int option }

let create () = { last_pc = None }

let reset t = t.last_pc <- None

let check t session =
  match Session.read_pc session with
  | Error Session.Timeout -> Connection_lost
  | Error _ -> Connection_lost
  | Ok pc ->
    (match t.last_pc with
     | None ->
       t.last_pc <- Some pc;
       First_observation
     | Some prev when prev = pc -> Pc_stalled pc
     | Some _ ->
       t.last_pc <- Some pc;
       Alive)

let ( let* ) r f =
  match r with Ok v -> f v | Error e -> Error (Session.error_to_string e)

let restore session ~build =
  let image = Osbuild.image build in
  let flash_base = (Board.profile (Osbuild.board build)).Board.flash_base in
  let rec reflash count = function
    | [] -> Ok count
    | (e : Partition.entry) :: rest ->
      (match List.assoc_opt e.Partition.name image.Image.blobs with
       | None -> Error (Printf.sprintf "image has no blob for partition %s" e.Partition.name)
       | Some blob ->
         let* () =
           Session.flash_erase session ~addr:(flash_base + e.Partition.offset)
             ~len:e.Partition.size
         in
         (* Program in bounded chunks, as a probe constrained by its
            packet size would. *)
         let chunk = 2048 in
         let rec program off =
           if off >= String.length blob then Ok ()
           else
             let len = min chunk (String.length blob - off) in
             let* () =
               Session.flash_write session
                 ~addr:(flash_base + e.Partition.offset + off)
                 (String.sub blob off len)
             in
             program (off + len)
         in
         (match program 0 with
          | Error _ as err -> err
          | Ok () ->
            let* () = Session.flash_done session in
            reflash (count + 1) rest))
  in
  match reflash 0 image.Image.table with
  | Error _ as e -> e
  | Ok count ->
    let* () = Session.reset_target session in
    Ok count

let reboot_only session =
  let* () = Session.reset_target session in
  Ok ()
