(** Host-side coverage accumulation. *)

type t

val create : edge_capacity:int -> t

val merge : t -> int list -> int
(** Fold a batch of edge indices in; returns how many were new. Edges
    outside the capacity are ignored (defensive against a corrupted
    coverage buffer). *)

val covered : t -> int
(** Distinct edges seen so far. *)

val snapshot : t -> Eof_util.Bitset.t
(** A copy of the current bitmap. *)
