open Eof_os

(** Liveness watchdogs and state restoration (the paper's Algorithm 1).

    Two host-side checks over the debug link, with no target
    instrumentation: a connection-timeout watchdog (a dead link means a
    failed boot or total unresponsiveness) and a PC-stall watchdog (a
    continue that does not move the program counter means the core
    cannot execute). Either verdict triggers {!restore}: reflash every
    partition from the golden image at the offsets recorded in the
    partition table, then reboot. *)

type verdict =
  | Alive
  | First_observation  (** LastPC was unset; now armed (Algorithm 1 lines 6-8) *)
  | Connection_lost
  | Pc_stalled of int

type t

val create : unit -> t

val reset : t -> unit
(** Forget LastPC (call when the target demonstrably made progress). *)

val check : t -> Eof_debug.Session.t -> verdict
(** One LivenessWatchDog() evaluation. *)

val restore :
  Eof_debug.Session.t -> build:Osbuild.t -> (int, string) result
(** StateRestoration(): reflash each partition and reboot; returns the
    number of partitions written. The post-reboot settling delay is
    charged to the link. *)

val reboot_only : Eof_debug.Session.t -> (unit, string) result
(** A plain reset, for degraded states with an intact image. *)
