type kind = Kernel_panic | Kernel_assertion | Hardware_fault | Hang | Boot_failure

type monitor = Log_monitor | Exception_monitor | Liveness_watchdog | Timeout_only

type t = {
  os : string;
  kind : kind;
  operation : string;
  scope : string;
  message : string;
  backtrace : string list;
  detected_by : monitor;
  program : string;
  iteration : int;
}

let kind_name = function
  | Kernel_panic -> "Kernel Panic"
  | Kernel_assertion -> "Kernel Assertion"
  | Hardware_fault -> "Hardware Fault"
  | Hang -> "Hang"
  | Boot_failure -> "Boot Failure"

let monitor_name = function
  | Log_monitor -> "log"
  | Exception_monitor -> "exception"
  | Liveness_watchdog -> "watchdog"
  | Timeout_only -> "timeout"

let dedup_key t = Printf.sprintf "%s/%s/%s" t.os (kind_name t.kind) t.operation

let summary t =
  let head =
    if String.length t.message <= 72 then t.message else String.sub t.message 0 72 ^ "..."
  in
  Printf.sprintf "[%s] %s in %s(): %s" t.os (kind_name t.kind) t.operation head
