let crash_to_text (c : Crash.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "EOF crash report\n================\n");
  Buffer.add_string buf (Printf.sprintf "target os   : %s\n" c.Crash.os);
  Buffer.add_string buf (Printf.sprintf "kind        : %s\n" (Crash.kind_name c.Crash.kind));
  Buffer.add_string buf (Printf.sprintf "operation   : %s()\n" c.Crash.operation);
  Buffer.add_string buf (Printf.sprintf "scope       : %s\n" c.Crash.scope);
  Buffer.add_string buf
    (Printf.sprintf "detected by : %s monitor\n" (Crash.monitor_name c.Crash.detected_by));
  Buffer.add_string buf (Printf.sprintf "iteration   : %d\n" c.Crash.iteration);
  Buffer.add_string buf (Printf.sprintf "\nmessage:\n  %s\n" c.Crash.message);
  if c.Crash.backtrace <> [] then begin
    Buffer.add_string buf "\nbacktrace:\n";
    List.iteri
      (fun i frame -> Buffer.add_string buf (Printf.sprintf "  Level %d: %s\n" (i + 1) frame))
      c.Crash.backtrace
  end;
  if c.Crash.program <> "" then
    Buffer.add_string buf (Printf.sprintf "\ntriggering program:\n%s\n" c.Crash.program);
  Buffer.contents buf

let sanitize name =
  String.map (fun c -> if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' then c else '_') name

let save_crashes ~dir crashes =
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let paths =
      List.mapi
        (fun i crash ->
          let path =
            Filename.concat dir
              (Printf.sprintf "crash-%02d-%s.txt" (i + 1) (sanitize crash.Crash.operation))
          in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (crash_to_text crash));
          path)
        crashes
    in
    Ok paths
  with Sys_error e -> Error e

let outcome_summary (o : Campaign.outcome) =
  String.concat "\n"
    [
      Printf.sprintf "target          : %s" o.Campaign.os;
      Printf.sprintf "payloads run    : %d (%d iterations)" o.Campaign.executed_programs
        o.Campaign.iterations_done;
      Printf.sprintf "branch coverage : %d distinct edges" o.Campaign.coverage;
      Printf.sprintf "corpus          : %d seeds" o.Campaign.corpus_size;
      Printf.sprintf "crashes         : %d distinct (%d events)"
        (List.length o.Campaign.crashes)
        o.Campaign.crash_events;
      Printf.sprintf "liveness        : %d resets, %d reflashes, %d stalls, %d link timeouts"
        o.Campaign.resets o.Campaign.reflashes o.Campaign.stalls o.Campaign.timeouts;
      Printf.sprintf "virtual time    : %.2f s" o.Campaign.virtual_s;
    ]
