open Eof_spec

(** Corpus persistence: a line-oriented text format for programs, so a
    campaign's seeds survive across runs and can be inspected, diffed and
    hand-edited.

    {v
    # eof corpus v1
    prog
      call k_msgq_create int=4 int=16
      call k_msgq_put res=0 str=7061796c6f6164
    end
    v}

    String arguments are hex-encoded (they are arbitrary bytes). Loading
    resolves call names against the current specification; programs
    whose calls no longer exist or no longer type-check are skipped, not
    fatal — specs evolve between runs. *)

val prog_to_text : Prog.t -> string

val prog_of_lines :
  spec:Ast.t -> table:Eof_rtos.Api.table -> string list -> (Prog.t, string) result
(** Parse the [call ...] lines of one program. *)

val save : path:string -> Prog.t list -> (unit, string) result

val load :
  path:string -> spec:Ast.t -> table:Eof_rtos.Api.table ->
  (Prog.t list * int, string) result
(** Returns the loaded programs and how many entries were skipped as
    stale/invalid. *)
