(** Crash records and deduplication. *)

type kind =
  | Kernel_panic
  | Kernel_assertion
  | Hardware_fault  (** raw bus/usage fault that bypassed the panic handler *)
  | Hang  (** PC stall caught by the liveness watchdog *)
  | Boot_failure

type monitor = Log_monitor | Exception_monitor | Liveness_watchdog | Timeout_only

type t = {
  os : string;
  kind : kind;
  operation : string;  (** the API call in progress (Table 2's column) *)
  scope : string;  (** subsystem, from the crash site's module block *)
  message : string;
  backtrace : string list;
  detected_by : monitor;
  program : string;  (** the triggering program, pretty-printed *)
  iteration : int;
}

val dedup_key : t -> string
(** Crashes with equal keys are the same bug: (kind, operation). *)

val kind_name : kind -> string

val monitor_name : monitor -> string

val summary : t -> string
(** One line: kind, operation, message head. *)
