type detection =
  | Panic_banner of { os : string; message : string }
  | Assertion_failure of { os : string; message : string }
  | Error_line of { os : string; message : string }
  | Backtrace_frame of string

(* "[<os>] KERNEL PANIC: <msg>" etc., as Klog emits them. *)
let re_panic = Re.compile (Re.Pcre.re {|^\[([^\]]+)\] KERNEL PANIC: (.*)$|})

let re_assert = Re.compile (Re.Pcre.re {|^\[([^\]]+)\] ASSERTION FAILED: (.*)$|})

let re_error = Re.compile (Re.Pcre.re {|^\[([^\]]+)\] ERROR: (.*)$|})

let re_frame = Re.compile (Re.Pcre.re {|^\s*Level \d+: (.*)$|})

let scan_line line =
  match Re.exec_opt re_panic line with
  | Some g -> Some (Panic_banner { os = Re.Group.get g 1; message = Re.Group.get g 2 })
  | None ->
    (match Re.exec_opt re_assert line with
     | Some g ->
       Some (Assertion_failure { os = Re.Group.get g 1; message = Re.Group.get g 2 })
     | None ->
       (match Re.exec_opt re_frame line with
        | Some g -> Some (Backtrace_frame (Re.Group.get g 1))
        | None ->
          (match Re.exec_opt re_error line with
           | Some g -> Some (Error_line { os = Re.Group.get g 1; message = Re.Group.get g 2 })
           | None -> None)))

let scan text =
  String.split_on_char '\n' text |> List.filter_map scan_line

let assert_operation message =
  match String.index_opt message ':' with
  | Some i when i > 0 -> Some (String.trim (String.sub message 0 i))
  | _ -> None

let collect_backtrace detections =
  List.filter_map (function Backtrace_frame f -> Some f | _ -> None) detections

let first_panic detections =
  List.find_map
    (function Panic_banner { os; message } -> Some (os, message) | _ -> None)
    detections

let first_assertion detections =
  List.find_map
    (function Assertion_failure { os; message } -> Some (os, message) | _ -> None)
    detections
