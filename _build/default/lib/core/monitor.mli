(** The log monitor: scan redirected UART output for crash-indicating
    patterns, per the paper's "output matching predefined patterns using
    regular expressions". *)

type detection =
  | Panic_banner of { os : string; message : string }
  | Assertion_failure of { os : string; message : string }
  | Error_line of { os : string; message : string }
  | Backtrace_frame of string  (** "path : function : line" *)

val scan : string -> detection list
(** All detections in a chunk of log text, in order. *)

val assert_operation : string -> string option
(** The function name an assertion message starts with
    (["rt_object_init: ..."] -> [Some "rt_object_init"]). *)

val collect_backtrace : detection list -> string list

val first_panic : detection list -> (string * string) option
(** (os, message) of the first panic banner, if any. *)

val first_assertion : detection list -> (string * string) option
