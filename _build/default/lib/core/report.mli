(** Human-readable crash reports and campaign summaries. *)

val crash_to_text : Crash.t -> string
(** Full report: identity header, detection channel, message, the
    captured backtrace, and the triggering program. *)

val save_crashes : dir:string -> Crash.t list -> (string list, string) result
(** Write one report per crash into [dir] (created if missing) as
    [crash-NN-<operation>.txt]; returns the paths written. *)

val outcome_summary : Campaign.outcome -> string
(** The multi-line summary the CLI prints after a campaign. *)
