lib/core/crash.ml: Printf String
