lib/core/feedback.mli: Eof_util
