lib/core/minimize.mli: Prog
