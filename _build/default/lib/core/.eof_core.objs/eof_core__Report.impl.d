lib/core/report.ml: Buffer Campaign Crash Filename Fun List Printf String Sys
