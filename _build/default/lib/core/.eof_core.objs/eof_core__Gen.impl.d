lib/core/gen.ml: Array Ast Bytes Char Eof_spec Eof_util Hashtbl Int64 List Prog Seq String Synth
