lib/core/gen.mli: Ast Eof_rtos Eof_spec Eof_util Prog
