lib/core/feedback.ml: Eof_util List
