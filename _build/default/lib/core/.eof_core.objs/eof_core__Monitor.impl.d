lib/core/monitor.ml: List Re String
