lib/core/prog.mli: Ast Eof_agent Eof_spec
