lib/core/corpus.ml: Eof_util Hashtbl List Prog
