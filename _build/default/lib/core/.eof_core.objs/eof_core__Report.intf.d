lib/core/report.mli: Campaign Crash
