lib/core/corpus_io.mli: Ast Eof_rtos Eof_spec Prog
