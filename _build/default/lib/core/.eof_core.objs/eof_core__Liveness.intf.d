lib/core/liveness.mli: Eof_debug Eof_os Osbuild
