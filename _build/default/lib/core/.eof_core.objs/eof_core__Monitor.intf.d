lib/core/monitor.mli:
