lib/core/prog.ml: Array Ast Eof_agent Eof_spec Hashtbl Int64 List Printf String
