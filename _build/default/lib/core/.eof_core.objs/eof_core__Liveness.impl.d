lib/core/liveness.ml: Board Eof_debug Eof_hw Eof_os Image List Osbuild Partition Printf String
