lib/core/crash.mli:
