lib/core/corpus_io.ml: Ast Buffer Eof_rtos Eof_spec Eof_util Fun Int64 List Printf Prog String
