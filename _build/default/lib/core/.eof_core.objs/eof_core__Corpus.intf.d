lib/core/corpus.mli: Eof_util Prog
