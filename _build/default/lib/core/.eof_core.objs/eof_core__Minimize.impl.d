lib/core/minimize.ml: Array Int64 List Prog String
