lib/core/campaign.mli: Crash Eof_agent Eof_os Eof_spec Eof_util Osbuild Prog
