type t = { bitmap : Eof_util.Bitset.t }

let create ~edge_capacity = { bitmap = Eof_util.Bitset.create (max 1 edge_capacity) }

let merge t edges =
  List.fold_left
    (fun acc e ->
      if e >= 0 && e < Eof_util.Bitset.capacity t.bitmap then
        if Eof_util.Bitset.add t.bitmap e then acc + 1 else acc
      else acc)
    0 edges

let covered t = Eof_util.Bitset.count t.bitmap

let snapshot t = Eof_util.Bitset.copy t.bitmap
