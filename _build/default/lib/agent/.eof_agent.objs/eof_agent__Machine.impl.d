lib/agent/machine.ml: Agent Board Clock Eof_debug Eof_exec Eof_hw Eof_os Osbuild
