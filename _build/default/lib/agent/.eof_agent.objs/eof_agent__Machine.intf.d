lib/agent/machine.mli: Eof_debug Eof_os Osbuild
