lib/agent/agent.ml: Api Arch Array Board Eof_exec Eof_hw Eof_os Eof_rtos Int32 Int64 Kerr List Memory Osbuild Target Wire
