lib/agent/wire.mli: Arch Eof_hw Format Memory
