lib/agent/agent.mli: Eof_os Osbuild
