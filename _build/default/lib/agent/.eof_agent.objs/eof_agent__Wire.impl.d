lib/agent/wire.ml: Arch Buffer Bytes Char Eof_hw Format Int32 Int64 List Memory Printf String
