open Eof_hw
open Eof_os

type t = {
  build : Osbuild.t;
  engine : Eof_exec.Engine.t;
  server : Eof_debug.Openocd.t;
  transport : Eof_debug.Transport.t;
  session : Eof_debug.Session.t;
}

let create ?(continue_quantum = 200_000) ?transport build =
  let board = Osbuild.board build in
  let syms = Osbuild.syms build in
  let engine =
    Eof_exec.Engine.create ~board ~fault_vector:syms.Osbuild.sym_handle_exception
      ~entry:(Agent.entry build)
  in
  let server = Eof_debug.Openocd.create ~continue_quantum ~board ~engine () in
  let transport =
    match transport with Some t -> t | None -> Eof_debug.Transport.create ()
  in
  match Eof_debug.Session.connect ~transport ~server with
  | Ok session -> Ok { build; engine; server; transport; session }
  | Error e -> Error (Eof_debug.Session.error_to_string e)

let build t = t.build

let session t = t.session

let transport t = t.transport

let server t = t.server

let virtual_elapsed_s t =
  let board = Osbuild.board t.build in
  Clock.now_s (Board.clock board) +. (Eof_debug.Transport.elapsed_us t.transport /. 1e6)
