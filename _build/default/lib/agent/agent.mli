open Eof_os

(** The cross-platform execution agent (target side).

    The agent is the small program EOF embeds in every OS image. After
    the boot check it loops: pause at [executor_main] (where the host
    writes the next test case into the mailbox), deserialize at
    [read_prog], dispatch the calls at [execute_one] — resolving
    resource arguments against the local results array and pumping the
    kernel tick between calls — write a result summary, and pause at
    [loop_back] (where the host drains coverage and UART). It touches
    nothing but integers and the mailbox bytes, and is reused unchanged
    by every personality. *)

val entry : Osbuild.t -> unit -> unit
(** The target's reset handler: boot-check then the agent loop. If the
    bootloader integrity check fails, spins at the boot symbol forever —
    the PC-stall signature the liveness watchdog recognises as a
    corrupted image. *)

val results_base : Osbuild.t -> int
(** Where the agent writes its per-program result summary. *)

val max_program_bytes : Osbuild.t -> int
(** Mailbox space available for an encoded program. *)

val progress_addr : Osbuild.t -> int
(** RAM word the agent updates with the index of the call currently
    executing (0xFFFFFFFF between programs). The host reads it to
    attribute crashes to the in-flight API call. *)
