open Eof_hw
open Eof_exec
open Eof_rtos
open Eof_os

let results_base build = Osbuild.mailbox_base build + (Osbuild.mailbox_size build / 2)

let max_program_bytes build = (Osbuild.mailbox_size build / 2) - 8

let progress_addr build = Osbuild.mailbox_base build + Osbuild.mailbox_size build - 4

let idle_progress = 0xFFFFFFFFl

let resolve_arg results = function
  | Wire.W_int v -> Api.V_int v
  | Wire.W_str s -> Api.V_str s
  | Wire.W_res k ->
    (* A failed producer leaves handle 0, which no registry ever hands
       out, so consumers fail with ENOENT rather than crashing the
       agent. *)
    let handle = if k >= 0 && k < Array.length results then results.(k) else 0 in
    Api.V_res handle

let execute_program build (inst : Osbuild.instance) program =
  let syms = Osbuild.syms build in
  let ram = Board.ram (Osbuild.board build) in
  let entries = Array.of_list inst.Osbuild.table.Api.entries in
  let n = List.length program in
  let handles = Array.make n 0 in
  let statuses = Array.make n 0l in
  List.iteri
    (fun i (call : Wire.call) ->
      Memory.write_u32 ram (progress_addr build) (Int32.of_int i);
      Target.site syms.Osbuild.sym_call;
      Target.cycles 20;
      let status =
        if call.Wire.api_index >= Array.length entries then Kerr.einval
        else begin
          let entry = entries.(call.Wire.api_index) in
          let values = List.map (resolve_arg handles) call.Wire.args in
          let outcome = entry.Api.handler values in
          (match outcome.Api.created with
           | Some (_kind, handle) -> handles.(i) <- handle
           | None -> ());
          outcome.Api.status
        end
      in
      statuses.(i) <- Int64.to_int32 status;
      inst.Osbuild.tick ())
    program;
  Memory.write_u32 ram (progress_addr build) idle_progress;
  { Wire.Results.executed = n; statuses = Array.to_list statuses }

let entry build () =
  let board = Osbuild.board build in
  let syms = Osbuild.syms build in
  let endianness = (Board.profile board).Board.arch.Arch.endianness in
  let ram = Board.ram board in
  Target.site syms.Osbuild.sym_boot;
  if not (Board.boot_ok board) then begin
    (* Image integrity check failed: a real bootloader refuses to jump
       to a corrupted kernel. The PC pins at the boot symbol. *)
    Target.uart_tx "bootloader: image checksum mismatch, refusing to boot\n";
    let rec spin () =
      Target.site syms.Osbuild.sym_boot;
      Target.cycles 50;
      spin ()
    in
    spin ()
  end
  else begin
    let inst = Osbuild.fresh_instance build in
    let mailbox = Osbuild.mailbox_base build in
    let rec loop () =
      Target.site syms.Osbuild.sym_executor_main;
      Target.site syms.Osbuild.sym_read_prog;
      (match Wire.decode_from_ram ~mem:ram ~endianness ~base:mailbox with
       | Error _ ->
         (* Nothing (or garbage) in the mailbox: idle one tick. *)
         inst.Osbuild.tick ()
       | Ok program ->
         (* Consume the mailbox so a bare continue does not re-run the
            same program. *)
         Memory.write_u32 ram mailbox 0l;
         Target.site syms.Osbuild.sym_execute_one;
         let results = execute_program build inst program in
         Wire.Results.write ~mem:ram ~endianness ~base:(results_base build) results;
         Target.site syms.Osbuild.sym_loop_back);
      loop ()
    in
    loop ()
  end
