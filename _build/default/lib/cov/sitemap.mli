(** Instrumentation-site address allocation.

    A site map is built once per OS image ("at compile time"): each
    kernel/app module claims a block of sites, and every site gets a
    4-byte-aligned address in the flash text section. The host uses the
    same map to translate site addresses in coverage records back to
    dense edge indices for its bitmap, and to resolve the well-known
    symbols (agent binding points, panic handlers) it sets breakpoints
    on. *)

type t

type block = { name : string; base : int; count : int }

val create : text_base:int -> t
(** [text_base] is where the text section starts (usually just past the
    bootloader partition in flash). *)

val alloc : t -> name:string -> count:int -> block
(** Claim [count] consecutive sites for module [name].
    @raise Invalid_argument on a duplicate name or non-positive count. *)

val site_addr : block -> int -> int
(** [site_addr block i] is the flash address of the block's [i]-th site.
    @raise Invalid_argument if [i] is out of the block's range. *)

val site_count : t -> int
(** Total sites allocated so far. *)

val index_of_addr : t -> int -> int option
(** Dense site index of a site address ([None] if the address is not an
    allocated site). *)

val addr_of_index : t -> int -> int option

val block_of_addr : t -> int -> block option
(** Which module owns this site (for crash-report symbolization). *)

val blocks : t -> block list
(** Allocation order. *)

val symbol_of_addr : t -> int -> string
(** ["module+0xoff"]-style label, or a raw hex address if unknown. *)
