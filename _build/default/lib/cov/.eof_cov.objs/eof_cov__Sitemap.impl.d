lib/cov/sitemap.ml: List Printf
