lib/cov/sitemap.mli:
