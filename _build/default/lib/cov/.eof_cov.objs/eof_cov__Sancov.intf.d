lib/cov/sancov.mli: Eof_hw Sitemap
