lib/cov/sancov.ml: Arch Array Bytes Eof_exec Eof_hw Int32 Int64 List Memory Sitemap String
