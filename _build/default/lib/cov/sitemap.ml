type block = { name : string; base : int; count : int }

type t = { text_base : int; mutable blocks_rev : block list; mutable next_index : int }

let create ~text_base = { text_base; blocks_rev = []; next_index = 0 }

let alloc t ~name ~count =
  if count <= 0 then invalid_arg "Sitemap.alloc: count must be positive";
  if List.exists (fun b -> b.name = name) t.blocks_rev then
    invalid_arg (Printf.sprintf "Sitemap.alloc: duplicate block %s" name);
  let block = { name; base = t.text_base + (4 * t.next_index); count } in
  t.blocks_rev <- block :: t.blocks_rev;
  t.next_index <- t.next_index + count;
  block

let site_addr block i =
  if i < 0 || i >= block.count then
    invalid_arg
      (Printf.sprintf "Sitemap.site_addr: index %d out of block %s (count %d)" i block.name
         block.count);
  block.base + (4 * i)

let site_count t = t.next_index

let index_of_addr t addr =
  let off = addr - t.text_base in
  if off < 0 || off mod 4 <> 0 then None
  else
    let idx = off / 4 in
    if idx < t.next_index then Some idx else None

let addr_of_index t idx =
  if idx < 0 || idx >= t.next_index then None else Some (t.text_base + (4 * idx))

let block_of_addr t addr =
  List.find_opt (fun b -> addr >= b.base && addr < b.base + (4 * b.count)) t.blocks_rev

let blocks t = List.rev t.blocks_rev

let symbol_of_addr t addr =
  match block_of_addr t addr with
  | Some b -> Printf.sprintf "%s+0x%x" b.name (addr - b.base)
  | None -> Printf.sprintf "0x%08x" addr
