(** HTTP/1.1 request parser and a small routed server — the
    [http_server] component of the application-level fuzzing experiment
    (Table 4 / Figure 8).

    Deep handler code only runs after a structurally valid request line
    and headers, which is why API-aware generation beats raw byte buffers
    here by roughly 2x in the paper. *)

type meth = GET | POST | PUT | DELETE | HEAD | OPTIONS

type request = {
  meth : meth;
  target : string;
  version : string;
  headers : (string * string) list;  (** lowercased names *)
  body : string;
}

type response = { status : int; reason : string; headers : (string * string) list; body : string }

val site_count : int

val parse_request : instr:Eof_rtos.Instr.t -> string -> (request, string) result

val render_response : response -> string

val meth_to_string : meth -> string

val header : request -> string -> string option

(** The server: fixed routes over the parser, JSON-backed where the
    paper's demo app is ([/api/echo] parses its body as JSON). *)
module Server : sig
  type t

  val create : instr:Eof_rtos.Instr.t -> json_instr:Eof_rtos.Instr.t -> t

  val handle : t -> string -> response
  (** Parse raw request bytes and dispatch; malformed input yields 400,
      unknown routes 404. *)

  val requests_served : t -> int
end
