lib/apps/serial.ml: Buffer Eof_exec Eof_rtos Kobj Panic Printf String
