lib/apps/sal.ml: Eof_rtos Kerr Kobj Printf String
