lib/apps/serial.mli: Eof_rtos
