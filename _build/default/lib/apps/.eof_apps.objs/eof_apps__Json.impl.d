lib/apps/json.ml: Buffer Char Eof_rtos Eof_util Float List Printf String
