lib/apps/sal.mli: Eof_rtos
