lib/apps/http.ml: Buffer Eof_rtos Hashtbl Json List Printf String
