lib/apps/json.mli: Eof_rtos
