lib/apps/http.mli: Eof_rtos
