open Eof_rtos
module Instr = Eof_rtos.Instr

type sock = {
  domain : int;
  sock_type : int;
  protocol : int;
  mutable bound_port : int option;
  mutable listening : bool;
  mutable tx_bytes : int;
  mutable closed : bool;
}

type Kobj.payload += Socket of sock

let af_inet = 2

let af_inet6 = 10

let af_can = 29

let sock_stream = 1

let sock_dgram = 2

let sock_raw = 3

let s_socket_entry = 0

let s_socket_domain = 1

let s_socket_type = 2

let s_socket_proto = 3

let s_bind = 4

let s_bind_port = 5

let s_listen = 6

let s_send = 7

let s_send_len = 8

let s_close = 9

let s_log = 10

let site_count = 12

type t = {
  reg : Kobj.t;
  instr : Instr.t;
  console : string -> unit;
  mutable sockets_created : int;
}

let create ~reg ~instr ~console = { reg; instr; console; sockets_created = 0 }

let socket t ~domain ~sock_type ~protocol =
  Instr.edge t.instr s_socket_entry;
  (* sal_socket reports the attempt over the kernel console before any
     validation — the exact logging call of the paper's Figure 6 chain,
     which dies on a stale serial device (bug #12). *)
  Instr.edge t.instr s_log;
  t.console
    (Printf.sprintf "sal_socket: creating socket (domain=%d type=%d proto=%d)\n" domain
       sock_type protocol);
  Instr.cmp_i t.instr s_socket_domain domain af_inet;
  if domain <> af_inet && domain <> af_inet6 && domain <> af_can then Error Kerr.einval
  else begin
    Instr.cmp_i t.instr s_socket_type sock_type sock_stream;
    if sock_type <> sock_stream && sock_type <> sock_dgram && sock_type <> sock_raw then
      Error Kerr.einval
    else begin
      Instr.cmp_i t.instr s_socket_proto protocol 0;
      if protocol < 0 || protocol > 255 then Error Kerr.einval
      else begin
        let sock =
          {
            domain;
            sock_type;
            protocol;
            bound_port = None;
            listening = false;
            tx_bytes = 0;
            closed = false;
          }
        in
        let obj = Kobj.register t.reg ~kind:"socket" ~name:"sock" (Socket sock) in
        t.sockets_created <- t.sockets_created + 1;
        Ok obj
      end
    end
  end

let bind t sock ~port =
  Instr.edge t.instr s_bind;
  if sock.closed then Error Kerr.einval
  else if port < 0 || port > 65535 then Error Kerr.einval
  else begin
    Instr.cmp_i t.instr s_bind_port port 1024;
    sock.bound_port <- Some port;
    Ok ()
  end

let listen t sock ~backlog =
  Instr.edge t.instr s_listen;
  if sock.closed || sock.sock_type <> sock_stream || sock.bound_port = None then
    Error Kerr.einval
  else if backlog < 0 || backlog > 128 then Error Kerr.einval
  else begin
    sock.listening <- true;
    Ok ()
  end

let sendto t sock data =
  Instr.edge t.instr s_send;
  if sock.closed then Error Kerr.einval
  else if String.length data = 0 then Error Kerr.einval
  else if String.length data > 1472 then Error Kerr.enospc
  else begin
    Instr.cmp_i t.instr s_send_len (String.length data) 0;
    sock.tx_bytes <- sock.tx_bytes + String.length data;
    Ok (String.length data)
  end

let close t sock =
  Instr.edge t.instr s_close;
  if sock.closed then Error Kerr.einval
  else begin
    sock.closed <- true;
    Ok ()
  end

let sockets_created t = t.sockets_created

let of_obj (obj : Kobj.obj) = match obj.Kobj.payload with Socket s -> Some s | _ -> None
