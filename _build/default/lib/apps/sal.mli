(** Socket abstraction layer (SAL), the networking entry point of the
    RT-Thread-style personalities.

    Successful socket creation logs through the kernel console — the
    exact call path of the paper's case study (Figure 6): [socket()] ->
    [sal_socket()] -> [rt_kprintf()] -> serial write. The console sink is
    injected by the personality so that a stale serial device turns a
    perfectly valid [socket()] call into bug #12. *)

type sock = private {
  domain : int;
  sock_type : int;
  protocol : int;
  mutable bound_port : int option;
  mutable listening : bool;
  mutable tx_bytes : int;
  mutable closed : bool;
}

type Eof_rtos.Kobj.payload += Socket of sock

val af_inet : int
val af_inet6 : int
val af_can : int
val sock_stream : int
val sock_dgram : int
val sock_raw : int

val site_count : int

type t

val create :
  reg:Eof_rtos.Kobj.t -> instr:Eof_rtos.Instr.t -> console:(string -> unit) -> t

val socket :
  t -> domain:int -> sock_type:int -> protocol:int -> (Eof_rtos.Kobj.obj, int64) result
(** Validates the triple, registers the socket, logs creation via the
    console sink. *)

val bind : t -> sock -> port:int -> (unit, int64) result

val listen : t -> sock -> backlog:int -> (unit, int64) result
(** Only stream sockets that are bound may listen. *)

val sendto : t -> sock -> string -> (int, int64) result
(** Datagram/stream payload transmit; [Kerr.einval] on closed sockets or
    empty payloads, [Kerr.enospc] over 1472 bytes (MTU). *)

val close : t -> sock -> (unit, int64) result

val sockets_created : t -> int

val of_obj : Eof_rtos.Kobj.obj -> sock option
