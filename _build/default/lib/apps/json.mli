(** JSON component (parser and encoder), as shipped in the Zephyr/ESP-IDF
    middleware the paper fuzzes at application level.

    Both directions are instrumented branch-by-branch through an
    {!Eof_rtos.Instr.t} handle, so coverage-guided fuzzers see parser
    state distinctions. The encoder enforces a nesting-depth limit;
    exceeding it returns [`Too_deep], which the Zephyr personality turns
    into the [json_obj_encode] kernel panic (bug #3). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val site_count : int
(** Sites an instrumentation block for this module must provide. *)

val parse : instr:Eof_rtos.Instr.t -> string -> (t, string) result

val encode : instr:Eof_rtos.Instr.t -> ?max_depth:int -> t -> (string, [ `Too_deep ]) result
(** Default [max_depth] is 16. *)

val encode_exn : t -> string
(** Uninstrumented, unlimited-depth encoder for tests and host tools. *)

val equal : t -> t -> bool
(** Structural equality with float tolerance for round-trip tests. *)

val depth : t -> int
