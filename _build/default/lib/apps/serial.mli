(** Serial device driver layer.

    Mirrors RT-Thread's device framework closely enough to host the
    paper's §5.3.1 case study: the console serial device can be
    unregistered (or half-initialized) by a fuzzed API call while kernel
    logging still holds the stale pointer; the next [rt_serial_write]
    passes its non-NULL assert and then dereferences corrupted ops,
    raising a bus fault. *)

type device = private {
  dev_name : string;
  mutable registered : bool;
  mutable open_flag : int;
  mutable tx_bytes : int;
}

type Eof_rtos.Kobj.payload += Serial_dev of device

val flag_stream : int
(** RT_DEVICE_FLAG_STREAM: LF -> CRLF translation on write. *)

val create : reg:Eof_rtos.Kobj.t -> name:string -> open_flag:int -> Eof_rtos.Kobj.obj

val unregister : device -> unit
(** Mark unregistered WITHOUT invalidating outstanding references. *)

val reregister : device -> unit

val write :
  panic:Eof_rtos.Panic.ctx -> instr:Eof_rtos.Instr.t -> device -> string ->
  (int, int64) result
(** Poll-transmit to the UART. On a stale (unregistered) device the
    non-NULL assert passes and the ops dereference faults — the paper's
    bug #12 — with the case-study backtrace. *)

val site_count : int

val of_obj : Eof_rtos.Kobj.obj -> device option
