module Instr = Eof_rtos.Instr

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Site assignments (local indices within this module's block). *)
let s_parse_entry = 0

let s_dispatch = 1

let s_lit_null = 2

let s_lit_true = 3

let s_lit_false = 4

let s_num_sign = 5

let s_num_digits = 6

let s_num_frac = 7

let s_num_exp = 8

let s_str_start = 9

let s_str_escape = 10

let s_str_unicode = 11

let s_str_len = 12

let s_arr_start = 13

let s_arr_count = 14

let s_arr_sep = 15

let s_obj_start = 16

let s_obj_key = 17

let s_obj_count = 18

let s_ws = 19

let s_err = 20

let s_trailing = 21

let s_parse_depth = 22

let s_enc_entry = 24

let s_enc_null = 25

let s_enc_bool = 26

let s_enc_num = 27

let s_enc_str = 28

let s_enc_str_escape = 29

let s_enc_arr = 30

let s_enc_obj = 31

let s_enc_depth = 32

let site_count = 36

exception Parse_error of string

type parser_state = { instr : Instr.t; input : string; mutable pos : int }

let fail p msg =
  Instr.cmp_i p.instr s_err p.pos (String.length p.input);
  raise (Parse_error (Printf.sprintf "at offset %d: %s" p.pos msg))

let peek p = if p.pos < String.length p.input then Some p.input.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let skip_ws p =
  let start = p.pos in
  let rec go () =
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance p;
      go ()
    | _ -> ()
  in
  go ();
  if p.pos > start then Instr.edge p.instr s_ws

let expect p c =
  match peek p with
  | Some x when x = c -> advance p
  | Some x -> fail p (Printf.sprintf "expected %c, found %c" c x)
  | None -> fail p (Printf.sprintf "expected %c, found end of input" c)

let literal p word value =
  let n = String.length word in
  if p.pos + n <= String.length p.input && String.sub p.input p.pos n = word then begin
    p.pos <- p.pos + n;
    value
  end
  else fail p (Printf.sprintf "bad literal (expected %s)" word)

let parse_digits p =
  let start = p.pos in
  let rec go () =
    match peek p with
    | Some ('0' .. '9') ->
      advance p;
      go ()
    | _ -> ()
  in
  go ();
  if p.pos = start then fail p "expected digits";
  p.pos - start

let parse_number p =
  let start = p.pos in
  (match peek p with
   | Some '-' ->
     Instr.cmp_i p.instr s_num_sign 1 0;
     advance p
   | _ -> Instr.cmp_i p.instr s_num_sign 0 0);
  let int_digits = parse_digits p in
  Instr.cmp_i p.instr s_num_digits int_digits 0;
  (match peek p with
   | Some '.' ->
     advance p;
     let frac = parse_digits p in
     Instr.cmp_i p.instr s_num_frac frac 0
   | _ -> ());
  (match peek p with
   | Some ('e' | 'E') ->
     advance p;
     (match peek p with
      | Some ('+' | '-') -> advance p
      | _ -> ());
     let e = parse_digits p in
     Instr.cmp_i p.instr s_num_exp e 0
   | _ -> ());
  let text = String.sub p.input start (p.pos - start) in
  match float_of_string_opt text with
  | Some f -> Num f
  | None -> fail p (Printf.sprintf "unparseable number %S" text)

let hex_digit p =
  match peek p with
  | Some c ->
    (match Eof_util.Hex.to_nibble c with
     | Some v ->
       advance p;
       v
     | None -> fail p "bad \\u escape digit")
  | None -> fail p "truncated \\u escape"

let utf8_of_code buf code =
  (* Standard UTF-8 encoding of a BMP code point. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string p =
  Instr.edge p.instr s_str_start;
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' ->
      advance p;
      Buffer.contents buf
    | Some '\\' ->
      advance p;
      (match peek p with
       | None -> fail p "truncated escape"
       | Some c ->
         Instr.cmp_i p.instr s_str_escape (Char.code c) 0;
         advance p;
         (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            Instr.edge p.instr s_str_unicode;
            let h1 = hex_digit p in
            let h2 = hex_digit p in
            let h3 = hex_digit p in
            let h4 = hex_digit p in
            utf8_of_code buf ((h1 lsl 12) lor (h2 lsl 8) lor (h3 lsl 4) lor h4)
          | c -> fail p (Printf.sprintf "bad escape \\%c" c));
         go ())
    | Some c when Char.code c < 0x20 -> fail p "control character in string"
    | Some c ->
      Buffer.add_char buf c;
      advance p;
      go ()
  in
  let s = go () in
  Instr.cmp_i p.instr s_str_len (String.length s) 0;
  s

let rec parse_value ?(depth = 0) p =
  Instr.cmp_i p.instr s_parse_depth depth 0;
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some c ->
    (* A real parser dispatches on a handful of character classes, not
       on 256 distinct bytes. *)
    let char_class =
      match c with
      | 'n' -> 1
      | 't' -> 2
      | 'f' -> 3
      | '-' | '0' .. '9' -> 4
      | '"' -> 5
      | '[' -> 6
      | '{' -> 7
      | _ -> 8
    in
    Instr.cmp_i p.instr s_dispatch char_class 0;
    (match c with
     | 'n' ->
       Instr.edge p.instr s_lit_null;
       literal p "null" Null
     | 't' ->
       Instr.edge p.instr s_lit_true;
       literal p "true" (Bool true)
     | 'f' ->
       Instr.edge p.instr s_lit_false;
       literal p "false" (Bool false)
     | '-' | '0' .. '9' -> parse_number p
     | '"' -> Str (parse_string p)
     | '[' -> parse_array ~depth p
     | '{' -> parse_object ~depth p
     | c -> fail p (Printf.sprintf "unexpected character %c" c))

and parse_array ~depth p =
  Instr.edge p.instr s_arr_start;
  expect p '[';
  skip_ws p;
  match peek p with
  | Some ']' ->
    advance p;
    Instr.cmp_i p.instr s_arr_count 0 0;
    Arr []
  | _ ->
    let rec go acc =
      let v = parse_value ~depth:(depth + 1) p in
      skip_ws p;
      match peek p with
      | Some ',' ->
        Instr.edge p.instr s_arr_sep;
        advance p;
        go (v :: acc)
      | Some ']' ->
        advance p;
        List.rev (v :: acc)
      | _ -> fail p "expected , or ] in array"
    in
    let items = go [] in
    Instr.cmp_i p.instr s_arr_count (List.length items) 0;
    Arr items

and parse_object ~depth p =
  Instr.edge p.instr s_obj_start;
  expect p '{';
  skip_ws p;
  match peek p with
  | Some '}' ->
    advance p;
    Instr.cmp_i p.instr s_obj_count 0 0;
    Obj []
  | _ ->
    let rec go acc =
      skip_ws p;
      Instr.edge p.instr s_obj_key;
      let key = parse_string p in
      skip_ws p;
      expect p ':';
      let v = parse_value ~depth:(depth + 1) p in
      skip_ws p;
      match peek p with
      | Some ',' ->
        advance p;
        go ((key, v) :: acc)
      | Some '}' ->
        advance p;
        List.rev ((key, v) :: acc)
      | _ -> fail p "expected , or } in object"
    in
    let members = go [] in
    Instr.cmp_i p.instr s_obj_count (List.length members) 0;
    Obj members

let parse ~instr input =
  let p = { instr; input; pos = 0 } in
  Instr.cmp_i instr s_parse_entry (String.length input) 0;
  match parse_value p with
  | v ->
    skip_ws p;
    if p.pos <> String.length input then begin
      Instr.edge instr s_trailing;
      Error (Printf.sprintf "trailing garbage at offset %d" p.pos)
    end
    else Ok v
  | exception Parse_error msg -> Error msg

let escape_string_into instr buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' ->
        Instr.cmp_i instr s_enc_str_escape (Char.code c) 0;
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' ->
        Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Instr.cmp_i instr s_enc_str_escape (Char.code c) 0;
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let format_num f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

exception Too_deep

let encode ~instr ?(max_depth = 16) v =
  let buf = Buffer.create 64 in
  let rec go depth v =
    Instr.cmp_i instr s_enc_depth depth max_depth;
    if depth > max_depth then raise Too_deep;
    match v with
    | Null ->
      Instr.edge instr s_enc_null;
      Buffer.add_string buf "null"
    | Bool b ->
      Instr.cmp_i instr s_enc_bool (if b then 1 else 0) 0;
      Buffer.add_string buf (if b then "true" else "false")
    | Num f ->
      Instr.edge instr s_enc_num;
      Buffer.add_string buf (format_num f)
    | Str s ->
      Instr.edge instr s_enc_str;
      escape_string_into instr buf s
    | Arr items ->
      Instr.cmp_i instr s_enc_arr (List.length items) 0;
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go (depth + 1) item)
        items;
      Buffer.add_char buf ']'
    | Obj members ->
      Instr.cmp_i instr s_enc_obj (List.length members) 0;
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string_into instr buf k;
          Buffer.add_char buf ':';
          go (depth + 1) item)
        members;
      Buffer.add_char buf '}'
  in
  Instr.edge instr s_enc_entry;
  match go 0 v with () -> Ok (Buffer.contents buf) | exception Too_deep -> Error `Too_deep

let encode_exn v =
  match encode ~instr:(Instr.null ~count:site_count) ~max_depth:max_int v with
  | Ok s -> s
  | Error `Too_deep -> assert false

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Num x, Num y -> Float.abs (x -. y) <= 1e-9 *. Float.max 1.0 (Float.abs x)
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) x y
  | (Null | Bool _ | Num _ | Str _ | Arr _ | Obj _), _ -> false

let rec depth = function
  | Null | Bool _ | Num _ | Str _ -> 0
  | Arr items -> 1 + List.fold_left (fun acc v -> max acc (depth v)) 0 items
  | Obj members -> 1 + List.fold_left (fun acc (_, v) -> max acc (depth v)) 0 members
