open Eof_rtos
module Instr = Eof_rtos.Instr

type device = {
  dev_name : string;
  mutable registered : bool;
  mutable open_flag : int;
  mutable tx_bytes : int;
}

type Kobj.payload += Serial_dev of device

let flag_stream = 0x040

let s_write_entry = 0

let s_write_len = 1

let s_write_stream = 2

let s_write_stale = 3

let site_count = 8

let create ~reg ~name ~open_flag =
  Kobj.register reg ~kind:"serial" ~name
    (Serial_dev { dev_name = name; registered = true; open_flag; tx_bytes = 0 })

let unregister device = device.registered <- false

let reregister device = device.registered <- true

let case_study_backtrace =
  [
    "components/drivers/serial/serial.c : rt_serial_write : 917";
    "components/drivers/core/device.c : rt_device_write : 396";
    "src/kservice.c : _kputs : 298";
    "src/kservice.c : rt_kprintf : 349";
  ]

let write ~panic ~instr device data =
  Instr.edge instr s_write_entry;
  (* RT_ASSERT(serial != RT_NULL) — the pointer is non-NULL, so the
     assert passes even when the device carcass is stale. *)
  Panic.kassert panic true "serial != RT_NULL";
  if not device.registered then begin
    Instr.edge instr s_write_stale;
    Panic.panic panic ~backtrace:case_study_backtrace
      (Printf.sprintf "bus fault: stale serial device %s ops dereference in _serial_poll_tx"
         device.dev_name)
  end;
  Instr.cmp_i instr s_write_len (String.length data) 0;
  let out =
    if device.open_flag land flag_stream <> 0 then begin
      Instr.edge instr s_write_stream;
      (* Stream mode: translate LF to CRLF, as _serial_poll_tx does. *)
      let buf = Buffer.create (String.length data + 8) in
      String.iter
        (fun c ->
          if c = '\n' then Buffer.add_string buf "\r\n" else Buffer.add_char buf c)
        data;
      Buffer.contents buf
    end
    else data
  in
  Eof_exec.Target.uart_tx out;
  device.tx_bytes <- device.tx_bytes + String.length out;
  Ok (String.length data)

let of_obj (obj : Kobj.obj) =
  match obj.Kobj.payload with Serial_dev d -> Some d | _ -> None
