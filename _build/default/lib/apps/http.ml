module Instr = Eof_rtos.Instr

type meth = GET | POST | PUT | DELETE | HEAD | OPTIONS

type request = {
  meth : meth;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = { status : int; reason : string; headers : (string * string) list; body : string }

(* Local site indices. *)
let s_entry = 0

let s_meth = 1

let s_target_len = 2

let s_target_query = 3

let s_version = 4

let s_header_count = 5

let s_header_name = 6

let s_header_clen = 7

let s_body_len = 8

let s_err = 9

let s_route = 10

let s_route_root = 11

let s_route_status = 12

let s_route_echo = 13

let s_route_metrics = 14

let s_route_devices = 15

let s_route_404 = 16

let s_echo_json_ok = 17

let s_echo_json_err = 18

let s_query_param = 19

let site_count = 24

let meth_to_string = function
  | GET -> "GET"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | HEAD -> "HEAD"
  | OPTIONS -> "OPTIONS"

let meth_of_string = function
  | "GET" -> Some GET
  | "POST" -> Some POST
  | "PUT" -> Some PUT
  | "DELETE" -> Some DELETE
  | "HEAD" -> Some HEAD
  | "OPTIONS" -> Some OPTIONS
  | _ -> None

let split_crlf_lines s =
  (* Split on CRLF; a lone LF is tolerated (curl-ish laxness). *)
  let lines = ref [] in
  let buf = Buffer.create 32 in
  String.iter
    (fun c ->
      match c with
      | '\n' ->
        let line = Buffer.contents buf in
        let line =
          if String.length line > 0 && line.[String.length line - 1] = '\r' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        lines := line :: !lines;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    s;
  if Buffer.length buf > 0 then lines := Buffer.contents buf :: !lines;
  List.rev !lines

let index_of_blank_line s =
  let n = String.length s in
  let rec go i =
    if i + 3 < n && s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some (i, i + 4)
    else if i + 1 < n && s.[i] = '\n' && s.[i + 1] = '\n' then Some (i, i + 2)
    else if i < n then go (i + 1)
    else None
  in
  go 0

let fail instr code msg =
  Instr.cmp_i instr s_err code 0;
  Error msg

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed header %S" line)
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
    if name = "" then Error "empty header name" else Ok (name, value)

let parse_request ~instr raw =
  Instr.cmp_i instr s_entry (String.length raw) 0;
  match index_of_blank_line raw with
  | None -> fail instr 1 "no header/body separator"
  | Some (head_end, body_start) ->
    let head = String.sub raw 0 head_end in
    (match split_crlf_lines (head ^ "\n") with
     | [] -> fail instr 2 "empty request"
     | request_line :: header_lines ->
       (match String.split_on_char ' ' request_line with
        | [ m; target; version ] ->
          (match meth_of_string m with
           | None -> fail instr 3 (Printf.sprintf "unknown method %S" m)
           | Some meth ->
             (* Six methods = six branches, not a hash splatter. *)
             let meth_id =
               match meth with
               | GET -> 1 | POST -> 2 | PUT -> 3 | DELETE -> 4 | HEAD -> 5 | OPTIONS -> 6
             in
             Instr.cmp_i instr s_meth meth_id 0;
             if String.length target = 0 || target.[0] <> '/' then
               fail instr 4 "target must start with /"
             else begin
               Instr.cmp_i instr s_target_len (String.length target) 0;
               if String.contains target '?' then Instr.edge instr s_target_query;
               if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
                 fail instr 5 (Printf.sprintf "unsupported version %S" version)
               else begin
                 Instr.edge instr s_version;
                 let rec collect acc = function
                   | [] -> Ok (List.rev acc)
                   | "" :: rest -> collect acc rest
                   | line :: rest ->
                     (match parse_header_line line with
                      | Ok h ->
                        Instr.cmp_i instr s_header_name
                          (Hashtbl.hash (fst h) land 0x7)
                          0;
                        collect (h :: acc) rest
                      | Error e -> Error e)
                 in
                 match collect [] header_lines with
                 | Error e -> fail instr 6 e
                 | Ok headers ->
                   Instr.cmp_i instr s_header_count (List.length headers) 0;
                   let body_avail = String.length raw - body_start in
                   let body_len =
                     match List.assoc_opt "content-length" headers with
                     | None -> 0
                     | Some v ->
                       Instr.edge instr s_header_clen;
                       (match int_of_string_opt v with
                        | Some n when n >= 0 -> min n body_avail
                        | _ -> 0)
                   in
                   Instr.cmp_i instr s_body_len body_len 0;
                   Ok
                     {
                       meth;
                       target;
                       version;
                       headers;
                       body = String.sub raw body_start body_len;
                     }
               end
             end)
        | _ -> fail instr 7 "malformed request line"))

let render_response r =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status r.reason);
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v)) r.headers;
  Buffer.add_string buf (Printf.sprintf "Content-Length: %d\r\n\r\n" (String.length r.body));
  Buffer.add_string buf r.body;
  Buffer.contents buf

let header (req : request) name = List.assoc_opt (String.lowercase_ascii name) req.headers

let text_response status reason body =
  { status; reason; headers = [ ("Content-Type", "text/plain") ]; body }

let json_response status reason body =
  { status; reason; headers = [ ("Content-Type", "application/json") ]; body }

module Server = struct
  type t = {
    instr : Instr.t;
    json_instr : Instr.t;
    mutable requests_served : int;
    mutable device_count : int;
  }

  let create ~instr ~json_instr =
    { instr; json_instr; requests_served = 0; device_count = 3 }

  let path_of_target target =
    match String.index_opt target '?' with
    | Some i -> String.sub target 0 i
    | None -> target

  let query_of_target t target =
    match String.index_opt target '?' with
    | None -> []
    | Some i ->
      String.sub target (i + 1) (String.length target - i - 1)
      |> String.split_on_char '&'
      |> List.filter_map (fun kv ->
             match String.index_opt kv '=' with
             | Some j ->
               Instr.cmp_i t.instr s_query_param (Hashtbl.hash kv land 0xF) 0;
               Some (String.sub kv 0 j, String.sub kv (j + 1) (String.length kv - j - 1))
             | None -> None)

  let route t (req : request) =
    let path = path_of_target req.target in
    Instr.cmp_i t.instr s_route (Hashtbl.hash path land 0xF) 0;
    match (req.meth, path) with
    | GET, "/" ->
      Instr.edge t.instr s_route_root;
      text_response 200 "OK" "eof demo application\n"
    | GET, "/status" ->
      Instr.edge t.instr s_route_status;
      json_response 200 "OK"
        (Printf.sprintf "{\"requests\":%d,\"devices\":%d}" t.requests_served t.device_count)
    | POST, "/api/echo" ->
      Instr.edge t.instr s_route_echo;
      (match Json.parse ~instr:t.json_instr req.body with
       | Ok doc ->
         Instr.edge t.instr s_echo_json_ok;
         (match Json.encode ~instr:t.json_instr doc with
          | Ok text -> json_response 200 "OK" text
          | Error `Too_deep -> text_response 413 "Payload Too Large" "json too deep\n")
       | Error e ->
         Instr.edge t.instr s_echo_json_err;
         text_response 400 "Bad Request" (e ^ "\n"))
    | GET, "/metrics" ->
      Instr.edge t.instr s_route_metrics;
      text_response 200 "OK"
        (Printf.sprintf "http_requests_total %d\n" t.requests_served)
    | GET, "/devices" ->
      Instr.edge t.instr s_route_devices;
      let q = query_of_target t req.target in
      let limit =
        match List.assoc_opt "limit" q with
        | Some v -> (match int_of_string_opt v with Some n when n > 0 -> min n 16 | _ -> 3)
        | None -> 3
      in
      let items = List.init (min limit t.device_count) (fun i -> Printf.sprintf "\"dev%d\"" i) in
      json_response 200 "OK" (Printf.sprintf "[%s]" (String.concat "," items))
    | DELETE, "/devices" ->
      t.device_count <- max 0 (t.device_count - 1);
      text_response 204 "No Content" ""
    | _, _ ->
      Instr.edge t.instr s_route_404;
      text_response 404 "Not Found" "no such route\n"

  let handle t raw =
    t.requests_served <- t.requests_served + 1;
    match parse_request ~instr:t.instr raw with
    | Ok req -> route t req
    | Error e -> text_response 400 "Bad Request" (e ^ "\n")

  let requests_served t = t.requests_served
end
