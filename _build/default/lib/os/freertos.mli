(** The FreeRTOS personality (v5.4-flavoured ESP-IDF build in the paper's
    evaluation).

    Tick-driven scheduling with optional static stacks: [xTaskCreate],
    queues, semaphores, software timers, event groups, [pvPortMalloc],
    plus the demo application components (HTTP server and JSON) used by
    the Table-4 application-level experiment and the ESP-IDF-style
    partition loader.

    Seeded bug (Table 2): #13 [load_partitions] — parsing the backup
    partition table with overlapping entries panics instead of failing
    gracefully. The poisoned table is spliced into the kernel blob at
    {!backup_table_blob_offset}. *)

val spec : Osbuild.spec

val backup_table_flash_offset : int
(** Flash offset (from flash base) of the backup partition table; the
    only [load_partitions] argument value whose magic check passes. *)

val http_module : string
(** Instrumentation block names for the Table-4 app-only builds. *)

val json_module : string
