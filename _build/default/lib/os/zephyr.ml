open Eof_hw
open Eof_rtos
open Oscommon
module Instr = Eof_rtos.Instr

(* Per-boot state for the k_heap and msgq bug mechanics. *)
type kheap = {
  arena : Heap.t option;  (* None = the broken k_heap_init result (bug #4) *)
  req_size : int;
  mutable blocks : int list;  (* outstanding payload addresses *)
}

type Kobj.payload += Kheap of kheap

type Kobj.payload += Kheap_block of { kheap_handle : int; addr : int }

type Kobj.payload += Work_item of int

let install (ctx : Osbuild.ctx) =
  let reg = ctx.reg in
  let panic = ctx.panic in
  let i_thread = ctx.instr "zephyr/thread" in
  let i_kheap = ctx.instr "zephyr/kheap" in
  let i_msgq = ctx.instr "zephyr/msgq" in
  let i_sem = ctx.instr "zephyr/sem" in
  let i_event = ctx.instr "zephyr/event" in
  let i_timer = ctx.instr "zephyr/timer" in
  let i_json = ctx.instr "zephyr/json" in
  let i_sys = ctx.instr "zephyr/sys" in
  let i_work = ctx.instr "zephyr/work" in
  (* The system work queue, drained from the kernel tick; work items
     post a completion bit to the oldest event group. *)
  let workq = Workq.create ~drain_per_tick:2 in
  let work_items = Hashtbl.create 8 in
  let next_work = ref 0 in
  (match
     Swtimer.create ~reg ~wheel:ctx.wheel ~name:"sysworkq" ~kind:Swtimer.Periodic ~period:1
       ~callback:(fun () -> ignore (Workq.drain_tick workq : int))
   with
   | Ok obj -> (match Swtimer.of_obj obj with Some tm -> Swtimer.start tm | None -> ())
   | Error _ -> ());
  (* The msgq bookkeeping that k_msgq_purge fails to reset (bug #2). *)
  let msgq_cached_count : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let entry name args ret ~weight ~doc handler =
    { Api.name; args; ret; doc; weight; handler }
  in
  let lookup kind h = Kobj.lookup_active reg h ~kind in

  (* --- threads ------------------------------------------------------ *)
  let k_thread_create args =
    let* prio = Api.get_int args 0 in
    let* stack = Api.get_int args 1 in
    let* flavor = Api.get_int args 2 in
    Instr.cmp i_thread 0 prio 16L;
    Instr.cmp i_thread 1 stack 1024L;
    let* obj =
      spawn_worker ctx ~name:"zthread" ~priority:(clamp_int prio)
        ~stack_size:(clamp_int stack) ~flavor:(clamp_int flavor)
    in
    Instr.edge i_thread 2;
    Api.created ~kind:"thread" ~handle:obj.Kobj.handle
  in
  let with_task h f =
    let* obj = lookup "task" h in
    match Sched.of_obj obj with None -> Api.status Kerr.einval | Some tcb -> f tcb
  in
  let k_thread_suspend args =
    let* h = Api.get_res args 0 in
    with_task h (fun tcb ->
        Instr.edge i_thread 3;
        Sched.suspend tcb;
        Api.ok_status)
  in
  let k_thread_resume args =
    let* h = Api.get_res args 0 in
    with_task h (fun tcb ->
        Instr.edge i_thread 4;
        Sched.resume tcb;
        Api.ok_status)
  in
  let k_thread_priority_set args =
    let* h = Api.get_res args 0 in
    let* prio = Api.get_int args 1 in
    with_task h (fun tcb ->
        Instr.cmp i_thread 5 prio 16L;
        to_status (Sched.set_priority tcb (clamp_int prio)))
  in
  let k_thread_abort args =
    let* h = Api.get_res args 0 in
    with_task h (fun tcb ->
        Instr.edge i_thread 6;
        Sched.finish tcb;
        (match Kobj.lookup reg h with Some obj -> Kobj.delete obj | None -> ());
        Api.ok_status)
  in
  let k_sleep args =
    let* ms = Api.get_int args 0 in
    let ms = max 0 (min 50 (clamp_int ms)) in
    Instr.cmp_i i_thread 7 ms 10;
    pump ctx ms;
    Api.ok_status
  in
  let k_yield _args =
    Instr.edge i_thread 8;
    pump ctx 1;
    Api.ok_status
  in

  (* --- k_heap ------------------------------------------------------- *)
  let k_heap_init args =
    let* size = Api.get_int args 0 in
    let size = clamp_int size in
    Instr.cmp_i i_kheap 0 size 64;
    if size < 0 || size > 4096 then Api.status Kerr.einval
    else begin
      let rounded = (size + 7) / 8 * 8 in
      match Heap.alloc ctx.heap (max 8 rounded) with
      | None ->
        Instr.edge i_kheap 1;
        Api.status Kerr.enomem
      | Some base ->
        (* BUG #4 (confirmed): the result of the arena initialisation is
           not checked; a region below the minimum block size registers a
           "ready" heap whose free list was never written. *)
        let arena =
          match Heap.init ~mem:(Board.ram ctx.board) ~base ~size:rounded with
          | Ok arena ->
            Instr.edge i_kheap 2;
            Some arena
          | Error _ ->
            Instr.edge i_kheap 3;
            None
        in
        let obj =
          Kobj.register reg ~kind:"kheap" ~name:"kheap"
            (Kheap { arena; req_size = size; blocks = [] })
        in
        Api.created ~kind:"kheap" ~handle:obj.Kobj.handle
    end
  in
  let with_kheap h f =
    let* obj = lookup "kheap" h in
    match obj.Kobj.payload with
    | Kheap kh -> f obj kh
    | _ -> Api.status Kerr.einval
  in
  let k_heap_alloc args =
    let* h = Api.get_res args 0 in
    let* size = Api.get_int args 1 in
    with_kheap h (fun obj kh ->
        Instr.cmp i_kheap 4 size 64L;
        match kh.arena with
        | None ->
          (* Touching the never-initialised free list. *)
          Panic.panic panic
            ~backtrace:
              [
                "lib/heap/heap.c : sys_heap_alloc : 311";
                "kernel/kheap.c : k_heap_alloc : 119";
              ]
            (Printf.sprintf
               "unaligned free-list head in k_heap region of %d bytes (k_heap_init \
                result unchecked)"
               kh.req_size)
        | Some arena ->
          (match Heap.alloc arena (clamp_int size) with
           | None ->
             Instr.edge i_kheap 5;
             Api.status Kerr.enomem
           | Some addr ->
             Instr.edge i_kheap 6;
             kh.blocks <- addr :: kh.blocks;
             let blk =
               Kobj.register reg ~kind:"kheap_block" ~name:"zblock"
                 (Kheap_block { kheap_handle = obj.Kobj.handle; addr })
             in
             Api.created ~kind:"kheap_block" ~handle:blk.Kobj.handle))
  in
  let k_heap_free args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "kheap_block" h in
    (match obj.Kobj.payload with
     | Kheap_block { kheap_handle; addr } ->
       with_kheap kheap_handle (fun _ kh ->
           match kh.arena with
           | None -> Api.status Kerr.einval
           | Some arena ->
             Instr.edge i_kheap 7;
             Kobj.delete obj;
             kh.blocks <- List.filter (fun a -> a <> addr) kh.blocks;
             (match Heap.free arena addr with
              | Ok () -> Api.ok_status
              | Error _ ->
                Instr.edge i_kheap 8;
                Api.status Kerr.einval))
     | _ -> Api.status Kerr.einval)
  in
  let sys_heap_stress args =
    let* h = Api.get_res args 0 in
    let* bytes = Api.get_int args 1 in
    let* flags = Api.get_int args 2 in
    with_kheap h (fun _ kh ->
        match kh.arena with
        | None -> Api.status Kerr.einval
        | Some arena ->
          let bytes = clamp_int bytes in
          let aligned = Int64.logand flags 1L <> 0L in
          Instr.cmp_i i_kheap 9 bytes (Heap.size arena);
          Instr.cmp i_kheap 10 flags 0L;
          if bytes > Heap.size arena && aligned then begin
            (* BUG #1: the aligned stress path trusts its byte budget and
               walks past the arena, shearing a block header. *)
            Instr.edge i_kheap 11;
            Eof_exec.Target.cycles 50;
            Memory.write_u32 (Board.ram ctx.board) (Heap.base arena) 0xDEADBEEFl;
            (match Heap.alloc arena 8 with
             | _ -> Api.ok_status
             (* unreachable: the corrupted walk faults first *))
          end
          else begin
            (* Honest stress: bounded alloc/free churn. *)
            let rounds = min 16 (max 1 (bytes / 64)) in
            Instr.cmp_i i_kheap 12 rounds 8;
            let held = ref [] in
            for _ = 1 to rounds do
              match Heap.alloc arena 24 with
              | Some a -> held := a :: !held
              | None -> ()
            done;
            List.iter (fun a -> ignore (Heap.free arena a : (unit, string) result)) !held;
            Api.ok_status
          end)
  in

  (* --- msgq --------------------------------------------------------- *)
  let k_msgq_create args =
    let* capacity = Api.get_int args 0 in
    let* item_size = Api.get_int args 1 in
    Instr.cmp i_msgq 0 capacity 8L;
    Instr.cmp i_msgq 1 item_size 16L;
    let* obj =
      Msgq.create ~reg ~heap:ctx.heap ~name:"zmsgq" ~capacity:(clamp_int capacity)
        ~item_size:(clamp_int item_size)
    in
    Hashtbl.replace msgq_cached_count obj.Kobj.handle 0;
    Api.created ~kind:"msgq" ~handle:obj.Kobj.handle
  in
  let with_msgq h f =
    let* obj = lookup "msgq" h in
    match Msgq.of_obj obj with None -> Api.status Kerr.einval | Some q -> f obj q
  in
  let k_msgq_put args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_msgq h (fun obj q ->
        Instr.cmp_i i_msgq 2 (String.length data) 16;
        match Msgq.send q data with
        | Ok () ->
          Instr.edge i_msgq 3;
          Hashtbl.replace msgq_cached_count obj.Kobj.handle
            (1 + Option.value ~default:0 (Hashtbl.find_opt msgq_cached_count obj.Kobj.handle));
          Api.ok_status
        | Error e ->
          Instr.edge i_msgq 4;
          Api.status e)
  in
  let z_impl_k_msgq_get args =
    let* h = Api.get_res args 0 in
    with_msgq h (fun obj q ->
        let cached =
          Option.value ~default:0 (Hashtbl.find_opt msgq_cached_count obj.Kobj.handle)
        in
        Instr.cmp_i i_msgq 5 cached (Msgq.count q);
        if q.Msgq.purged && cached > 0 then
          (* BUG #2 (confirmed): purge dropped the ring but the cached
             element count says data is pending; the get path follows the
             dangling ring pointer. *)
          Panic.panic panic
            ~backtrace:
              [
                "kernel/msg_q.c : z_impl_k_msgq_get : 204";
                "kernel/msg_q.c : k_msgq_get : 161";
              ]
            "dangling ring buffer dereference after k_msgq_purge"
        else
          match Msgq.recv q with
          | Ok _msg ->
            Instr.edge i_msgq 6;
            Hashtbl.replace msgq_cached_count obj.Kobj.handle (max 0 (cached - 1));
            Api.ok_status
          | Error e ->
            Instr.edge i_msgq 7;
            Api.status e)
  in
  let k_msgq_purge args =
    let* h = Api.get_res args 0 in
    with_msgq h (fun _obj q ->
        Instr.edge i_msgq 8;
        (* The bug: the cached count table entry is NOT reset here. *)
        Msgq.purge q;
        Api.ok_status)
  in
  let k_msgq_num_used args =
    let* h = Api.get_res args 0 in
    with_msgq h (fun _obj q ->
        Instr.cmp_i i_msgq 9 (Msgq.count q) 0;
        Api.status (Int64.of_int (Msgq.count q)))
  in

  (* --- semaphores --------------------------------------------------- *)
  let k_sem_init args =
    let* initial = Api.get_int args 0 in
    let* limit = Api.get_int args 1 in
    Instr.cmp i_sem 0 initial 4L;
    Instr.cmp i_sem 3 limit 8L;
    let* obj =
      Sem.create ~reg ~name:"zsem" ~initial:(clamp_int initial) ~max_count:(clamp_int limit)
    in
    Api.created ~kind:"sem" ~handle:obj.Kobj.handle
  in
  let with_sem h f =
    let* obj = lookup "sem" h in
    match Sem.of_obj obj with None -> Api.status Kerr.einval | Some s -> f s
  in
  let k_sem_take args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.cmp_i i_sem 1 (Sem.count s) 0;
        to_status (Sem.take s))
  in
  let k_sem_give args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.cmp_i i_sem 2 (Sem.count s) 0;
        to_status (Sem.give s))
  in

  (* --- events ------------------------------------------------------- *)
  let k_event_create _args =
    Instr.edge i_event 0;
    let obj = Event.create ~reg ~name:"zevent" in
    Api.created ~kind:"event" ~handle:obj.Kobj.handle
  in
  let with_event h f =
    let* obj = lookup "event" h in
    match Event.of_obj obj with None -> Api.status Kerr.einval | Some e -> f e
  in
  let k_event_post args =
    let* h = Api.get_res args 0 in
    let* bits = Api.get_int args 1 in
    with_event h (fun e ->
        Instr.cmp i_event 1 bits 0xFF00L;
        Event.send e (clamp_int bits);
        Api.ok_status)
  in
  let k_event_wait args =
    let* h = Api.get_res args 0 in
    let* mask = Api.get_int args 1 in
    let* opts = Api.get_int args 2 in
    with_event h (fun e ->
        let all = Int64.logand opts 1L <> 0L in
        let clear = Int64.logand opts 2L <> 0L in
        Instr.cmp i_event 2 mask 0xFFL;
        Instr.cmp i_event 3 opts 0L;
        match Event.recv e ~mask:(clamp_int mask) ~all ~clear with
        | Ok matched ->
          Instr.edge i_event 4;
          Api.status (Int64.of_int matched)
        | Error e ->
          Instr.edge i_event 5;
          Api.status e)
  in

  (* --- timers ------------------------------------------------------- *)
  let k_timer_create args =
    let* period = Api.get_int args 0 in
    let* kind_flag = Api.get_int args 1 in
    let kind = if Int64.logand kind_flag 1L <> 0L then Swtimer.Periodic else Swtimer.Oneshot in
    Instr.cmp i_timer 0 period 5L;
    let callback () =
      (* Timer context: feed the oldest event group, as a driver ISR
         bottom half would. *)
      match Kobj.of_kind reg "event" with
      | obj :: _ ->
        (match Event.of_obj obj with Some e -> Event.send e 0x100 | None -> ())
      | [] -> ()
    in
    let* obj =
      Swtimer.create ~reg ~wheel:ctx.wheel ~name:"ztimer" ~kind ~period:(clamp_int period)
        ~callback
    in
    Api.created ~kind:"timer" ~handle:obj.Kobj.handle
  in
  let with_timer h f =
    let* obj = lookup "timer" h in
    match Swtimer.of_obj obj with None -> Api.status Kerr.einval | Some tm -> f tm
  in
  let k_timer_start args =
    let* h = Api.get_res args 0 in
    with_timer h (fun tm ->
        Instr.edge i_timer 1;
        Swtimer.start tm;
        Api.ok_status)
  in
  let k_timer_stop args =
    let* h = Api.get_res args 0 in
    with_timer h (fun tm ->
        Instr.edge i_timer 2;
        Swtimer.stop tm;
        Api.ok_status)
  in

  (* --- JSON middleware ---------------------------------------------- *)
  let json_parse args =
    let* buf = Api.get_buf args 0 in
    match Eof_apps.Json.parse ~instr:i_json buf with
    | Ok _ -> Api.ok_status
    | Error _ -> Api.status Kerr.einval
  in
  let encode_or_panic doc =
    match Eof_apps.Json.encode ~instr:i_json ~max_depth:8 doc with
    | Ok _ -> Api.ok_status
    | Error `Too_deep ->
      (* BUG #3 (confirmed): the encoder's fixed descend stack overflows
         instead of propagating the depth error. *)
      Panic.panic panic
        ~backtrace:
          [
            "lib/utils/json.c : json_obj_encode : 733";
            "lib/utils/json.c : encode : 684";
          ]
        "encoder stack overflow in json_obj_encode (nesting depth > 8)"
  in
  let json_obj_encode args =
    let* buf = Api.get_buf args 0 in
    match Eof_apps.Json.parse ~instr:i_json buf with
    | Error _ -> Api.status Kerr.einval
    | Ok doc -> encode_or_panic doc
  in
  let syz_json_deep_encode args =
    let* depth = Api.get_int args 0 in
    let depth = max 1 (min 12 (clamp_int depth)) in
    let rec build d =
      if d <= 0 then Eof_apps.Json.Num 1.0
      else Eof_apps.Json.Obj [ ("nested", build (d - 1)) ]
    in
    encode_or_panic (build depth)
  in

  (* --- work queue ---------------------------------------------------- *)
  let k_work_init args =
    let* bit = Api.get_int args 0 in
    Instr.cmp i_work 0 bit 8L;
    let id = !next_work in
    incr next_work;
    let bit = clamp_int bit land 0xFF in
    let item =
      Workq.make_item (fun () ->
          Instr.edge i_work 1;
          match Kobj.of_kind reg "event" with
          | obj :: _ ->
            (match Event.of_obj obj with
             | Some e -> Event.send e (1 lsl (bit land 0xF))
             | None -> ())
          | [] -> Instr.edge i_work 2)
    in
    Hashtbl.replace work_items id item;
    let obj = Kobj.register reg ~kind:"work" ~name:"kwork" (Work_item id) in
    Api.created ~kind:"work" ~handle:obj.Kobj.handle
  in
  let k_work_submit args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "work" h in
    match obj.Kobj.payload with
    | Work_item id ->
      (match Hashtbl.find_opt work_items id with
       | None -> Api.status Kerr.einval
       | Some item ->
         Instr.cmp_i i_work 3 (Workq.pending workq) 0;
         if Workq.submit workq item then begin
           Instr.edge i_work 4;
           Api.ok_status
         end
         else begin
           (* already pending: Zephyr returns 0 without requeueing *)
           Instr.edge i_work 5;
           Api.status Kerr.ebusy
         end)
    | _ -> Api.status Kerr.einval
  in
  let k_work_pending _args =
    Instr.cmp_i i_work 6 (Workq.pending workq) 1;
    Api.status (Int64.of_int (Workq.pending workq))
  in

  (* --- sys ---------------------------------------------------------- *)
  let k_uptime_get _args =
    Instr.edge i_sys 0;
    Api.status (Int64.of_int (Sched.ticks ctx.sched))
  in
  let printk args =
    let* s = Api.get_str args 0 in
    Instr.cmp_i i_sys 1 (String.length s) 16;
    Klog.info ~os:ctx.os_name s;
    Api.ok_status
  in

    let staged_entries =
    Statemach.entries ctx ~instr:(ctx.instr "zephyr/pipe") ~prefix:"zpipe"
      ~resource:"i2c_target" ~salt:48
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "zephyr/spi") ~prefix:"zspi"
        ~resource:"spi_dev" ~salt:65
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "zephyr/adc") ~prefix:"zadc"
        ~resource:"adc_dev" ~salt:110
  in

  let staged_entries =
    staged_entries @ install_irq ctx ~instr:(ctx.instr "zephyr/irq") ~prefix:"gpio"
  in

  Api.make_table ~os:"Zephyr"
    ([
      entry "k_thread_create"
        [ ("priority", Api.A_int { min = 0L; max = 31L });
          ("stack_size", Api.A_int { min = 128L; max = 8192L });
          ("flavor", Api.A_int { min = 0L; max = 7L }) ]
        (`Resource "thread") ~weight:3 ~doc:"Create and start a thread" k_thread_create;
      entry "k_thread_suspend" [ ("thread", Api.A_res "thread") ] `Status ~weight:1
        ~doc:"Suspend a thread" k_thread_suspend;
      entry "k_thread_resume" [ ("thread", Api.A_res "thread") ] `Status ~weight:1
        ~doc:"Resume a suspended thread" k_thread_resume;
      entry "k_thread_priority_set"
        [ ("thread", Api.A_res "thread"); ("priority", Api.A_int { min = 0L; max = 31L }) ]
        `Status ~weight:1 ~doc:"Change a thread's priority" k_thread_priority_set;
      entry "k_thread_abort" [ ("thread", Api.A_res "thread") ] `Status ~weight:1
        ~doc:"Abort a thread" k_thread_abort;
      entry "k_sleep" [ ("ms", Api.A_int { min = 0L; max = 50L }) ] `Status ~weight:2
        ~doc:"Sleep, letting other threads and timers run" k_sleep;
      entry "k_yield" [] `Status ~weight:1 ~doc:"Yield the CPU" k_yield;
      entry "k_heap_init" [ ("size", Api.A_int { min = 0L; max = 4096L }) ]
        (`Resource "kheap") ~weight:3 ~doc:"Initialise a k_heap arena" k_heap_init;
      entry "k_heap_alloc"
        [ ("heap", Api.A_res "kheap"); ("size", Api.A_int { min = 0L; max = 2048L }) ]
        (`Resource "kheap_block") ~weight:3 ~doc:"Allocate from a k_heap" k_heap_alloc;
      entry "k_heap_free" [ ("block", Api.A_res "kheap_block") ] `Status ~weight:2
        ~doc:"Free a k_heap block" k_heap_free;
      entry "sys_heap_stress"
        [ ("heap", Api.A_res "kheap");
          ("bytes", Api.A_int { min = 0L; max = 131072L });
          ("flags", Api.A_flags [ ("align", 1L); ("churn", 2L) ]) ]
        `Status ~weight:2 ~doc:"Exercise the heap with an alloc/free storm" sys_heap_stress;
      entry "k_msgq_create"
        [ ("capacity", Api.A_int { min = 1L; max = 64L });
          ("item_size", Api.A_int { min = 1L; max = 128L }) ]
        (`Resource "msgq") ~weight:3 ~doc:"Create a message queue" k_msgq_create;
      entry "k_msgq_put"
        [ ("queue", Api.A_res "msgq"); ("data", Api.A_buf { max_len = 128 }) ]
        `Status ~weight:3 ~doc:"Enqueue a message" k_msgq_put;
      entry "z_impl_k_msgq_get" [ ("queue", Api.A_res "msgq") ] `Status ~weight:3
        ~doc:"Dequeue a message" z_impl_k_msgq_get;
      entry "k_msgq_purge" [ ("queue", Api.A_res "msgq") ] `Status ~weight:2
        ~doc:"Discard all queued messages" k_msgq_purge;
      entry "k_msgq_num_used" [ ("queue", Api.A_res "msgq") ] `Status ~weight:1
        ~doc:"Count queued messages" k_msgq_num_used;
      entry "k_sem_init"
        [ ("initial", Api.A_int { min = 0L; max = 10L });
          ("limit", Api.A_int { min = 1L; max = 10L }) ]
        (`Resource "sem") ~weight:2 ~doc:"Initialise a semaphore" k_sem_init;
      entry "k_sem_take" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Take a semaphore (non-blocking)" k_sem_take;
      entry "k_sem_give" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Give a semaphore" k_sem_give;
      entry "k_event_create" [] (`Resource "event") ~weight:2 ~doc:"Create an event group"
        k_event_create;
      entry "k_event_post"
        [ ("event", Api.A_res "event"); ("bits", Api.A_int { min = 0L; max = 65535L }) ]
        `Status ~weight:2 ~doc:"Post event bits" k_event_post;
      entry "k_event_wait"
        [ ("event", Api.A_res "event");
          ("mask", Api.A_int { min = 1L; max = 65535L });
          ("opts", Api.A_flags [ ("all", 1L); ("clear", 2L) ]) ]
        `Status ~weight:2 ~doc:"Wait for event bits (non-blocking poll)" k_event_wait;
      entry "k_timer_create"
        [ ("period", Api.A_int { min = 1L; max = 20L });
          ("kind", Api.A_flags [ ("periodic", 1L) ]) ]
        (`Resource "timer") ~weight:2 ~doc:"Create a software timer" k_timer_create;
      entry "k_timer_start" [ ("timer", Api.A_res "timer") ] `Status ~weight:2
        ~doc:"Start a timer" k_timer_start;
      entry "k_timer_stop" [ ("timer", Api.A_res "timer") ] `Status ~weight:1
        ~doc:"Stop a timer" k_timer_stop;
      entry "json_parse" [ ("text", Api.A_buf { max_len = 256 }) ] `Status ~weight:2
        ~doc:"Parse a JSON document" json_parse;
      entry "json_obj_encode" [ ("text", Api.A_buf { max_len = 256 }) ] `Status ~weight:2
        ~doc:"Round-trip a JSON document through the encoder" json_obj_encode;
      entry "syz_json_deep_encode" [ ("depth", Api.A_int { min = 1L; max = 12L }) ] `Status
        ~weight:2 ~doc:"Pseudo-syscall: build and encode a nested JSON object"
        syz_json_deep_encode;
      entry "k_work_init" [ ("bit", Api.A_int { min = 0L; max = 15L }) ]
        (`Resource "work") ~weight:2 ~doc:"Initialise a work item" k_work_init;
      entry "k_work_submit" [ ("work", Api.A_res "work") ] `Status ~weight:3
        ~doc:"Submit a work item to the system work queue" k_work_submit;
      entry "k_work_pending" [] `Status ~weight:1 ~doc:"Pending work count" k_work_pending;
      entry "k_uptime_get" [] `Status ~weight:1 ~doc:"Read the kernel tick counter"
        k_uptime_get;
      entry "printk" [ ("text", Api.A_str { max_len = 64 }) ] `Status ~weight:1
        ~doc:"Print to the kernel console" printk;
    ]
     @ staged_entries)


let spec =
  {
    Osbuild.os_name = "Zephyr";
    version = "143b14b";
    base_kernel_bytes = 82_000;
    modules =
      [
        ("zephyr/thread", 24);
        ("zephyr/kheap", 32);
        ("zephyr/msgq", 24);
        ("zephyr/sem", 16);
        ("zephyr/event", 16);
        ("zephyr/timer", 16);
        ("zephyr/json", Eof_apps.Json.site_count);
        ("zephyr/sys", 16);
        ("zephyr/work", 12);
        ("zephyr/pipe", Statemach.site_count);
        ("zephyr/spi", Statemach.site_count);
        ("zephyr/adc", Statemach.site_count);
        ("zephyr/irq", Oscommon.irq_site_count);
      ];
    banner = "*** Booting Zephyr OS build v3.6.0-143b14b ***";
    kernel_patches = [];
    install;
  }
