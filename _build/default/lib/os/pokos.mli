(** The PoKOS personality (POK, commit b2e1cc3): an ARINC 653-style
    partitioned OS used for the Gustave comparison. Sampling and queueing
    ports, partition modes, intra-partition threads and semaphores. No
    Table-2 bugs are seeded here — the paper reports none for PoKOS — so
    it exercises the pure coverage-comparison path. *)

val spec : Osbuild.spec
