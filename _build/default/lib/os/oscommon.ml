open Eof_rtos

let ( let* ) r f = match r with Ok v -> f v | Error code -> Api.status code

let to_status = function Ok () -> Api.ok_status | Error code -> Api.status code

let clamp_int v =
  if Int64.compare v (Int64.of_int max_int) > 0 then max_int
  else if Int64.compare v (Int64.of_int min_int) < 0 then min_int
  else Int64.to_int v

(* Locate-and-cache: a real task body holds a pointer to the object it
   drives; the registry walk happens once, not every quantum (which
   would also be quadratic as the registry grows during fuzzing). *)
let cached_of_kind (ctx : Osbuild.ctx) kind cache =
  match !cache with
  | Some obj when obj.Kobj.state = Kobj.Active -> Some obj
  | _ ->
    let found =
      match Kobj.of_kind ctx.Osbuild.reg kind with obj :: _ -> Some obj | [] -> None
    in
    cache := found;
    found

let worker_body (ctx : Osbuild.ctx) ~flavor =
  let cache = ref None in
  fun (tcb : Sched.tcb) ->
    match flavor mod 3 with
    | 0 ->
      (* Semaphore giver: feeds a semaphore, modelling a producer task
         unblocking consumers. *)
      (match cached_of_kind ctx "sem" cache with
       | Some obj ->
         (match Sem.of_obj obj with
          | Some s -> ignore (Sem.give s : (unit, int64) result)
          | None -> ())
       | None -> ())
    | 1 ->
      (* Event poster: sets a rotating flag bit. *)
      (match cached_of_kind ctx "event" cache with
       | Some obj ->
         (match Event.of_obj obj with
          | Some e -> Event.send e (1 lsl (tcb.Sched.quanta_run mod 8))
          | None -> ())
       | None -> ())
    | _ ->
      if tcb.Sched.quanta_run mod 64 = 1 then
        Klog.info ~os:ctx.os_name (Printf.sprintf "task %s alive" tcb.Sched.task_name)

let spawn_worker (ctx : Osbuild.ctx) ~name ~priority ~stack_size ~flavor =
  Sched.spawn ctx.sched ~name ~priority ~stack_size ~body:(worker_body ctx ~flavor)

let pump (ctx : Osbuild.ctx) n = Sched.run_ticks ctx.sched n

let irq_site_count = 12

let install_irq (ctx : Osbuild.ctx) ~instr ~prefix =
  let gpio = Eof_hw.Board.gpio ctx.board in
  let isr pin =
    (* Interrupt context: acknowledge, then wake whoever is waiting. *)
    Instr.edge instr 0;
    Instr.cmp_i instr 1 pin 0;
    match Kobj.of_kind ctx.reg "sem" with
    | obj :: _ ->
      (match Sem.of_obj obj with
       | Some s ->
         Instr.edge instr 2;
         ignore (Sem.give s : (unit, int64) result)
       | None -> ())
    | [] ->
      (match Kobj.of_kind ctx.reg "event" with
       | obj :: _ ->
         (match Event.of_obj obj with
          | Some e ->
            Instr.edge instr 3;
            Event.send e (1 lsl (pin land 7))
          | None -> ())
       | [] -> Instr.edge instr 4)
  in
  ctx.register_isr isr;
  ignore (Eof_hw.Gpio.configure_irq gpio ~pin:0 Eof_hw.Gpio.Rising : (unit, string) result);
  let enable args =
    let* pin = Api.get_int args 0 in
    let* edge = Api.get_int args 1 in
    Instr.cmp instr 5 pin 0L;
    let edge_v =
      match Int64.to_int (Int64.logand edge 3L) with
      | 1 -> Some Eof_hw.Gpio.Rising
      | 2 -> Some Eof_hw.Gpio.Falling
      | 3 -> Some Eof_hw.Gpio.Both
      | _ -> None
    in
    match edge_v with
    | None -> Api.status Kerr.einval
    | Some e ->
      (match Eof_hw.Gpio.configure_irq gpio ~pin:(clamp_int pin) e with
       | Ok () ->
         Instr.edge instr 6;
         Api.ok_status
       | Error _ -> Api.status Kerr.einval)
  in
  let disable args =
    let* pin = Api.get_int args 0 in
    Instr.edge instr 7;
    Eof_hw.Gpio.disable_irq gpio ~pin:(clamp_int pin);
    Api.ok_status
  in
  [
    {
      Api.name = prefix ^ "_irq_enable";
      args =
        [ ("pin", Api.A_int { min = 0L; max = 15L });
          ("edge", Api.A_flags [ ("rising", 1L); ("falling", 2L) ]) ];
      ret = `Status;
      doc = "Arm edge interrupts on a GPIO pin";
      weight = 1;
      handler = enable;
    };
    {
      Api.name = prefix ^ "_irq_disable";
      args = [ ("pin", Api.A_int { min = 0L; max = 15L }) ];
      ret = `Status;
      doc = "Disarm a GPIO pin";
      weight = 1;
      handler = disable;
    };
  ]
