(** The RT-Thread personality (commit 2f55990 in the paper's evaluation).

    Threads, the object subsystem ([rt_object_*]), kernel services list,
    memory pools, the global heap with its non-recursive [_heap_lock],
    small-memory blocks ([rt_smem_*]), IPC (events, semaphores, mutexes,
    mail queues), software timers, the serial device framework and the
    socket abstraction layer (SAL) whose creation path logs through the
    console — the §5.3.1 case-study chain.

    Seeded bugs (Table 2): #5 [rt_object_get_type] (assert + hang), #6
    [rt_list_isempty] via the service list, #7 [rt_mp_alloc], #8
    [rt_object_init] (assert), #9 [_heap_lock] re-entry from timer
    context, #10 [rt_event_send] on a deleted event, #11
    [rt_smem_setname] header scribble, #12 [rt_serial_write] on a stale
    console device. *)

val spec : Osbuild.spec
