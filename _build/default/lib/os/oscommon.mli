open Eof_rtos

(** Helpers shared by the OS personalities. *)

val ( let* ) : ('a, int64) result -> ('a -> Api.outcome) -> Api.outcome
(** Error short-circuiting into an API status outcome. *)

val to_status : (unit, int64) result -> Api.outcome

val clamp_int : int64 -> int
(** Truncate an API int64 argument to a host int, saturating. *)

val worker_body : Osbuild.ctx -> flavor:int -> Sched.tcb -> unit
(** One of a few built-in task behaviours (the "application code" that
    spawned tasks run): give the oldest semaphore, post event bits, or
    idle-log. [flavor] selects, modulo the number of behaviours. *)

val spawn_worker :
  Osbuild.ctx -> name:string -> priority:int -> stack_size:int -> flavor:int ->
  (Kobj.obj, int64) result

val pump : Osbuild.ctx -> int -> unit
(** Run kernel ticks (scheduler + timer wheel). *)

val irq_site_count : int
(** Sites an instrumentation block for {!install_irq} must provide. *)

val install_irq : Osbuild.ctx -> instr:Instr.t -> prefix:string -> Api.entry list
(** Wire the paper's future-work interrupt path: registers a GPIO ISR
    that feeds the oldest semaphore/event group (crossing its own
    instrumentation sites, including in-ISR comparisons), arms pin 0 for
    rising edges at boot, and returns two API entries —
    [<prefix>_irq_enable(pin, edge)] and [<prefix>_irq_disable(pin)] —
    so fuzzed programs can reconfigure the peripheral. *)
