open Eof_rtos

(** Staged driver state machines.

    Every real embedded OS hides sequences behind magic configuration
    values: init -> configure -> calibrate -> start chains where each
    step checks a mode word against what the hardware expects. This
    module instantiates such a protocol for a personality: [<name>_open]
    produces a device handle at stage 0, and [<name>_step dev code]
    advances one stage iff [code] matches that stage's expected word.

    Each comparison goes through the SanCov [trace_cmp] hook, so a
    coverage-guided fuzzer observes operand-distance buckets and can
    hill-climb toward the expected word — the concrete payoff of the
    paper's comparison-tracing instrumentation, and precisely what a
    generation-only fuzzer (EOF-nf) cannot do. *)

val stages : int
(** 10. *)

val site_count : int
(** Sites an instrumentation block for one instance must provide. *)

val expected_code : salt:int -> stage:int -> int
(** The stage's magic word (deterministic per personality salt). *)

val entries :
  Osbuild.ctx -> instr:Instr.t -> prefix:string -> resource:string -> salt:int ->
  Api.entry list
(** Two API entries: [<prefix>_open() -> resource] and
    [<prefix>_step(dev resource, code int[0:255])]. Completing the final
    stage logs a completion line (no bug — just deep coverage). *)
