open Eof_rtos
open Oscommon
module Instr = Eof_rtos.Instr

type sampling_port = { sp_max_size : int; mutable sp_value : string option }

type Kobj.payload += Sampling of sampling_port

let install (ctx : Osbuild.ctx) =
  let reg = ctx.reg in
  let heap = ctx.heap in
  let i_thread = ctx.instr "pok/thread" in
  let i_port = ctx.instr "pok/port" in
  let i_partition = ctx.instr "pok/partition" in
  let i_sem = ctx.instr "pok/sem" in
  let i_time = ctx.instr "pok/time" in
  let i_error = ctx.instr "pok/error" in
  let entry name args ret ~weight ~doc handler =
    { Api.name; args; ret; doc; weight; handler }
  in
  let lookup kind h = Kobj.lookup_active reg h ~kind in
  (* ARINC 653 partition mode: 0 idle, 1 cold start, 2 warm start, 3 normal. *)
  let partition_mode = ref 1 in

  let pok_thread_create args =
    let* prio = Api.get_int args 0 in
    let* flavor = Api.get_int args 1 in
    Instr.cmp i_thread 0 prio 8L;
    if !partition_mode = 3 then begin
      (* ARINC 653 forbids thread creation in NORMAL mode. *)
      Instr.edge i_thread 1;
      Api.status Kerr.eperm
    end
    else
      let* obj =
        spawn_worker ctx ~name:"pok_thread" ~priority:(clamp_int prio land 31)
          ~stack_size:2048 ~flavor:(clamp_int flavor)
      in
      Instr.edge i_thread 2;
      Api.created ~kind:"task" ~handle:obj.Kobj.handle
  in
  let pok_thread_sleep args =
    let* ticks = Api.get_int args 0 in
    let ticks = max 0 (min 50 (clamp_int ticks)) in
    Instr.cmp_i i_thread 3 ticks 10;
    pump ctx ticks;
    Api.ok_status
  in
  let pok_thread_suspend args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "task" h in
    (match Sched.of_obj obj with
     | None -> Api.status Kerr.einval
     | Some tcb ->
       Instr.edge i_thread 4;
       Sched.suspend tcb;
       Api.ok_status)
  in

  let pok_partition_set_mode args =
    let* mode = Api.get_int args 0 in
    let mode = clamp_int mode in
    Instr.cmp_i i_partition 0 mode !partition_mode;
    if mode < 0 || mode > 3 then Api.status Kerr.einval
    else if !partition_mode = 3 && mode < 3 && mode <> 1 then begin
      (* Only a restart (cold start) leaves NORMAL mode. *)
      Instr.edge i_partition 1;
      Api.status Kerr.eperm
    end
    else begin
      Instr.edge i_partition 2;
      partition_mode := mode;
      Api.ok_status
    end
  in
  let pok_partition_get_status _args =
    Instr.cmp_i i_partition 3 !partition_mode 3;
    Api.status (Int64.of_int !partition_mode)
  in

  let pok_port_sampling_create args =
    let* max_size = Api.get_int args 0 in
    Instr.cmp i_port 0 max_size 64L;
    let max_size = clamp_int max_size in
    if max_size <= 0 || max_size > 256 then Api.status Kerr.einval
    else if !partition_mode = 3 then Api.status Kerr.eperm
    else begin
      let obj =
        Kobj.register reg ~kind:"sampling_port" ~name:"spport"
          (Sampling { sp_max_size = max_size; sp_value = None })
      in
      Instr.edge i_port 1;
      Api.created ~kind:"sampling_port" ~handle:obj.Kobj.handle
    end
  in
  let with_sampling h f =
    let* obj = lookup "sampling_port" h in
    match obj.Kobj.payload with Sampling sp -> f sp | _ -> Api.status Kerr.einval
  in
  let pok_port_sampling_write args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_sampling h (fun sp ->
        Instr.cmp_i i_port 2 (String.length data) sp.sp_max_size;
        if String.length data > sp.sp_max_size then Api.status Kerr.einval
        else begin
          sp.sp_value <- Some data;
          Instr.edge i_port 3;
          Api.ok_status
        end)
  in
  let pok_port_sampling_read args =
    let* h = Api.get_res args 0 in
    with_sampling h (fun sp ->
        match sp.sp_value with
        | Some v ->
          Instr.cmp_i i_port 4 (String.length v) 0;
          Api.ok_status
        | None ->
          Instr.edge i_port 5;
          Api.status Kerr.eagain)
  in
  let pok_port_queueing_create args =
    let* capacity = Api.get_int args 0 in
    let* msg_size = Api.get_int args 1 in
    Instr.cmp i_port 6 capacity 16L;
    Instr.cmp i_port 11 msg_size 32L;
    if !partition_mode = 3 then Api.status Kerr.eperm
    else
      let* obj =
        Msgq.create ~reg ~heap ~name:"qport" ~capacity:(clamp_int capacity)
          ~item_size:(clamp_int msg_size)
      in
      Api.created ~kind:"msgq" ~handle:obj.Kobj.handle
  in
  let with_qport h f =
    let* obj = lookup "msgq" h in
    match Msgq.of_obj obj with None -> Api.status Kerr.einval | Some q -> f q
  in
  let pok_port_queueing_send args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_qport h (fun q ->
        match Msgq.send q data with
        | Ok () ->
          Instr.edge i_port 7;
          Api.ok_status
        | Error e ->
          Instr.edge i_port 8;
          Api.status e)
  in
  let pok_port_queueing_receive args =
    let* h = Api.get_res args 0 in
    with_qport h (fun q ->
        match Msgq.recv q with
        | Ok _ ->
          Instr.edge i_port 9;
          Api.ok_status
        | Error e ->
          Instr.edge i_port 10;
          Api.status e)
  in

  let pok_sem_create args =
    let* initial = Api.get_int args 0 in
    let* limit = Api.get_int args 1 in
    Instr.cmp i_sem 0 initial 4L;
    Instr.cmp i_sem 3 limit 8L;
    let* obj =
      Sem.create ~reg ~name:"pok_sem" ~initial:(clamp_int initial)
        ~max_count:(clamp_int limit)
    in
    Api.created ~kind:"sem" ~handle:obj.Kobj.handle
  in
  let with_sem h f =
    let* obj = lookup "sem" h in
    match Sem.of_obj obj with None -> Api.status Kerr.einval | Some s -> f s
  in
  let pok_sem_signal args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.edge i_sem 1;
        to_status (Sem.give s))
  in
  let pok_sem_wait args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.cmp_i i_sem 2 (Sem.count s) 0;
        to_status (Sem.take s))
  in

  let pok_time_get _args =
    Instr.edge i_time 0;
    Api.status (Int64.of_int (Sched.ticks ctx.sched))
  in
  let pok_error_raise args =
    let* code = Api.get_int args 0 in
    Instr.cmp i_error 0 code 0L;
    Klog.err ~os:ctx.os_name
      (Printf.sprintf "application error raised: code %Ld" code);
    Api.ok_status
  in

    let staged_entries =
    Statemach.entries ctx ~instr:(ctx.instr "pok/blackboard") ~prefix:"pok_blackboard"
      ~resource:"blackboard" ~salt:187
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "pok/afdx") ~prefix:"pok_afdx"
        ~resource:"afdx_port" ~salt:209
  in

  let staged_entries =
    staged_entries @ install_irq ctx ~instr:(ctx.instr "pok/irq") ~prefix:"pok_gpio"
  in

  Api.make_table ~os:"PoKOS"
    ([
      entry "pok_thread_create"
        [ ("priority", Api.A_int { min = 0L; max = 15L });
          ("flavor", Api.A_int { min = 0L; max = 7L }) ]
        (`Resource "task") ~weight:3 ~doc:"Create an intra-partition thread"
        pok_thread_create;
      entry "pok_thread_sleep" [ ("ticks", Api.A_int { min = 0L; max = 50L }) ] `Status
        ~weight:2 ~doc:"Sleep" pok_thread_sleep;
      entry "pok_thread_suspend" [ ("thread", Api.A_res "task") ] `Status ~weight:1
        ~doc:"Suspend a thread" pok_thread_suspend;
      entry "pok_partition_set_mode" [ ("mode", Api.A_int { min = 0L; max = 4L }) ] `Status
        ~weight:2 ~doc:"Change the partition operating mode" pok_partition_set_mode;
      entry "pok_partition_get_status" [] `Status ~weight:1 ~doc:"Query the partition mode"
        pok_partition_get_status;
      entry "pok_port_sampling_create" [ ("max_size", Api.A_int { min = 1L; max = 256L }) ]
        (`Resource "sampling_port") ~weight:3 ~doc:"Create a sampling port"
        pok_port_sampling_create;
      entry "pok_port_sampling_write"
        [ ("port", Api.A_res "sampling_port"); ("data", Api.A_buf { max_len = 256 }) ]
        `Status ~weight:3 ~doc:"Write a sampling-port value" pok_port_sampling_write;
      entry "pok_port_sampling_read" [ ("port", Api.A_res "sampling_port") ] `Status
        ~weight:2 ~doc:"Read the latest sampling-port value" pok_port_sampling_read;
      entry "pok_port_queueing_create"
        [ ("capacity", Api.A_int { min = 1L; max = 32L });
          ("msg_size", Api.A_int { min = 1L; max = 64L }) ]
        (`Resource "msgq") ~weight:3 ~doc:"Create a queueing port" pok_port_queueing_create;
      entry "pok_port_queueing_send"
        [ ("port", Api.A_res "msgq"); ("data", Api.A_buf { max_len = 64 }) ]
        `Status ~weight:2 ~doc:"Send on a queueing port" pok_port_queueing_send;
      entry "pok_port_queueing_receive" [ ("port", Api.A_res "msgq") ] `Status ~weight:2
        ~doc:"Receive from a queueing port" pok_port_queueing_receive;
      entry "pok_sem_create"
        [ ("initial", Api.A_int { min = 0L; max = 16L });
          ("limit", Api.A_int { min = 1L; max = 16L }) ]
        (`Resource "sem") ~weight:2 ~doc:"Create a semaphore" pok_sem_create;
      entry "pok_sem_signal" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Signal a semaphore" pok_sem_signal;
      entry "pok_sem_wait" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Wait on a semaphore (polling)" pok_sem_wait;
      entry "pok_time_get" [] `Status ~weight:1 ~doc:"Read partition time" pok_time_get;
      entry "pok_error_raise_application_error"
        [ ("code", Api.A_int { min = 0L; max = 255L }) ]
        `Status ~weight:1 ~doc:"Raise an ARINC 653 application error" pok_error_raise;
    ]
     @ staged_entries)


let spec =
  {
    Osbuild.os_name = "PoKOS";
    version = "b2e1cc3";
    base_kernel_bytes = 120_000;
    modules =
      [
        ("pok/thread", 24);
        ("pok/port", 32);
        ("pok/partition", 16);
        ("pok/sem", 16);
        ("pok/time", 8);
        ("pok/error", 8);
        ("pok/blackboard", Statemach.site_count);
        ("pok/afdx", Statemach.site_count);
        ("pok/irq", Oscommon.irq_site_count);
      ];
    banner = "POK kernel b2e1cc3 (ARINC 653 partition scheduler)";
    kernel_patches = [];
    install;
  }
