open Eof_hw
open Eof_rtos
open Oscommon
module Instr = Eof_rtos.Instr

type Kobj.payload += Fd of Ramfs.fd

let env_arena_bytes = 512

let install (ctx : Osbuild.ctx) =
  let reg = ctx.reg in
  let panic = ctx.panic in
  let heap = ctx.heap in
  let ram = Board.ram ctx.board in
  let profile = Board.profile ctx.board in
  let i_task = ctx.instr "nuttx/task" in
  let i_env = ctx.instr "nuttx/env" in
  let i_mq = ctx.instr "nuttx/mq" in
  let i_sem = ctx.instr "nuttx/sem" in
  let i_timer = ctx.instr "nuttx/timer" in
  let i_libc = ctx.instr "nuttx/libc" in
  let i_sys = ctx.instr "nuttx/sys" in
  let entry name args ret ~weight ~doc handler =
    { Api.name; args; ret; doc; weight; handler }
  in
  let lookup kind h = Kobj.lookup_active reg h ~kind in

  (* The fixed environment arena, physically backed by kernel heap
     storage so an overflow scribbles the neighbouring block header. *)
  let env_base =
    match Heap.alloc heap env_arena_bytes with
    | Some a -> a
    | None -> invalid_arg "nuttx: env arena allocation failed"
  in
  let env : (string * string) list ref = ref [] in
  let env_bytes entries =
    List.fold_left (fun acc (n, v) -> acc + String.length n + String.length v + 2) 0 entries
  in
  let env_write_through entries =
    (* Serialise "name=value\0" records from the arena base, with no
       bounds check — the missing check IS bug #14. *)
    let buf = Buffer.create 128 in
    List.iter
      (fun (n, v) ->
        Buffer.add_string buf n;
        Buffer.add_char buf '=';
        Buffer.add_string buf v;
        Buffer.add_char buf '\000')
      entries;
    Memory.write_bytes ram ~addr:env_base (Buffer.to_bytes buf)
  in

  (* --- filesystem ----------------------------------------------------- *)
  let i_fs = ctx.instr "nuttx/fs" in
  let fs = Ramfs.create ~heap ~max_files:8 ~max_file_bytes:2048 in
  let nx_open args =
    let* path = Api.get_str args 0 in
    let* flags = Api.get_int args 1 in
    Instr.cmp_i i_fs 0 (String.length path) 16;
    Instr.cmp i_fs 1 flags 3L;
    let create = Int64.logand flags 1L <> 0L in
    let write = Int64.logand flags 2L <> 0L in
    (match Ramfs.open_ fs ~path ~create ~write with
     | Ok fd ->
       Instr.edge i_fs 2;
       let obj = Kobj.register reg ~kind:"fd" ~name:path (Fd fd) in
       Api.created ~kind:"fd" ~handle:obj.Kobj.handle
     | Error e ->
       Instr.edge i_fs 3;
       Api.status e)
  in
  let with_fd h f =
    let* obj = lookup "fd" h in
    match obj.Kobj.payload with Fd fd -> f fd | _ -> Api.status Kerr.einval
  in
  let nx_write args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_fd h (fun fd ->
        Instr.cmp_i i_fs 4 (String.length data) 64;
        match Ramfs.write fs fd data with
        | Ok n ->
          Instr.edge i_fs 5;
          Api.status (Int64.of_int n)
        | Error e ->
          Instr.edge i_fs 6;
          Api.status e)
  in
  let nx_read args =
    let* h = Api.get_res args 0 in
    let* max = Api.get_int args 1 in
    with_fd h (fun fd ->
        match Ramfs.read fs fd ~max:(clamp_int max land 0xFFFF) with
        | Ok data ->
          Instr.cmp_i i_fs 7 (String.length data) 0;
          Api.ok_status
        | Error e ->
          Instr.edge i_fs 8;
          Api.status e)
  in
  let nx_close args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "fd" h in
    with_fd h (fun fd ->
        Instr.edge i_fs 9;
        Kobj.delete obj;
        to_status (Ramfs.close fs fd))
  in
  let nx_unlink args =
    let* path = Api.get_str args 0 in
    Instr.cmp_i i_fs 10 (String.length path) 8;
    (match Ramfs.unlink fs ~path with
     | Ok () ->
       Instr.edge i_fs 11;
       Api.ok_status
     | Error e ->
       Instr.edge i_fs 12;
       Api.status e)
  in

  (* --- tasks --------------------------------------------------------- *)
  let task_create args =
    let* prio = Api.get_int args 0 in
    let* stack = Api.get_int args 1 in
    let* flavor = Api.get_int args 2 in
    Instr.cmp i_task 0 prio 100L;
    Instr.cmp i_task 1 stack 2048L;
    (* NuttX priorities are 1..255; map onto the scheduler's 0..31. *)
    let prio = clamp_int prio in
    if prio < 1 || prio > 255 then Api.status Kerr.einval
    else
      let* obj =
        spawn_worker ctx ~name:"nxtask" ~priority:(prio * 31 / 255)
          ~stack_size:(clamp_int stack) ~flavor:(clamp_int flavor)
      in
      Instr.edge i_task 2;
      Api.created ~kind:"task" ~handle:obj.Kobj.handle
  in
  let with_task h f =
    let* obj = lookup "task" h in
    match Sched.of_obj obj with None -> Api.status Kerr.einval | Some tcb -> f obj tcb
  in
  let task_delete args =
    let* h = Api.get_res args 0 in
    with_task h (fun obj tcb ->
        Instr.edge i_task 3;
        Sched.finish tcb;
        Kobj.delete obj;
        Api.ok_status)
  in
  let task_restart args =
    let* h = Api.get_res args 0 in
    with_task h (fun _ tcb ->
        Instr.edge i_task 4;
        Sched.resume tcb;
        Api.ok_status)
  in
  let usleep args =
    let* us = Api.get_int args 0 in
    let ticks = min 50 (clamp_int us / 1000) in
    Instr.cmp_i i_task 5 ticks 5;
    pump ctx (max 0 ticks);
    Api.ok_status
  in

  (* --- environment (bug #14) ----------------------------------------- *)
  let setenv args =
    let* name = Api.get_str args 0 in
    let* value = Api.get_str args 1 in
    if name = "" || String.contains name '=' then Api.status Kerr.einval
    else begin
      Instr.cmp_i i_env 0 (String.length name) (String.length value);
      let entries = (name, value) :: List.remove_assoc name !env in
      let needed = env_bytes entries in
      Instr.cmp_i i_env 1 needed env_arena_bytes;
      env := entries;
      (* BUG #14 (confirmed): the arena is grown past its fixed size;
         the write-through scribbles the next heap block and the env
         index rebuild trips over the damage. *)
      env_write_through entries;
      if needed > env_arena_bytes then begin
        Instr.edge i_env 2;
        ignore (Heap.used_bytes heap : int)
      end;
      Instr.edge i_env 3;
      Api.ok_status
    end
  in
  let unsetenv args =
    let* name = Api.get_str args 0 in
    Instr.cmp_i i_env 4 (String.length name) 8;
    if List.mem_assoc name !env then begin
      env := List.remove_assoc name !env;
      env_write_through !env;
      Instr.edge i_env 5;
      Api.ok_status
    end
    else Api.status Kerr.enoent
  in
  let getenv args =
    let* name = Api.get_str args 0 in
    match List.assoc_opt name !env with
    | Some v ->
      Instr.cmp_i i_env 6 (String.length v) 8;
      Api.ok_status
    | None ->
      Instr.edge i_env 7;
      Api.status Kerr.enoent
  in

  (* --- message queues (bug #16) --------------------------------------- *)
  let mq_open args =
    let* capacity = Api.get_int args 0 in
    let* msg_size = Api.get_int args 1 in
    Instr.cmp i_mq 0 capacity 8L;
    Instr.cmp i_mq 10 msg_size 32L;
    let* obj =
      Msgq.create ~reg ~heap ~name:"nxmq" ~capacity:(clamp_int capacity)
        ~item_size:(clamp_int msg_size)
    in
    Api.created ~kind:"msgq" ~handle:obj.Kobj.handle
  in
  let with_mq h f =
    let* obj = lookup "msgq" h in
    match Msgq.of_obj obj with None -> Api.status Kerr.einval | Some q -> f q
  in
  let mq_send args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_mq h (fun q ->
        Instr.cmp_i i_mq 1 (String.length data) 16;
        match Msgq.send q data with
        | Ok () ->
          Instr.edge i_mq 2;
          Api.ok_status
        | Error e ->
          Instr.edge i_mq 3;
          Api.status e)
  in
  let mq_receive args =
    let* h = Api.get_res args 0 in
    with_mq h (fun q ->
        match Msgq.recv q with
        | Ok _ ->
          Instr.edge i_mq 4;
          Api.ok_status
        | Error e ->
          Instr.edge i_mq 5;
          Api.status e)
  in
  let nxmq_timedsend args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    let* timeout_ms = Api.get_int args 2 in
    with_mq h (fun q ->
        Instr.cmp i_mq 6 timeout_ms 1000L;
        if Msgq.is_full q then begin
          (* The blocking path computes an absolute tick deadline in a
             32-bit int: BUG #16 wraps it negative, but only a deadline
             landing just past INT32_MAX survives the later sanity
             clamp — a narrow window that blind generation essentially
             never hits, while the traced comparison against the
             constant hands a guided fuzzer the target value. *)
          (* The compiler folds INT32_MAX / TICKS_PER_MS into a
             constant, so the traced comparison is against the input
             itself — which is what lets comparison-operand harvesting
             reconstruct the trigger. *)
          let wrap_bound = 21_474_836L (* INT32_MAX / 100 *) in
          Instr.cmp i_mq 7 timeout_ms wrap_bound;
          if
            Int64.compare timeout_ms wrap_bound > 0
            && Int64.compare timeout_ms 85_899_345L < 0
          then
            Panic.panic panic
              ~backtrace:
                [
                  "sched/mqueue/mq_timedsend.c : nxmq_timedsend : 338";
                  "sched/mqueue/mq_timedsend.c : nxmq_rtimedsend : 229";
                ]
              (Printf.sprintf "deadline overflow: timeout %Ld ms wrapped negative" timeout_ms)
          else begin
            Instr.edge i_mq 8;
            Api.status Kerr.etimedout
          end
        end
        else
          match Msgq.send q data with
          | Ok () ->
            Instr.edge i_mq 9;
            Api.ok_status
          | Error e -> Api.status e)
  in

  (* --- semaphores (bug #17) ------------------------------------------- *)
  let sem_init args =
    let* initial = Api.get_int args 0 in
    Instr.cmp i_sem 0 initial 1L;
    let* obj =
      Sem.create ~reg ~name:"nxsem" ~initial:(clamp_int initial) ~max_count:32
    in
    Api.created ~kind:"sem" ~handle:obj.Kobj.handle
  in
  let sem_post args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "sem" h in
    (match Sem.of_obj obj with
     | None -> Api.status Kerr.einval
     | Some s ->
       Instr.edge i_sem 1;
       to_status (Sem.give s))
  in
  let sem_destroy args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "sem" h in
    Instr.edge i_sem 2;
    Kobj.delete obj;
    Api.ok_status
  in
  let nxsem_trywait args =
    let* h = Api.get_res args 0 in
    (* BUG #17: the fast path skips the usual handle validation; a
       destroyed semaphore trips the DEBUGASSERT instead. *)
    match Kobj.lookup reg h with
    | None -> Api.status Kerr.enoent
    | Some obj when obj.Kobj.kind <> "sem" -> Api.status Kerr.einval
    | Some obj ->
      Instr.cmp_i i_sem 3 (Hashtbl.hash obj.Kobj.state land 0xF) 0;
      if obj.Kobj.state = Kobj.Deleted then begin
        Panic.kassert panic false
          (Printf.sprintf "nxsem_trywait: sem->crefs > 0 (handle %d destroyed)" h);
        Api.status Kerr.einval
      end
      else begin
        match Sem.of_obj obj with
        | None -> Api.status Kerr.einval
        | Some s ->
          Instr.cmp_i i_sem 4 (Sem.count s) 0;
          to_status (Sem.take s)
      end
  in

  (* --- POSIX timers (bug #18) ----------------------------------------- *)
  let timer_create args =
    let* clock_id = Api.get_int args 0 in
    let* sigev = Api.get_int args 1 in
    Instr.cmp i_timer 0 clock_id 0L;
    Instr.cmp i_timer 1 sigev 0L;
    let clock_id = clamp_int clock_id in
    let sigev = clamp_int sigev in
    if clock_id <> 0 && clock_id <> 1 && sigev <> 0 then
      (* BUG #18: a valid sigevent makes the allocation path run before
         the clock id is validated; the invalid id indexes the clock
         table out of bounds. *)
      Panic.panic panic
        ~backtrace:
          [
            "sched/timer/timer_create.c : timer_create : 204";
            "sched/timer/timer_allocate.c : timer_allocate : 101";
          ]
        (Printf.sprintf "clock table overrun: clockid %d with sigevent %d" clock_id sigev)
    else if clock_id <> 0 && clock_id <> 1 then Api.status Kerr.einval
    else begin
      let callback () =
        match Kobj.of_kind reg "sem" with
        | obj :: _ ->
          (match Sem.of_obj obj with
           | Some s -> ignore (Sem.give s : (unit, int64) result)
           | None -> ())
        | [] -> ()
      in
      let* obj =
        Swtimer.create ~reg ~wheel:ctx.wheel ~name:"nxtimer" ~kind:Swtimer.Periodic
          ~period:5 ~callback
      in
      Instr.edge i_timer 2;
      Api.created ~kind:"timer" ~handle:obj.Kobj.handle
    end
  in
  let with_timer h f =
    let* obj = lookup "timer" h in
    match Swtimer.of_obj obj with None -> Api.status Kerr.einval | Some tm -> f tm
  in
  let timer_settime args =
    let* h = Api.get_res args 0 in
    let* arm = Api.get_int args 1 in
    with_timer h (fun tm ->
        Instr.cmp i_timer 3 arm 1L;
        if Int64.compare arm 0L > 0 then Swtimer.start tm else Swtimer.stop tm;
        Api.ok_status)
  in
  let timer_delete args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "timer" h in
    with_timer h (fun tm ->
        Instr.edge i_timer 4;
        Swtimer.stop tm;
        Kobj.delete obj;
        Api.ok_status)
  in

  (* --- libc time (bugs #15, #19) --------------------------------------- *)
  let ram_lo = profile.Board.ram_base in
  let ram_hi = profile.Board.ram_base + profile.Board.ram_size in
  let gettimeofday args =
    let* tv_ptr = Api.get_int args 0 in
    let tv_ptr = clamp_int tv_ptr in
    Instr.cmp_i i_libc 0 tv_ptr ram_lo;
    if tv_ptr = 0 then Api.status Kerr.einval
    else if tv_ptr < ram_lo || tv_ptr + 8 > ram_hi then Api.status Kerr.einval
    else if tv_ptr mod 4 <> 0 then
      (* BUG #15: the struct store assumes word alignment; an unaligned
         pointer raises the alignment usage fault. *)
      Fault.usage ~address:tv_ptr "unaligned timeval store in gettimeofday"
    else begin
      Instr.edge i_libc 1;
      let ticks = Sched.ticks ctx.sched in
      Memory.write_u32 ram tv_ptr (Int32.of_int (ticks / 100));
      Memory.write_u32 ram (tv_ptr + 4) (Int32.of_int (ticks mod 100 * 10_000));
      Api.ok_status
    end
  in
  let clock_gettime args =
    let* clock_id = Api.get_int args 0 in
    Instr.cmp i_libc 2 clock_id 0L;
    if clock_id <> 0L && clock_id <> 1L then Api.status Kerr.einval
    else begin
      Instr.edge i_libc 3;
      Api.status (Int64.of_int (Sched.ticks ctx.sched))
    end
  in
  let clock_getres args =
    let* clock_id = Api.get_int args 0 in
    let* res_ptr = Api.get_int args 1 in
    let clock_id = clamp_int clock_id in
    let res_ptr = clamp_int res_ptr in
    Instr.cmp_i i_libc 4 clock_id 0;
    Instr.cmp_i i_libc 5 res_ptr 0;
    if clock_id <> 0 && clock_id <> 1 then begin
      if res_ptr = 0 then
        (* BUG #19: the EINVAL path writes the error detail through the
           result pointer before checking it for NULL. *)
        Fault.bus ~address:0 "NULL res pointer store in clock_getres error path"
      else Api.status Kerr.einval
    end
    else if res_ptr < ram_lo || res_ptr + 8 > ram_hi || res_ptr mod 4 <> 0 then
      Api.status Kerr.einval
    else begin
      Instr.edge i_libc 6;
      Memory.write_u32 ram res_ptr 0l;
      Memory.write_u32 ram (res_ptr + 4) 10_000_000l;
      Api.ok_status
    end
  in

  (* --- sys ------------------------------------------------------------ *)
  let uname _args =
    Instr.edge i_sys 0;
    Klog.info ~os:ctx.os_name "NuttX fc99353 12.5.1";
    Api.ok_status
  in
  let getpid _args =
    Instr.edge i_sys 1;
    Api.status 1L
  in

    let staged_entries =
    Statemach.entries ctx ~instr:(ctx.instr "nuttx/ioctlseq") ~prefix:"nx_ioctl"
      ~resource:"nx_device" ~salt:119
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "nuttx/i2c") ~prefix:"nx_i2c"
        ~resource:"i2c_dev" ~salt:130
  in

  let staged_entries =
    staged_entries @ install_irq ctx ~instr:(ctx.instr "nuttx/irq") ~prefix:"nx_gpio"
  in

  Api.make_table ~os:"NuttX"
    ([
      entry "task_create"
        [ ("priority", Api.A_int { min = 1L; max = 255L });
          ("stack_size", Api.A_int { min = 256L; max = 8192L });
          ("flavor", Api.A_int { min = 0L; max = 7L }) ]
        (`Resource "task") ~weight:3 ~doc:"Create a task" task_create;
      entry "task_delete" [ ("task", Api.A_res "task") ] `Status ~weight:1
        ~doc:"Delete a task" task_delete;
      entry "task_restart" [ ("task", Api.A_res "task") ] `Status ~weight:1
        ~doc:"Restart a task" task_restart;
      entry "usleep" [ ("usec", Api.A_int { min = 0L; max = 50000L }) ] `Status ~weight:2
        ~doc:"Sleep in microseconds" usleep;
      entry "setenv"
        [ ("name", Api.A_str { max_len = 48 }); ("value", Api.A_str { max_len = 96 }) ]
        `Status ~weight:3 ~doc:"Set an environment variable" setenv;
      entry "unsetenv" [ ("name", Api.A_str { max_len = 48 }) ] `Status ~weight:1
        ~doc:"Remove an environment variable" unsetenv;
      entry "getenv" [ ("name", Api.A_str { max_len = 48 }) ] `Status ~weight:2
        ~doc:"Look up an environment variable" getenv;
      entry "mq_open"
        [ ("capacity", Api.A_int { min = 1L; max = 16L });
          ("msg_size", Api.A_int { min = 1L; max = 64L }) ]
        (`Resource "msgq") ~weight:3 ~doc:"Open a POSIX message queue" mq_open;
      entry "mq_send"
        [ ("queue", Api.A_res "msgq"); ("data", Api.A_buf { max_len = 64 }) ]
        `Status ~weight:3 ~doc:"Send a message" mq_send;
      entry "mq_receive" [ ("queue", Api.A_res "msgq") ] `Status ~weight:2
        ~doc:"Receive a message" mq_receive;
      entry "nxmq_timedsend"
        [ ("queue", Api.A_res "msgq");
          ("data", Api.A_buf { max_len = 64 });
          ("timeout_ms", Api.A_int { min = 0L; max = 4294967295L }) ]
        `Status ~weight:2 ~doc:"Send with a timeout" nxmq_timedsend;
      entry "sem_init" [ ("initial", Api.A_int { min = 0L; max = 32L }) ] (`Resource "sem")
        ~weight:2 ~doc:"Initialise a semaphore" sem_init;
      entry "sem_post" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Post a semaphore" sem_post;
      entry "sem_destroy" [ ("sem", Api.A_res "sem") ] `Status ~weight:1
        ~doc:"Destroy a semaphore" sem_destroy;
      entry "nxsem_trywait" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Try to take a semaphore" nxsem_trywait;
      entry "timer_create"
        [ ("clock_id", Api.A_int { min = 0L; max = 16L });
          ("sigev", Api.A_int { min = 0L; max = 8L }) ]
        (`Resource "timer") ~weight:2 ~doc:"Create a POSIX timer" timer_create;
      entry "timer_settime"
        [ ("timer", Api.A_res "timer"); ("arm", Api.A_int { min = 0L; max = 1L }) ]
        `Status ~weight:2 ~doc:"Arm or disarm a timer" timer_settime;
      entry "timer_delete" [ ("timer", Api.A_res "timer") ] `Status ~weight:1
        ~doc:"Delete a timer" timer_delete;
      entry "gettimeofday"
        [ ("tv_ptr",
           Api.A_ptr
             { base = profile.Board.ram_base; size = profile.Board.ram_size; null_ok = true })
        ]
        `Status ~weight:2 ~doc:"Read the wall clock into a user struct" gettimeofday;
      entry "clock_gettime" [ ("clock_id", Api.A_int { min = 0L; max = 16L }) ] `Status
        ~weight:2 ~doc:"Read a clock" clock_gettime;
      entry "clock_getres"
        [ ("clock_id", Api.A_int { min = 0L; max = 16L });
          ("res_ptr",
           Api.A_ptr
             { base = profile.Board.ram_base; size = profile.Board.ram_size; null_ok = true })
        ]
        `Status ~weight:2 ~doc:"Query clock resolution" clock_getres;
      entry "nx_open"
        [ ("path", Api.A_str { max_len = 24 });
          ("flags", Api.A_flags [ ("creat", 1L); ("wronly", 2L) ]) ]
        (`Resource "fd") ~weight:3 ~doc:"Open a file on the RAM filesystem" nx_open;
      entry "nx_write"
        [ ("fd", Api.A_res "fd"); ("data", Api.A_buf { max_len = 128 }) ]
        `Status ~weight:3 ~doc:"Append to an open file" nx_write;
      entry "nx_read"
        [ ("fd", Api.A_res "fd"); ("max", Api.A_int { min = 0L; max = 4096L }) ]
        `Status ~weight:2 ~doc:"Read from an open file" nx_read;
      entry "nx_close" [ ("fd", Api.A_res "fd") ] `Status ~weight:2
        ~doc:"Close a descriptor" nx_close;
      entry "nx_unlink" [ ("path", Api.A_str { max_len = 24 }) ] `Status ~weight:1
        ~doc:"Remove a file" nx_unlink;
      entry "uname" [] `Status ~weight:1 ~doc:"Print system identification" uname;
      entry "getpid" [] `Status ~weight:1 ~doc:"Current task id" getpid;
    ]
     @ staged_entries)


let spec =
  {
    Osbuild.os_name = "NuttX";
    version = "fc99353";
    base_kernel_bytes = 177_000;
    modules =
      [
        ("nuttx/task", 24);
        ("nuttx/env", 24);
        ("nuttx/mq", 24);
        ("nuttx/sem", 16);
        ("nuttx/timer", 24);
        ("nuttx/libc", 24);
        ("nuttx/sys", 16);
        ("nuttx/fs", 16);
        ("nuttx/ioctlseq", Statemach.site_count);
        ("nuttx/i2c", Statemach.site_count);
        ("nuttx/irq", Oscommon.irq_site_count);
      ];
    banner = "NuttShell (NSH) NuttX-12.5.1 fc99353";
    kernel_patches = [];
    install;
  }
