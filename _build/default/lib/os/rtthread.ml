open Eof_hw
open Eof_rtos
open Oscommon
module Instr = Eof_rtos.Instr

type smem_block = { addr : int; payload_size : int }

type Kobj.payload += Smem of smem_block

type Kobj.payload += Heap_block of { addr : int }

type service = { svc_handle : int; mutable svc_deleted : bool }

type Kobj.payload += Service of service

let install (ctx : Osbuild.ctx) =
  let reg = ctx.reg in
  let panic = ctx.panic in
  let heap = ctx.heap in
  let ram = Board.ram ctx.board in
  let i_thread = ctx.instr "rtt/thread" in
  let i_object = ctx.instr "rtt/object" in
  let i_service = ctx.instr "rtt/service" in
  let i_mempool = ctx.instr "rtt/mempool" in
  let i_heap = ctx.instr "rtt/heap" in
  let i_smem = ctx.instr "rtt/smem" in
  let i_ipc = ctx.instr "rtt/ipc" in
  let i_mq = ctx.instr "rtt/mq" in
  let i_serial = ctx.instr "rtt/serial" in
  let i_sal = ctx.instr "rtt/sal" in
  let i_timer = ctx.instr "rtt/timer" in
  let i_sys = ctx.instr "rtt/sys" in
  let entry name args ret ~weight ~doc handler =
    { Api.name; args; ret; doc; weight; handler }
  in
  let lookup kind h = Kobj.lookup_active reg h ~kind in

  (* Static object slots for rt_object_init (bug #8). *)
  let static_slots = Array.make 8 false in
  (* The kernel services list keeps nodes for unregistered services —
     the dangling-node state of bug #6. *)
  let services : service list ref = ref [] in

  (* The console serial device every rt_kprintf goes through. *)
  let console_obj = Eof_apps.Serial.create ~reg ~name:"uart0" ~open_flag:Eof_apps.Serial.flag_stream in
  let console_dev = Option.get (Eof_apps.Serial.of_obj console_obj) in
  let console_write s =
    ignore (Eof_apps.Serial.write ~panic ~instr:i_serial console_dev s : (int, int64) result)
  in
  let sal = Eof_apps.Sal.create ~reg ~instr:i_sal ~console:console_write in

  (* --- heap with _heap_lock (bug #9) -------------------------------- *)
  let heap_lock_or_panic ~from_timer () =
    match Heap.lock heap with
    | Ok () -> ()
    | Error `Already_locked ->
      Panic.panic panic
        ~backtrace:
          [
            "src/kservice.c : _heap_lock : 112";
            (if from_timer then "src/timer.c : rt_timer_check : 601"
             else "src/kservice.c : rt_malloc : 178");
          ]
        "_heap_lock re-entered from timer context"
  in
  let malloc_from_timer () =
    (* A driver timer callback allocating scratch memory. *)
    heap_lock_or_panic ~from_timer:true ();
    (match Heap.alloc heap 16 with
     | Some a -> ignore (Heap.free heap a : (unit, string) result)
     | None -> ());
    Heap.unlock heap
  in
  let rt_malloc args =
    let* size = Api.get_int args 0 in
    Instr.cmp i_heap 0 size 64L;
    let size = clamp_int size in
    if size < 0 || size > 8192 then Api.status Kerr.einval
    else begin
      heap_lock_or_panic ~from_timer:false ();
      let result = Heap.alloc heap size in
      Heap.unlock heap;
      match result with
      | None ->
        Instr.edge i_heap 1;
        Api.status Kerr.enomem
      | Some addr ->
        Instr.edge i_heap 2;
        let obj = Kobj.register reg ~kind:"rtblock" ~name:"rtblock" (Heap_block { addr }) in
        Api.created ~kind:"rtblock" ~handle:obj.Kobj.handle
    end
  in
  let rt_free args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "rtblock" h in
    match obj.Kobj.payload with
    | Heap_block { addr } ->
      Instr.edge i_heap 3;
      heap_lock_or_panic ~from_timer:false ();
      (* The slow path: coalescing yields a tick with the lock held —
         which is when a timer-context allocation re-enters (bug #9). *)
      pump ctx 1;
      let result = Heap.free heap addr in
      Heap.unlock heap;
      Kobj.delete obj;
      (match result with
       | Ok () -> Api.ok_status
       | Error _ ->
         Instr.edge i_heap 4;
         Api.status Kerr.einval)
    | _ -> Api.status Kerr.einval
  in
  let rt_memheap_info _args =
    Instr.cmp_i i_heap 5 (Heap.used_bytes heap) (Heap.free_bytes heap);
    Api.status (Int64.of_int (Heap.free_bytes heap))
  in

  (* --- threads ------------------------------------------------------ *)
  let rt_thread_create args =
    let* prio = Api.get_int args 0 in
    let* stack = Api.get_int args 1 in
    let* flavor = Api.get_int args 2 in
    Instr.cmp i_thread 0 prio 10L;
    Instr.cmp i_thread 1 stack 512L;
    let* obj =
      spawn_worker ctx ~name:"rtthread" ~priority:(clamp_int prio)
        ~stack_size:(clamp_int stack) ~flavor:(clamp_int flavor)
    in
    (* RT-Thread threads start suspended until rt_thread_startup. *)
    (match Sched.of_obj obj with Some tcb -> Sched.suspend tcb | None -> ());
    Instr.edge i_thread 2;
    Api.created ~kind:"thread" ~handle:obj.Kobj.handle
  in
  let with_task h f =
    let* obj = lookup "task" h in
    match Sched.of_obj obj with None -> Api.status Kerr.einval | Some tcb -> f obj tcb
  in
  let rt_thread_startup args =
    let* h = Api.get_res args 0 in
    with_task h (fun _ tcb ->
        Instr.edge i_thread 3;
        Sched.resume tcb;
        Api.ok_status)
  in
  let rt_thread_delete args =
    let* h = Api.get_res args 0 in
    with_task h (fun obj tcb ->
        Instr.edge i_thread 4;
        Sched.finish tcb;
        Kobj.delete obj;
        Api.ok_status)
  in
  let rt_thread_mdelay args =
    let* ms = Api.get_int args 0 in
    let ms = max 0 (min 50 (clamp_int ms)) in
    Instr.cmp_i i_thread 5 ms 10;
    pump ctx ms;
    Api.ok_status
  in

  (* --- object subsystem (bugs #5, #8) ------------------------------- *)
  let rt_object_detach args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "event" h in
    Instr.edge i_object 0;
    Kobj.detach obj;
    Api.ok_status
  in
  let hang_site = Instr.site_addr i_object 7 in
  let rt_object_get_type args =
    let* h = Api.get_res args 0 in
    match Kobj.lookup reg h with
    | None -> Api.status Kerr.enoent
    | Some obj ->
      Instr.cmp_i i_object 1 (Hashtbl.hash obj.Kobj.kind land 0xFF) 0;
      if obj.Kobj.state = Kobj.Detached then begin
        (* BUG #5: the type query walks the object container list, which
           no longer holds the detached object; the RT_ASSERT reports and
           the retry loop never terminates — a classic hang the PC-stall
           watchdog must catch. *)
        Panic.kassert panic false
          (Printf.sprintf "rt_object_get_type: object %d in container list" h);
        let rec spin () =
          Eof_exec.Target.site hang_site;
          Eof_exec.Target.cycles 20;
          spin ()
        in
        spin ()
      end
      else begin
        Instr.edge i_object 2;
        Api.status 5L (* RT_Object_Class_Event *)
      end
  in
  let rt_object_init args =
    let* slot = Api.get_int args 0 in
    let slot = clamp_int slot in
    if slot < 0 || slot >= Array.length static_slots then Api.status Kerr.einval
    else begin
      Instr.cmp_i i_object 3 slot 0;
      (* BUG #8: double initialisation corrupts the container list; the
         assert reports it but the call still "succeeds". *)
      Panic.kassert panic
        (not static_slots.(slot))
        (Printf.sprintf "rt_object_init: static object slot %d already initialised" slot);
      static_slots.(slot) <- true;
      Instr.edge i_object 4;
      Api.ok_status
    end
  in

  (* --- kernel services list (bug #6) -------------------------------- *)
  let rt_service_register _args =
    Instr.edge i_service 0;
    let svc = { svc_handle = 0; svc_deleted = false } in
    let obj = Kobj.register reg ~kind:"service" ~name:"rtsvc" (Service svc) in
    let svc = { svc with svc_handle = obj.Kobj.handle } in
    obj.Kobj.payload <- Service svc;
    services := svc :: !services;
    Api.created ~kind:"service" ~handle:obj.Kobj.handle
  in
  let rt_service_unregister args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "service" h in
    (match obj.Kobj.payload with
     | Service svc ->
       Instr.edge i_service 1;
       (* The node is marked dead and the object deleted, but the node
          stays threaded on the services list. *)
       svc.svc_deleted <- true;
       Kobj.delete obj;
       Api.ok_status
     | _ -> Api.status Kerr.einval)
  in
  let rt_service_poll _args =
    Instr.cmp_i i_service 2 (List.length !services) 0;
    (* BUG #6: rt_list_isempty dereferences each node's list head; a
       node whose service was unregistered is a dangling pointer. *)
    List.iter
      (fun svc ->
        if svc.svc_deleted then
          Panic.panic panic
            ~backtrace:
              [
                "include/rtservice.h : rt_list_isempty : 144";
                "src/components.c : rt_service_poll : 88";
              ]
            (Printf.sprintf "dangling service-list node (handle %d)" svc.svc_handle)
        else Instr.edge i_service 3)
      !services;
    Api.ok_status
  in

  (* --- memory pools (bug #7) ---------------------------------------- *)
  let rt_mp_create args =
    let* block_size = Api.get_int args 0 in
    let* block_count = Api.get_int args 1 in
    Instr.cmp i_mempool 0 block_size 16L;
    Instr.cmp i_mempool 1 block_count 4L;
    let block_size = clamp_int block_size in
    let block_count = clamp_int block_count in
    if block_size < 0 || block_size > 128 || block_count < 1 || block_count > 16 then
      Api.status Kerr.einval
    else
      (* BUG latent half of #7: geometry is NOT validated, so a
         zero-byte block size creates a pool with stride 0. *)
      let* obj =
        Mempool.create_unchecked ~reg ~heap ~name:"rtmp" ~block_size ~block_count
      in
      Api.created ~kind:"mempool" ~handle:obj.Kobj.handle
  in
  let with_pool h f =
    let* obj = lookup "mempool" h in
    match Mempool.of_obj obj with None -> Api.status Kerr.einval | Some p -> f p
  in
  let rt_mp_alloc args =
    let* h = Api.get_res args 0 in
    with_pool h (fun pool ->
        Instr.cmp_i i_mempool 2 (Mempool.available pool) 0;
        (* BUG #7 fires inside the substrate on stride-0 pools. *)
        match Mempool.alloc pool with
        | Ok addr ->
          Instr.edge i_mempool 3;
          Api.status (Int64.of_int addr)
        | Error e ->
          Instr.edge i_mempool 4;
          Api.status e)
  in
  let rt_mp_free args =
    let* h = Api.get_res args 0 in
    let* addr = Api.get_int args 1 in
    with_pool h (fun pool ->
        Instr.edge i_mempool 5;
        to_status (Mempool.free_block pool (clamp_int addr)))
  in

  (* --- small memory blocks (bug #11) -------------------------------- *)
  let rt_smem_alloc args =
    let* size = Api.get_int args 0 in
    let size = clamp_int size in
    Instr.cmp_i i_smem 0 size 16;
    if size < 8 || size > 64 then Api.status Kerr.einval
    else begin
      match Heap.alloc heap size with
      | None -> Api.status Kerr.enomem
      | Some addr ->
        Instr.edge i_smem 1;
        let payload_size = (size + 7) / 8 * 8 in
        let obj =
          Kobj.register reg ~kind:"smem" ~name:"smem" (Smem { addr; payload_size })
        in
        Api.created ~kind:"smem" ~handle:obj.Kobj.handle
    end
  in
  let rt_smem_setname args =
    let* h = Api.get_res args 0 in
    let* name = Api.get_str args 1 in
    let* obj = lookup "smem" h in
    match obj.Kobj.payload with
    | Smem { addr; payload_size } ->
      Instr.cmp_i i_smem 2 (String.length name) payload_size;
      (* BUG #11 (confirmed): the name is copied with no length check;
         a long name runs past the block payload into the next block's
         header, and the name-table update's heap walk then trips over
         the scribbled magic. *)
      Memory.write_bytes ram ~addr (Bytes.of_string name);
      obj.Kobj.name <- name;
      Instr.edge i_smem 3;
      ignore (Heap.used_bytes heap : int);
      Api.ok_status
    | _ -> Api.status Kerr.einval
  in
  let rt_smem_free args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "smem" h in
    match obj.Kobj.payload with
    | Smem { addr; _ } ->
      Instr.edge i_smem 4;
      Kobj.delete obj;
      to_status
        (match Heap.free heap addr with Ok () -> Ok () | Error _ -> Error Kerr.einval)
    | _ -> Api.status Kerr.einval
  in

  (* --- IPC: events (bug #10), semaphores, mutexes ------------------- *)
  let rt_event_create _args =
    Instr.edge i_ipc 0;
    let obj = Event.create ~reg ~name:"rtevent" in
    Api.created ~kind:"event" ~handle:obj.Kobj.handle
  in
  let rt_event_delete args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "event" h in
    Instr.edge i_ipc 1;
    Kobj.delete obj;
    Api.ok_status
  in
  let rt_event_send args =
    let* h = Api.get_res args 0 in
    let* bits = Api.get_int args 1 in
    (* BUG #10: the send path takes the object pointer without checking
       the container state; a deleted event's waiter list is junk. *)
    (match Kobj.lookup reg h with
     | None -> Api.status Kerr.enoent
     | Some obj when obj.Kobj.kind <> "event" -> Api.status Kerr.einval
     | Some obj ->
       if obj.Kobj.state = Kobj.Deleted then
         Panic.panic panic
           ~backtrace:
             [
               "src/ipc.c : rt_event_send : 1537";
               "src/ipc.c : _ipc_list_resume_all : 260";
             ]
           (Printf.sprintf "waiter-queue corruption: rt_event_send to deleted event %d" h)
       else begin
         match Event.of_obj obj with
         | None -> Api.status Kerr.einval
         | Some e ->
           Instr.cmp i_ipc 2 bits 0xFF00L;
           Event.send e (clamp_int bits);
           Api.ok_status
       end)
  in
  let rt_event_recv args =
    let* h = Api.get_res args 0 in
    let* mask = Api.get_int args 1 in
    let* opts = Api.get_int args 2 in
    let* obj = lookup "event" h in
    (match Event.of_obj obj with
     | None -> Api.status Kerr.einval
     | Some e ->
       Instr.cmp i_ipc 3 mask 0xFFL;
       let all = Int64.logand opts 1L <> 0L in
       let clear = Int64.logand opts 2L <> 0L in
       (match Event.recv e ~mask:(clamp_int mask) ~all ~clear with
        | Ok got ->
          Instr.edge i_ipc 4;
          Api.status (Int64.of_int got)
        | Error err ->
          Instr.edge i_ipc 5;
          Api.status err))
  in
  let rt_sem_create args =
    let* initial = Api.get_int args 0 in
    Instr.cmp i_ipc 6 initial 1L;
    let* obj =
      Sem.create ~reg ~name:"rtsem" ~initial:(clamp_int initial) ~max_count:16
    in
    Api.created ~kind:"sem" ~handle:obj.Kobj.handle
  in
  let with_sem h f =
    let* obj = lookup "sem" h in
    match Sem.of_obj obj with None -> Api.status Kerr.einval | Some s -> f s
  in
  let rt_sem_take args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.cmp_i i_ipc 7 (Sem.count s) 0;
        to_status (Sem.take s))
  in
  let rt_sem_release args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.edge i_ipc 8;
        to_status (Sem.give s))
  in
  let rt_mutex_create _args =
    Instr.edge i_ipc 9;
    let obj = Mutex.create ~reg ~name:"rtmutex" in
    Api.created ~kind:"mutex" ~handle:obj.Kobj.handle
  in
  let with_mutex h f =
    let* obj = lookup "mutex" h in
    match Mutex.of_obj obj with None -> Api.status Kerr.einval | Some m -> f m
  in
  let rt_mutex_take args =
    let* h = Api.get_res args 0 in
    with_mutex h (fun m ->
        Instr.edge i_ipc 10;
        to_status (Mutex.lock m ~owner:0))
  in
  let rt_mutex_release args =
    let* h = Api.get_res args 0 in
    with_mutex h (fun m ->
        Instr.edge i_ipc 11;
        to_status (Mutex.unlock m ~owner:0))
  in

  (* --- mail queues --------------------------------------------------- *)
  let rt_mq_create args =
    let* capacity = Api.get_int args 0 in
    let* msg_size = Api.get_int args 1 in
    Instr.cmp i_mq 0 capacity 8L;
    Instr.cmp i_mq 6 msg_size 32L;
    let* obj =
      Msgq.create ~reg ~heap ~name:"rtmq" ~capacity:(clamp_int capacity)
        ~item_size:(clamp_int msg_size)
    in
    Api.created ~kind:"msgq" ~handle:obj.Kobj.handle
  in
  let with_mq h f =
    let* obj = lookup "msgq" h in
    match Msgq.of_obj obj with None -> Api.status Kerr.einval | Some q -> f q
  in
  let rt_mq_send args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_mq h (fun q ->
        Instr.cmp_i i_mq 1 (String.length data) 16;
        match Msgq.send q data with
        | Ok () ->
          Instr.edge i_mq 2;
          Api.ok_status
        | Error e ->
          Instr.edge i_mq 3;
          Api.status e)
  in
  let rt_mq_recv args =
    let* h = Api.get_res args 0 in
    with_mq h (fun q ->
        match Msgq.recv q with
        | Ok _ ->
          Instr.edge i_mq 4;
          Api.ok_status
        | Error e ->
          Instr.edge i_mq 5;
          Api.status e)
  in

  (* --- serial device framework (bug #12) ---------------------------- *)
  let rt_serial_ctrl args =
    let* cmd = Api.get_int args 0 in
    Instr.cmp i_serial 4 cmd 0L;
    (match Int64.to_int (Int64.logand cmd 3L) with
     | 1 ->
       (* Detach the console: logging now holds a stale pointer. *)
       Instr.edge i_serial 5;
       Eof_apps.Serial.unregister console_dev;
       Api.ok_status
     | 2 ->
       Instr.edge i_serial 6;
       Eof_apps.Serial.reregister console_dev;
       Api.ok_status
     | _ -> Api.status Kerr.einval)
  in
  let rt_device_write args =
    let* data = Api.get_buf args 0 in
    Instr.cmp_i i_serial 7 (String.length data) 8;
    match Eof_apps.Serial.write ~panic ~instr:i_serial console_dev data with
    | Ok n -> Api.status (Int64.of_int n)
    | Error e -> Api.status e
  in

  (* --- socket abstraction layer (the case-study entry point) -------- *)
  let syz_create_bind_socket args =
    let* domain = Api.get_int args 0 in
    let* sock_type = Api.get_int args 1 in
    let* protocol = Api.get_int args 2 in
    let* port = Api.get_int args 3 in
    (* Pseudo-syscall from Figure 6: socket() then bind(). The socket()
       call logs over the console — the path that dies on a stale serial
       device (bug #12). *)
    let* obj =
      Eof_apps.Sal.socket sal ~domain:(clamp_int domain) ~sock_type:(clamp_int sock_type)
        ~protocol:(clamp_int protocol)
    in
    match Eof_apps.Sal.of_obj obj with
    | None -> Api.status Kerr.einval
    | Some sock ->
      let _ = Eof_apps.Sal.bind sal sock ~port:(clamp_int port) in
      Api.created ~kind:"socket" ~handle:obj.Kobj.handle
  in
  let with_sock h f =
    let* obj = lookup "socket" h in
    match Eof_apps.Sal.of_obj obj with None -> Api.status Kerr.einval | Some s -> f s
  in
  let sal_listen args =
    let* h = Api.get_res args 0 in
    let* backlog = Api.get_int args 1 in
    with_sock h (fun sock -> to_status (Eof_apps.Sal.listen sal sock ~backlog:(clamp_int backlog)))
  in
  let sal_sendto args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_sock h (fun sock ->
        match Eof_apps.Sal.sendto sal sock data with
        | Ok n -> Api.status (Int64.of_int n)
        | Error e -> Api.status e)
  in
  let sal_closesocket args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "socket" h in
    with_sock h (fun sock ->
        let r = Eof_apps.Sal.close sal sock in
        Kobj.delete obj;
        to_status r)
  in

  (* --- timers (the re-entry trigger for bug #9) ---------------------- *)
  let rt_timer_create args =
    let* period = Api.get_int args 0 in
    let* flags = Api.get_int args 1 in
    Instr.cmp i_timer 0 period 10L;
    let periodic = Int64.logand flags 1L <> 0L in
    let allocating = Int64.logand flags 2L <> 0L in
    let callback () =
      if allocating then malloc_from_timer ()
      else
        match Kobj.of_kind reg "event" with
        | obj :: _ ->
          (match Event.of_obj obj with Some e -> Event.send e 0x8000 | None -> ())
        | [] -> ()
    in
    let* obj =
      Swtimer.create ~reg ~wheel:ctx.wheel ~name:"rttimer"
        ~kind:(if periodic then Swtimer.Periodic else Swtimer.Oneshot)
        ~period:(max 1 (clamp_int period))
        ~callback
    in
    Api.created ~kind:"timer" ~handle:obj.Kobj.handle
  in
  let with_timer h f =
    let* obj = lookup "timer" h in
    match Swtimer.of_obj obj with None -> Api.status Kerr.einval | Some tm -> f tm
  in
  let rt_timer_start args =
    let* h = Api.get_res args 0 in
    with_timer h (fun tm ->
        Instr.edge i_timer 1;
        Swtimer.start tm;
        Api.ok_status)
  in
  let rt_timer_stop args =
    let* h = Api.get_res args 0 in
    with_timer h (fun tm ->
        Instr.edge i_timer 2;
        Swtimer.stop tm;
        Api.ok_status)
  in

  (* --- sys ----------------------------------------------------------- *)
  let rt_kprintf args =
    let* s = Api.get_str args 0 in
    Instr.cmp_i i_sys 0 (String.length s) 16;
    (* rt_kprintf goes through the console device, like the case study. *)
    console_write (Printf.sprintf "[RT-Thread] %s\n" s);
    Api.ok_status
  in
  let rt_tick_get _args =
    Instr.edge i_sys 1;
    Api.status (Int64.of_int (Sched.ticks ctx.sched))
  in

    let staged_entries =
    Statemach.entries ctx ~instr:(ctx.instr "rtt/devcfg") ~prefix:"rt_devcfg"
      ~resource:"rt_device" ~salt:85
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "rtt/can") ~prefix:"rt_can"
        ~resource:"can_dev" ~salt:95
  in

  let staged_entries =
    staged_entries @ install_irq ctx ~instr:(ctx.instr "rtt/irq") ~prefix:"rt_pin"
  in

  Api.make_table ~os:"RT-Thread"
    ([
      entry "rt_thread_create"
        [ ("priority", Api.A_int { min = 0L; max = 31L });
          ("stack_size", Api.A_int { min = 256L; max = 8192L });
          ("flavor", Api.A_int { min = 0L; max = 7L }) ]
        (`Resource "thread") ~weight:3 ~doc:"Create a thread (starts suspended)"
        rt_thread_create;
      entry "rt_thread_startup" [ ("thread", Api.A_res "thread") ] `Status ~weight:2
        ~doc:"Start a created thread" rt_thread_startup;
      entry "rt_thread_delete" [ ("thread", Api.A_res "thread") ] `Status ~weight:1
        ~doc:"Delete a thread" rt_thread_delete;
      entry "rt_thread_mdelay" [ ("ms", Api.A_int { min = 0L; max = 50L }) ] `Status
        ~weight:2 ~doc:"Delay, running the scheduler" rt_thread_mdelay;
      entry "rt_object_detach" [ ("object", Api.A_res "event") ] `Status ~weight:3
        ~doc:"Detach a static object from its container" rt_object_detach;
      entry "rt_object_get_type" [ ("object", Api.A_res "event") ] `Status ~weight:3
        ~doc:"Query an object's type tag" rt_object_get_type;
      entry "rt_object_init" [ ("slot", Api.A_int { min = 0L; max = 7L }) ] `Status
        ~weight:2 ~doc:"Initialise a static object slot" rt_object_init;
      entry "rt_service_register" [] (`Resource "service") ~weight:2
        ~doc:"Register a kernel service" rt_service_register;
      entry "rt_service_unregister" [ ("service", Api.A_res "service") ] `Status ~weight:1
        ~doc:"Unregister a kernel service" rt_service_unregister;
      entry "rt_service_poll" [] `Status ~weight:2 ~doc:"Poll the kernel services list"
        rt_service_poll;
      entry "rt_mp_create"
        [ ("block_size", Api.A_int { min = 0L; max = 128L });
          ("block_count", Api.A_int { min = 1L; max = 16L }) ]
        (`Resource "mempool") ~weight:2 ~doc:"Create a fixed-block memory pool" rt_mp_create;
      entry "rt_mp_alloc" [ ("pool", Api.A_res "mempool") ] `Status ~weight:2
        ~doc:"Allocate a block from a pool" rt_mp_alloc;
      entry "rt_mp_free"
        [ ("pool", Api.A_res "mempool"); ("addr", Api.A_int { min = 0L; max = 4294967295L }) ]
        `Status ~weight:1 ~doc:"Return a block to a pool" rt_mp_free;
      entry "rt_malloc" [ ("size", Api.A_int { min = 0L; max = 8192L }) ]
        (`Resource "rtblock") ~weight:3 ~doc:"Allocate from the system heap" rt_malloc;
      entry "rt_free" [ ("block", Api.A_res "rtblock") ] `Status ~weight:2
        ~doc:"Free a heap block" rt_free;
      entry "rt_memheap_info" [] `Status ~weight:1 ~doc:"Report heap statistics"
        rt_memheap_info;
      entry "rt_smem_alloc" [ ("size", Api.A_int { min = 8L; max = 64L }) ]
        (`Resource "smem") ~weight:2 ~doc:"Allocate a small-memory block" rt_smem_alloc;
      entry "rt_smem_setname"
        [ ("block", Api.A_res "smem"); ("name", Api.A_str { max_len = 32 }) ]
        `Status ~weight:2 ~doc:"Label a small-memory block" rt_smem_setname;
      entry "rt_smem_free" [ ("block", Api.A_res "smem") ] `Status ~weight:1
        ~doc:"Free a small-memory block" rt_smem_free;
      entry "rt_event_create" [] (`Resource "event") ~weight:2 ~doc:"Create an event set"
        rt_event_create;
      entry "rt_event_delete" [ ("event", Api.A_res "event") ] `Status ~weight:2
        ~doc:"Delete an event set" rt_event_delete;
      entry "rt_event_send"
        [ ("event", Api.A_res "event"); ("bits", Api.A_int { min = 0L; max = 65535L }) ]
        `Status ~weight:2 ~doc:"Send event bits" rt_event_send;
      entry "rt_event_recv"
        [ ("event", Api.A_res "event");
          ("mask", Api.A_int { min = 1L; max = 65535L });
          ("opts", Api.A_flags [ ("and", 1L); ("clear", 2L) ]) ]
        `Status ~weight:2 ~doc:"Receive event bits" rt_event_recv;
      entry "rt_sem_create" [ ("initial", Api.A_int { min = 0L; max = 16L }) ]
        (`Resource "sem") ~weight:2 ~doc:"Create a semaphore" rt_sem_create;
      entry "rt_sem_take" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Take a semaphore" rt_sem_take;
      entry "rt_sem_release" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Release a semaphore" rt_sem_release;
      entry "rt_mutex_create" [] (`Resource "mutex") ~weight:1 ~doc:"Create a mutex"
        rt_mutex_create;
      entry "rt_mutex_take" [ ("mutex", Api.A_res "mutex") ] `Status ~weight:1
        ~doc:"Take a mutex" rt_mutex_take;
      entry "rt_mutex_release" [ ("mutex", Api.A_res "mutex") ] `Status ~weight:1
        ~doc:"Release a mutex" rt_mutex_release;
      entry "rt_mq_create"
        [ ("capacity", Api.A_int { min = 1L; max = 32L });
          ("msg_size", Api.A_int { min = 1L; max = 64L }) ]
        (`Resource "msgq") ~weight:2 ~doc:"Create a mail queue" rt_mq_create;
      entry "rt_mq_send"
        [ ("queue", Api.A_res "msgq"); ("data", Api.A_buf { max_len = 64 }) ]
        `Status ~weight:2 ~doc:"Send mail" rt_mq_send;
      entry "rt_mq_recv" [ ("queue", Api.A_res "msgq") ] `Status ~weight:2
        ~doc:"Receive mail" rt_mq_recv;
      entry "rt_serial_ctrl" [ ("cmd", Api.A_flags [ ("detach", 1L); ("attach", 2L) ]) ]
        `Status ~weight:1 ~doc:"Console serial device control" rt_serial_ctrl;
      entry "rt_device_write" [ ("data", Api.A_buf { max_len = 64 }) ] `Status ~weight:2
        ~doc:"Write to the console serial device" rt_device_write;
      entry "syz_create_bind_socket"
        [ ("domain", Api.A_int { min = 0L; max = 48136L });
          ("type", Api.A_int { min = 0L; max = 4L });
          ("protocol", Api.A_int { min = 0L; max = 257L });
          ("port", Api.A_int { min = 0L; max = 65535L }) ]
        (`Resource "socket") ~weight:3
        ~doc:"Pseudo-syscall: create a socket and bind it" syz_create_bind_socket;
      entry "sal_listen"
        [ ("socket", Api.A_res "socket"); ("backlog", Api.A_int { min = 0L; max = 128L }) ]
        `Status ~weight:1 ~doc:"Listen on a stream socket" sal_listen;
      entry "sal_sendto"
        [ ("socket", Api.A_res "socket"); ("data", Api.A_buf { max_len = 256 }) ]
        `Status ~weight:2 ~doc:"Transmit a payload" sal_sendto;
      entry "sal_closesocket" [ ("socket", Api.A_res "socket") ] `Status ~weight:1
        ~doc:"Close a socket" sal_closesocket;
      entry "rt_timer_create"
        [ ("period", Api.A_int { min = 1L; max = 20L });
          ("flags", Api.A_flags [ ("periodic", 1L); ("allocating", 2L) ]) ]
        (`Resource "timer") ~weight:2 ~doc:"Create a software timer" rt_timer_create;
      entry "rt_timer_start" [ ("timer", Api.A_res "timer") ] `Status ~weight:2
        ~doc:"Start a timer" rt_timer_start;
      entry "rt_timer_stop" [ ("timer", Api.A_res "timer") ] `Status ~weight:1
        ~doc:"Stop a timer" rt_timer_stop;
      entry "rt_kprintf" [ ("text", Api.A_str { max_len = 64 }) ] `Status ~weight:1
        ~doc:"Print via the kernel console" rt_kprintf;
      entry "rt_tick_get" [] `Status ~weight:1 ~doc:"Read the kernel tick" rt_tick_get;
    ]
     @ staged_entries)


let spec =
  {
    Osbuild.os_name = "RT-Thread";
    version = "2f55990";
    base_kernel_bytes = 156_000;
    modules =
      [
        ("rtt/thread", 32);
        ("rtt/object", 24);
        ("rtt/service", 16);
        ("rtt/mempool", 16);
        ("rtt/heap", 32);
        ("rtt/smem", 16);
        ("rtt/ipc", 32);
        ("rtt/mq", 16);
        ("rtt/serial", Eof_apps.Serial.site_count);
        ("rtt/sal", Eof_apps.Sal.site_count);
        ("rtt/timer", 16);
        ("rtt/sys", 16);
        ("rtt/devcfg", Statemach.site_count);
        ("rtt/can", Statemach.site_count);
        ("rtt/irq", Oscommon.irq_site_count);
      ];
    banner = " \\ | /\n- RT -     Thread Operating System\n / | \\     4.1.2 build 2f55990";
    kernel_patches = [];
    install;
  }
