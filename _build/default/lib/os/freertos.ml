open Eof_hw
open Eof_rtos
open Oscommon
module Instr = Eof_rtos.Instr

type Kobj.payload += Port_block of { addr : int }

let http_module = "frt/http"

let json_module = "frt/json"

(* The backup partition table lives one sector into the kernel blob. *)
let backup_table_blob_offset = 0x4000

let backup_table_flash_offset = Osbuild.bootloader_bytes + backup_table_blob_offset

let install (ctx : Osbuild.ctx) =
  let reg = ctx.reg in
  let panic = ctx.panic in
  let heap = ctx.heap in
  let flash_mem = Flash.mem (Board.flash ctx.board) in
  let flash_base = (Board.profile ctx.board).Board.flash_base in
  let i_task = ctx.instr "frt/task" in
  let i_queue = ctx.instr "frt/queue" in
  let i_sem = ctx.instr "frt/sem" in
  let i_timer = ctx.instr "frt/timer" in
  let i_event = ctx.instr "frt/event" in
  let i_heap = ctx.instr "frt/heap" in
  let i_part = ctx.instr "frt/partition" in
  let i_http = ctx.instr http_module in
  let i_json = ctx.instr json_module in
  let i_sys = ctx.instr "frt/sys" in
  let http_server = Eof_apps.Http.Server.create ~instr:i_http ~json_instr:i_json in
  let entry name args ret ~weight ~doc handler =
    { Api.name; args; ret; doc; weight; handler }
  in
  let lookup kind h = Kobj.lookup_active reg h ~kind in

  (* --- tasks ---------------------------------------------------------- *)
  let x_task_create args =
    let* prio = Api.get_int args 0 in
    let* stack = Api.get_int args 1 in
    let* flavor = Api.get_int args 2 in
    Instr.cmp i_task 0 prio 5L;
    Instr.cmp i_task 1 stack 1024L;
    let* obj =
      spawn_worker ctx ~name:"frtask"
        ~priority:(Sched.max_priority - min Sched.max_priority (clamp_int prio))
        ~stack_size:(clamp_int stack) ~flavor:(clamp_int flavor)
    in
    Instr.edge i_task 2;
    Api.created ~kind:"task" ~handle:obj.Kobj.handle
  in
  let with_task h f =
    let* obj = lookup "task" h in
    match Sched.of_obj obj with None -> Api.status Kerr.einval | Some tcb -> f obj tcb
  in
  let v_task_delete args =
    let* h = Api.get_res args 0 in
    with_task h (fun obj tcb ->
        Instr.edge i_task 3;
        Sched.finish tcb;
        Kobj.delete obj;
        Api.ok_status)
  in
  let v_task_suspend args =
    let* h = Api.get_res args 0 in
    with_task h (fun _ tcb ->
        Instr.edge i_task 4;
        Sched.suspend tcb;
        Api.ok_status)
  in
  let v_task_resume args =
    let* h = Api.get_res args 0 in
    with_task h (fun _ tcb ->
        Instr.edge i_task 5;
        Sched.resume tcb;
        Api.ok_status)
  in
  let v_task_priority_set args =
    let* h = Api.get_res args 0 in
    let* prio = Api.get_int args 1 in
    with_task h (fun _ tcb ->
        Instr.cmp i_task 6 prio 12L;
        to_status
          (Sched.set_priority tcb
             (Sched.max_priority - min Sched.max_priority (clamp_int prio))))
  in
  let v_task_delay args =
    let* ticks = Api.get_int args 0 in
    let ticks = max 0 (min 50 (clamp_int ticks)) in
    Instr.cmp_i i_task 7 ticks 10;
    pump ctx ticks;
    Api.ok_status
  in

  (* --- queues ---------------------------------------------------------- *)
  let x_queue_create args =
    let* length = Api.get_int args 0 in
    let* item_size = Api.get_int args 1 in
    Instr.cmp i_queue 0 length 16L;
    Instr.cmp i_queue 7 item_size 32L;
    let* obj =
      Msgq.create ~reg ~heap ~name:"frqueue" ~capacity:(clamp_int length)
        ~item_size:(clamp_int item_size)
    in
    Api.created ~kind:"msgq" ~handle:obj.Kobj.handle
  in
  let with_queue h f =
    let* obj = lookup "msgq" h in
    match Msgq.of_obj obj with None -> Api.status Kerr.einval | Some q -> f q
  in
  let x_queue_send args =
    let* h = Api.get_res args 0 in
    let* data = Api.get_buf args 1 in
    with_queue h (fun q ->
        Instr.cmp_i i_queue 1 (String.length data) 16;
        match Msgq.send q data with
        | Ok () ->
          Instr.edge i_queue 2;
          Api.ok_status
        | Error e ->
          Instr.edge i_queue 3;
          Api.status e)
  in
  let x_queue_receive args =
    let* h = Api.get_res args 0 in
    with_queue h (fun q ->
        match Msgq.recv q with
        | Ok _ ->
          Instr.edge i_queue 4;
          Api.ok_status
        | Error e ->
          Instr.edge i_queue 5;
          Api.status e)
  in
  let x_queue_reset args =
    let* h = Api.get_res args 0 in
    with_queue h (fun q ->
        Instr.edge i_queue 6;
        (* FreeRTOS xQueueReset drains without poisoning; drain by
           repeated receive to keep the ring consistent. *)
        let rec drain () =
          match Msgq.recv q with Ok _ -> drain () | Error _ -> ()
        in
        drain ();
        Api.ok_status)
  in

  (* --- semaphores ------------------------------------------------------ *)
  let x_semaphore_create_counting args =
    let* max_count = Api.get_int args 0 in
    let* initial = Api.get_int args 1 in
    Instr.cmp i_sem 0 max_count 8L;
    Instr.cmp i_sem 3 initial 0L;
    let* obj =
      Sem.create ~reg ~name:"frsem" ~initial:(clamp_int initial)
        ~max_count:(clamp_int max_count)
    in
    Api.created ~kind:"sem" ~handle:obj.Kobj.handle
  in
  let with_sem h f =
    let* obj = lookup "sem" h in
    match Sem.of_obj obj with None -> Api.status Kerr.einval | Some s -> f s
  in
  let x_semaphore_take args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.cmp_i i_sem 1 (Sem.count s) 0;
        to_status (Sem.take s))
  in
  let x_semaphore_give args =
    let* h = Api.get_res args 0 in
    with_sem h (fun s ->
        Instr.edge i_sem 2;
        to_status (Sem.give s))
  in

  (* --- software timers -------------------------------------------------- *)
  let x_timer_create args =
    let* period = Api.get_int args 0 in
    let* auto_reload = Api.get_int args 1 in
    Instr.cmp i_timer 0 period 10L;
    let callback () =
      match Kobj.of_kind reg "event" with
      | obj :: _ ->
        (match Event.of_obj obj with Some e -> Event.send e 0x01 | None -> ())
      | [] -> ()
    in
    let* obj =
      Swtimer.create ~reg ~wheel:ctx.wheel ~name:"frtimer"
        ~kind:(if Int64.compare auto_reload 0L > 0 then Swtimer.Periodic else Swtimer.Oneshot)
        ~period:(max 1 (clamp_int period))
        ~callback
    in
    Api.created ~kind:"timer" ~handle:obj.Kobj.handle
  in
  let with_timer h f =
    let* obj = lookup "timer" h in
    match Swtimer.of_obj obj with None -> Api.status Kerr.einval | Some tm -> f tm
  in
  let x_timer_start args =
    let* h = Api.get_res args 0 in
    with_timer h (fun tm ->
        Instr.edge i_timer 1;
        Swtimer.start tm;
        Api.ok_status)
  in
  let x_timer_stop args =
    let* h = Api.get_res args 0 in
    with_timer h (fun tm ->
        Instr.edge i_timer 2;
        Swtimer.stop tm;
        Api.ok_status)
  in

  (* --- event groups ------------------------------------------------------ *)
  let x_event_group_create _args =
    Instr.edge i_event 0;
    let obj = Event.create ~reg ~name:"frevent" in
    Api.created ~kind:"event" ~handle:obj.Kobj.handle
  in
  let with_event h f =
    let* obj = lookup "event" h in
    match Event.of_obj obj with None -> Api.status Kerr.einval | Some e -> f e
  in
  let x_event_group_set_bits args =
    let* h = Api.get_res args 0 in
    let* bits = Api.get_int args 1 in
    with_event h (fun e ->
        Instr.cmp i_event 1 bits 0xFF00L;
        Event.send e (clamp_int bits land 0xFFFFFF);
        Api.ok_status)
  in
  let x_event_group_wait_bits args =
    let* h = Api.get_res args 0 in
    let* mask = Api.get_int args 1 in
    let* opts = Api.get_int args 2 in
    with_event h (fun e ->
        Instr.cmp i_event 2 mask 0xFFL;
        match
          Event.recv e ~mask:(clamp_int mask)
            ~all:(Int64.logand opts 1L <> 0L)
            ~clear:(Int64.logand opts 2L <> 0L)
        with
        | Ok got ->
          Instr.edge i_event 3;
          Api.status (Int64.of_int got)
        | Error err ->
          Instr.edge i_event 4;
          Api.status err)
  in

  (* --- heap --------------------------------------------------------------- *)
  let pv_port_malloc args =
    let* size = Api.get_int args 0 in
    Instr.cmp i_heap 0 size 128L;
    let size = clamp_int size in
    if size < 0 || size > 8192 then Api.status Kerr.einval
    else begin
      match Heap.alloc heap size with
      | None ->
        Instr.edge i_heap 1;
        Api.status Kerr.enomem
      | Some addr ->
        Instr.edge i_heap 2;
        let obj = Kobj.register reg ~kind:"frblock" ~name:"frblock" (Port_block { addr }) in
        Api.created ~kind:"frblock" ~handle:obj.Kobj.handle
    end
  in
  let v_port_free args =
    let* h = Api.get_res args 0 in
    let* obj = lookup "frblock" h in
    match obj.Kobj.payload with
    | Port_block { addr } ->
      Instr.edge i_heap 3;
      Kobj.delete obj;
      (match Heap.free heap addr with
       | Ok () -> Api.ok_status
       | Error _ -> Api.status Kerr.einval)
    | _ -> Api.status Kerr.einval
  in
  let x_port_get_free_heap_size _args =
    Instr.cmp_i i_heap 4 (Heap.free_bytes heap) 0;
    Api.status (Int64.of_int (Heap.free_bytes heap))
  in

  (* --- partition loader (bug #13) ------------------------------------------ *)
  let load_partitions args =
    let* offset = Api.get_int args 0 in
    let offset = clamp_int offset in
    Instr.cmp_i i_part 0 offset 0x8000;
    if offset < 0 || offset > 0xFFFF || offset mod 0x1000 <> 0 then Api.status Kerr.einval
    else begin
      let addr = flash_base + offset in
      let magic = Memory.read_u32 flash_mem addr in
      Instr.cmp i_part 1 (Int64.of_int32 magic) (Int64.of_int32 0x4C425450l);
      if not (Int32.equal magic 0x4C425450l (* "PTBL" little-endian *)) then
        Api.status Kerr.enoent
      else begin
        Instr.edge i_part 2;
        (* Parse two (offset, size) entries and check for overlap. The
           graceful path is missing: overlap panics (BUG #13). *)
        let e1_off = Int32.to_int (Memory.read_u32 flash_mem (addr + 4)) in
        let e1_size = Int32.to_int (Memory.read_u32 flash_mem (addr + 8)) in
        let e2_off = Int32.to_int (Memory.read_u32 flash_mem (addr + 12)) in
        let e2_size = Int32.to_int (Memory.read_u32 flash_mem (addr + 16)) in
        Instr.cmp_i i_part 3 e1_off e2_off;
        let overlap = e1_off < e2_off + e2_size && e2_off < e1_off + e1_size in
        if overlap then
          Panic.panic panic
            ~backtrace:
              [
                "components/esp_partition/partition.c : load_partitions : 188";
                "components/esp_partition/partition.c : ensure_partitions_loaded : 120";
              ]
            (Printf.sprintf
               "overlapping partition entries [0x%x,+0x%x) and [0x%x,+0x%x) in backup table"
               e1_off e1_size e2_off e2_size)
        else begin
          Instr.edge i_part 4;
          Api.ok_status
        end
      end
    end
  in

  (* --- demo application: HTTP server and JSON -------------------------------- *)
  let http_request args =
    let* raw = Api.get_buf args 0 in
    let response = Eof_apps.Http.Server.handle http_server raw in
    Instr.cmp_i i_sys 2 response.Eof_apps.Http.status 200;
    Api.status (Int64.of_int response.Eof_apps.Http.status)
  in
  let syz_http_get args =
    let* path = Api.get_str args 0 in
    (* Pseudo-syscall: issue a well-formed GET so deeper routes are
       reachable without the generator inventing HTTP syntax. *)
    let raw = Printf.sprintf "GET /%s HTTP/1.1\r\nHost: dev\r\n\r\n" path in
    let response = Eof_apps.Http.Server.handle http_server raw in
    Api.status (Int64.of_int response.Eof_apps.Http.status)
  in
  let syz_http_post_json args =
    let* body = Api.get_buf args 0 in
    let raw =
      Printf.sprintf "POST /api/echo HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
        (String.length body) body
    in
    let response = Eof_apps.Http.Server.handle http_server raw in
    Api.status (Int64.of_int response.Eof_apps.Http.status)
  in
  let json_parse args =
    let* text = Api.get_buf args 0 in
    match Eof_apps.Json.parse ~instr:i_json text with
    | Ok doc ->
      Instr.cmp_i i_sys 3 (Eof_apps.Json.depth doc) 4;
      Api.ok_status
    | Error _ -> Api.status Kerr.einval
  in

  (* --- sys -------------------------------------------------------------------- *)
  let x_task_get_tick_count _args =
    Instr.edge i_sys 0;
    Api.status (Int64.of_int (Sched.ticks ctx.sched))
  in
  let esp_log args =
    let* s = Api.get_str args 0 in
    Instr.cmp_i i_sys 1 (String.length s) 16;
    Klog.info ~os:ctx.os_name s;
    Api.ok_status
  in

    let staged_entries =
    Statemach.entries ctx ~instr:(ctx.instr "frt/wifi") ~prefix:"wifi_prov"
      ~resource:"wifi_dev" ~salt:153
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "frt/ble") ~prefix:"ble_gatt"
        ~resource:"ble_dev" ~salt:167
  in
  let staged_entries =
    staged_entries
    @ Statemach.entries ctx ~instr:(ctx.instr "frt/ota") ~prefix:"ota_update"
        ~resource:"ota_dev" ~salt:195
  in

  let staged_entries =
    staged_entries @ install_irq ctx ~instr:(ctx.instr "frt/irq") ~prefix:"gpio_isr"
  in

  Api.make_table ~os:"FreeRTOS"
    ([
      entry "xTaskCreate"
        [ ("priority", Api.A_int { min = 0L; max = 24L });
          ("stack_depth", Api.A_int { min = 256L; max = 8192L });
          ("flavor", Api.A_int { min = 0L; max = 7L }) ]
        (`Resource "task") ~weight:3 ~doc:"Create and start a task" x_task_create;
      entry "vTaskDelete" [ ("task", Api.A_res "task") ] `Status ~weight:1
        ~doc:"Delete a task" v_task_delete;
      entry "vTaskSuspend" [ ("task", Api.A_res "task") ] `Status ~weight:1
        ~doc:"Suspend a task" v_task_suspend;
      entry "vTaskResume" [ ("task", Api.A_res "task") ] `Status ~weight:1
        ~doc:"Resume a task" v_task_resume;
      entry "vTaskPrioritySet"
        [ ("task", Api.A_res "task"); ("priority", Api.A_int { min = 0L; max = 24L }) ]
        `Status ~weight:1 ~doc:"Change a task's priority" v_task_priority_set;
      entry "vTaskDelay" [ ("ticks", Api.A_int { min = 0L; max = 50L }) ] `Status ~weight:2
        ~doc:"Block for a number of ticks" v_task_delay;
      entry "xQueueCreate"
        [ ("length", Api.A_int { min = 1L; max = 64L });
          ("item_size", Api.A_int { min = 1L; max = 128L }) ]
        (`Resource "msgq") ~weight:3 ~doc:"Create a queue" x_queue_create;
      entry "xQueueSend"
        [ ("queue", Api.A_res "msgq"); ("data", Api.A_buf { max_len = 128 }) ]
        `Status ~weight:3 ~doc:"Send to a queue" x_queue_send;
      entry "xQueueReceive" [ ("queue", Api.A_res "msgq") ] `Status ~weight:2
        ~doc:"Receive from a queue" x_queue_receive;
      entry "xQueueReset" [ ("queue", Api.A_res "msgq") ] `Status ~weight:1
        ~doc:"Drain a queue" x_queue_reset;
      entry "xSemaphoreCreateCounting"
        [ ("max_count", Api.A_int { min = 1L; max = 16L });
          ("initial", Api.A_int { min = 0L; max = 16L }) ]
        (`Resource "sem") ~weight:2 ~doc:"Create a counting semaphore"
        x_semaphore_create_counting;
      entry "xSemaphoreTake" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Take a semaphore" x_semaphore_take;
      entry "xSemaphoreGive" [ ("sem", Api.A_res "sem") ] `Status ~weight:2
        ~doc:"Give a semaphore" x_semaphore_give;
      entry "xTimerCreate"
        [ ("period", Api.A_int { min = 1L; max = 20L });
          ("auto_reload", Api.A_int { min = 0L; max = 1L }) ]
        (`Resource "timer") ~weight:2 ~doc:"Create a software timer" x_timer_create;
      entry "xTimerStart" [ ("timer", Api.A_res "timer") ] `Status ~weight:2
        ~doc:"Start a timer" x_timer_start;
      entry "xTimerStop" [ ("timer", Api.A_res "timer") ] `Status ~weight:1
        ~doc:"Stop a timer" x_timer_stop;
      entry "xEventGroupCreate" [] (`Resource "event") ~weight:2
        ~doc:"Create an event group" x_event_group_create;
      entry "xEventGroupSetBits"
        [ ("event", Api.A_res "event"); ("bits", Api.A_int { min = 0L; max = 16777215L }) ]
        `Status ~weight:2 ~doc:"Set event bits" x_event_group_set_bits;
      entry "xEventGroupWaitBits"
        [ ("event", Api.A_res "event");
          ("mask", Api.A_int { min = 1L; max = 16777215L });
          ("opts", Api.A_flags [ ("all", 1L); ("clear", 2L) ]) ]
        `Status ~weight:2 ~doc:"Poll for event bits" x_event_group_wait_bits;
      entry "pvPortMalloc" [ ("size", Api.A_int { min = 0L; max = 8192L }) ]
        (`Resource "frblock") ~weight:3 ~doc:"Allocate from the FreeRTOS heap"
        pv_port_malloc;
      entry "vPortFree" [ ("block", Api.A_res "frblock") ] `Status ~weight:2
        ~doc:"Free a heap block" v_port_free;
      entry "xPortGetFreeHeapSize" [] `Status ~weight:1 ~doc:"Free heap bytes"
        x_port_get_free_heap_size;
      entry "load_partitions" [ ("offset", Api.A_int { min = 0L; max = 65535L }) ] `Status
        ~weight:2 ~doc:"Load a partition table from flash" load_partitions;
      entry "http_request" [ ("raw", Api.A_buf { max_len = 512 }) ] `Status ~weight:3
        ~doc:"Feed a raw request to the HTTP server" http_request;
      entry "syz_http_get" [ ("path", Api.A_str { max_len = 48 }) ] `Status ~weight:2
        ~doc:"Pseudo-syscall: well-formed GET request" syz_http_get;
      entry "syz_http_post_json" [ ("body", Api.A_buf { max_len = 256 }) ] `Status
        ~weight:2 ~doc:"Pseudo-syscall: POST a JSON body to /api/echo" syz_http_post_json;
      entry "json_parse" [ ("text", Api.A_buf { max_len = 256 }) ] `Status ~weight:2
        ~doc:"Parse a JSON document" json_parse;
      entry "xTaskGetTickCount" [] `Status ~weight:1 ~doc:"Read the tick counter"
        x_task_get_tick_count;
      entry "esp_log" [ ("text", Api.A_str { max_len = 64 }) ] `Status ~weight:1
        ~doc:"Log a line" esp_log;
    ]
     @ staged_entries)


(* The poisoned backup partition table: magic "PTBL" then two
   overlapping (offset, size) entries, little-endian. *)
let poisoned_table =
  let b = Bytes.create 20 in
  Bytes.set_int32_le b 0 0x4C425450l;
  Bytes.set_int32_le b 4 0x0000l;
  Bytes.set_int32_le b 8 0x8000l;
  Bytes.set_int32_le b 12 0x4000l;
  Bytes.set_int32_le b 16 0x4000l;
  Bytes.unsafe_to_string b

let spec =
  {
    Osbuild.os_name = "FreeRTOS";
    version = "v5.4";
    base_kernel_bytes = 232_000;
    modules =
      [
        ("frt/task", 24);
        ("frt/queue", 24);
        ("frt/sem", 16);
        ("frt/timer", 16);
        ("frt/event", 16);
        ("frt/heap", 24);
        ("frt/partition", 16);
        (http_module, Eof_apps.Http.site_count);
        (json_module, Eof_apps.Json.site_count);
        ("frt/sys", 16);
        ("frt/wifi", Statemach.site_count);
        ("frt/ble", Statemach.site_count);
        ("frt/ota", Statemach.site_count);
        ("frt/irq", Oscommon.irq_site_count);
      ];
    banner = "ESP-ROM:esp32-2021r1 FreeRTOS v5.4 SMP";
    kernel_patches = [ (backup_table_blob_offset, poisoned_table) ];
    install;
  }
