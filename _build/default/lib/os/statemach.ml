open Eof_rtos
open Oscommon
module Instr = Eof_rtos.Instr

let stages = 10

(* Sites: 0 = open, 1 = step entry, 2..11 = per-stage cmp against the
   expected word, 12..21 = per-stage advance edges, 22 = completion. *)
let site_count = 24

type dev = { mutable stage : int; mutable completed : int }

type Kobj.payload += Staged of dev

let expected_code ~salt ~stage = (salt + (stage * 37) + 11) land 0xFF

let entries (ctx : Osbuild.ctx) ~instr ~prefix ~resource ~salt =
  let open_name = prefix ^ "_open" in
  let step_name = prefix ^ "_step" in
  let open_handler _args =
    Instr.edge instr 0;
    let obj =
      Kobj.register ctx.reg ~kind:resource ~name:prefix (Staged { stage = 0; completed = 0 })
    in
    Api.created ~kind:resource ~handle:obj.Kobj.handle
  in
  let step_handler args =
    let* h = Api.get_res args 0 in
    let* code = Api.get_int args 1 in
    let* obj = Kobj.lookup_active ctx.reg h ~kind:resource in
    match obj.Kobj.payload with
    | Staged dev ->
      Instr.edge instr 1;
      let stage = dev.stage in
      let expected = expected_code ~salt ~stage in
      let code = clamp_int code land 0xFF in
      (* The comparison the hardware-style mode check performs; its
         trace_cmp record carries the operand distance. *)
      Instr.cmp_i instr (2 + min (stages - 1) stage) code expected;
      if code = expected then begin
        Instr.edge instr (2 + stages + min (stages - 1) stage);
        dev.stage <- stage + 1;
        if dev.stage >= stages then begin
          Instr.edge instr (2 + (2 * stages));
          dev.completed <- dev.completed + 1;
          dev.stage <- 0;
          Klog.info ~os:ctx.os_name (Printf.sprintf "%s: configuration sequence complete" prefix)
        end;
        Api.ok_status
      end
      else Api.status Kerr.einval
    | _ -> Api.status Kerr.einval
  in
  [
    {
      Api.name = open_name;
      args = [];
      ret = `Resource resource;
      doc = "Open the staged device";
      weight = 2;
      handler = open_handler;
    };
    {
      Api.name = step_name;
      args =
        [ ("dev", Api.A_res resource); ("code", Api.A_int { min = 0L; max = 255L }) ];
      ret = `Status;
      doc = "Advance the device configuration sequence";
      weight = 3;
      handler = step_handler;
    };
  ]
