(** The Zephyr personality (v143b14b in the paper's evaluation).

    Fully preemptive scheduling with work queues in the real OS; here a
    cooperative model with the same API shapes: [k_thread_create],
    [k_msgq_*], [k_heap_*], [k_sem_*], [k_event_*], [k_timer_*], the JSON
    middleware, and the [sys_heap] stress entry point.

    Seeded bugs (Table 2): #1 [sys_heap_stress], #2 [z_impl_k_msgq_get],
    #3 [json_obj_encode], #4 [k_heap_init]. *)

val spec : Osbuild.spec
