open Eof_hw
open Eof_cov
open Eof_rtos

(** Assembling a bootable OS build for a board.

    A build is what the paper's "embedded OS adaptation" step produces:
    the board with a flashed image, the instrumentation site map, the
    coverage runtime, the well-known symbol addresses the host sets
    breakpoints on, and a way to create a fresh kernel instance at each
    boot. Personalities (FreeRTOS, RT-Thread, NuttX, Zephyr, PoKOS)
    plug in through {!spec}. *)

(** What a personality's [install] receives: per-boot kernel substrate
    plus instrumentation handles. *)
type ctx = {
  board : Board.t;
  reg : Kobj.t;
  heap : Heap.t;  (** kernel heap carved from board RAM *)
  sched : Sched.t;
  wheel : Swtimer.wheel;
  panic : Panic.ctx;
  instr : string -> Instr.t;  (** per-module instrumentation handles *)
  register_isr : (int -> unit) -> unit;
      (** install a GPIO interrupt handler; pending pins are dispatched
          to every registered handler once per kernel tick *)
  os_name : string;
}

type instance = { reg : Kobj.t; table : Api.table; tick : unit -> unit }

type spec = {
  os_name : string;
  version : string;
  base_kernel_bytes : int;  (** uninstrumented kernel blob size *)
  modules : (string * int) list;  (** module name -> site count *)
  banner : string;  (** boot banner printed over UART *)
  kernel_patches : (int * string) list;
      (** bytes to splice into the kernel blob at given blob offsets
          (e.g. a backup partition table a buggy loader later parses) *)
  install : ctx -> Api.table;
}

(** Well-known symbol addresses (agent binding points and exception
    entry points) the host resolves breakpoints against. *)
type syms = {
  sym_boot : int;
  sym_executor_main : int;
  sym_read_prog : int;
  sym_execute_one : int;
  sym_loop_back : int;
  sym_handle_exception : int;
  sym_assert_report : int;
  sym_buf_full : int;
  sym_call : int;  (** crossed before each API-call dispatch *)
}

type instrument_mode =
  | Instrument_full
  | Instrument_none
  | Instrument_only of string list
      (** record coverage only in the named modules (the Table-4 setup:
          instrumentation "strictly confined" to HTTP + JSON) *)

type t

val bootloader_bytes : int
(** Flash bytes reserved for the bootloader partition (the text section
    and site addresses start right after it). *)

val make : ?instrument:instrument_mode -> board_profile:Board.profile -> spec -> t
(** Build the image, flash the board, set up instrumentation. *)

val os_name : t -> string

val version : t -> string

val board : t -> Board.t

val sitemap : t -> Sitemap.t

val sancov : t -> Sancov.t
(** The recording runtime (the instrumented one). *)

val syms : t -> syms

val image : t -> Image.t
(** The golden image the host holds for reflashing. *)

val image_bytes : t -> int
(** The binary size (§5.5.1): bootloader + kernel + filesystem contents
    before padding to partition boundaries — instrumentation inflates
    the kernel part. *)

val covbuf_layout : t -> Sancov.Layout.t

val mailbox_base : t -> int

val mailbox_size : t -> int

val edge_capacity : t -> int

val module_block : t -> string -> Eof_cov.Sitemap.block option
(** The instrumentation-site block a module was assigned (used by
    baselines that plant breakpoints on code sites). *)

val api_signatures : t -> Api.table
(** The personality's API table captured at build time for host-side
    consumers (spec synthesis, generators, index lookup). Handlers in
    this table must not be invoked from the host — only the signatures
    (names, argument types, resources, weights) are meaningful there. *)

val fresh_instance : t -> instance
(** Per-boot kernel construction: registry, heap, scheduler, personality
    API table. Called by the agent entry after the boot check. *)

val instrumented : t -> bool
