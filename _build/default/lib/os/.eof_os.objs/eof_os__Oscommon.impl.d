lib/os/oscommon.ml: Api Eof_hw Eof_rtos Event Instr Int64 Kerr Klog Kobj Osbuild Printf Sched Sem
