lib/os/oscommon.mli: Api Eof_rtos Instr Kobj Osbuild Sched
