lib/os/rtthread.mli: Osbuild
