lib/os/zephyr.mli: Osbuild
