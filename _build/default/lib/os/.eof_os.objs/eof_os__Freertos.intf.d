lib/os/freertos.mli: Osbuild
