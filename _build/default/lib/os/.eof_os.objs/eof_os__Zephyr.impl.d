lib/os/zephyr.ml: Api Board Eof_apps Eof_exec Eof_hw Eof_rtos Event Hashtbl Heap Int64 Kerr Klog Kobj List Memory Msgq Option Osbuild Oscommon Panic Printf Sched Sem Statemach String Swtimer Workq
