lib/os/osbuild.mli: Api Board Eof_cov Eof_hw Eof_rtos Heap Image Instr Kobj Panic Sancov Sched Sitemap Swtimer
