lib/os/pokos.ml: Api Eof_rtos Int64 Kerr Klog Kobj Msgq Osbuild Oscommon Printf Sched Sem Statemach String
