lib/os/osbuild.ml: Api Arch Board Bytes Eof_cov Eof_exec Eof_hw Eof_rtos Eof_util Format Gpio Hashtbl Heap Image Instr Int64 Klog Kobj List Panic Partition Printf Sancov Sched Sitemap String Swtimer
