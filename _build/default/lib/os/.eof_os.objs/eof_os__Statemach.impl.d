lib/os/statemach.ml: Api Eof_rtos Kerr Klog Kobj Osbuild Oscommon Printf
