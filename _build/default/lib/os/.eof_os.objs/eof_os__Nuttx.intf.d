lib/os/nuttx.mli: Osbuild
