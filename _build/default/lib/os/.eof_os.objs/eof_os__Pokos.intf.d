lib/os/pokos.mli: Osbuild
