lib/os/nuttx.ml: Api Board Buffer Eof_hw Eof_rtos Fault Hashtbl Heap Int32 Int64 Kerr Klog Kobj List Memory Msgq Osbuild Oscommon Panic Printf Ramfs Sched Sem Statemach String Swtimer
