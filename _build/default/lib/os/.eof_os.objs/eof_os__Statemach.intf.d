lib/os/statemach.mli: Api Eof_rtos Instr Osbuild
