lib/os/freertos.ml: Api Board Bytes Eof_apps Eof_hw Eof_rtos Event Flash Heap Int32 Int64 Kerr Klog Kobj Memory Msgq Osbuild Oscommon Panic Printf Sched Sem Statemach String Swtimer
