(** The NuttX personality (commit fc99353 in the paper's evaluation).

    POSIX-flavoured APIs: tasks, the environment ([setenv]/[getenv]),
    message queues ([mq_open]/[nxmq_timedsend]), semaphores
    ([nxsem_trywait]), POSIX timers and libc time functions.

    Seeded bugs (Table 2): #14 [setenv] env-arena overflow, #15
    [gettimeofday] unaligned pointer, #16 [nxmq_timedsend] deadline
    overflow, #17 [nxsem_trywait] on a destroyed semaphore (assert), #18
    [timer_create] with an invalid clock id, #19 [clock_getres] null
    result pointer. *)

val spec : Osbuild.spec
