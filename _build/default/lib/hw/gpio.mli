(** GPIO bank with edge interrupts — the "lightweight peripheral model"
    the paper's future-work section calls for to drive interrupt paths.

    The host injects pin-level changes (through a debug-probe monitor
    command); if the pin is configured for the matching edge, an
    interrupt latches, and the target's kernel tick drains pending
    interrupts into its ISR dispatch. *)

type edge = Rising | Falling | Both

type t

val pin_count : int
(** 16. *)

val create : unit -> t
(** All pins low, no interrupts configured. *)

val configure_irq : t -> pin:int -> edge -> (unit, string) result
(** Target-side: arm edge detection on a pin. *)

val disable_irq : t -> pin:int -> unit

val set_level : t -> pin:int -> level:bool -> (unit, string) result
(** Host-side injection. Latches a pending interrupt when the transition
    matches the pin's armed edge. *)

val level : t -> pin:int -> bool

val drain_pending : t -> int list
(** Pending interrupt pins (ascending), clearing them — what the ISR
    dispatch consumes once per kernel tick. *)

val pending_count : t -> int

val injections : t -> int
(** Total host injections (statistics). *)

val reset : t -> unit
(** Power-on state. *)
