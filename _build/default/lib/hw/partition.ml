type entry = { name : string; offset : int; size : int }

type t = entry list

let validate ~flash_size entries =
  let rec go seen_names regions = function
    | [] -> Ok ()
    | e :: rest ->
      if e.size <= 0 then Error (Printf.sprintf "partition %s: non-positive size" e.name)
      else if e.offset < 0 then
        Error (Printf.sprintf "partition %s: negative offset" e.name)
      else if e.offset + e.size > flash_size then
        Error
          (Printf.sprintf "partition %s: [0x%x,0x%x) exceeds flash size 0x%x" e.name
             e.offset (e.offset + e.size) flash_size)
      else if List.mem e.name seen_names then
        Error (Printf.sprintf "duplicate partition name %s" e.name)
      else
        (match Eof_util.Intervals.add regions ~lo:e.offset ~hi:(e.offset + e.size) with
         | Error msg -> Error (Printf.sprintf "partition %s: %s" e.name msg)
         | Ok regions -> go (e.name :: seen_names) regions rest)
  in
  go [] Eof_util.Intervals.empty entries

let parse_int s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad integer %S" s)

let parse_field ~key s =
  match String.index_opt s '=' with
  | Some i when String.sub s 0 i = key -> parse_int (String.sub s (i + 1) (String.length s - i - 1))
  | _ -> Error (Printf.sprintf "expected %s=<int>, got %S" key s)

let parse_line lineno line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  let line = String.trim line in
  if line = "" then Ok None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ "partition"; name; off; sz ] ->
      (match (parse_field ~key:"offset" off, parse_field ~key:"size" sz) with
       | Ok offset, Ok size -> Ok (Some { name; offset; size })
       | Error e, _ | _, Error e -> Error (Printf.sprintf "line %d: %s" lineno e))
    | _ -> Error (Printf.sprintf "line %d: expected 'partition <name> offset=<n> size=<n>'" lineno)

let parse_config ~flash_size text =
  let lines = String.split_on_char '\n' text in
  let rec go lineno acc = function
    | [] ->
      let entries = List.rev acc in
      (match validate ~flash_size entries with Ok () -> Ok entries | Error e -> Error e)
    | line :: rest ->
      (match parse_line lineno line with
       | Ok None -> go (lineno + 1) acc rest
       | Ok (Some e) -> go (lineno + 1) (e :: acc) rest
       | Error e -> Error e)
  in
  go 1 [] lines

let to_config t =
  String.concat "\n"
    (List.map
       (fun e -> Printf.sprintf "partition %s offset=0x%x size=0x%x" e.name e.offset e.size)
       t)

let find t name = List.find_opt (fun e -> e.name = name) t

let total_size t = List.fold_left (fun acc e -> acc + e.size) 0 t
