(** Firmware images: a partition table plus per-partition contents and an
    integrity manifest.

    The host fuzzer keeps the golden image it built; state restoration
    reflashes it partition by partition. Integrity is the per-partition
    CRC-32 the simulated bootloader checks at boot. *)

type t = private {
  table : Partition.t;
  blobs : (string * string) list;  (** partition name -> contents *)
}

val build : table:Partition.t -> blobs:(string * string) list -> (t, string) result
(** Validates that every partition has exactly one blob and that each
    blob fits its partition. *)

val build_exn : table:Partition.t -> blobs:(string * string) list -> t

val synthesize :
  table:Partition.t -> seed:int64 -> ?payloads:(string * string) list -> unit -> t
(** Deterministic pseudo-random contents filling each partition, with
    optional named [payloads] overriding specific partitions (e.g. a
    kernel blob whose size reflects instrumentation). Payloads are
    truncated/padded to the partition size. *)

val manifest : t -> (string * int32) list
(** Partition name -> expected CRC-32 of its full partition extent. *)

val flash_all : t -> Flash.t -> unit
(** Erase + program every partition (full reflash). *)

val flash_one : t -> Flash.t -> string -> (unit, string) result
(** Reflash a single partition by name. *)

val verify : t -> Flash.t -> string list
(** Names of partitions whose flash contents no longer match the
    manifest (empty list = image intact). *)

val total_bytes : t -> int
(** Sum of blob sizes: the "binary size" used by the memory-overhead
    experiment. *)
