type t = { base : int; data : Bytes.t; endianness : Arch.endianness }

let create ~base ~size ~endianness =
  if size <= 0 then invalid_arg "Memory.create: size";
  if base < 0 then invalid_arg "Memory.create: base";
  { base; data = Bytes.make size '\000'; endianness }

let base t = t.base

let size t = Bytes.length t.data

let endianness t = t.endianness

let in_range t ~addr ~len =
  len >= 0 && addr >= t.base && addr + len <= t.base + Bytes.length t.data

let check t addr len =
  if not (in_range t ~addr ~len) then
    Fault.bus ~address:addr
      (Printf.sprintf "access of %d byte(s) outside region [0x%08x,0x%08x)" len t.base
         (t.base + Bytes.length t.data))

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data (addr - t.base))

let write_u8 t addr v =
  check t addr 1;
  Bytes.unsafe_set t.data (addr - t.base) (Char.unsafe_chr (v land 0xFF))

let read_u16 t addr =
  check t addr 2;
  let off = addr - t.base in
  let b0 = Char.code (Bytes.unsafe_get t.data off) in
  let b1 = Char.code (Bytes.unsafe_get t.data (off + 1)) in
  match t.endianness with
  | Arch.Little -> b0 lor (b1 lsl 8)
  | Arch.Big -> b1 lor (b0 lsl 8)

let write_u16 t addr v =
  check t addr 2;
  let off = addr - t.base in
  let lo = v land 0xFF and hi = (v lsr 8) land 0xFF in
  match t.endianness with
  | Arch.Little ->
    Bytes.unsafe_set t.data off (Char.unsafe_chr lo);
    Bytes.unsafe_set t.data (off + 1) (Char.unsafe_chr hi)
  | Arch.Big ->
    Bytes.unsafe_set t.data off (Char.unsafe_chr hi);
    Bytes.unsafe_set t.data (off + 1) (Char.unsafe_chr lo)

let read_u32 t addr =
  check t addr 4;
  let off = addr - t.base in
  match t.endianness with
  | Arch.Little -> Bytes.get_int32_le t.data off
  | Arch.Big -> Bytes.get_int32_be t.data off

let write_u32 t addr v =
  check t addr 4;
  let off = addr - t.base in
  match t.endianness with
  | Arch.Little -> Bytes.set_int32_le t.data off v
  | Arch.Big -> Bytes.set_int32_be t.data off v

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data (addr - t.base) len

let write_bytes t ~addr b =
  check t addr (Bytes.length b);
  Bytes.blit b 0 t.data (addr - t.base) (Bytes.length b)

let blit_to t ~addr ~dst ~dst_pos ~len =
  check t addr len;
  Bytes.blit t.data (addr - t.base) dst dst_pos len

let fill t ~addr ~len c =
  check t addr len;
  Bytes.fill t.data (addr - t.base) len c

let clear t = Bytes.fill t.data 0 (Bytes.length t.data) '\000'

let unsafe_backing t = t.data
