(** UART transmit peripheral.

    Target code writes bytes into a bounded TX FIFO; the host side (the
    fuzzer's log monitor) drains it. If nothing drains the FIFO — e.g.
    after a fault freezes the host connection — old bytes are overwritten,
    modelling the paper's observation that "UART logs may vanish after a
    fault". *)

type t

val create : ?fifo_bytes:int -> unit -> t
(** Default FIFO is 8 KiB. *)

val write_char : t -> char -> unit

val write_string : t -> string -> unit

val drain : t -> string
(** All pending bytes, oldest first; empties the FIFO. *)

val drain_lines : t -> string list
(** Drain and split into completed lines; a trailing partial line stays
    buffered for the next call. *)

val overruns : t -> int
(** Bytes lost to FIFO overruns since creation/reset. *)

val reset : t -> unit

val bytes_written : t -> int
(** Total bytes the target has transmitted (for overhead accounting). *)
