lib/hw/arch.ml: Format
