lib/hw/memory.ml: Arch Bytes Char Fault Printf
