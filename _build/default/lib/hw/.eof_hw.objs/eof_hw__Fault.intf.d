lib/hw/fault.mli:
