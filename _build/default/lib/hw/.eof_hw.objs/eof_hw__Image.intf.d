lib/hw/image.mli: Flash Partition
