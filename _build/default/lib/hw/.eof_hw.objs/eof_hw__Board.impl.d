lib/hw/board.ml: Arch Bytes Clock Fault Flash Gpio Image Int32 List Memory Partition Printf String Uart
