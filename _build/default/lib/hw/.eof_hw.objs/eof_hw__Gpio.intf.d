lib/hw/gpio.mli:
