lib/hw/board.mli: Arch Clock Fault Flash Gpio Image Memory Partition Uart
