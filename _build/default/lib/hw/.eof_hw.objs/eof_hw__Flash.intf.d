lib/hw/flash.mli: Arch Memory
