lib/hw/arch.mli: Format
