lib/hw/uart.ml: Buffer Eof_util List String
