lib/hw/profiles.ml: Arch Board List
