lib/hw/clock.mli:
