lib/hw/image.ml: Bytes Eof_util Flash Int32 List Option Partition Printf String
