lib/hw/profiles.mli: Board
