lib/hw/clock.ml: Int64
