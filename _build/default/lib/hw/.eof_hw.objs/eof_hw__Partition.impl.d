lib/hw/partition.ml: Eof_util List Printf String
