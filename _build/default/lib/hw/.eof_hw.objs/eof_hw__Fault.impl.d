lib/hw/fault.ml: Printf
