lib/hw/uart.mli:
