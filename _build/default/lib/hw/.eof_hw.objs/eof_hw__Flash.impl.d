lib/hw/flash.ml: Bytes Char Eof_util Fault Memory String
