lib/hw/gpio.ml: Array Printf
