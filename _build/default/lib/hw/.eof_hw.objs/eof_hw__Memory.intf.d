lib/hw/memory.mli: Arch Bytes
