lib/hw/partition.mli:
