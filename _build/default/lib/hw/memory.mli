(** A contiguous byte-addressable memory region (RAM or a flash backing
    store) with a base address in the target address space.

    Accesses outside the region raise a {!Fault.Trap} bus fault, matching
    how a microcontroller bus matrix reacts to unmapped addresses. Wide
    accesses honour the region's endianness. *)

type t

val create : base:int -> size:int -> endianness:Arch.endianness -> t
(** Zero-filled region of [size] bytes mapped at [base]. *)

val base : t -> int

val size : t -> int

val endianness : t -> Arch.endianness

val in_range : t -> addr:int -> len:int -> bool

val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit
(** Value is masked to 8 bits. *)

val read_u16 : t -> int -> int

val write_u16 : t -> int -> int -> unit

val read_u32 : t -> int -> int32

val write_u32 : t -> int -> int32 -> unit

val read_bytes : t -> addr:int -> len:int -> Bytes.t

val write_bytes : t -> addr:int -> Bytes.t -> unit

val blit_to : t -> addr:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit

val fill : t -> addr:int -> len:int -> char -> unit

val clear : t -> unit
(** Zero the whole region (power-on reset of RAM). *)

val unsafe_backing : t -> Bytes.t
(** Direct access to the backing store for target-side code that would,
    on real hardware, access memory without going through the debugger.
    Offsets into the backing store are [addr - base]. *)
