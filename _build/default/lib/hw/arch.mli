(** Processor architecture descriptors.

    The fuzzer is architecture-agnostic but must know word width and
    endianness to encode test-case programs the on-target agent can
    decode with primitive loads, and to format register reads in GDB
    remote-protocol replies. *)

type endianness = Little | Big

type family = Arm_cortex_m | Riscv32 | Xtensa | Powerpc | Mips

type t = {
  family : family;
  endianness : endianness;
  word_bits : int;  (** 32 for every supported family *)
  register_count : int;  (** general-purpose registers exposed over RSP *)
  pc_register : int;  (** GDB register number of the program counter *)
}

val arm_cortex_m : t
val riscv32 : t
val xtensa : t
val powerpc : t
val mips : t

val family_name : family -> string

val pp : Format.formatter -> t -> unit
