type t = { mhz : int; mutable cycles : int64 }

let create ~mhz =
  if mhz <= 0 then invalid_arg "Clock.create: mhz";
  { mhz; cycles = 0L }

let mhz t = t.mhz

let cycles t = t.cycles

let advance t n =
  if n < 0 then invalid_arg "Clock.advance: negative";
  t.cycles <- Int64.add t.cycles (Int64.of_int n)

let now_us t = Int64.to_float t.cycles /. float_of_int t.mhz

let now_s t = now_us t /. 1_000_000.

let reset t = t.cycles <- 0L
