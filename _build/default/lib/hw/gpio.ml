type edge = Rising | Falling | Both

type t = {
  levels : bool array;
  armed : edge option array;
  pending : bool array;
  mutable injections : int;
}

let pin_count = 16

let create () =
  {
    levels = Array.make pin_count false;
    armed = Array.make pin_count None;
    pending = Array.make pin_count false;
    injections = 0;
  }

let check_pin pin =
  if pin < 0 || pin >= pin_count then Error (Printf.sprintf "no GPIO pin %d" pin) else Ok ()

let configure_irq t ~pin edge =
  match check_pin pin with
  | Error _ as e -> e
  | Ok () ->
    t.armed.(pin) <- Some edge;
    Ok ()

let disable_irq t ~pin = if pin >= 0 && pin < pin_count then t.armed.(pin) <- None

let set_level t ~pin ~level =
  match check_pin pin with
  | Error _ as e -> e
  | Ok () ->
    let prev = t.levels.(pin) in
    t.levels.(pin) <- level;
    t.injections <- t.injections + 1;
    (match (t.armed.(pin), prev, level) with
     | Some (Rising | Both), false, true -> t.pending.(pin) <- true
     | Some (Falling | Both), true, false -> t.pending.(pin) <- true
     | _ -> ());
    Ok ()

let level t ~pin = pin >= 0 && pin < pin_count && t.levels.(pin)

let drain_pending t =
  let pins = ref [] in
  for pin = pin_count - 1 downto 0 do
    if t.pending.(pin) then begin
      t.pending.(pin) <- false;
      pins := pin :: !pins
    end
  done;
  !pins

let pending_count t = Array.fold_left (fun acc p -> if p then acc + 1 else acc) 0 t.pending

let injections t = t.injections

let reset t =
  Array.fill t.levels 0 pin_count false;
  Array.fill t.armed 0 pin_count None;
  Array.fill t.pending 0 pin_count false
