(** Hardware fault model.

    Faults are how target-side failures surface to the execution engine:
    an out-of-range memory access raises a bus fault, kernel panics raise
    usage faults via the OS personality's exception handler, and anything
    escaping those becomes a hard fault. The engine catches {!Trap} and
    parks the target at the board's fault-handler address, where the
    host's exception monitor has a breakpoint. *)

type kind =
  | Bus_fault  (** access outside a mapped region, or to a stale device *)
  | Usage_fault  (** illegal operation: misaligned access, div by zero *)
  | Hard_fault  (** unrecoverable escalation *)
  | Mem_manage_fault  (** allocator metadata corruption detected *)

type t = {
  kind : kind;
  address : int option;  (** faulting address when meaningful *)
  message : string;  (** human-readable diagnosis, surfaces in crash logs *)
}

exception Trap of t

val bus : ?address:int -> string -> 'a
(** Raise a bus fault. *)

val usage : ?address:int -> string -> 'a

val hard : string -> 'a

val mem_manage : ?address:int -> string -> 'a

val kind_name : kind -> string

val to_string : t -> string
