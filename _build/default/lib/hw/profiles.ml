let kib n = n * 1024

let mib n = n * 1024 * 1024

let stm32f4_disco =
  {
    Board.name = "stm32f4-disco";
    arch = Arch.arm_cortex_m;
    flash_base = 0x0800_0000;
    flash_size = mib 1;
    sector_size = kib 16;
    ram_base = 0x2000_0000;
    ram_size = kib 192;
    cpu_mhz = 168;
    debug_port = Board.Swd;
    peripheral_emulation = false;
  }

let stm32h745_nucleo =
  {
    Board.name = "stm32h745-nucleo";
    arch = Arch.arm_cortex_m;
    flash_base = 0x0800_0000;
    flash_size = mib 2;
    sector_size = kib 128;
    ram_base = 0x2400_0000;
    ram_size = kib 512;
    cpu_mhz = 480;
    debug_port = Board.Swd;
    peripheral_emulation = false;
  }

let esp32_devkitc =
  {
    Board.name = "esp32-devkitc";
    arch = Arch.xtensa;
    flash_base = 0x4000_0000;
    flash_size = mib 4;
    sector_size = kib 4;
    ram_base = 0x3FFB_0000;
    ram_size = kib 320;
    cpu_mhz = 240;
    debug_port = Board.Jtag;
    peripheral_emulation = true;
  }

let hifive1 =
  {
    Board.name = "hifive1-revb";
    arch = Arch.riscv32;
    flash_base = 0x2000_0000;
    flash_size = mib 4;
    sector_size = kib 4;
    ram_base = 0x8000_0000;
    ram_size = kib 64;
    cpu_mhz = 320;
    debug_port = Board.Jtag;
    peripheral_emulation = true;
  }

let qemu_mps2 =
  {
    Board.name = "qemu-mps2-an385";
    arch = Arch.arm_cortex_m;
    flash_base = 0x0000_0000;
    flash_size = mib 4;
    sector_size = kib 4;
    ram_base = 0x2000_0000;
    ram_size = mib 4;
    cpu_mhz = 25;
    debug_port = Board.Emulated;
    peripheral_emulation = true;
  }

let qemu_pok =
  {
    Board.name = "qemu-pok";
    arch = Arch.arm_cortex_m;
    flash_base = 0x0000_0000;
    flash_size = mib 2;
    sector_size = kib 4;
    ram_base = 0x2000_0000;
    ram_size = mib 1;
    cpu_mhz = 100;
    debug_port = Board.Emulated;
    peripheral_emulation = true;
  }

let all = [ stm32f4_disco; stm32h745_nucleo; esp32_devkitc; hifive1; qemu_mps2; qemu_pok ]

let find name = List.find_opt (fun p -> p.Board.name = name) all
