type endianness = Little | Big

type family = Arm_cortex_m | Riscv32 | Xtensa | Powerpc | Mips

type t = {
  family : family;
  endianness : endianness;
  word_bits : int;
  register_count : int;
  pc_register : int;
}

let arm_cortex_m =
  { family = Arm_cortex_m; endianness = Little; word_bits = 32; register_count = 17; pc_register = 15 }

let riscv32 =
  { family = Riscv32; endianness = Little; word_bits = 32; register_count = 33; pc_register = 32 }

let xtensa =
  { family = Xtensa; endianness = Little; word_bits = 32; register_count = 64; pc_register = 0 }

let powerpc =
  { family = Powerpc; endianness = Big; word_bits = 32; register_count = 32; pc_register = 64 }

let mips =
  { family = Mips; endianness = Big; word_bits = 32; register_count = 38; pc_register = 37 }

let family_name = function
  | Arm_cortex_m -> "ARM"
  | Riscv32 -> "RISC-V"
  | Xtensa -> "Xtensa"
  | Powerpc -> "Power PC"
  | Mips -> "MIPS"

let pp fmt t =
  Format.fprintf fmt "%s/%db/%s" (family_name t.family) t.word_bits
    (match t.endianness with Little -> "le" | Big -> "be")
