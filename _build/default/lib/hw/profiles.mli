(** Canonical board profiles used across the evaluation.

    Mirrors the hardware mix in the paper: STM32 boards (ARM Cortex-M,
    SWD), an ESP32 devkit (Xtensa, JTAG), a RISC-V board, and
    emulator-backed boards for the Tardis/Gustave comparisons. *)

val stm32f4_disco : Board.profile
(** STM32F407 Discovery: 1 MiB flash, 192 KiB RAM, 168 MHz, SWD. *)

val stm32h745_nucleo : Board.profile
(** STM32H745 Nucleo: the industrial-control board the paper's intro
    cites as having no peripheral-accurate emulator. *)

val esp32_devkitc : Board.profile
(** ESP32 DevKitC: Xtensa, JTAG, peripheral emulation available. *)

val hifive1 : Board.profile
(** SiFive HiFive1: RISC-V, JTAG. *)

val qemu_mps2 : Board.profile
(** QEMU MPS2-AN385: the emulated ARM board Tardis runs on. *)

val qemu_pok : Board.profile
(** The customized QEMU board Gustave uses for POK. *)

val all : Board.profile list

val find : string -> Board.profile option
