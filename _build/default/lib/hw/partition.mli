(** Flash partition tables.

    The paper's state-restoration procedure (Algorithm 1) extracts the
    partition table from the OS build configuration and reflashes each
    partition at its recorded offset. We model the build configuration as
    a small text format:

    {v
    # comment
    partition bootloader offset=0x0000 size=0x4000
    partition kernel offset=0x4000 size=0x30000
    v}

    Offsets are relative to the flash base. Tables are validated for
    overlap and flash-size fit at parse time, because — as the paper
    notes — "any misconfiguration in these addresses can lead to critical
    failures". *)

type entry = { name : string; offset : int; size : int }

type t = entry list

val parse_config : flash_size:int -> string -> (t, string) result
(** Parse and validate the config text. Rejects duplicate names,
    overlapping entries, and entries outside [\[0, flash_size)]. *)

val to_config : t -> string
(** Inverse of {!parse_config} up to comments/whitespace. *)

val validate : flash_size:int -> t -> (unit, string) result

val find : t -> string -> entry option

val total_size : t -> int
