type t = {
  fifo : char Eof_util.Ring.t;
  mutable partial : Buffer.t; (* host-side partial line between drains *)
  mutable bytes_written : int;
}

let create ?(fifo_bytes = 8192) () =
  { fifo = Eof_util.Ring.create fifo_bytes; partial = Buffer.create 128; bytes_written = 0 }

let write_char t c =
  t.bytes_written <- t.bytes_written + 1;
  ignore (Eof_util.Ring.push t.fifo c : bool)

let write_string t s = String.iter (write_char t) s

let drain t =
  let chars = Eof_util.Ring.drain t.fifo in
  let buf = Buffer.create (List.length chars) in
  List.iter (Buffer.add_char buf) chars;
  Buffer.contents buf

let drain_lines t =
  Buffer.add_string t.partial (drain t);
  let s = Buffer.contents t.partial in
  let pieces = String.split_on_char '\n' s in
  (* The last piece is an unfinished line (possibly empty); keep it. *)
  let rec split_last acc = function
    | [] -> (List.rev acc, "")
    | [ last ] -> (List.rev acc, last)
    | x :: rest -> split_last (x :: acc) rest
  in
  let complete, rest = split_last [] pieces in
  Buffer.clear t.partial;
  Buffer.add_string t.partial rest;
  complete

let overruns t = Eof_util.Ring.dropped t.fifo

let reset t =
  Eof_util.Ring.clear t.fifo;
  Buffer.clear t.partial;
  t.bytes_written <- 0

let bytes_written t = t.bytes_written
