(** Virtual time.

    The simulation measures time in CPU cycles; campaigns convert cycles
    to virtual seconds with the board's clock frequency. Every effect the
    target performs charges cycles, so instrumentation overhead shows up
    as reduced payload throughput exactly as in the paper's §5.5.2. *)

type t

val create : mhz:int -> t

val mhz : t -> int

val cycles : t -> int64

val advance : t -> int -> unit
(** Charge a non-negative number of cycles. *)

val now_us : t -> float
(** Microseconds of virtual time elapsed since reset. *)

val now_s : t -> float

val reset : t -> unit
