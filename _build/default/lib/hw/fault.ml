type kind = Bus_fault | Usage_fault | Hard_fault | Mem_manage_fault

type t = { kind : kind; address : int option; message : string }

exception Trap of t

let raise_fault kind address message = raise (Trap { kind; address; message })

let bus ?address message = raise_fault Bus_fault address message

let usage ?address message = raise_fault Usage_fault address message

let hard message = raise_fault Hard_fault None message

let mem_manage ?address message = raise_fault Mem_manage_fault address message

let kind_name = function
  | Bus_fault -> "BusFault"
  | Usage_fault -> "UsageFault"
  | Hard_fault -> "HardFault"
  | Mem_manage_fault -> "MemManageFault"

let to_string t =
  match t.address with
  | Some a -> Printf.sprintf "%s at 0x%08x: %s" (kind_name t.kind) a t.message
  | None -> Printf.sprintf "%s: %s" (kind_name t.kind) t.message
