(** NOR-flash storage with sector-erase/program semantics.

    Programming can only clear bits (1 -> 0); turning bits back on
    requires erasing a whole sector to [0xFF]. The reflash path used by
    state restoration therefore erases the covering sectors before
    programming an image, as OpenOCD's [flash write_image] does. *)

type t

val create : base:int -> size:int -> sector_size:int -> endianness:Arch.endianness -> t
(** Fresh flash, fully erased ([0xFF]). [size] must be a positive
    multiple of [sector_size]. *)

val base : t -> int

val size : t -> int

val sector_size : t -> int

val mem : t -> Memory.t
(** The raw backing region (reads go through this; target code may read
    flash like memory, as on real MCUs). *)

val erase_sector : t -> addr:int -> unit
(** Erase the sector containing [addr]. @raise Fault.Trap if out of
    range. *)

val erase_range : t -> addr:int -> len:int -> unit
(** Erase every sector intersecting [\[addr, addr+len)]. *)

val program : t -> addr:int -> string -> unit
(** AND-program bytes at [addr]: each written bit pattern is combined as
    [old land new]. @raise Fault.Trap if out of range. *)

val write_image : t -> addr:int -> string -> unit
(** Erase then program: the reflash primitive. *)

val read : t -> addr:int -> len:int -> string

val crc_range : t -> addr:int -> len:int -> int32

val erase_count : t -> int
(** Total sector erases since creation — a cheap wear metric used by the
    overhead experiments and tests. *)

val corrupt : t -> addr:int -> string -> unit
(** Scribble raw bytes, bypassing program semantics. Models in-system
    image damage caused by buggy kernel code. *)
