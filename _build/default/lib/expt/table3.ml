module Stats = Eof_util.Stats

let cell_text cells ~os ~tool ~eof_mean =
  match Runner.coverage_of cells ~tool ~os with
  | None -> "-"
  | Some mean when mean <= 0. -> "-"
  | Some mean ->
    Printf.sprintf "%s (%s)" (Stats.fmt1 mean)
      (Stats.fmt_pct (Stats.improvement_pct ~baseline:mean ~subject:eof_mean))

let render cells =
  let oses = [ "NuttX"; "RT-Thread"; "Zephyr"; "FreeRTOS"; "PoKOS" ] in
  let body =
    List.map
      (fun os ->
        let eof_mean =
          Option.value ~default:0. (Runner.coverage_of cells ~tool:Runner.EOF ~os)
        in
        [
          os;
          Stats.fmt1 eof_mean;
          cell_text cells ~os ~tool:Runner.EOF_nf ~eof_mean;
          cell_text cells ~os ~tool:Runner.Tardis ~eof_mean;
          cell_text cells ~os ~tool:Runner.Gustave ~eof_mean;
        ])
      oses
  in
  let table =
    Eof_util.Text_table.render
      ~header:[ "Target OSs"; "EOF"; "EOF-nf"; "Tardis"; "Gustave" ]
      body
  in
  (* The bug-detection comparison attached to this experiment. *)
  let bug_line tool =
    let crashes =
      List.concat_map
        (fun os -> Runner.union_crashes (Runner.outcomes_of cells ~tool ~os))
        oses
    in
    let ids = Targets.found_ids crashes in
    Printf.sprintf "%-7s detected %2d bugs: {%s}" (Runner.tool_name tool)
      (List.length ids)
      (String.concat ", " (List.map (fun i -> "#" ^ string_of_int i) ids))
  in
  table ^ "\n\nBug detection under the same payload budget:\n  " ^ bug_line Runner.EOF
  ^ "\n  " ^ bug_line Runner.EOF_nf ^ "\n  " ^ bug_line Runner.Tardis ^ "\n"
