(** ASCII rendering for coverage-growth figures.

    Each tool contributes one series per repeated run, already mapped to
    the virtual-hour axis; the renderer prints the mean curve with the
    min/max band (the paper's shaded area) at two-hour marks, plus a
    character plot of the mean curves. *)

type tool_series = {
  label : string;
  glyph : char;  (** plot marker *)
  runs : (float * int) list list;  (** per-run (hours, coverage) series *)
}

val value_at : (float * int) list -> float -> int
(** Last sample at or before the given hour. *)

val render : title:string -> tool_series list -> string

val to_csv : title:string -> tool_series list -> string
(** Machine-readable series: [figure,tool,run,hours,coverage] rows, one
    per sample, for external plotting. *)
