(** Figure 7 — coverage growth over the (virtual) 24-hour campaigns on
    the four hardware OSs, for EOF, EOF-nf and Tardis, with min/max
    bands across the repeated runs. *)

val render : iterations:int -> Runner.cell list -> string

val to_csv : iterations:int -> Runner.cell list -> string
(** CSV of every tool's per-run series across the four OSs. *)
