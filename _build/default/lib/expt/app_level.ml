open Eof_os
module Campaign = Eof_core.Campaign

type app_tool = App_EOF | App_GDBFuzz | App_SHIFT

let tool_name = function
  | App_EOF -> "EOF"
  | App_GDBFuzz -> "GDBFuzz"
  | App_SHIFT -> "SHIFT"

type app_cell = { tool : app_tool; component : string; outcomes : Campaign.outcome list }

type component_def = {
  name : string;
  instrument : string list;  (** module blocks to record coverage in *)
  entry_api : string;  (** baseline single entry point *)
  eof_apis : string list;  (** the app surface EOF's spec is limited to *)
}

let components =
  [
    {
      name = "HTTP Server";
      instrument = [ Freertos.http_module ];
      entry_api = "http_request";
      eof_apis = [ "http_request"; "syz_http_get"; "syz_http_post_json" ];
    };
    {
      name = "JSON";
      instrument = [ Freertos.json_module ];
      entry_api = "json_parse";
      eof_apis = [ "json_parse"; "syz_http_post_json" ];
    };
  ]

let make_build c =
  Osbuild.make
    ~instrument:(Osbuild.Instrument_only c.instrument)
    ~board_profile:Eof_hw.Profiles.esp32_devkitc Freertos.spec

let run_one tool c ~seed ~iterations =
  let build = make_build c in
  match tool with
  | App_EOF ->
    Campaign.run
      {
        Campaign.default_config with
        seed;
        iterations;
        api_filter = Some c.eof_apis;
        max_prog_len = 6;
      }
      build
  | App_GDBFuzz ->
    Eof_baselines.Gdbfuzz.run ~seed ~iterations ~entry_api:c.entry_api
      ~sample_modules:c.instrument build
  | App_SHIFT -> Eof_baselines.Shift.run ~seed ~iterations ~entry_api:c.entry_api build

let cache : (int * int, app_cell list) Hashtbl.t = Hashtbl.create 4

let matrix ?iterations ?reps () =
  let iterations = match iterations with Some i -> i | None -> Runner.scaled 2000 in
  let reps = match reps with Some r -> r | None -> Runner.repetitions in
  match Hashtbl.find_opt cache (iterations, reps) with
  | Some cells -> cells
  | None ->
    let cells =
      List.concat_map
        (fun c ->
          List.map
            (fun tool ->
              let outcomes =
                List.filter_map
                  (fun seed ->
                    match run_one tool c ~seed ~iterations with
                    | Ok o -> Some o
                    | Error _ -> None)
                  (Runner.seeds reps)
              in
              { tool; component = c.name; outcomes })
            [ App_EOF; App_GDBFuzz; App_SHIFT ])
        components
    in
    Hashtbl.replace cache (iterations, reps) cells;
    cells

let outcomes_of cells ~tool ~component =
  match List.find_opt (fun c -> c.tool = tool && c.component = component) cells with
  | Some c -> c.outcomes
  | None -> []

let mean_coverage cells ~tool ~component =
  match outcomes_of cells ~tool ~component with
  | [] -> 0.
  | os -> Eof_util.Stats.mean (List.map (fun o -> float_of_int o.Campaign.coverage) os)
