module Campaign = Eof_core.Campaign

let series_for cells ~iterations ~tool ~os =
  List.map
    (fun (o : Campaign.outcome) -> Runner.hours_of_series ~iterations o.Campaign.series)
    (Runner.outcomes_of cells ~tool ~os)

let render ~iterations cells =
  let sub os label =
    let tool_series tool glyph =
      {
        Fig_render.label = Runner.tool_name tool;
        glyph;
        runs = series_for cells ~iterations ~tool ~os;
      }
    in
    Fig_render.render
      ~title:(Printf.sprintf "(%s) %s" label os)
      [ tool_series Runner.EOF 'E'; tool_series Runner.EOF_nf 'n';
        (if os = "PoKOS" then tool_series Runner.Gustave 'G'
         else tool_series Runner.Tardis 'T') ]
  in
  String.concat "\n"
    [ sub "NuttX" "a"; sub "RT-Thread" "b"; sub "Zephyr" "c"; sub "FreeRTOS" "d" ]

let to_csv ~iterations cells =
  String.concat ""
    (List.map
       (fun os ->
         Fig_render.to_csv ~title:os
           [
             { Fig_render.label = "EOF"; glyph = 'E'; runs = series_for cells ~iterations ~tool:Runner.EOF ~os };
             { Fig_render.label = "EOF-nf"; glyph = 'n'; runs = series_for cells ~iterations ~tool:Runner.EOF_nf ~os };
             (if os = "PoKOS" then
                { Fig_render.label = "Gustave"; glyph = 'G'; runs = series_for cells ~iterations ~tool:Runner.Gustave ~os }
              else
                { Fig_render.label = "Tardis"; glyph = 'T'; runs = series_for cells ~iterations ~tool:Runner.Tardis ~os });
           ])
       [ "NuttX"; "RT-Thread"; "Zephyr"; "FreeRTOS" ])
