module Campaign = Eof_core.Campaign

let render ~iterations cells =
  let sub component label =
    let series tool glyph =
      {
        Fig_render.label = App_level.tool_name tool;
        glyph;
        runs =
          List.map
            (fun (o : Campaign.outcome) ->
              Runner.hours_of_series ~iterations o.Campaign.series)
            (App_level.outcomes_of cells ~tool ~component);
      }
    in
    Fig_render.render
      ~title:(Printf.sprintf "(%s) %s" label component)
      [
        series App_level.App_EOF 'E';
        series App_level.App_GDBFuzz 'g';
        series App_level.App_SHIFT 's';
      ]
  in
  String.concat "\n" [ sub "HTTP Server" "a"; sub "JSON" "b" ]

let to_csv ~iterations cells =
  let series tool component =
    List.map
      (fun (o : Campaign.outcome) -> Runner.hours_of_series ~iterations o.Campaign.series)
      (App_level.outcomes_of cells ~tool ~component)
  in
  String.concat ""
    (List.map
       (fun component ->
         Fig_render.to_csv ~title:component
           [
             { Fig_render.label = "EOF"; glyph = 'E'; runs = series App_level.App_EOF component };
             { Fig_render.label = "GDBFuzz"; glyph = 'g'; runs = series App_level.App_GDBFuzz component };
             { Fig_render.label = "SHIFT"; glyph = 's'; runs = series App_level.App_SHIFT component };
           ])
       [ "HTTP Server"; "JSON" ])
