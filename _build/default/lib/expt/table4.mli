(** Table 4 — coverage of EOF vs GDBFuzz vs SHIFT on the HTTP server and
    JSON components running on hardware, with EOF's average improvement
    per baseline (the paper's 35.51% / 107.03% row). *)

val render : App_level.app_cell list -> string
