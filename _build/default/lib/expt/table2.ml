module Crash = Eof_core.Crash

type row = { bug : Targets.bug; found : bool; monitor : string }

let compute cells =
  let eof_crashes =
    List.concat_map
      (fun os ->
        Runner.union_crashes (Runner.outcomes_of cells ~tool:Runner.EOF ~os))
      [ "Zephyr"; "RT-Thread"; "NuttX"; "FreeRTOS"; "PoKOS" ]
  in
  List.map
    (fun bug ->
      let hits =
        List.filter (fun c -> Targets.match_bug c = Some bug) eof_crashes
      in
      match hits with
      | [] -> { bug; found = false; monitor = "-" }
      | c :: _ -> { bug; found = true; monitor = Crash.monitor_name c.Crash.detected_by })
    Targets.catalog

let render cells =
  let rows = compute cells in
  let body =
    List.map
      (fun r ->
        [
          string_of_int r.bug.Targets.id;
          r.bug.Targets.os;
          r.bug.Targets.scope;
          r.bug.Targets.bug_type;
          r.bug.Targets.operation;
          (if r.bug.Targets.confirmed then "confirmed" else "");
          (if r.found then "FOUND (" ^ r.monitor ^ ")" else "missed");
        ])
      rows
  in
  let found = List.length (List.filter (fun r -> r.found) rows) in
  let confirmed_found =
    List.length (List.filter (fun r -> r.found && r.bug.Targets.confirmed) rows)
  in
  Eof_util.Text_table.render
    ~header:[ "#"; "Target OSs"; "Scope"; "Bug Types"; "Operations"; "Status"; "EOF result" ]
    body
  ^ Printf.sprintf "\nEOF detected %d/19 seeded bugs (%d of the 5 confirmed ones).\n" found
      confirmed_found
