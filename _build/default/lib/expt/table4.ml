module Stats = Eof_util.Stats

let render cells =
  let mean tool component = App_level.mean_coverage cells ~tool ~component in
  let row tool =
    let http = mean tool "HTTP Server" in
    let json = mean tool "JSON" in
    let avg = (http +. json) /. 2. in
    (tool, http, json, avg)
  in
  let _, eof_http, eof_json, eof_avg = row App_level.App_EOF in
  let fmt_cell ~eof v =
    if v <= 0. then "-"
    else
      Printf.sprintf "%s (%s)" (Stats.fmt1 v)
        (Stats.fmt_pct (Stats.improvement_pct ~baseline:v ~subject:eof))
  in
  let body =
    [
      [ "EOF"; Stats.fmt1 eof_http; Stats.fmt1 eof_json; Stats.fmt1 eof_avg ];
    ]
    @ List.map
        (fun tool ->
          let _, http, json, avg = row tool in
          [
            App_level.tool_name tool;
            fmt_cell ~eof:eof_http http;
            fmt_cell ~eof:eof_json json;
            fmt_cell ~eof:eof_avg avg;
          ])
        [ App_level.App_GDBFuzz; App_level.App_SHIFT ]
  in
  Eof_util.Text_table.render ~header:[ "Fuzzers"; "HTTP Server"; "JSON"; "Average" ] body
