open Eof_os
module Campaign = Eof_core.Campaign
module Stats = Eof_util.Stats

let hardware_oses = [ "NuttX"; "RT-Thread"; "Zephyr"; "FreeRTOS" ]

let mib bytes = float_of_int bytes /. 1024. /. 1024.

let render_memory () =
  let rows, pcts =
    List.fold_left
      (fun (rows, pcts) os ->
        match Targets.find os with
        | None -> (rows, pcts)
        | Some target ->
          let plain = Targets.build_hw ~instrument:Osbuild.Instrument_none target in
          let instr = Targets.build_hw target in
          let b0 = Osbuild.image_bytes plain in
          let b1 = Osbuild.image_bytes instr in
          let pct = Stats.improvement_pct ~baseline:(float_of_int b0) ~subject:(float_of_int b1) in
          ( [
              os;
              Printf.sprintf "%.3f MB" (mib b0);
              Printf.sprintf "%.3f MB" (mib b1);
              Printf.sprintf "%.2f%%" pct;
            ]
            :: rows,
            pct :: pcts ))
      ([], []) hardware_oses
  in
  Eof_util.Text_table.render
    ~header:[ "Target OSs"; "Uninstrumented"; "Instrumented"; "Increase" ]
    (List.rev rows)
  ^ Printf.sprintf "\nAverage memory overhead: %.2f%%\n" (Stats.mean pcts)

(* Crash- and hang-triggering calls distort throughput measurements
   (every panic costs a reboot, every hang a watchdog cycle), so the
   steady-state measurement excludes the bug catalog's trigger calls. *)
let benign_filter (target : Targets.hw_target) =
  let os = target.Targets.spec.Eof_os.Osbuild.os_name in
  let poisoned =
    List.concat_map
      (fun (b : Targets.bug) -> if b.Targets.os = os then b.Targets.match_ops else [])
      Targets.catalog
    @ [ "rt_object_detach"; "rt_serial_ctrl" ]
  in
  let build = Targets.build_hw target in
  let table = Eof_os.Osbuild.api_signatures build in
  List.filter_map
    (fun (e : Eof_rtos.Api.entry) ->
      if List.mem e.Eof_rtos.Api.name poisoned then None else Some e.Eof_rtos.Api.name)
    table.Eof_rtos.Api.entries

let throughput target ~instrument ~iterations =
  let build = Targets.build_hw ~instrument target in
  let config =
    {
      Campaign.default_config with
      seed = 9L;
      iterations;
      feedback = false;
      snapshot_every = max 1 (iterations / 4);
      api_filter = Some (benign_filter target);
    }
  in
  match Campaign.run config build with
  | Error _ -> None
  | Ok outcome ->
    let cpu_s = Eof_hw.Clock.now_s (Eof_hw.Board.clock (Osbuild.board build)) in
    if cpu_s <= 0. then None
    else Some (float_of_int outcome.Campaign.executed_programs /. cpu_s)

let render_execution ?iterations () =
  let iterations = match iterations with Some i -> i | None -> Runner.scaled 800 in
  let rows, pcts =
    List.fold_left
      (fun (rows, pcts) os ->
        match Targets.find os with
        | None -> (rows, pcts)
        | Some target ->
          (match
             ( throughput target ~instrument:Osbuild.Instrument_none ~iterations,
               throughput target ~instrument:Osbuild.Instrument_full ~iterations )
           with
           | Some plain, Some instr ->
             let pct = (plain -. instr) /. plain *. 100. in
             ( [
                 os;
                 Printf.sprintf "%.3g" plain;
                 Printf.sprintf "%.3g" instr;
                 Printf.sprintf "%.2f%%" pct;
               ]
               :: rows,
               pct :: pcts )
           | _ -> (rows, pcts)))
      ([], []) hardware_oses
  in
  Eof_util.Text_table.render
    ~header:[ "Target OSs"; "Payloads/s (plain)"; "Payloads/s (instr)"; "Overhead" ]
    (List.rev rows)
  ^ Printf.sprintf "\nAverage execution overhead: %.2f%%\n"
      (match pcts with [] -> 0. | _ -> Stats.mean pcts)
