open Eof_os

(** Canonical evaluation targets and the Table-2 ground-truth bug
    catalog. *)

type hw_target = { spec : Osbuild.spec; board : Eof_hw.Board.profile }

val all : hw_target list
(** The five evaluated OSs on the boards the paper pairs them with:
    FreeRTOS/ESP32, RT-Thread/STM32F4, NuttX/STM32H745, Zephyr/STM32F4,
    PoKOS on its reference board. *)

val find : string -> hw_target option

val build_hw : ?instrument:Osbuild.instrument_mode -> hw_target -> Osbuild.t

type bug = {
  id : int;
  os : string;
  scope : string;
  bug_type : string;  (** "Kernel Panic" / "Kernel Assertion" *)
  operation : string;  (** the paper's Operations column *)
  match_ops : string list;  (** crash operations that identify this bug *)
  confirmed : bool;
}

val catalog : bug list
(** All 19 seeded bugs, ids matching the paper's Table 2. *)

val match_bug : Eof_core.Crash.t -> bug option
(** Identify which catalog bug (if any) a crash is. *)

val found_ids : Eof_core.Crash.t list -> int list
(** Sorted distinct catalog ids matched by the crash list. *)
