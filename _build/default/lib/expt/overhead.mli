(** §5.5 — instrumentation overhead.

    Memory: firmware image size with and without SanCov instrumentation
    (the paper's 4.32%–9.58%, averaging 6.44%).

    Execution: payloads executed per unit of target CPU time with and
    without instrumentation, extrapolated to the paper's
    payloads-per-10-minutes framing (the ~23.39% average slowdown).
    Campaigns run blind (no feedback) on both builds so only the
    instrumentation's cycle cost differs. *)

val render_memory : unit -> string

val render_execution : ?iterations:int -> unit -> string
