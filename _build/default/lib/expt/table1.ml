(* (target, arch, EOF, GDBFuzz, Tardis, SHIFT) per the tools' support
   matrices. *)
let rows =
  [
    ("FreeRTOS", "ARM", true, false, true, true);
    ("FreeRTOS", "RISC-V", true, false, true, true);
    ("FreeRTOS", "Power PC", false, false, false, true);
    ("FreeRTOS", "MIPS", false, false, false, true);
    ("RTThread", "ARM", true, false, true, false);
    ("Nuttx", "ARM", true, false, true, false);
    ("Zephyr", "ARM", true, false, true, false);
    ("Applications", "ARM", true, true, false, true);
    ("Applications", "RISC-V", true, false, false, true);
    ("Applications", "Power PC", false, false, false, true);
    ("Applications", "MIPS", false, false, false, true);
    ("Applications", "MSP430", false, true, false, false);
  ]

let mark b = if b then "yes" else "-"

let render () =
  let header = [ "Target Systems"; "Arch"; "EOF"; "GDBFuzz"; "Tardis"; "SHIFT" ] in
  let body =
    List.map
      (fun (target, arch, eof, gdbfuzz, tardis, shift) ->
        [ target; arch; mark eof; mark gdbfuzz; mark tardis; mark shift ])
      rows
  in
  Eof_util.Text_table.render ~header body
