(** Figure 8 — coverage growth of EOF, GDBFuzz and SHIFT on the HTTP
    server and JSON components over the virtual 24 hours. *)

val render : iterations:int -> App_level.app_cell list -> string

val to_csv : iterations:int -> App_level.app_cell list -> string
