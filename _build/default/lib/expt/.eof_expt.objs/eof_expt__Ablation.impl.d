lib/expt/ablation.ml: Eof_core Eof_cov Eof_os Eof_util List Printf Runner String Targets
