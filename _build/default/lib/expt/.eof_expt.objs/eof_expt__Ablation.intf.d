lib/expt/ablation.mli:
