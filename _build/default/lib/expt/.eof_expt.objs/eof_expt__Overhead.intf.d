lib/expt/overhead.mli:
