lib/expt/table2.ml: Eof_core Eof_util List Printf Runner Targets
