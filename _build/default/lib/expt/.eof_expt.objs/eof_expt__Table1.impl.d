lib/expt/table1.ml: Eof_util List
