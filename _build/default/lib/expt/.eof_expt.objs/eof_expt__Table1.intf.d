lib/expt/table1.mli:
