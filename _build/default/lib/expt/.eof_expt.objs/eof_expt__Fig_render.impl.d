lib/expt/fig_render.ml: Array Buffer Eof_util Float List Printf String
