lib/expt/runner.ml: Eof_baselines Eof_core Eof_util Hashtbl Int64 List Option Sys Targets
