lib/expt/table4.ml: App_level Eof_util List Printf
