lib/expt/fig_render.mli:
