lib/expt/fig8.ml: App_level Eof_core Fig_render List Printf Runner String
