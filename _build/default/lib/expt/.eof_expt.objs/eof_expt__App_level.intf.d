lib/expt/app_level.mli: Eof_core
