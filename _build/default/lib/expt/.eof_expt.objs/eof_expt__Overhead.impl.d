lib/expt/overhead.ml: Eof_core Eof_hw Eof_os Eof_rtos Eof_util List Osbuild Printf Runner Targets
