lib/expt/table4.mli: App_level
