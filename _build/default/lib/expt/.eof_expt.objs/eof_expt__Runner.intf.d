lib/expt/runner.mli: Eof_core Targets
