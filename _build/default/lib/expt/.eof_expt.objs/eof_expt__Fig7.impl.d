lib/expt/fig7.ml: Eof_core Fig_render List Printf Runner String
