lib/expt/table2.mli: Runner Targets
