lib/expt/targets.ml: Eof_core Eof_hw Eof_os Freertos List Nuttx Option Osbuild Pokos Rtthread Zephyr
