lib/expt/targets.mli: Eof_core Eof_hw Eof_os Osbuild
