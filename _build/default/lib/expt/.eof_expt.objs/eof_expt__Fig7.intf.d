lib/expt/fig7.mli: Runner
