lib/expt/fig8.mli: App_level
