lib/expt/table3.mli: Runner
