lib/expt/app_level.ml: Eof_baselines Eof_core Eof_hw Eof_os Eof_util Freertos Hashtbl List Osbuild Runner
