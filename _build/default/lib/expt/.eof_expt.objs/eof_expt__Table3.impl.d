lib/expt/table3.ml: Eof_util List Option Printf Runner String Targets
