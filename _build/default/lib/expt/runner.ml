module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash

let scale () =
  match Sys.getenv_opt "EOF_BENCH_SCALE" with
  | Some s -> (match float_of_string_opt s with Some f when f > 0. -> f | _ -> 1.0)
  | None -> 1.0

let scaled n = max 50 (int_of_float (float_of_int n *. scale ()))

let repetitions = 5

let seeds n = List.init n (fun i -> Int64.of_int ((i * 7919) + 101))

type tool = EOF | EOF_nf | Tardis | Gustave

let tool_name = function
  | EOF -> "EOF"
  | EOF_nf -> "EOF-nf"
  | Tardis -> "Tardis"
  | Gustave -> "Gustave"

let run_tool tool ~seed ~iterations (target : Targets.hw_target) =
  match tool with
  | EOF ->
    let build = Targets.build_hw target in
    Campaign.run { Campaign.default_config with seed; iterations } build
  | EOF_nf ->
    let build = Targets.build_hw target in
    Campaign.run
      { Campaign.default_config with seed; iterations; feedback = false }
      build
  | Tardis ->
    let build = Eof_baselines.Tardis.build_for target.Targets.spec in
    Eof_baselines.Tardis.run ~seed ~iterations build
  | Gustave ->
    let build = Eof_baselines.Gustave.build_for target.Targets.spec in
    Eof_baselines.Gustave.run ~seed ~iterations build

type cell = { tool : tool; os : string; outcomes : Campaign.outcome list }

let matrix_cache : (int * int, cell list) Hashtbl.t = Hashtbl.create 4

let full_system_matrix ?iterations ?reps () =
  let iterations = match iterations with Some i -> i | None -> scaled 3000 in
  let reps = match reps with Some r -> r | None -> repetitions in
  match Hashtbl.find_opt matrix_cache (iterations, reps) with
  | Some cells -> cells
  | None ->
    let hardware_oses = [ "NuttX"; "RT-Thread"; "Zephyr"; "FreeRTOS" ] in
    let cells = ref [] in
    let run_cell tool os =
      match Targets.find os with
      | None -> ()
      | Some target ->
        let outcomes =
          List.filter_map
            (fun seed ->
              match run_tool tool ~seed ~iterations target with
              | Ok o -> Some o
              | Error _ -> None)
            (seeds reps)
        in
        cells := { tool; os; outcomes } :: !cells
    in
    List.iter
      (fun os ->
        run_cell EOF os;
        run_cell EOF_nf os;
        run_cell Tardis os)
      hardware_oses;
    run_cell EOF "PoKOS";
    run_cell EOF_nf "PoKOS";
    run_cell Gustave "PoKOS";
    let cells = List.rev !cells in
    Hashtbl.replace matrix_cache (iterations, reps) cells;
    cells

let mean_coverage cell =
  match cell.outcomes with
  | [] -> 0.
  | os -> Eof_util.Stats.mean (List.map (fun o -> float_of_int o.Campaign.coverage) os)

let find_cell cells ~tool ~os = List.find_opt (fun c -> c.tool = tool && c.os = os) cells

let coverage_of cells ~tool ~os = Option.map mean_coverage (find_cell cells ~tool ~os)

let outcomes_of cells ~tool ~os =
  match find_cell cells ~tool ~os with Some c -> c.outcomes | None -> []

let union_crashes outcomes =
  let seen = Hashtbl.create 32 in
  List.concat_map (fun o -> o.Campaign.crashes) outcomes
  |> List.filter (fun c ->
         let key = Crash.dedup_key c in
         if Hashtbl.mem seen key then false
         else begin
           Hashtbl.replace seen key ();
           true
         end)

let hours_of_series ~iterations samples =
  List.map
    (fun (s : Campaign.sample) ->
      (float_of_int s.Campaign.iteration /. float_of_int iterations *. 24., s.Campaign.coverage))
    samples

let coverage_at_hours ~iterations ~hours (outcome : Campaign.outcome) =
  let series = hours_of_series ~iterations outcome.Campaign.series in
  let rec go best = function
    | [] -> best
    | (h, cov) :: rest -> if h <= hours then go cov rest else best
  in
  go 0 series
