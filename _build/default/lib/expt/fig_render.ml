type tool_series = { label : string; glyph : char; runs : (float * int) list list }

let value_at series hour =
  let rec go best = function
    | [] -> best
    | (h, v) :: rest -> if h <= hour +. 1e-9 then go v rest else best
  in
  go 0 series

let hour_marks = [ 0.; 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16.; 18.; 20.; 22.; 24. ]

let band tool hour =
  match tool.runs with
  | [] -> (0., 0., 0.)
  | runs ->
    let values = List.map (fun run -> float_of_int (value_at run hour)) runs in
    let mean = Eof_util.Stats.mean values in
    let lo, hi = Eof_util.Stats.min_max values in
    (mean, lo, hi)

let plot_width = 61

let plot_height = 14

let render ~title tools =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  (* Value table: mean [min-max] per tool at two-hour marks. *)
  let header =
    "hours" :: List.map (fun t -> Printf.sprintf "%s mean [min-max]" t.label) tools
  in
  let body =
    List.map
      (fun hour ->
        Printf.sprintf "%.0f" hour
        :: List.map
             (fun tool ->
               let mean, lo, hi = band tool hour in
               Printf.sprintf "%.1f [%.0f-%.0f]" mean lo hi)
             tools)
      hour_marks
  in
  Buffer.add_string buf (Eof_util.Text_table.render ~header body);
  Buffer.add_char buf '\n';
  (* Character plot of the mean curves. *)
  let max_cov =
    List.fold_left
      (fun acc tool ->
        let m, _, _ = band tool 24. in
        Float.max acc m)
      1. tools
  in
  let grid = Array.make_matrix plot_height plot_width ' ' in
  List.iter
    (fun tool ->
      for col = 0 to plot_width - 1 do
        let hour = 24. *. float_of_int col /. float_of_int (plot_width - 1) in
        let mean, _, _ = band tool hour in
        let row =
          plot_height - 1
          - int_of_float (mean /. max_cov *. float_of_int (plot_height - 1))
        in
        let row = max 0 (min (plot_height - 1) row) in
        if grid.(row).(col) = ' ' then grid.(row).(col) <- tool.glyph
      done)
    tools;
  Buffer.add_string buf (Printf.sprintf "  branches (max %.0f)\n" max_cov);
  Array.iter
    (fun row ->
      Buffer.add_string buf "  |";
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf ("  +" ^ String.make plot_width '-' ^ "\n");
  Buffer.add_string buf "   0h                         12h                          24h\n";
  Buffer.add_string buf
    ("  legend: "
    ^ String.concat "  " (List.map (fun t -> Printf.sprintf "%c=%s" t.glyph t.label) tools)
    ^ "\n");
  Buffer.contents buf

let to_csv ~title tools =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "figure,tool,run,hours,coverage\n";
  List.iter
    (fun tool ->
      List.iteri
        (fun run series ->
          List.iter
            (fun (hours, coverage) ->
              Buffer.add_string buf
                (Printf.sprintf "%s,%s,%d,%.3f,%d\n" title tool.label run hours coverage))
            series)
        tool.runs)
    tools;
  Buffer.contents buf
