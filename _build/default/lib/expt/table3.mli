(** Table 3 — coverage comparison of EOF, EOF-nf, Tardis and Gustave on
    the five OSs. Cells are mean branches over the repeated runs, with
    EOF's improvement over each baseline in parentheses, exactly like
    the paper's layout. Also reports the bug-detection comparison the
    paper attaches to this experiment (EOF-nf 11 bugs, Tardis 6). *)

val render : Runner.cell list -> string
