(** Table 2 — previously-unknown bugs detected by EOF.

    Runs on the full-system matrix's EOF campaigns (all seeds), matches
    every deduplicated crash against the ground-truth catalog, and
    renders the paper's table with a found/missed status plus which
    monitor detected each bug. *)

type row = {
  bug : Targets.bug;
  found : bool;
  monitor : string;  (** how EOF detected it, when found *)
}

val compute : Runner.cell list -> row list

val render : Runner.cell list -> string
