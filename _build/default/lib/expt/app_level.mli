(** The application-level experiment substrate (Table 4 / Figure 8):
    FreeRTOS on the ESP32 devkit with instrumentation strictly confined
    to the HTTP-server / JSON component, fuzzed by EOF (API-aware, but
    restricted to the app surface), GDBFuzz and SHIFT. *)

type app_tool = App_EOF | App_GDBFuzz | App_SHIFT

val tool_name : app_tool -> string

type app_cell = {
  tool : app_tool;
  component : string;  (** "HTTP Server" or "JSON" *)
  outcomes : Eof_core.Campaign.outcome list;
}

val matrix : ?iterations:int -> ?reps:int -> unit -> app_cell list
(** Computed once per process and memoized. *)

val outcomes_of : app_cell list -> tool:app_tool -> component:string ->
  Eof_core.Campaign.outcome list

val mean_coverage : app_cell list -> tool:app_tool -> component:string -> float
