(** Ablations of the DESIGN.md-flagged design choices, beyond the
    paper's own EOF-nf study.

    A1 — PC-stall liveness watchdog: without it a single hang bug wedges
    the campaign until "manual intervention" (here: the campaign's abort
    guard), exactly the failure mode the paper attributes to prior
    hardware fuzzers. RT-Thread hosts a hang bug, so it is the workload.

    A2 — resource-dependency-aware generation: without it, resource
    arguments reference arbitrary earlier calls, so preconditions fail
    and deep handlers starve. *)

val render_a1 : ?iterations:int -> unit -> string

val render_a2 : ?iterations:int -> unit -> string

val render_irq : ?iterations:int -> unit -> string
(** E1 — peripheral event injection (the paper's future-work item,
    implemented here): coverage with and without GPIO edge injection
    alongside the test cases. *)
