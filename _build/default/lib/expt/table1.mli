(** Table 1 — supported targets of EOF, GDBFuzz, Tardis and SHIFT.

    A static capability matrix: which (system, architecture) pairs each
    tool supports, from the tools' published support lists. Rendered to
    match the paper's layout. *)

val rows : (string * string * bool * bool * bool * bool) list
(** (target, arch, eof, gdbfuzz, tardis, shift). *)

val render : unit -> string
