open Eof_os

type hw_target = { spec : Osbuild.spec; board : Eof_hw.Board.profile }

let all =
  [
    { spec = Freertos.spec; board = Eof_hw.Profiles.esp32_devkitc };
    { spec = Rtthread.spec; board = Eof_hw.Profiles.stm32f4_disco };
    { spec = Nuttx.spec; board = Eof_hw.Profiles.stm32h745_nucleo };
    { spec = Zephyr.spec; board = Eof_hw.Profiles.stm32f4_disco };
    { spec = Pokos.spec; board = Eof_hw.Profiles.qemu_pok };
  ]

let find name = List.find_opt (fun t -> t.spec.Osbuild.os_name = name) all

let build_hw ?instrument t =
  match instrument with
  | None -> Osbuild.make ~board_profile:t.board t.spec
  | Some mode -> Osbuild.make ~instrument:mode ~board_profile:t.board t.spec

type bug = {
  id : int;
  os : string;
  scope : string;
  bug_type : string;
  operation : string;
  match_ops : string list;
  confirmed : bool;
}

let catalog =
  [
    { id = 1; os = "Zephyr"; scope = "Heap"; bug_type = "Kernel Panic";
      operation = "sys_heap_stress()"; match_ops = [ "sys_heap_stress" ]; confirmed = false };
    { id = 2; os = "Zephyr"; scope = "Kernel"; bug_type = "Kernel Panic";
      operation = "z_impl_k_msgq_get()"; match_ops = [ "z_impl_k_msgq_get" ];
      confirmed = true };
    { id = 3; os = "Zephyr"; scope = "JSON"; bug_type = "Kernel Panic";
      operation = "json_obj_encode()";
      match_ops = [ "json_obj_encode"; "syz_json_deep_encode" ]; confirmed = true };
    { id = 4; os = "Zephyr"; scope = "KHeap"; bug_type = "Kernel Panic";
      operation = "k_heap_init()"; match_ops = [ "k_heap_init"; "k_heap_alloc" ];
      confirmed = true };
    { id = 5; os = "RT-Thread"; scope = "Kernel"; bug_type = "Kernel Assertion";
      operation = "rt_object_get_type()"; match_ops = [ "rt_object_get_type" ];
      confirmed = false };
    { id = 6; os = "RT-Thread"; scope = "RTService"; bug_type = "Kernel Panic";
      operation = "rt_list_isempty()"; match_ops = [ "rt_service_poll" ]; confirmed = false };
    { id = 7; os = "RT-Thread"; scope = "Memory"; bug_type = "Kernel Panic";
      operation = "rt_mp_alloc()"; match_ops = [ "rt_mp_alloc" ]; confirmed = false };
    { id = 8; os = "RT-Thread"; scope = "Kernel"; bug_type = "Kernel Assertion";
      operation = "rt_object_init()"; match_ops = [ "rt_object_init" ]; confirmed = false };
    { id = 9; os = "RT-Thread"; scope = "Heap"; bug_type = "Kernel Panic";
      operation = "_heap_lock()"; match_ops = [ "rt_free"; "rt_malloc" ]; confirmed = false };
    { id = 10; os = "RT-Thread"; scope = "IPC"; bug_type = "Kernel Panic";
      operation = "rt_event_send()"; match_ops = [ "rt_event_send" ]; confirmed = false };
    { id = 11; os = "RT-Thread"; scope = "Memory"; bug_type = "Kernel Panic";
      operation = "rt_smem_setname()"; match_ops = [ "rt_smem_setname" ]; confirmed = true };
    { id = 12; os = "RT-Thread"; scope = "Serial"; bug_type = "Kernel Panic";
      operation = "rt_serial_write()";
      match_ops = [ "syz_create_bind_socket"; "rt_device_write"; "rt_kprintf" ];
      confirmed = false };
    { id = 13; os = "FreeRTOS"; scope = "Kernel"; bug_type = "Kernel Panic";
      operation = "load_partitions()"; match_ops = [ "load_partitions" ]; confirmed = false };
    { id = 14; os = "NuttX"; scope = "Kernel"; bug_type = "Kernel Panic";
      operation = "setenv()"; match_ops = [ "setenv" ]; confirmed = true };
    { id = 15; os = "NuttX"; scope = "Libc"; bug_type = "Kernel Panic";
      operation = "gettimeofday()"; match_ops = [ "gettimeofday" ]; confirmed = false };
    { id = 16; os = "NuttX"; scope = "MQueue"; bug_type = "Kernel Panic";
      operation = "nxmq_timedsend()"; match_ops = [ "nxmq_timedsend" ]; confirmed = false };
    { id = 17; os = "NuttX"; scope = "Semaphore"; bug_type = "Kernel Assertion";
      operation = "nxsem_trywait()"; match_ops = [ "nxsem_trywait" ]; confirmed = false };
    { id = 18; os = "NuttX"; scope = "Timer"; bug_type = "Kernel Panic";
      operation = "timer_create()"; match_ops = [ "timer_create" ]; confirmed = false };
    { id = 19; os = "NuttX"; scope = "Libc"; bug_type = "Kernel Panic";
      operation = "clock_getres()"; match_ops = [ "clock_getres" ]; confirmed = false };
  ]

let match_bug (crash : Eof_core.Crash.t) =
  List.find_opt
    (fun bug ->
      bug.os = crash.Eof_core.Crash.os
      && List.mem crash.Eof_core.Crash.operation bug.match_ops)
    catalog

let found_ids crashes =
  List.filter_map (fun c -> Option.map (fun b -> b.id) (match_bug c)) crashes
  |> List.sort_uniq compare
