(** Typed host-side debug session: the fuzzer's only window onto the
    target.

    Every method round-trips an RSP packet through the transport to the
    probe server. [Error Timeout] is the signal the connection-timeout
    liveness watchdog consumes. *)

type error =
  | Timeout  (** the link dropped the exchange *)
  | Protocol of string  (** malformed/unexpected reply *)
  | Remote of int  (** explicit [Enn] from the stub *)

type stop =
  | Stopped_breakpoint of int  (** PC, parked at a breakpointed site *)
  | Stopped_quantum of int  (** PC; continue quantum expired, target live *)
  | Stopped_fault of int  (** PC at the fault vector *)
  | Target_exited

type t

val connect :
  ?obs:Eof_obs.Obs.t -> transport:Transport.t -> server:Openocd.t -> unit ->
  (t, error) result
(** Performs the [qSupported] handshake.

    With [obs], the session emits [Batch]/[Stop]/[Flash_op]/[Reset_board]
    events and bumps [session.batches]/[session.batch_ops]/
    [session.flash_ops]/[session.stops] counters. *)

val read_mem : t -> addr:int -> len:int -> (string, error) result

val write_mem : t -> addr:int -> string -> (unit, error) result
(** Hex [M] packet (2 payload bytes per data byte). *)

val write_mem_bin : t -> addr:int -> string -> (unit, error) result
(** Binary [X] packet (~1 payload byte per data byte): preferred for
    bulk delivery (program mailbox writes) on stubs that advertise
    [X+]. *)

val batch : t -> Rsp.batch_op list -> (Rsp.batch_reply list, error) result
(** One [vBatch] exchange: all sub-operations execute server-side in
    order, and the sub-replies come back positionally matched in a
    single framed response. Counts as one request and one transport
    exchange regardless of how many sub-operations it carries. *)

val supports_batch : t -> bool
(** Whether the connected stub advertised [vBatch+] — callers fall back
    to per-request exchanges when false. *)

val decode_stop : t -> string -> (stop, error) result
(** Interpret a stop-reply payload (e.g. from [Rsp.Br_stop]) exactly as
    [continue_] would. *)

val read_u32 : t -> addr:int -> (int32, error) result
(** Convenience word read honouring the target's endianness. *)

val write_u32 : t -> addr:int -> int32 -> (unit, error) result

val set_breakpoint : t -> int -> (unit, error) result

val remove_breakpoint : t -> int -> (unit, error) result

val continue_ : t -> (stop, error) result

val step : t -> (stop, error) result

val read_pc : t -> (int, error) result
(** Extracted from a [g] register dump. *)

val flash_erase : t -> addr:int -> len:int -> (unit, error) result

val flash_write : t -> addr:int -> string -> (unit, error) result

val flash_done : t -> (unit, error) result

val monitor : t -> string -> (string, error) result
(** [qRcmd]; returns the decoded text reply. *)

val reset_target : t -> (unit, error) result

val inject_gpio : t -> pin:int -> level:bool -> (unit, error) result
(** Peripheral event injection: flip a GPIO pin on the target board. *)

val drain_uart : t -> (string, error) result

val last_fault : t -> (string, error) result

val boot_ok : t -> (bool, error) result

val target_cycles : t -> (int64, error) result

val requests : t -> int

val obs : t -> Eof_obs.Obs.t
(** The bus this session emits on (an inert private bus when none was
    supplied to {!connect}). *)

val error_to_string : error -> string
