(** Typed host-side debug session: the fuzzer's only window onto the
    target.

    Every method round-trips an RSP packet through the transport to the
    probe server. Failures surface as {!Eof_util.Eof_error.t}:
    [Link_timeout] is the signal the connection-timeout liveness
    watchdog consumes, [Link_desync] means bytes arrived but no frame
    decoded, [Remote]/[Protocol] are the stub's own answers.

    Link-level failures are retried {e inside} each request under the
    session's {!Eof_util.Eof_error.Retry.budget} (rung 1 of the
    recovery escalation ladder), with backoff charged to the
    transport's virtual clock — on a clean link the budget is inert and
    behaviour is bit-identical to a retry-free session. *)

type error = Eof_util.Eof_error.t

type stop =
  | Stopped_breakpoint of int  (** PC, parked at a breakpointed site *)
  | Stopped_quantum of int  (** PC; continue quantum expired, target live *)
  | Stopped_fault of int  (** PC at the fault vector *)
  | Target_exited

type t

val connect :
  ?obs:Eof_obs.Obs.t -> transport:Transport.t -> server:Openocd.t -> unit ->
  (t, error) result
(** Performs the [qSupported] handshake.

    With [obs], the session emits [Batch]/[Stop]/[Flash_op]/[Reset_board]
    events, a [Recovery {rung="retry"}] event per link retry, and bumps
    [session.batches]/[session.batch_ops]/[session.flash_ops]/
    [session.stops]/[session.retries] counters. *)

val set_retry : t -> Eof_util.Eof_error.Retry.budget -> unit
(** Replace the per-request retry budget (default
    {!Eof_util.Eof_error.Retry.default}). [no_retry] restores
    fail-on-first-loss behaviour. *)

val retry_budget : t -> Eof_util.Eof_error.Retry.budget

val resync : t -> (unit, error) result
(** Recover from a desynced link without touching the target: discard
    the decoder's partial-frame state and confirm the stub answers a
    halt-reason query. Rung 2 of the escalation ladder. *)

val read_mem : t -> addr:int -> len:int -> (string, error) result

val write_mem : t -> addr:int -> string -> (unit, error) result
(** Hex [M] packet (2 payload bytes per data byte). *)

val write_mem_bin : t -> addr:int -> string -> (unit, error) result
(** Binary [X] packet (~1 payload byte per data byte): preferred for
    bulk delivery (program mailbox writes) on stubs that advertise
    [X+]. *)

val batch : t -> Rsp.batch_op list -> (Rsp.batch_reply list, error) result
(** One [vBatch] exchange: all sub-operations execute server-side in
    order, and the sub-replies come back positionally matched in a
    single framed response. Counts as one request and one transport
    exchange regardless of how many sub-operations it carries. *)

val supports_batch : t -> bool
(** Whether the connected stub advertised [vBatch+] — callers fall back
    to per-request exchanges when false. *)

val decode_stop : t -> string -> (stop, error) result
(** Interpret a stop-reply payload (e.g. from [Rsp.Br_stop]) exactly as
    [continue_] would. *)

val read_u32 : t -> addr:int -> (int32, error) result
(** Convenience word read honouring the target's endianness. *)

val write_u32 : t -> addr:int -> int32 -> (unit, error) result

val set_breakpoint : t -> int -> (unit, error) result

val remove_breakpoint : t -> int -> (unit, error) result

val continue_ : t -> (stop, error) result

val step : t -> (stop, error) result

val read_pc : t -> (int, error) result
(** Extracted from a [g] register dump. *)

val flash_erase : t -> addr:int -> len:int -> (unit, error) result

val flash_write : t -> addr:int -> string -> (unit, error) result

val flash_done : t -> (unit, error) result

val supports_snapshot : t -> bool
(** Whether the connected stub advertised [QSnapshot+]. *)

val snapshot_save : t -> (int, error) result
(** Ask the stub to capture a board-side copy-on-write snapshot; returns
    the number of device pages it covers. The saved pages never cross
    the link — the host keeps only the right to ask for a restore. *)

val snapshot_restore : t -> (int, error) result
(** Copy pages written since the save (or the previous restore) back
    from the stub-side snapshot; returns the number of pages copied —
    the O(dirty pages) alternative to a full partition reflash. Fails
    with [Remote 0x23] if no snapshot was saved. *)

val monitor : t -> string -> (string, error) result
(** [qRcmd]; returns the decoded text reply. *)

val reset_target : t -> (unit, error) result
(** Resets the target and arms the injector's post-reset-garbage fault
    (see {!Transport.note_reset}). *)

val inject_gpio : t -> pin:int -> level:bool -> (unit, error) result
(** Peripheral event injection: flip a GPIO pin on the target board. *)

val drain_uart : t -> (string, error) result

val last_fault : t -> (string, error) result

val boot_ok : t -> (bool, error) result

val target_cycles : t -> (int64, error) result

val requests : t -> int

val obs : t -> Eof_obs.Obs.t
(** The bus this session emits on (an inert private bus when none was
    supplied to {!connect}). *)

val retries : t -> int
(** Exchanges re-sent by the in-request retry rung so far (the
    [session.retries] counter's value). *)

val error_to_string : error -> string
(** Alias of {!Eof_util.Eof_error.to_string}, kept at the session
    boundary for convenience. *)
