open Eof_util

let checksum s =
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc + Char.code c) land 0xFF) s;
  !acc

let make_frame payload = Printf.sprintf "$%s#%02x" payload (checksum payload)

let must_escape c = c = '$' || c = '#' || c = '}' || c = '*'

let escape_binary s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if must_escape c then begin
        Buffer.add_char buf '}';
        Buffer.add_char buf (Char.chr (Char.code c lxor 0x20))
      end
      else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape_binary s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] = '}' then
      if i + 1 >= n then Error "dangling escape at end of payload"
      else begin
        Buffer.add_char buf (Char.chr (Char.code s.[i + 1] lxor 0x20));
        go (i + 2)
      end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

module Decoder = struct
  type state = Idle | In_payload | In_check of int option (* first nibble *)

  type t = { mutable state : state; payload : Buffer.t }

  type event = Packet of string | Ack | Nak | Break | Bad_checksum of string

  let create () = { state = Idle; payload = Buffer.create 64 }

  let feed t bytes =
    let events = ref [] in
    let emit e = events := e :: !events in
    String.iter
      (fun c ->
        match t.state with
        | Idle ->
          (match c with
           | '$' ->
             Buffer.clear t.payload;
             t.state <- In_payload
           | '+' -> emit Ack
           | '-' -> emit Nak
           | '\003' -> emit Break
           | _ -> (* line noise between frames: ignored like a real stub *) ())
        | In_payload ->
          if c = '#' then t.state <- In_check None else Buffer.add_char t.payload c
        | In_check first ->
          (match Hex.to_nibble c with
           | None ->
             emit (Bad_checksum (Buffer.contents t.payload));
             t.state <- Idle
           | Some nib ->
             (match first with
              | None -> t.state <- In_check (Some nib)
              | Some hi ->
                let declared = (hi lsl 4) lor nib in
                let payload = Buffer.contents t.payload in
                if checksum payload = declared then emit (Packet payload)
                else emit (Bad_checksum payload);
                t.state <- Idle)))
      bytes;
    List.rev !events
end

(* Scan [rawlen] logical (unescaped) bytes of }-escaped data starting at
   [i]; return the decoded bytes and the index just past the segment.
   Length-prefixed segments are what make the batch wire format
   self-delimiting: raw separator bytes inside binary data are harmless
   because the parser consumes by count, not by delimiter. *)
let scan_escaped s i rawlen =
  let n = String.length s in
  let buf = Buffer.create rawlen in
  let rec go i k =
    if k = 0 then Ok (Buffer.contents buf, i)
    else if i >= n then Error "truncated binary segment"
    else if s.[i] = '}' then
      if i + 1 >= n then Error "dangling escape in binary segment"
      else begin
        Buffer.add_char buf (Char.chr (Char.code s.[i + 1] lxor 0x20));
        go (i + 2) (k - 1)
      end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1) (k - 1)
    end
  in
  go i rawlen

type batch_op =
  | B_continue
  | B_read of { addr : int; len : int }
  | B_write of { addr : int; data : string }
  | B_read_counted of {
      count_addr : int;
      data_addr : int;
      stride : int;
      max_count : int;
      reset : bool;
    }
  | B_monitor of string

type batch_reply =
  | Br_ok
  | Br_data of string
  | Br_counted of { count : int; data : string }
  | Br_stop of string
  | Br_error of int

type command =
  | Q_supported of string
  | Read_mem of { addr : int; len : int }
  | Write_mem of { addr : int; data : string }
  | Write_mem_bin of { addr : int; data : string }
  | Insert_breakpoint of int
  | Remove_breakpoint of int
  | Continue
  | Step
  | Read_registers
  | Halt_reason
  | Flash_erase of { addr : int; len : int }
  | Flash_write of { addr : int; data : string }
  | Flash_done
  | Monitor of string
  | Kill
  | Batch of batch_op list
  | Snapshot_save
  | Snapshot_restore

let parse_hex_int s =
  if s = "" then Error "empty hex number"
  else
    match int_of_string_opt ("0x" ^ s) with
    | Some v when v >= 0 -> Ok v
    | _ -> Error (Printf.sprintf "bad hex number %S" s)

let split2 sep s =
  match String.index_opt s sep with
  | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let ( let* ) = Result.bind

let parse_addr_len s =
  match split2 ',' s with
  | None -> Error (Printf.sprintf "expected addr,len in %S" s)
  | Some (a, l) ->
    let* addr = parse_hex_int a in
    let* len = parse_hex_int l in
    Ok (addr, len)

let parse_breakpoint s =
  (* payload after Z/z: "0,<addr>,<kind>" *)
  match String.split_on_char ',' s with
  | [ "0"; addr; _kind ] -> parse_hex_int addr
  | _ -> Error (Printf.sprintf "unsupported breakpoint spec %S" s)

(* --- batch (vBatch) wire format ---------------------------------------

   Request payload after "vBatch:": sub-operations separated by ';'.
     c                                   continue (run one quantum)
     r<addr>,<len>                       read memory
     w<addr>,<len>:<escaped bytes>       write memory (len = raw length)
     k<cnt>,<data>,<stride>,<max>,<r|n>  counted read: read u32 at <cnt>,
                                         clamp to [0,<max>], return that
                                         many <stride>-byte entries from
                                         <data>; 'r' resets the counter
     m<len>:<escaped cmd>                monitor (qRcmd) command

   Reply payload after the leading 'b': one sub-reply per sub-op, in
   order, separated by ';'.
     K                        OK
     E<nn>                    error
     d<len>:<escaped bytes>   data
     k<count>,<len>:<escaped> counted data (count = raw counter value)
     s<len>:<escaped payload> a stop reply (continue result)

   Binary segments are length-prefixed with their *raw* length and use
   standard }-escaping, so one framed exchange can carry arbitrary
   binary both ways. *)

let parse_hex_at s i =
  let n = String.length s in
  let rec go i acc any =
    if i < n then
      match Hex.to_nibble s.[i] with
      | Some v -> go (i + 1) ((acc lsl 4) lor v) true
      | None -> if any then Ok (acc, i) else Error "expected hex number"
    else if any then Ok (acc, i)
    else Error "expected hex number"
  in
  go i 0 false

let expect_char s i c =
  if i < String.length s && s.[i] = c then Ok (i + 1)
  else Error (Printf.sprintf "expected '%c' at offset %d" c i)

let render_batch_op = function
  | B_continue -> "c"
  | B_read { addr; len } -> Printf.sprintf "r%x,%x" addr len
  | B_write { addr; data } ->
    Printf.sprintf "w%x,%x:%s" addr (String.length data) (escape_binary data)
  | B_read_counted { count_addr; data_addr; stride; max_count; reset } ->
    Printf.sprintf "k%x,%x,%x,%x,%c" count_addr data_addr stride max_count
      (if reset then 'r' else 'n')
  | B_monitor cmd ->
    Printf.sprintf "m%x:%s" (String.length cmd) (escape_binary cmd)

let render_batch_ops ops = String.concat ";" (List.map render_batch_op ops)

let parse_batch_ops s =
  let n = String.length s in
  let rec items i acc =
    if i >= n then Error "empty batch item"
    else
      let* op, i =
        match s.[i] with
        | 'c' -> Ok (B_continue, i + 1)
        | 'r' ->
          let* addr, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ',' in
          let* len, i = parse_hex_at s i in
          Ok (B_read { addr; len }, i)
        | 'w' ->
          let* addr, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ',' in
          let* len, i = parse_hex_at s i in
          let* i = expect_char s i ':' in
          let* data, i = scan_escaped s i len in
          Ok (B_write { addr; data }, i)
        | 'k' ->
          let* count_addr, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ',' in
          let* data_addr, i = parse_hex_at s i in
          let* i = expect_char s i ',' in
          let* stride, i = parse_hex_at s i in
          let* i = expect_char s i ',' in
          let* max_count, i = parse_hex_at s i in
          let* i = expect_char s i ',' in
          let* reset =
            if i < n && s.[i] = 'r' then Ok true
            else if i < n && s.[i] = 'n' then Ok false
            else Error "counted read: expected 'r' or 'n'"
          in
          Ok (B_read_counted { count_addr; data_addr; stride; max_count; reset }, i + 1)
        | 'm' ->
          let* len, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ':' in
          let* cmd, i = scan_escaped s i len in
          Ok (B_monitor cmd, i)
        | c -> Error (Printf.sprintf "unknown batch op '%c'" c)
      in
      if i = n then Ok (List.rev (op :: acc))
      else
        let* i = expect_char s i ';' in
        items i (op :: acc)
  in
  if n = 0 then Error "empty batch" else items 0 []

let render_batch_reply = function
  | Br_ok -> "K"
  | Br_error n -> Printf.sprintf "E%02x" (n land 0xFF)
  | Br_data data ->
    Printf.sprintf "d%x:%s" (String.length data) (escape_binary data)
  | Br_counted { count; data } ->
    Printf.sprintf "k%x,%x:%s" count (String.length data) (escape_binary data)
  | Br_stop payload ->
    Printf.sprintf "s%x:%s" (String.length payload) (escape_binary payload)

let render_batch_replies replies =
  String.concat ";" (List.map render_batch_reply replies)

let parse_batch_replies s =
  let n = String.length s in
  let rec items i acc =
    if i >= n then Error "empty batch reply item"
    else
      let* reply, i =
        match s.[i] with
        | 'K' -> Ok (Br_ok, i + 1)
        | 'E' ->
          if i + 3 <= n then
            let* code = parse_hex_int (String.sub s (i + 1) 2) in
            Ok (Br_error code, i + 3)
          else Error "truncated error reply"
        | 'd' ->
          let* len, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ':' in
          let* data, i = scan_escaped s i len in
          Ok (Br_data data, i)
        | 'k' ->
          let* count, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ',' in
          let* len, i = parse_hex_at s i in
          let* i = expect_char s i ':' in
          let* data, i = scan_escaped s i len in
          Ok (Br_counted { count; data }, i)
        | 's' ->
          let* len, i = parse_hex_at s (i + 1) in
          let* i = expect_char s i ':' in
          let* payload, i = scan_escaped s i len in
          Ok (Br_stop payload, i)
        | c -> Error (Printf.sprintf "unknown batch reply '%c'" c)
      in
      if i = n then Ok (List.rev (reply :: acc))
      else
        let* i = expect_char s i ';' in
        items i (reply :: acc)
  in
  if n = 0 then Error "empty batch reply" else items 0 []

let parse_command payload =
  if payload = "" then Error "empty packet"
  else
    let rest = String.sub payload 1 (String.length payload - 1) in
    match payload.[0] with
    | 'q' ->
      if payload = "qSupported" then Ok (Q_supported "")
      else if String.length payload >= 11 && String.sub payload 0 11 = "qSupported:" then
        Ok (Q_supported (String.sub payload 11 (String.length payload - 11)))
      else if String.length payload >= 6 && String.sub payload 0 6 = "qRcmd," then
        let hex = String.sub payload 6 (String.length payload - 6) in
        (match Hex.decode hex with
         | Ok cmd -> Ok (Monitor cmd)
         | Error e -> Error ("qRcmd: " ^ e))
      else Error (Printf.sprintf "unsupported query %S" payload)
    | 'm' ->
      let* addr, len = parse_addr_len rest in
      Ok (Read_mem { addr; len })
    | 'M' ->
      (match split2 ':' rest with
       | None -> Error "M: missing data"
       | Some (range, hexdata) ->
         let* addr, len = parse_addr_len range in
         (match Hex.decode hexdata with
          | Error e -> Error ("M: " ^ e)
          | Ok data ->
            if String.length data <> len then Error "M: length mismatch"
            else Ok (Write_mem { addr; data })))
    | 'X' ->
      (match split2 ':' rest with
       | None -> Error "X: missing data"
       | Some (range, escaped) ->
         let* addr, len = parse_addr_len range in
         (match unescape_binary escaped with
          | Error e -> Error ("X: " ^ e)
          | Ok data ->
            if String.length data <> len then Error "X: length mismatch"
            else Ok (Write_mem_bin { addr; data })))
    | 'Z' ->
      let* addr = parse_breakpoint rest in
      Ok (Insert_breakpoint addr)
    | 'z' ->
      let* addr = parse_breakpoint rest in
      Ok (Remove_breakpoint addr)
    | 'Q' ->
      (* QSnapshot extension: the stub holds one board-side snapshot.
         "save" captures it; "restore" copies dirty pages back. Replies
         are "S<hex>" — pages covered for save, pages copied for
         restore — so the host can account restore cost. *)
      if payload = "QSnapshot:save" then Ok Snapshot_save
      else if payload = "QSnapshot:restore" then Ok Snapshot_restore
      else Error (Printf.sprintf "unsupported set packet %S" payload)
    | 'c' when payload = "c" -> Ok Continue
    | 's' when payload = "s" -> Ok Step
    | 'g' when payload = "g" -> Ok Read_registers
    | '?' when payload = "?" -> Ok Halt_reason
    | 'k' when payload = "k" -> Ok Kill
    | 'v' ->
      if String.length payload >= 12 && String.sub payload 0 12 = "vFlashErase:" then
        let* addr, len = parse_addr_len (String.sub payload 12 (String.length payload - 12)) in
        Ok (Flash_erase { addr; len })
      else if String.length payload >= 12 && String.sub payload 0 12 = "vFlashWrite:" then
        let body = String.sub payload 12 (String.length payload - 12) in
        (match split2 ':' body with
         | None -> Error "vFlashWrite: missing data"
         | Some (a, escaped) ->
           let* addr = parse_hex_int a in
           (match unescape_binary escaped with
            | Error e -> Error ("vFlashWrite: " ^ e)
            | Ok data -> Ok (Flash_write { addr; data })))
      else if payload = "vFlashDone" then Ok Flash_done
      else if String.length payload >= 7 && String.sub payload 0 7 = "vBatch:" then
        let* ops = parse_batch_ops (String.sub payload 7 (String.length payload - 7)) in
        Ok (Batch ops)
      else Error (Printf.sprintf "unsupported v-packet %S" payload)
    | _ -> Error (Printf.sprintf "unsupported packet %S" payload)

let render_command = function
  | Q_supported "" -> "qSupported"
  | Q_supported features -> "qSupported:" ^ features
  | Read_mem { addr; len } -> Printf.sprintf "m%x,%x" addr len
  | Write_mem { addr; data } ->
    Printf.sprintf "M%x,%x:%s" addr (String.length data) (Hex.encode data)
  | Write_mem_bin { addr; data } ->
    Printf.sprintf "X%x,%x:%s" addr (String.length data) (escape_binary data)
  | Insert_breakpoint addr -> Printf.sprintf "Z0,%x,2" addr
  | Remove_breakpoint addr -> Printf.sprintf "z0,%x,2" addr
  | Continue -> "c"
  | Step -> "s"
  | Read_registers -> "g"
  | Halt_reason -> "?"
  | Kill -> "k"
  | Flash_erase { addr; len } -> Printf.sprintf "vFlashErase:%x,%x" addr len
  | Flash_write { addr; data } ->
    Printf.sprintf "vFlashWrite:%x:%s" addr (escape_binary data)
  | Flash_done -> "vFlashDone"
  | Monitor cmd -> "qRcmd," ^ Hex.encode cmd
  | Batch ops -> "vBatch:" ^ render_batch_ops ops
  | Snapshot_save -> "QSnapshot:save"
  | Snapshot_restore -> "QSnapshot:restore"

type stop_info = { signal : int; pc : int; detail : string }

type reply =
  | Ok_reply
  | Error_reply of int
  | Hex_data of string
  | Stop of stop_info
  | Exited of int
  | Supported of string
  | Raw of string

let render_reply ~pc_reg = function
  | Ok_reply -> "OK"
  | Error_reply n -> Printf.sprintf "E%02x" (n land 0xFF)
  | Hex_data raw -> Hex.encode raw
  | Stop { signal; pc; detail } ->
    Printf.sprintf "T%02x%02x:%08x;%s;" (signal land 0xFF) pc_reg pc detail
  | Exited code -> Printf.sprintf "W%02x" (code land 0xFF)
  | Supported s -> s
  | Raw s -> s

let parse_stop ~pc_reg s =
  (* "Txx<reg>:<pc8>;<detail>;" *)
  let* signal = parse_hex_int (String.sub s 1 2) in
  let rest = String.sub s 3 (String.length s - 3) in
  match split2 ':' rest with
  | None -> Error (Printf.sprintf "stop reply missing register: %S" s)
  | Some (reg, tail) ->
    let* reg = parse_hex_int reg in
    if reg <> pc_reg then Error (Printf.sprintf "stop reply for unexpected register %d" reg)
    else if String.length tail < 9 then Error "stop reply too short"
    else
      let* pc = parse_hex_int (String.sub tail 0 8) in
      let detail = String.sub tail 9 (String.length tail - 9) in
      let detail =
        if String.length detail > 0 && detail.[String.length detail - 1] = ';' then
          String.sub detail 0 (String.length detail - 1)
        else detail
      in
      Ok (Stop { signal; pc; detail })

let parse_reply ~pc_reg payload =
  if payload = "OK" then Ok Ok_reply
  else if String.length payload = 3 && payload.[0] = 'E' then
    let* n = parse_hex_int (String.sub payload 1 2) in
    Ok (Error_reply n)
  else if String.length payload >= 3 && payload.[0] = 'W' then
    let* code = parse_hex_int (String.sub payload 1 2) in
    Ok (Exited code)
  else if String.length payload >= 3 && payload.[0] = 'T' then parse_stop ~pc_reg payload
  else Ok (Raw payload)

(* --- typed boundary ----------------------------------------------------

   The parsers above compose over plain strings; the public entry points
   re-type their errors as [Eof_error.Protocol] so every consumer up the
   stack speaks one error language. (Shadowing below the internal uses
   keeps the string combinators composable in here.) *)

let typed r = Result.map_error Eof_error.protocol r

let unescape_binary s = typed (unescape_binary s)

let parse_batch_ops s = typed (parse_batch_ops s)

let parse_batch_replies s = typed (parse_batch_replies s)

let parse_command payload = typed (parse_command payload)

let parse_reply ~pc_reg payload = typed (parse_reply ~pc_reg payload)
