(** GDB Remote Serial Protocol: framing, escaping, and the command
    vocabulary EOF needs.

    All host-target interaction travels as RSP byte streams over the
    simulated probe link, so the protocol layer is real: packets are
    framed as [$payload#xx] with a mod-256 checksum, binary payloads use
    [}]-escaping, and malformed input is rejected the way a picky stub
    would reject it. *)

val checksum : string -> int
(** Sum of payload bytes mod 256. *)

val make_frame : string -> string
(** [$payload#xx]. The payload must already be escaped. *)

val escape_binary : string -> string
(** Escape [$], [#], [}] and [*] as [}(c lxor 0x20)] for binary payload
    sections (as used by [vFlashWrite]). *)

val unescape_binary : string -> (string, Eof_util.Eof_error.t) result
(** All parse entry points in this module fail with
    [Eof_error.Protocol] — malformed wire data is a protocol error by
    definition. *)

(** Incremental frame decoder. Feed raw bytes; collect events. *)
module Decoder : sig
  type t

  type event =
    | Packet of string  (** checksum-validated payload, still escaped *)
    | Ack
    | Nak
    | Break  (** 0x03 interrupt byte *)
    | Bad_checksum of string

  val create : unit -> t

  val feed : t -> string -> event list
  (** Events completed by these bytes, in order. Partial frames are
      buffered. *)
end

(** One sub-operation of a [vBatch] exchange. A batch carries several
    read/write/monitor/continue operations in a single framed packet so
    a whole coverage drain costs one link round trip instead of six. *)
type batch_op =
  | B_continue  (** run one continue quantum; sub-reply is the stop *)
  | B_read of { addr : int; len : int }
  | B_write of { addr : int; data : string }  (** data raw (unescaped) *)
  | B_read_counted of {
      count_addr : int;  (** address of a u32 element counter *)
      data_addr : int;  (** base of the counted data area *)
      stride : int;  (** bytes per element *)
      max_count : int;  (** clamp for the counter *)
      reset : bool;  (** write 0 back to the counter after reading *)
    }
      (** Server-side indirect read: fetch the counter, return
          [min counter max_count] elements in one reply, optionally
          resetting the counter — the whole
          read-index/read-data/reset-index dance of a coverage drain as
          one sub-operation. *)
  | B_monitor of string  (** qRcmd text, raw *)

(** One sub-reply, positionally matching the batch's sub-operations. *)
type batch_reply =
  | Br_ok
  | Br_data of string  (** raw bytes (read result or monitor text) *)
  | Br_counted of { count : int; data : string }
      (** raw (unclamped) counter value plus the clamped data span *)
  | Br_stop of string  (** an unparsed stop-reply payload *)
  | Br_error of int

val render_batch_ops : batch_op list -> string
(** The [vBatch:] payload body (escaped, self-delimiting). *)

val parse_batch_ops : string -> (batch_op list, Eof_util.Eof_error.t) result

val render_batch_replies : batch_reply list -> string

val parse_batch_replies : string -> (batch_reply list, Eof_util.Eof_error.t) result

(** Host-to-target commands, parsed from packet payloads. *)
type command =
  | Q_supported of string
  | Read_mem of { addr : int; len : int }
  | Write_mem of { addr : int; data : string }
  | Write_mem_bin of { addr : int; data : string }
      (** [X]-packet: binary-escaped payload — half the bytes of the
          hex [M] packet for the same write *)
  | Insert_breakpoint of int
  | Remove_breakpoint of int
  | Continue
  | Step
  | Read_registers
  | Halt_reason
  | Flash_erase of { addr : int; len : int }
  | Flash_write of { addr : int; data : string }  (** data unescaped *)
  | Flash_done
  | Monitor of string  (** qRcmd, decoded from hex *)
  | Kill
  | Batch of batch_op list  (** [vBatch:] multi-operation exchange *)
  | Snapshot_save
      (** [QSnapshot:save] — capture a board-side copy-on-write
          snapshot; reply is [S<hex pages covered>] *)
  | Snapshot_restore
      (** [QSnapshot:restore] — copy dirty pages back from the saved
          snapshot; reply is [S<hex pages copied>] *)

val parse_command : string -> (command, Eof_util.Eof_error.t) result
(** Parse an unescaped packet payload. *)

val render_command : command -> string
(** Client side: payload text for a command (escaped where needed). *)

(** Target-to-host replies. *)
type stop_info = {
  signal : int;  (** 5 = TRAP (breakpoint/fault), 2 = INT (quantum) *)
  pc : int;
  detail : string;  (** "swbreak", "fault:<msg>", "quantum" *)
}

type reply =
  | Ok_reply
  | Error_reply of int
  | Hex_data of string  (** raw bytes, hex-encoded on the wire *)
  | Stop of stop_info
  | Exited of int
  | Supported of string
  | Raw of string  (** uninterpreted payload (qRcmd output, [g] dump) *)

val render_reply : pc_reg:int -> reply -> string
(** [pc_reg] is the architecture's PC register number for [T] stop
    replies. *)

val parse_reply : pc_reg:int -> string -> (reply, Eof_util.Eof_error.t) result
(** Client side. [Raw] is returned for payloads that match no structured
    form; callers with context (e.g. after [m]) interpret it. *)
