(** The simulated probe link (JTAG/SWD adapter + USB cable).

    Synchronous request/response byte shuttle between the host session
    and the OpenOCD-like server, with injectable failure modes used to
    exercise the connection-timeout watchdog:

    - [Up]: requests go through, charged with per-byte latency.
    - [Down]: the link is dead; every exchange times out.
    - [Flaky p]: each exchange is independently lost with probability
      [p] (then times out).

    Orthogonally, an {!Inject.t} fault injector can ride the transport:
    it mangles or drops individual exchanges on a seeded deterministic
    schedule (see {!Inject}), which is how the recovery escalation
    ladder is exercised without real flaky hardware. *)

type failure_mode = Up | Down | Flaky of float

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  ?rng:Eof_util.Rng.t ->
  ?injector:Inject.t ->
  ?byte_latency_us:float -> ?exchange_overhead_us:float ->
  unit -> t
(** Default latency: 1 us/byte (~1 MBaud SWD) plus a fixed 40 us per
    exchange (probe/USB turnaround) — the round-trip cost that makes
    batched exchanges pay, charged identically to every client.

    When [obs] is given, every round trip emits an
    [Exchange {tx; rx; timeout}] event and bumps the
    [transport.exchanges]/[transport.timeouts]/[transport.bytes_tx]/
    [transport.bytes_rx] counters; injected faults emit [Link_fault]
    and bump [transport.faults]. *)

val set_failure_mode : t -> failure_mode -> unit

val failure_mode : t -> failure_mode

val set_injector : t -> Inject.t option -> unit

val injector : t -> Inject.t option

val note_reset : t -> unit
(** Tell the injector (if any) that the target was just reset, arming
    the post-reset-garbage fault. The session calls this from
    [reset_target]. *)

val charge_us : t -> float -> unit
(** Advance the link's virtual clock without an exchange — retry
    backoff waits are charged here so recovery costs deterministic
    virtual time, not host wall time. *)

val exchange : t -> server:(string -> string) -> string -> (string, Eof_util.Eof_error.t) result
(** Push request bytes through the link to [server]; return its response
    bytes. [Error] is always [Eof_error.Link_timeout] — a dead/flaky
    link, a dropped request (server never called) or a lost response
    (server {e did} execute). Response-mangling faults
    (truncate/NAK-storm/garbage) return [Ok] with the mangled bytes;
    the session's decoder surfaces those as [Link_desync]. *)

val timeout_cost_us : float
(** What one timed-out exchange costs on the virtual clock (500 ms). *)

val elapsed_us : t -> float
(** Accumulated link latency (host-side wall model). *)

val exchanges : t -> int

val timeouts : t -> int
