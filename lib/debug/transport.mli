(** The simulated probe link (JTAG/SWD adapter + USB cable).

    Synchronous request/response byte shuttle between the host session
    and the OpenOCD-like server, with injectable failure modes used to
    exercise the connection-timeout watchdog:

    - [Up]: requests go through, charged with per-byte latency.
    - [Down]: the link is dead; every exchange times out.
    - [Flaky p]: each exchange is independently lost with probability
      [p] (then times out). *)

type failure_mode = Up | Down | Flaky of float

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  ?rng:Eof_util.Rng.t -> ?byte_latency_us:float -> ?exchange_overhead_us:float ->
  unit -> t
(** Default latency: 1 us/byte (~1 MBaud SWD) plus a fixed 40 us per
    exchange (probe/USB turnaround) — the round-trip cost that makes
    batched exchanges pay, charged identically to every client.

    When [obs] is given, every round trip emits an
    [Exchange {tx; rx; timeout}] event and bumps the
    [transport.exchanges]/[transport.timeouts]/[transport.bytes_tx]/
    [transport.bytes_rx] counters. *)

val set_failure_mode : t -> failure_mode -> unit

val failure_mode : t -> failure_mode

val exchange : t -> server:(string -> string) -> string -> (string, [ `Timeout ]) result
(** Push request bytes through the link to [server]; return its response
    bytes. [Error `Timeout] models a dead/flaky link. *)

val elapsed_us : t -> float
(** Accumulated link latency (host-side wall model). *)

val exchanges : t -> int

val timeouts : t -> int
