module Rng = Eof_util.Rng

type fault = Drop | Timeout | Truncate | Nak_storm | Garbage

let fault_name = function
  | Drop -> "drop"
  | Timeout -> "timeout"
  | Truncate -> "truncate"
  | Nak_storm -> "nak-storm"
  | Garbage -> "garbage"

type config = {
  rate : float;
  seed : int64;
  max_burst : int;
  kill_after : int option;
}

let default_config =
  { rate = 0.; seed = 0x1A3EC7L; max_burst = 6; kill_after = None }

type t = {
  cfg : config;
  rng : Rng.t;
  mutable exchanges : int;
  mutable faults : int;
  mutable burst_left : int;  (* further exchanges of the current burst *)
  mutable reset_armed : bool;  (* a reset happened; next fault is garbage *)
  mutable forced : fault option;
  mutable history_rev : (int * fault) list;
}

let create cfg =
  if cfg.rate < 0. || cfg.rate > 1. then
    invalid_arg "Inject.create: rate must be in [0,1]";
  if cfg.max_burst < 1 then invalid_arg "Inject.create: max_burst must be >= 1";
  {
    cfg;
    rng = Rng.create cfg.seed;
    exchanges = 0;
    faults = 0;
    burst_left = 0;
    reset_armed = false;
    forced = None;
    history_rev = [];
  }

let config t = t.cfg

type decision = Pass | Fault of fault

(* The unforced fault mix. Garbage is reserved for the post-reset case. *)
let draw_kind t =
  if t.reset_armed then begin
    t.reset_armed <- false;
    Garbage
  end
  else
    match Rng.int t.rng 4 with
    | 0 -> Drop
    | 1 -> Timeout
    | 2 -> Truncate
    | _ -> Nak_storm

let record t fault =
  t.faults <- t.faults + 1;
  t.history_rev <- (t.exchanges, fault) :: t.history_rev;
  Fault fault

let decide t =
  t.exchanges <- t.exchanges + 1;
  match t.forced with
  | Some fault ->
    t.forced <- None;
    record t fault
  | None ->
    let dead =
      match t.cfg.kill_after with Some n -> t.exchanges > n | None -> false
    in
    if dead then record t Drop
    else if t.burst_left > 0 then begin
      t.burst_left <- t.burst_left - 1;
      record t (draw_kind t)
    end
    else if t.cfg.rate > 0. && Rng.chance t.rng t.cfg.rate then begin
      (* A burst starts: this exchange faults, and up to [max_burst - 1]
         more follow it. *)
      t.burst_left <- Rng.int t.rng t.cfg.max_burst;
      record t (draw_kind t)
    end
    else Pass

let mangle t fault response =
  match fault with
  | Drop | Timeout -> ""
  | Truncate ->
    (* Cut mid-frame: the decoder buffers a partial packet forever. *)
    String.sub response 0 (String.length response / 2)
  | Nak_storm -> String.make (1 + Rng.int t.rng 4) '-'
  | Garbage ->
    (* Junk with no frame start: the decoder sees only inter-frame
       noise and yields nothing. *)
    Bytes.unsafe_to_string (Rng.bytes t.rng (8 + Rng.int t.rng 24))
    |> String.map (fun c -> if c = '$' then '%' else c)

let note_reset t = if t.cfg.rate > 0. then t.reset_armed <- true

let force_next t fault = t.forced <- Some fault

let exchanges_seen t = t.exchanges

let faults_injected t = t.faults

let history t = List.rev t.history_rev
