open Eof_hw
module Eof_error = Eof_util.Eof_error

type error = Eof_error.t

type stop =
  | Stopped_breakpoint of int
  | Stopped_quantum of int
  | Stopped_fault of int
  | Target_exited

module Obs = Eof_obs.Obs

type t = {
  transport : Transport.t;
  server : Openocd.t;
  mutable decoder : Rsp.Decoder.t;
  pc_reg : int;
  endianness : Arch.endianness;
  mutable requests : int;
  mutable features : string;  (* the stub's qSupported reply *)
  mutable retry : Eof_error.Retry.budget;
  obs : Obs.t;
  c_batches : Obs.Counter.t;
  c_batch_ops : Obs.Counter.t;
  c_flash_ops : Obs.Counter.t;
  c_stops : Obs.Counter.t;
  c_retries : Obs.Counter.t;
}

let ( let* ) = Result.bind

let error_to_string = Eof_error.to_string

let set_retry t budget = t.retry <- budget

let retry_budget t = t.retry

(* One logical request: frame, exchange, decode, parse — retried under
   the session's budget. Only link-level failures (timeout, desync) are
   retried; [Remote]/[Protocol] replies are deterministic answers.
   Backoff waits are charged to the transport's virtual clock, so
   recovery is deterministic and visible in virtual time. *)
let request t payload =
  t.requests <- t.requests + 1;
  let tx = Rsp.make_frame payload in
  let attempt () =
    match Transport.exchange t.transport ~server:(Openocd.feed t.server) tx with
    | Error _ as err -> err
    | Ok rx ->
      let events = Rsp.Decoder.feed t.decoder rx in
      let packet =
        List.find_map
          (function Rsp.Decoder.Packet p -> Some p | _ -> None)
          events
      in
      (match packet with
       | None -> Error (Eof_error.desync "no reply frame")
       | Some p -> Rsp.parse_reply ~pc_reg:t.pc_reg p)
  in
  Eof_error.Retry.run ~budget:t.retry
    ~sleep_us:(Transport.charge_us t.transport)
    ~on_retry:(fun ~attempt _ ->
      Obs.Counter.incr t.c_retries;
      if Obs.active t.obs then
        Obs.emit t.obs (Obs.Event.Recovery { rung = "retry"; attempt }))
    attempt

let expect_ok t payload =
  let* reply = request t payload in
  match reply with
  | Rsp.Ok_reply -> Ok ()
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | _ -> Error (Eof_error.protocol "expected OK")

let expect_hex t payload =
  let* reply = request t payload in
  match reply with
  | Rsp.Raw s ->
    (match Eof_util.Hex.decode s with
     | Ok data -> Ok data
     | Error e -> Error (Eof_error.protocol e))
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | _ -> Error (Eof_error.protocol "expected hex data")

let connect ?obs ~transport ~server () =
  let board = Openocd.board server in
  let arch = (Board.profile board).Board.arch in
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t =
    {
      transport;
      server;
      decoder = Rsp.Decoder.create ();
      pc_reg = arch.Arch.pc_register;
      endianness = arch.Arch.endianness;
      requests = 0;
      features = "";
      retry = Eof_error.Retry.default;
      obs;
      c_batches = Obs.Counter.make obs "session.batches";
      c_batch_ops = Obs.Counter.make obs "session.batch_ops";
      c_flash_ops = Obs.Counter.make obs "session.flash_ops";
      c_stops = Obs.Counter.make obs "session.stops";
      c_retries = Obs.Counter.make obs "session.retries";
    }
  in
  let* reply = request t (Rsp.render_command (Rsp.Q_supported "swbreak+;vBatch+;X+")) in
  match reply with
  | Rsp.Raw features when features <> "" ->
    t.features <- features;
    Ok t
  | Rsp.Raw _ -> Error (Eof_error.protocol "empty qSupported reply")
  | _ -> Error (Eof_error.protocol "unexpected qSupported reply")

let has_feature t name =
  List.exists (fun f -> String.trim f = name) (String.split_on_char ';' t.features)

let supports_batch t = has_feature t "vBatch+"

(* Resynchronize a desynced link: throw away whatever partial frame the
   decoder is stuck on and confirm the stub still answers a halt-reason
   query. This is rung 2 of the escalation ladder — cheaper than a
   reset, and sufficient when the damage was host-side decode state. *)
let resync t =
  t.decoder <- Rsp.Decoder.create ();
  let* reply = request t (Rsp.render_command Rsp.Halt_reason) in
  match reply with
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | _ -> Ok ()

let read_mem t ~addr ~len = expect_hex t (Rsp.render_command (Rsp.Read_mem { addr; len }))

let write_mem t ~addr data =
  expect_ok t (Rsp.render_command (Rsp.Write_mem { addr; data }))

let write_mem_bin t ~addr data =
  expect_ok t (Rsp.render_command (Rsp.Write_mem_bin { addr; data }))

let batch t ops =
  Obs.Counter.incr t.c_batches;
  Obs.Counter.add t.c_batch_ops (List.length ops);
  if Obs.active t.obs then
    Obs.emit t.obs (Obs.Event.Batch { ops = List.length ops });
  let* reply = request t (Rsp.render_command (Rsp.Batch ops)) in
  match reply with
  | Rsp.Raw s when String.length s >= 1 && s.[0] = 'b' ->
    (match Rsp.parse_batch_replies (String.sub s 1 (String.length s - 1)) with
     | Error e -> Error (Eof_error.with_context "batch" e)
     | Ok replies ->
       if List.length replies <> List.length ops then
         Error (Eof_error.protocol "batch reply count mismatch")
       else Ok replies)
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | Rsp.Raw "" -> Error (Eof_error.protocol "stub does not support vBatch")
  | _ -> Error (Eof_error.protocol "expected batch reply")

let read_u32 t ~addr =
  let* raw = read_mem t ~addr ~len:4 in
  let b = Bytes.unsafe_of_string raw in
  Ok
    (match t.endianness with
     | Arch.Little -> Bytes.get_int32_le b 0
     | Arch.Big -> Bytes.get_int32_be b 0)

let write_u32 t ~addr v =
  let b = Bytes.create 4 in
  (match t.endianness with
   | Arch.Little -> Bytes.set_int32_le b 0 v
   | Arch.Big -> Bytes.set_int32_be b 0 v);
  write_mem t ~addr (Bytes.unsafe_to_string b)

let set_breakpoint t addr = expect_ok t (Rsp.render_command (Rsp.Insert_breakpoint addr))

let remove_breakpoint t addr = expect_ok t (Rsp.render_command (Rsp.Remove_breakpoint addr))

let stop_kind = function
  | Stopped_breakpoint _ -> "breakpoint"
  | Stopped_quantum _ -> "quantum"
  | Stopped_fault _ -> "fault"
  | Target_exited -> "exited"

let stop_pc = function
  | Stopped_breakpoint pc | Stopped_quantum pc | Stopped_fault pc -> pc
  | Target_exited -> -1

let stop_of_reply = function
  | Rsp.Stop { signal = _; pc; detail = "swbreak" } -> Ok (Stopped_breakpoint pc)
  | Rsp.Stop { signal = _; pc; detail = "quantum" } -> Ok (Stopped_quantum pc)
  | Rsp.Stop { signal = _; pc; detail = "fault" } -> Ok (Stopped_fault pc)
  | Rsp.Stop { signal = _; pc; detail } ->
    if detail = "initial" then Ok (Stopped_quantum pc)
    else Error (Eof_error.protocol (Printf.sprintf "unknown stop detail %S" detail))
  | Rsp.Exited _ -> Ok Target_exited
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | _ -> Error (Eof_error.protocol "expected stop reply")

let observe_stop t result =
  (match result with
   | Ok stop ->
     Obs.Counter.incr t.c_stops;
     if Obs.active t.obs then
       Obs.emit t.obs
         (Obs.Event.Stop { kind = stop_kind stop; pc = stop_pc stop })
   | Error _ -> ());
  result

let decode_stop t payload =
  match Rsp.parse_reply ~pc_reg:t.pc_reg payload with
  | Error e -> Error e
  | Ok reply -> observe_stop t (stop_of_reply reply)

let continue_ t =
  let* reply = request t (Rsp.render_command Rsp.Continue) in
  observe_stop t (stop_of_reply reply)

let step t =
  let* reply = request t (Rsp.render_command Rsp.Step) in
  observe_stop t (stop_of_reply reply)

let read_pc t =
  let* raw = expect_hex t (Rsp.render_command Rsp.Read_registers) in
  let need = (t.pc_reg + 1) * 4 in
  if String.length raw < need then Error (Eof_error.protocol "register dump too short")
  else
    let b = Bytes.unsafe_of_string raw in
    let v =
      match t.endianness with
      | Arch.Little -> Bytes.get_int32_le b (t.pc_reg * 4)
      | Arch.Big -> Bytes.get_int32_be b (t.pc_reg * 4)
    in
    Ok (Int32.to_int (Int32.logand v 0x7FFFFFFFl))

let observe_flash t ~op ~addr ~len =
  Obs.Counter.incr t.c_flash_ops;
  if Obs.active t.obs then
    Obs.emit t.obs (Obs.Event.Flash_op { op; addr; len })

let flash_erase t ~addr ~len =
  observe_flash t ~op:"erase" ~addr ~len;
  expect_ok t (Rsp.render_command (Rsp.Flash_erase { addr; len }))

let flash_write t ~addr data =
  observe_flash t ~op:"write" ~addr ~len:(String.length data);
  expect_ok t (Rsp.render_command (Rsp.Flash_write { addr; data }))

let flash_done t =
  observe_flash t ~op:"done" ~addr:0 ~len:0;
  expect_ok t (Rsp.render_command Rsp.Flash_done)

(* QSnapshot replies are "S<hex>" — the page count the stub acted on.
   Distinct from plain hex data so a desynced reply can't be mistaken
   for a count. *)
let parse_snapshot_reply reply =
  match reply with
  | Rsp.Raw s when String.length s >= 2 && s.[0] = 'S' ->
    (match int_of_string_opt ("0x" ^ String.sub s 1 (String.length s - 1)) with
     | Some n when n >= 0 -> Ok n
     | _ -> Error (Eof_error.protocol (Printf.sprintf "bad QSnapshot reply %S" s)))
  | Rsp.Raw "" -> Error (Eof_error.protocol "stub does not support QSnapshot")
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | _ -> Error (Eof_error.protocol "unexpected QSnapshot reply")

let supports_snapshot t = has_feature t "QSnapshot+"

let snapshot_save t =
  if not (supports_snapshot t) then
    Error (Eof_error.with_context "snapshot save" (Eof_error.protocol "QSnapshot not negotiated"))
  else
    let* reply = request t (Rsp.render_command Rsp.Snapshot_save) in
    Result.map_error (Eof_error.with_context "snapshot save") (parse_snapshot_reply reply)

let snapshot_restore t =
  if not (supports_snapshot t) then
    Error
      (Eof_error.with_context "snapshot restore" (Eof_error.protocol "QSnapshot not negotiated"))
  else
    let* reply = request t (Rsp.render_command Rsp.Snapshot_restore) in
    Result.map_error (Eof_error.with_context "snapshot restore") (parse_snapshot_reply reply)

let monitor t cmd =
  let* reply = request t (Rsp.render_command (Rsp.Monitor cmd)) in
  match reply with
  | Rsp.Ok_reply -> Ok ""
  | Rsp.Raw s ->
    (match Eof_util.Hex.decode s with
     | Ok text -> Ok text
     | Error e -> Error (Eof_error.protocol e))
  | Rsp.Error_reply n -> Error (Eof_error.remote n)
  | _ -> Error (Eof_error.protocol "unexpected qRcmd reply")

let reset_target t =
  if Obs.active t.obs then Obs.emit t.obs Obs.Event.Reset_board;
  let* _ = monitor t "reset" in
  (* A real probe often spews desynced garbage right after the target
     resets; arm that fault in the injector, if one is riding the
     link. *)
  Transport.note_reset t.transport;
  Ok ()

let inject_gpio t ~pin ~level =
  let* _ = monitor t (Printf.sprintf "gpio %d %s" pin (if level then "1" else "0")) in
  Ok ()

let drain_uart t = monitor t "uart"

let last_fault t = monitor t "fault"

let boot_ok t =
  let* text = monitor t "bootok" in
  Ok (text = "1")

let target_cycles t =
  let* text = monitor t "cycles" in
  match Int64.of_string_opt text with
  | Some v -> Ok v
  | None -> Error (Eof_error.protocol ("bad cycles reply: " ^ text))

let requests t = t.requests

let obs t = t.obs

let retries t = Obs.Counter.value t.c_retries
