type failure_mode = Up | Down | Flaky of float

type t = {
  rng : Eof_util.Rng.t;
  byte_latency_us : float;
  exchange_overhead_us : float;
  mutable mode : failure_mode;
  mutable injector : Inject.t option;
  mutable elapsed_us : float;
  mutable exchanges : int;
  mutable timeouts : int;
  obs : Eof_obs.Obs.t;
  c_exchanges : Eof_obs.Obs.Counter.t;
  c_timeouts : Eof_obs.Obs.Counter.t;
  c_bytes_tx : Eof_obs.Obs.Counter.t;
  c_bytes_rx : Eof_obs.Obs.Counter.t;
  c_faults : Eof_obs.Obs.Counter.t;
}

let create ?obs ?rng ?injector ?(byte_latency_us = 1.0) ?(exchange_overhead_us = 40.0) () =
  let rng = match rng with Some r -> r | None -> Eof_util.Rng.create 0x7712AB34L in
  let obs = match obs with Some o -> o | None -> Eof_obs.Obs.create () in
  { rng; byte_latency_us; exchange_overhead_us; mode = Up; injector;
    elapsed_us = 0.; exchanges = 0; timeouts = 0;
    obs;
    c_exchanges = Eof_obs.Obs.Counter.make obs "transport.exchanges";
    c_timeouts = Eof_obs.Obs.Counter.make obs "transport.timeouts";
    c_bytes_tx = Eof_obs.Obs.Counter.make obs "transport.bytes_tx";
    c_bytes_rx = Eof_obs.Obs.Counter.make obs "transport.bytes_rx";
    c_faults = Eof_obs.Obs.Counter.make obs "transport.faults" }

let set_failure_mode t mode = t.mode <- mode

let failure_mode t = t.mode

let set_injector t injector = t.injector <- injector

let injector t = t.injector

let note_reset t = match t.injector with Some inj -> Inject.note_reset inj | None -> ()

let charge_us t us = t.elapsed_us <- t.elapsed_us +. us

(* A timeout costs the host its full wait budget; generous so that
   timeouts are visibly expensive, as on real probes. *)
let timeout_cost_us = 500_000.

let observe_fault t fault =
  Eof_obs.Obs.Counter.incr t.c_faults;
  if Eof_obs.Obs.active t.obs then
    Eof_obs.Obs.emit t.obs
      (Eof_obs.Obs.Event.Link_fault
         { fault = Inject.fault_name fault; exchange = t.exchanges })

let time_out t ~tx =
  t.timeouts <- t.timeouts + 1;
  Eof_obs.Obs.Counter.incr t.c_timeouts;
  t.elapsed_us <- t.elapsed_us +. timeout_cost_us;
  if Eof_obs.Obs.active t.obs then
    Eof_obs.Obs.emit t.obs
      (Eof_obs.Obs.Event.Exchange { tx; rx = 0; timeout = true });
  Error Eof_util.Eof_error.timeout

let deliver t ~tx response =
  let rx = String.length response in
  Eof_obs.Obs.Counter.add t.c_bytes_rx rx;
  t.elapsed_us <-
    t.elapsed_us +. t.exchange_overhead_us
    +. (float_of_int (tx + rx) *. t.byte_latency_us);
  if Eof_obs.Obs.active t.obs then
    Eof_obs.Obs.emit t.obs
      (Eof_obs.Obs.Event.Exchange { tx; rx; timeout = false });
  Ok response

let exchange t ~server request =
  t.exchanges <- t.exchanges + 1;
  Eof_obs.Obs.Counter.incr t.c_exchanges;
  let tx = String.length request in
  Eof_obs.Obs.Counter.add t.c_bytes_tx tx;
  let lost =
    match t.mode with
    | Up -> false
    | Down -> true
    | Flaky p -> Eof_util.Rng.chance t.rng p
  in
  if lost then time_out t ~tx
  else
    match t.injector with
    | None -> deliver t ~tx (server request)
    | Some inj ->
      (match Inject.decide inj with
       | Inject.Pass -> deliver t ~tx (server request)
       | Inject.Fault Inject.Drop ->
         (* The request never reached the probe: the server is NOT
            called, which is what makes a drop always safe to retry. *)
         observe_fault t Inject.Drop;
         time_out t ~tx
       | Inject.Fault Inject.Timeout ->
         (* The server DID execute; only the response was lost. *)
         observe_fault t Inject.Timeout;
         ignore (server request : string);
         time_out t ~tx
       | Inject.Fault ((Inject.Truncate | Inject.Nak_storm | Inject.Garbage) as f) ->
         observe_fault t f;
         deliver t ~tx (Inject.mangle inj f (server request)))

let elapsed_us t = t.elapsed_us

let exchanges t = t.exchanges

let timeouts t = t.timeouts
