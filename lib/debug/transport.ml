type failure_mode = Up | Down | Flaky of float

type t = {
  rng : Eof_util.Rng.t;
  byte_latency_us : float;
  exchange_overhead_us : float;
  mutable mode : failure_mode;
  mutable elapsed_us : float;
  mutable exchanges : int;
  mutable timeouts : int;
  obs : Eof_obs.Obs.t;
  c_exchanges : Eof_obs.Obs.Counter.t;
  c_timeouts : Eof_obs.Obs.Counter.t;
  c_bytes_tx : Eof_obs.Obs.Counter.t;
  c_bytes_rx : Eof_obs.Obs.Counter.t;
}

let create ?obs ?rng ?(byte_latency_us = 1.0) ?(exchange_overhead_us = 40.0) () =
  let rng = match rng with Some r -> r | None -> Eof_util.Rng.create 0x7712AB34L in
  let obs = match obs with Some o -> o | None -> Eof_obs.Obs.create () in
  { rng; byte_latency_us; exchange_overhead_us; mode = Up; elapsed_us = 0.;
    exchanges = 0; timeouts = 0;
    obs;
    c_exchanges = Eof_obs.Obs.Counter.make obs "transport.exchanges";
    c_timeouts = Eof_obs.Obs.Counter.make obs "transport.timeouts";
    c_bytes_tx = Eof_obs.Obs.Counter.make obs "transport.bytes_tx";
    c_bytes_rx = Eof_obs.Obs.Counter.make obs "transport.bytes_rx" }

let set_failure_mode t mode = t.mode <- mode

let failure_mode t = t.mode

(* A timeout costs the host its full wait budget; generous so that
   timeouts are visibly expensive, as on real probes. *)
let timeout_cost_us = 500_000.

let exchange t ~server request =
  t.exchanges <- t.exchanges + 1;
  Eof_obs.Obs.Counter.incr t.c_exchanges;
  let tx = String.length request in
  Eof_obs.Obs.Counter.add t.c_bytes_tx tx;
  let lost =
    match t.mode with
    | Up -> false
    | Down -> true
    | Flaky p -> Eof_util.Rng.chance t.rng p
  in
  if lost then begin
    t.timeouts <- t.timeouts + 1;
    Eof_obs.Obs.Counter.incr t.c_timeouts;
    t.elapsed_us <- t.elapsed_us +. timeout_cost_us;
    if Eof_obs.Obs.active t.obs then
      Eof_obs.Obs.emit t.obs
        (Eof_obs.Obs.Event.Exchange { tx; rx = 0; timeout = true });
    Error `Timeout
  end
  else begin
    let response = server request in
    let rx = String.length response in
    Eof_obs.Obs.Counter.add t.c_bytes_rx rx;
    t.elapsed_us <-
      t.elapsed_us +. t.exchange_overhead_us
      +. (float_of_int (tx + rx) *. t.byte_latency_us);
    if Eof_obs.Obs.active t.obs then
      Eof_obs.Obs.emit t.obs
        (Eof_obs.Obs.Event.Exchange { tx; rx; timeout = false });
    Ok response
  end

let elapsed_us t = t.elapsed_us

let exchanges t = t.exchanges

let timeouts t = t.timeouts
