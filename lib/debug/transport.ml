type failure_mode = Up | Down | Flaky of float

type t = {
  rng : Eof_util.Rng.t;
  byte_latency_us : float;
  exchange_overhead_us : float;
  mutable mode : failure_mode;
  mutable elapsed_us : float;
  mutable exchanges : int;
  mutable timeouts : int;
}

let create ?rng ?(byte_latency_us = 1.0) ?(exchange_overhead_us = 40.0) () =
  let rng = match rng with Some r -> r | None -> Eof_util.Rng.create 0x7712AB34L in
  { rng; byte_latency_us; exchange_overhead_us; mode = Up; elapsed_us = 0.;
    exchanges = 0; timeouts = 0 }

let set_failure_mode t mode = t.mode <- mode

let failure_mode t = t.mode

(* A timeout costs the host its full wait budget; generous so that
   timeouts are visibly expensive, as on real probes. *)
let timeout_cost_us = 500_000.

let exchange t ~server request =
  t.exchanges <- t.exchanges + 1;
  let lost =
    match t.mode with
    | Up -> false
    | Down -> true
    | Flaky p -> Eof_util.Rng.chance t.rng p
  in
  if lost then begin
    t.timeouts <- t.timeouts + 1;
    t.elapsed_us <- t.elapsed_us +. timeout_cost_us;
    Error `Timeout
  end
  else begin
    let response = server request in
    let bytes = String.length request + String.length response in
    t.elapsed_us <-
      t.elapsed_us +. t.exchange_overhead_us
      +. (float_of_int bytes *. t.byte_latency_us);
    Ok response
  end

let elapsed_us t = t.elapsed_us

let exchanges t = t.exchanges

let timeouts t = t.timeouts
