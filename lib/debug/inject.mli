(** Deterministic debug-link fault injection.

    A seeded schedule of the failures real JTAG/SWD probes exhibit:
    dropped requests, lost responses, truncated frames, NAK storms and
    post-reset garbage. The injector sits inside {!Transport.exchange};
    every decision is drawn from its own SplitMix64 stream in exchange
    order, so the same seed over the same exchange sequence injects the
    same faults — campaigns under fault injection replay bit-identically.

    Faults arrive in {e bursts}: when one fires, the next few exchanges
    (up to [max_burst]) fault too, as a glitching probe does. Bursts are
    what drive the recovery ladder past its first rung — a lone fault is
    cured by a retry, a burst outlives the retry budget and forces a
    resync or reset. *)

type fault =
  | Drop  (** request lost: the server never sees it; safe to re-send *)
  | Timeout
      (** response lost: the server {e did} execute; a retry re-runs it *)
  | Truncate  (** response cut mid-frame *)
  | Nak_storm  (** response replaced by a run of NAKs *)
  | Garbage
      (** response replaced by junk bytes — only armed by
          {!note_reset}, modelling a probe desynced by a target reset *)

val fault_name : fault -> string

type config = {
  rate : float;  (** per-exchange probability of starting a fault burst *)
  seed : int64;
  max_burst : int;  (** longest burst of consecutive faulted exchanges *)
  kill_after : int option;
      (** after this many exchanges the link dies permanently (every
          further exchange drops) — the dead-board scenario *)
}

val default_config : config
(** rate 0, seed 0x1NJ3C7 (inert until the rate is raised), bursts up
    to 6, no kill. *)

type t

val create : config -> t

val config : t -> config

(** What to do to one exchange. *)
type decision =
  | Pass
  | Fault of fault

val decide : t -> decision
(** Draw the next exchange's fate. Consumes RNG in exchange order —
    the determinism contract. *)

val mangle : t -> fault -> string -> string
(** The bytes the host actually receives for a response-mangling fault
    ([Truncate]/[Nak_storm]/[Garbage]). [Drop]/[Timeout] have no bytes
    to mangle and return [""]. *)

val note_reset : t -> unit
(** Arm post-reset garbage: the next fault drawn while armed is
    [Garbage]. Called by the session when it resets the target. *)

val force_next : t -> fault -> unit
(** Queue one forced fault for the next exchange (tests aim a specific
    fault at a specific exchange type with this). *)

val exchanges_seen : t -> int

val faults_injected : t -> int

val history : t -> (int * fault) list
(** Every injected fault as [(exchange index, kind)], chronological —
    the determinism test compares two histories. *)
