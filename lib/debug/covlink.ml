module Sancov = Eof_cov.Sancov
module Obs = Eof_obs.Obs
module Eof_error = Eof_util.Eof_error

type t = {
  session : Session.t;
  layout : Sancov.Layout.t;
  obs : Obs.t;
  c_drains : Obs.Counter.t;
  c_records : Obs.Counter.t;
  c_cmp : Obs.Counter.t;
}

type drained = {
  n_records : int;
  records_raw : string;
  n_cmp : int;
  cmp_raw : string;
  log : string;
}

let empty_drained = { n_records = 0; records_raw = ""; n_cmp = 0; cmp_raw = ""; log = "" }

let create ~session ~layout =
  let obs = Session.obs session in
  { session; layout; obs;
    c_drains = Obs.Counter.make obs "covlink.drains";
    c_records = Obs.Counter.make obs "covlink.records";
    c_cmp = Obs.Counter.make obs "covlink.cmp" }

let observe_drained t ~fused d =
  Obs.Counter.incr t.c_drains;
  Obs.Counter.add t.c_records d.n_records;
  Obs.Counter.add t.c_cmp d.n_cmp;
  if Obs.active t.obs then
    Obs.emit t.obs
      (Obs.Event.Drain
         { records = d.n_records; cmp = d.n_cmp;
           log_bytes = String.length d.log; fused })

let session t = t.session

let records_op t =
  Rsp.B_read_counted
    {
      count_addr = Sancov.Layout.write_index_addr t.layout;
      data_addr = Sancov.Layout.records_addr t.layout;
      stride = 4;
      max_count = t.layout.Sancov.Layout.capacity_records;
      reset = true;
    }

let cmp_op t =
  Rsp.B_read_counted
    {
      count_addr = Sancov.Layout.cmp_count_addr t.layout;
      data_addr = Sancov.Layout.cmp_ring_addr t.layout;
      stride = 8;
      max_count = Sancov.Layout.cmp_ring_entries;
      reset = true;
    }

let drain_ops t ~want_cmp =
  if want_cmp then [ records_op t; cmp_op t; Rsp.B_monitor "uart" ]
  else [ records_op t; Rsp.B_monitor "uart" ]

(* A failed drain sub-operation yields its zero result, mirroring the
   per-stage "ignore the error, retry at the next stop" behaviour of the
   unbatched drain helpers; the counter was not reset server-side, so
   nothing is lost. *)
let counted ~max_count = function
  | Rsp.Br_counted { count; data } -> (min count max_count, data)
  | _ -> (0, "")

let text_of = function Rsp.Br_data s -> s | _ -> ""

let interpret t ~want_cmp replies =
  match (want_cmp, replies) with
  | true, [ rec_r; cmp_r; uart_r ] ->
    let n_records, records_raw =
      counted ~max_count:t.layout.Sancov.Layout.capacity_records rec_r
    in
    let n_cmp, cmp_raw = counted ~max_count:Sancov.Layout.cmp_ring_entries cmp_r in
    Ok { n_records; records_raw; n_cmp; cmp_raw; log = text_of uart_r }
  | false, [ rec_r; uart_r ] ->
    let n_records, records_raw =
      counted ~max_count:t.layout.Sancov.Layout.capacity_records rec_r
    in
    Ok { n_records; records_raw; n_cmp = 0; cmp_raw = ""; log = text_of uart_r }
  | _ -> Error (Eof_error.protocol "covlink: unexpected drain reply shape")

let drain t ~want_cmp =
  let span = Obs.span_begin t.obs "covlink.drain" in
  let result =
    match Session.batch t.session (drain_ops t ~want_cmp) with
    | Error e -> Error e
    | Ok replies -> interpret t ~want_cmp replies
  in
  Obs.span_end t.obs span;
  (match result with Ok d -> observe_drained t ~fused:false d | Error _ -> ());
  result

let continue_replies t ~want_cmp = function
  | stop_r :: rest ->
    (match stop_r with
     | Rsp.Br_stop payload ->
       (match Session.decode_stop t.session payload with
        | Error e -> Error e
        | Ok stop ->
          (match interpret t ~want_cmp rest with
           | Error e -> Error e
           | Ok d -> Ok (stop, d)))
     | Rsp.Br_error n -> Error (Eof_error.remote n)
     | _ -> Error (Eof_error.protocol "covlink: continue sub-reply is not a stop"))
  | [] -> Error (Eof_error.protocol "covlink: empty batch reply")

let continue_and_drain ?write t ~want_cmp =
  let prefix =
    match write with
    | None -> []
    | Some (addr, data) -> [ Rsp.B_write { addr; data } ]
  in
  let ops = prefix @ (Rsp.B_continue :: drain_ops t ~want_cmp) in
  let span = Obs.span_begin t.obs "covlink.exchange" in
  let result =
    match Session.batch t.session ops with
    | Error e -> Error e
    | Ok replies ->
      (* Peel the optional write acknowledgement off the front; a failed
         write must not be silently continued past. *)
      (match (write, replies) with
       | Some _, Rsp.Br_error n :: _ -> Error (Eof_error.remote n)
       | Some _, Rsp.Br_ok :: rest -> continue_replies t ~want_cmp rest
       | Some _, _ -> Error (Eof_error.protocol "covlink: write sub-reply is not an ack")
       | None, rest -> continue_replies t ~want_cmp rest)
  in
  Obs.span_end t.obs span;
  (match result with
   | Ok (_, d) -> observe_drained t ~fused:true d
   | Error _ -> ());
  result
