open Eof_hw
open Eof_exec

type t = {
  board : Board.t;
  engine : Engine.t;
  continue_quantum : int;
  decoder : Rsp.Decoder.t;
  pc_reg : int;
  reg_dump_words : int;
  mutable last_stop : Rsp.reply;
  mutable packets_served : int;
  (* Board-side snapshot served by the QSnapshot extension; the host only
     ever holds a handle, the saved pages stay on this side of the link. *)
  mutable snapshot : Snapshot.t option;
}

let create ?(continue_quantum = 200_000) ~board ~engine () =
  let arch = (Board.profile board).Board.arch in
  {
    board;
    engine;
    continue_quantum;
    decoder = Rsp.Decoder.create ();
    pc_reg = arch.Arch.pc_register;
    reg_dump_words = max arch.Arch.register_count (arch.Arch.pc_register + 1);
    last_stop = Rsp.Stop { signal = 5; pc = Engine.pc engine; detail = "initial" };
    packets_served = 0;
    snapshot = None;
  }

let board t = t.board

let engine t = t.engine

let stop_of_reason t (reason : Engine.stop_reason) : Rsp.reply =
  match reason with
  | Engine.Breakpoint_hit pc -> Rsp.Stop { signal = 5; pc; detail = "swbreak" }
  | Engine.Fuel_exhausted ->
    Rsp.Stop { signal = 2; pc = Engine.pc t.engine; detail = "quantum" }
  | Engine.Faulted _ -> Rsp.Stop { signal = 11; pc = Engine.pc t.engine; detail = "fault" }
  | Engine.Exited -> Rsp.Exited 0

let reg_dump t =
  (* All registers read as zero except the PC slot: we model a core whose
     only architecturally visible progress is the program counter. *)
  let words = Array.make t.reg_dump_words 0l in
  words.(t.pc_reg) <- Int32.of_int (Engine.pc t.engine);
  let buf = Bytes.create (4 * t.reg_dump_words) in
  let endianness = (Board.profile t.board).Board.arch.Arch.endianness in
  Array.iteri
    (fun i w ->
      match endianness with
      | Arch.Little -> Bytes.set_int32_le buf (4 * i) w
      | Arch.Big -> Bytes.set_int32_be buf (4 * i) w)
    words;
  Bytes.unsafe_to_string buf

let do_reset t =
  Board.reset t.board;
  Engine.reset t.engine;
  t.last_stop <- Rsp.Stop { signal = 5; pc = Engine.pc t.engine; detail = "initial" }

let monitor t cmd : Rsp.reply =
  match String.trim cmd with
  | "reset" | "reset halt" ->
    do_reset t;
    Rsp.Ok_reply
  | "uart" -> Rsp.Hex_data (Uart.drain (Board.uart t.board))
  | "fault" ->
    let text =
      match Engine.last_fault t.engine with None -> "" | Some f -> Fault.to_string f
    in
    Rsp.Hex_data text
  | "bootok" -> Rsp.Hex_data (if Board.boot_ok t.board then "1" else "0")
  | "cycles" ->
    Rsp.Hex_data (Int64.to_string (Clock.cycles (Board.clock t.board)))
  | cmd when String.length cmd > 5 && String.sub cmd 0 5 = "gpio " ->
    (match String.split_on_char ' ' cmd with
     | [ _; pin; level ] ->
       (match (int_of_string_opt pin, level) with
        | Some pin, ("0" | "1") ->
          (match
             Gpio.set_level (Board.gpio t.board) ~pin ~level:(level = "1")
           with
           | Ok () -> Rsp.Ok_reply
           | Error _ -> Rsp.Error_reply 0x02)
        | _ -> Rsp.Error_reply 0x02)
     | _ -> Rsp.Error_reply 0x02)
  | _ -> Rsp.Error_reply 0x01

let word_of_le_be t raw =
  let b = Bytes.unsafe_of_string raw in
  match (Board.profile t.board).Board.arch.Arch.endianness with
  | Arch.Little -> Bytes.get_int32_le b 0
  | Arch.Big -> Bytes.get_int32_be b 0

let execute_batch_op t (op : Rsp.batch_op) : Rsp.batch_reply =
  match op with
  | Rsp.B_continue ->
    let reply = stop_of_reason t (Engine.run t.engine ~fuel:t.continue_quantum) in
    t.last_stop <- reply;
    Rsp.Br_stop (Rsp.render_reply ~pc_reg:t.pc_reg reply)
  | Rsp.B_read { addr; len } ->
    (match Board.read_mem t.board ~addr ~len with
     | Ok data -> Rsp.Br_data data
     | Error _ -> Rsp.Br_error 0x0E)
  | Rsp.B_write { addr; data } ->
    (match Board.write_ram t.board ~addr data with
     | Ok () -> Rsp.Br_ok
     | Error _ -> Rsp.Br_error 0x0E)
  | Rsp.B_read_counted { count_addr; data_addr; stride; max_count; reset } ->
    if stride <= 0 || max_count < 0 then Rsp.Br_error 0x16
    else
      (match Board.read_mem t.board ~addr:count_addr ~len:4 with
       | Error _ -> Rsp.Br_error 0x0E
       | Ok raw ->
         let count = Int32.to_int (word_of_le_be t raw) in
         let n = max 0 (min count max_count) in
         let data =
           if n = 0 then Ok ""
           else Board.read_mem t.board ~addr:data_addr ~len:(n * stride)
         in
         (match data with
          | Error _ -> Rsp.Br_error 0x0E
          | Ok data ->
            let resetted =
              if reset then Board.write_ram t.board ~addr:count_addr (String.make 4 '\x00')
              else Ok ()
            in
            (match resetted with
             | Ok () -> Rsp.Br_counted { count; data }
             | Error _ -> Rsp.Br_error 0x0E)))
  | Rsp.B_monitor cmd ->
    (match monitor t cmd with
     | Rsp.Ok_reply -> Rsp.Br_ok
     | Rsp.Hex_data text -> Rsp.Br_data text
     | Rsp.Error_reply n -> Rsp.Br_error n
     | _ -> Rsp.Br_error 0x01)

let execute t (cmd : Rsp.command) : Rsp.reply =
  match cmd with
  | Rsp.Q_supported _ ->
    Rsp.Supported "PacketSize=4000;swbreak+;vFlashErase+;qRcmd+;vBatch+;X+;QSnapshot+"
  | Rsp.Read_mem { addr; len } ->
    (match Board.read_mem t.board ~addr ~len with
     | Ok data -> Rsp.Hex_data data
     | Error _ -> Rsp.Error_reply 0x0E)
  | Rsp.Write_mem { addr; data } | Rsp.Write_mem_bin { addr; data } ->
    (match Board.write_ram t.board ~addr data with
     | Ok () -> Rsp.Ok_reply
     | Error _ -> Rsp.Error_reply 0x0E)
  | Rsp.Insert_breakpoint addr ->
    Engine.set_breakpoint t.engine addr;
    Rsp.Ok_reply
  | Rsp.Remove_breakpoint addr ->
    Engine.remove_breakpoint t.engine addr;
    Rsp.Ok_reply
  | Rsp.Continue ->
    let reply = stop_of_reason t (Engine.run t.engine ~fuel:t.continue_quantum) in
    t.last_stop <- reply;
    reply
  | Rsp.Step ->
    let reply = stop_of_reason t (Engine.step_one t.engine) in
    t.last_stop <- reply;
    reply
  | Rsp.Read_registers -> Rsp.Raw (Eof_util.Hex.encode (reg_dump t))
  | Rsp.Halt_reason -> t.last_stop
  | Rsp.Flash_erase { addr; len } ->
    (try
       Flash.erase_range (Board.flash t.board) ~addr ~len;
       Rsp.Ok_reply
     with Fault.Trap _ -> Rsp.Error_reply 0x0E)
  | Rsp.Flash_write { addr; data } ->
    (try
       Flash.program (Board.flash t.board) ~addr data;
       Rsp.Ok_reply
     with Fault.Trap _ -> Rsp.Error_reply 0x0E)
  | Rsp.Flash_done -> Rsp.Ok_reply
  | Rsp.Monitor cmd -> monitor t cmd
  | Rsp.Batch ops ->
    (* Sub-operations run in order; a failing one yields its error slot
       and execution continues, so the client always gets positionally
       matched sub-replies. *)
    Rsp.Raw ("b" ^ Rsp.render_batch_replies (List.map (execute_batch_op t) ops))
  | Rsp.Snapshot_save ->
    let snap = Board.snapshot t.board in
    t.snapshot <- Some snap;
    Rsp.Raw (Printf.sprintf "S%x" (Snapshot.pages snap))
  | Rsp.Snapshot_restore ->
    (match t.snapshot with
     | None -> Rsp.Error_reply 0x23 (* restore before save *)
     | Some snap ->
       let dirty = Board.restore_snapshot t.board snap in
       Rsp.Raw (Printf.sprintf "S%x" dirty))
  | Rsp.Kill ->
    do_reset t;
    Rsp.Ok_reply

let feed t bytes =
  let out = Buffer.create 64 in
  let events = Rsp.Decoder.feed t.decoder bytes in
  List.iter
    (fun event ->
      match event with
      | Rsp.Decoder.Packet payload ->
        t.packets_served <- t.packets_served + 1;
        Buffer.add_char out '+';
        let reply =
          match Rsp.parse_command payload with
          | Ok cmd -> execute t cmd
          | Error _ -> Rsp.Raw ""
          (* unsupported packet: empty reply per RSP convention *)
        in
        Buffer.add_string out (Rsp.make_frame (Rsp.render_reply ~pc_reg:t.pc_reg reply))
      | Rsp.Decoder.Bad_checksum _ -> Buffer.add_char out '-'
      | Rsp.Decoder.Ack | Rsp.Decoder.Nak | Rsp.Decoder.Break -> ())
    events;
  Buffer.contents out

let packets_served t = t.packets_served
