(** Coalesced coverage drain over the debug link.

    The per-stop host choreography — read the coverage write index, read
    the present records, reset the index, read the cmp-ring counter, read
    the operand pairs, reset the counter, drain the UART — is six-plus
    link round trips on the unbatched path. This module folds the whole
    drain (optionally fused with the continue that produced the stop)
    into ONE [vBatch] exchange, the optimisation the paper's host hot
    path lives on: round trips, not bytes, dominate debug-link time.

    Results come back raw; the campaign decodes them into its per-state
    scratch arrays with {!Eof_cov.Sancov.decode_records_into} /
    [decode_cmp_ring_into], so the steady-state drain allocates nothing
    proportional to the record count. *)

type t

type drained = {
  n_records : int;  (** decoded record count present in [records_raw] *)
  records_raw : string;  (** raw little/big-endian u32 records *)
  n_cmp : int;  (** operand-pair count present in [cmp_raw] *)
  cmp_raw : string;  (** raw operand pairs, 8 bytes each *)
  log : string;  (** UART output drained at this stop *)
}

val empty_drained : drained

val create : session:Session.t -> layout:Eof_cov.Sancov.Layout.t -> t
(** The session must have negotiated [vBatch+] ({!Session.supports_batch}). *)

val session : t -> Session.t

val drain : t -> want_cmp:bool -> (drained, Session.error) result
(** One exchange: drain records (+ cmp ring when [want_cmp]) + UART,
    resetting both target-side counters. A failed sub-operation yields
    its zero slice (counter untouched server-side), mirroring the
    unbatched drain's ignore-and-retry behaviour. *)

val continue_and_drain :
  ?write:int * string ->
  t ->
  want_cmp:bool ->
  (Session.stop * drained, Session.error) result
(** The fused hot-path exchange: continue to the next stop, then drain —
    still one round trip. The stop is decoded exactly as
    {!Session.continue_} would decode it.

    [?write:(addr, image)] prepends a binary memory write, executed
    server-side before the continue: delivering a test case into the
    mailbox rides the same exchange as the continue that consumes it. A
    rejected write aborts the batch result with [Remote _] rather than
    continuing past it. *)
