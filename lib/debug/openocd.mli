open Eof_hw
open Eof_exec

(** The on-host debug server (the OpenOCD role).

    Owns the probe side of the link: it decodes RSP byte streams from the
    host session, executes commands against the board and execution
    engine, and encodes replies. Continue/step run the engine in bounded
    quanta; a continue that exhausts its quantum reports SIGINT with the
    current PC — exactly what a debugger sees when it interrupts a target
    that is still running, and the observation the PC-stall watchdog is
    built on. *)

type t

val create : ?continue_quantum:int -> board:Board.t -> engine:Engine.t -> unit -> t
(** [continue_quantum] is the site budget of one [c] packet (default
    200_000). *)

val board : t -> Board.t

val engine : t -> Engine.t

val feed : t -> string -> string
(** Process raw bytes from the host; return the raw bytes to send back
    (acks plus reply frames). [vBatch] packets execute their
    sub-operations in order server-side and return one combined reply
    frame; [X] packets are binary-escaped memory writes. Both are
    advertised in the [qSupported] reply ([vBatch+;X+]). *)

val packets_served : t -> int

(** Monitor ([qRcmd]) commands understood, all returning hex-encoded
    text per OpenOCD convention:
    - ["reset"]: power-cycle the board and rearm the engine
    - ["uart"]: drain and return pending UART output
    - ["fault"]: the last hardware-fault diagnosis, or empty
    - ["bootok"]: "1" if the bootloader integrity check passes
    - ["cycles"]: the board clock's cycle counter in decimal
    - ["gpio <pin> <0|1>"]: inject a pin-level change (peripheral event
      injection for interrupt-path fuzzing) *)
