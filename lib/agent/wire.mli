open Eof_hw

(** The test-case wire format.

    Programs travel from the host fuzzer into the target mailbox as a
    flat byte stream of fixed-width fields in the *target's* endianness,
    so the on-target agent can decode them with nothing but integer
    loads — the paper's "primitive operations only" requirement. Strings
    are length-prefixed; resource arguments reference the producing
    call's index, which the agent resolves against its local results
    array at execution time. *)

type arg =
  | W_int of int64
  | W_str of string
  | W_res of int  (** index of the producing call within the program *)

type call = { api_index : int; args : arg list }

type program = call list

val magic : int32
(** ["EOFP"] in the target byte order. *)

val max_calls : int
(** 64. *)

val max_args : int
(** 8 per call. *)

val max_str : int
(** 1024 bytes per string/buffer argument. *)

val encode : endianness:Arch.endianness -> program -> (string, string) result
(** Host side. Validates the limits. *)

val encode_into :
  endianness:Arch.endianness -> Buffer.t -> program -> (unit, string) result
(** Like {!encode} but appending into a caller-owned buffer, so a hot
    loop can clear and reuse one pre-sized buffer instead of allocating
    per program. The buffer is untouched on validation failure. *)

val decode : endianness:Arch.endianness -> string -> (program, string) result
(** Pure decoder (tests, corpus tools). *)

val decode_from_ram :
  mem:Memory.t -> endianness:Arch.endianness -> base:int -> (program, string) result
(** Target side: read the mailbox. Expects [magic], then [u32 len], then
    [len] bytes of encoded program. *)

val write_to_ram :
  mem:Memory.t -> endianness:Arch.endianness -> base:int -> limit:int -> program ->
  (unit, string) result
(** Host-side helper used by tests and the emulation-based baselines
    (which bypass the debug link): place [magic]+len+payload at [base]. *)

val mailbox_bytes_for : program -> int

val results_magic : int32

(** Result summary the agent writes back after executing a program. *)
module Results : sig
  type t = { executed : int; statuses : int32 list }

  val write : mem:Memory.t -> endianness:Arch.endianness -> base:int -> t -> unit

  val read :
    raw:string -> endianness:Arch.endianness -> (t, string) result
  (** Decode from bytes fetched over the debug link. *)

  val byte_size : int -> int
  (** Bytes occupied by a summary of [n] calls. *)
end

val pp_program : Format.formatter -> program -> unit
