open Eof_hw
open Eof_os
module Eof_error = Eof_util.Eof_error

type t = {
  build : Osbuild.t;
  engine : Eof_exec.Engine.t;
  server : Eof_debug.Openocd.t;
  transport : Eof_debug.Transport.t;
  session : Eof_debug.Session.t;
}

let create ?obs ?(continue_quantum = 200_000) ?transport ?inject build =
  let board = Osbuild.board build in
  let syms = Osbuild.syms build in
  let engine =
    Eof_exec.Engine.create ~board ~fault_vector:syms.Osbuild.sym_handle_exception
      ~entry:(Agent.entry build)
  in
  let server = Eof_debug.Openocd.create ~continue_quantum ~board ~engine () in
  let transport =
    match transport with
    | Some t -> t
    | None -> Eof_debug.Transport.create ?obs ()
  in
  (* A fault schedule rides the transport whether the transport was
     supplied or created here: the injector is orthogonal probe
     behaviour, not transport construction. *)
  (match inject with
   | Some cfg -> Eof_debug.Transport.set_injector transport (Some (Eof_debug.Inject.create cfg))
   | None -> ());
  match Eof_debug.Session.connect ?obs ~transport ~server () with
  | Ok session ->
    let t = { build; engine; server; transport; session } in
    (* Timestamps on this machine's bus handle come from its own virtual
       clock, never the host wall clock — the trace-determinism
       guarantee hangs on this binding. *)
    (match obs with
     | Some bus ->
       Eof_obs.Obs.set_clock bus (fun () ->
           Clock.now_s (Board.clock board)
           +. (Eof_debug.Transport.elapsed_us transport /. 1e6))
     | None -> ());
    Ok t
  | Error e -> Error (Eof_error.with_context "link bring-up" e)

let create_fleet ?obs ?continue_quantum ?inject_for ~boards mk_build =
  if boards < 1 then Error (Eof_error.config "fleet: boards must be >= 1")
  else begin
    let rec go i acc =
      if i >= boards then Ok (Array.of_list (List.rev acc))
      else
        let build = mk_build i in
        let obs = Option.map (fun bus -> Eof_obs.Obs.for_board bus i) obs in
        let inject = match inject_for with Some f -> f i | None -> None in
        match create ?obs ?continue_quantum ?inject build with
        | Ok m -> go (i + 1) ((build, m) :: acc)
        | Error e -> Error (Eof_error.with_context (Printf.sprintf "board %d" i) e)
    in
    go 0 []
  end

let build t = t.build

let session t = t.session

let transport t = t.transport

let server t = t.server

let virtual_elapsed_s t =
  let board = Osbuild.board t.build in
  Clock.now_s (Board.clock board) +. (Eof_debug.Transport.elapsed_us t.transport /. 1e6)
