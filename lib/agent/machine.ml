open Eof_hw
open Eof_os
module Eof_error = Eof_util.Eof_error
module Session = Eof_debug.Session
module Sancov = Eof_cov.Sancov
module Obs = Eof_obs.Obs

type backend = Link | Native

let backend_name = function Link -> "link" | Native -> "native"

let backend_of_name s =
  match String.lowercase_ascii s with
  | "link" -> Ok Link
  | "native" -> Ok Native
  | other -> Error (Printf.sprintf "unknown backend %S (link|native)" other)

type stop = Eof_debug.Session.stop =
  | Stopped_breakpoint of int
  | Stopped_quantum of int
  | Stopped_fault of int
  | Target_exited

type drained = {
  n_records : int;
  records_raw : string;
  n_cmp : int;
  cmp_raw : string;
  log : string;
}

type link_state = {
  server : Eof_debug.Openocd.t;
  transport : Eof_debug.Transport.t;
  session : Session.t;
}

type native_state = {
  continue_quantum : int;
  (* In-process twin of the stub's board-side snapshot slot. *)
  mutable n_snapshot : Snapshot.t option;
  n_obs : Obs.t;
  c_stops : Obs.Counter.t;
  c_drains : Obs.Counter.t;
  c_records : Obs.Counter.t;
  c_cmp : Obs.Counter.t;
  c_flash_ops : Obs.Counter.t;
}

type impl = L of link_state | N of native_state

type t = {
  build : Osbuild.t;
  board : Board.t;
  engine : Eof_exec.Engine.t;
  impl : impl;
  (* Host-side knowledge that a pristine snapshot is in place (stub-side
     on the link backend, in-process on native): gates the O(dirty pages)
     fast path in Liveness.restore. *)
  mutable snapshot_armed : bool;
}

let make_engine build =
  let board = Osbuild.board build in
  let syms = Osbuild.syms build in
  Eof_exec.Engine.create ~board ~fault_vector:syms.Osbuild.sym_handle_exception
    ~entry:(Agent.entry build)

let create ?obs ?(continue_quantum = 200_000) ?transport ?inject build =
  let board = Osbuild.board build in
  let engine = make_engine build in
  let server = Eof_debug.Openocd.create ~continue_quantum ~board ~engine () in
  let transport =
    match transport with
    | Some t -> t
    | None -> Eof_debug.Transport.create ?obs ()
  in
  (* A fault schedule rides the transport whether the transport was
     supplied or created here: the injector is orthogonal probe
     behaviour, not transport construction. *)
  (match inject with
   | Some cfg -> Eof_debug.Transport.set_injector transport (Some (Eof_debug.Inject.create cfg))
   | None -> ());
  match Eof_debug.Session.connect ?obs ~transport ~server () with
  | Ok session ->
    let t =
      { build; board; engine; impl = L { server; transport; session }; snapshot_armed = false }
    in
    (* Timestamps on this machine's bus handle come from its own virtual
       clock, never the host wall clock — the trace-determinism
       guarantee hangs on this binding. *)
    (match obs with
     | Some bus ->
       Eof_obs.Obs.set_clock bus (fun () ->
           Clock.now_s (Board.clock board)
           +. (Eof_debug.Transport.elapsed_us transport /. 1e6))
     | None -> ());
    Ok t
  | Error e -> Error (Eof_error.with_context "link bring-up" e)

let create_native ?obs ?(continue_quantum = 200_000) build =
  let board = Osbuild.board build in
  let engine = make_engine build in
  (* The native clock is board CPU time alone: no transport exists to
     contribute latency, and binding anything else would break the
     backend's "pay only for execution" cost model. *)
  (match obs with
   | Some bus -> Obs.set_clock bus (fun () -> Clock.now_s (Board.clock board))
   | None -> ());
  let n_obs = match obs with Some o -> o | None -> Obs.create () in
  Ok
    {
      build;
      board;
      engine;
      snapshot_armed = false;
      impl =
        N
          {
            continue_quantum;
            n_snapshot = None;
            n_obs;
            c_stops = Obs.Counter.make n_obs "native.stops";
            c_drains = Obs.Counter.make n_obs "native.drains";
            c_records = Obs.Counter.make n_obs "native.records";
            c_cmp = Obs.Counter.make n_obs "native.cmp";
            c_flash_ops = Obs.Counter.make n_obs "native.flash_ops";
          };
    }

let create_fleet ?obs ?continue_quantum ?inject_for ?(backend = Link) ~boards mk_build =
  if boards < 1 then Error (Eof_error.config "fleet: boards must be >= 1")
  else begin
    let rec go i acc =
      if i >= boards then Ok (Array.of_list (List.rev acc))
      else
        let build = mk_build i in
        let obs = Option.map (fun bus -> Eof_obs.Obs.for_board bus i) obs in
        let inject = match inject_for with Some f -> f i | None -> None in
        let made =
          match backend with
          | Link -> create ?obs ?continue_quantum ?inject build
          | Native ->
            if inject <> None then
              Error
                (Eof_error.config
                   "fault injection is link-only: the native backend has no link to fault")
            else create_native ?obs ?continue_quantum build
        in
        match made with
        | Ok m -> go (i + 1) ((build, m) :: acc)
        | Error e -> Error (Eof_error.with_context (Printf.sprintf "board %d" i) e)
    in
    go 0 []
  end

let backend t = match t.impl with L _ -> Link | N _ -> Native

let build t = t.build

let link_only t name =
  match t.impl with
  | L l -> l
  | N _ -> invalid_arg (Printf.sprintf "Machine.%s: native machine has no link stack" name)

let session t = (link_only t "session").session

let transport t = (link_only t "transport").transport

let server t = (link_only t "server").server

let obs t =
  match t.impl with L l -> Session.obs l.session | N n -> n.n_obs

let virtual_elapsed_s t =
  let cpu = Clock.now_s (Board.clock t.board) in
  match t.impl with
  | L l -> cpu +. (Eof_debug.Transport.elapsed_us l.transport /. 1e6)
  | N _ -> cpu

(* Target CPU time alone — identical across backends for the same
   payload schedule, which is what makes it usable as a
   backend-invariant ordering key. *)
let cpu_elapsed_s t = Clock.now_s (Board.clock t.board)

(* --- backend-neutral operations ---------------------------------------- *)

let fault_error f = Eof_error.agent ("native memory access faulted: " ^ Fault.to_string f)

let endianness t = (Board.profile t.board).Board.arch.Arch.endianness

(* The native stop mapping is copied from the probe server's
   [stop_of_reason]: the two backends must classify identically for the
   differential oracle to hold. *)
let native_stop t (reason : Eof_exec.Engine.stop_reason) =
  match reason with
  | Eof_exec.Engine.Breakpoint_hit pc -> Stopped_breakpoint pc
  | Eof_exec.Engine.Fuel_exhausted -> Stopped_quantum (Eof_exec.Engine.pc t.engine)
  | Eof_exec.Engine.Faulted _ -> Stopped_fault (Eof_exec.Engine.pc t.engine)
  | Eof_exec.Engine.Exited -> Target_exited

let stop_kind = function
  | Stopped_breakpoint _ -> "breakpoint"
  | Stopped_quantum _ -> "quantum"
  | Stopped_fault _ -> "fault"
  | Target_exited -> "exited"

let stop_pc = function
  | Stopped_breakpoint pc | Stopped_quantum pc | Stopped_fault pc -> pc
  | Target_exited -> 0

let observe_stop n stop =
  Obs.Counter.incr n.c_stops;
  if Obs.active n.n_obs then
    Obs.emit n.n_obs (Obs.Event.Stop { kind = stop_kind stop; pc = stop_pc stop })

let continue_ t =
  match t.impl with
  | L l -> Session.continue_ l.session
  | N n ->
    let stop = native_stop t (Eof_exec.Engine.run t.engine ~fuel:n.continue_quantum) in
    observe_stop n stop;
    Ok stop

let read_mem t ~addr ~len =
  match t.impl with
  | L l -> Session.read_mem l.session ~addr ~len
  | N _ -> Result.map_error fault_error (Board.read_mem t.board ~addr ~len)

let write_mem t ~addr data =
  match t.impl with
  | L l -> Session.write_mem l.session ~addr data
  | N _ -> Result.map_error fault_error (Board.write_ram t.board ~addr data)

let word_of t raw =
  let b = Bytes.unsafe_of_string raw in
  match endianness t with
  | Arch.Little -> Bytes.get_int32_le b 0
  | Arch.Big -> Bytes.get_int32_be b 0

let read_u32 t ~addr =
  match t.impl with
  | L l -> Session.read_u32 l.session ~addr
  | N _ ->
    (match Board.read_mem t.board ~addr ~len:4 with
     | Error f -> Error (fault_error f)
     | Ok raw -> Ok (word_of t raw))

let write_u32 t ~addr v =
  match t.impl with
  | L l -> Session.write_u32 l.session ~addr v
  | N _ ->
    let b = Bytes.create 4 in
    (match endianness t with
     | Arch.Little -> Bytes.set_int32_le b 0 v
     | Arch.Big -> Bytes.set_int32_be b 0 v);
    Result.map_error fault_error
      (Board.write_ram t.board ~addr (Bytes.unsafe_to_string b))

let set_breakpoint t addr =
  match t.impl with
  | L l -> Session.set_breakpoint l.session addr
  | N _ ->
    Eof_exec.Engine.set_breakpoint t.engine addr;
    Ok ()

let read_pc t =
  match t.impl with
  | L l -> Session.read_pc l.session
  | N _ -> Ok (Eof_exec.Engine.pc t.engine land 0x7FFFFFFF)

let drain_uart t =
  match t.impl with
  | L l -> Session.drain_uart l.session
  | N _ -> Ok (Uart.drain (Board.uart t.board))

let last_fault t =
  match t.impl with
  | L l -> Session.last_fault l.session
  | N _ ->
    Ok
      (match Eof_exec.Engine.last_fault t.engine with
       | None -> ""
       | Some f -> Fault.to_string f)

let reset_target t =
  match t.impl with
  | L l -> Session.reset_target l.session
  | N n ->
    (* Exactly the probe server's reset path: board first (RAM, UART,
       GPIO cleared; clock and flash persist), then re-arm the engine. *)
    Board.reset t.board;
    Eof_exec.Engine.reset t.engine;
    if Obs.active n.n_obs then Obs.emit n.n_obs Obs.Event.Reset_board;
    Ok ()

let resync t =
  match t.impl with
  | L l -> Session.resync l.session
  | N _ -> Ok ()

let inject_gpio t ~pin ~level =
  match t.impl with
  | L l -> Session.inject_gpio l.session ~pin ~level
  | N _ ->
    (match Gpio.set_level (Board.gpio t.board) ~pin ~level with
     | Ok () -> Ok ()
     | Error e -> Error (Eof_error.agent ("gpio injection: " ^ e)))

let supports_batch t =
  match t.impl with L l -> Session.supports_batch l.session | N _ -> false

(* --- native fused continue + drain ------------------------------------- *)

(* Mirrors the probe server's [B_read_counted] semantics bit-for-bit:
   read the counter word, clamp to capacity, read that many entries from
   the start of the buffer, then reset the counter — so the raw byte
   stream handed to the campaign's decoders is identical to what the
   vBatch drain returns over the link. A failed read yields the zero
   result (nothing was reset, nothing is lost), matching Covlink. *)
let read_counted t ~count_addr ~data_addr ~stride ~max_count =
  match Board.read_mem t.board ~addr:count_addr ~len:4 with
  | Error _ -> (0, "")
  | Ok raw ->
    let count = Int32.to_int (word_of t raw) in
    let n = max 0 (min count max_count) in
    let data =
      if n = 0 then Ok ""
      else Board.read_mem t.board ~addr:data_addr ~len:(n * stride)
    in
    (match data with
     | Error _ -> (0, "")
     | Ok data ->
       (match Board.write_ram t.board ~addr:count_addr (String.make 4 '\x00') with
        | Ok () -> (n, data)
        | Error _ -> (0, "")))

let native_drain t n ~want_cmp =
  let layout = Osbuild.covbuf_layout t.build in
  let n_records, records_raw =
    read_counted t
      ~count_addr:(Sancov.Layout.write_index_addr layout)
      ~data_addr:(Sancov.Layout.records_addr layout)
      ~stride:4 ~max_count:layout.Sancov.Layout.capacity_records
  in
  let n_cmp, cmp_raw =
    if want_cmp then
      read_counted t
        ~count_addr:(Sancov.Layout.cmp_count_addr layout)
        ~data_addr:(Sancov.Layout.cmp_ring_addr layout)
        ~stride:8 ~max_count:Sancov.Layout.cmp_ring_entries
    else (0, "")
  in
  let log = Uart.drain (Board.uart t.board) in
  let d = { n_records; records_raw; n_cmp; cmp_raw; log } in
  Obs.Counter.incr n.c_drains;
  Obs.Counter.add n.c_records d.n_records;
  Obs.Counter.add n.c_cmp d.n_cmp;
  if Obs.active n.n_obs then
    Obs.emit n.n_obs
      (Obs.Event.Drain
         { records = d.n_records; cmp = d.n_cmp;
           log_bytes = String.length d.log; fused = true });
  d

let continue_and_drain ?write t ~want_cmp =
  match t.impl with
  | L _ ->
    Error
      (Eof_error.protocol
         "Machine.continue_and_drain: link machines fuse drains through Covlink")
  | N n ->
    let deliver =
      match write with
      | None -> Ok ()
      | Some (addr, data) ->
        Result.map_error fault_error (Board.write_ram t.board ~addr data)
    in
    (match deliver with
     | Error e -> Error (Eof_error.with_context "program delivery" e)
     | Ok () ->
       let stop = native_stop t (Eof_exec.Engine.run t.engine ~fuel:n.continue_quantum) in
       observe_stop n stop;
       Ok (stop, native_drain t n ~want_cmp))

(* --- flash (state restoration) ----------------------------------------- *)

let observe_flash n ~op ~addr ~len =
  Obs.Counter.incr n.c_flash_ops;
  if Obs.active n.n_obs then Obs.emit n.n_obs (Obs.Event.Flash_op { op; addr; len })

let flash_erase t ~addr ~len =
  match t.impl with
  | L l -> Session.flash_erase l.session ~addr ~len
  | N n ->
    (match Flash.erase_range (Board.flash t.board) ~addr ~len with
     | () ->
       observe_flash n ~op:"erase" ~addr ~len;
       Ok ()
     | exception Fault.Trap f -> Error (Eof_error.flash (Fault.to_string f)))

let flash_write t ~addr data =
  match t.impl with
  | L l -> Session.flash_write l.session ~addr data
  | N n ->
    (match Flash.program (Board.flash t.board) ~addr data with
     | () ->
       observe_flash n ~op:"write" ~addr ~len:(String.length data);
       Ok ()
     | exception Fault.Trap f -> Error (Eof_error.flash (Fault.to_string f)))

let flash_done t =
  match t.impl with
  | L l -> Session.flash_done l.session
  | N n ->
    observe_flash n ~op:"done" ~addr:0 ~len:0;
    Ok ()

(* --- copy-on-write snapshots ------------------------------------------- *)

(* Both backends charge the save/restore cost model to the board clock
   (see Snapshot), so CPU-time digests stay backend-invariant; the link
   backend additionally pays one small exchange of transport time. *)

let has_snapshot t = t.snapshot_armed

let snapshot_save t =
  let result =
    match t.impl with
    | L l -> Session.snapshot_save l.session
    | N n ->
      let snap = Board.snapshot t.board in
      n.n_snapshot <- Some snap;
      Ok (Snapshot.pages snap)
  in
  match result with
  | Ok pages ->
    t.snapshot_armed <- true;
    let bus = obs t in
    Obs.Counter.incr (Obs.Counter.make bus "snapshot.saves");
    if Obs.active bus then Obs.emit bus (Obs.Event.Snapshot_save { pages });
    Ok pages
  | Error _ as e -> e

let snapshot_restore t =
  let result =
    match t.impl with
    | L l -> Session.snapshot_restore l.session
    | N n ->
      (match n.n_snapshot with
       | None ->
         Error
           (Eof_error.with_context "snapshot restore"
              (Eof_error.config "no snapshot saved on this machine"))
       | Some snap -> Ok (Board.restore_snapshot t.board snap))
  in
  match result with
  | Ok dirty ->
    let bus = obs t in
    Obs.Counter.incr (Obs.Counter.make bus "snapshot.restores");
    Obs.Counter.add (Obs.Counter.make bus "snapshot.pages_copied") dirty;
    if Obs.active bus then Obs.emit bus (Obs.Event.Snapshot_restore { dirty });
    Ok dirty
  | Error _ as e -> e
