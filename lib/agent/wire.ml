open Eof_hw

type arg = W_int of int64 | W_str of string | W_res of int

type call = { api_index : int; args : arg list }

type program = call list

let magic = 0x454F4650l (* "EOFP" read as a big-endian word *)

let results_magic = 0x45524553l (* "ERES" *)

let max_calls = 64

let max_args = 8

let max_str = 1024

let tag_int = 0

let tag_str = 1

let tag_res = 2

(* --- encoding (host side) ------------------------------------------- *)

let put_u16 ~endianness buf v =
  let lo = v land 0xFF and hi = (v lsr 8) land 0xFF in
  match endianness with
  | Arch.Little ->
    Buffer.add_char buf (Char.chr lo);
    Buffer.add_char buf (Char.chr hi)
  | Arch.Big ->
    Buffer.add_char buf (Char.chr hi);
    Buffer.add_char buf (Char.chr lo)

let put_u64 ~endianness buf v =
  match endianness with
  | Arch.Little -> Buffer.add_int64_le buf v
  | Arch.Big -> Buffer.add_int64_be buf v

let validate program =
  if List.length program > max_calls then Error "too many calls"
  else
    let check_call i call =
      if call.api_index < 0 || call.api_index > 0xFFFF then
        Error (Printf.sprintf "call %d: api index out of range" i)
      else if List.length call.args > max_args then
        Error (Printf.sprintf "call %d: too many arguments" i)
      else
        List.fold_left
          (fun acc arg ->
            match (acc, arg) with
            | (Error _ as e), _ -> e
            | Ok (), W_str s when String.length s > max_str ->
              Error (Printf.sprintf "call %d: string argument too long" i)
            | Ok (), W_res k when k < 0 || k >= i ->
              Error (Printf.sprintf "call %d: resource reference %d not a prior call" i k)
            | Ok (), _ -> Ok ())
          (Ok ()) call.args
    in
    let rec go i = function
      | [] -> Ok ()
      | call :: rest -> (match check_call i call with Ok () -> go (i + 1) rest | e -> e)
    in
    go 0 program

(* Appends to a caller-owned (typically reused) buffer: the per-payload
   hot path encodes thousands of programs, and letting the campaign keep
   one pre-sized buffer removes the per-call [Buffer.create] churn the
   same way [decode_*_into] removed it on the drain side. *)
let encode_into ~endianness buf program =
  match validate program with
  | Error _ as e -> e
  | Ok () ->
    put_u16 ~endianness buf 1 (* version *);
    put_u16 ~endianness buf (List.length program);
    List.iter
      (fun call ->
        put_u16 ~endianness buf call.api_index;
        Buffer.add_char buf (Char.chr (List.length call.args));
        Buffer.add_char buf '\000';
        List.iter
          (fun arg ->
            match arg with
            | W_int v ->
              Buffer.add_char buf (Char.chr tag_int);
              put_u64 ~endianness buf v
            | W_str s ->
              Buffer.add_char buf (Char.chr tag_str);
              put_u16 ~endianness buf (String.length s);
              Buffer.add_string buf s
            | W_res k ->
              Buffer.add_char buf (Char.chr tag_res);
              put_u16 ~endianness buf k)
          call.args)
      program;
    Ok ()

let encode ~endianness program =
  let buf = Buffer.create 256 in
  match encode_into ~endianness buf program with
  | Error _ as e -> e
  | Ok () -> Ok (Buffer.contents buf)

(* --- decoding over an abstract byte source --------------------------- *)

type cursor = { read_u8 : int -> int; len : int; mutable pos : int }

exception Decode_fail of string

let need cur n =
  if cur.pos + n > cur.len then raise (Decode_fail "truncated program")

let u8 cur =
  need cur 1;
  let v = cur.read_u8 cur.pos in
  cur.pos <- cur.pos + 1;
  v

let u16 ~endianness cur =
  let a = u8 cur in
  let b = u8 cur in
  match endianness with Arch.Little -> a lor (b lsl 8) | Arch.Big -> (a lsl 8) lor b

let u64 ~endianness cur =
  let acc = ref 0L in
  (match endianness with
   | Arch.Little ->
     for i = 0 to 7 do
       acc := Int64.logor !acc (Int64.shift_left (Int64.of_int (u8 cur)) (8 * i))
     done
   | Arch.Big ->
     for _ = 0 to 7 do
       acc := Int64.logor (Int64.shift_left !acc 8) (Int64.of_int (u8 cur))
     done);
  !acc

let decode_cursor ~endianness cur =
  try
    let version = u16 ~endianness cur in
    if version <> 1 then Error (Printf.sprintf "unsupported program version %d" version)
    else begin
      let count = u16 ~endianness cur in
      if count > max_calls then Error "too many calls"
      else begin
        let calls = ref [] in
        for i = 0 to count - 1 do
          let api_index = u16 ~endianness cur in
          let argc = u8 cur in
          let _pad = u8 cur in
          if argc > max_args then raise (Decode_fail "too many arguments");
          let args = ref [] in
          for _ = 1 to argc do
            let tag = u8 cur in
            let arg =
              if tag = tag_int then W_int (u64 ~endianness cur)
              else if tag = tag_str then begin
                let n = u16 ~endianness cur in
                if n > max_str then raise (Decode_fail "string too long");
                let b = Bytes.create n in
                for j = 0 to n - 1 do
                  Bytes.set b j (Char.chr (u8 cur))
                done;
                W_str (Bytes.unsafe_to_string b)
              end
              else if tag = tag_res then begin
                let k = u16 ~endianness cur in
                if k >= i then raise (Decode_fail "forward resource reference");
                W_res k
              end
              else raise (Decode_fail (Printf.sprintf "bad argument tag %d" tag))
            in
            args := arg :: !args
          done;
          calls := { api_index; args = List.rev !args } :: !calls
        done;
        Ok (List.rev !calls)
      end
    end
  with Decode_fail msg -> Error msg

let decode ~endianness s =
  decode_cursor ~endianness
    { read_u8 = (fun i -> Char.code s.[i]); len = String.length s; pos = 0 }

let header_bytes = 8

let decode_from_ram ~mem ~endianness ~base =
  let m = Memory.read_u32 mem base in
  if not (Int32.equal m magic) then Error "no program magic in mailbox"
  else begin
    let len = Int32.to_int (Memory.read_u32 mem (base + 4)) in
    if len < 0 || len > 0x4000 then Error "implausible program length"
    else
      decode_cursor ~endianness
        { read_u8 = (fun i -> Memory.read_u8 mem (base + header_bytes + i)); len; pos = 0 }
  end

let mailbox_bytes_for program =
  match encode ~endianness:Arch.Little program with
  | Ok s -> header_bytes + String.length s
  | Error _ -> header_bytes

let write_to_ram ~mem ~endianness ~base ~limit program =
  match encode ~endianness program with
  | Error _ as e -> e
  | Ok payload ->
    if header_bytes + String.length payload > limit then Error "program exceeds mailbox"
    else begin
      Memory.write_u32 mem base magic;
      Memory.write_u32 mem (base + 4) (Int32.of_int (String.length payload));
      Memory.write_bytes mem ~addr:(base + header_bytes) (Bytes.of_string payload);
      Ok ()
    end

module Results = struct
  type t = { executed : int; statuses : int32 list }

  let byte_size n = 8 + (4 * n)

  let write ~mem ~endianness ~base t =
    ignore endianness;
    Memory.write_u32 mem base results_magic;
    Memory.write_u32 mem (base + 4) (Int32.of_int t.executed);
    List.iteri (fun i s -> Memory.write_u32 mem (base + 8 + (4 * i)) s) t.statuses

  let read ~raw ~endianness =
    if String.length raw < 8 then Error "results too short"
    else begin
      let b = Bytes.unsafe_of_string raw in
      let word off =
        match endianness with
        | Arch.Little -> Bytes.get_int32_le b off
        | Arch.Big -> Bytes.get_int32_be b off
      in
      if not (Int32.equal (word 0) results_magic) then Error "no results magic"
      else begin
        let executed = Int32.to_int (word 4) in
        if executed < 0 || 8 + (4 * executed) > String.length raw then
          Error "results length mismatch"
        else
          Ok
            {
              executed;
              statuses = List.init executed (fun i -> word (8 + (4 * i)));
            }
      end
    end
end

let pp_arg fmt = function
  | W_int v -> Format.fprintf fmt "%Ld" v
  | W_str s -> Format.fprintf fmt "%S" s
  | W_res k -> Format.fprintf fmt "r%d" k

let pp_program fmt program =
  List.iteri
    (fun i call ->
      Format.fprintf fmt "%d: api#%d(%a)@." i call.api_index
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           pp_arg)
        call.args)
    program
