open Eof_os

(** One fully-wired target: board + engine running the agent, behind an
    OpenOCD server and a fault-injectable transport, exposed to the host
    only as a {!Eof_debug.Session}. This is the "plug the probe in"
    step. *)

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  ?continue_quantum:int ->
  ?transport:Eof_debug.Transport.t ->
  ?inject:Eof_debug.Inject.config ->
  Osbuild.t ->
  (t, Eof_util.Eof_error.t) result
(** Boots nothing yet — the first [continue] starts the agent. Fails if
    the RSP handshake over the transport fails.

    When [obs] is given it is threaded into the transport and session
    (unless a pre-built [transport] is supplied), and its clock is bound
    to this machine's {!virtual_elapsed_s} — events are timestamped in
    virtual time, making traces deterministic.

    [inject] attaches a deterministic link-fault injector to the
    transport (whether supplied or created here); omitted means a clean
    link. *)

val create_fleet :
  ?obs:Eof_obs.Obs.t ->
  ?continue_quantum:int ->
  ?inject_for:(int -> Eof_debug.Inject.config option) ->
  boards:int ->
  (int -> Osbuild.t) ->
  ((Osbuild.t * t) array, Eof_util.Eof_error.t) result
(** Construct [boards] fully independent targets from a per-board build
    factory: each gets its own board, flashed image, OpenOCD-style
    server, probe transport and session — nothing is shared, exactly as
    N physical dev boards on N probes share nothing. Boards are built
    sequentially (factories need not be thread-safe); the instances may
    then be driven from separate domains.

    [inject_for i] supplies board [i]'s fault schedule (each board gets
    its own independently seeded injector, as each physical probe
    glitches independently). *)

val build : t -> Osbuild.t

val session : t -> Eof_debug.Session.t

val transport : t -> Eof_debug.Transport.t

val server : t -> Eof_debug.Openocd.t
(** Exposed for tests and the emulation-based baselines that read board
    state directly (Tardis-style shared memory). Hardware-mode fuzzing
    code must go through {!session} only. *)

val virtual_elapsed_s : t -> float
(** Virtual wall time: board CPU time plus debug-link latency. This is
    the clock campaign budgets are measured against. *)
