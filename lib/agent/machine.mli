open Eof_os

(** One fully-wired target behind one of two execution backends.

    {b Link} is the on-hardware path: board + engine running the agent,
    behind an OpenOCD-style server and a fault-injectable transport,
    driven over a simulated GDB RSP session. Every operation costs
    modelled link latency and can fail like a real probe.

    {b Native} is the transplant path (EmbedFuzz-style): the same board,
    engine and agent run in-process with no RSP framing and no
    transport. Operations are direct function calls into the engine and
    board memory, virtual time is charged from board CPU cost only, and
    the only failures left are the target's own. The debug-link backend
    stays the oracle: a differential campaign run on both backends must
    produce identical digests (see {!Eof_core.Diff}).

    The campaign and farm layers drive either backend through the
    backend-neutral operations below; nothing above this module needs to
    know which one is plugged in. *)

type backend = Link | Native

val backend_name : backend -> string

val backend_of_name : string -> (backend, string) result
(** ["link"] or ["native"] (case-insensitive). *)

(** Stop classification, shared vocabulary with the debug session (the
    native backend maps engine stop reasons onto the same constructors
    the RSP stop decoder produces). *)
type stop = Eof_debug.Session.stop =
  | Stopped_breakpoint of int
  | Stopped_quantum of int
  | Stopped_fault of int
  | Target_exited

(** One drained batch of target-side evidence: raw coverage records, raw
    cmp-ring bytes and UART output, exactly as the link's fused vBatch
    drain returns them. The native backend fills the same shape by
    direct memory reads so the campaign's decode path is shared
    bit-for-bit between backends. *)
type drained = {
  n_records : int;
  records_raw : string;
  n_cmp : int;
  cmp_raw : string;
  log : string;
}

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  ?continue_quantum:int ->
  ?transport:Eof_debug.Transport.t ->
  ?inject:Eof_debug.Inject.config ->
  Osbuild.t ->
  (t, Eof_util.Eof_error.t) result
(** The debug-link backend. Boots nothing yet — the first [continue]
    starts the agent. Fails if the RSP handshake over the transport
    fails.

    When [obs] is given it is threaded into the transport and session
    (unless a pre-built [transport] is supplied), and its clock is bound
    to this machine's {!virtual_elapsed_s} — events are timestamped in
    virtual time, making traces deterministic.

    [inject] attaches a deterministic link-fault injector to the
    transport (whether supplied or created here); omitted means a clean
    link. *)

val create_native :
  ?obs:Eof_obs.Obs.t ->
  ?continue_quantum:int ->
  Osbuild.t ->
  (t, Eof_util.Eof_error.t) result
(** The native transplant backend: agent + personality in-process, no
    server, no transport, no session. [continue_quantum] bounds each
    {!continue_} in instrumentation sites exactly as the link backend's
    server does, so stop schedules match. There is no fault injector to
    attach — link faults cannot exist off the link.

    With [obs], the bus clock is bound to board CPU time only (the
    native {!virtual_elapsed_s}), preserving the virtual-clock
    determinism guarantee without any transport term. *)

val create_fleet :
  ?obs:Eof_obs.Obs.t ->
  ?continue_quantum:int ->
  ?inject_for:(int -> Eof_debug.Inject.config option) ->
  ?backend:backend ->
  boards:int ->
  (int -> Osbuild.t) ->
  ((Osbuild.t * t) array, Eof_util.Eof_error.t) result
(** Construct [boards] fully independent targets from a per-board build
    factory: each gets its own board, flashed image and backend stack —
    nothing is shared, exactly as N physical dev boards on N probes
    share nothing. Boards are built sequentially (factories need not be
    thread-safe); the instances may then be driven from separate
    domains.

    [backend] (default {!Link}) selects the stack per board.
    [inject_for i] supplies board [i]'s fault schedule (each board gets
    its own independently seeded injector, as each physical probe
    glitches independently); supplying one for a {!Native} board is a
    [Config] error — faults are link-only. *)

val backend : t -> backend

val build : t -> Osbuild.t

val obs : t -> Eof_obs.Obs.t
(** The bus this machine emits on (an inert private bus when none was
    supplied at creation). *)

val session : t -> Eof_debug.Session.t
(** Link backend only — the raw RSP session, for baselines and bench
    code that measure the link itself.
    @raise Invalid_argument on a native machine. *)

val transport : t -> Eof_debug.Transport.t
(** Link backend only. @raise Invalid_argument on a native machine. *)

val server : t -> Eof_debug.Openocd.t
(** Link backend only; exposed for tests and the emulation-based
    baselines that read board state directly (Tardis-style shared
    memory). @raise Invalid_argument on a native machine. *)

val virtual_elapsed_s : t -> float
(** Virtual wall time — the clock campaign budgets are measured
    against. Link: board CPU time plus debug-link latency. Native:
    board CPU time only (there is no link to charge). *)

val cpu_elapsed_s : t -> float
(** Target CPU time only, excluding any link latency. Identical on
    both backends for the same payload schedule, so schedulers that
    must interleave boards backend-invariantly (the farm's cooperative
    scheduler, hence the differential farm oracle) key on this rather
    than on {!virtual_elapsed_s}. *)

(** {2 Backend-neutral target operations}

    Each dispatches to the RSP session (link) or to the engine/board
    directly (native). Result types match the session's so the campaign
    code is backend-blind; on the native backend the link-failure arms
    are simply unreachable. *)

val continue_ : t -> (stop, Eof_util.Eof_error.t) result
(** Resume for one quantum. Native: [Engine.run ~fuel:continue_quantum]
    with the stop mapped exactly as the probe server maps it. *)

val continue_and_drain :
  ?write:int * string ->
  t ->
  want_cmp:bool ->
  (stop * drained, Eof_util.Eof_error.t) result
(** Native backend's hot path: deliver the optional staged mailbox
    image, resume one quantum, then drain coverage records, the cmp
    ring (when [want_cmp]) and UART by direct memory access —
    mirroring the link's fused [vBatch] continue+drain semantics
    (clamp to capacity, reset the target-side counter) so the byte
    stream entering the campaign's decoders is identical.

    On the link backend this is an error: batched link drains go
    through {!Eof_debug.Covlink} (which owns the vBatch framing), and
    the campaign selects that path instead. *)

val read_u32 : t -> addr:int -> (int32, Eof_util.Eof_error.t) result

val write_u32 : t -> addr:int -> int32 -> (unit, Eof_util.Eof_error.t) result

val read_mem : t -> addr:int -> len:int -> (string, Eof_util.Eof_error.t) result

val write_mem : t -> addr:int -> string -> (unit, Eof_util.Eof_error.t) result

val set_breakpoint : t -> int -> (unit, Eof_util.Eof_error.t) result

val read_pc : t -> (int, Eof_util.Eof_error.t) result

val drain_uart : t -> (string, Eof_util.Eof_error.t) result

val last_fault : t -> (string, Eof_util.Eof_error.t) result
(** Empty string when no fault is latched. *)

val reset_target : t -> (unit, Eof_util.Eof_error.t) result
(** Board reset + engine re-arm (native), or the RSP reset monitor
    command (link). Emits a [Reset_board] event either way. *)

val resync : t -> (unit, Eof_util.Eof_error.t) result
(** Link: flush the decoder and confirm the stub answers. Native: a
    no-op success — there is no link to desynchronize. *)

val inject_gpio : t -> pin:int -> level:bool -> (unit, Eof_util.Eof_error.t) result

val supports_batch : t -> bool
(** Whether the campaign may fuse drains through {!Eof_debug.Covlink}:
    the link stub's [vBatch+] capability. Always [false] on native —
    the native backend has its own fused path
    ({!continue_and_drain}). *)

val flash_erase : t -> addr:int -> len:int -> (unit, Eof_util.Eof_error.t) result

val flash_write : t -> addr:int -> string -> (unit, Eof_util.Eof_error.t) result

val flash_done : t -> (unit, Eof_util.Eof_error.t) result

(** {2 Copy-on-write snapshots}

    The O(dirty pages) alternative to partition reflash. Link: the
    [QSnapshot] RSP extension, with the saved pages held stub-side.
    Native: a {!Eof_hw.Snapshot} held in-process. Both charge the same
    save/restore cost model to the board clock, so CPU-time digests
    stay backend-invariant. *)

val has_snapshot : t -> bool
(** A successful {!snapshot_save} happened on this machine — the signal
    {!Eof_core.Liveness.restore} uses to take the snapshot fast path. *)

val snapshot_save : t -> (int, Eof_util.Eof_error.t) result
(** Capture a pristine snapshot of RAM + flash; returns the device
    pages covered. Emits [Snapshot_save] and bumps [snapshot.saves].
    Take it right after install, before the target runs. *)

val snapshot_restore : t -> (int, Eof_util.Eof_error.t) result
(** Copy back only pages written since the save (or previous restore);
    returns the pages copied. Emits [Snapshot_restore] and bumps
    [snapshot.restores] / [snapshot.pages_copied]. Callers follow with
    {!reset_target}, exactly like the reflash path. *)
