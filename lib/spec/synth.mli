open Eof_rtos

(** Specification synthesis — the deterministic stand-in for the paper's
    GPT-4o extraction step.

    The paper prompts an LLM with headers, unit tests and API reference
    text, then post-validates the output by parsing and type checking.
    Here the extraction source is the personality's machine-readable API
    table (our equivalent of the headers), and the identical
    post-validation gate runs on the emitted text: synthesize ->
    {!Parser.parse} -> {!Check.validate}. Only validated specifications
    reach the fuzzer, exactly as in the paper's pipeline. *)

val of_api : Api.table -> Ast.t
(** Direct structural translation. *)

val syzlang_of_api : Api.table -> string
(** The emitted specification text. *)

val validated_of_api : Api.table -> (Ast.t, string) result
(** The full pipeline: emit text, re-parse it, validate it. This is the
    entry point campaigns use; a personality whose API table cannot
    round-trip through the language is rejected here.

    Memoized on the synthesized text: repeated inits over the same
    personality (every campaign, every farm board) share one parsed,
    validated — and immutable — [Ast.t] instead of re-paying the parse
    on each payload-path setup. Thread-safe. *)

val index_map : Ast.t -> Api.table -> (Ast.call * int) list
(** Pair each spec call with its API-table index (what the wire format's
    [api_index] means). Calls missing from the table are dropped. *)
