type ty =
  | Ty_int of { min : int64; max : int64 }
  | Ty_flags of (string * int64) list
  | Ty_str of { max_len : int }
  | Ty_buf of { max_len : int }
  | Ty_ptr of { base : int; size : int; null_ok : bool }
  | Ty_res of string

type call = {
  name : string;
  args : (string * ty) list;
  ret : string option;
  weight : int;
  doc : string;
}

type t = { os : string; resources : string list; calls : call list }

let is_pseudo call =
  String.length call.name >= 4 && String.sub call.name 0 4 = "syz_"

let find_call t name = List.find_opt (fun c -> c.name = name) t.calls

let producers t kind = List.filter (fun c -> c.ret = Some kind) t.calls

let consumers t kind =
  List.filter (fun c -> List.exists (fun (_, ty) -> ty = Ty_res kind) c.args) t.calls

let pp_ty fmt = function
  | Ty_int { min; max } -> Format.fprintf fmt "int[%Ld:%Ld]" min max
  | Ty_flags flags ->
    Format.fprintf fmt "flags[%s]"
      (String.concat ", " (List.map (fun (n, v) -> Printf.sprintf "%s=%Ld" n v) flags))
  | Ty_str { max_len } -> Format.fprintf fmt "string[%d]" max_len
  | Ty_buf { max_len } -> Format.fprintf fmt "buffer[%d]" max_len
  | Ty_ptr { base; size; null_ok } ->
    Format.fprintf fmt "ptr[0x%x:0x%x%s]" base (base + size) (if null_ok then ", null" else "")
  | Ty_res kind -> Format.fprintf fmt "%s" kind

let ty_to_string ty = Format.asprintf "%a" pp_ty ty

let to_syzlang t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# API specification for %s\n" t.os);
  Buffer.add_string buf (Printf.sprintf "os %s\n\n" t.os);
  List.iter (fun r -> Buffer.add_string buf (Printf.sprintf "resource %s\n" r)) t.resources;
  if t.resources <> [] then Buffer.add_char buf '\n';
  List.iter
    (fun call ->
      if call.doc <> "" then Buffer.add_string buf (Printf.sprintf "# %s\n" call.doc);
      let args =
        String.concat ", "
          (List.map (fun (n, ty) -> Printf.sprintf "%s %s" n (ty_to_string ty)) call.args)
      in
      let ret = match call.ret with Some r -> " " ^ r | None -> "" in
      let weight = if call.weight <> 1 then Printf.sprintf " @weight=%d" call.weight else "" in
      Buffer.add_string buf (Printf.sprintf "%s(%s)%s%s\n" call.name args ret weight))
    t.calls;
  Buffer.contents buf

(* Structural shape of a type with every parameter erased — ranges,
   lengths, pointer windows and resource kinds all dropped. Two calls
   whose argument shapes and return-resource-ness agree are candidates
   for cross-personality transplantation: the shape says the argument
   vector can be re-fitted, the (erased) parameters say how. *)
let shape_of_ty = function
  | Ty_int _ -> "int"
  | Ty_flags _ -> "flags"
  | Ty_str _ -> "str"
  | Ty_buf _ -> "buf"
  | Ty_ptr _ -> "ptr"
  | Ty_res _ -> "res"

let same_shape a b = String.equal (shape_of_ty a) (shape_of_ty b)

(* The resource signature "match calls by" during transplantation:
   argument shapes in order, plus whether the call produces a
   resource. *)
let call_shape c =
  Printf.sprintf "(%s)%s"
    (String.concat "," (List.map (fun (_, ty) -> shape_of_ty ty) c.args))
    (match c.ret with Some _ -> "->res" | None -> "")

let equal_ty a b =
  match (a, b) with
  | Ty_int x, Ty_int y -> x.min = y.min && x.max = y.max
  | Ty_flags x, Ty_flags y -> x = y
  | Ty_str x, Ty_str y -> x.max_len = y.max_len
  | Ty_buf x, Ty_buf y -> x.max_len = y.max_len
  | Ty_ptr x, Ty_ptr y -> x.base = y.base && x.size = y.size && x.null_ok = y.null_ok
  | Ty_res x, Ty_res y -> String.equal x y
  | (Ty_int _ | Ty_flags _ | Ty_str _ | Ty_buf _ | Ty_ptr _ | Ty_res _), _ -> false

let equal_call a b =
  String.equal a.name b.name
  && a.ret = b.ret
  && a.weight = b.weight
  && List.length a.args = List.length b.args
  && List.for_all2
       (fun (n1, t1) (n2, t2) -> String.equal n1 n2 && equal_ty t1 t2)
       a.args b.args

let equal a b =
  String.equal a.os b.os
  && List.sort compare a.resources = List.sort compare b.resources
  && List.length a.calls = List.length b.calls
  && List.for_all2 equal_call a.calls b.calls
