open Eof_rtos

let ty_of_arg_type = function
  | Api.A_int { min; max } -> Ast.Ty_int { min; max }
  | Api.A_flags flags -> Ast.Ty_flags flags
  | Api.A_str { max_len } -> Ast.Ty_str { max_len }
  | Api.A_buf { max_len } -> Ast.Ty_buf { max_len }
  | Api.A_ptr { base; size; null_ok } -> Ast.Ty_ptr { base; size; null_ok }
  | Api.A_res kind -> Ast.Ty_res kind

let of_api (table : Api.table) =
  let calls =
    List.map
      (fun (e : Api.entry) ->
        {
          Ast.name = e.Api.name;
          args = List.map (fun (n, ty) -> (n, ty_of_arg_type ty)) e.Api.args;
          ret = (match e.Api.ret with `Resource k -> Some k | `Status -> None);
          weight = e.Api.weight;
          doc = e.Api.doc;
        })
      table.Api.entries
  in
  { Ast.os = table.Api.os; resources = Api.resource_kinds table; calls }

let syzlang_of_api table = Ast.to_syzlang (of_api table)

(* Parse + validate, memoized on the synthesized text. Every campaign
   over the same OS personality re-derives the identical spec (and a
   farm does so once per board), so the ~60 µs parse is paid once per
   distinct personality instead of once per init. Keying on the text —
   not the table — is what makes the cache safe: any table change
   changes the text. The result [Ast.t] is immutable, so sharing one
   value across campaigns is sound; the mutex covers farm builds that
   may race from multiple domains. *)
(* [Stdlib.Mutex], not the RTOS personality's kernel object of the same
   name brought in by [open Eof_rtos]. *)
let memo_lock = Stdlib.Mutex.create ()

let memo : (string, (Ast.t, string) result) Hashtbl.t = Hashtbl.create 8

let validated_of_text text =
  match Parser.parse text with
  | Error e -> Error (Printf.sprintf "synthesized spec failed to parse: %s" e)
  | Ok spec ->
    (match Check.validate spec with
     | Ok spec -> Ok spec
     | Error errs ->
       Error
         (Printf.sprintf "synthesized spec failed validation: %s"
            (String.concat "; " (List.map Check.error_to_string errs))))

let validated_of_api table =
  let text = syzlang_of_api table in
  Stdlib.Mutex.protect memo_lock (fun () ->
      match Hashtbl.find_opt memo text with
      | Some r -> r
      | None ->
        if Hashtbl.length memo >= 32 then Hashtbl.reset memo;
        let r = validated_of_text text in
        Hashtbl.replace memo text r;
        r)

let index_map (spec : Ast.t) (table : Api.table) =
  let indexed = List.mapi (fun i (e : Api.entry) -> (e.Api.name, i)) table.Api.entries in
  List.filter_map
    (fun (call : Ast.call) ->
      match List.assoc_opt call.Ast.name indexed with
      | Some i -> Some (call, i)
      | None -> None)
    spec.Ast.calls
