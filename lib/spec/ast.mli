(** Abstract syntax of the API-specification language.

    A dialect of Syzkaller's Syzlang, restricted to what embedded OS
    APIs need: typed scalar arguments with value constraints, named flag
    sets, bounded strings/buffers, and resources produced by one call
    and consumed by others. Pseudo-syscalls ([syz_*]) describe composite
    operations the agent implements as a sequence. *)

type ty =
  | Ty_int of { min : int64; max : int64 }
  | Ty_flags of (string * int64) list
  | Ty_str of { max_len : int }
  | Ty_buf of { max_len : int }
  | Ty_ptr of { base : int; size : int; null_ok : bool }
  | Ty_res of string

type call = {
  name : string;
  args : (string * ty) list;
  ret : string option;  (** resource kind produced *)
  weight : int;
  doc : string;
}

type t = { os : string; resources : string list; calls : call list }

val is_pseudo : call -> bool
(** [syz_]-prefixed calls. *)

val find_call : t -> string -> call option

val producers : t -> string -> call list

val consumers : t -> string -> call list

val to_syzlang : t -> string
(** Render as specification text (inverse of {!Parser.parse} up to
    comments and whitespace). *)

val pp_ty : Format.formatter -> ty -> unit

val same_shape : ty -> ty -> bool
(** Structural shape equality with every parameter erased (ranges,
    lengths, pointer windows, resource kinds). *)

val call_shape : call -> string
(** The call's resource signature: argument shapes in order plus
    whether it produces a resource — the matching key for
    cross-personality transplantation. *)

val equal_ty : ty -> ty -> bool

val equal : t -> t -> bool
