type t = { bits : Bytes.t; capacity : int; mutable count : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; capacity = n; count = 0 }

let capacity t = t.capacity

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Bitset: index out of range"

let mem t i =
  check t i;
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i;
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask = 0 then begin
    Bytes.unsafe_set t.bits (i lsr 3) (Char.unsafe_chr (byte lor mask));
    t.count <- t.count + 1
  end

let clear t i =
  check t i;
  let byte = Char.code (Bytes.unsafe_get t.bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  if byte land mask <> 0 then begin
    Bytes.unsafe_set t.bits (i lsr 3) (Char.unsafe_chr (byte land lnot mask));
    t.count <- t.count - 1
  end

let add t i =
  let fresh = not (mem t i) in
  if fresh then set t i;
  fresh

let count t = t.count

let reset t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0

let copy t = { bits = Bytes.copy t.bits; capacity = t.capacity; count = t.count }

let popcount_byte =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun c -> tbl.(Char.code c)

let union_into ~dst ~src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  let added = ref 0 in
  for b = 0 to Bytes.length dst.bits - 1 do
    let d = Char.code (Bytes.unsafe_get dst.bits b) in
    let s = Char.code (Bytes.unsafe_get src.bits b) in
    let merged = d lor s in
    if merged <> d then begin
      added := !added + popcount_byte (Char.unsafe_chr (merged lxor d));
      Bytes.unsafe_set dst.bits b (Char.unsafe_chr merged)
    end
  done;
  dst.count <- dst.count + !added;
  !added

let iter f t =
  for b = 0 to Bytes.length t.bits - 1 do
    let byte = Char.code (Bytes.unsafe_get t.bits b) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then begin
          let i = (b lsl 3) lor bit in
          if i < t.capacity then f i
        end
      done
  done

let diff_new ~base ~candidate =
  if base.capacity <> candidate.capacity then invalid_arg "Bitset.diff_new: capacity mismatch";
  let acc = ref [] in
  iter (fun i -> if not (mem base i) then acc := i :: !acc) candidate;
  List.rev !acc

let to_bytes t = Bytes.to_string t.bits

let of_bytes ~capacity s =
  if capacity < 0 then invalid_arg "Bitset.of_bytes";
  if String.length s <> (capacity + 7) / 8 then
    invalid_arg "Bitset.of_bytes: length does not match capacity";
  let bits = Bytes.of_string s in
  (* Mask stray bits past [capacity] in the last byte so [count] stays
     consistent with what [mem]/[iter] can observe. *)
  (if capacity land 7 <> 0 && Bytes.length bits > 0 then
     let last = Bytes.length bits - 1 in
     let mask = (1 lsl (capacity land 7)) - 1 in
     Bytes.set bits last (Char.chr (Char.code (Bytes.get bits last) land mask)));
  let count = ref 0 in
  Bytes.iter (fun c -> count := !count + popcount_byte c) bits;
  { bits; capacity; count = !count }

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc
