(** Fixed-capacity bit sets backed by [Bytes].

    Used for host-side coverage bitmaps: dense, cheap to clear, cheap to
    diff. Indices are 0-based; out-of-range indices raise
    [Invalid_argument]. *)

type t

val create : int -> t
(** [create n] is an empty set with capacity [n] bits. *)

val capacity : t -> int

val set : t -> int -> unit

val clear : t -> int -> unit

val mem : t -> int -> bool

val add : t -> int -> bool
(** [add t i] sets bit [i] and returns [true] iff it was previously
    unset (i.e. the bit is new). *)

val count : t -> int
(** Number of set bits. *)

val reset : t -> unit
(** Clear every bit. *)

val copy : t -> t

val union_into : dst:t -> src:t -> int
(** [union_into ~dst ~src] ors [src] into [dst]; returns how many bits
    were newly set in [dst]. Capacities must match. *)

val diff_new : base:t -> candidate:t -> int list
(** Bits set in [candidate] but not in [base], ascending. *)

val iter : (int -> unit) -> t -> unit
(** Iterate set bits in ascending order. *)

val to_bytes : t -> string
(** The raw backing bytes ([(capacity + 7) / 8] of them), for wire
    transfer. Little-endian bit order within each byte (bit [i] lives at
    byte [i / 8], mask [1 lsl (i mod 7)]). *)

val of_bytes : capacity:int -> string -> t
(** Rebuild a set from {!to_bytes} output. Raises [Invalid_argument] if
    the string length does not match the capacity; stray bits past
    [capacity] in the final byte are masked off. *)

val to_list : t -> int list
