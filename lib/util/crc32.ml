(* The CRC register is kept as an unboxed [int] (the polynomial is
   32-bit, so it fits native ints on every platform OCaml 5 supports);
   [int32] appears only at the public boundary. The 256-entry table is
   built eagerly at module init — it costs ~2k shift/xor ops once,
   versus a [Lazy.force] branch per byte on the 4 KiB-sector hot path
   (crc32_4k in the micro-bench). *)

let table =
  let t = Array.make 256 0 in
  for n = 0 to 255 do
    let c = ref n in
    for _ = 0 to 7 do
      if !c land 1 <> 0 then c := 0xEDB88320 lxor (!c lsr 1)
      else c := !c lsr 1
    done;
    t.(n) <- !c
  done;
  t

let mask32 = 0xFFFFFFFF

let start () = 0xFFFFFFFFl

let update crc ch =
  let crc = Int32.to_int crc land mask32 in
  let crc = table.((crc lxor Char.code ch) land 0xFF) lxor (crc lsr 8) in
  Int32.of_int crc

let finish crc = Int32.logxor crc 0xFFFFFFFFl

let digest_bytes b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.digest_bytes: range";
  let crc = ref mask32 in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
           lxor (!crc lsr 8)
  done;
  Int32.of_int (!crc lxor mask32)

let digest_string s =
  digest_bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
