(** The unified error pipeline: one typed failure value threaded from
    the transport up through session, machine, liveness, campaign and
    farm. Strings appear only at the reporting boundary
    ({!to_string}); everything below it carries a {!kind} plus context
    breadcrumbs, so "the link died" arrives with {e where} ("board 1:
    reflash partition app: after 3 attempts") still attached. *)

(** What went wrong, classified by the layer that can do something
    about it. *)
type kind =
  | Link_timeout  (** the exchange produced no reply at all *)
  | Link_desync of string
      (** bytes arrived but no valid frame could be decoded
          (truncation, NAK storms, post-reset garbage) *)
  | Protocol of string  (** a well-framed but malformed/unexpected reply *)
  | Remote of int  (** an explicit [Enn] from the stub *)
  | Flash of string  (** flash programming / restore failed *)
  | Missing_blob of string
      (** the partition table names a partition the image has no blob for *)
  | Agent of string  (** wire encoding / mailbox / target-side agent *)
  | Config of string  (** invalid configuration or spec *)
  | Board_dead of string
      (** the recovery escalation ladder was exhausted; the payload
          names the last rung attempted *)

type t = {
  kind : kind;
  ctx : string list;  (** breadcrumbs, innermost (most recent) first *)
}

val make : kind -> t

(** {2 Constructors} *)

val timeout : t

val desync : string -> t

val protocol : string -> t

val remote : int -> t

val flash : string -> t

val missing_blob : string -> t

val agent : string -> t

val config : string -> t

val board_dead : string -> t

val with_context : string -> t -> t
(** Push a breadcrumb; outer layers annotate as the error bubbles up. *)

val kind : t -> kind

val context : t -> string list

val retryable : t -> bool
(** True for link-level failures ([Link_timeout], [Link_desync]) that a
    re-sent exchange can plausibly cure. [Remote]/[Protocol] errors are
    deterministic replies — retrying them only re-asks the same
    question. *)

val kind_to_string : kind -> string

val to_string : t -> string
(** The reporting boundary: breadcrumbs outermost-first, then the kind,
    e.g. ["board 1: reflash partition app: debug link timeout"]. *)

(** Budgeted, deterministic retry with virtual-clock backoff.

    Backoff waits are charged to whatever clock the caller supplies
    (the transport's virtual clock in practice), never the host wall
    clock, so a retried campaign replays bit-identically: same seed,
    same faults, same waits, same trace. *)
module Retry : sig
  type budget = {
    attempts : int;  (** total tries including the first; >= 1 *)
    base_backoff_us : float;  (** wait before the second try *)
    multiplier : float;  (** exponential growth per further try *)
    max_backoff_us : float;  (** backoff ceiling *)
  }

  val default : budget
  (** 3 attempts, 200 us doubling to a 5 ms ceiling — cheap against a
      500 ms timeout, decisive against a transient glitch. *)

  val no_retry : budget
  (** A single attempt; [run] degenerates to calling the function. *)

  val backoff_us : budget -> attempt:int -> float
  (** Deterministic wait after failed [attempt] (1-based). *)

  val run :
    budget:budget ->
    sleep_us:(float -> unit) ->
    ?on_retry:(attempt:int -> t -> unit) ->
    (unit -> ('a, t) result) ->
    ('a, t) result
  (** Run [f]; on a {!retryable} error with budget remaining, charge
      the backoff to [sleep_us], report via [on_retry] and try again.
      The final error of an exhausted budget carries an
      ["after N attempts"] breadcrumb; non-retryable errors return
      immediately and unannotated. *)
end
