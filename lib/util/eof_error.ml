type kind =
  | Link_timeout
  | Link_desync of string
  | Protocol of string
  | Remote of int
  | Flash of string
  | Missing_blob of string
  | Agent of string
  | Config of string
  | Board_dead of string

type t = { kind : kind; ctx : string list }

let make kind = { kind; ctx = [] }

let timeout = make Link_timeout

let desync msg = make (Link_desync msg)

let protocol msg = make (Protocol msg)

let remote n = make (Remote n)

let flash msg = make (Flash msg)

let missing_blob name = make (Missing_blob name)

let agent msg = make (Agent msg)

let config msg = make (Config msg)

let board_dead rung = make (Board_dead rung)

let with_context crumb t = { t with ctx = crumb :: t.ctx }

let kind t = t.kind

let context t = t.ctx

let retryable t =
  match t.kind with
  | Link_timeout | Link_desync _ -> true
  | Protocol _ | Remote _ | Flash _ | Missing_blob _ | Agent _ | Config _
  | Board_dead _ ->
    false

let kind_to_string = function
  | Link_timeout -> "debug link timeout"
  | Link_desync msg -> "debug link desync: " ^ msg
  | Protocol msg -> "protocol error: " ^ msg
  | Remote n -> Printf.sprintf "remote error E%02x" n
  | Flash msg -> "flash error: " ^ msg
  | Missing_blob name -> Printf.sprintf "image has no blob for partition %s" name
  | Agent msg -> "agent error: " ^ msg
  | Config msg -> "config error: " ^ msg
  | Board_dead rung -> Printf.sprintf "board dead (ladder exhausted at %s)" rung

let to_string t =
  match t.ctx with
  | [] -> kind_to_string t.kind
  | ctx -> String.concat ": " (List.rev ctx) ^ ": " ^ kind_to_string t.kind

module Retry = struct
  type budget = {
    attempts : int;
    base_backoff_us : float;
    multiplier : float;
    max_backoff_us : float;
  }

  let default =
    { attempts = 3; base_backoff_us = 200.; multiplier = 2.; max_backoff_us = 5_000. }

  let no_retry =
    { attempts = 1; base_backoff_us = 0.; multiplier = 1.; max_backoff_us = 0. }

  let backoff_us budget ~attempt =
    let raw =
      budget.base_backoff_us *. (budget.multiplier ** float_of_int (attempt - 1))
    in
    Float.min raw budget.max_backoff_us

  let run ~budget ~sleep_us ?on_retry f =
    if budget.attempts < 1 then invalid_arg "Retry.run: attempts must be >= 1";
    let rec go attempt =
      match f () with
      | Ok _ as ok -> ok
      | Error e when retryable e && attempt < budget.attempts ->
        sleep_us (backoff_us budget ~attempt);
        (match on_retry with Some h -> h ~attempt e | None -> ());
        go (attempt + 1)
      | Error e when attempt > 1 ->
        Error (with_context (Printf.sprintf "after %d attempts" attempt) e)
      | Error _ as err -> err
    in
    go 1
end
