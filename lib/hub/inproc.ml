module Obs = Eof_obs.Obs
module Crash = Eof_core.Crash

type tenant_result = {
  tenant : string;
  campaign : int;
  digest : string;
  executed : int;
  coverage : int;
  crashes : int;
}

type outcome = {
  tenants : tenant_result list;
  fleet_digest : string;
  crashes_deduped : int;
  fleet_crashes : (Crash.t * string list) list;
  transplants : int;
  payloads : int;
  wall_s : float;
}

(* Every message round-trips through the frame codec even though both
   endpoints share an address space: the deterministic soak then
   exercises exactly the bytes the socket transport would carry. *)
let codec msg =
  match Protocol.decode (Protocol.encode msg) with
  | Ok m -> m
  | Error e ->
    invalid_arg
      (Printf.sprintf "inproc codec round-trip failed on %s: %s"
         (Protocol.kind_name msg) (Protocol.error_to_string e))

let run ?obs ?corpus_sync ~farms (tenants : Tenant.config list)
    ~(resolve : string -> (Worker.target, string) result) =
  if tenants = [] then Error "inproc: no tenants submitted"
  else begin
    let t0 = Unix.gettimeofday () in
    let obs = match obs with Some o -> o | None -> Obs.create () in
    let hub_resolve os =
      Result.map
        (fun (tg : Worker.target) ->
          { Hub.spec = tg.Worker.spec; table = tg.Worker.table })
        (resolve os)
    in
    let hub = Hub.create ~obs ?corpus_sync ~farms ~resolve:hub_resolve () in
    let workers =
      Array.init farms (fun id -> Worker.create ~obs ~id ~resolve ())
    in
    let farm_q = Array.init farms (fun _ -> Queue.create ()) in
    let rejects = ref [] in
    let dispatch actions =
      List.iter
        (function
          | Hub.To_farm (f, msg) -> Queue.add (codec msg) farm_q.(f)
          | Hub.To_client (_, Protocol.Reject { tenant; reason }) ->
            rejects := Printf.sprintf "%s: %s" tenant reason :: !rejects
          | Hub.To_client (_, _) -> ())
        actions
    in
    (* Drain all pending hub → farm traffic, feeding farm replies back
       into the hub, until the fleet is quiescent. Farms are visited in
       id order and queues are FIFO, so the drain order is a pure
       function of the message history — no clocks, no races. *)
    let rec drain () =
      let progressed = ref false in
      Array.iteri
        (fun f q ->
          while not (Queue.is_empty q) do
            progressed := true;
            let msg = Queue.take q in
            let replies = Worker.handle workers.(f) msg in
            List.iter
              (fun r -> dispatch (Hub.handle_farm hub ~farm:f (codec r)))
              replies
          done)
        farm_q;
      if !progressed then drain ()
    in
    List.iteri
      (fun client config -> dispatch (Hub.handle_client hub ~client (Protocol.Submit config)))
      tenants;
    drain ();
    match !rejects with
    | r :: _ -> Error r
    | [] ->
      let stalled = ref false in
      while not (Hub.all_done hub) && not !stalled do
        (* Cooperative fleet schedule: the worker whose earliest board
           is earliest on its virtual clock runs one payload; ties go to
           the lowest worker id. The same min-CPU rule the farm applies
           to boards and the worker applies to shards, one level up. *)
        let best = ref None in
        Array.iteri
          (fun i w ->
            match Worker.next_cpu_s w with
            | None -> ()
            | Some v ->
              (match !best with
              | Some (_, bv) when bv <= v -> ()
              | _ -> best := Some (i, v)))
          workers;
        match !best with
        | None -> stalled := true
        | Some (i, _) ->
          List.iter
            (fun r -> dispatch (Hub.handle_farm hub ~farm:i (codec r)))
            (Worker.step workers.(i));
          drain ()
      done;
      if !stalled then Error "inproc: fleet stalled before completion"
      else begin
        let digests = Hub.tenant_digests hub in
        let status = Hub.status hub in
        let tenants =
          List.filter_map
            (fun (r : Protocol.status_row) ->
              List.assoc_opt r.Protocol.tenant digests
              |> Option.map (fun digest ->
                     {
                       tenant = r.Protocol.tenant;
                       campaign = r.Protocol.campaign;
                       digest;
                       executed = r.Protocol.executed;
                       coverage = r.Protocol.coverage;
                       crashes = r.Protocol.crashes;
                     }))
            status
        in
        Ok
          {
            tenants;
            fleet_digest = Hub.fleet_digest hub;
            crashes_deduped = Hub.crashes_deduped hub;
            fleet_crashes = Hub.fleet_crashes hub;
            transplants =
              Array.fold_left (fun acc w -> acc + Worker.transplanted w) 0 workers;
            payloads =
              List.fold_left
                (fun acc (r : Protocol.status_row) -> acc + r.Protocol.executed)
                0 status;
            wall_s = Unix.gettimeofday () -. t0;
          }
      end
  end

let summary o =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s\n  executed=%d coverage=%d crashes=%d\n" r.digest
           r.executed r.coverage r.crashes))
    o.tenants;
  Buffer.add_string b
    (Printf.sprintf "%s\n" o.fleet_digest);
  Buffer.add_string b
    (Printf.sprintf "fleet: payloads=%d crashes-deduped=%d transplants=%d\n"
       o.payloads o.crashes_deduped o.transplants);
  Buffer.contents b
