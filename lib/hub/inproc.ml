module Obs = Eof_obs.Obs
module Crash = Eof_core.Crash

type tenant_result = {
  tenant : string;
  campaign : int;
  digest : string;
  executed : int;
  coverage : int;
  crashes : int;
}

type outcome = {
  tenants : tenant_result list;
  fleet_digest : string;
  crashes_deduped : int;
  fleet_crashes : (Crash.t * string list) list;
  transplants : int;
  payloads : int;
  wall_s : float;
  halted : bool;
  reassignments : int;
  fenced : int;
  payloads_lost : int;
  recovery_lag : float;
  replayed_frames : int;
}

(* Every message round-trips through the frame codec even though both
   endpoints share an address space: the deterministic soak then
   exercises exactly the bytes the socket transport would carry. *)
let codec msg =
  match Protocol.decode (Protocol.encode msg) with
  | Ok m -> m
  | Error e ->
    invalid_arg
      (Printf.sprintf "inproc codec round-trip failed on %s: %s"
         (Protocol.kind_name msg) (Protocol.error_to_string e))

let run ?obs ?corpus_sync ?journal ?heartbeat_timeout ?kill ?halt_after ~farms
    (tenants : Tenant.config list)
    ~(resolve : string -> (Worker.target, string) result) =
  if tenants = [] then Error "inproc: no tenants submitted"
  else if farms < 1 then Error "inproc: farms must be >= 1"
  else begin
    let t0 = Unix.gettimeofday () in
    let obs = match obs with Some o -> o | None -> Obs.create () in
    let hub_resolve os =
      Result.map
        (fun (tg : Worker.target) ->
          { Hub.spec = tg.Worker.spec; table = tg.Worker.table })
        (resolve os)
    in
    let hub =
      Hub.create ~obs ?corpus_sync ?journal ?heartbeat_timeout
        ~resolve:hub_resolve ()
    in
    let timeout = Hub.heartbeat_timeout hub in
    let workers =
      Array.init farms (fun i ->
          Worker.create ~obs ~name:(Printf.sprintf "w%d" i) ~resolve ())
    in
    let alive = Array.make farms true in
    let worker_q = Array.init farms (fun _ -> Queue.create ()) in
    (* Scripted silent death: worker [ki] stops responding after its
       [kn]-th step — no EOF, nothing; only the heartbeat deadline on
       the fleet's virtual clock can notice, which is exactly the
       recovery path under test. *)
    let kill_worker, kill_after =
      match kill with Some (w, n) -> (w, n) | None -> (-1, -1)
    in
    let steps = Array.make farms 0 in
    (* The fleet clock: high-water mark of the scheduling key. Only ever
       advanced — a freshly reassigned shard restarts its own clock at
       zero without winding the fleet back. *)
    let vnow = ref 0. in
    let rejects = ref [] in
    (* Worker ids are assigned by the hub in hello order, so with the
       hellos below wid = array index — but route through the map
       anyway rather than assume it. *)
    let idx_of_wid = Hashtbl.create 8 in
    let rec dispatch actions =
      List.iter
        (function
          | Hub.To_worker (wid, msg) -> (
            match Hashtbl.find_opt idx_of_wid wid with
            | Some i when alive.(i) -> Queue.add (codec msg) worker_q.(i)
            | _ -> () (* a dead worker's socket is closed: best-effort drop *))
          | Hub.To_client (_, Protocol.Reject { tenant; reason }) ->
            rejects := Printf.sprintf "%s: %s" tenant reason :: !rejects
          | Hub.To_client (_, _) -> ())
        actions
    (* Drain all pending hub → worker traffic, feeding worker replies
       back into the hub, until the fleet is quiescent. Workers are
       visited in id order and queues are FIFO, so the drain order is a
       pure function of the message history — no clocks, no races. *)
    and feed i replies =
      List.iter
        (fun r ->
          dispatch
            (Hub.handle_worker hub ~now:!vnow ~worker:(Worker.id workers.(i))
               (codec r)))
        replies
    and drain () =
      let progressed = ref false in
      Array.iteri
        (fun i q ->
          while alive.(i) && not (Queue.is_empty q) do
            progressed := true;
            feed i (Worker.handle workers.(i) (Queue.take q))
          done)
        worker_q;
      if !progressed then drain ()
    in
    Array.iteri
      (fun i w ->
        match Hub.hello hub ~now:0. ~name:(Worker.name w) with
        | Error e -> invalid_arg (Printf.sprintf "inproc: %s" e)
        | Ok (wid, actions) ->
          Hashtbl.replace idx_of_wid wid i;
          dispatch actions)
      workers;
    (* A journal-resumed hub already knows some tenants (finished ones
       keep their digests; unfinished ones were reset and re-lease at
       the hellos above) — only submit the genuinely new ones. *)
    let known = Hub.tenants hub in
    List.iteri
      (fun client config ->
        if not (List.mem config.Tenant.tenant known) then
          dispatch (Hub.handle_client hub ~client (Protocol.Submit config)))
      tenants;
    drain ();
    match !rejects with
    | r :: _ -> Error r
    | [] ->
      let total_steps = ref 0 in
      let halted = ref false and stalled = ref false in
      while (not (Hub.all_done hub)) && (not !stalled) && not !halted do
        (* Cooperative fleet schedule: the worker whose earliest board
           is earliest on its virtual clock runs one payload; ties go to
           the lowest worker id. The same min-CPU rule the farm applies
           to boards and the worker applies to shards, one level up. *)
        let best = ref None in
        Array.iteri
          (fun i w ->
            if alive.(i) then
              match Worker.next_cpu_s w with
              | None -> ()
              | Some v ->
                (match !best with
                | Some (_, bv) when bv <= v -> ()
                | _ -> best := Some (i, v)))
          workers;
        match !best with
        | Some (i, v) ->
          vnow := Float.max !vnow v;
          (* Deadline scan first: a lease whose owner went silent longer
             than the timeout ago is revoked and reassigned before any
             more of the fleet's time passes. *)
          dispatch (Hub.tick hub ~now:!vnow);
          drain ();
          feed i (Worker.step workers.(i));
          (* Liveness is refreshed every step, not only at epoch
             flushes: a worker legitimately grinding through a long
             quiet stretch must not look dead. *)
          feed i [ Protocol.Worker_ping { worker = Worker.id workers.(i) } ];
          drain ();
          steps.(i) <- steps.(i) + 1;
          incr total_steps;
          if i = kill_worker && steps.(i) = kill_after then alive.(i) <- false;
          (match halt_after with
          | Some n when !total_steps >= n -> halted := true
          | _ -> ())
        | None ->
          (* Every live worker is idle but the hub still waits — the
             missing shards sit on a dead worker whose deadline has not
             yet fired. Let the fleet idle up to the deadline: advance
             the virtual clock past it and scan. Deterministic — the
             jump size depends only on the timeout. A socket worker
             pings through such a wait, so live workers ping here too:
             otherwise the jump ages survivors past the same deadline
             and the scan would bury the whole fleet. *)
          vnow := !vnow +. timeout +. 1.;
          Array.iteri
            (fun i w ->
              if alive.(i) then
                feed i [ Protocol.Worker_ping { worker = Worker.id w } ])
            workers;
          dispatch (Hub.tick hub ~now:!vnow);
          drain ();
          let runnable =
            Array.exists2
              (fun a w -> a && Worker.next_cpu_s w <> None)
              alive workers
          in
          if not runnable then stalled := true
      done;
      Hub.close hub;
      if !stalled then Error "inproc: fleet stalled before completion"
      else begin
        let digests = Hub.tenant_digests hub in
        let status = Hub.status hub in
        let tenants =
          List.filter_map
            (fun (r : Protocol.status_row) ->
              List.assoc_opt r.Protocol.tenant digests
              |> Option.map (fun digest ->
                     {
                       tenant = r.Protocol.tenant;
                       campaign = r.Protocol.campaign;
                       digest;
                       executed = r.Protocol.executed;
                       coverage = r.Protocol.coverage;
                       crashes = r.Protocol.crashes;
                     }))
            status
        in
        Ok
          {
            tenants;
            fleet_digest = Hub.fleet_digest hub;
            crashes_deduped = Hub.crashes_deduped hub;
            fleet_crashes = Hub.fleet_crashes hub;
            transplants =
              Array.fold_left (fun acc w -> acc + Worker.transplanted w) 0 workers;
            payloads =
              List.fold_left
                (fun acc (r : Protocol.status_row) -> acc + r.Protocol.executed)
                0 status;
            wall_s = Unix.gettimeofday () -. t0;
            halted = !halted;
            reassignments = Hub.reassignments hub;
            fenced = Hub.fenced hub;
            payloads_lost = Hub.payloads_lost hub;
            recovery_lag = Hub.recovery_lag hub;
            replayed_frames = Hub.replayed_frames hub;
          }
      end
  end

let summary o =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%s\n  executed=%d coverage=%d crashes=%d\n" r.digest
           r.executed r.coverage r.crashes))
    o.tenants;
  Buffer.add_string b
    (Printf.sprintf "%s\n" o.fleet_digest);
  Buffer.add_string b
    (Printf.sprintf "fleet: payloads=%d crashes-deduped=%d transplants=%d\n"
       o.payloads o.crashes_deduped o.transplants);
  Buffer.contents b
