(** Campaign sharding: how the hub splits one tenant submission across
    farms.

    The same recursive structure the farm applies to boards applies one
    level up to farms: the total payload budget splits round-robin,
    shard 0 keeps the tenant's seed (so a one-farm campaign degenerates
    to the plain farm run) and the other shards derive independent
    seed streams. *)

type assignment = {
  campaign : int;  (** hub-assigned campaign id *)
  tenant : string;
  os : string;
  shard : int;  (** 0-based among this campaign's shards *)
  shards : int;
  epoch : int;
      (** lease epoch: 1 on first assignment, bumped by the hub every
          time the shard is revoked and reassigned — farm-to-hub traffic
          carries it back, which is how stale (zombie) workers are
          fenced *)
  seed : int64;  (** this shard's derived seed *)
  iterations : int;  (** this shard's slice of the budget *)
  boards : int;
  sync_every : int;
  backend : Eof_agent.Machine.backend;
  reset_policy : Eof_core.Campaign.reset_policy;
  schedule : Eof_core.Corpus.schedule;
  gen_mode : Eof_core.Gen.mode;
}

val shard_seed : int64 -> int -> int64
(** [shard_seed base k]: [base] for shard 0, an independent derived
    stream for the rest. *)

val shard_iterations : total:int -> shards:int -> int -> int

val plan : campaign:int -> Tenant.config -> assignment list
(** One assignment per farm, in shard order, every lease at epoch 1. *)
