(** Deterministic in-process fleet: the whole hub — every worker, every
    tenant — in one OS process on one cooperative schedule.

    Determinism argument, layer by layer: each board is deterministic
    given its seed (virtual clock, seeded RNG); the cooperative farm
    interleaves boards by virtual time with fixed tie-breaks; the worker
    interleaves shards the same way; this driver interleaves workers the
    same way again, and delivers protocol traffic from FIFO queues
    drained in worker-id order. No wall clock, no thread, no socket
    enters any decision — the hub's liveness machinery runs on the
    fleet's {e virtual} clock — so two runs with the same tenant configs
    (and the same death script) produce byte-identical digests and
    byte-identical per-tenant telemetry, which CI checks with [cmp].

    Every message still round-trips through {!Protocol.encode}/
    {!Protocol.decode}, so the soak exercises the same bytes the socket
    transport carries.

    Fault drills, all deterministic:
    - [kill] scripts a silent worker death after a payload count: the
      worker stops responding (no EOF), the heartbeat deadline fires on
      the virtual clock, its leases are revoked and reassigned to
      survivors — the exact recovery path the socket transport needs.
    - [halt_after] abandons the drive mid-campaign (simulating a hub
      process kill); with [journal] set, a second {!run} on the same
      journal resumes and reaches the same fleet digest the
      uninterrupted run produces. *)

type tenant_result = {
  tenant : string;
  campaign : int;
  digest : string;  (** deterministic per-tenant campaign digest *)
  executed : int;
  coverage : int;
  crashes : int;  (** tenant-deduplicated *)
}

type outcome = {
  tenants : tenant_result list;  (** submission order, finished only *)
  fleet_digest : string;
  crashes_deduped : int;  (** fleet-wide set size *)
  fleet_crashes : (Eof_core.Crash.t * string list) list;
      (** each distinct bug with the tenants that hit it *)
  transplants : int;  (** cross-shard corpus programs admitted *)
  payloads : int;
  wall_s : float;
  halted : bool;  (** stopped by [halt_after] before completion *)
  reassignments : int;  (** shard leases moved off dead workers *)
  fenced : int;  (** stale-epoch messages dropped *)
  payloads_lost : int;  (** executed work discarded at revocations/resets *)
  recovery_lag : float;
      (** max virtual seconds of shard progress discarded *)
  replayed_frames : int;  (** journal frames replayed at startup *)
}

val run :
  ?obs:Eof_obs.Obs.t ->
  ?corpus_sync:bool ->
  ?journal:string ->
  ?heartbeat_timeout:float ->
  ?kill:int * int ->
  ?halt_after:int ->
  farms:int ->
  Tenant.config list ->
  resolve:(string -> (Worker.target, string) result) ->
  (outcome, string) result
(** Register [farms] workers, submit every tenant not already known
    from a journal replay, then drive the fleet to completion (or to
    [halt_after] total payload steps). [kill (w, n)] silences worker
    [w] after its [n]-th step. [Error] on a rejected submission or a
    genuine stall (every shard's owner dead with no survivor to take
    the lease). *)

val summary : outcome -> string
(** The digest lines plus a fleet headline — what [eof serve --inproc]
    prints, and what the CI soak [cmp]s. Deterministic: [wall_s] and
    the recovery counters are deliberately not included, so a resumed
    run's summary is comparable with an uninterrupted one. *)
