(** Deterministic in-process fleet: the whole hub — every farm, every
    tenant — in one OS process on one cooperative schedule.

    Determinism argument, layer by layer: each board is deterministic
    given its seed (virtual clock, seeded RNG); the cooperative farm
    interleaves boards by virtual time with fixed tie-breaks; the worker
    interleaves shards the same way; this driver interleaves workers the
    same way again, and delivers protocol traffic from FIFO queues
    drained in worker-id order. No wall clock, no thread, no socket
    enters any decision, so two runs with the same tenant configs
    produce byte-identical digests and byte-identical per-tenant
    telemetry — which CI checks with [cmp].

    Every message still round-trips through {!Protocol.encode}/
    {!Protocol.decode}, so the soak exercises the same bytes the socket
    transport carries. *)

type tenant_result = {
  tenant : string;
  campaign : int;
  digest : string;  (** deterministic per-tenant campaign digest *)
  executed : int;
  coverage : int;
  crashes : int;  (** tenant-deduplicated *)
}

type outcome = {
  tenants : tenant_result list;  (** submission order *)
  fleet_digest : string;
  crashes_deduped : int;  (** fleet-wide set size *)
  fleet_crashes : (Eof_core.Crash.t * string list) list;
      (** each distinct bug with the tenants that hit it *)
  transplants : int;  (** cross-shard corpus programs admitted *)
  payloads : int;
  wall_s : float;
}

val run :
  ?obs:Eof_obs.Obs.t ->
  ?corpus_sync:bool ->
  farms:int ->
  Tenant.config list ->
  resolve:(string -> (Worker.target, string) result) ->
  (outcome, string) result
(** Submit every tenant, then drive the fleet to completion. [Error] on
    a rejected submission or an (impossible by construction) stall. *)

val summary : outcome -> string
(** The digest lines plus a fleet headline — what [eof serve --inproc]
    prints, and what the CI soak [cmp]s. Deterministic: [wall_s] is
    deliberately not included. *)
