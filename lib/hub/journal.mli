(** Crash-safe hub journal: an append-only file of framed
    {!Protocol} messages.

    The hub appends every state-mutating message it accepts (the
    client's [Submit] plus the post-fencing farm traffic) and flushes
    after each frame, so the file is always a prefix of the hub's
    history — a hub process killed mid-write leaves at most one torn
    frame at the tail, which {!replay} tolerates by stopping at the
    first incomplete or corrupt frame.

    Frames are exactly the wire encoding ({!Protocol.encode}), so the
    journal needs no format of its own and inherits the protocol's CRC
    integrity check per record. *)

type t

val open_ : string -> (t, string) result
(** Open [path] for appending, creating it if absent. *)

val append : t -> Protocol.t -> unit
(** Append one frame and flush it to the OS. *)

val close : t -> unit

val replay : string -> (Protocol.t list, string) result
(** Read every complete, well-formed frame from the start of [path], in
    order. A truncated or corrupt tail ends the replay silently (the
    frames before it are returned); a missing file is an error. *)
