(** Per-tenant campaign submissions.

    A tenant is one user of the fleet: their submission names the OS
    personality to fuzz, the seed, the budget, how many farms to shard
    across and how many boards each farm runs — everything the hub needs
    to plan the campaign (see {!Shard.plan}). *)

type config = {
  tenant : string;  (** 1-64 chars of [A-Za-z0-9_-] *)
  os : string;  (** OS personality name, resolved by the hub *)
  seed : int64;
  iterations : int;  (** total payload budget across all farms *)
  boards : int;  (** boards per farm *)
  farms : int;  (** shard count: how many farms share the budget *)
  sync_every : int;  (** farm epoch period (payloads) *)
  backend : Eof_agent.Machine.backend;  (** execution backend per board *)
  reset_policy : Eof_core.Campaign.reset_policy;
      (** board reset policy for every farm in this campaign *)
  schedule : Eof_core.Corpus.schedule;
      (** seed scheduling for every board (default uniform) *)
  gen_mode : Eof_core.Gen.mode;
      (** generator engine for every board (default interp) *)
}

val default : config
(** [default]: Zephyr, seed 1, 200 iterations, 1 farm of 1 board,
    native backend. *)

val name_ok : string -> bool
(** 1-64 chars of [A-Za-z0-9_-] — the identifier rule shared by tenant
    names and worker names. *)

val validate : config -> (unit, string) result

val to_string : config -> string

val of_spec : string -> (config, string) result
(** Parse the CLI's [key=value,key=value] submission syntax over
    {!default} — keys: [name]/[tenant], [os], [seed], [iterations]/[n],
    [boards], [farms], [sync]/[sync_every], [backend],
    [reset]/[reset_policy], [schedule], [gen]/[gen_mode]. The result is
    {!validate}d. *)
