type t = { oc : out_channel }

let open_ path =
  match open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 path with
  | oc -> Ok { oc }
  | exception Sys_error msg -> Error msg

let append t msg =
  output_string t.oc (Protocol.encode msg);
  flush t.oc

let close t = close_out t.oc

(* Walk the file frame by frame. Anything short or corrupt at the tail
   is the torn write of a killed hub — stop there and keep the prefix.
   A bad frame *followed by more data* would indicate real corruption,
   but distinguishing it buys nothing: replay semantics only promise a
   prefix of history, and the CRC already localises the damage. *)
let replay path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let len = in_channel_length ic in
        let buf = really_input_string ic len in
        let rec go off acc =
          if off >= len then List.rev acc
          else
            let rest = String.sub buf off (len - off) in
            match Protocol.frame_size rest with
            | Ok (Some n) when off + n <= len -> (
              match Protocol.decode (String.sub buf off n) with
              | Ok msg -> go (off + n) (msg :: acc)
              | Error _ -> List.rev acc)
            | Ok _ | Error _ -> List.rev acc
        in
        go 0 [])
  with
  | msgs -> Ok msgs
  | exception Sys_error msg -> Error msg
