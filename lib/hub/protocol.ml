module Machine = Eof_agent.Machine
module Crash = Eof_core.Crash
module Campaign = Eof_core.Campaign

(* "EOFH" read as a big-endian word; the frame itself is little-endian
   throughout — this is a host-to-host protocol, there is no target
   byte order to match (contrast {!Eof_agent.Wire}). *)
let magic = 0x454F4648l

(* v2: tenant configs and shard assignments carry a reset-policy byte.
   v3: they additionally carry a schedule byte and a gen-mode byte, so
   the hub can dial per-tenant seed scheduling and generator engines.
   v4: workers are remote endpoints — Worker_hello/Worker_welcome
   register a farm process, Shard_revoke retracts a lease, Worker_ping/
   Heartbeat_ack carry liveness both ways, Shard_assign and all
   farm-to-hub traffic carry a lease epoch (the fencing token), and
   Status reports worker liveness next to the tenant rows. *)
let version = 4

let header_bytes = 12 (* magic u32, version u16, kind u8, reserved u8, payload_len u32 *)

let max_payload = 16 * 1024 * 1024

type status_row = {
  campaign : int;
  tenant : string;
  os : string;
  finished : bool;
  shards : int;
  shards_done : int;
  executed : int;
  coverage : int;
  crashes : int;
}

type worker_row = { worker : int; name : string; alive : bool; leases : int }

type t =
  | Submit of Tenant.config
  | Accept of { campaign : int; tenant : string }
  | Reject of { tenant : string; reason : string }
  | Shard_assign of Shard.assignment
  | Corpus_push of { campaign : int; shard : int; epoch : int; progs : string list }
  | Corpus_pull of { campaign : int; shard : int; progs : string list }
  | Crash_report of { campaign : int; shard : int; epoch : int; crash : Crash.t }
  | Heartbeat of {
      campaign : int;
      shard : int;
      epoch : int;
      executed : int;
      coverage : int;
      edge_capacity : int;
      virtual_s : float;
      bitmap : string;
    }
  | Status_req
  | Status of { rows : status_row list; workers : worker_row list }
  | Cancel of { campaign : int }
  | Shard_done of {
      campaign : int;
      shard : int;
      epoch : int;
      executed : int;
      iterations : int;
      crash_events : int;
      virtual_s : float;
    }
  | Campaign_done of { campaign : int; tenant : string; digest : string }
  | Worker_hello of { name : string }
  | Worker_welcome of { worker : int; heartbeat_timeout_s : float }
  | Shard_revoke of { campaign : int; shard : int; epoch : int }
  | Worker_ping of { worker : int }
  | Heartbeat_ack of { worker : int }

let kind_code = function
  | Submit _ -> 1
  | Accept _ -> 2
  | Reject _ -> 3
  | Shard_assign _ -> 4
  | Corpus_push _ -> 5
  | Corpus_pull _ -> 6
  | Crash_report _ -> 7
  | Heartbeat _ -> 8
  | Status_req -> 9
  | Status _ -> 10
  | Cancel _ -> 11
  | Shard_done _ -> 12
  | Campaign_done _ -> 13
  | Worker_hello _ -> 14
  | Worker_welcome _ -> 15
  | Shard_revoke _ -> 16
  | Worker_ping _ -> 17
  | Heartbeat_ack _ -> 18

let kind_name = function
  | Submit _ -> "submit"
  | Accept _ -> "accept"
  | Reject _ -> "reject"
  | Shard_assign _ -> "shard-assign"
  | Corpus_push _ -> "corpus-push"
  | Corpus_pull _ -> "corpus-pull"
  | Crash_report _ -> "crash-report"
  | Heartbeat _ -> "heartbeat"
  | Status_req -> "status-req"
  | Status _ -> "status"
  | Cancel _ -> "cancel"
  | Shard_done _ -> "shard-done"
  | Campaign_done _ -> "campaign-done"
  | Worker_hello _ -> "worker-hello"
  | Worker_welcome _ -> "worker-welcome"
  | Shard_revoke _ -> "shard-revoke"
  | Worker_ping _ -> "worker-ping"
  | Heartbeat_ack _ -> "heartbeat-ack"

type error =
  | Truncated  (** shorter than its header claims — wait for more bytes *)
  | Bad_magic
  | Bad_version of int
  | Bad_crc
  | Malformed of string

let error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad frame magic"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Bad_crc -> "frame CRC mismatch"
  | Malformed e -> Printf.sprintf "malformed payload: %s" e

(* --- little-endian primitives ------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u16 b v =
  if v < 0 || v > 0xFFFF then invalid_arg "Protocol: u16 out of range";
  Buffer.add_char b (Char.chr (v land 0xFF));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF))

let put_u32 b v =
  if v < 0 then invalid_arg "Protocol: u32 out of range";
  Buffer.add_int32_le b (Int32.of_int v)

let put_u64 b v = Buffer.add_int64_le b v

let put_f64 b v = Buffer.add_int64_le b (Int64.bits_of_float v)

let put_bool b v = put_u8 b (if v then 1 else 0)

let put_str b s =
  if String.length s > 0xFFFF then invalid_arg "Protocol: string too long";
  put_u16 b (String.length s);
  Buffer.add_string b s

let put_bytes b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_list b f xs =
  put_u16 b (List.length xs);
  List.iter (f b) xs

let put_backend b = function Machine.Link -> put_u8 b 0 | Machine.Native -> put_u8 b 1

let put_reset_policy b = function
  | Campaign.Ladder -> put_u8 b 0
  | Campaign.Snapshot -> put_u8 b 1
  | Campaign.Fresh_per_program -> put_u8 b 2

let put_schedule b = function
  | Eof_core.Corpus.Uniform -> put_u8 b 0
  | Eof_core.Corpus.Energy -> put_u8 b 1

let put_gen_mode b = function
  | Eof_core.Gen.Interp -> put_u8 b 0
  | Eof_core.Gen.Compiled -> put_u8 b 1

let crash_kind_code = function
  | Crash.Kernel_panic -> 0
  | Crash.Kernel_assertion -> 1
  | Crash.Hardware_fault -> 2
  | Crash.Hang -> 3
  | Crash.Boot_failure -> 4

let monitor_code = function
  | Crash.Log_monitor -> 0
  | Crash.Exception_monitor -> 1
  | Crash.Liveness_watchdog -> 2
  | Crash.Timeout_only -> 3

exception Fail of string

type cursor = { s : string; limit : int; mutable pos : int }

let need c n = if c.pos + n > c.limit then raise (Fail "truncated payload")

let u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let lo = u8 c in
  let hi = u8 c in
  lo lor (hi lsl 8)

let u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) in
  c.pos <- c.pos + 4;
  if v < 0 then raise (Fail "u32 out of int range") else v

let u64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let f64 c = Int64.float_of_bits (u64 c)

let bool c = match u8 c with 0 -> false | 1 -> true | _ -> raise (Fail "bad bool")

let str c =
  let n = u16 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let bytes c =
  let n = u32 c in
  need c n;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let list c f =
  let n = u16 c in
  List.init n (fun _ -> f c)

let backend c =
  match u8 c with
  | 0 -> Machine.Link
  | 1 -> Machine.Native
  | n -> raise (Fail (Printf.sprintf "bad backend code %d" n))

let reset_policy c =
  match u8 c with
  | 0 -> Campaign.Ladder
  | 1 -> Campaign.Snapshot
  | 2 -> Campaign.Fresh_per_program
  | n -> raise (Fail (Printf.sprintf "bad reset policy code %d" n))

let schedule c =
  match u8 c with
  | 0 -> Eof_core.Corpus.Uniform
  | 1 -> Eof_core.Corpus.Energy
  | n -> raise (Fail (Printf.sprintf "bad schedule code %d" n))

let gen_mode c =
  match u8 c with
  | 0 -> Eof_core.Gen.Interp
  | 1 -> Eof_core.Gen.Compiled
  | n -> raise (Fail (Printf.sprintf "bad gen mode code %d" n))

let crash_kind c =
  match u8 c with
  | 0 -> Crash.Kernel_panic
  | 1 -> Crash.Kernel_assertion
  | 2 -> Crash.Hardware_fault
  | 3 -> Crash.Hang
  | 4 -> Crash.Boot_failure
  | n -> raise (Fail (Printf.sprintf "bad crash kind %d" n))

let monitor c =
  match u8 c with
  | 0 -> Crash.Log_monitor
  | 1 -> Crash.Exception_monitor
  | 2 -> Crash.Liveness_watchdog
  | 3 -> Crash.Timeout_only
  | n -> raise (Fail (Printf.sprintf "bad monitor code %d" n))

(* --- payload encode/decode ---------------------------------------------- *)

let put_tenant_config b (c : Tenant.config) =
  put_str b c.Tenant.tenant;
  put_str b c.Tenant.os;
  put_u64 b c.Tenant.seed;
  put_u32 b c.Tenant.iterations;
  put_u16 b c.Tenant.boards;
  put_u16 b c.Tenant.farms;
  put_u32 b c.Tenant.sync_every;
  put_backend b c.Tenant.backend;
  put_reset_policy b c.Tenant.reset_policy;
  put_schedule b c.Tenant.schedule;
  put_gen_mode b c.Tenant.gen_mode

let tenant_config c =
  let tenant = str c in
  let os = str c in
  let seed = u64 c in
  let iterations = u32 c in
  let boards = u16 c in
  let farms = u16 c in
  let sync_every = u32 c in
  let backend = backend c in
  let reset_policy = reset_policy c in
  let schedule = schedule c in
  let gen_mode = gen_mode c in
  { Tenant.tenant; os; seed; iterations; boards; farms; sync_every; backend;
    reset_policy; schedule; gen_mode }

let put_assignment b (a : Shard.assignment) =
  put_u32 b a.Shard.campaign;
  put_str b a.Shard.tenant;
  put_str b a.Shard.os;
  put_u16 b a.Shard.shard;
  put_u16 b a.Shard.shards;
  put_u32 b a.Shard.epoch;
  put_u64 b a.Shard.seed;
  put_u32 b a.Shard.iterations;
  put_u16 b a.Shard.boards;
  put_u32 b a.Shard.sync_every;
  put_backend b a.Shard.backend;
  put_reset_policy b a.Shard.reset_policy;
  put_schedule b a.Shard.schedule;
  put_gen_mode b a.Shard.gen_mode

let assignment c =
  let campaign = u32 c in
  let tenant = str c in
  let os = str c in
  let shard = u16 c in
  let shards = u16 c in
  let epoch = u32 c in
  let seed = u64 c in
  let iterations = u32 c in
  let boards = u16 c in
  let sync_every = u32 c in
  let backend = backend c in
  let reset_policy = reset_policy c in
  let schedule = schedule c in
  let gen_mode = gen_mode c in
  { Shard.campaign; tenant; os; shard; shards; epoch; seed; iterations; boards;
    sync_every; backend; reset_policy; schedule; gen_mode }

let put_crash b (cr : Crash.t) =
  put_str b cr.Crash.os;
  put_u8 b (crash_kind_code cr.Crash.kind);
  put_str b cr.Crash.operation;
  put_str b cr.Crash.scope;
  put_str b cr.Crash.message;
  put_list b put_str cr.Crash.backtrace;
  put_u8 b (monitor_code cr.Crash.detected_by);
  put_bytes b cr.Crash.program;
  put_u32 b cr.Crash.iteration

let crash c =
  let os = str c in
  let kind = crash_kind c in
  let operation = str c in
  let scope = str c in
  let message = str c in
  let backtrace = list c str in
  let detected_by = monitor c in
  let program = bytes c in
  let iteration = u32 c in
  { Crash.os; kind; operation; scope; message; backtrace; detected_by; program;
    iteration }

let put_status_row b r =
  put_u32 b r.campaign;
  put_str b r.tenant;
  put_str b r.os;
  put_bool b r.finished;
  put_u16 b r.shards;
  put_u16 b r.shards_done;
  put_u32 b r.executed;
  put_u32 b r.coverage;
  put_u32 b r.crashes

let status_row c =
  let campaign = u32 c in
  let tenant = str c in
  let os = str c in
  let finished = bool c in
  let shards = u16 c in
  let shards_done = u16 c in
  let executed = u32 c in
  let coverage = u32 c in
  let crashes = u32 c in
  { campaign; tenant; os; finished; shards; shards_done; executed; coverage; crashes }

let put_worker_row b (r : worker_row) =
  put_u32 b r.worker;
  put_str b r.name;
  put_bool b r.alive;
  put_u16 b r.leases

let worker_row c =
  let worker = u32 c in
  let name = str c in
  let alive = bool c in
  let leases = u16 c in
  { worker; name; alive; leases }

let encode_payload b = function
  | Submit cfg -> put_tenant_config b cfg
  | Accept { campaign; tenant } ->
    put_u32 b campaign;
    put_str b tenant
  | Reject { tenant; reason } ->
    put_str b tenant;
    put_str b reason
  | Shard_assign a -> put_assignment b a
  | Corpus_push { campaign; shard; epoch; progs } ->
    put_u32 b campaign;
    put_u16 b shard;
    put_u32 b epoch;
    put_list b put_bytes progs
  | Corpus_pull { campaign; shard; progs } ->
    put_u32 b campaign;
    put_u16 b shard;
    put_list b put_bytes progs
  | Crash_report { campaign; shard; epoch; crash } ->
    put_u32 b campaign;
    put_u16 b shard;
    put_u32 b epoch;
    put_crash b crash
  | Heartbeat
      { campaign; shard; epoch; executed; coverage; edge_capacity; virtual_s; bitmap }
    ->
    put_u32 b campaign;
    put_u16 b shard;
    put_u32 b epoch;
    put_u32 b executed;
    put_u32 b coverage;
    put_u32 b edge_capacity;
    put_f64 b virtual_s;
    put_bytes b bitmap
  | Status_req -> ()
  | Status { rows; workers } ->
    put_list b put_status_row rows;
    put_list b put_worker_row workers
  | Cancel { campaign } -> put_u32 b campaign
  | Shard_done { campaign; shard; epoch; executed; iterations; crash_events; virtual_s }
    ->
    put_u32 b campaign;
    put_u16 b shard;
    put_u32 b epoch;
    put_u32 b executed;
    put_u32 b iterations;
    put_u32 b crash_events;
    put_f64 b virtual_s
  | Campaign_done { campaign; tenant; digest } ->
    put_u32 b campaign;
    put_str b tenant;
    put_str b digest
  | Worker_hello { name } -> put_str b name
  | Worker_welcome { worker; heartbeat_timeout_s } ->
    put_u32 b worker;
    put_f64 b heartbeat_timeout_s
  | Shard_revoke { campaign; shard; epoch } ->
    put_u32 b campaign;
    put_u16 b shard;
    put_u32 b epoch
  | Worker_ping { worker } -> put_u32 b worker
  | Heartbeat_ack { worker } -> put_u32 b worker

let decode_payload kind c =
  match kind with
  | 1 -> Submit (tenant_config c)
  | 2 ->
    let campaign = u32 c in
    let tenant = str c in
    Accept { campaign; tenant }
  | 3 ->
    let tenant = str c in
    let reason = str c in
    Reject { tenant; reason }
  | 4 -> Shard_assign (assignment c)
  | 5 ->
    let campaign = u32 c in
    let shard = u16 c in
    let epoch = u32 c in
    let progs = list c bytes in
    Corpus_push { campaign; shard; epoch; progs }
  | 6 ->
    let campaign = u32 c in
    let shard = u16 c in
    let progs = list c bytes in
    Corpus_pull { campaign; shard; progs }
  | 7 ->
    let campaign = u32 c in
    let shard = u16 c in
    let epoch = u32 c in
    let crash = crash c in
    Crash_report { campaign; shard; epoch; crash }
  | 8 ->
    let campaign = u32 c in
    let shard = u16 c in
    let epoch = u32 c in
    let executed = u32 c in
    let coverage = u32 c in
    let edge_capacity = u32 c in
    let virtual_s = f64 c in
    let bitmap = bytes c in
    Heartbeat
      { campaign; shard; epoch; executed; coverage; edge_capacity; virtual_s; bitmap }
  | 9 -> Status_req
  | 10 ->
    let rows = list c status_row in
    let workers = list c worker_row in
    Status { rows; workers }
  | 11 -> Cancel { campaign = u32 c }
  | 12 ->
    let campaign = u32 c in
    let shard = u16 c in
    let epoch = u32 c in
    let executed = u32 c in
    let iterations = u32 c in
    let crash_events = u32 c in
    let virtual_s = f64 c in
    Shard_done { campaign; shard; epoch; executed; iterations; crash_events; virtual_s }
  | 13 ->
    let campaign = u32 c in
    let tenant = str c in
    let digest = str c in
    Campaign_done { campaign; tenant; digest }
  | 14 -> Worker_hello { name = str c }
  | 15 ->
    let worker = u32 c in
    let heartbeat_timeout_s = f64 c in
    Worker_welcome { worker; heartbeat_timeout_s }
  | 16 ->
    let campaign = u32 c in
    let shard = u16 c in
    let epoch = u32 c in
    Shard_revoke { campaign; shard; epoch }
  | 17 -> Worker_ping { worker = u32 c }
  | 18 -> Heartbeat_ack { worker = u32 c }
  | n -> raise (Fail (Printf.sprintf "unknown message kind %d" n))

(* --- framing ------------------------------------------------------------ *)

(* frame := magic u32 | version u16 | kind u8 | reserved u8 |
            payload_len u32 | payload | crc32 u32
   The CRC covers version..payload (everything after the magic), so a
   bit flip anywhere in the negotiated content — including the length
   field — is caught; the magic itself is the resync sentinel. *)
let encode msg =
  let payload = Buffer.create 256 in
  encode_payload payload msg;
  let payload = Buffer.contents payload in
  let b = Buffer.create (header_bytes + String.length payload + 4) in
  Buffer.add_int32_le b magic;
  put_u16 b version;
  put_u8 b (kind_code msg);
  put_u8 b 0;
  put_u32 b (String.length payload);
  Buffer.add_string b payload;
  let crc =
    Eof_util.Crc32.digest_string
      (String.sub (Buffer.contents b) 4 (Buffer.length b - 4))
  in
  Buffer.add_int32_le b crc;
  Buffer.contents b

let frame_size buffered =
  if String.length buffered < header_bytes then Ok None
  else if String.get_int32_le buffered 0 <> magic then Error Bad_magic
  else begin
    let len = Int32.to_int (String.get_int32_le buffered 8) in
    if len < 0 || len > max_payload then Error (Malformed "payload length out of range")
    else Ok (Some (header_bytes + len + 4))
  end

let decode frame =
  match frame_size frame with
  | Error e -> Error e
  | Ok None -> Error Truncated
  | Ok (Some size) ->
    if String.length frame < size then Error Truncated
    else if String.length frame > size then Error (Malformed "trailing bytes after frame")
    else begin
      let stored = String.get_int32_le frame (size - 4) in
      let crc =
        Eof_util.Crc32.digest_string (String.sub frame 4 (size - 8))
      in
      if not (Int32.equal stored crc) then Error Bad_crc
      else begin
        let ver = Char.code frame.[4] lor (Char.code frame.[5] lsl 8) in
        if ver <> version then Error (Bad_version ver)
        else begin
          let kind = Char.code frame.[6] in
          let c = { s = frame; limit = size - 4; pos = header_bytes } in
          match decode_payload kind c with
          | msg ->
            if c.pos <> c.limit then Error (Malformed "payload has trailing bytes")
            else Ok msg
          | exception Fail e -> Error (Malformed e)
        end
      end
    end
