(** The campaign hub: a transport-agnostic state machine coordinating a
    fleet of remote worker endpoints on behalf of multiple tenants.

    The hub owns no sockets and no clock. It consumes one decoded
    {!Protocol.t} message at a time — tagged with who sent it and what
    time it is — and returns the messages to send in response; the
    in-process driver ({!Inproc}) and the socket server ({!Socket}) are
    thin transports around the same machine, which is what makes the
    deterministic CI soak argue about the real orchestration logic.

    Responsibilities:
    - register worker endpoints ({!hello}) and track their liveness
      against a heartbeat deadline ({!tick});
    - admit per-tenant submissions, shard them across workers
      ({!Shard.plan}), leasing each shard to the least-loaded worker;
    - revoke the leases of a dead worker, reassign them to survivors
      (replaying the hub-side corpus as a bootstrap), and {e fence}
      traffic carrying a stale lease epoch so a zombie worker cannot
      corrupt accounting;
    - merge pushed corpus programs into a hub-side per-tenant
      {!Eof_core.Corpus} (decoding through the tenant's own personality,
      so foreign programs are rejected at the boundary) and transplant
      genuinely new programs to sibling shards;
    - deduplicate crashes fleet-wide by {!Eof_core.Crash.dedup_key} —
      one entry per distinct bug across all tenants and farms — while
      keeping per-tenant attribution and per-tenant crash lists;
    - journal every state-mutating message to an append-only file
      ({!Journal}), so a restarted hub replays itself back to
      where it died and resumes;
    - stream per-tenant telemetry: every hub event is emitted on an
      {!Eof_obs.Obs.for_tenant} handle clocked by that campaign's
      virtual time;
    - compute deterministic per-tenant campaign digests and the
      fleet-wide {!Eof_core.Report.fleet_digest}.

    {b Time.} Every liveness-relevant entry point takes [~now], in
    whatever clock the transport lives on — virtual seconds under
    {!Inproc} (deterministic), wall seconds under {!Socket}. The hub
    only ever compares [now] against recorded [now]s. *)

type resolved = { spec : Eof_spec.Ast.t; table : Eof_rtos.Api.table }
(** What the hub needs to know about an OS personality: enough to
    rebind wire-encoded programs ({!Eof_core.Prog.of_wire}). *)

type action =
  | To_client of int * Protocol.t  (** send to client [id] *)
  | To_worker of int * Protocol.t  (** send to worker [id] *)

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  ?corpus_sync:bool ->
  ?journal:string ->
  ?heartbeat_timeout:float ->
  resolve:(string -> (resolved, string) result) ->
  unit ->
  t
(** [resolve] maps a submitted OS name to its personality.
    [corpus_sync] (default true) controls cross-shard seed
    transplanting — the off switch exists to measure its overhead.
    [heartbeat_timeout] (default 30 seconds) is the liveness deadline:
    a worker holding at least one active lease that has not been heard
    from for longer is declared dead at the next {!tick}.

    [journal] names an append-only file of state-mutating protocol
    frames. If it already exists it is replayed first: completed
    campaigns are restored exactly (same digest); campaigns the old
    process left unfinished are reset to a fresh start — their
    deterministic re-run reaches the digest the uninterrupted run would
    have, provided every campaign they exchanged seeds with was also
    unfinished at the kill. Raises [Invalid_argument] if the journal
    cannot be opened. *)

val close : t -> unit
(** Close the journal (if any). The hub remains usable, un-journaled. *)

(** {2 Worker lifecycle} *)

val hello : t -> now:float -> name:string -> (int * action list, string) result
(** Register a worker endpoint. Returns its hub-assigned worker id and
    the replies (a [Worker_welcome] followed by any shard leases the
    newcomer picks up). [Error] if the name is invalid. *)

val worker_lost : t -> now:float -> worker:int -> action list
(** Declare a worker dead (transport saw EOF, or a deadline fired):
    every active lease it holds is revoked — epoch bumped, best-effort
    [Shard_revoke] sent, the work it had reported discarded — and the
    shards are reassigned to surviving workers (with a bootstrap
    [Corpus_pull] of the hub-side corpus). Idempotent. *)

val handle_worker : t -> now:float -> worker:int -> Protocol.t -> action list
(** Feed one message from a worker, refreshing its liveness. Shard
    traffic ([Corpus_push] / [Crash_report] / [Heartbeat] /
    [Shard_done]) is fenced: unless it names the current lease epoch
    and comes from the current lease owner it is dropped and counted
    ({!fenced}), never raised on. [Heartbeat] and [Worker_ping] earn a
    [Heartbeat_ack]. *)

val tick : t -> now:float -> action list
(** Liveness sweep: declare workers past the heartbeat deadline dead
    (only workers holding at least one active lease are subject), and
    retry assignment of any leases still pending. Transports call this
    periodically on their own clock. *)

val handle_client : t -> client:int -> Protocol.t -> action list
(** Feed one message from client [client]. Unexpected kinds get a
    [Reject] rather than an exception: clients are untrusted. *)

(** {2 Read side} *)

val all_done : t -> bool
(** At least one campaign submitted and every campaign finished. *)

val status : t -> Protocol.status_row list

val worker_rows : t -> Protocol.worker_row list
(** Every worker ever registered, join order, with its active lease
    count. *)

val tenants : t -> string list
(** Tenant names, submission order. *)

val tenant_digests : t -> (string * string) list
(** [(tenant, digest)] for every finished campaign, submission order. *)

val fleet_digest : t -> string

val crashes_deduped : t -> int
(** Size of the fleet-wide crash set. *)

val fleet_crashes : t -> (Eof_core.Crash.t * string list) list
(** The fleet-wide deduplicated crashes in discovery order, each with
    the tenants that hit it (attribution order preserved). *)

val transplants : t -> int
(** Programs relayed shard-to-shard by corpus sync. *)

val heartbeat_timeout : t -> float

val reassignments : t -> int
(** Shard leases moved from a dead worker to a survivor. *)

val fenced : t -> int
(** Messages dropped for naming a stale lease (zombie traffic). *)

val payloads_lost : t -> int
(** Executed payloads discarded with revoked leases and journal resets
    — the re-execution cost of recovery. *)

val recovery_lag : t -> float
(** High-water mark of virtual seconds of shard progress discarded at a
    revocation or reset. *)

val replayed_frames : t -> int
(** Journal frames replayed at {!create}. *)
