(** The campaign hub: a transport-agnostic state machine coordinating a
    fleet of worker farms on behalf of multiple tenants.

    The hub owns no sockets and no clock. It consumes one decoded
    {!Protocol.t} message at a time and returns the messages to send in
    response; the in-process driver ({!Inproc}) and the socket server
    ({!Socket}) are thin transports around the same machine, which is
    what makes the deterministic CI soak argue about the real
    orchestration logic.

    Responsibilities:
    - admit per-tenant submissions, shard them across farms
      ({!Shard.plan}), route each shard to farm [shard mod farms];
    - merge pushed corpus programs into a hub-side per-tenant
      {!Eof_core.Corpus} (decoding through the tenant's own personality,
      so foreign programs are rejected at the boundary) and transplant
      genuinely new programs to sibling shards;
    - deduplicate crashes fleet-wide by {!Eof_core.Crash.dedup_key} —
      one entry per distinct bug across all tenants and farms — while
      keeping per-tenant attribution and per-tenant crash lists;
    - stream per-tenant telemetry: every hub event is emitted on an
      {!Eof_obs.Obs.for_tenant} handle clocked by that campaign's
      virtual time;
    - compute deterministic per-tenant campaign digests and the
      fleet-wide {!Eof_core.Report.fleet_digest}. *)

type resolved = { spec : Eof_spec.Ast.t; table : Eof_rtos.Api.table }
(** What the hub needs to know about an OS personality: enough to
    rebind wire-encoded programs ({!Eof_core.Prog.of_wire}). *)

type action =
  | To_client of int * Protocol.t  (** send to client [id] *)
  | To_farm of int * Protocol.t  (** send to farm [id] *)

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  ?corpus_sync:bool ->
  farms:int ->
  resolve:(string -> (resolved, string) result) ->
  unit ->
  t
(** [resolve] maps a submitted OS name to its personality.
    [corpus_sync] (default true) controls cross-shard seed
    transplanting — the off switch exists to measure its overhead. *)

val handle_client : t -> client:int -> Protocol.t -> action list
(** Feed one message from client [client]. Unexpected kinds get a
    [Reject] rather than an exception: clients are untrusted. *)

val handle_farm : t -> farm:int -> Protocol.t -> action list
(** Feed one message from a farm. Farms are trusted (the hub spawned
    them); protocol violations raise [Invalid_argument]. *)

val all_done : t -> bool
(** At least one campaign submitted and every campaign finished. *)

val status : t -> Protocol.status_row list

val tenant_digests : t -> (string * string) list
(** [(tenant, digest)] for every finished campaign, submission order. *)

val fleet_digest : t -> string

val crashes_deduped : t -> int
(** Size of the fleet-wide crash set. *)

val fleet_crashes : t -> (Eof_core.Crash.t * string list) list
(** The fleet-wide deduplicated crashes in discovery order, each with
    the tenants that hit it (attribution order preserved). *)

val transplants : t -> int
(** Programs relayed shard-to-shard by corpus sync. *)
