module Obs = Eof_obs.Obs
module Bitset = Eof_util.Bitset
module Wire = Eof_agent.Wire
module Farm = Eof_core.Farm
module Campaign = Eof_core.Campaign
module Corpus = Eof_core.Corpus
module Prog = Eof_core.Prog
module Osbuild = Eof_os.Osbuild

type target = {
  mk_build : int -> Osbuild.t;
  spec : Eof_spec.Ast.t;
  table : Eof_rtos.Api.table;
}

type shard_state = {
  assign : Shard.assignment;
  target : target;
  farm : Farm.t;
  pushed : (string, unit) Hashtbl.t;
      (** wire encodings already sent (or received) — push each program
          at most once, never echo a transplant back *)
  mutable crashes_seen : int;
  mutable transplanted : int;
  mutable finished : bool;
}

type t = {
  name : string;
  mutable id : int;  (** hub-assigned at welcome; -1 until then *)
  mutable heartbeat_timeout_s : float option;  (** as negotiated at welcome *)
  resolve : string -> (target, string) result;
  obs : Obs.t;
  mutable shards : shard_state list;  (** assignment order *)
}

let create ?obs ~name ~resolve () =
  {
    name;
    id = -1;
    heartbeat_timeout_s = None;
    resolve;
    obs = (match obs with Some o -> o | None -> Obs.create ());
    shards = [];
  }

let id t = t.id

let name t = t.name

let heartbeat_timeout_s t = t.heartbeat_timeout_s

let hello t = Protocol.Worker_hello { name = t.name }

(* Programs cross the hub protocol in canonical little-endian wire form
   regardless of the target's byte order — the hub is a host, not a
   board. *)
let wire_of_prog prog =
  match Wire.encode ~endianness:Eof_hw.Arch.Little (Prog.to_wire prog) with
  | Ok s -> Some s
  | Error _ -> None

let prog_of_wire target s =
  match Wire.decode ~endianness:Eof_hw.Arch.Little s with
  | Error _ -> None
  | Ok wire ->
    (match Prog.of_wire ~spec:target.spec ~table:target.table wire with
     | Error _ -> None
     | Ok prog -> Some prog)

let assign t (a : Shard.assignment) =
  let target =
    match t.resolve a.Shard.os with
    | Ok target -> target
    | Error e ->
      invalid_arg
        (Printf.sprintf "worker %d: cannot resolve os %s: %s" t.id a.Shard.os e)
  in
  let base =
    {
      Campaign.default_config with
      Campaign.seed = a.Shard.seed;
      iterations = a.Shard.iterations;
      backend = a.Shard.backend;
      reset_policy = a.Shard.reset_policy;
      schedule = a.Shard.schedule;
      gen_mode = a.Shard.gen_mode;
    }
  in
  let config =
    {
      Farm.boards = a.Shard.boards;
      sync_every = a.Shard.sync_every;
      backend = Farm.Cooperative;
      base;
    }
  in
  let farm =
    match Farm.init ~obs:(Obs.for_tenant t.obs a.Shard.tenant) config target.mk_build with
    | Ok farm -> farm
    | Error e ->
      invalid_arg
        (Printf.sprintf "worker %d: farm init failed: %s" t.id
           (Eof_util.Eof_error.to_string e))
  in
  (* A re-lease of a shard this worker held at a lower epoch replaces
     the dead entry — the fresh farm restarts the shard from scratch. *)
  t.shards <-
    List.filter
      (fun st ->
        st.assign.Shard.campaign <> a.Shard.campaign
        || st.assign.Shard.shard <> a.Shard.shard)
      t.shards
    @ [ {
          assign = a;
          target;
          farm;
          pushed = Hashtbl.create 64;
          crashes_seen = 0;
          transplanted = 0;
          finished = false;
        };
      ]

(* Everything new since the last farm epoch, in a fixed order: corpus
   programs, then crashes, then the heartbeat that timestamps them. *)
let flush st =
  let a = st.assign in
  let campaign = a.Shard.campaign
  and shard = a.Shard.shard
  and epoch = a.Shard.epoch in
  let fresh_progs =
    List.filter_map
      (fun prog ->
        match wire_of_prog prog with
        | None -> None
        | Some s ->
          if Hashtbl.mem st.pushed s then None
          else begin
            Hashtbl.replace st.pushed s ();
            Some s
          end)
      (Corpus.progs (Farm.exchange_corpus st.farm))
  in
  let pushes =
    if fresh_progs = [] then []
    else [ Protocol.Corpus_push { campaign; shard; epoch; progs = fresh_progs } ]
  in
  let crashes = Farm.crashes_so_far st.farm in
  let reports =
    List.filteri (fun i _ -> i >= st.crashes_seen) crashes
    |> List.map (fun crash -> Protocol.Crash_report { campaign; shard; epoch; crash })
  in
  st.crashes_seen <- List.length crashes;
  let bitmap = Farm.coverage_bitmap st.farm in
  let heartbeat =
    Protocol.Heartbeat
      {
        campaign;
        shard;
        epoch;
        executed = Farm.executed_so_far st.farm;
        coverage = Bitset.count bitmap;
        edge_capacity = Bitset.capacity bitmap;
        virtual_s = Farm.virtual_now st.farm;
        bitmap = Bitset.to_bytes bitmap;
      }
  in
  pushes @ reports @ [ heartbeat ]

let shard_done st =
  let a = st.assign in
  let outcome = Farm.finish st.farm in
  st.finished <- true;
  flush st
  @ [ Protocol.Shard_done
        {
          campaign = a.Shard.campaign;
          shard = a.Shard.shard;
          epoch = a.Shard.epoch;
          executed = outcome.Farm.executed_programs;
          iterations = outcome.Farm.iterations_done;
          crash_events = outcome.Farm.crash_events;
          virtual_s = outcome.Farm.virtual_s;
        };
    ]

let handle t msg =
  match msg with
  | Protocol.Worker_welcome { worker; heartbeat_timeout_s } ->
    t.id <- worker;
    t.heartbeat_timeout_s <- Some heartbeat_timeout_s;
    []
  | Protocol.Heartbeat_ack _ -> []
  | Protocol.Shard_assign a ->
    assign t a;
    []
  | Protocol.Shard_revoke { campaign; shard; epoch } ->
    (* The lease is gone: freeze the farm (one off-cycle merge so its
       observers settle, nothing sent — the hub has already fenced this
       epoch) and never step it again. *)
    List.iter
      (fun st ->
        if
          st.assign.Shard.campaign = campaign
          && st.assign.Shard.shard = shard
          && st.assign.Shard.epoch = epoch
          && not st.finished
        then begin
          Farm.pause st.farm;
          st.finished <- true
        end)
      t.shards;
    []
  | Protocol.Corpus_pull { campaign; shard; progs } ->
    (match
       List.find_opt
         (fun st ->
           st.assign.Shard.campaign = campaign && st.assign.Shard.shard = shard)
         t.shards
     with
    | None -> []
    | Some st ->
      if st.finished then []
      else begin
        let typed =
          List.filter_map
            (fun s ->
              (* The hub now knows this encoding either way; never push
                 a transplant straight back. *)
              Hashtbl.replace st.pushed s ();
              prog_of_wire st.target s)
            progs
        in
        st.transplanted <- st.transplanted + Farm.adopt st.farm typed;
        []
      end)
  | Protocol.Cancel { campaign } ->
    List.concat_map
      (fun st ->
        if st.finished || st.assign.Shard.campaign <> campaign then []
        else shard_done st)
      t.shards
  | other ->
    invalid_arg
      (Printf.sprintf "worker %d: unexpected message %s" t.id
         (Protocol.kind_name other))

let next_cpu_s t =
  List.fold_left
    (fun acc st ->
      if st.finished then acc
      else
        match (Farm.next_cpu_s st.farm, acc) with
        | None, _ -> acc
        | Some v, None -> Some v
        | Some v, Some a -> Some (Float.min v a))
    None t.shards

let idle t = List.for_all (fun st -> st.finished) t.shards

let step t =
  (* Advance the shard whose next board is earliest on its own clock —
     the same min-CPU pick the farm applies one level down. *)
  let best =
    List.fold_left
      (fun acc st ->
        if st.finished then acc
        else
          match (Farm.next_cpu_s st.farm, acc) with
          | None, _ -> acc
          | Some v, Some (_, bv) when bv <= v -> acc
          | Some v, _ -> Some (st, v))
      None t.shards
  in
  match best with
  | None -> []
  | Some (st, _) ->
    let syncs_before = Farm.syncs_so_far st.farm in
    Farm.step st.farm;
    if Farm.finished st.farm then shard_done st
    else if Farm.syncs_so_far st.farm <> syncs_before then flush st
    else []

let transplanted t =
  List.fold_left (fun acc st -> acc + st.transplanted) 0 t.shards
