type config = {
  tenant : string;
  os : string;
  seed : int64;
  iterations : int;
  boards : int;
  farms : int;
  sync_every : int;
  backend : Eof_agent.Machine.backend;
  reset_policy : Eof_core.Campaign.reset_policy;
  schedule : Eof_core.Corpus.schedule;
  gen_mode : Eof_core.Gen.mode;
}

let default =
  {
    tenant = "default";
    os = "Zephyr";
    seed = 1L;
    iterations = 200;
    boards = 1;
    farms = 1;
    sync_every = 25;
    backend = Eof_agent.Machine.Native;
    reset_policy = Eof_core.Campaign.Ladder;
    schedule = Eof_core.Corpus.Uniform;
    gen_mode = Eof_core.Gen.Interp;
  }

let name_ok name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '-' || c = '_')
       name

let validate c =
  if not (name_ok c.tenant) then
    Error
      (Printf.sprintf "tenant %S: must be 1-64 chars of [A-Za-z0-9_-]" c.tenant)
  else if c.os = "" then Error "os must not be empty"
  else if c.iterations < 1 then Error "iterations must be >= 1"
  else if c.boards < 1 then Error "boards must be >= 1"
  else if c.farms < 1 then Error "farms must be >= 1"
  else if c.sync_every < 1 then Error "sync_every must be >= 1"
  else Ok ()

let to_string c =
  Printf.sprintf
    "%s: os=%s seed=%Ld iterations=%d farms=%d boards=%d backend=%s reset=%s \
     schedule=%s gen=%s"
    c.tenant c.os c.seed c.iterations c.farms c.boards
    (Eof_agent.Machine.backend_name c.backend)
    (Eof_core.Campaign.reset_policy_name c.reset_policy)
    (Eof_core.Corpus.schedule_name c.schedule)
    (Eof_core.Gen.mode_name c.gen_mode)

(* key=value[,key=value...] — the CLI's compact one-flag-per-tenant
   submission syntax. *)
let of_spec s =
  let parse_kv acc token =
    match acc with
    | Error _ as e -> e
    | Ok c ->
      (match String.index_opt token '=' with
       | None -> Error (Printf.sprintf "tenant spec: %S is not key=value" token)
       | Some i ->
         let key = String.sub token 0 i in
         let v = String.sub token (i + 1) (String.length token - i - 1) in
         let int_of k =
           match int_of_string_opt v with
           | Some n -> Ok n
           | None -> Error (Printf.sprintf "tenant spec: bad %s %S" k v)
         in
         (match key with
          | "name" | "tenant" -> Ok { c with tenant = v }
          | "os" -> Ok { c with os = v }
          | "seed" ->
            (match Int64.of_string_opt v with
             | Some seed -> Ok { c with seed }
             | None -> Error (Printf.sprintf "tenant spec: bad seed %S" v))
          | "iterations" | "n" ->
            Result.map (fun iterations -> { c with iterations }) (int_of "iterations")
          | "boards" -> Result.map (fun boards -> { c with boards }) (int_of "boards")
          | "farms" -> Result.map (fun farms -> { c with farms }) (int_of "farms")
          | "sync" | "sync_every" ->
            Result.map (fun sync_every -> { c with sync_every }) (int_of "sync_every")
          | "backend" ->
            Result.map
              (fun backend -> { c with backend })
              (Eof_agent.Machine.backend_of_name v)
          | "reset" | "reset_policy" ->
            Result.map
              (fun reset_policy -> { c with reset_policy })
              (Eof_core.Campaign.reset_policy_of_name v)
          | "schedule" ->
            Result.map
              (fun schedule -> { c with schedule })
              (Eof_core.Corpus.schedule_of_name v)
          | "gen" | "gen_mode" ->
            Result.map
              (fun gen_mode -> { c with gen_mode })
              (Eof_core.Gen.mode_of_name v)
          | k -> Error (Printf.sprintf "tenant spec: unknown key %S" k)))
  in
  match List.fold_left parse_kv (Ok default) (String.split_on_char ',' s) with
  | Error _ as e -> e
  | Ok c -> (match validate c with Ok () -> Ok c | Error e -> Error e)
