(** A worker farm endpoint: drives the {!Eof_core.Farm}s assigned to one
    farm slot and speaks {!Protocol} back to the hub.

    Like the hub it is transport-agnostic and clock-free: {!handle}
    consumes one decoded message, {!step} advances the earliest board of
    the earliest shard by one payload, and both return the messages the
    worker wants delivered to the hub. At every farm epoch boundary the
    worker flushes what is new — freshly admitted exchange-corpus
    programs ({!Protocol.t.Corpus_push}), newly deduplicated crashes
    ({!Protocol.t.Crash_report}), and a coverage-bitmap heartbeat — and
    on shard completion it finalises the farm and reports
    {!Protocol.t.Shard_done}. *)

type target = {
  mk_build : int -> Eof_os.Osbuild.t;  (** per-board build, as {!Eof_core.Farm.init} *)
  spec : Eof_spec.Ast.t;
  table : Eof_rtos.Api.table;
      (** personality surface, for rebinding transplanted wire programs *)
}

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  id:int ->
  resolve:(string -> (target, string) result) ->
  unit ->
  t
(** Farm telemetry is emitted on [Obs.for_tenant obs tenant] handles, so
    every event the worker's farms produce carries its tenant. *)

val id : t -> int

val handle : t -> Protocol.t -> Protocol.t list
(** Feed one hub → farm message ([Shard_assign], [Corpus_pull],
    [Cancel]); other kinds raise [Invalid_argument]. Transplanted
    programs are rebound through the shard's own personality and
    admitted via {!Eof_core.Farm.adopt}. *)

val step : t -> Protocol.t list
(** Execute one payload on the shard whose next board is earliest on
    its virtual clock; returns the epoch flush (or the final flush plus
    [Shard_done]) when the step crossed a boundary, [[]] otherwise. *)

val next_cpu_s : t -> float option
(** Virtual time of this worker's earliest runnable board; [None] when
    idle — the in-process driver's scheduling key. *)

val idle : t -> bool

val transplanted : t -> int
(** Programs received by pull and actually admitted into shard corpora. *)
