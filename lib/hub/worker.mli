(** A worker endpoint: drives the {!Eof_core.Farm}s the hub leases to it
    and speaks {!Protocol} back.

    Like the hub it is transport-agnostic and clock-free: {!handle}
    consumes one decoded message, {!step} advances the earliest board of
    the earliest shard by one payload, and both return the messages the
    worker wants delivered to the hub. At every farm epoch boundary the
    worker flushes what is new — freshly admitted exchange-corpus
    programs ({!Protocol.t.Corpus_push}), newly deduplicated crashes
    ({!Protocol.t.Crash_report}), and a coverage-bitmap heartbeat — and
    on shard completion it finalises the farm and reports
    {!Protocol.t.Shard_done}. Everything sent for a shard echoes the
    lease epoch from its {!Protocol.t.Shard_assign}, so a hub that has
    since revoked the lease can fence it.

    Lifecycle: the transport sends {!hello} as the first frame; the
    hub's [Worker_welcome] reply (fed back through {!handle}) binds the
    hub-assigned {!id} and heartbeat deadline. A [Shard_revoke] freezes
    the named shard ({!Eof_core.Farm.pause}) without emitting anything —
    the hub has already written that work off. *)

type target = {
  mk_build : int -> Eof_os.Osbuild.t;  (** per-board build, as {!Eof_core.Farm.init} *)
  spec : Eof_spec.Ast.t;
  table : Eof_rtos.Api.table;
      (** personality surface, for rebinding transplanted wire programs *)
}

type t

val create :
  ?obs:Eof_obs.Obs.t ->
  name:string ->
  resolve:(string -> (target, string) result) ->
  unit ->
  t
(** Farm telemetry is emitted on [Obs.for_tenant obs tenant] handles, so
    every event the worker's farms produce carries its tenant. *)

val id : t -> int
(** Hub-assigned worker id; -1 until the [Worker_welcome] arrives. *)

val name : t -> string

val heartbeat_timeout_s : t -> float option
(** The liveness deadline the hub announced at welcome; [None] until
    then. Socket workers ping well inside it when otherwise silent. *)

val hello : t -> Protocol.t
(** The registration frame the transport must send first. *)

val handle : t -> Protocol.t -> Protocol.t list
(** Feed one hub → worker message ([Worker_welcome], [Heartbeat_ack],
    [Shard_assign], [Shard_revoke], [Corpus_pull], [Cancel]); other
    kinds raise [Invalid_argument]. Transplanted programs are rebound
    through the shard's own personality and admitted via
    {!Eof_core.Farm.adopt}. *)

val step : t -> Protocol.t list
(** Execute one payload on the shard whose next board is earliest on
    its virtual clock; returns the epoch flush (or the final flush plus
    [Shard_done]) when the step crossed a boundary, [[]] otherwise. *)

val next_cpu_s : t -> float option
(** Virtual time of this worker's earliest runnable board; [None] when
    idle — the in-process driver's scheduling key. *)

val idle : t -> bool

val transplanted : t -> int
(** Programs received by pull and actually admitted into shard corpora. *)
