module Obs = Eof_obs.Obs
module Bitset = Eof_util.Bitset
module Wire = Eof_agent.Wire
module Corpus = Eof_core.Corpus
module Crash = Eof_core.Crash
module Prog = Eof_core.Prog
module Report = Eof_core.Report
module Transplant = Eof_core.Transplant

type resolved = { spec : Eof_spec.Ast.t; table : Eof_rtos.Api.table }

type action = To_client of int * Protocol.t | To_worker of int * Protocol.t

(* One shard of one campaign, as the hub tracks it: the planned
   assignment plus the lease state machine layered on top. The epoch is
   the fencing token — bumped on every revocation, echoed by the owning
   worker on everything it sends back, so traffic from a worker whose
   lease was withdrawn (a zombie that missed its heartbeat deadline but
   is still flushing) is recognisably stale and dropped. *)
type lease = {
  assign : Shard.assignment;  (** as planned: epoch field is the birth epoch *)
  mutable epoch : int;
  mutable owner : int option;  (** worker id currently holding the lease *)
  mutable completed : bool;
  mutable last_owner : int;  (** previous owner, -1 if none (for telemetry) *)
}

type campaign = {
  id : int;
  config : Tenant.config;
  client : int;
  resolved : resolved;
  mutable corpus : Corpus.t;  (** hub-side merged view of the tenant's corpus *)
  seen : (string, unit) Hashtbl.t;
      (** wire encodings already known, so a pushed program is
          broadcast at most once and pulls never echo back *)
  mutable bitmap : Bitset.t option;  (** allocated at the first heartbeat *)
  leases : lease array;  (** one per shard *)
  shard_exec : int array;
  shard_virtual : float array;
  mutable shards_done : int;
  mutable iterations_done : int;
  mutable crash_events : int;
  mutable crashes_rev : Crash.t list;  (** tenant-deduped, discovery order *)
  crash_keys : (string, unit) Hashtbl.t;
  mutable syncs : int;
  mutable cross_in : int;
      (** retyped seeds adopted from other personalities; capped, see
          {!cross_cap} *)
  mutable digest : string option;
  obs : Obs.t;  (** tenant-scoped handle, clocked by the campaign *)
}

(* Same-personality shards exchange everything — their coverage maps
   are directly comparable. A cross-personality transplant is
   speculative: the destination has never judged it against its own
   coverage, so an unbounded relay drowns the destination's selection
   lottery in foreign seeds. Each campaign therefore adopts at most
   this many retyped seeds — a bootstrap set, not a firehose. *)
let cross_cap = 32

type fleet_entry = { crash : Crash.t; mutable tenants : string list }

type worker_state = {
  wid : int;
  wname : string;
  mutable last_seen : float;
  mutable alive : bool;
}

type t = {
  resolve : string -> (resolved, string) result;
  corpus_sync : bool;
  heartbeat_timeout : float;
  obs : Obs.t;
  campaigns : (int, campaign) Hashtbl.t;
  mutable order : int list;  (** campaign ids, submission order (reversed) *)
  mutable next_id : int;
  workers : (int, worker_state) Hashtbl.t;
  mutable worker_order : int list;  (** worker ids, join order (reversed) *)
  mutable next_wid : int;
  fleet_crashes : (string, fleet_entry) Hashtbl.t;
  mutable fleet_order : string list;  (** dedup keys, discovery order (reversed) *)
  mutable transplants : int;  (** programs relayed shard-to-shard *)
  mutable journal : Journal.t option;
  mutable replaying : bool;  (** journal replay in progress: no fencing, no re-journaling *)
  mutable reassignments : int;
  mutable fenced : int;
  mutable payloads_lost : int;
  mutable recovery_lag : float;
  mutable replayed_frames : int;
  cnt_reassigned : Obs.Counter.t;
  cnt_fenced : Obs.Counter.t;
  cnt_lost : Obs.Counter.t;
}

let campaign_exn t id =
  match Hashtbl.find_opt t.campaigns id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Hub: unknown campaign %d" id)

let virtual_now c = Array.fold_left Float.max 0. c.shard_virtual

let message (c : campaign) text = Obs.message c.obs Obs.Level.Info text

let journal_append t msg =
  if not t.replaying then
    match t.journal with Some j -> Journal.append j msg | None -> ()

(* --- worker registry ---------------------------------------------------- *)

let worker_load t wid =
  List.fold_left
    (fun acc id ->
      let c = campaign_exn t id in
      Array.fold_left
        (fun acc l -> if l.owner = Some wid && not l.completed then acc + 1 else acc)
        acc c.leases)
    0 (List.rev t.order)

(* Least-loaded alive worker, ties to the lowest id — with equal loads
   and workers joined in index order this reproduces the historical
   [shard mod farms] placement, which keeps fault-free fleet digests
   stable across the registry refactor. *)
let pick_worker t =
  List.fold_left
    (fun best wid ->
      let w = Hashtbl.find t.workers wid in
      if not w.alive then best
      else
        let load = worker_load t wid in
        match best with Some (_, bl) when bl <= load -> best | _ -> Some (wid, load))
    None
    (List.rev t.worker_order)

let encode_corpus c =
  List.filter_map
    (fun prog ->
      match Wire.encode ~endianness:Eof_hw.Arch.Little (Prog.to_wire prog) with
      | Ok w -> Some w
      | Error _ -> None)
    (Corpus.progs c.corpus)

(* Hand every unowned, uncompleted lease to a surviving worker. Walks
   campaigns in submission order and shards in shard order, so the
   assignment stream is deterministic. A lease past its birth epoch is a
   reassignment (or a post-restart restart): the fresh farm starts from
   the tenant seed, so the hub replays its merged corpus as a bootstrap
   pull — re-executed discovery is deduplicated on arrival, but the
   seeds themselves must not be lost with the dead worker. *)
let assign_pending t =
  List.concat_map
    (fun id ->
      let c = campaign_exn t id in
      List.concat
        (Array.to_list
           (Array.mapi
              (fun k l ->
                if l.owner <> None || l.completed then []
                else
                  match pick_worker t with
                  | None -> []
                  | Some (wid, _) ->
                    l.owner <- Some wid;
                    if l.last_owner >= 0 then begin
                      t.reassignments <- t.reassignments + 1;
                      Obs.Counter.incr t.cnt_reassigned;
                      Obs.emit c.obs
                        (Obs.Event.Shard_reassigned
                           {
                             campaign = c.id;
                             shard = k;
                             epoch = l.epoch;
                             from_worker = l.last_owner;
                             to_worker = wid;
                           })
                    end;
                    let a = { l.assign with Shard.epoch = l.epoch } in
                    let bootstrap =
                      if l.epoch > l.assign.Shard.epoch && Corpus.size c.corpus > 0
                      then
                        [ To_worker
                            ( wid,
                              Protocol.Corpus_pull
                                { campaign = c.id; shard = k; progs = encode_corpus c }
                            );
                        ]
                      else []
                    in
                    To_worker (wid, Protocol.Shard_assign a) :: bootstrap)
              c.leases)))
    (List.rev t.order)

let hello t ~now ~name =
  if not (Tenant.name_ok name) then
    Error
      (Printf.sprintf
         "invalid worker name %S (1-64 chars, [A-Za-z0-9_-])" name)
  else begin
    let wid = t.next_wid in
    t.next_wid <- wid + 1;
    Hashtbl.replace t.workers wid { wid; wname = name; last_seen = now; alive = true };
    t.worker_order <- wid :: t.worker_order;
    Obs.emit t.obs (Obs.Event.Worker_joined { worker = wid; name });
    Ok
      ( wid,
        To_worker
          ( wid,
            Protocol.Worker_welcome
              { worker = wid; heartbeat_timeout_s = t.heartbeat_timeout } )
        :: assign_pending t )
  end

(* Declare a worker dead: revoke every active lease it holds (bumping
   the epoch first, so anything the zombie still flushes is fenced),
   notify it best-effort, and hand the shards to survivors. The work the
   dead worker had reported is discarded — shards restart from scratch
   on their new owner, which is what keeps the outcome independent of
   *when* the death was detected. *)
let worker_lost t ~now ~worker =
  ignore now;
  match Hashtbl.find_opt t.workers worker with
  | None -> []
  | Some w when not w.alive -> []
  | Some w ->
    w.alive <- false;
    let revokes = ref [] and nleases = ref 0 in
    List.iter
      (fun id ->
        let c = campaign_exn t id in
        Array.iteri
          (fun k l ->
            if l.owner = Some worker && not l.completed then begin
              incr nleases;
              t.payloads_lost <- t.payloads_lost + c.shard_exec.(k);
              Obs.Counter.add t.cnt_lost c.shard_exec.(k);
              t.recovery_lag <- Float.max t.recovery_lag c.shard_virtual.(k);
              c.shard_exec.(k) <- 0;
              c.shard_virtual.(k) <- 0.;
              l.owner <- None;
              l.last_owner <- worker;
              revokes :=
                To_worker
                  ( worker,
                    Protocol.Shard_revoke
                      { campaign = c.id; shard = k; epoch = l.epoch } )
                :: !revokes;
              l.epoch <- l.epoch + 1
            end)
          c.leases)
      (List.rev t.order);
    Obs.emit t.obs (Obs.Event.Worker_lost { worker; leases = !nleases });
    List.rev !revokes @ assign_pending t

(* Heartbeat-deadline scan plus a retry of any still-pending leases
   (shards orphaned while no survivor was available). Only workers
   holding at least one active lease are subject to the deadline: an
   idle worker has nothing the fleet is waiting on, and exempting it
   keeps the deterministic in-process driver free of spurious deaths. *)
let tick t ~now =
  let lost =
    List.filter
      (fun wid ->
        let w = Hashtbl.find t.workers wid in
        w.alive
        && now -. w.last_seen > t.heartbeat_timeout
        && worker_load t wid > 0)
      (List.rev t.worker_order)
  in
  List.concat_map (fun wid -> worker_lost t ~now ~worker:wid) lost
  @ assign_pending t

let worker_rows t =
  List.rev_map
    (fun wid ->
      let w = Hashtbl.find t.workers wid in
      {
        Protocol.worker = wid;
        name = w.wname;
        alive = w.alive;
        leases = worker_load t wid;
      })
    t.worker_order

(* --- campaign lifecycle ------------------------------------------------- *)

let submit t ~client (config : Tenant.config) =
  match Tenant.validate config with
  | Error reason -> [ To_client (client, Protocol.Reject { tenant = config.Tenant.tenant; reason }) ]
  | Ok () ->
    if
      Hashtbl.fold
        (fun _ c acc -> acc || c.config.Tenant.tenant = config.Tenant.tenant)
        t.campaigns false
    then
      [ To_client
          ( client,
            Protocol.Reject
              {
                tenant = config.Tenant.tenant;
                reason = "tenant already has a campaign";
              } );
      ]
    else (
      match t.resolve config.Tenant.os with
      | Error reason ->
        [ To_client (client, Protocol.Reject { tenant = config.Tenant.tenant; reason }) ]
      | Ok resolved ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let seed_rng = Eof_util.Rng.create config.Tenant.seed in
        let leases =
          Array.of_list
            (List.map
               (fun a ->
                 {
                   assign = a;
                   epoch = a.Shard.epoch;
                   owner = None;
                   completed = false;
                   last_owner = -1;
                 })
               (Shard.plan ~campaign:id config))
        in
        let c =
          {
            id;
            config;
            client;
            resolved;
            corpus = Corpus.create ~rng:seed_rng ();
            seen = Hashtbl.create 64;
            bitmap = None;
            leases;
            shard_exec = Array.make config.Tenant.farms 0;
            shard_virtual = Array.make config.Tenant.farms 0.;
            shards_done = 0;
            iterations_done = 0;
            crash_events = 0;
            crashes_rev = [];
            crash_keys = Hashtbl.create 8;
            syncs = 0;
            cross_in = 0;
            digest = None;
            obs = Obs.for_tenant t.obs config.Tenant.tenant;
          }
        in
        Obs.set_clock c.obs (fun () -> virtual_now c);
        Hashtbl.replace t.campaigns id c;
        t.order <- id :: t.order;
        journal_append t (Protocol.Submit config);
        message c
          (Printf.sprintf "campaign %d accepted: %s" id (Tenant.to_string config));
        To_client (client, Protocol.Accept { campaign = id; tenant = config.Tenant.tenant })
        :: assign_pending t)

(* Wind a campaign back to the moment of acceptance: fresh corpus from
   the tenant seed, empty coverage and crash state, every lease
   unowned at a bumped epoch. Used when a journal replay finds the
   campaign unfinished — the deterministic re-run of the whole campaign
   reaches the same digest the uninterrupted run would have, because
   hub-side accounting (seen-set dedup, bitmap union, absolute executed
   counters, crash dedup keys) is idempotent under re-delivery. The
   fleet-wide crash set is deliberately *not* wound back: re-reported
   crashes dedup into it. *)
let reset_campaign t c =
  if not t.replaying then begin
    let lost = Array.fold_left ( + ) 0 c.shard_exec in
    t.payloads_lost <- t.payloads_lost + lost;
    Obs.Counter.add t.cnt_lost lost;
    t.recovery_lag <-
      Array.fold_left Float.max t.recovery_lag c.shard_virtual
  end;
  c.corpus <- Corpus.create ~rng:(Eof_util.Rng.create c.config.Tenant.seed) ();
  Hashtbl.reset c.seen;
  c.bitmap <- None;
  Array.fill c.shard_exec 0 (Array.length c.shard_exec) 0;
  Array.fill c.shard_virtual 0 (Array.length c.shard_virtual) 0.;
  c.shards_done <- 0;
  c.iterations_done <- 0;
  c.crash_events <- 0;
  c.crashes_rev <- [];
  Hashtbl.reset c.crash_keys;
  c.syncs <- 0;
  c.cross_in <- 0;
  c.digest <- None;
  Array.iter
    (fun l ->
      l.epoch <- l.epoch + 1;
      l.owner <- None;
      l.completed <- false;
      l.last_owner <- -1)
    c.leases

(* One pushed program: admit into the hub's merged corpus (decoding
   through the campaign's own spec/table, so a malformed or
   wrong-personality program is rejected at the hub boundary), and if
   it is genuinely new, transplant it to every sibling shard — then
   retype it against every other running personality and relay the
   survivors to their shards too (cross-personality transplantation). *)
let corpus_push t c ~shard progs =
  let fresh =
    List.filter_map
      (fun p ->
        if Hashtbl.mem c.seen p then None
        else begin
          Hashtbl.replace c.seen p ();
          match Wire.decode ~endianness:Eof_hw.Arch.Little p with
          | Error _ -> None
          | Ok wire ->
            (match Prog.of_wire ~spec:c.resolved.spec ~table:c.resolved.table wire with
             | Error _ -> None
             | Ok prog ->
               let admitted =
                 Corpus.add c.corpus ~prog ~new_edges:1 ~crashed:false
               in
               if admitted then begin
                 Obs.emit c.obs
                   (Obs.Event.Corpus_admit
                      { new_edges = 1; size = Corpus.size c.corpus });
                 Some (p, prog)
               end
               else None)
        end)
      progs
  in
  (* A pull is only routed to a shard whose lease has a live owner; a
     pending (dead-owner) shard catches up through the bootstrap pull
     replayed at reassignment — the hub corpus already holds these
     programs. *)
  let route (d : campaign) k progs =
    match d.leases.(k).owner with
    | Some w when not d.leases.(k).completed ->
      t.transplants <- t.transplants + List.length progs;
      Some
        (To_worker (w, Protocol.Corpus_pull { campaign = d.id; shard = k; progs }))
    | _ -> None
  in
  if fresh = [] || not t.corpus_sync then []
  else begin
    let wires = List.map fst fresh in
    let same_personality =
      List.filter_map
        (fun k -> if k = shard then None else route c k wires)
        (List.init c.config.Tenant.farms Fun.id)
    in
    (* Cross-personality: retype each fresh program against every other
       running campaign's API surface. Only validate-clean survivors are
       admitted (into that campaign's hub corpus, deduped by their
       destination encoding) and relayed to all of its shards — there is
       no originating shard to exclude over there. Campaigns are visited
       in submission order, so relaying is deterministic. *)
    let cross_personality =
      List.concat_map
        (fun id ->
          let d = campaign_exn t id in
          if
            d.id = c.id || d.digest <> None
            || String.equal d.config.Tenant.os c.config.Tenant.os
            || d.cross_in >= cross_cap
          then []
          else begin
            let retyped =
              List.filter_map
                (fun (_, prog) ->
                  if d.cross_in >= cross_cap then None
                  else
                  match
                    Transplant.retype ~dst_spec:d.resolved.spec
                      ~dst_table:d.resolved.table prog
                  with
                  | None -> None
                  | Some o ->
                    (match
                       Wire.encode ~endianness:Eof_hw.Arch.Little
                         (Prog.to_wire o.Transplant.prog)
                     with
                     | Error _ -> None
                     | Ok w ->
                       if Hashtbl.mem d.seen w then None
                       else begin
                         Hashtbl.replace d.seen w ();
                         if
                           Corpus.add d.corpus ~prog:o.Transplant.prog
                             ~new_edges:1 ~crashed:false
                         then begin
                           d.cross_in <- d.cross_in + 1;
                           Obs.emit d.obs
                             (Obs.Event.Transplant_retyped
                                {
                                  from_os = c.config.Tenant.os;
                                  to_os = d.config.Tenant.os;
                                  kept = o.Transplant.kept;
                                  dropped = o.Transplant.dropped;
                                });
                           Some w
                         end
                         else None
                       end))
                fresh
            in
            if retyped = [] then []
            else
              List.filter_map
                (fun k -> route d k retyped)
                (List.init d.config.Tenant.farms Fun.id)
          end)
        (List.rev t.order)
    in
    same_personality @ cross_personality
  end

let crash_report t c crash =
  let key = Crash.dedup_key crash in
  (* Fleet-wide set: one entry per distinct bug across every tenant and
     farm; per-tenant attribution rides on the entry. *)
  (match Hashtbl.find_opt t.fleet_crashes key with
  | Some e ->
    if not (List.mem c.config.Tenant.tenant e.tenants) then
      e.tenants <- e.tenants @ [ c.config.Tenant.tenant ]
  | None ->
    Hashtbl.replace t.fleet_crashes key
      { crash; tenants = [ c.config.Tenant.tenant ] };
    t.fleet_order <- key :: t.fleet_order);
  (* Tenant-local set: same bug from two farms of one campaign is still
     one crash in the tenant's report. *)
  if not (Hashtbl.mem c.crash_keys key) then begin
    Hashtbl.replace c.crash_keys key ();
    c.crashes_rev <- crash :: c.crashes_rev;
    Obs.emit c.obs
      (Obs.Event.Crash_found
         { kind = Crash.kind_name crash.Crash.kind; operation = crash.Crash.operation })
  end

let heartbeat c ~shard ~executed ~coverage ~edge_capacity ~virtual_s ~bitmap =
  c.shard_exec.(shard) <- executed;
  c.shard_virtual.(shard) <- Float.max c.shard_virtual.(shard) virtual_s;
  let dst =
    match c.bitmap with
    | Some b -> b
    | None ->
      let b = Bitset.create edge_capacity in
      c.bitmap <- Some b;
      b
  in
  ignore (Bitset.union_into ~dst ~src:(Bitset.of_bytes ~capacity:edge_capacity bitmap));
  c.syncs <- c.syncs + 1;
  ignore coverage;
  Obs.emit c.obs
    (Obs.Event.Epoch_sync
       {
         sync = c.syncs;
         executed = Array.fold_left ( + ) 0 c.shard_exec;
         coverage = Bitset.count dst;
       })

let campaign_coverage c = match c.bitmap with Some b -> Bitset.count b | None -> 0

let tenant_digest c =
  Report.digest_line
    ~label:(Printf.sprintf "tenant %s" c.config.Tenant.tenant)
    ~coverage:(campaign_coverage c)
    ~bitmap:
      (match c.bitmap with Some b -> b | None -> Bitset.create 8)
    ~corpus:(Corpus.progs c.corpus)
    ~crashes:(List.rev c.crashes_rev)
    ~crash_events:c.crash_events
    ~executed:(Array.fold_left ( + ) 0 c.shard_exec)
    ~iterations_done:c.iterations_done

let shard_done c ~shard ~executed ~iterations ~crash_events ~virtual_s =
  c.shard_exec.(shard) <- executed;
  c.shard_virtual.(shard) <- Float.max c.shard_virtual.(shard) virtual_s;
  c.iterations_done <- c.iterations_done + iterations;
  c.crash_events <- c.crash_events + crash_events;
  c.shards_done <- c.shards_done + 1;
  if c.shards_done = c.config.Tenant.farms then begin
    let digest = tenant_digest c in
    c.digest <- Some digest;
    message c (Printf.sprintf "campaign %d done: %s" c.id digest);
    [ To_client
        ( c.client,
          Protocol.Campaign_done
            { campaign = c.id; tenant = c.config.Tenant.tenant; digest } );
    ]
  end
  else []

let status t =
  List.rev_map
    (fun id ->
      let c = campaign_exn t id in
      {
        Protocol.campaign = id;
        tenant = c.config.Tenant.tenant;
        os = c.config.Tenant.os;
        finished = c.digest <> None;
        shards = c.config.Tenant.farms;
        shards_done = c.shards_done;
        executed = Array.fold_left ( + ) 0 c.shard_exec;
        coverage = campaign_coverage c;
        crashes = List.length c.crashes_rev;
      })
    t.order

let cancel t id =
  match Hashtbl.find_opt t.campaigns id with
  | None -> []
  | Some c ->
    if c.digest <> None then []
    else
      List.filter_map
        (fun l ->
          match l.owner with
          | Some w when not l.completed ->
            Some (To_worker (w, Protocol.Cancel { campaign = id }))
          | _ -> None)
        (Array.to_list c.leases)

let handle_client t ~client msg =
  match msg with
  | Protocol.Submit config -> submit t ~client config
  | Protocol.Status_req ->
    [ To_client
        (client, Protocol.Status { rows = status t; workers = worker_rows t });
    ]
  | Protocol.Cancel { campaign } -> cancel t campaign
  | other ->
    [ To_client
        ( client,
          Protocol.Reject
            {
              tenant = "";
              reason =
                Printf.sprintf "unexpected client message %s" (Protocol.kind_name other);
            } );
    ]

(* The fence: traffic for a shard is only admitted when it names the
   current lease epoch and comes from the current owner. Everything
   else — a zombie flushing after its deadline fired, a frame for a
   campaign the hub never heard of (restarted hub, stale worker) — is
   dropped and counted, never raised on: remote workers are processes
   outside this one's fate-sharing domain. *)
let fence t ~worker ~campaign ~shard ~epoch ~kind =
  match Hashtbl.find_opt t.campaigns campaign with
  | Some c
    when shard >= 0
         && shard < Array.length c.leases
         && c.leases.(shard).epoch = epoch
         && c.leases.(shard).owner = Some worker ->
    Some c
  | maybe ->
    t.fenced <- t.fenced + 1;
    Obs.Counter.incr t.cnt_fenced;
    let bus = match maybe with Some c -> c.obs | None -> t.obs in
    Obs.emit bus (Obs.Event.Lease_fenced { campaign; shard; epoch; kind });
    None

let handle_worker t ~now ~worker msg =
  let alive =
    match Hashtbl.find_opt t.workers worker with
    | Some w when w.alive ->
      w.last_seen <- now;
      true
    | _ -> false
  in
  let ack = [ To_worker (worker, Protocol.Heartbeat_ack { worker }) ] in
  match msg with
  | Protocol.Worker_ping _ -> if alive then ack else []
  | Protocol.Corpus_push { campaign; shard; epoch; progs } -> (
    match fence t ~worker ~campaign ~shard ~epoch ~kind:(Protocol.kind_name msg) with
    | None -> []
    | Some c ->
      journal_append t msg;
      corpus_push t c ~shard progs)
  | Protocol.Crash_report { campaign; shard; epoch; crash } -> (
    match fence t ~worker ~campaign ~shard ~epoch ~kind:(Protocol.kind_name msg) with
    | None -> []
    | Some c ->
      journal_append t msg;
      crash_report t c crash;
      [])
  | Protocol.Heartbeat
      { campaign; shard; epoch; executed; coverage; edge_capacity; virtual_s; bitmap }
    -> (
    match fence t ~worker ~campaign ~shard ~epoch ~kind:(Protocol.kind_name msg) with
    | None -> []
    | Some c ->
      journal_append t msg;
      heartbeat c ~shard ~executed ~coverage ~edge_capacity ~virtual_s ~bitmap;
      ack)
  | Protocol.Shard_done { campaign; shard; epoch; executed; iterations; crash_events; virtual_s }
    -> (
    match fence t ~worker ~campaign ~shard ~epoch ~kind:(Protocol.kind_name msg) with
    | None -> []
    | Some c ->
      let l = c.leases.(shard) in
      if l.completed then []
      else begin
        journal_append t msg;
        l.completed <- true;
        l.owner <- None;
        shard_done c ~shard ~executed ~iterations ~crash_events ~virtual_s
      end)
  | other ->
    Obs.message t.obs Obs.Level.Warn
      (Printf.sprintf "hub: dropping unexpected worker message %s"
         (Protocol.kind_name other));
    []

(* --- journal replay ----------------------------------------------------- *)

(* Re-apply one journaled farm frame. No fencing (the frame was fenced
   when it was first accepted) and no owners exist yet; the lease epoch
   is tracked as a high-water mark so post-replay epochs always exceed
   anything a pre-restart zombie could still name. *)
let replay_frame t msg =
  let lease_of campaign shard =
    match Hashtbl.find_opt t.campaigns campaign with
    | Some c when shard >= 0 && shard < Array.length c.leases ->
      let l = c.leases.(shard) in
      Some (c, l)
    | _ -> None
  in
  match msg with
  | Protocol.Submit config -> ignore (submit t ~client:0 config : action list)
  | Protocol.Accept { campaign; _ } -> (
    (* the restart marker: this campaign was reset by a previous
       replay — wind it back exactly as the live hub did *)
    match Hashtbl.find_opt t.campaigns campaign with
    | Some c -> reset_campaign t c
    | None -> ())
  | Protocol.Corpus_push { campaign; shard; epoch; progs } -> (
    match lease_of campaign shard with
    | None -> ()
    | Some (c, l) ->
      if epoch > l.epoch then l.epoch <- epoch;
      ignore (corpus_push t c ~shard progs : action list))
  | Protocol.Crash_report { campaign; shard; epoch; crash } -> (
    match lease_of campaign shard with
    | None -> ()
    | Some (c, l) ->
      if epoch > l.epoch then l.epoch <- epoch;
      crash_report t c crash)
  | Protocol.Heartbeat
      { campaign; shard; epoch; executed; coverage; edge_capacity; virtual_s; bitmap }
    -> (
    match lease_of campaign shard with
    | None -> ()
    | Some (c, l) ->
      if epoch > l.epoch then l.epoch <- epoch;
      heartbeat c ~shard ~executed ~coverage ~edge_capacity ~virtual_s ~bitmap)
  | Protocol.Shard_done { campaign; shard; epoch; executed; iterations; crash_events; virtual_s }
    -> (
    match lease_of campaign shard with
    | None -> ()
    | Some (c, l) ->
      if epoch > l.epoch then l.epoch <- epoch;
      if not l.completed then begin
        l.completed <- true;
        ignore
          (shard_done c ~shard ~executed ~iterations ~crash_events ~virtual_s
            : action list)
      end)
  | _ -> ()

let create ?obs ?(corpus_sync = true) ?journal ?(heartbeat_timeout = 30.) ~resolve ()
    =
  if heartbeat_timeout <= 0. then
    invalid_arg "Hub.create: heartbeat_timeout must be positive";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let t =
    {
      resolve;
      corpus_sync;
      heartbeat_timeout;
      obs;
      campaigns = Hashtbl.create 8;
      order = [];
      next_id = 1;
      workers = Hashtbl.create 8;
      worker_order = [];
      next_wid = 0;
      fleet_crashes = Hashtbl.create 16;
      fleet_order = [];
      transplants = 0;
      journal = None;
      replaying = false;
      reassignments = 0;
      fenced = 0;
      payloads_lost = 0;
      recovery_lag = 0.;
      replayed_frames = 0;
      cnt_reassigned = Obs.Counter.make obs "hub.reassignments";
      cnt_fenced = Obs.Counter.make obs "hub.fenced";
      cnt_lost = Obs.Counter.make obs "hub.payloads-lost";
    }
  in
  (match journal with
  | None -> ()
  | Some path ->
    if Sys.file_exists path then begin
      match Journal.replay path with
      | Error msg -> invalid_arg (Printf.sprintf "Hub.create: journal %s: %s" path msg)
      | Ok frames ->
        t.replaying <- true;
        List.iter (replay_frame t) frames;
        t.replaying <- false;
        t.replayed_frames <- List.length frames
    end;
    (match Journal.open_ path with
    | Error msg -> invalid_arg (Printf.sprintf "Hub.create: journal %s: %s" path msg)
    | Ok j -> t.journal <- Some j);
    (* Campaigns the replay left unfinished cannot be resumed mid-shard —
       the workers' in-memory farm state died with the old process.
       Reset them for a deterministic re-run, and append the restart
       marker so a *second* replay winds them back at the same point in
       the frame stream. *)
    let reset =
      List.fold_left
        (fun n id ->
          let c = campaign_exn t id in
          if c.digest = None then begin
            reset_campaign t c;
            journal_append t
              (Protocol.Accept { campaign = c.id; tenant = c.config.Tenant.tenant });
            n + 1
          end
          else n)
        0 (List.rev t.order)
    in
    if t.replayed_frames > 0 then
      Obs.emit t.obs
        (Obs.Event.Journal_replay
           {
             frames = t.replayed_frames;
             campaigns = List.length t.order;
             reset;
           }));
  t

let close t =
  (match t.journal with Some j -> Journal.close j | None -> ());
  t.journal <- None

(* --- read-side ---------------------------------------------------------- *)

let all_done t =
  t.order <> []
  && List.for_all (fun id -> (campaign_exn t id).digest <> None) t.order

let tenants t =
  List.rev_map (fun id -> (campaign_exn t id).config.Tenant.tenant) t.order

let tenant_digests t =
  List.rev
    (List.filter_map
       (fun id ->
         let c = campaign_exn t id in
         Option.map (fun d -> (c.config.Tenant.tenant, d)) c.digest)
       t.order)

let fleet_digest t = Report.fleet_digest (tenant_digests t)

let crashes_deduped t = Hashtbl.length t.fleet_crashes

let fleet_crashes t =
  List.rev_map
    (fun key ->
      let e = Hashtbl.find t.fleet_crashes key in
      (e.crash, e.tenants))
    t.fleet_order

let transplants t = t.transplants

let heartbeat_timeout t = t.heartbeat_timeout

let reassignments t = t.reassignments

let fenced t = t.fenced

let payloads_lost t = t.payloads_lost

let recovery_lag t = t.recovery_lag

let replayed_frames t = t.replayed_frames
