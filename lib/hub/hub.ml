module Obs = Eof_obs.Obs
module Bitset = Eof_util.Bitset
module Wire = Eof_agent.Wire
module Corpus = Eof_core.Corpus
module Crash = Eof_core.Crash
module Prog = Eof_core.Prog
module Report = Eof_core.Report
module Transplant = Eof_core.Transplant

type resolved = { spec : Eof_spec.Ast.t; table : Eof_rtos.Api.table }

type action = To_client of int * Protocol.t | To_farm of int * Protocol.t

type campaign = {
  id : int;
  config : Tenant.config;
  client : int;
  resolved : resolved;
  corpus : Corpus.t;  (** hub-side merged view of the tenant's corpus *)
  seen : (string, unit) Hashtbl.t;
      (** wire encodings already known, so a pushed program is
          broadcast at most once and pulls never echo back *)
  mutable bitmap : Bitset.t option;  (** allocated at the first heartbeat *)
  shard_exec : int array;
  shard_virtual : float array;
  mutable shards_done : int;
  mutable iterations_done : int;
  mutable crash_events : int;
  mutable crashes_rev : Crash.t list;  (** tenant-deduped, discovery order *)
  crash_keys : (string, unit) Hashtbl.t;
  mutable syncs : int;
  mutable cross_in : int;
      (** retyped seeds adopted from other personalities; capped, see
          {!cross_cap} *)
  mutable digest : string option;
  obs : Obs.t;  (** tenant-scoped handle, clocked by the campaign *)
}

(* Same-personality shards exchange everything — their coverage maps
   are directly comparable. A cross-personality transplant is
   speculative: the destination has never judged it against its own
   coverage, so an unbounded relay drowns the destination's selection
   lottery in foreign seeds. Each campaign therefore adopts at most
   this many retyped seeds — a bootstrap set, not a firehose. *)
let cross_cap = 32

type fleet_entry = { crash : Crash.t; mutable tenants : string list }

type t = {
  farms : int;
  resolve : string -> (resolved, string) result;
  corpus_sync : bool;
  obs : Obs.t;
  campaigns : (int, campaign) Hashtbl.t;
  mutable order : int list;  (** campaign ids, submission order (reversed) *)
  mutable next_id : int;
  fleet_crashes : (string, fleet_entry) Hashtbl.t;
  mutable fleet_order : string list;  (** dedup keys, discovery order (reversed) *)
  mutable transplants : int;  (** programs relayed shard-to-shard *)
}

let create ?obs ?(corpus_sync = true) ~farms ~resolve () =
  if farms < 1 then invalid_arg "Hub.create: farms must be >= 1";
  {
    farms;
    resolve;
    corpus_sync;
    obs = (match obs with Some o -> o | None -> Obs.create ());
    campaigns = Hashtbl.create 8;
    order = [];
    next_id = 1;
    fleet_crashes = Hashtbl.create 16;
    fleet_order = [];
    transplants = 0;
  }

(* Shard k of any campaign lives on farm [k mod farms] — the inverse of
   this mapping is what routes per-shard traffic. *)
let farm_of t shard = shard mod t.farms

let campaign_exn t id =
  match Hashtbl.find_opt t.campaigns id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Hub: unknown campaign %d" id)

let virtual_now c = Array.fold_left Float.max 0. c.shard_virtual

let message (c : campaign) text = Obs.message c.obs Obs.Level.Info text

let submit t ~client (config : Tenant.config) =
  match Tenant.validate config with
  | Error reason -> [ To_client (client, Protocol.Reject { tenant = config.Tenant.tenant; reason }) ]
  | Ok () ->
    if
      Hashtbl.fold
        (fun _ c acc -> acc || c.config.Tenant.tenant = config.Tenant.tenant)
        t.campaigns false
    then
      [ To_client
          ( client,
            Protocol.Reject
              {
                tenant = config.Tenant.tenant;
                reason = "tenant already has a campaign";
              } );
      ]
    else (
      match t.resolve config.Tenant.os with
      | Error reason ->
        [ To_client (client, Protocol.Reject { tenant = config.Tenant.tenant; reason }) ]
      | Ok resolved ->
        let id = t.next_id in
        t.next_id <- id + 1;
        let seed_rng = Eof_util.Rng.create config.Tenant.seed in
        let c =
          {
            id;
            config;
            client;
            resolved;
            corpus = Corpus.create ~rng:seed_rng ();
            seen = Hashtbl.create 64;
            bitmap = None;
            shard_exec = Array.make config.Tenant.farms 0;
            shard_virtual = Array.make config.Tenant.farms 0.;
            shards_done = 0;
            iterations_done = 0;
            crash_events = 0;
            crashes_rev = [];
            crash_keys = Hashtbl.create 8;
            syncs = 0;
            cross_in = 0;
            digest = None;
            obs = Obs.for_tenant t.obs config.Tenant.tenant;
          }
        in
        Obs.set_clock c.obs (fun () -> virtual_now c);
        Hashtbl.replace t.campaigns id c;
        t.order <- id :: t.order;
        message c
          (Printf.sprintf "campaign %d accepted: %s" id (Tenant.to_string config));
        let assigns =
          List.map
            (fun (a : Shard.assignment) ->
              To_farm (farm_of t a.Shard.shard, Protocol.Shard_assign a))
            (Shard.plan ~campaign:id config)
        in
        To_client (client, Protocol.Accept { campaign = id; tenant = config.Tenant.tenant })
        :: assigns)

(* One pushed program: admit into the hub's merged corpus (decoding
   through the campaign's own spec/table, so a malformed or
   wrong-personality program is rejected at the hub boundary), and if
   it is genuinely new, transplant it to every sibling shard — then
   retype it against every other running personality and relay the
   survivors to their shards too (cross-personality transplantation). *)
let corpus_push t c ~shard progs =
  let fresh =
    List.filter_map
      (fun p ->
        if Hashtbl.mem c.seen p then None
        else begin
          Hashtbl.replace c.seen p ();
          match Wire.decode ~endianness:Eof_hw.Arch.Little p with
          | Error _ -> None
          | Ok wire ->
            (match Prog.of_wire ~spec:c.resolved.spec ~table:c.resolved.table wire with
             | Error _ -> None
             | Ok prog ->
               let admitted =
                 Corpus.add c.corpus ~prog ~new_edges:1 ~crashed:false
               in
               if admitted then begin
                 Obs.emit c.obs
                   (Obs.Event.Corpus_admit
                      { new_edges = 1; size = Corpus.size c.corpus });
                 Some (p, prog)
               end
               else None)
        end)
      progs
  in
  if fresh = [] || not t.corpus_sync then []
  else begin
    let wires = List.map fst fresh in
    let same_personality =
      List.filter_map
        (fun k ->
          if k = shard then None
          else begin
            t.transplants <- t.transplants + List.length wires;
            Some
              (To_farm
                 ( farm_of t k,
                   Protocol.Corpus_pull { campaign = c.id; shard = k; progs = wires }
                 ))
          end)
        (List.init c.config.Tenant.farms Fun.id)
    in
    (* Cross-personality: retype each fresh program against every other
       running campaign's API surface. Only validate-clean survivors are
       admitted (into that campaign's hub corpus, deduped by their
       destination encoding) and relayed to all of its shards — there is
       no originating shard to exclude over there. Campaigns are visited
       in submission order, so relaying is deterministic. *)
    let cross_personality =
      List.concat_map
        (fun id ->
          let d = campaign_exn t id in
          if
            d.id = c.id || d.digest <> None
            || String.equal d.config.Tenant.os c.config.Tenant.os
            || d.cross_in >= cross_cap
          then []
          else begin
            let retyped =
              List.filter_map
                (fun (_, prog) ->
                  if d.cross_in >= cross_cap then None
                  else
                  match
                    Transplant.retype ~dst_spec:d.resolved.spec
                      ~dst_table:d.resolved.table prog
                  with
                  | None -> None
                  | Some o ->
                    (match
                       Wire.encode ~endianness:Eof_hw.Arch.Little
                         (Prog.to_wire o.Transplant.prog)
                     with
                     | Error _ -> None
                     | Ok w ->
                       if Hashtbl.mem d.seen w then None
                       else begin
                         Hashtbl.replace d.seen w ();
                         if
                           Corpus.add d.corpus ~prog:o.Transplant.prog
                             ~new_edges:1 ~crashed:false
                         then begin
                           d.cross_in <- d.cross_in + 1;
                           Obs.emit d.obs
                             (Obs.Event.Transplant_retyped
                                {
                                  from_os = c.config.Tenant.os;
                                  to_os = d.config.Tenant.os;
                                  kept = o.Transplant.kept;
                                  dropped = o.Transplant.dropped;
                                });
                           Some w
                         end
                         else None
                       end))
                fresh
            in
            if retyped = [] then []
            else
              List.map
                (fun k ->
                  t.transplants <- t.transplants + List.length retyped;
                  To_farm
                    ( farm_of t k,
                      Protocol.Corpus_pull
                        { campaign = d.id; shard = k; progs = retyped } ))
                (List.init d.config.Tenant.farms Fun.id)
          end)
        (List.rev t.order)
    in
    same_personality @ cross_personality
  end

let crash_report t c crash =
  let key = Crash.dedup_key crash in
  (* Fleet-wide set: one entry per distinct bug across every tenant and
     farm; per-tenant attribution rides on the entry. *)
  (match Hashtbl.find_opt t.fleet_crashes key with
  | Some e ->
    if not (List.mem c.config.Tenant.tenant e.tenants) then
      e.tenants <- e.tenants @ [ c.config.Tenant.tenant ]
  | None ->
    Hashtbl.replace t.fleet_crashes key
      { crash; tenants = [ c.config.Tenant.tenant ] };
    t.fleet_order <- key :: t.fleet_order);
  (* Tenant-local set: same bug from two farms of one campaign is still
     one crash in the tenant's report. *)
  if not (Hashtbl.mem c.crash_keys key) then begin
    Hashtbl.replace c.crash_keys key ();
    c.crashes_rev <- crash :: c.crashes_rev;
    Obs.emit c.obs
      (Obs.Event.Crash_found
         { kind = Crash.kind_name crash.Crash.kind; operation = crash.Crash.operation })
  end

let heartbeat t c ~shard ~executed ~coverage ~edge_capacity ~virtual_s ~bitmap =
  ignore t;
  c.shard_exec.(shard) <- executed;
  c.shard_virtual.(shard) <- Float.max c.shard_virtual.(shard) virtual_s;
  let dst =
    match c.bitmap with
    | Some b -> b
    | None ->
      let b = Bitset.create edge_capacity in
      c.bitmap <- Some b;
      b
  in
  ignore (Bitset.union_into ~dst ~src:(Bitset.of_bytes ~capacity:edge_capacity bitmap));
  c.syncs <- c.syncs + 1;
  ignore coverage;
  Obs.emit c.obs
    (Obs.Event.Epoch_sync
       {
         sync = c.syncs;
         executed = Array.fold_left ( + ) 0 c.shard_exec;
         coverage = Bitset.count dst;
       })

let campaign_coverage c = match c.bitmap with Some b -> Bitset.count b | None -> 0

let tenant_digest c =
  Report.digest_line
    ~label:(Printf.sprintf "tenant %s" c.config.Tenant.tenant)
    ~coverage:(campaign_coverage c)
    ~bitmap:
      (match c.bitmap with Some b -> b | None -> Bitset.create 8)
    ~corpus:(Corpus.progs c.corpus)
    ~crashes:(List.rev c.crashes_rev)
    ~crash_events:c.crash_events
    ~executed:(Array.fold_left ( + ) 0 c.shard_exec)
    ~iterations_done:c.iterations_done

let shard_done t c ~shard ~executed ~iterations ~crash_events ~virtual_s =
  ignore t;
  c.shard_exec.(shard) <- executed;
  c.shard_virtual.(shard) <- Float.max c.shard_virtual.(shard) virtual_s;
  c.iterations_done <- c.iterations_done + iterations;
  c.crash_events <- c.crash_events + crash_events;
  c.shards_done <- c.shards_done + 1;
  if c.shards_done = c.config.Tenant.farms then begin
    let digest = tenant_digest c in
    c.digest <- Some digest;
    message c (Printf.sprintf "campaign %d done: %s" c.id digest);
    [ To_client
        ( c.client,
          Protocol.Campaign_done
            { campaign = c.id; tenant = c.config.Tenant.tenant; digest } );
    ]
  end
  else []

let status t =
  List.rev_map
    (fun id ->
      let c = campaign_exn t id in
      {
        Protocol.campaign = id;
        tenant = c.config.Tenant.tenant;
        os = c.config.Tenant.os;
        finished = c.digest <> None;
        shards = c.config.Tenant.farms;
        shards_done = c.shards_done;
        executed = Array.fold_left ( + ) 0 c.shard_exec;
        coverage = campaign_coverage c;
        crashes = List.length c.crashes_rev;
      })
    t.order

let cancel t id =
  match Hashtbl.find_opt t.campaigns id with
  | None -> []
  | Some c ->
    if c.digest <> None then []
    else
      List.filter_map
        (fun k ->
          Some (To_farm (farm_of t k, Protocol.Cancel { campaign = id })))
        (List.init c.config.Tenant.farms Fun.id)

let handle_client t ~client msg =
  match msg with
  | Protocol.Submit config -> submit t ~client config
  | Protocol.Status_req -> [ To_client (client, Protocol.Status (status t)) ]
  | Protocol.Cancel { campaign } -> cancel t campaign
  | other ->
    [ To_client
        ( client,
          Protocol.Reject
            {
              tenant = "";
              reason =
                Printf.sprintf "unexpected client message %s" (Protocol.kind_name other);
            } );
    ]

let handle_farm t ~farm msg =
  ignore farm;
  match msg with
  | Protocol.Corpus_push { campaign; shard; progs } ->
    corpus_push t (campaign_exn t campaign) ~shard progs
  | Protocol.Crash_report { campaign; shard = _; crash } ->
    crash_report t (campaign_exn t campaign) crash;
    []
  | Protocol.Heartbeat { campaign; shard; executed; coverage; edge_capacity; virtual_s; bitmap } ->
    heartbeat t (campaign_exn t campaign) ~shard ~executed ~coverage ~edge_capacity
      ~virtual_s ~bitmap;
    []
  | Protocol.Shard_done { campaign; shard; executed; iterations; crash_events; virtual_s } ->
    shard_done t (campaign_exn t campaign) ~shard ~executed ~iterations ~crash_events
      ~virtual_s
  | other ->
    invalid_arg
      (Printf.sprintf "Hub: unexpected farm message %s" (Protocol.kind_name other))

let all_done t =
  t.order <> []
  && List.for_all (fun id -> (campaign_exn t id).digest <> None) t.order

let tenant_digests t =
  List.rev
    (List.filter_map
       (fun id ->
         let c = campaign_exn t id in
         Option.map (fun d -> (c.config.Tenant.tenant, d)) c.digest)
       t.order)

let fleet_digest t = Report.fleet_digest (tenant_digests t)

let crashes_deduped t = Hashtbl.length t.fleet_crashes

let fleet_crashes t =
  List.rev_map
    (fun key ->
      let e = Hashtbl.find t.fleet_crashes key in
      (e.crash, e.tenants))
    t.fleet_order

let transplants t = t.transplants
