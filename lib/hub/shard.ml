module Rng = Eof_util.Rng

type assignment = {
  campaign : int;
  tenant : string;
  os : string;
  shard : int;
  shards : int;
  epoch : int;
  seed : int64;
  iterations : int;
  boards : int;
  sync_every : int;
  backend : Eof_agent.Machine.backend;
  reset_policy : Eof_core.Campaign.reset_policy;
  schedule : Eof_core.Corpus.schedule;
  gen_mode : Eof_core.Gen.mode;
}

(* Shard 0 keeps the tenant's seed (a one-farm campaign is exactly the
   plain farm run), the others derive statistically independent streams
   — the same golden-ratio mixing {!Eof_core.Farm} uses one level down
   for its boards, with a distinct multiplier so a shard's boards never
   collide with another shard's seed. *)
let shard_seed base k =
  if k = 0 then base
  else
    Rng.next64
      (Rng.create (Int64.add base (Int64.mul (Int64.of_int k) 0xBF58476D1CE4E5B9L)))

(* Round-robin budget split: the first (total mod shards) shards carry
   the remainder, mirroring the farm's board split. *)
let shard_iterations ~total ~shards k =
  (total / shards) + (if k < total mod shards then 1 else 0)

let plan ~campaign (c : Tenant.config) =
  List.init c.Tenant.farms (fun k ->
      {
        campaign;
        tenant = c.Tenant.tenant;
        os = c.Tenant.os;
        shard = k;
        shards = c.Tenant.farms;
        epoch = 1;
        seed = shard_seed c.Tenant.seed k;
        iterations = shard_iterations ~total:c.Tenant.iterations ~shards:c.Tenant.farms k;
        boards = c.Tenant.boards;
        sync_every = c.Tenant.sync_every;
        backend = c.Tenant.backend;
        reset_policy = c.Tenant.reset_policy;
        schedule = c.Tenant.schedule;
        gen_mode = c.Tenant.gen_mode;
      })
