(** Socket transport for the hub: a Unix-domain-socket server whose
    workers are {e separate processes}.

    One socket serves both populations: the first frame on a connection
    classifies it — [Worker_hello] makes it a worker endpoint (the hub
    leases shards to it), anything else a client (Submit / Status_req /
    Cancel). The hub state machine is exactly {!Hub}; this module is
    its wall-clock transport: the serve loop ticks the hub's heartbeat
    deadlines between selects, and a worker connection's EOF revokes
    its leases immediately.

    All framing IO here survives short reads, short writes, EINTR and
    EAGAIN — a frame boundary never assumes a syscall boundary. *)

val serve :
  ?obs:Eof_obs.Obs.t ->
  ?corpus_sync:bool ->
  ?max_campaigns:int ->
  ?journal:string ->
  ?heartbeat_timeout:float ->
  socket:string ->
  resolve:(string -> (Worker.target, string) result) ->
  unit ->
  (unit, string) result
(** Bind [socket] (an existing stale socket file is replaced), serve
    until [max_campaigns] campaigns have completed ([None] = forever),
    then clean up the socket file. The hub hosts no farms: campaigns
    only progress while at least one {!worker} process is connected.
    [journal]/[heartbeat_timeout] are passed to {!Hub.create} — with a
    journal, a restarted server resumes its campaigns. *)

val worker :
  ?obs:Eof_obs.Obs.t ->
  socket:string ->
  name:string ->
  resolve:(string -> (Worker.target, string) result) ->
  unit ->
  (unit, string) result
(** The [eof worker] process body: connect (retrying while the hub
    comes up), register under [name], then serve leases until the hub
    closes the connection (normal shutdown, [Ok ()]). Pings at a third
    of the negotiated heartbeat deadline when otherwise silent. *)

val submit : socket:string -> Tenant.config -> (string, string) result
(** Connect, submit, block until the campaign finishes; returns the
    tenant's campaign digest, or the rejection/transport error. *)

val status :
  socket:string ->
  (Protocol.status_row list * Protocol.worker_row list, string) result
(** One status round trip: per-campaign progress rows plus the worker
    registry (liveness and lease counts). *)
