(** Socket transport for the hub: a Unix-domain-socket server for
    clients, with the farms kept in-process.

    The hub state machine and the workers are exactly {!Hub} and
    {!Worker}; only client traffic crosses the socket (framed
    {!Protocol} messages). One select loop multiplexes accepting
    connections and reading submissions with stepping the fleet, one
    payload on the globally earliest worker per turn, so campaigns keep
    executing while clients come and go. *)

val serve :
  ?obs:Eof_obs.Obs.t ->
  ?corpus_sync:bool ->
  ?max_campaigns:int ->
  socket:string ->
  farms:int ->
  resolve:(string -> (Worker.target, string) result) ->
  unit ->
  (unit, string) result
(** Bind [socket] (an existing stale socket file is replaced), serve
    until [max_campaigns] campaigns have completed ([None] = forever),
    then clean up the socket file. *)

val submit : socket:string -> Tenant.config -> (string, string) result
(** Connect, submit, block until the campaign finishes; returns the
    tenant's campaign digest, or the rejection/transport error. *)

val status : socket:string -> (Protocol.status_row list, string) result
