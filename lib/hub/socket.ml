module Obs = Eof_obs.Obs

(* Socket mode keeps the farms in-process — the hub owns its workers
   exactly as in {!Inproc} — and serves only {e clients} over a Unix
   domain socket: Submit / Status_req / Cancel in, Accept / Reject /
   Status / Campaign_done out. One select loop multiplexes client I/O
   with worker stepping, so a fuzzing fleet keeps executing payloads
   while submissions arrive. *)

type client = {
  fd : Unix.file_descr;
  id : int;
  buf : Buffer.t;
  mutable closed : bool;
}

let send_frame cl msg =
  if not cl.closed then begin
    let frame = Protocol.encode msg in
    try
      let n = Unix.write_substring cl.fd frame 0 (String.length frame) in
      if n <> String.length frame then cl.closed <- true
    with Unix.Unix_error _ -> cl.closed <- true
  end

(* Extract every complete frame from the client's accumulation buffer,
   leaving any partial tail in place. *)
let take_frames cl =
  let rec go acc =
    let buffered = Buffer.contents cl.buf in
    match Protocol.frame_size buffered with
    | Error _ ->
      cl.closed <- true;
      List.rev acc
    | Ok None -> List.rev acc
    | Ok (Some size) when String.length buffered < size -> List.rev acc
    | Ok (Some size) ->
      let frame = String.sub buffered 0 size in
      Buffer.clear cl.buf;
      Buffer.add_substring cl.buf buffered size (String.length buffered - size);
      (match Protocol.decode frame with
      | Ok msg -> go (msg :: acc)
      | Error _ ->
        cl.closed <- true;
        List.rev acc)
  in
  go []

let serve ?obs ?corpus_sync ?max_campaigns ~socket ~farms
    ~(resolve : string -> (Worker.target, string) result) () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let hub_resolve os =
    Result.map
      (fun (tg : Worker.target) ->
        { Hub.spec = tg.Worker.spec; table = tg.Worker.table })
      (resolve os)
  in
  let hub = Hub.create ~obs ?corpus_sync ~farms ~resolve:hub_resolve () in
  let workers = Array.init farms (fun id -> Worker.create ~obs ~id ~resolve ()) in
  let farm_q = Array.init farms (fun _ -> Queue.create ()) in
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let clients : (int, client) Hashtbl.t = Hashtbl.create 8 in
  let next_client = ref 0 in
  let campaigns_done = ref 0 in
  let dispatch_ref = ref (fun _ -> ()) in
  let deliver_farm f msg =
    Queue.add msg farm_q.(f);
    while not (Queue.is_empty farm_q.(f)) do
      let m = Queue.take farm_q.(f) in
      List.iter
        (fun r -> !dispatch_ref (Hub.handle_farm hub ~farm:f r))
        (Worker.handle workers.(f) m)
    done
  in
  let dispatch actions =
    List.iter
      (function
        | Hub.To_farm (f, msg) -> deliver_farm f msg
        | Hub.To_client (id, msg) ->
          (match msg with
          | Protocol.Campaign_done _ -> incr campaigns_done
          | _ -> ());
          (match Hashtbl.find_opt clients id with
          | Some cl -> send_frame cl msg
          | None -> ()))
      actions
  in
  dispatch_ref := dispatch;
  let result =
    try
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener 16;
      let finished () =
        match max_campaigns with
        | Some n -> !campaigns_done >= n
        | None -> false
      in
      while not (finished ()) do
        let busy =
          Array.exists (fun w -> not (Worker.idle w)) workers
        in
        let fds =
          listener
          :: Hashtbl.fold (fun _ cl acc -> if cl.closed then acc else cl.fd :: acc)
               clients []
        in
        let readable, _, _ =
          (* Block only when the fleet is idle; otherwise poll so the
             workers keep executing payloads between client bytes. *)
          Unix.select fds [] [] (if busy then 0. else 0.05)
        in
        List.iter
          (fun fd ->
            if fd = listener then begin
              let cfd, _ = Unix.accept listener in
              let id = !next_client in
              incr next_client;
              Hashtbl.replace clients id
                { fd = cfd; id; buf = Buffer.create 256; closed = false }
            end
            else
              Hashtbl.iter
                (fun _ cl ->
                  if cl.fd = fd && not cl.closed then begin
                    let chunk = Bytes.create 65536 in
                    let n =
                      try Unix.read cl.fd chunk 0 65536
                      with Unix.Unix_error _ -> 0
                    in
                    if n = 0 then cl.closed <- true
                    else begin
                      Buffer.add_subbytes cl.buf chunk 0 n;
                      List.iter
                        (fun msg ->
                          dispatch (Hub.handle_client hub ~client:cl.id msg))
                        (take_frames cl)
                    end
                  end)
                clients)
          readable;
        Hashtbl.iter
          (fun id cl ->
            if cl.closed then begin
              (try Unix.close cl.fd with Unix.Unix_error _ -> ());
              Hashtbl.remove clients id
            end)
          clients;
        (* One payload on the globally earliest worker per loop turn —
           short enough to stay responsive to the socket. *)
        let best = ref None in
        Array.iteri
          (fun i w ->
            match Worker.next_cpu_s w with
            | None -> ()
            | Some v ->
              (match !best with
              | Some (_, bv) when bv <= v -> ()
              | _ -> best := Some (i, v)))
          workers;
        match !best with
        | None -> ()
        | Some (i, _) ->
          List.iter
            (fun r -> dispatch (Hub.handle_farm hub ~farm:i r))
            (Worker.step workers.(i))
      done;
      Ok ()
    with
    | Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "serve: %s: %s" fn (Unix.error_message err))
  in
  Hashtbl.iter (fun _ cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ()) clients;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  result

(* --- client side -------------------------------------------------------- *)

let with_connection socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> f fd
      | exception Unix.Unix_error (err, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message err)))

let write_frame fd msg =
  let frame = Protocol.encode msg in
  let n = Unix.write_substring fd frame 0 (String.length frame) in
  if n <> String.length frame then Error "short write" else Ok ()

let read_frame fd buf =
  let rec go () =
    let buffered = Buffer.contents buf in
    match Protocol.frame_size buffered with
    | Error e -> Error (Protocol.error_to_string e)
    | Ok (Some size) when String.length buffered >= size ->
      let frame = String.sub buffered 0 size in
      Buffer.clear buf;
      Buffer.add_substring buf buffered size (String.length buffered - size);
      Result.map_error Protocol.error_to_string (Protocol.decode frame)
    | Ok _ ->
      let chunk = Bytes.create 65536 in
      let n = Unix.read fd chunk 0 65536 in
      if n = 0 then Error "connection closed by hub"
      else begin
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      end
  in
  try go () with Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let submit ~socket config =
  with_connection socket (fun fd ->
      match write_frame fd (Protocol.Submit config) with
      | Error e -> Error e
      | Ok () ->
        let buf = Buffer.create 256 in
        let rec wait () =
          match read_frame fd buf with
          | Error e -> Error e
          | Ok (Protocol.Reject { reason; _ }) -> Error reason
          | Ok (Protocol.Accept _) -> wait ()
          | Ok (Protocol.Campaign_done { digest; _ }) -> Ok digest
          | Ok other ->
            Error
              (Printf.sprintf "unexpected reply %s" (Protocol.kind_name other))
        in
        wait ())

let status ~socket =
  with_connection socket (fun fd ->
      match write_frame fd Protocol.Status_req with
      | Error e -> Error e
      | Ok () ->
        let buf = Buffer.create 256 in
        (match read_frame fd buf with
        | Error e -> Error e
        | Ok (Protocol.Status rows) -> Ok rows
        | Ok other ->
          Error (Printf.sprintf "unexpected reply %s" (Protocol.kind_name other))))
