module Obs = Eof_obs.Obs

(* Socket mode is the detached deployment: the hub process owns no
   farms at all. Workers are separate [eof worker] processes that
   connect to the same Unix domain socket as clients; the first frame
   on a connection classifies it ([Worker_hello] makes it a worker,
   anything else a client). The hub's liveness machinery runs on the
   wall clock here — a worker that disappears (EOF) or goes silent past
   the heartbeat deadline has its shard leases revoked and reassigned
   to surviving workers. *)

(* --- robust framed IO ---------------------------------------------------
   Shared by the server loop, the worker process and the one-shot
   clients. [Unix.read]/[write] on a socket may move fewer bytes than
   asked and may be interrupted: every primitive here retries EINTR,
   waits out EAGAIN (in case a caller handed us a non-blocking fd), and
   loops until the frame boundary — never assuming one syscall moves
   one frame. *)

let rec write_all fd s off len =
  if len > 0 then
    match Unix.write_substring fd s off len with
    | n -> write_all fd s (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s off len
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      ignore (Unix.select [] [ fd ] [] (-1.));
      write_all fd s off len

(* One chunk of input: [Some 0] is EOF, [None] a connection error. *)
let rec read_chunk fd bytes =
  match Unix.read fd bytes 0 (Bytes.length bytes) with
  | n -> Some n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_chunk fd bytes
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ignore (Unix.select [ fd ] [] [] (-1.));
    read_chunk fd bytes
  | exception Unix.Unix_error _ -> None

let rec select_intr r w e t =
  match Unix.select r w e t with
  | res -> res
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> select_intr r w e t

let write_frame fd msg =
  let frame = Protocol.encode msg in
  match write_all fd frame 0 (String.length frame) with
  | () -> Ok ()
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

(* Extract every complete frame from an accumulation buffer, leaving
   any partial tail in place for the next read. *)
let take_frames buf =
  let rec go acc =
    let buffered = Buffer.contents buf in
    match Protocol.frame_size buffered with
    | Error e -> Error (Protocol.error_to_string e)
    | Ok None -> Ok (List.rev acc)
    | Ok (Some size) when String.length buffered < size -> Ok (List.rev acc)
    | Ok (Some size) ->
      let frame = String.sub buffered 0 size in
      Buffer.clear buf;
      Buffer.add_substring buf buffered size (String.length buffered - size);
      (match Protocol.decode frame with
      | Ok msg -> go (msg :: acc)
      | Error e -> Error (Protocol.error_to_string e))
  in
  go []

(* Read until at least one complete frame is buffered, then decode it. *)
let read_frame fd buf =
  let chunk = Bytes.create 65536 in
  let rec go () =
    let buffered = Buffer.contents buf in
    match Protocol.frame_size buffered with
    | Error e -> Error (Protocol.error_to_string e)
    | Ok (Some size) when String.length buffered >= size ->
      let frame = String.sub buffered 0 size in
      Buffer.clear buf;
      Buffer.add_substring buf buffered size (String.length buffered - size);
      Result.map_error Protocol.error_to_string (Protocol.decode frame)
    | Ok _ ->
      (match read_chunk fd chunk with
      | None -> Error "connection error"
      | Some 0 -> Error "connection closed by hub"
      | Some n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ())
  in
  go ()

(* --- hub server --------------------------------------------------------- *)

type role = Pending | Client | Worker_conn of int

type conn = {
  fd : Unix.file_descr;
  id : int;  (** connection id; doubles as the hub client id *)
  mutable role : role;
  buf : Buffer.t;
  mutable closed : bool;
}

let send_frame cn msg =
  if not cn.closed then begin
    let frame = Protocol.encode msg in
    try write_all cn.fd frame 0 (String.length frame)
    with Unix.Unix_error _ -> cn.closed <- true
  end

let serve ?obs ?corpus_sync ?max_campaigns ?journal ?heartbeat_timeout ~socket
    ~(resolve : string -> (Worker.target, string) result) () =
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let hub_resolve os =
    Result.map
      (fun (tg : Worker.target) ->
        { Hub.spec = tg.Worker.spec; table = tg.Worker.table })
      (resolve os)
  in
  let hub =
    Hub.create ~obs ?corpus_sync ?journal ?heartbeat_timeout
      ~resolve:hub_resolve ()
  in
  (match Unix.lstat socket with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink socket
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let worker_conns : (int, conn) Hashtbl.t = Hashtbl.create 8 in
  let next_conn = ref 0 in
  let campaigns_done = ref 0 in
  let dispatch actions =
    List.iter
      (function
        | Hub.To_worker (wid, msg) -> (
          match Hashtbl.find_opt worker_conns wid with
          | Some cn -> send_frame cn msg
          | None -> () (* dead worker: best-effort drop, as documented *))
        | Hub.To_client (id, msg) ->
          (match msg with
          | Protocol.Campaign_done _ -> incr campaigns_done
          | _ -> ());
          (match Hashtbl.find_opt conns id with
          | Some cn -> send_frame cn msg
          | None -> ()))
      actions
  in
  let route cn msg =
    let now = Unix.gettimeofday () in
    match cn.role with
    | Worker_conn wid -> dispatch (Hub.handle_worker hub ~now ~worker:wid msg)
    | Client -> dispatch (Hub.handle_client hub ~client:cn.id msg)
    | Pending -> (
      (* First frame classifies the connection. *)
      match msg with
      | Protocol.Worker_hello { name } -> (
        match Hub.hello hub ~now ~name with
        | Ok (wid, actions) ->
          cn.role <- Worker_conn wid;
          Hashtbl.replace worker_conns wid cn;
          dispatch actions
        | Error reason ->
          send_frame cn (Protocol.Reject { tenant = ""; reason });
          cn.closed <- true)
      | m ->
        cn.role <- Client;
        dispatch (Hub.handle_client hub ~client:cn.id m))
  in
  let result =
    try
      Unix.bind listener (Unix.ADDR_UNIX socket);
      Unix.listen listener 16;
      let finished () =
        match max_campaigns with
        | Some n -> !campaigns_done >= n
        | None -> false
      in
      let chunk = Bytes.create 65536 in
      while not (finished ()) do
        dispatch (Hub.tick hub ~now:(Unix.gettimeofday ()));
        let fds =
          listener
          :: Hashtbl.fold
               (fun _ cn acc -> if cn.closed then acc else cn.fd :: acc)
               conns []
        in
        let readable, _, _ = select_intr fds [] [] 0.05 in
        List.iter
          (fun fd ->
            if fd = listener then begin
              let cfd, _ = Unix.accept listener in
              let id = !next_conn in
              incr next_conn;
              Hashtbl.replace conns id
                { fd = cfd; id; role = Pending; buf = Buffer.create 256; closed = false }
            end
            else
              Hashtbl.iter
                (fun _ cn ->
                  if cn.fd = fd && not cn.closed then begin
                    match read_chunk cn.fd chunk with
                    | None | Some 0 -> cn.closed <- true
                    | Some n -> (
                      Buffer.add_subbytes cn.buf chunk 0 n;
                      match take_frames cn.buf with
                      | Error _ -> cn.closed <- true
                      | Ok msgs -> List.iter (route cn) msgs)
                  end)
                conns)
          readable;
        (* Sweep closed connections: a worker's EOF is its death
           certificate — revoke and reassign its leases right away
           rather than waiting out the heartbeat deadline. *)
        Hashtbl.iter
          (fun id cn ->
            if cn.closed then begin
              (try Unix.close cn.fd with Unix.Unix_error _ -> ());
              Hashtbl.remove conns id;
              match cn.role with
              | Worker_conn wid ->
                Hashtbl.remove worker_conns wid;
                dispatch
                  (Hub.worker_lost hub ~now:(Unix.gettimeofday ()) ~worker:wid)
              | _ -> ()
            end)
          conns
      done;
      Ok ()
    with
    | Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "serve: %s: %s" fn (Unix.error_message err))
  in
  Hub.close hub;
  Hashtbl.iter (fun _ cn -> try Unix.close cn.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listener with Unix.Unix_error _ -> ());
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  result

(* --- worker process ----------------------------------------------------- *)

let connect_retry socket ~tries =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Ok fd
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n <= 1 then
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message err))
      else begin
        Unix.sleepf 0.2;
        go (n - 1)
      end
  in
  go tries

(* The [eof worker] main loop: register, then interleave stepping the
   leased farms with the socket. The worker pings at a third of the
   negotiated heartbeat deadline whenever it has sent nothing else, so
   an idle worker stays registered; hub EOF is a normal shutdown. *)
let worker ?obs ~socket ~name
    ~(resolve : string -> (Worker.target, string) result) () =
  match connect_retry socket ~tries:50 with
  | Error _ as e -> e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let w = Worker.create ?obs ~name ~resolve () in
        match write_frame fd (Worker.hello w) with
        | Error e -> Error (Printf.sprintf "hello: %s" e)
        | Ok () ->
          let buf = Buffer.create 4096 in
          let chunk = Bytes.create 65536 in
          let last_sent = ref (Unix.gettimeofday ()) in
          let send msgs =
            List.iter
              (fun m ->
                let frame = Protocol.encode m in
                write_all fd frame 0 (String.length frame);
                last_sent := Unix.gettimeofday ())
              msgs
          in
          let result = ref None in
          (try
             while !result = None do
               let busy = Worker.next_cpu_s w <> None in
               let readable, _, _ =
                 select_intr [ fd ] [] [] (if busy then 0. else 0.05)
               in
               (if readable <> [] then
                  match read_chunk fd chunk with
                  | None -> result := Some (Error "hub connection error")
                  | Some 0 ->
                    (* hub closed the connection: normal shutdown *)
                    result := Some (Ok ())
                  | Some n -> (
                    Buffer.add_subbytes buf chunk 0 n;
                    match take_frames buf with
                    | Error e ->
                      result := Some (Error (Printf.sprintf "bad frame: %s" e))
                    | Ok msgs -> List.iter (fun m -> send (Worker.handle w m)) msgs));
               if !result = None then begin
                 if busy then send (Worker.step w);
                 (match Worker.heartbeat_timeout_s w with
                 | Some t when Unix.gettimeofday () -. !last_sent > t /. 3. ->
                   send [ Protocol.Worker_ping { worker = Worker.id w } ]
                 | _ -> ())
               end
             done
           with Unix.Unix_error (err, fn, _) ->
             result :=
               Some (Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))));
          Option.value !result ~default:(Ok ()))

(* --- one-shot clients --------------------------------------------------- *)

let with_connection socket f =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match Unix.connect fd (Unix.ADDR_UNIX socket) with
      | () -> f fd
      | exception Unix.Unix_error (err, _, _) ->
        Error
          (Printf.sprintf "cannot connect to %s: %s" socket
             (Unix.error_message err)))

let submit ~socket config =
  with_connection socket (fun fd ->
      match write_frame fd (Protocol.Submit config) with
      | Error e -> Error e
      | Ok () ->
        let buf = Buffer.create 256 in
        let rec wait () =
          match read_frame fd buf with
          | Error e -> Error e
          | Ok (Protocol.Reject { reason; _ }) -> Error reason
          | Ok (Protocol.Accept _) -> wait ()
          | Ok (Protocol.Campaign_done { digest; _ }) -> Ok digest
          | Ok other ->
            Error
              (Printf.sprintf "unexpected reply %s" (Protocol.kind_name other))
        in
        wait ())

let status ~socket =
  with_connection socket (fun fd ->
      match write_frame fd Protocol.Status_req with
      | Error e -> Error e
      | Ok () ->
        let buf = Buffer.create 256 in
        (match read_frame fd buf with
        | Error e -> Error e
        | Ok (Protocol.Status { rows; workers }) -> Ok (rows, workers)
        | Ok other ->
          Error (Printf.sprintf "unexpected reply %s" (Protocol.kind_name other))))
