(** Framed hub protocol: the typed messages a hub and its worker farms
    (and submitting clients) exchange.

    Every message travels as one self-delimiting frame:

    {v
    magic "EOFH" (u32) | version (u16) | kind (u8) | reserved (u8) |
    payload_len (u32) | payload | crc32 (u32)
    v}

    all little-endian — this is a host-to-host protocol with no target
    byte order to match, unlike {!Eof_agent.Wire}. The CRC covers
    everything after the magic (version through payload), so corruption
    anywhere in the negotiated content — including the length field —
    is detected; the magic itself is the stream-resync sentinel.
    Programs inside [Corpus_push]/[Corpus_pull] and crash reports are
    carried as {!Eof_agent.Wire}-encoded byte strings: the hub protocol
    frames them, the agent wire format describes them. *)

type status_row = {
  campaign : int;
  tenant : string;
  os : string;
  finished : bool;
  shards : int;
  shards_done : int;
  executed : int;
  coverage : int;
  crashes : int;  (** per-tenant deduplicated crash count *)
}

type t =
  | Submit of Tenant.config  (** client → hub: run this campaign *)
  | Accept of { campaign : int; tenant : string }  (** hub → client *)
  | Reject of { tenant : string; reason : string }  (** hub → client *)
  | Shard_assign of Shard.assignment  (** hub → farm *)
  | Corpus_push of { campaign : int; shard : int; progs : string list }
      (** farm → hub: newly admitted exchange-corpus programs,
          {!Eof_agent.Wire}-encoded *)
  | Corpus_pull of { campaign : int; shard : int; progs : string list }
      (** hub → farm: programs transplanted from sibling shards *)
  | Crash_report of { campaign : int; shard : int; crash : Eof_core.Crash.t }
      (** farm → hub *)
  | Heartbeat of {
      campaign : int;
      shard : int;
      executed : int;
      coverage : int;
      edge_capacity : int;
      virtual_s : float;
      bitmap : string;  (** {!Eof_util.Bitset.to_bytes} coverage snapshot *)
    }  (** farm → hub, once per farm epoch *)
  | Status_req  (** client → hub *)
  | Status of status_row list  (** hub → client *)
  | Cancel of { campaign : int }  (** client → hub, hub → farm *)
  | Shard_done of {
      campaign : int;
      shard : int;
      executed : int;
      iterations : int;
      crash_events : int;
      virtual_s : float;
    }  (** farm → hub *)
  | Campaign_done of { campaign : int; tenant : string; digest : string }
      (** hub → client: all shards finished; [digest] is the tenant's
          deterministic campaign digest *)

type error =
  | Truncated  (** shorter than its header claims — wait for more bytes *)
  | Bad_magic
  | Bad_version of int
  | Bad_crc
  | Malformed of string

val error_to_string : error -> string

val kind_name : t -> string
(** Stable lowercase name for telemetry ("submit", "corpus-push", ...). *)

val encode : t -> string
(** One complete frame. Raises [Invalid_argument] if a string field
    exceeds the u16 length limit. *)

val decode : string -> (t, error) result
(** Decode exactly one frame. [Error Truncated] if the buffer is
    shorter than the frame; [Error (Malformed _)] if longer. *)

val frame_size : string -> (int option, error) result
(** Stream framing helper: given a buffer prefix, [Ok None] if the
    12-byte header is not yet complete, [Ok (Some n)] once the total
    frame size [n] is known, [Error Bad_magic] on a bad sentinel. *)

val header_bytes : int

val version : int
(** Current wire version (v2 added the reset-policy byte to tenant
    configs and shard assignments). Decoding any other version is
    [Bad_version]. *)
