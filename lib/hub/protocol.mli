(** Framed hub protocol: the typed messages a hub and its worker farms
    (and submitting clients) exchange.

    Every message travels as one self-delimiting frame:

    {v
    magic "EOFH" (u32) | version (u16) | kind (u8) | reserved (u8) |
    payload_len (u32) | payload | crc32 (u32)
    v}

    all little-endian — this is a host-to-host protocol with no target
    byte order to match, unlike {!Eof_agent.Wire}. The CRC covers
    everything after the magic (version through payload), so corruption
    anywhere in the negotiated content — including the length field —
    is detected; the magic itself is the stream-resync sentinel.
    Programs inside [Corpus_push]/[Corpus_pull] and crash reports are
    carried as {!Eof_agent.Wire}-encoded byte strings: the hub protocol
    frames them, the agent wire format describes them. *)

type status_row = {
  campaign : int;
  tenant : string;
  os : string;
  finished : bool;
  shards : int;
  shards_done : int;
  executed : int;
  coverage : int;
  crashes : int;  (** per-tenant deduplicated crash count *)
}

type worker_row = {
  worker : int;  (** hub-assigned worker id *)
  name : string;
  alive : bool;
  leases : int;  (** active (assigned, unfinished) shard leases *)
}

type t =
  | Submit of Tenant.config  (** client → hub: run this campaign *)
  | Accept of { campaign : int; tenant : string }  (** hub → client *)
  | Reject of { tenant : string; reason : string }  (** hub → client *)
  | Shard_assign of Shard.assignment
      (** hub → worker; [assignment.epoch] is the lease epoch the worker
          must echo on everything it sends back for this shard *)
  | Corpus_push of { campaign : int; shard : int; epoch : int; progs : string list }
      (** worker → hub: newly admitted exchange-corpus programs,
          {!Eof_agent.Wire}-encoded *)
  | Corpus_pull of { campaign : int; shard : int; progs : string list }
      (** hub → worker: programs transplanted from sibling shards (or
          the bootstrap corpus replayed at reassignment) *)
  | Crash_report of { campaign : int; shard : int; epoch : int; crash : Eof_core.Crash.t }
      (** worker → hub *)
  | Heartbeat of {
      campaign : int;
      shard : int;
      epoch : int;
      executed : int;
      coverage : int;
      edge_capacity : int;
      virtual_s : float;
      bitmap : string;  (** {!Eof_util.Bitset.to_bytes} coverage snapshot *)
    }  (** worker → hub, once per farm epoch *)
  | Status_req  (** client → hub *)
  | Status of { rows : status_row list; workers : worker_row list }
      (** hub → client *)
  | Cancel of { campaign : int }  (** client → hub, hub → worker *)
  | Shard_done of {
      campaign : int;
      shard : int;
      epoch : int;
      executed : int;
      iterations : int;
      crash_events : int;
      virtual_s : float;
    }  (** worker → hub *)
  | Campaign_done of { campaign : int; tenant : string; digest : string }
      (** hub → client: all shards finished; [digest] is the tenant's
          deterministic campaign digest *)
  | Worker_hello of { name : string }
      (** worker → hub: first message on a worker connection *)
  | Worker_welcome of { worker : int; heartbeat_timeout_s : float }
      (** hub → worker: registration reply — the worker must be heard
          from at least every [heartbeat_timeout_s] or its leases are
          revoked *)
  | Shard_revoke of { campaign : int; shard : int; epoch : int }
      (** hub → worker: the lease at [epoch] is withdrawn; stop working
          the shard and send nothing more for it *)
  | Worker_ping of { worker : int }
      (** worker → hub: liveness when there is nothing else to say *)
  | Heartbeat_ack of { worker : int }
      (** hub → worker: ack of a [Heartbeat] or [Worker_ping] — silence
          here tells the worker the hub is gone *)

type error =
  | Truncated  (** shorter than its header claims — wait for more bytes *)
  | Bad_magic
  | Bad_version of int
  | Bad_crc
  | Malformed of string

val error_to_string : error -> string

val kind_name : t -> string
(** Stable lowercase name for telemetry ("submit", "corpus-push", ...). *)

val encode : t -> string
(** One complete frame. Raises [Invalid_argument] if a string field
    exceeds the u16 length limit. *)

val decode : string -> (t, error) result
(** Decode exactly one frame. [Error Truncated] if the buffer is
    shorter than the frame; [Error (Malformed _)] if longer. *)

val frame_size : string -> (int option, error) result
(** Stream framing helper: given a buffer prefix, [Ok None] if the
    12-byte header is not yet complete, [Ok (Some n)] once the total
    frame size [n] is known, [Error Bad_magic] on a bad sentinel. *)

val header_bytes : int

val version : int
(** Current wire version (v4 added the worker lifecycle messages and
    lease epochs). Decoding any other version is [Bad_version]. *)
