(** Board-farm scaling curves: the same campaign budget sharded across
    1/2/4/8 boards, measuring payload throughput and time-to-coverage.

    Throughput is measured against the {e farm clock} (the slowest
    board's virtual time): physical boards execute in real parallel
    regardless of the host, so this is the quantity a real board farm
    scales — the single-probe round-trip budget that PR 2's batching
    attacked is here multiplied by the number of probes. Host wall time
    is also recorded; with the {!Eof_core.Farm.Domains} backend it
    additionally reflects host-side parallelism when cores are
    available. *)

type point = {
  boards : int;
  payloads : int;  (** programs actually executed *)
  coverage : int;  (** global distinct edges *)
  virtual_s : float;  (** farm clock at campaign end *)
  wall_s : float;  (** host wall clock *)
  throughput : float;  (** payloads per farm-clock second *)
  speedup : float;  (** throughput relative to the boards=1 point *)
  time_to_cov : float option;
      (** farm-clock seconds until the common coverage target (60% of
          the one-board final coverage) was first reached at a sync
          point; [None] if never *)
  crashes : int;  (** distinct crash signatures, cross-board dedup *)
}

val run :
  ?backend:Eof_core.Farm.backend ->
  ?board_counts:int list ->
  ?iterations:int ->
  ?sync_every:int ->
  ?seed:int64 ->
  unit ->
  point list
(** Runs the Zephyr/STM32F4 campaign once per board count (default
    [1;2;4;8], total budget [iterations] each, default
    [Runner.scaled 1200], seed 11) and returns one point per count, in
    the given order. The boards=1 point always uses the cooperative
    backend (it {e is} the plain campaign); multi-board points use
    [backend] (default {!Eof_core.Farm.Domains}). The boards=1 point
    anchors [speedup] and the coverage target. *)

val render : point list -> string
(** An aligned text table of the scaling curve. *)
