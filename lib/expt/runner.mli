(** Shared experiment plumbing: repeated campaigns, aggregation, the
    full-system tool matrix, and the iteration-to-hours mapping.

    Scaling: the paper runs 24-hour wall-clock campaigns. Here one
    campaign iteration budget stands for 24 virtual hours; time series
    map iteration fractions onto the hour axis linearly, preserving the
    curve shapes. [EOF_BENCH_SCALE] (a float, default 1.0) scales every
    budget for quicker smoke runs. *)

val scale : unit -> float

val scaled : int -> int
(** [max 50 (int_of_float (n * scale))]. *)

val seeds : int -> int64 list
(** The fixed per-repetition seeds (5 in the paper's protocol). *)

val repetitions : int
(** 5. *)

type tool = EOF | EOF_nf | Tardis | Gustave

val tool_name : tool -> string

val run_tool :
  tool -> seed:int64 -> iterations:int -> Targets.hw_target ->
  (Eof_core.Campaign.outcome, Eof_util.Eof_error.t) result
(** Build a fresh target instance and run one campaign with the tool's
    mechanism. EOF/EOF-nf run on the hardware board; Tardis/Gustave run
    on their emulator builds. *)

type cell = {
  tool : tool;
  os : string;
  outcomes : Eof_core.Campaign.outcome list;  (** one per seed *)
}

val full_system_matrix : ?iterations:int -> ?reps:int -> unit -> cell list
(** The Table-3 / Figure-7 data: EOF, EOF-nf and Tardis on the four
    hardware OSs; EOF, EOF-nf and Gustave on PoKOS. Results are computed
    once per process and memoized. *)

val mean_coverage : cell -> float

val coverage_of : cell list -> tool:tool -> os:string -> float option

val outcomes_of : cell list -> tool:tool -> os:string -> Eof_core.Campaign.outcome list

val union_crashes : Eof_core.Campaign.outcome list -> Eof_core.Crash.t list
(** Distinct crashes across repeated runs (first occurrence kept). *)

val hours_of_series :
  iterations:int -> Eof_core.Campaign.sample list -> (float * int) list
(** Map an outcome's sample series onto the 0..24h axis. *)

val coverage_at_hours :
  iterations:int -> hours:float -> Eof_core.Campaign.outcome -> int
(** Interpolated coverage at a virtual-hour mark. *)
