module Campaign = Eof_core.Campaign
module Osbuild = Eof_os.Osbuild

let run_rtthread config =
  match Targets.find "RT-Thread" with
  | None -> Error (Eof_util.Eof_error.config "no RT-Thread target")
  | Some target -> Campaign.run config (Targets.build_hw target)

let describe label (outcome : Campaign.outcome) =
  Printf.sprintf "%-22s iterations=%4d  coverage=%4d  bugs={%s}  stalls=%d resets=%d" label
    outcome.Campaign.iterations_done outcome.Campaign.coverage
    (String.concat ","
       (List.map string_of_int (Targets.found_ids outcome.Campaign.crashes)))
    outcome.Campaign.stalls outcome.Campaign.resets

(* A hang-rich surface: the bug-#5 chain plus enough neighbours that the
   campaign keeps generating around it. *)
let hang_prone_filter =
  Some
    [
      "rt_event_create"; "rt_object_detach"; "rt_object_get_type"; "rt_object_init";
      "rt_event_send"; "rt_event_recv"; "rt_sem_create"; "rt_sem_take"; "rt_sem_release";
      "rt_kprintf"; "rt_tick_get";
    ]

let render_a1 ?iterations () =
  let iterations = match iterations with Some i -> i | None -> Runner.scaled 400 in
  let base =
    { Campaign.default_config with seed = 31L; iterations; api_filter = hang_prone_filter }
  in
  let lines =
    List.filter_map
      (fun (label, config) ->
        match run_rtthread config with
        | Ok o -> Some (describe label o)
        | Error e -> Some (label ^ ": ABORTED — " ^ Eof_util.Eof_error.to_string e))
      [
        ("with stall watchdog", base);
        ("without stall watchdog", { base with Campaign.stall_watchdog = false });
      ]
  in
  "A1: PC-stall watchdog, on a hang-prone API surface (bug #5's chain)\n  "
  ^ String.concat "\n  " lines
  ^ "\n  With the watchdog, every hang is detected (log-classified as bug #5)\n\
    \  and the board restored; without it the first hang wedges the loop\n\
    \  until the campaign's abort guard trips — the manual-intervention\n\
    \  failure mode the paper attributes to prior hardware fuzzers.\n"

let render_a2 ?iterations () =
  let iterations = match iterations with Some i -> i | None -> Runner.scaled 1500 in
  let base = { Campaign.default_config with seed = 32L; iterations } in
  let lines =
    List.filter_map
      (fun (label, config) ->
        match run_rtthread config with
        | Ok o -> Some (describe label o)
        | Error e -> Some (label ^ ": " ^ Eof_util.Eof_error.to_string e))
      [
        ("dependency-aware", base);
        ("blind references", { base with Campaign.dep_aware = false });
      ]
  in
  "A2: resource-dependency-aware generation (RT-Thread, same seed/budget)\n  "
  ^ String.concat "\n  " lines
  ^ "\n  Blind resource references fail API preconditions, so deep handlers\n\
    \  starve and both coverage and bug counts drop.\n"

(* Count covered edges among the first [sites] sites of a block (the
   ISR body occupies the leading sites of the IRQ block). *)
let block_coverage ?sites build (outcome : Campaign.outcome) name =
  match Osbuild.module_block build name with
  | None -> 0
  | Some block ->
    let sitemap = Osbuild.sitemap build in
    let v = Eof_cov.Sancov.variants_per_site in
    let covered = ref 0 in
    let limit =
      match sites with None -> block.Eof_cov.Sitemap.count | Some n -> min n block.Eof_cov.Sitemap.count
    in
    for i = 0 to limit - 1 do
      match Eof_cov.Sitemap.index_of_addr sitemap (Eof_cov.Sitemap.site_addr block i) with
      | None -> ()
      | Some site_idx ->
        for var = 0 to v - 1 do
          if Eof_util.Bitset.mem outcome.Campaign.coverage_bitmap ((site_idx * v) + var)
          then incr covered
        done
    done;
    !covered

let render_irq ?iterations () =
  let iterations = match iterations with Some i -> i | None -> Runner.scaled 1000 in
  let run irq_injection =
    match Targets.find "RT-Thread" with
    | None -> Error (Eof_util.Eof_error.config "no RT-Thread target")
    | Some target ->
      let build = Targets.build_hw target in
      (match
         Campaign.run
           { Campaign.default_config with seed = 33L; iterations; irq_injection }
           build
       with
       | Ok o -> Ok (o, block_coverage ~sites:5 build o "rtt/irq")
       | Error e -> Error e)
  in
  let line label result =
    match result with
    | Ok ((o : Campaign.outcome), isr_cov) ->
      Printf.sprintf "%-22s total coverage=%4d   ISR-path edges=%2d" label
        o.Campaign.coverage isr_cov
    | Error e -> label ^ ": " ^ Eof_util.Eof_error.to_string e
  in
  "E1: peripheral event injection (the paper's future-work extension)\n  "
  ^ line "without IRQ injection" (run false)
  ^ "\n  "
  ^ line "with IRQ injection" (run true)
  ^ "\n  GPIO edges injected over the debug link reach the interrupt-context\n\
    \  dispatch path that no API sequence alone can drive.\n"
