module Campaign = Eof_core.Campaign
module Farm = Eof_core.Farm
module Stats = Eof_util.Stats

type point = {
  boards : int;
  payloads : int;
  coverage : int;
  virtual_s : float;
  wall_s : float;
  throughput : float;
  speedup : float;
  time_to_cov : float option;
  crashes : int;
}

let target_of : Targets.hw_target option Lazy.t = lazy (Targets.find "Zephyr")

(* First farm-clock instant at which the global coverage map held at
   least [target] edges; sync samples are emitted in farm-clock order. *)
let time_to_coverage ~target (o : Farm.outcome) =
  List.find_map
    (fun (s : Farm.sync_sample) ->
      if s.Farm.coverage >= target then Some s.Farm.virtual_s else None)
    o.Farm.sync_series

let run ?(backend = Farm.Domains) ?(board_counts = [ 1; 2; 4; 8 ]) ?iterations
    ?(sync_every = 25) ?(seed = 11L) () =
  let iterations =
    match iterations with Some i -> i | None -> Runner.scaled 1200
  in
  match Lazy.force target_of with
  | None -> []
  | Some target ->
    let outcomes =
      List.filter_map
        (fun boards ->
          let config =
            {
              Farm.boards;
              sync_every;
              backend = (if boards = 1 then Farm.Cooperative else backend);
              base = { Campaign.default_config with seed; iterations };
            }
          in
          match Farm.run config (fun _board -> Targets.build_hw target) with
          | Ok o -> Some (boards, o)
          | Error _ -> None)
        board_counts
    in
    let base =
      List.find_map (fun (b, o) -> if b = 1 then Some o else None) outcomes
    in
    let base_throughput, cov_target =
      match base with
      | Some o when o.Farm.virtual_s > 0. ->
        ( float_of_int o.Farm.executed_programs /. o.Farm.virtual_s,
          max 1 (o.Farm.coverage * 6 / 10) )
      | _ -> (0., 1)
    in
    List.map
      (fun (boards, (o : Farm.outcome)) ->
        let throughput =
          if o.Farm.virtual_s > 0. then
            float_of_int o.Farm.executed_programs /. o.Farm.virtual_s
          else 0.
        in
        {
          boards;
          payloads = o.Farm.executed_programs;
          coverage = o.Farm.coverage;
          virtual_s = o.Farm.virtual_s;
          wall_s = o.Farm.wall_s;
          throughput;
          speedup = (if base_throughput > 0. then throughput /. base_throughput else 0.);
          time_to_cov = time_to_coverage ~target:cov_target o;
          crashes = List.length o.Farm.crashes;
        })
      outcomes

let render points =
  let body =
    List.map
      (fun p ->
        [
          string_of_int p.boards;
          string_of_int p.payloads;
          Stats.fmt1 p.virtual_s;
          Stats.fmt1 p.throughput;
          Printf.sprintf "%.2fx" p.speedup;
          (match p.time_to_cov with
          | Some t -> Stats.fmt1 t
          | None -> "-");
          string_of_int p.coverage;
          string_of_int p.crashes;
        ])
      points
  in
  Eof_util.Text_table.render
    ~align:
      Eof_util.Text_table.[ Right; Right; Right; Right; Right; Right; Right; Right ]
    ~header:
      [
        "Boards";
        "Payloads";
        "Farm clock (s)";
        "Payloads/s";
        "Speedup";
        "Time-to-60%cov (s)";
        "Coverage";
        "Crashes";
      ]
    body
