(** A simulated microcontroller development board.

    Assembles flash, RAM, UART and the virtual clock under a profile that
    captures what the fuzzer must adapt to per target: architecture,
    endianness, memory map, debug-port flavour, and whether a
    peripheral-accurate emulator exists for it (the property that decides
    Tardis/Gustave support in Table 1).

    Memory reads dispatch by address to flash or RAM like a bus matrix.
    Debug writes only touch RAM; flash is modified exclusively through
    the flash-programming operations, as with a real debug probe. *)

type debug_port = Jtag | Swd | Emulated

type profile = {
  name : string;
  arch : Arch.t;
  flash_base : int;
  flash_size : int;
  sector_size : int;
  ram_base : int;
  ram_size : int;
  cpu_mhz : int;
  debug_port : debug_port;
  peripheral_emulation : bool;
      (** a peripheral-accurate emulator exists (enables emulation-based
          tools such as Tardis/Gustave on this board) *)
}

type t

val create : profile -> t

val profile : t -> profile

val flash : t -> Flash.t

val ram : t -> Memory.t

val uart : t -> Uart.t

val gpio : t -> Gpio.t

val clock : t -> Clock.t

val install : t -> Image.t -> unit
(** Flash the image and record its partition table + integrity manifest,
    as a factory programming step would. *)

val partition_table : t -> Partition.t

val boot_ok : t -> bool
(** The simulated bootloader's integrity check: every partition CRC must
    match the manifest recorded at {!install}/reflash time. *)

val corrupted_partitions : t -> string list

val reflash_partition : t -> Image.t -> string -> (unit, string) result
(** Rewrite one partition from a (golden) image and refresh its manifest
    entry. *)

val snapshot : t -> Snapshot.t
(** Capture a copy-on-write snapshot of RAM and flash, charging the
    board clock the save cost. Take it right after {!install} so the
    saved state is the pristine image; the partition table and manifest
    are not part of the snapshot. *)

val restore_snapshot : t -> Snapshot.t -> int
(** Copy back only the pages written since the capture (or the previous
    restore) and charge the clock per dirty page; returns the pages
    copied. Callers follow with {!reset}, exactly like a reflash. *)

val reset : t -> unit
(** Power-cycle: clear RAM and the UART. Flash persists, and the clock
    keeps counting (it is the simulation's monotonic time base). *)

val power_cycles : t -> int

val read_mem : t -> addr:int -> len:int -> (string, Fault.t) result
(** Debugger-style read dispatching to flash or RAM. *)

val write_ram : t -> addr:int -> string -> (unit, Fault.t) result
(** Debugger-style write; fails with a bus fault outside RAM. *)

val debug_port_name : debug_port -> string
