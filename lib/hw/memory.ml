(* Pages are the dirty-tracking granule for copy-on-write snapshots: every
   mutator stamps the touched pages with the region's current generation,
   and snapshot restore copies back only pages stamped after the capture
   generation. 256 bytes keeps the stamp arrays small while still giving
   16 granules per 4 KiB flash sector. *)
let page_size = 256

let page_shift = 8

type t = {
  base : int;
  data : Bytes.t;
  endianness : Arch.endianness;
  stamps : int array;
  (* Per-page "may hold a nonzero byte" map. Lets [clear] zero only pages
     that were actually written since the last clear, making power-on RAM
     resets O(dirty pages) instead of O(region size). *)
  nz : Bytes.t;
  mutable generation : int;
}

let pages_of_size size = (size + page_size - 1) / page_size

let create ~base ~size ~endianness =
  if size <= 0 then invalid_arg "Memory.create: size";
  if base < 0 then invalid_arg "Memory.create: base";
  let n_pages = pages_of_size size in
  {
    base;
    data = Bytes.make size '\000';
    endianness;
    stamps = Array.make n_pages 0;
    nz = Bytes.make n_pages '\000';
    generation = 1;
  }

let base t = t.base

let size t = Bytes.length t.data

let endianness t = t.endianness

let page_count t = Array.length t.stamps

let generation t = t.generation

let touch t off =
  let p = off lsr page_shift in
  Array.unsafe_set t.stamps p t.generation;
  Bytes.unsafe_set t.nz p '\001'

let touch_range t off len =
  if len > 0 then
    for p = off lsr page_shift to (off + len - 1) lsr page_shift do
      Array.unsafe_set t.stamps p t.generation;
      Bytes.unsafe_set t.nz p '\001'
    done

let in_range t ~addr ~len =
  len >= 0 && addr >= t.base && addr + len <= t.base + Bytes.length t.data

let check t addr len =
  if not (in_range t ~addr ~len) then
    Fault.bus ~address:addr
      (Printf.sprintf "access of %d byte(s) outside region [0x%08x,0x%08x)" len t.base
         (t.base + Bytes.length t.data))

let read_u8 t addr =
  check t addr 1;
  Char.code (Bytes.unsafe_get t.data (addr - t.base))

let write_u8 t addr v =
  check t addr 1;
  let off = addr - t.base in
  touch t off;
  Bytes.unsafe_set t.data off (Char.unsafe_chr (v land 0xFF))

let read_u16 t addr =
  check t addr 2;
  let off = addr - t.base in
  let b0 = Char.code (Bytes.unsafe_get t.data off) in
  let b1 = Char.code (Bytes.unsafe_get t.data (off + 1)) in
  match t.endianness with
  | Arch.Little -> b0 lor (b1 lsl 8)
  | Arch.Big -> b1 lor (b0 lsl 8)

let write_u16 t addr v =
  check t addr 2;
  let off = addr - t.base in
  touch_range t off 2;
  let lo = v land 0xFF and hi = (v lsr 8) land 0xFF in
  match t.endianness with
  | Arch.Little ->
    Bytes.unsafe_set t.data off (Char.unsafe_chr lo);
    Bytes.unsafe_set t.data (off + 1) (Char.unsafe_chr hi)
  | Arch.Big ->
    Bytes.unsafe_set t.data off (Char.unsafe_chr hi);
    Bytes.unsafe_set t.data (off + 1) (Char.unsafe_chr lo)

let read_u32 t addr =
  check t addr 4;
  let off = addr - t.base in
  match t.endianness with
  | Arch.Little -> Bytes.get_int32_le t.data off
  | Arch.Big -> Bytes.get_int32_be t.data off

let write_u32 t addr v =
  check t addr 4;
  let off = addr - t.base in
  touch_range t off 4;
  match t.endianness with
  | Arch.Little -> Bytes.set_int32_le t.data off v
  | Arch.Big -> Bytes.set_int32_be t.data off v

let read_bytes t ~addr ~len =
  check t addr len;
  Bytes.sub t.data (addr - t.base) len

let write_bytes t ~addr b =
  check t addr (Bytes.length b);
  let off = addr - t.base in
  touch_range t off (Bytes.length b);
  Bytes.blit b 0 t.data off (Bytes.length b)

let blit_to t ~addr ~dst ~dst_pos ~len =
  check t addr len;
  Bytes.blit t.data (addr - t.base) dst dst_pos len

let fill t ~addr ~len c =
  check t addr len;
  let off = addr - t.base in
  touch_range t off len;
  Bytes.fill t.data off len c

let page_len t p =
  let off = p lsl page_shift in
  min page_size (Bytes.length t.data - off)

let clear t =
  let n = Array.length t.stamps in
  for p = 0 to n - 1 do
    if Bytes.unsafe_get t.nz p <> '\000' then begin
      Bytes.fill t.data (p lsl page_shift) (page_len t p) '\000';
      (* Content changed, so the page is dirty relative to any snapshot. *)
      Array.unsafe_set t.stamps p t.generation;
      Bytes.unsafe_set t.nz p '\000'
    end
  done

let mark_generation t =
  let g = t.generation in
  t.generation <- g + 1;
  g

let baseline t = Bytes.copy t.data

let dirty_page_count t ~since =
  let n = ref 0 in
  Array.iter (fun s -> if s > since then incr n) t.stamps;
  !n

let restore_pages t ~baseline ~since =
  if Bytes.length baseline <> Bytes.length t.data then
    invalid_arg "Memory.restore_pages: baseline size mismatch";
  let copied = ref 0 in
  for p = 0 to Array.length t.stamps - 1 do
    if Array.unsafe_get t.stamps p > since then begin
      let off = p lsl page_shift in
      let len = page_len t p in
      Bytes.blit baseline off t.data off len;
      (* The page now provably matches the capture, so it is clean with
         respect to this snapshot; conservatively flag it nonzero so a
         later [clear] rewrites it. *)
      Array.unsafe_set t.stamps p since;
      Bytes.unsafe_set t.nz p '\001';
      incr copied
    end
  done;
  !copied

let unsafe_backing t = t.data
