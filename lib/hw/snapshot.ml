(* Copy-on-write board snapshots.

   A capture keeps a full baseline copy of RAM and the flash backing
   store plus the generation each region was at; restore copies back
   only pages written since (see Memory's dirty tracking), so recovery
   cost is proportional to how much state the target actually changed,
   not to partition size — the Icicle/FuzzBox reset trick.

   The virtual-clock cost model mirrors that asymmetry: capture is a
   host-side bulk read charged per page of the whole device, restore
   charges a flat setup fee plus a per-dirty-page copy cost. Both
   backends (in-process native and the RSP link's OpenOCD stub) charge
   the same board clock, so CPU-time digests stay backend-invariant. *)

type region = {
  mem : Memory.t;
  baseline : Bytes.t;
  since : int;
}

type t = {
  ram : region;
  flash : region;
  flash_erase_count : int;
}

(* Cost model, in CPU cycles. At a typical 100 MHz profile a dirty page
   costs ~5 us to restore versus ~page_size us (1 us/byte) to rewrite
   over the debug link — the gap the bench section charts. *)
let save_cycles_per_page = 16

let restore_base_cycles = 4_000

let restore_cycles_per_page = 512

let capture_region mem =
  let baseline = Memory.baseline mem in
  let since = Memory.mark_generation mem in
  { mem; baseline; since }

let capture ~ram ~flash ~clock =
  let t =
    {
      ram = capture_region ram;
      flash = capture_region (Flash.mem flash);
      flash_erase_count = Flash.erase_count flash;
    }
  in
  Clock.advance clock (save_cycles_per_page * (Memory.page_count ram + Memory.page_count (Flash.mem flash)));
  t

let pages t = Memory.page_count t.ram.mem + Memory.page_count t.flash.mem

let dirty_region r = Memory.dirty_page_count r.mem ~since:r.since

let dirty_pages t = dirty_region t.ram + dirty_region t.flash

let restore_region r = Memory.restore_pages r.mem ~baseline:r.baseline ~since:r.since

let restore t ~clock =
  let ram_dirty = restore_region t.ram in
  let flash_dirty = restore_region t.flash in
  let dirty = ram_dirty + flash_dirty in
  Clock.advance clock (restore_base_cycles + (restore_cycles_per_page * dirty));
  dirty
