type t = { mem : Memory.t; sector_size : int; mutable erase_count : int }

let create ~base ~size ~sector_size ~endianness =
  if sector_size <= 0 || size <= 0 || size mod sector_size <> 0 then
    invalid_arg "Flash.create: size must be a positive multiple of sector_size";
  let mem = Memory.create ~base ~size ~endianness in
  Memory.fill mem ~addr:base ~len:size '\xFF';
  { mem; sector_size; erase_count = 0 }

let base t = Memory.base t.mem

let size t = Memory.size t.mem

let sector_size t = t.sector_size

let mem t = t.mem

let erase_sector t ~addr =
  if not (Memory.in_range t.mem ~addr ~len:1) then
    Fault.bus ~address:addr "flash erase outside device";
  let off = addr - base t in
  let sector_start = base t + (off / t.sector_size * t.sector_size) in
  Memory.fill t.mem ~addr:sector_start ~len:t.sector_size '\xFF';
  t.erase_count <- t.erase_count + 1

let erase_range t ~addr ~len =
  if len < 0 || not (Memory.in_range t.mem ~addr ~len) then
    Fault.bus ~address:addr "flash erase range outside device";
  if len > 0 then begin
    let first = (addr - base t) / t.sector_size in
    let last = (addr + len - 1 - base t) / t.sector_size in
    for s = first to last do
      erase_sector t ~addr:(base t + (s * t.sector_size))
    done
  end

let program t ~addr data =
  let len = String.length data in
  if not (Memory.in_range t.mem ~addr ~len) then
    Fault.bus ~address:addr "flash program outside device";
  if len > 0 then begin
    (* Bulk path: one read, the AND-combine on a local buffer, one write —
       the bus sees two block transactions instead of 2*len byte ones, and
       dirty pages are stamped once per block. *)
    let cur = Memory.read_bytes t.mem ~addr ~len in
    for i = 0 to len - 1 do
      Bytes.unsafe_set cur i
        (Char.unsafe_chr (Char.code (Bytes.unsafe_get cur i) land Char.code (String.unsafe_get data i)))
    done;
    Memory.write_bytes t.mem ~addr cur
  end

let write_image t ~addr data =
  erase_range t ~addr ~len:(String.length data);
  program t ~addr data

let read t ~addr ~len = Bytes.unsafe_to_string (Memory.read_bytes t.mem ~addr ~len)

let crc_range t ~addr ~len =
  let b = Memory.read_bytes t.mem ~addr ~len in
  Eof_util.Crc32.digest_bytes b ~pos:0 ~len

let erase_count t = t.erase_count

let corrupt t ~addr data = Memory.write_bytes t.mem ~addr (Bytes.of_string data)
