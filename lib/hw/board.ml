type debug_port = Jtag | Swd | Emulated

type profile = {
  name : string;
  arch : Arch.t;
  flash_base : int;
  flash_size : int;
  sector_size : int;
  ram_base : int;
  ram_size : int;
  cpu_mhz : int;
  debug_port : debug_port;
  peripheral_emulation : bool;
}

type t = {
  profile : profile;
  flash : Flash.t;
  ram : Memory.t;
  uart : Uart.t;
  gpio : Gpio.t;
  clock : Clock.t;
  mutable table : Partition.t;
  mutable manifest : (string * int32) list;
  mutable power_cycles : int;
}

let create profile =
  let endianness = profile.arch.Arch.endianness in
  {
    profile;
    flash =
      Flash.create ~base:profile.flash_base ~size:profile.flash_size
        ~sector_size:profile.sector_size ~endianness;
    ram = Memory.create ~base:profile.ram_base ~size:profile.ram_size ~endianness;
    uart = Uart.create ();
    gpio = Gpio.create ();
    clock = Clock.create ~mhz:profile.cpu_mhz;
    table = [];
    manifest = [];
    power_cycles = 0;
  }

let profile t = t.profile

let flash t = t.flash

let ram t = t.ram

let uart t = t.uart

let gpio t = t.gpio

let clock t = t.clock

let install t image =
  Image.flash_all image t.flash;
  t.table <- image.Image.table;
  t.manifest <- Image.manifest image

let partition_table t = t.table

let corrupted_partitions t =
  List.filter_map
    (fun (name, expected) ->
      match Partition.find t.table name with
      | None -> Some name
      | Some e ->
        let actual =
          Flash.crc_range t.flash ~addr:(Flash.base t.flash + e.offset) ~len:e.size
        in
        if Int32.equal actual expected then None else Some name)
    t.manifest

let boot_ok t = t.manifest <> [] && corrupted_partitions t = []

let reflash_partition t image name =
  match Image.flash_one image t.flash name with
  | Error _ as e -> e
  | Ok () ->
    (match List.assoc_opt name (Image.manifest image) with
     | None -> Error (Printf.sprintf "image has no partition %s" name)
     | Some crc ->
       t.manifest <- (name, crc) :: List.remove_assoc name t.manifest;
       Ok ())

let snapshot t = Snapshot.capture ~ram:t.ram ~flash:t.flash ~clock:t.clock

let restore_snapshot t s = Snapshot.restore s ~clock:t.clock

let reset t =
  Memory.clear t.ram;
  Uart.reset t.uart;
  Gpio.reset t.gpio;
  (* The clock deliberately survives reset: it is the simulation's
     monotonic time base, which campaign budgets are measured against. *)
  t.power_cycles <- t.power_cycles + 1

let power_cycles t = t.power_cycles

let read_mem t ~addr ~len =
  let attempt () =
    if Memory.in_range t.ram ~addr ~len then
      Ok (Bytes.unsafe_to_string (Memory.read_bytes t.ram ~addr ~len))
    else if Memory.in_range (Flash.mem t.flash) ~addr ~len then
      Ok (Flash.read t.flash ~addr ~len)
    else
      Error
        {
          Fault.kind = Fault.Bus_fault;
          address = Some addr;
          message = Printf.sprintf "debug read of %d byte(s) hit no mapped region" len;
        }
  in
  if len < 0 then
    Error { Fault.kind = Fault.Bus_fault; address = Some addr; message = "negative length" }
  else attempt ()

let write_ram t ~addr data =
  let len = String.length data in
  if Memory.in_range t.ram ~addr ~len then begin
    Memory.write_bytes t.ram ~addr (Bytes.of_string data);
    Ok ()
  end
  else
    Error
      {
        Fault.kind = Fault.Bus_fault;
        address = Some addr;
        message = "debug write outside RAM (use flash programming for flash)";
      }

let debug_port_name = function Jtag -> "JTAG" | Swd -> "SWD" | Emulated -> "emulated"
