(** A contiguous byte-addressable memory region (RAM or a flash backing
    store) with a base address in the target address space.

    Accesses outside the region raise a {!Fault.Trap} bus fault, matching
    how a microcontroller bus matrix reacts to unmapped addresses. Wide
    accesses honour the region's endianness.

    Every mutator records the touched pages against the region's current
    {e generation}, the bookkeeping behind copy-on-write snapshots
    ({!Snapshot}): capturing a snapshot bumps the generation, and
    restoring copies back only pages written since the capture. *)

type t

val page_size : int
(** Dirty-tracking granule in bytes (256). *)

val create : base:int -> size:int -> endianness:Arch.endianness -> t
(** Zero-filled region of [size] bytes mapped at [base]. *)

val base : t -> int

val size : t -> int

val endianness : t -> Arch.endianness

val in_range : t -> addr:int -> len:int -> bool

val read_u8 : t -> int -> int

val write_u8 : t -> int -> int -> unit
(** Value is masked to 8 bits. *)

val read_u16 : t -> int -> int

val write_u16 : t -> int -> int -> unit

val read_u32 : t -> int -> int32

val write_u32 : t -> int -> int32 -> unit

val read_bytes : t -> addr:int -> len:int -> Bytes.t

val write_bytes : t -> addr:int -> Bytes.t -> unit

val blit_to : t -> addr:int -> dst:Bytes.t -> dst_pos:int -> len:int -> unit

val fill : t -> addr:int -> len:int -> char -> unit

val clear : t -> unit
(** Zero the whole region (power-on reset of RAM). Only pages written
    since the previous clear are actually rewritten, so a reset costs
    O(dirty pages) while observable contents stay all-zero. *)

val page_count : t -> int
(** Number of {!page_size} pages covering the region (last page may be
    partial). *)

val generation : t -> int
(** Current write generation. Monotonic; bumped by {!mark_generation}. *)

val mark_generation : t -> int
(** Return the current generation and advance to the next one. Pages
    written afterwards stamp strictly greater than the returned value —
    this is the capture point of a snapshot. *)

val baseline : t -> Bytes.t
(** Full copy of the current contents, to pair with {!mark_generation}
    as a snapshot's saved state. *)

val dirty_page_count : t -> since:int -> int
(** Pages written strictly after generation [since]. *)

val restore_pages : t -> baseline:Bytes.t -> since:int -> int
(** Copy every page written after generation [since] back from
    [baseline] (a buffer from {!baseline}, same size) with one bulk blit
    per page, and mark it clean with respect to [since]. Returns the
    number of pages copied — the cost of the restore. Restoring an older
    snapshot invalidates dirty accounting of snapshots captured later;
    keep one live snapshot per region. *)

val unsafe_backing : t -> Bytes.t
(** Direct access to the backing store for target-side code that would,
    on real hardware, access memory without going through the debugger.
    Offsets into the backing store are [addr - base]. *)
