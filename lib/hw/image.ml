type t = { table : Partition.t; blobs : (string * string) list }

let build ~table ~blobs =
  let rec check = function
    | [] -> Ok ()
    | (e : Partition.entry) :: rest ->
      (match List.assoc_opt e.name blobs with
       | None -> Error (Printf.sprintf "no blob for partition %s" e.name)
       | Some blob ->
         if String.length blob > e.size then
           Error
             (Printf.sprintf "blob for %s is %d bytes but partition holds %d" e.name
                (String.length blob) e.size)
         else check rest)
  in
  let names = List.map fst blobs in
  let table_names = List.map (fun (e : Partition.entry) -> e.name) table in
  let extras = List.filter (fun n -> not (List.mem n table_names)) names in
  match extras with
  | n :: _ -> Error (Printf.sprintf "blob %s has no partition" n)
  | [] -> (match check table with Ok () -> Ok { table; blobs } | Error e -> Error e)

let build_exn ~table ~blobs =
  match build ~table ~blobs with Ok t -> t | Error e -> invalid_arg ("Image.build_exn: " ^ e)

let pseudo_blob rng len =
  Bytes.unsafe_to_string (Eof_util.Rng.bytes rng len)

let synthesize ~table ~seed ?(payloads = []) () =
  let rng = Eof_util.Rng.create seed in
  let blobs =
    List.map
      (fun (e : Partition.entry) ->
        match List.assoc_opt e.name payloads with
        | Some p ->
          let p =
            if String.length p >= e.size then String.sub p 0 e.size
            else p ^ String.make (e.size - String.length p) '\xFF'
          in
          (e.name, p)
        | None -> (e.name, pseudo_blob rng e.size))
      table
  in
  { table; blobs }

(* A partition's manifest CRC covers its full extent: the blob padded to
   the partition size with erased (0xFF) bytes, matching what a verify
   pass reads back from flash. *)
let padded_blob (e : Partition.entry) blob =
  if String.length blob = e.size then blob
  else if String.length blob > e.size then String.sub blob 0 e.size
  else blob ^ String.make (e.size - String.length blob) '\xFF'

let compute_manifest t =
  List.map
    (fun (e : Partition.entry) ->
      let blob = List.assoc e.name t.blobs in
      (e.name, Eof_util.Crc32.digest_string (padded_blob e blob)))
    t.table

(* Manifest CRCs walk every partition byte; with builds sharing one
   synthesized image across a whole fleet (see Osbuild), cache them per
   image identity so N boards pay the walk once. Keyed by physical
   equality — the blobs are immutable strings, so an [==]-equal image
   always has the same manifest. The mutex covers recovery-ladder
   verifies racing from farm domains. *)
let manifest_lock = Mutex.create ()

let manifest_memo : (t * (string * int32) list) list ref = ref []

let manifest t =
  Mutex.protect manifest_lock (fun () ->
      match List.assq_opt t !manifest_memo with
      | Some m -> m
      | None ->
        let m = compute_manifest t in
        if List.length !manifest_memo >= 16 then manifest_memo := [];
        manifest_memo := (t, m) :: !manifest_memo;
        m)

let flash_all t flash =
  List.iter
    (fun (e : Partition.entry) ->
      let blob = List.assoc e.name t.blobs in
      Flash.write_image flash ~addr:(Flash.base flash + e.offset) (padded_blob e blob))
    t.table

let flash_one t flash name =
  match Partition.find t.table name with
  | None -> Error (Printf.sprintf "no partition %s" name)
  | Some e ->
    let blob = List.assoc e.name t.blobs in
    Flash.write_image flash ~addr:(Flash.base flash + e.offset) (padded_blob e blob);
    Ok ()

let verify t flash =
  List.filter_map
    (fun (name, expected) ->
      let e = Option.get (Partition.find t.table name) in
      let actual =
        Flash.crc_range flash ~addr:(Flash.base flash + e.offset) ~len:e.size
      in
      if Int32.equal actual expected then None else Some name)
    (manifest t)

let total_bytes t = List.fold_left (fun acc (_, b) -> acc + String.length b) 0 t.blobs
