(** Copy-on-write RAM/flash snapshots with a dirty-page cost model.

    {!capture} records a page-granular baseline of a board's RAM and
    flash backing store and bumps each region's write generation;
    {!restore} copies back only pages written since the capture (or the
    previous restore), charging the board clock a flat fee plus a
    per-dirty-page cost. A restore therefore costs O(dirty pages) where
    a full reflash costs O(partition size) in link traffic.

    Keep at most one live snapshot per board: restoring rewinds the
    regions' dirty accounting to this capture, which invalidates any
    snapshot captured later. *)

type t

val save_cycles_per_page : int
(** Capture cost per device page (host-side bulk read). *)

val restore_base_cycles : int
(** Flat per-restore setup cost. *)

val restore_cycles_per_page : int
(** Copy-back cost per dirty page. *)

val capture : ram:Memory.t -> flash:Flash.t -> clock:Clock.t -> t
(** Snapshot both regions and charge the save cost to [clock]. *)

val pages : t -> int
(** Total device pages covered (RAM + flash). *)

val dirty_pages : t -> int
(** Pages a {!restore} would copy right now, without restoring. *)

val restore : t -> clock:Clock.t -> int
(** Copy dirty pages back, charge [clock] proportionally, and return the
    number of pages copied. Flash contents are rewound host-side without
    erase cycles, so {!Flash.erase_count} keeps counting real wear. *)
