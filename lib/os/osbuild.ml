open Eof_hw
open Eof_cov
open Eof_rtos

type ctx = {
  board : Board.t;
  reg : Kobj.t;
  heap : Heap.t;
  sched : Sched.t;
  wheel : Swtimer.wheel;
  panic : Panic.ctx;
  instr : string -> Instr.t;
  register_isr : (int -> unit) -> unit;
  os_name : string;
}

type instance = { reg : Kobj.t; table : Api.table; tick : unit -> unit }

type spec = {
  os_name : string;
  version : string;
  base_kernel_bytes : int;
  modules : (string * int) list;
  banner : string;
  kernel_patches : (int * string) list;
  install : ctx -> Api.table;
}

type syms = {
  sym_boot : int;
  sym_executor_main : int;
  sym_read_prog : int;
  sym_execute_one : int;
  sym_loop_back : int;
  sym_handle_exception : int;
  sym_assert_report : int;
  sym_buf_full : int;
  sym_call : int;
}

type instrument_mode = Instrument_full | Instrument_none | Instrument_only of string list

type t = {
  spec : spec;
  mutable signatures : Api.table option;
  board : Board.t;
  sitemap : Sitemap.t;
  sancov : Sancov.t;  (* recording runtime *)
  sancov_silent : Sancov.t;  (* PC movement only, no records *)
  blocks : (string * Sitemap.block) list;
  record_in : string -> bool;
  syms : syms;
  image : Image.t;
  covbuf : Sancov.Layout.t;
  mailbox_base : int;
  mailbox_size : int;
  instrumented : bool;
  binary_bytes : int;  (* unpadded bootloader + kernel + fs contents *)
}

(* Flash layout. *)
let bootloader_bytes = 0x4000

(* Per-site flash cost of instrumentation: the callback trampoline plus
   its table entry — this is what inflates the image (§5.5.1). *)
let flash_bytes_per_site = 44

(* RAM layout (offsets from RAM base). *)
let covbuf_offset = 0x200

let covbuf_records = 2048

let mailbox_offset = 0x4800

let mailbox_bytes = 0x2800

let heap_offset = 0x7000

let round_up n quantum = (n + quantum - 1) / quantum * quantum

(* The kernel blob and flash image are pure functions of the personality
   identity, the instrumentation-inflated kernel size, the patch list and
   the partition geometry — a farm building N identical boards should pay
   the (hundreds-of-KB pseudo-random) synthesis once, not once per board.
   [Image.t] is immutable and [Board.install] copies it into per-board
   flash, so sharing one value across boards is sound; the mutex covers
   fleet builds racing from multiple domains. *)
let image_memo_lock = Stdlib.Mutex.create ()

let image_memo : (string * string * int * int * int, Image.t) Hashtbl.t =
  Hashtbl.create 8

let synthesize_image spec ~table ~kernel_bytes =
  let key =
    ( spec.os_name,
      spec.version,
      kernel_bytes,
      Hashtbl.hash spec.kernel_patches,
      Hashtbl.hash table )
  in
  Stdlib.Mutex.protect image_memo_lock (fun () ->
      match Hashtbl.find_opt image_memo key with
      | Some image -> image
      | None ->
        if Hashtbl.length image_memo >= 32 then Hashtbl.reset image_memo;
        let kernel_seed =
          Int64.of_int (Hashtbl.hash (spec.os_name, spec.version, kernel_bytes))
        in
        let kernel_blob =
          let blob = Eof_util.Rng.bytes (Eof_util.Rng.create kernel_seed) kernel_bytes in
          List.iter
            (fun (off, data) ->
              if off < 0 || off + String.length data > Bytes.length blob then
                invalid_arg "Osbuild.make: kernel patch outside blob";
              Bytes.blit_string data 0 blob off (String.length data))
            spec.kernel_patches;
          Bytes.unsafe_to_string blob
        in
        let image =
          Image.synthesize ~table
            ~seed:(Int64.of_int (Hashtbl.hash (spec.os_name, spec.version)))
            ~payloads:[ ("kernel", kernel_blob) ]
            ()
        in
        Hashtbl.replace image_memo key image;
        image)

let make ?(instrument = Instrument_full) ~board_profile spec =
  let board = Board.create board_profile in
  let profile = Board.profile board in
  let sitemap = Sitemap.create ~text_base:(profile.Board.flash_base + bootloader_bytes) in
  let agent_block = Sitemap.alloc sitemap ~name:"agent" ~count:16 in
  let blocks =
    List.map
      (fun (name, count) -> (name, Sitemap.alloc sitemap ~name ~count))
      spec.modules
  in
  let covbuf =
    { Sancov.Layout.base = profile.Board.ram_base + covbuf_offset;
      capacity_records = covbuf_records }
  in
  let buf_full_site = Sitemap.site_addr agent_block 7 in
  let instrumented = instrument <> Instrument_none in
  let sancov =
    Sancov.create ~sitemap ~ram:(Board.ram board) ~layout:covbuf
      ~mode:(if instrumented then Sancov.Instrumented else Sancov.Uninstrumented)
      ~buf_full_site
  in
  let sancov_silent =
    Sancov.create ~sitemap ~ram:(Board.ram board) ~layout:covbuf
      ~mode:Sancov.Uninstrumented ~buf_full_site
  in
  let record_in =
    match instrument with
    | Instrument_full -> fun _ -> true
    | Instrument_none -> fun _ -> false
    | Instrument_only names -> fun name -> List.mem name names
  in
  let syms =
    {
      sym_boot = Sitemap.site_addr agent_block 0;
      sym_executor_main = Sitemap.site_addr agent_block 1;
      sym_read_prog = Sitemap.site_addr agent_block 2;
      sym_execute_one = Sitemap.site_addr agent_block 3;
      sym_loop_back = Sitemap.site_addr agent_block 4;
      sym_handle_exception = Sitemap.site_addr agent_block 5;
      sym_assert_report = Sitemap.site_addr agent_block 6;
      sym_buf_full = buf_full_site;
      sym_call = Sitemap.site_addr agent_block 8;
    }
  in
  (* Image: bootloader + kernel + filesystem. The kernel blob grows with
     instrumentation, which is the memory-overhead measurement. *)
  let kernel_bytes =
    spec.base_kernel_bytes
    + (if instrumented then Sitemap.site_count sitemap * flash_bytes_per_site else 0)
  in
  (* Partition boundaries must fall on sector boundaries: erasing one
     partition must never wipe a neighbour that shares its sector. *)
  let sector = profile.Board.sector_size in
  let bootloader_part_bytes = round_up bootloader_bytes sector in
  let kernel_part_bytes = round_up kernel_bytes sector in
  let fs_bytes = round_up 0x10000 sector in
  let table =
    [
      { Partition.name = "bootloader"; offset = 0; size = bootloader_part_bytes };
      { Partition.name = "kernel"; offset = bootloader_part_bytes; size = kernel_part_bytes };
      {
        Partition.name = "fs";
        offset = bootloader_part_bytes + kernel_part_bytes;
        size = fs_bytes;
      };
    ]
  in
  (match Partition.validate ~flash_size:profile.Board.flash_size table with
   | Ok () -> ()
   | Error e ->
     invalid_arg
       (Printf.sprintf "Osbuild.make: %s image does not fit %s flash: %s" spec.os_name
          profile.Board.name e));
  let image = synthesize_image spec ~table ~kernel_bytes in
  Board.install board image;
  {
    spec;
    signatures = None;
    board;
    sitemap;
    sancov;
    sancov_silent;
    blocks;
    record_in;
    syms;
    image;
    covbuf;
    mailbox_base = profile.Board.ram_base + mailbox_offset;
    mailbox_size = mailbox_bytes;
    instrumented;
    binary_bytes = bootloader_bytes + kernel_bytes + 0x10000;
  }

let os_name t = t.spec.os_name

(* forward-declared below, after fresh_instance *)

let version t = t.spec.version

let board t = t.board

let sitemap t = t.sitemap

let sancov t = t.sancov

let syms t = t.syms

let image t = t.image

let image_bytes t = t.binary_bytes

let covbuf_layout t = t.covbuf

let mailbox_base t = t.mailbox_base

let mailbox_size t = t.mailbox_size

let edge_capacity t = Sancov.edge_capacity t.sancov

let module_block t name = List.assoc_opt name t.blocks

let instrumented t = t.instrumented

let fresh_instance t =
  let profile = Board.profile t.board in
  let reg = Kobj.create () in
  let heap_base = profile.Board.ram_base + heap_offset in
  let heap_size = min 0x20000 (profile.Board.ram_size - heap_offset - 0x1000) in
  let heap =
    match Heap.init ~mem:(Board.ram t.board) ~base:heap_base ~size:heap_size with
    | Ok heap -> heap
    | Error e -> invalid_arg ("Osbuild.fresh_instance: kernel heap: " ^ e)
  in
  let wheel = Swtimer.create_wheel () in
  let sched = Sched.create ~reg ~wheel in
  let panic =
    {
      Panic.os_name = t.spec.os_name;
      panic_site = t.syms.sym_handle_exception;
      assert_site = t.syms.sym_assert_report;
    }
  in
  let instr name =
    match List.assoc_opt name t.blocks with
    | None -> invalid_arg (Printf.sprintf "Osbuild: no instrumentation block %S" name)
    | Some block ->
      let sancov = if t.record_in name then t.sancov else t.sancov_silent in
      Instr.of_sancov ~sancov ~block
  in
  let isr_handlers = ref [] in
  let register_isr f = isr_handlers := f :: !isr_handlers in
  let ctx =
    {
      board = t.board;
      reg;
      heap;
      sched;
      wheel;
      panic;
      instr;
      register_isr;
      os_name = t.spec.os_name;
    }
  in
  let table = t.spec.install ctx in
  Klog.line t.spec.banner;
  Klog.info ~os:t.spec.os_name
    (Printf.sprintf "%s %s booted on %s (%s)" t.spec.os_name t.spec.version
       profile.Board.name
       (Format.asprintf "%a" Arch.pp profile.Board.arch));
  let gpio = Board.gpio t.board in
  let tick () =
    (* Interrupt dispatch precedes the scheduler, as a real tick ISR
       chain would. *)
    (match Gpio.drain_pending gpio with
     | [] -> ()
     | pins ->
       List.iter (fun pin -> List.iter (fun isr -> isr pin) !isr_handlers) pins);
    Sched.tick sched
  in
  { reg; table; tick }


let api_signatures t =
  match t.signatures with
  | Some table -> table
  | None ->
    (* Build one throwaway instance under a silent handler; only the
       table's signature side is retained. *)
    let table =
      Eof_exec.Target.run_silent (fun () -> (fresh_instance t).table)
    in
    t.signatures <- Some table;
    table
