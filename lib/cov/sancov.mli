(** SanCov-style coverage runtime (target side).

    OS and app code call {!cmp} / {!edge} at every branch, mirroring the
    compiler-inserted [__sanitizer_cov_trace_cmp()] callbacks the paper
    uses. Each hook crosses its instrumentation site (so the PC moves
    and breakpoints work), and — when the build is instrumented — buckets
    the comparison into an edge record and appends it to a coverage
    buffer in target RAM via [write_comp_data]. When the buffer fills,
    the hook traps at the well-known [_kcmp_buf_full] site so the host
    can drain and reset it; if no host reacts (no breakpoint armed), the
    buffer self-wraps so execution is never wedged.

    Edge identity is [site_index * variants_per_site + variant], where
    the variant buckets the comparison operands; this models how distinct
    branch outcomes at one static location count as distinct covered
    branches. *)

val variants_per_site : int
(** 16: variant 0 is "operands equal / plain edge"; 1..15 bucket the
    bit-length of the operand difference (capped), so nearby-but-distinct
    comparison outcomes count as distinct branches. *)

val variant_of_cmp : int64 -> int64 -> int

module Layout : sig
  (** Placement of the coverage buffer in target RAM. Records are 32-bit
      edge indices in the board's endianness. A small ring of raw
      comparison operand pairs follows the edge records: this is the
      payload of [__sanitizer_cov_trace_cmp] that lets the host harvest
      the constants the kernel compares inputs against. *)

  type t = { base : int; capacity_records : int }

  val cmp_ring_entries : int
  (** 1024 operand pairs; trivial comparisons are not recorded. *)

  val write_index_addr : t -> int

  val records_addr : t -> int

  val cmp_count_addr : t -> int
  (** Total comparisons recorded (monotonic until host reset). *)

  val cmp_ring_addr : t -> int
  (** 8 bytes per entry: the two operands' low 32 bits. *)

  val size_bytes : t -> int
end

type mode = Uninstrumented | Instrumented

type t

val create :
  sitemap:Sitemap.t -> ram:Eof_hw.Memory.t -> layout:Layout.t -> mode:mode ->
  buf_full_site:int -> t
(** [buf_full_site] is the flash address of the [_kcmp_buf_full] trap
    symbol (allocated from the same site map). *)

val mode : t -> mode

val edge_capacity : t -> int
(** Size of the host bitmap needed for this build:
    [site_count * variants_per_site]. *)

val cmp : t -> site:int -> int64 -> int64 -> unit
(** The [__sanitizer_cov_trace_cmp] hook. *)

val edge : t -> site:int -> unit
(** Plain basic-block edge hook (variant 0). *)

val records_written : t -> int64
(** Total records appended since creation (for overhead accounting). *)

val wraps : t -> int
(** Times the buffer self-wrapped because no host drained it. *)

val reset_buffer : t -> unit
(** Target-side reset (also used at boot). *)

(** Host-side helpers: interpreting a raw dump of the coverage buffer.
    These are pure so the host can apply them to bytes read over the
    debug link. *)

val decode_records :
  endianness:Eof_hw.Arch.endianness -> count:int -> string -> int list
(** Decode [count] 32-bit records from the raw records area. *)

val decode_cmp_ring :
  endianness:Eof_hw.Arch.endianness -> count:int -> string -> (int32 * int32) list
(** Decode up to [count] operand pairs from the raw cmp-ring area. *)

val decode_records_into :
  ?pos:int -> endianness:Eof_hw.Arch.endianness -> count:int -> string ->
  int array -> int
(** Allocation-free variant of {!decode_records}: decode [count] records
    into the caller's scratch array starting at [pos] (default 0); the
    array must hold at least [pos + count] entries. Returns [count]. The
    fuzzing hot path reuses one scratch array per campaign instead of
    building a list per drain. *)

val decode_cmp_ring_into :
  ?pos:int -> endianness:Eof_hw.Arch.endianness -> count:int -> string ->
  a:int64 array -> b:int64 array -> int
(** Allocation-free variant of {!decode_cmp_ring}: decode up to [count]
    operand pairs into the caller's [a]/[b] scratch arrays starting at
    [pos] (sign-extended to [int64], matching what {!variant_of_cmp}
    consumed on the target side); returns the number of pairs decoded. *)
