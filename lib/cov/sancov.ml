open Eof_hw

let variants_per_site = 16

(* Distance thresholds for comparison bucketing: fine near equality so
   a guided fuzzer sees progress as operands converge, coarse far out. *)
let cmp_thresholds =
  [| 1L; 2L; 4L; 8L; 16L; 32L; 64L; 96L; 128L; 176L; 256L; 4096L; 1048576L; Int64.max_int |]

let variant_of_cmp a b =
  if Int64.equal a b then 0
  else begin
    let d = Int64.abs (Int64.sub a b) in
    let d = if Int64.compare d 0L < 0 then Int64.max_int else d in
    let rec find i =
      if i >= Array.length cmp_thresholds then Array.length cmp_thresholds
      else if Int64.compare d cmp_thresholds.(i) <= 0 then i
      else find (i + 1)
    in
    1 + min 14 (find 0)
  end

module Layout = struct
  type t = { base : int; capacity_records : int }

  let cmp_ring_entries = 1024

  let write_index_addr t = t.base

  let records_addr t = t.base + 4

  let cmp_count_addr t = records_addr t + (4 * t.capacity_records)

  let cmp_ring_addr t = cmp_count_addr t + 4

  let size_bytes t = 4 + (4 * t.capacity_records) + 4 + (8 * cmp_ring_entries)
end

type mode = Uninstrumented | Instrumented

type t = {
  sitemap : Sitemap.t;
  ram : Memory.t;
  layout : Layout.t;
  mode : mode;
  buf_full_site : int;
  mutable records_written : int64;
  mutable wraps : int;
}

(* Cycle cost of one instrumented record: the callback body plus the
   buffer store. Drives the §5.5.2 execution-overhead measurement. *)
let record_cost_cycles = 6

let create ~sitemap ~ram ~layout ~mode ~buf_full_site =
  if not (Memory.in_range ram ~addr:layout.Layout.base ~len:(Layout.size_bytes layout)) then
    invalid_arg "Sancov.create: coverage buffer does not fit in RAM";
  { sitemap; ram; layout; mode; buf_full_site; records_written = 0L; wraps = 0 }

let mode t = t.mode

let edge_capacity t = Sitemap.site_count t.sitemap * variants_per_site

let read_write_index t = Int32.to_int (Memory.read_u32 t.ram (Layout.write_index_addr t.layout))

let set_write_index t v =
  Memory.write_u32 t.ram (Layout.write_index_addr t.layout) (Int32.of_int v)

let append_record t edge_index =
  let idx = read_write_index t in
  let idx =
    if idx >= t.layout.Layout.capacity_records then begin
      (* Buffer full: trap so the host can drain; if nobody drains,
         self-wrap rather than wedging the target. *)
      Eof_exec.Target.site t.buf_full_site;
      let idx' = read_write_index t in
      if idx' >= t.layout.Layout.capacity_records then begin
        t.wraps <- t.wraps + 1;
        set_write_index t 0;
        0
      end
      else idx'
    end
    else idx
  in
  Memory.write_u32 t.ram
    (Layout.records_addr t.layout + (4 * idx))
    (Int32.of_int edge_index);
  set_write_index t (idx + 1);
  t.records_written <- Int64.add t.records_written 1L

let record t ~site variant =
  Eof_exec.Target.site site;
  match t.mode with
  | Uninstrumented -> ()
  | Instrumented ->
    (match Sitemap.index_of_addr t.sitemap site with
     | None -> ()
     | Some site_index ->
       Eof_exec.Target.cycles record_cost_cycles;
       append_record t ((site_index * variants_per_site) + variant))

(* write_comp_data: stash the raw operand pair in the wrapping cmp ring
   so the host can harvest comparison constants. Trivial comparisons
   (equal operands, tiny constants) are not worth a slot — real SanCov
   filters const-vs-const the same way. *)
let trivial_operand v = Int64.compare (Int64.logand v 0xFFFFFFFFL) 8L < 0

let append_cmp_pair t a b =
  if Int64.equal a b || trivial_operand a || trivial_operand b then ()
  else
  match t.mode with
  | Uninstrumented -> ()
  | Instrumented ->
    let count = Int32.to_int (Memory.read_u32 t.ram (Layout.cmp_count_addr t.layout)) in
    let slot = (count land max_int) mod Layout.cmp_ring_entries in
    let addr = Layout.cmp_ring_addr t.layout + (8 * slot) in
    Memory.write_u32 t.ram addr (Int64.to_int32 a);
    Memory.write_u32 t.ram (addr + 4) (Int64.to_int32 b);
    Memory.write_u32 t.ram (Layout.cmp_count_addr t.layout) (Int32.of_int (count + 1))

let cmp t ~site a b =
  append_cmp_pair t a b;
  record t ~site (variant_of_cmp a b)

let edge t ~site = record t ~site 0

let records_written t = t.records_written

let wraps t = t.wraps

let reset_buffer t = set_write_index t 0

let decode_records ~endianness ~count raw =
  if String.length raw < 4 * count then invalid_arg "Sancov.decode_records: short buffer";
  let b = Bytes.unsafe_of_string raw in
  List.init count (fun i ->
      let v =
        match endianness with
        | Arch.Little -> Bytes.get_int32_le b (4 * i)
        | Arch.Big -> Bytes.get_int32_be b (4 * i)
      in
      Int32.to_int v)


let decode_cmp_ring ~endianness ~count raw =
  let n = min count (String.length raw / 8) in
  let b = Bytes.unsafe_of_string raw in
  let word off =
    match endianness with
    | Arch.Little -> Bytes.get_int32_le b off
    | Arch.Big -> Bytes.get_int32_be b off
  in
  List.init n (fun i -> (word (8 * i), word ((8 * i) + 4)))

let decode_records_into ?(pos = 0) ~endianness ~count raw dst =
  if String.length raw < 4 * count then
    invalid_arg "Sancov.decode_records_into: short buffer";
  if pos < 0 || Array.length dst - pos < count then
    invalid_arg "Sancov.decode_records_into: destination too small";
  let b = Bytes.unsafe_of_string raw in
  for i = 0 to count - 1 do
    let v =
      match endianness with
      | Arch.Little -> Bytes.get_int32_le b (4 * i)
      | Arch.Big -> Bytes.get_int32_be b (4 * i)
    in
    dst.(pos + i) <- Int32.to_int v
  done;
  count

let decode_cmp_ring_into ?(pos = 0) ~endianness ~count raw ~a ~b =
  let n = min count (String.length raw / 8) in
  if pos < 0 || Array.length a - pos < n || Array.length b - pos < n then
    invalid_arg "Sancov.decode_cmp_ring_into: destination too small";
  let bytes = Bytes.unsafe_of_string raw in
  let word off =
    match endianness with
    | Arch.Little -> Bytes.get_int32_le bytes off
    | Arch.Big -> Bytes.get_int32_be bytes off
  in
  for i = 0 to n - 1 do
    a.(pos + i) <- Int64.of_int32 (word (8 * i));
    b.(pos + i) <- Int64.of_int32 (word ((8 * i) + 4))
  done;
  n
