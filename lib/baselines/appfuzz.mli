open Eof_os

(** Application-level fuzzing on hardware over the debug link — the
    common skeleton behind the GDBFuzz and SHIFT baselines.

    Inputs are opaque byte buffers fed to a single application entry
    point ([http_request] / [json_parse]); there is no API awareness and
    no call sequencing. What differs between the two tools is the
    guidance signal:

    - [Bp_sampling n]: GDBFuzz's mechanism — up to [n] hardware
      breakpoints planted on not-yet-covered basic-block sites; an input
      is interesting when it trips one. Reported coverage still comes
      from the (experiment-only) instrumentation ground truth, matching
      the paper's measurement methodology.
    - [Edge_feedback]: SHIFT's mechanism — semihosting-assisted SanCov
      edge feedback, i.e. the true coverage buffer guides the corpus. *)

type guidance = Bp_sampling of int | Edge_feedback

type config = {
  seed : int64;
  iterations : int;
  entry_api : string;  (** the single API fed with the buffer *)
  max_buf : int;
  guidance : guidance;
  sample_modules : string list;  (** site pools for [Bp_sampling] *)
  snapshot_every : int;
}

val run : config -> Osbuild.t -> (Eof_core.Campaign.outcome, Eof_util.Eof_error.t) result
