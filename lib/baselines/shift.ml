open Eof_os

let run ~seed ~iterations ~entry_api ?(snapshot_every = 10) build =
  if Osbuild.os_name build <> "FreeRTOS" then
    Error
      (Eof_util.Eof_error.config
         (Printf.sprintf "SHIFT is only adapted to FreeRTOS, not %s" (Osbuild.os_name build)))
  else
    (* Semihosting traps the core into the debugger on every sanitizer
       and coverage access, roughly halving throughput relative to the
       breakpoint-only tools; budgets here stand for wall clock, so
       SHIFT gets proportionally fewer payloads. *)
    let iterations = iterations / 2 in
    Appfuzz.run
      {
        Appfuzz.seed;
        iterations;
        entry_api;
        max_buf = 256;
        guidance = Appfuzz.Edge_feedback;
        sample_modules = [];
        snapshot_every;
      }
      build
