open Eof_hw
open Eof_exec
open Eof_os
module Rng = Eof_util.Rng
module Wire = Eof_agent.Wire
module Agent = Eof_agent.Agent
module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash
module Feedback = Eof_core.Feedback
module Gen = Eof_core.Gen
module Prog = Eof_core.Prog
module Sancov = Eof_cov.Sancov

(* The hand-written core-kernel specs Tardis ships lack the
   driver/middleware configuration surfaces (staged device sequences,
   GPIO control) and the pseudo-syscalls the paper derives with LLM
   assistance — which is exactly the spec-breadth gap the evaluation
   attributes EOF's advantage to. *)
let driver_surfaces prefixes =
  List.concat_map (fun p -> [ p ^ "_open"; p ^ "_step" ]) prefixes

let unsupported_calls = function
  | "Zephyr" ->
    [ "sys_heap_stress"; "k_msgq_purge"; "syz_json_deep_encode";
      "gpio_irq_enable"; "gpio_irq_disable" ]
    @ driver_surfaces [ "zpipe"; "zspi"; "zadc" ]
  | "RT-Thread" ->
    [
      "rt_service_poll";
      "rt_mp_create"; "rt_mp_alloc"; "rt_mp_free";
      "rt_smem_alloc"; "rt_smem_setname"; "rt_smem_free";
      "rt_serial_ctrl"; "rt_device_write";
      "syz_create_bind_socket"; "sal_listen"; "sal_sendto"; "sal_closesocket";
      "rt_event_delete"; "rt_pin_irq_enable"; "rt_pin_irq_disable";
    ]
    @ driver_surfaces [ "rt_devcfg"; "rt_can" ]
  | "NuttX" ->
    [ "setenv"; "nxmq_timedsend"; "sem_destroy"; "clock_getres";
      "nx_gpio_irq_enable"; "nx_gpio_irq_disable" ]
    @ driver_surfaces [ "nx_ioctl"; "nx_i2c" ]
  | "FreeRTOS" ->
    [ "load_partitions"; "syz_http_get"; "syz_http_post_json"; "http_request";
      "gpio_isr_irq_enable"; "gpio_isr_irq_disable" ]
    @ driver_surfaces [ "wifi_prov"; "ble_gatt"; "ota_update" ]
  | "PoKOS" -> []
  | _ -> []

let build_for spec = Osbuild.make ~board_profile:Profiles.qemu_mps2 spec

type state = {
  build : Osbuild.t;
  board : Board.t;
  engine : Engine.t;
  endianness : Arch.endianness;
  syms : Osbuild.syms;
  fb : Feedback.t;
  gen : Gen.t;
  rng : Rng.t;
  corpus : Eof_core.Corpus.t;
  crash_table : (string, Crash.t) Hashtbl.t;
  mutable crash_order : Crash.t list;
  mutable crash_events : int;
  mutable executed : int;
  mutable resets : int;
  mutable stalls : int;
  mutable iteration : int;
  mutable series : Campaign.sample list;
  mutable current_prog : Prog.t;
}

(* Shared-memory coverage drain: read the KCOV-style buffer straight
   out of guest RAM. *)
let drain_coverage st =
  let layout = Osbuild.covbuf_layout st.build in
  let ram = Board.ram st.board in
  let widx =
    min
      (Int32.to_int (Memory.read_u32 ram (Sancov.Layout.write_index_addr layout)))
      layout.Sancov.Layout.capacity_records
  in
  if widx <= 0 then 0
  else begin
    let raw =
      Bytes.unsafe_to_string
        (Memory.read_bytes ram ~addr:(Sancov.Layout.records_addr layout) ~len:(4 * widx))
    in
    Memory.write_u32 ram (Sancov.Layout.write_index_addr layout) 0l;
    Feedback.merge st.fb (Sancov.decode_records ~endianness:st.endianness ~count:widx raw)
  end

let last_call_name st =
  let idx =
    Int32.to_int (Memory.read_u32 (Board.ram st.board) (Agent.progress_addr st.build))
  in
  if idx < 0 || idx >= List.length st.current_prog then "unknown"
  else (List.nth st.current_prog idx).Prog.spec.Eof_spec.Ast.name

let record_vm_death st ~kind ~message =
  st.crash_events <- st.crash_events + 1;
  let crash =
    {
      Crash.os = Osbuild.os_name st.build;
      kind;
      operation = last_call_name st;
      scope = "vm";
      message;
      backtrace = [];
      detected_by = Crash.Timeout_only;
      program = Prog.to_string st.current_prog;
      iteration = st.iteration;
    }
  in
  let key = Crash.dedup_key crash in
  if not (Hashtbl.mem st.crash_table key) then begin
    Hashtbl.replace st.crash_table key crash;
    st.crash_order <- crash :: st.crash_order
  end

let reset_vm st =
  Board.reset st.board;
  Engine.reset st.engine;
  st.resets <- st.resets + 1

(* Run the VM until the agent parks at a given binding point. The
   timeout mechanism is a strike counter: a VM that burns two full
   quanta without reaching a binding point is declared wedged — Tardis
   has no finer progress signal. *)
let rec run_to ?(strikes = 0) st ~target ~budget =
  if budget <= 0 || strikes >= 2 then `Stuck
  else
    match Engine.run st.engine ~fuel:100_000 with
    | Engine.Breakpoint_hit pc when pc = target -> `There
    | Engine.Breakpoint_hit pc when pc = st.syms.Osbuild.sym_buf_full ->
      ignore (drain_coverage st : int);
      run_to ~strikes st ~target ~budget:(budget - 1)
    | Engine.Breakpoint_hit _ -> run_to ~strikes st ~target ~budget:(budget - 1)
    | Engine.Faulted _ -> `Dead
    | Engine.Exited -> `Dead
    | Engine.Fuel_exhausted ->
      run_to ~strikes:(strikes + 1) st ~target ~budget:(budget - 1)

let sample st =
  st.series <-
    {
      Campaign.iteration = st.iteration;
      virtual_s = Clock.now_s (Board.clock st.board);
      coverage = Feedback.covered st.fb;
    }
    :: st.series

let run ~seed ~iterations ?(snapshot_every = 10) build =
  let table = Osbuild.api_signatures build in
  match Eof_spec.Synth.validated_of_api table with
  | Error e -> Error (Eof_util.Eof_error.config e)
  | Ok spec ->
    let os = Osbuild.os_name build in
    let unsupported = unsupported_calls os in
    let spec =
      Campaign.filter_spec spec
        (List.filter_map
           (fun (c : Eof_spec.Ast.call) ->
             if List.mem c.Eof_spec.Ast.name unsupported then None
             else Some c.Eof_spec.Ast.name)
           spec.Eof_spec.Ast.calls)
    in
    let rng = Rng.create seed in
    let board = Osbuild.board build in
    let syms = Osbuild.syms build in
    let engine =
      Engine.create ~board ~fault_vector:syms.Osbuild.sym_handle_exception
        ~entry:(Agent.entry build)
    in
    Engine.set_breakpoint engine syms.Osbuild.sym_executor_main;
    Engine.set_breakpoint engine syms.Osbuild.sym_loop_back;
    Engine.set_breakpoint engine syms.Osbuild.sym_buf_full;
    let st =
      {
        build;
        board;
        engine;
        endianness = (Board.profile board).Board.arch.Arch.endianness;
        syms;
        fb = Feedback.create ~edge_capacity:(Osbuild.edge_capacity build);
        gen = Gen.create ~rng:(Rng.split rng) ~spec ~table ();
        rng;
        corpus = Eof_core.Corpus.create ~rng:(Rng.split rng) ();
        crash_table = Hashtbl.create 16;
        crash_order = [];
        crash_events = 0;
        executed = 0;
        resets = 0;
        stalls = 0;
        iteration = 0;
        series = [];
        current_prog = [];
      }
    in
    while st.iteration < iterations do
      st.iteration <- st.iteration + 1;
      (match run_to st ~target:syms.Osbuild.sym_executor_main ~budget:20 with
       | `Dead ->
         record_vm_death st ~kind:Crash.Kernel_panic ~message:"VM stopped responding";
         reset_vm st
       | `Stuck ->
         st.stalls <- st.stalls + 1;
         record_vm_death st ~kind:Crash.Hang ~message:"VM timeout";
         reset_vm st
       | `There ->
         let before = Feedback.covered st.fb in
         let crashes_before = Hashtbl.length st.crash_table in
         let prog =
           if (not (Eof_core.Corpus.is_empty st.corpus)) && Rng.chance st.rng 0.7 then
             match Eof_core.Corpus.pick st.corpus with
             | Some p -> Gen.mutate st.gen p ~max_len:12
             | None -> Gen.generate st.gen ~max_len:12
           else Gen.generate st.gen ~max_len:12
         in
         st.current_prog <- prog;
         (match
            Wire.write_to_ram ~mem:(Board.ram board) ~endianness:st.endianness
              ~base:(Osbuild.mailbox_base build)
              ~limit:(Agent.max_program_bytes build)
              (Prog.to_wire prog)
          with
          | Error _ -> ()
          | Ok () ->
            (match run_to st ~target:syms.Osbuild.sym_loop_back ~budget:20 with
             | `There ->
               st.executed <- st.executed + 1;
               ignore (drain_coverage st : int)
             | `Dead ->
               st.executed <- st.executed + 1;
               record_vm_death st ~kind:Crash.Kernel_panic
                 ~message:"VM stopped responding";
               reset_vm st
             | `Stuck ->
               st.stalls <- st.stalls + 1;
               record_vm_death st ~kind:Crash.Hang ~message:"VM timeout";
               reset_vm st);
            let new_edges = Feedback.covered st.fb - before in
            let fresh_crash = Hashtbl.length st.crash_table > crashes_before in
            (* Coverage guides Tardis; crash signals do not (it has no
               monitor to tell it which inputs crashed usefully). *)
            if new_edges > 0 then
              ignore
                (Eof_core.Corpus.add st.corpus ~prog ~new_edges ~crashed:false : bool);
            ignore fresh_crash));
      if st.iteration mod snapshot_every = 0 then sample st
    done;
    sample st;
    Ok
      {
        Campaign.os;
        coverage = Feedback.covered st.fb;
        series = List.rev st.series;
        crashes = List.rev st.crash_order;
        crash_events = st.crash_events;
        executed_programs = st.executed;
        resets = st.resets;
        reflashes = 0;
        stalls = st.stalls;
        timeouts = st.stalls;
        corpus_size = Eof_core.Corpus.size st.corpus;
        virtual_s = Clock.now_s (Board.clock board);
        iterations_done = st.iteration;
        coverage_bitmap = Feedback.snapshot st.fb;
        final_corpus = Eof_core.Corpus.progs st.corpus;
        abort_cause = None;
      }
