open Eof_os

(** SHiFT (Mera et al., USENIX Security 2024): semi-hosted fuzzing of
    embedded applications with true sanitizer/coverage feedback, but
    application-level random-buffer inputs and FreeRTOS-only support. *)

val run :
  seed:int64 -> iterations:int -> entry_api:string ->
  ?snapshot_every:int -> Osbuild.t -> (Eof_core.Campaign.outcome, Eof_util.Eof_error.t) result
(** Fails on targets other than FreeRTOS, mirroring the tool's support
    matrix. [iterations] is a wall-clock-equivalent budget: semihosting
    trap overhead halves the payload count actually executed. *)
