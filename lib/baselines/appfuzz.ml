open Eof_hw
open Eof_os
module Rng = Eof_util.Rng
module Session = Eof_debug.Session
module Wire = Eof_agent.Wire
module Agent = Eof_agent.Agent
module Machine = Eof_agent.Machine
module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash
module Feedback = Eof_core.Feedback
module Sancov = Eof_cov.Sancov
module Sitemap = Eof_cov.Sitemap

type guidance = Bp_sampling of int | Edge_feedback

type config = {
  seed : int64;
  iterations : int;
  entry_api : string;
  max_buf : int;
  guidance : guidance;
  sample_modules : string list;
  snapshot_every : int;
}

type state = {
  config : config;
  build : Osbuild.t;
  machine : Machine.t;
  session : Session.t;
  syms : Osbuild.syms;
  endianness : Arch.endianness;
  entry_index : int;
  bufgen : Bufgen.t;
  rng : Rng.t;
  fb : Feedback.t;  (* ground-truth coverage, for reporting *)
  corpus : Bufgen.Corpus.store;
  crash_table : (string, Crash.t) Hashtbl.t;
  mutable crash_order : Crash.t list;
  mutable crash_events : int;
  mutable executed : int;
  mutable resets : int;
  mutable iteration : int;
  mutable series : Campaign.sample list;
  (* Bp-sampling state *)
  mutable candidate_sites : int list;
  mutable armed_sites : int list;
  mutable sampled_hits : int;
}

let drain_coverage st =
  let layout = Osbuild.covbuf_layout st.build in
  match Session.read_u32 st.session ~addr:(Sancov.Layout.write_index_addr layout) with
  | Error _ -> 0
  | Ok widx ->
    let widx = min (Int32.to_int widx) layout.Sancov.Layout.capacity_records in
    if widx <= 0 then 0
    else begin
      match
        Session.read_mem st.session
          ~addr:(Sancov.Layout.records_addr layout)
          ~len:(4 * widx)
      with
      | Error _ -> 0
      | Ok raw ->
        ignore
          (Session.write_u32 st.session ~addr:(Sancov.Layout.write_index_addr layout) 0l
            : (unit, Session.error) result);
        Feedback.merge st.fb
          (Sancov.decode_records ~endianness:st.endianness ~count:widx raw)
    end

let record_crash st ~kind ~message =
  st.crash_events <- st.crash_events + 1;
  let crash =
    {
      Crash.os = Osbuild.os_name st.build;
      kind;
      operation = st.config.entry_api;
      scope = "app";
      message;
      backtrace = [];
      detected_by = Crash.Exception_monitor;
      program = "<byte buffer>";
      iteration = st.iteration;
    }
  in
  let key = Crash.dedup_key crash in
  if not (Hashtbl.mem st.crash_table key) then begin
    Hashtbl.replace st.crash_table key crash;
    st.crash_order <- crash :: st.crash_order
  end

let reboot st =
  ignore (Session.reset_target st.session : (unit, Session.error) result);
  st.resets <- st.resets + 1

(* Keep up to N sampled breakpoints armed on uncovered sites. *)
let rearm_samples st =
  match st.config.guidance with
  | Edge_feedback -> ()
  | Bp_sampling n ->
    let missing = n - List.length st.armed_sites in
    let rec arm k =
      if k > 0 then
        match st.candidate_sites with
        | [] -> ()
        | site :: rest ->
          st.candidate_sites <- rest;
          (match Session.set_breakpoint st.session site with
           | Ok () -> st.armed_sites <- site :: st.armed_sites
           | Error _ -> ());
          arm (k - 1)
    in
    arm missing

type run_result = { completed : bool; crashed : bool; bp_hits : int }

let rec drive st ~budget acc =
  if budget <= 0 then { acc with completed = false }
  else
    match Session.continue_ st.session with
    | Error _ ->
      reboot st;
      { acc with completed = false }
    | Ok (Session.Stopped_breakpoint pc) ->
      if pc = st.syms.Osbuild.sym_loop_back then begin
        ignore (drain_coverage st : int);
        ignore (Session.drain_uart st.session : (string, Session.error) result);
        { acc with completed = true }
      end
      else if pc = st.syms.Osbuild.sym_buf_full then begin
        ignore (drain_coverage st : int);
        drive st ~budget:(budget - 1) acc
      end
      else if pc = st.syms.Osbuild.sym_executor_main then { acc with completed = true }
      else if List.mem pc st.armed_sites then begin
        (* A sampled basic block fired: coverage progress in GDBFuzz's
           eyes. Relocate the breakpoint budget elsewhere. *)
        st.armed_sites <- List.filter (fun s -> s <> pc) st.armed_sites;
        ignore (Session.remove_breakpoint st.session pc : (unit, Session.error) result);
        st.sampled_hits <- st.sampled_hits + 1;
        drive st ~budget:(budget - 1) { acc with bp_hits = acc.bp_hits + 1 }
      end
      else if pc = st.syms.Osbuild.sym_handle_exception then begin
        let message =
          match Session.last_fault st.session with Ok f when f <> "" -> f | _ -> "fault"
        in
        ignore (Session.drain_uart st.session : (string, Session.error) result);
        record_crash st ~kind:Crash.Kernel_panic ~message;
        ignore (Session.continue_ st.session : (Session.stop, Session.error) result);
        reboot st;
        { acc with crashed = true; completed = true }
      end
      else drive st ~budget:(budget - 1) acc
    | Ok (Session.Stopped_fault _) ->
      let message =
        match Session.last_fault st.session with Ok f when f <> "" -> f | _ -> "fault"
      in
      record_crash st ~kind:Crash.Kernel_panic ~message;
      reboot st;
      { acc with crashed = true; completed = true }
    | Ok (Session.Stopped_quantum _) -> drive st ~budget:(budget - 1) acc
    | Ok Session.Target_exited ->
      reboot st;
      { acc with completed = false }

let goto_ready st =
  let rec go budget =
    if budget <= 0 then false
    else
      match Session.continue_ st.session with
      | Ok (Session.Stopped_breakpoint pc) when pc = st.syms.Osbuild.sym_executor_main ->
        true
      | Ok (Session.Stopped_breakpoint pc) when pc = st.syms.Osbuild.sym_buf_full ->
        ignore (drain_coverage st : int);
        go (budget - 1)
      | Ok (Session.Stopped_breakpoint pc) when List.mem pc st.armed_sites ->
        st.armed_sites <- List.filter (fun s -> s <> pc) st.armed_sites;
        ignore (Session.remove_breakpoint st.session pc : (unit, Session.error) result);
        go (budget - 1)
      | Ok (Session.Stopped_breakpoint _) -> go (budget - 1)
      | Ok (Session.Stopped_fault _) ->
        reboot st;
        go (budget - 1)
      | Ok (Session.Stopped_quantum _) -> go (budget - 1)
      | Ok Session.Target_exited ->
        reboot st;
        go (budget - 1)
      | Error _ ->
        reboot st;
        go (budget - 1)
  in
  go 30

let write_input st buf =
  let wire = [ { Wire.api_index = st.entry_index; args = [ Wire.W_str buf ] } ] in
  match Wire.encode ~endianness:st.endianness wire with
  | Error _ -> false
  | Ok payload ->
    let header = Bytes.create 8 in
    (match st.endianness with
     | Arch.Little ->
       Bytes.set_int32_le header 0 Wire.magic;
       Bytes.set_int32_le header 4 (Int32.of_int (String.length payload))
     | Arch.Big ->
       Bytes.set_int32_be header 0 Wire.magic;
       Bytes.set_int32_be header 4 (Int32.of_int (String.length payload)));
    (match
       Session.write_mem st.session ~addr:(Osbuild.mailbox_base st.build)
         (Bytes.to_string header ^ payload)
     with
     | Ok () -> true
     | Error _ -> false)

let sample st =
  st.series <-
    {
      Campaign.iteration = st.iteration;
      virtual_s = Machine.virtual_elapsed_s st.machine;
      coverage = Feedback.covered st.fb;
    }
    :: st.series

let run config build =
  let table = Osbuild.api_signatures build in
  let entry_index =
    let rec find i = function
      | [] -> None
      | (e : Eof_rtos.Api.entry) :: _ when e.Eof_rtos.Api.name = config.entry_api -> Some i
      | _ :: rest -> find (i + 1) rest
    in
    find 0 table.Eof_rtos.Api.entries
  in
  match entry_index with
  | None ->
    Error (Eof_util.Eof_error.config (Printf.sprintf "no entry API %s" config.entry_api))
  | Some entry_index ->
    (match Machine.create build with
     | Error e -> Error e
     | Ok machine ->
       let rng = Rng.create config.seed in
       let session = Machine.session machine in
       let syms = Osbuild.syms build in
       let candidate_sites =
         List.concat_map
           (fun m ->
             match Osbuild.module_block build m with
             | None -> []
             | Some block ->
               List.init block.Sitemap.count (fun i -> Sitemap.site_addr block i))
           config.sample_modules
       in
       let candidate_sites =
         let arr = Array.of_list candidate_sites in
         Rng.shuffle_in_place rng arr;
         Array.to_list arr
       in
       let st =
         {
           config;
           build;
           machine;
           session;
           syms;
           endianness = (Board.profile (Osbuild.board build)).Board.arch.Arch.endianness;
           entry_index;
           bufgen = Bufgen.create ~rng:(Rng.split rng) ~max_len:config.max_buf;
           rng;
           fb = Feedback.create ~edge_capacity:(Osbuild.edge_capacity build);
           corpus = Bufgen.Corpus.create ~rng:(Rng.split rng);
           crash_table = Hashtbl.create 16;
           crash_order = [];
           crash_events = 0;
           executed = 0;
           resets = 0;
           iteration = 0;
           series = [];
           candidate_sites;
           armed_sites = [];
           sampled_hits = 0;
         }
       in
       let arm addr =
         ignore (Session.set_breakpoint session addr : (unit, Session.error) result)
       in
       arm syms.Osbuild.sym_executor_main;
       arm syms.Osbuild.sym_loop_back;
       arm syms.Osbuild.sym_buf_full;
       arm syms.Osbuild.sym_handle_exception;
       while st.iteration < config.iterations do
         st.iteration <- st.iteration + 1;
         if goto_ready st then begin
           rearm_samples st;
           let input =
             match Bufgen.Corpus.pick st.corpus with
             | Some seed when Rng.chance st.rng 0.8 -> Bufgen.havoc st.bufgen seed
             | _ -> Bufgen.fresh st.bufgen
           in
           let before = Feedback.covered st.fb in
           if write_input st input then begin
             let result =
               drive st ~budget:100 { completed = false; crashed = false; bp_hits = 0 }
             in
             if result.completed then st.executed <- st.executed + 1;
             let interesting =
               match config.guidance with
               | Bp_sampling _ -> result.bp_hits > 0 || result.crashed
               | Edge_feedback -> Feedback.covered st.fb > before || result.crashed
             in
             if interesting then ignore (Bufgen.Corpus.add st.corpus input : bool)
           end
         end;
         if st.iteration mod config.snapshot_every = 0 then sample st
       done;
       sample st;
       Ok
         {
           Campaign.os = Osbuild.os_name build;
           coverage = Feedback.covered st.fb;
           series = List.rev st.series;
           crashes = List.rev st.crash_order;
           crash_events = st.crash_events;
           executed_programs = st.executed;
           resets = st.resets;
           reflashes = 0;
           stalls = 0;
           timeouts = 0;
           corpus_size = Bufgen.Corpus.size st.corpus;
           virtual_s = Machine.virtual_elapsed_s machine;
           iterations_done = st.iteration;
           coverage_bitmap = Feedback.snapshot st.fb;
           final_corpus = [];
           abort_cause = None;
         })
