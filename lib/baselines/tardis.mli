open Eof_os

(** The Tardis baseline: Syzkaller-derived, emulation-based embedded OS
    fuzzing (Shen et al., TCAD 2022).

    Faithful to its published mechanism and limits:
    - runs the target under an emulator (a QEMU-style board profile),
      so it is confined to targets with peripheral-accurate emulation;
    - exchanges test cases and coverage through shared memory — this
      driver touches board RAM and the engine directly, VM-introspection
      style, with no debug-probe protocol in between;
    - generates from hand-written API specifications that cover the core
      subsystems only ({!unsupported_calls} per OS) — no LLM-derived
      pseudo-syscalls or driver/diagnostic surfaces;
    - is coverage-guided, but its only bug/liveness signal is the
      timeout mechanism: a dead or wedged VM is noticed on the next
      poll, attributed to the last call started, with no exception or
      log monitors. *)

val unsupported_calls : string -> string list
(** Calls absent from Tardis's hand-written spec for the named OS. *)

val build_for : Osbuild.spec -> Osbuild.t
(** The target built for the QEMU board (instrumented, as Tardis's KCOV
    equivalent requires). *)

val run :
  seed:int64 -> iterations:int -> ?snapshot_every:int -> Osbuild.t ->
  (Eof_core.Campaign.outcome, Eof_util.Eof_error.t) result
