open Eof_hw
open Eof_exec
open Eof_os
module Rng = Eof_util.Rng
module Wire = Eof_agent.Wire
module Agent = Eof_agent.Agent
module Api = Eof_rtos.Api
module Campaign = Eof_core.Campaign
module Crash = Eof_core.Crash
module Feedback = Eof_core.Feedback
module Sancov = Eof_cov.Sancov

let build_for spec = Osbuild.make ~board_profile:Profiles.qemu_pok spec

let decode_genome ~table genome =
  let entries = Array.of_list table.Api.entries in
  let n = Array.length entries in
  let pos = ref 0 in
  let len = String.length genome in
  let byte () =
    if !pos >= len then None
    else begin
      let b = Char.code genome.[!pos] in
      incr pos;
      Some b
    end
  in
  let calls = ref [] in
  let call_index = ref 0 in
  let continue = ref true in
  while !continue do
    match byte () with
    | None -> continue := false
    | Some b ->
      let api_index = b mod n in
      let entry = entries.(api_index) in
      let args =
        List.map
          (fun (_, ty) ->
            match ty with
            | Api.A_int _ | Api.A_flags _ | Api.A_ptr _ ->
              (* four raw bytes, no range knowledge *)
              let v = ref 0L in
              for _ = 1 to 4 do
                match byte () with
                | Some b -> v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int b)
                | None -> ()
              done;
              Wire.W_int !v
            | Api.A_str _ | Api.A_buf _ ->
              let slice_len = match byte () with Some b -> b mod 64 | None -> 0 in
              let available = max 0 (len - !pos) in
              let take = min slice_len available in
              let s = String.sub genome !pos take in
              pos := !pos + take;
              Wire.W_str s
            | Api.A_res _ ->
              (match byte () with
               | Some b when !call_index > 0 -> Wire.W_res (b mod !call_index)
               | _ -> Wire.W_int 0L))
          entry.Api.args
      in
      calls := { Wire.api_index; args } :: !calls;
      incr call_index;
      if !call_index >= Wire.max_calls then continue := false
  done;
  List.rev !calls

let run ~seed ~iterations ?(snapshot_every = 10) build =
  let table = Osbuild.api_signatures build in
  let rng = Rng.create seed in
  let board = Osbuild.board build in
  let syms = Osbuild.syms build in
  let endianness = (Board.profile board).Board.arch.Arch.endianness in
  let engine =
    Engine.create ~board ~fault_vector:syms.Osbuild.sym_handle_exception
      ~entry:(Agent.entry build)
  in
  Engine.set_breakpoint engine syms.Osbuild.sym_executor_main;
  Engine.set_breakpoint engine syms.Osbuild.sym_loop_back;
  Engine.set_breakpoint engine syms.Osbuild.sym_buf_full;
  let fb = Feedback.create ~edge_capacity:(Osbuild.edge_capacity build) in
  let bufgen = Bufgen.create ~rng:(Rng.split rng) ~max_len:192 in
  let corpus = Bufgen.Corpus.create ~rng:(Rng.split rng) in
  let crash_table = Hashtbl.create 16 in
  let crash_order = ref [] in
  let crash_events = ref 0 in
  let executed = ref 0 in
  let resets = ref 0 in
  let series = ref [] in
  let iteration = ref 0 in
  let layout = Osbuild.covbuf_layout build in
  let ram = Board.ram board in
  let drain_coverage () =
    let widx =
      min
        (Int32.to_int (Memory.read_u32 ram (Sancov.Layout.write_index_addr layout)))
        layout.Sancov.Layout.capacity_records
    in
    if widx <= 0 then 0
    else begin
      let raw =
        Bytes.unsafe_to_string
          (Memory.read_bytes ram ~addr:(Sancov.Layout.records_addr layout) ~len:(4 * widx))
      in
      Memory.write_u32 ram (Sancov.Layout.write_index_addr layout) 0l;
      Feedback.merge fb (Sancov.decode_records ~endianness ~count:widx raw)
    end
  in
  let record_crash message =
    incr crash_events;
    let crash =
      {
        Crash.os = Osbuild.os_name build;
        kind = Crash.Kernel_panic;
        operation = "genome";
        scope = "vm";
        message;
        backtrace = [];
        detected_by = Crash.Timeout_only;
        program = "<genome>";
        iteration = !iteration;
      }
    in
    let key = Crash.dedup_key crash in
    if not (Hashtbl.mem crash_table key) then begin
      Hashtbl.replace crash_table key crash;
      crash_order := crash :: !crash_order
    end
  in
  let reset_vm () =
    Board.reset board;
    Engine.reset engine;
    incr resets
  in
  let rec run_to ?(strikes = 0) target budget =
    if budget <= 0 || strikes >= 2 then `Stuck
    else
      match Engine.run engine ~fuel:100_000 with
      | Engine.Breakpoint_hit pc when pc = target -> `There
      | Engine.Breakpoint_hit pc when pc = syms.Osbuild.sym_buf_full ->
        ignore (drain_coverage () : int);
        run_to ~strikes target (budget - 1)
      | Engine.Breakpoint_hit _ -> run_to ~strikes target (budget - 1)
      | Engine.Faulted _ | Engine.Exited -> `Dead
      | Engine.Fuel_exhausted -> run_to ~strikes:(strikes + 1) target (budget - 1)
  in
  let sample () =
    series :=
      {
        Campaign.iteration = !iteration;
        virtual_s = Clock.now_s (Board.clock board);
        coverage = Feedback.covered fb;
      }
      :: !series
  in
  while !iteration < iterations do
    incr iteration;
    (match run_to syms.Osbuild.sym_executor_main 20 with
     | `Dead ->
       record_crash "VM crashed";
       reset_vm ()
     | `Stuck ->
       record_crash "VM timeout";
       reset_vm ()
     | `There ->
       let genome =
         match Bufgen.Corpus.pick corpus with
         | Some seed when Rng.chance rng 0.8 -> Bufgen.havoc bufgen seed
         | _ -> Bufgen.fresh bufgen
       in
       let before = Feedback.covered fb in
       let program = decode_genome ~table genome in
       (match
          Wire.write_to_ram ~mem:ram ~endianness ~base:(Osbuild.mailbox_base build)
            ~limit:(Agent.max_program_bytes build)
            program
        with
        | Error _ -> ()
        | Ok () ->
          (match run_to syms.Osbuild.sym_loop_back 20 with
           | `There ->
             incr executed;
             ignore (drain_coverage () : int)
           | `Dead ->
             incr executed;
             record_crash "VM crashed";
             reset_vm ()
           | `Stuck ->
             record_crash "VM timeout";
             reset_vm ());
          if Feedback.covered fb > before then
            ignore (Bufgen.Corpus.add corpus genome : bool)));
    if !iteration mod snapshot_every = 0 then sample ()
  done;
  sample ();
  Ok
    {
      Campaign.os = Osbuild.os_name build;
      coverage = Feedback.covered fb;
      series = List.rev !series;
      crashes = List.rev !crash_order;
      crash_events = !crash_events;
      executed_programs = !executed;
      resets = !resets;
      reflashes = 0;
      stalls = 0;
      timeouts = 0;
      corpus_size = Bufgen.Corpus.size corpus;
      virtual_s = Clock.now_s (Board.clock board);
      iterations_done = !iteration;
      coverage_bitmap = Feedback.snapshot fb;
      final_corpus = [];
      abort_cause = None;
    }
