open Eof_os

(** GUSTAVE (Duverger & Gantet): AFL on top of a customized QEMU board,
    used on POK. The genome is a raw byte buffer that a thin harness
    decodes into a syscall sequence with no knowledge of argument
    constraints or resource kinds, so most decoded calls bounce off
    validation; coverage comes from QEMU TCG (read out of guest RAM
    here), and crashes are whole-VM faults. *)

val build_for : Osbuild.spec -> Osbuild.t
(** The target on the customized QEMU board profile. *)

val decode_genome : table:Eof_rtos.Api.table -> string -> Eof_agent.Wire.program
(** Exposed for tests: how the harness interprets genome bytes — api
    index modulo the table size, 4 raw bytes per int argument, a
    length-prefixed slice per string, a modulo-reference per resource. *)

val run :
  seed:int64 -> iterations:int -> ?snapshot_every:int -> Osbuild.t ->
  (Eof_core.Campaign.outcome, Eof_util.Eof_error.t) result
