open Eof_os

(** GDBFuzz (Eisele et al., ISSTA 2023): fuzzing embedded applications
    through the debug interface, with coverage feedback approximated by
    relocating a handful of hardware breakpoints across basic blocks.
    Application-level only — raw byte buffers into one entry function,
    no OS API awareness. *)

val run :
  seed:int64 -> iterations:int -> entry_api:string -> sample_modules:string list ->
  ?snapshot_every:int -> Osbuild.t -> (Eof_core.Campaign.outcome, Eof_util.Eof_error.t) result
(** Uses 6 hardware breakpoints, the budget of a Cortex-M FPB unit. *)
