open Eof_os

(** The differential oracle: run the same campaign on the debug-link
    backend and the native transplant backend, then assert that every
    observable result — digest, coverage, crash dedup set, corpus,
    recovery counts — is identical. The link path is ground truth (it is
    the one calibrated against the probe cost model); the native path is
    the throughput engine. Agreement on the same seed schedule is what
    licenses trusting native-only bulk campaigns.

    Both runs execute on fresh builds from the caller's factory, so
    neither inherits mutated board state from the other. Virtual times
    necessarily differ (the native backend charges no link latency);
    they are reported alongside as the measured speedup, never
    compared. *)

type mismatch = { field : string; link : string; native : string }

type verdict = {
  label : string;
  link_digest : string;
  native_digest : string;
  equal : bool;  (** digests match and no field-level mismatch *)
  mismatches : mismatch list;  (** where they diverged, when they did *)
  link_virtual_s : float;
  native_virtual_s : float;
  speedup_virtual : float;  (** link virtual time / native virtual time *)
}

val run :
  ?obs:Eof_obs.Obs.t ->
  Campaign.config ->
  (unit -> Osbuild.t) ->
  (verdict, Eof_util.Eof_error.t) result
(** One campaign per backend on fresh builds (the configured [backend]
    field is overridden per run). [Config] error when
    [config.fault_rate > 0]: a fault-injected link run has no native
    counterpart to compare against. *)

val run_farm :
  ?obs:Eof_obs.Obs.t ->
  Farm.config ->
  (int -> Osbuild.t) ->
  (verdict, Eof_util.Eof_error.t) result
(** The multi-board analogue, comparing whole-farm outcomes. *)

val report : verdict -> string
(** Multi-line human-readable verdict: both digests, field mismatches if
    any, and the virtual-time speedup. *)
