open Eof_spec

type arg = Int of int64 | Str of string | Res of int

type call = { spec : Ast.call; api_index : int; args : arg list }

type t = call list

let to_wire t =
  List.map
    (fun call ->
      {
        Eof_agent.Wire.api_index = call.api_index;
        args =
          List.map
            (function
              | Int v -> Eof_agent.Wire.W_int v
              | Str s -> Eof_agent.Wire.W_str s
              | Res k -> Eof_agent.Wire.W_res k)
            call.args;
      })
    t

let length = List.length

let hash t =
  Hashtbl.hash
    (List.map
       (fun c -> (c.api_index, List.map (function Int v -> `I v | Str s -> `S s | Res k -> `R k) c.args))
       t)

let producers_of t kind =
  List.mapi (fun i c -> (i, c)) t
  |> List.filter_map (fun (i, c) -> if c.spec.Ast.ret = Some kind then Some i else None)

let validate t =
  let arr = Array.of_list t in
  let rec go i =
    if i >= Array.length arr then Ok ()
    else begin
      let call = arr.(i) in
      if List.length call.args <> List.length call.spec.Ast.args then
        Error (Printf.sprintf "call %d (%s): arity mismatch" i call.spec.Ast.name)
      else begin
        let rec check_args args tys =
          match (args, tys) with
          | [], [] -> Ok ()
          | Res k :: rest, (_, Ast.Ty_res kind) :: trest ->
            if k < 0 || k >= i then
              Error (Printf.sprintf "call %d (%s): resource ref %d out of range" i call.spec.Ast.name k)
            else if arr.(k).spec.Ast.ret <> Some kind then
              Error
                (Printf.sprintf "call %d (%s): ref %d does not produce %s" i
                   call.spec.Ast.name k kind)
            else check_args rest trest
          | Res _ :: _, (_, _) :: _ ->
            Error (Printf.sprintf "call %d (%s): resource value for scalar arg" i call.spec.Ast.name)
          | _ :: _, (_, Ast.Ty_res _) :: _ ->
            Error (Printf.sprintf "call %d (%s): scalar value for resource arg" i call.spec.Ast.name)
          | _ :: rest, _ :: trest -> check_args rest trest
          | _, _ -> Error "arity"
        in
        match check_args call.args call.spec.Ast.args with
        | Ok () -> go (i + 1)
        | Error _ as e -> e
      end
    end
  in
  go 0

let of_wire ~spec ~table (wire : Eof_agent.Wire.program) =
  let entries = Array.of_list table.Eof_rtos.Api.entries in
  let rec go acc = function
    | [] ->
      let prog = List.rev acc in
      (match validate prog with Ok () -> Ok prog | Error e -> Error e)
    | (wc : Eof_agent.Wire.call) :: rest ->
      if wc.Eof_agent.Wire.api_index < 0 || wc.Eof_agent.Wire.api_index >= Array.length entries
      then Error (Printf.sprintf "api index %d out of table range" wc.Eof_agent.Wire.api_index)
      else begin
        let name = entries.(wc.Eof_agent.Wire.api_index).Eof_rtos.Api.name in
        match Ast.find_call spec name with
        | None -> Error (Printf.sprintf "call %S not in spec" name)
        | Some spec_call ->
          let args =
            List.map
              (function
                | Eof_agent.Wire.W_int v -> Int v
                | Eof_agent.Wire.W_str s -> Str s
                | Eof_agent.Wire.W_res k -> Res k)
              wc.Eof_agent.Wire.args
          in
          go ({ spec = spec_call; api_index = wc.Eof_agent.Wire.api_index; args } :: acc) rest
      end
  in
  go [] wire

let arg_to_string = function
  | Int v -> Int64.to_string v
  | Str s ->
    if String.length s <= 24 then Printf.sprintf "%S" s
    else Printf.sprintf "%S..<%d bytes>" (String.sub s 0 24) (String.length s)
  | Res k -> Printf.sprintf "r%d" k

let to_string t =
  String.concat "\n"
    (List.mapi
       (fun i call ->
         Printf.sprintf "%2d: %s(%s)%s" i call.spec.Ast.name
           (String.concat ", " (List.map arg_to_string call.args))
           (match call.spec.Ast.ret with Some r -> " -> " ^ r | None -> ""))
       t)
