open Eof_os

(** Board-farm orchestration: one fuzzing campaign sharded across N
    independent boards.

    Each shard owns a full single-board stack — board, flashed image,
    OpenOCD-style server, probe transport, debug session, agent and
    campaign state — exactly as N physical dev boards on N probes share
    nothing. What the shards {e do} share is host-side: a global
    coverage map, one cross-board corpus, and a crash-deduplication
    table keyed by crash signature. Sharing is {e epoch-based}: every
    [sync_every] payloads the farm merges shard-local discoveries into
    the global structures and pollinates the shared corpus back into
    the shards — amortizing synchronisation the way the vBatch link
    amortizes round trips, instead of contending on every payload.

    Two execution backends sit behind the same configuration:

    - {!Cooperative} — a deterministic scheduler interleaving
      single-board {!Campaign.step}s, always advancing the board whose
      target CPU clock is furthest behind (ties to the lowest index).
      The key is CPU time, not full virtual time, so the interleaving
      is identical on the link and native execution backends. Same
      config, same result, every run; and with [boards = 1] the
      schedule degenerates to the plain loop, so the outcome is
      bit-identical to {!Campaign.run}.
    - {!Domains} — one OCaml 5 domain per board for real wall-clock
      parallelism; shards sync through a mutex at their own epoch
      boundaries. Throughput-deterministic in virtual time, but merge
      order (hence exact corpus cross-pollination) depends on domain
      scheduling. *)

type backend = Cooperative | Domains

val backend_name : backend -> string

val backend_of_name : string -> (backend, string) result
(** ["cooperative"] or ["domains"] (case-insensitive). *)

type config = {
  boards : int;  (** shard count; 1 reduces to a plain campaign *)
  sync_every : int;
      (** payloads between epoch merges (farm-wide in cooperative mode,
          per shard in domain mode) *)
  backend : backend;
  base : Campaign.config;
      (** the campaign being sharded. [base.iterations] is the {e total}
          payload budget, split across boards round-robin; board 0 keeps
          [base.seed] (the [boards = 1] equivalence), the others derive
          independent streams from it. *)
}

val default_config : config
(** 1 board, sync every 25 payloads, cooperative backend, on
    {!Campaign.default_config}. *)

type sync_sample = {
  executed : int;  (** payloads merged into the global map so far *)
  virtual_s : float;  (** farm clock: max synced board virtual time *)
  coverage : int;  (** global distinct edges after the merge *)
}

type outcome = {
  boards : int;
  backend : backend;
  coverage : int;  (** distinct edges in the global map *)
  coverage_bitmap : Eof_util.Bitset.t;
  crashes : Crash.t list;
      (** cross-board deduplicated by {!Crash.dedup_key}, in global
          discovery (sync) order; first-seeing board's record kept *)
  crash_events : int;  (** total occurrences across all boards *)
  executed_programs : int;  (** sum over boards *)
  iterations_done : int;  (** sum over boards *)
  corpus_size : int;
  final_corpus : Prog.t list;
      (** the merged global corpus (shard order, duplicates dropped) *)
  virtual_s : float;
      (** campaign duration on the farm clock: the slowest board's
          virtual time — boards run in parallel, physically *)
  wall_s : float;  (** host wall-clock (meaningful for {!Domains}) *)
  syncs : int;  (** epoch merges performed *)
  sync_series : sync_sample list;  (** chronological, for time-to-coverage *)
  per_board : Campaign.outcome array;  (** each shard's own outcome *)
  dead_boards : int;
      (** boards whose recovery escalation ladder was exhausted: they
          stopped contributing, but the farm ran on with the survivors
          (their partial results are still merged) *)
}

val run :
  ?obs:Eof_obs.Obs.t ->
  ?inject_for:(int -> Eof_debug.Inject.config option) ->
  config ->
  (int -> Osbuild.t) ->
  (outcome, Eof_util.Eof_error.t) result
(** [run config mk_build] builds one target per board via [mk_build i]
    (factories are called sequentially and need not be thread-safe),
    shards the campaign and runs it to the total budget. Fails if any
    board fails to build or bring up its link, or if the boards
    disagree on coverage-map capacity (they must be builds of the same
    target).

    [inject_for i] overrides board [i]'s link-fault schedule; by
    default each board derives an independent injector seed from
    [base.fault_seed] when [base.fault_rate > 0], and runs a clean
    link otherwise. A board that dies mid-campaign (ladder exhausted)
    is simply skipped by the scheduler; the farm finishes on the
    survivors and reports it in [dead_boards].

    With [obs], each board emits on a {!Eof_obs.Obs.for_board}-derived
    handle of the same bus (events carry the board index, timestamped by
    that board's virtual clock) and the farm itself emits an
    [Epoch_sync] event per merge, timestamped by the farm clock. Under
    the {!Cooperative} backend the full event stream is deterministic;
    under {!Domains} the interleaving follows domain scheduling. *)
