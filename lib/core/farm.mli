open Eof_os

(** Board-farm orchestration: one fuzzing campaign sharded across N
    independent boards.

    Each shard owns a full single-board stack — board, flashed image,
    OpenOCD-style server, probe transport, debug session, agent and
    campaign state — exactly as N physical dev boards on N probes share
    nothing. What the shards {e do} share is host-side: a global
    coverage map, one cross-board corpus, and a crash-deduplication
    table keyed by crash signature. Sharing is {e epoch-based}: every
    [sync_every] payloads the farm merges shard-local discoveries into
    the global structures and pollinates the shared corpus back into
    the shards — amortizing synchronisation the way the vBatch link
    amortizes round trips, instead of contending on every payload.

    Two execution backends sit behind the same configuration:

    - {!Cooperative} — a deterministic scheduler interleaving
      single-board {!Campaign.step}s, always advancing the board whose
      target CPU clock is furthest behind (ties to the lowest index).
      The key is CPU time, not full virtual time, so the interleaving
      is identical on the link and native execution backends. Same
      config, same result, every run; and with [boards = 1] the
      schedule degenerates to the plain loop, so the outcome is
      bit-identical to {!Campaign.run}.
    - {!Domains} — real wall-clock parallelism on at most
      [Domain.recommended_domain_count] OCaml 5 domains; when boards
      outnumber cores each domain interleaves its shard group
      cooperatively (oversubscribed domains would stall each other at
      every minor-GC barrier). Shards sync through a mutex at their own
      epoch boundaries. Throughput-deterministic in virtual time, but
      merge order (hence exact corpus cross-pollination) depends on
      domain scheduling. *)

type backend = Cooperative | Domains

val backend_name : backend -> string

val backend_of_name : string -> (backend, string) result
(** ["cooperative"] or ["domains"] (case-insensitive). *)

type config = {
  boards : int;  (** shard count; 1 reduces to a plain campaign *)
  sync_every : int;
      (** payloads between epoch merges (farm-wide in cooperative mode,
          per shard in domain mode) *)
  backend : backend;
  base : Campaign.config;
      (** the campaign being sharded. [base.iterations] is the {e total}
          payload budget, split across boards round-robin; board 0 keeps
          [base.seed] (the [boards = 1] equivalence), the others derive
          independent streams from it. *)
}

val default_config : config
(** 1 board, sync every 25 payloads, cooperative backend, on
    {!Campaign.default_config}. *)

type sync_sample = {
  executed : int;  (** payloads merged into the global map so far *)
  virtual_s : float;  (** farm clock: max synced board virtual time *)
  coverage : int;  (** global distinct edges after the merge *)
}

type outcome = {
  boards : int;
  backend : backend;
  coverage : int;  (** distinct edges in the global map *)
  coverage_bitmap : Eof_util.Bitset.t;
  crashes : Crash.t list;
      (** cross-board deduplicated by {!Crash.dedup_key}, in global
          discovery (sync) order; first-seeing board's record kept *)
  crash_events : int;  (** total occurrences across all boards *)
  executed_programs : int;  (** sum over boards *)
  iterations_done : int;  (** sum over boards *)
  corpus_size : int;
  final_corpus : Prog.t list;
      (** the merged global corpus (shard order, duplicates dropped) *)
  virtual_s : float;
      (** campaign duration on the farm clock: the slowest board's
          virtual time — boards run in parallel, physically *)
  wall_s : float;  (** host wall-clock (meaningful for {!Domains}) *)
  syncs : int;  (** epoch merges performed *)
  sync_series : sync_sample list;  (** chronological, for time-to-coverage *)
  per_board : Campaign.outcome array;  (** each shard's own outcome *)
  dead_boards : int;
      (** boards whose recovery escalation ladder was exhausted: they
          stopped contributing, but the farm ran on with the survivors
          (their partial results are still merged) *)
}

type t
(** An in-progress farm: every shard built, linked and initialised, the
    shared structures allocated, no payload executed yet. The reentrant
    surface ({!init} / {!step} / {!finished} / {!finish}) is what lets an
    external scheduler — the hub's in-process fleet driver — interleave a
    farm with other farms and with protocol work, exactly as
    {!Campaign.init}/{!Campaign.step} let the farm interleave boards. *)

val init :
  ?obs:Eof_obs.Obs.t ->
  ?inject_for:(int -> Eof_debug.Inject.config option) ->
  config ->
  (int -> Osbuild.t) ->
  (t, Eof_util.Eof_error.t) result
(** Build and initialise every shard (see {!run} for the semantics of
    the arguments) without executing anything. *)

val step : t -> unit
(** Advance the cooperative scheduler by one campaign step: pick the
    board whose CPU clock is furthest behind (ties to the lowest index)
    and step it, merging an epoch every [sync_every] executed payloads.
    No-op when every board is finished. Raises [Invalid_argument] on a
    {!Domains} farm — only cooperative farms are externally steppable. *)

val finished : t -> bool

val next_cpu_s : t -> float option
(** The CPU clock of the board {!step} would advance next — the farm's
    scheduling key when an external driver interleaves several farms.
    [None] when the farm is finished. *)

val finish : t -> outcome
(** Run the closing epoch merge (unless the backend already did) and
    assemble the outcome. Idempotent: the outcome is computed once and
    cached. *)

(** {2 Mid-run observers}

    Safe while stepping cooperatively; they read the shared structures
    as of the last epoch merge. The hub worker uses these to ship
    discoveries to the fleet between epochs. *)

val coverage : t -> int

val coverage_bitmap : t -> Eof_util.Bitset.t
(** A snapshot copy (the live map keeps growing). *)

val exchange_corpus : t -> Corpus.t
(** The live shared corpus the shards pollinate through. *)

val crashes_so_far : t -> Crash.t list
(** Globally deduplicated, in discovery order. *)

val executed_so_far : t -> int

val virtual_now : t -> float
(** Farm-clock high-water mark at the last merge. *)

val syncs_so_far : t -> int

val adopt : t -> Prog.t list -> int
(** Graft externally discovered seeds (another farm's corpus, shipped
    through the hub) into the exchange corpus; they reach every shard at
    its next epoch pull. Returns how many were new (content-hash dedup
    applies). *)

val pause : t -> unit
(** Freeze a cooperative farm whose shard lease was revoked: run one
    off-cycle epoch merge (so the mid-run observers reflect everything
    executed) and stop the scheduler — {!step} becomes a no-op and
    {!next_cpu_s} returns [None]. Terminal for this instance; the hub
    rebuilds the shard elsewhere. Idempotent. *)

val paused : t -> bool

val run :
  ?obs:Eof_obs.Obs.t ->
  ?inject_for:(int -> Eof_debug.Inject.config option) ->
  config ->
  (int -> Osbuild.t) ->
  (outcome, Eof_util.Eof_error.t) result
(** [run config mk_build] builds one target per board via [mk_build i]
    (factories are called sequentially and need not be thread-safe),
    shards the campaign and runs it to the total budget. Fails if any
    board fails to build or bring up its link, or if the boards
    disagree on coverage-map capacity (they must be builds of the same
    target).

    [inject_for i] overrides board [i]'s link-fault schedule; by
    default each board derives an independent injector seed from
    [base.fault_seed] when [base.fault_rate > 0], and runs a clean
    link otherwise. A board that dies mid-campaign (ladder exhausted)
    is simply skipped by the scheduler; the farm finishes on the
    survivors and reports it in [dead_boards].

    With [obs], each board emits on a {!Eof_obs.Obs.for_board}-derived
    handle of the same bus (events carry the board index, timestamped by
    that board's virtual clock) and the farm itself emits an
    [Epoch_sync] event per merge, timestamped by the farm clock. Under
    the {!Cooperative} backend the full event stream is deterministic;
    under {!Domains} the interleaving follows domain scheduling. *)
