open Eof_spec
module Rng = Eof_util.Rng

type mode = Interp | Compiled

let mode_name = function Interp -> "interp" | Compiled -> "compiled"

let mode_of_name s =
  match String.lowercase_ascii s with
  | "interp" -> Ok Interp
  | "compiled" -> Ok Compiled
  | other -> Error (Printf.sprintf "unknown gen mode %S (expected interp|compiled)" other)

(* Compiled generation artifact: everything the interpreter re-derives
   from the spec on every argument — boundary candidate sets,
   powers-of-two tables, each call's required resource kinds — resolved
   once per (spec, table). The candidate lists are the exact values the
   interpreter's walks produce, in the same order, so every RNG draw is
   identical and compiled generation emits byte-for-byte the same
   programs per seed. *)
type int_plan = { boundaries : int64 list; powers : int64 list }

type compiled = {
  int_plans : (int64 * int64, int_plan) Hashtbl.t;  (* keyed (min, max) *)
  req_kinds : string list array;
      (* parallel to [calls]: distinct resource kinds each call consumes *)
}

type t = {
  rng : Rng.t;
  spec : Ast.t;
  calls : (Ast.call * int) array;  (* spec call, api-table index *)
  dep_aware : bool;
  plans : compiled option;  (* [Some] iff mode is [Compiled] *)
  (* Comparison operands harvested from the target's trace_cmp ring:
     the constants kernel code compares fuzz inputs against. *)
  int_hints : (int64, unit) Hashtbl.t;
  mutable hint_list : int64 array;
  mutable hints_dirty : bool;
}

(* Structure-bearing seeds for string/buffer arguments: JSON documents
   (including deep nesting), HTTP requests, device names, and the long
   names that overflow fixed fields. *)
let dictionary =
  [|
    "a";
    "config";
    "uart0";
    "/dev/ttyS0";
    "PATH";
    "name_that_is_quite_long_indeed_and_overflows";
    "{\"k\":1}";
    "{\"a\":{\"b\":{\"c\":{\"d\":{\"e\":{\"f\":{\"g\":{\"h\":{\"i\":{\"j\":1}}}}}}}}}";
    "[1,2,3]";
    "[[[[[[[[[[1]]]]]]]]]]";
    "{\"s\":\"v\\n\",\"n\":-3.5e2,\"b\":true,\"x\":null,\"u\":\"\\u0041\"}";
    "{bad json";
    "GET / HTTP/1.1\r\nHost: a\r\n\r\n";
    "POST /api/echo HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"k\":1}";
    "GET /devices?limit=8 HTTP/1.1\r\n\r\n";
    "GET /status HTTP/1.0\r\n\r\n";
    "DELETE /devices HTTP/1.1\r\n\r\n";
    "HELO / FTP/9.9\r\n\r\n";
    "status";
    "metrics";
    "api/echo";
    "devices?limit=3";
    "x=y";
    "";
  |]

let max_hints = 1024

let powers_of_two_in min max =
  let rec go acc p =
    if Int64.compare p 0L <= 0 || Int64.compare p max > 0 then acc
    else go (if Int64.compare p min >= 0 then p :: acc else acc) (Int64.mul p 2L)
  in
  go [] 1L

(* The interpreter's boundary candidate walk, verbatim: the compiled
   plan must store exactly this list for the choose_list draw to land on
   the same value. *)
let boundary_candidates ~min ~max =
  List.filter
    (fun v -> Int64.compare v min >= 0 && Int64.compare v max <= 0)
    [ min; max; 0L; 1L; Int64.add min 1L; Int64.sub max 1L ]

let compile spec (calls : (Ast.call * int) array) =
  let int_plans = Hashtbl.create 16 in
  let note_int ~min ~max =
    if not (Hashtbl.mem int_plans (min, max)) then
      Hashtbl.replace int_plans (min, max)
        { boundaries = boundary_candidates ~min ~max; powers = powers_of_two_in min max }
  in
  List.iter
    (fun (c : Ast.call) ->
      List.iter
        (fun (_, ty) ->
          match ty with Ast.Ty_int { min; max } -> note_int ~min ~max | _ -> ())
        c.Ast.args)
    spec.Ast.calls;
  let req_kinds =
    Array.map
      (fun ((c : Ast.call), _) ->
        List.filter_map
          (fun (_, ty) -> match ty with Ast.Ty_res k -> Some k | _ -> None)
          c.Ast.args
        |> List.sort_uniq compare)
      calls
  in
  { int_plans; req_kinds }

(* Compilation is memoized per (spec, table) the way Synth memoizes
   validated specs: every campaign over the same personality shares one
   artifact. The key covers the table's entry names because the call
   array is the spec filtered through the table. The artifact is
   read-only after construction, so sharing across domains is sound;
   the mutex covers racing builds. *)
let compiled_lock = Stdlib.Mutex.create ()

let compiled_memo : (string, compiled) Hashtbl.t = Hashtbl.create 8

let compiled_of ~spec ~(table : Eof_rtos.Api.table) calls =
  let key =
    Ast.to_syzlang spec ^ "#"
    ^ String.concat ","
        (List.map (fun (e : Eof_rtos.Api.entry) -> e.Eof_rtos.Api.name)
           table.Eof_rtos.Api.entries)
  in
  Stdlib.Mutex.protect compiled_lock (fun () ->
      match Hashtbl.find_opt compiled_memo key with
      | Some c -> c
      | None ->
        if Hashtbl.length compiled_memo >= 32 then Hashtbl.reset compiled_memo;
        let c = compile spec calls in
        Hashtbl.replace compiled_memo key c;
        c)

let create ?(dep_aware = true) ?(mode = Interp) ~rng ~spec ~table () =
  let calls = Array.of_list (Synth.index_map spec table) in
  if Array.length calls = 0 then invalid_arg "Gen.create: empty call set";
  {
    rng;
    spec;
    calls;
    dep_aware;
    plans = (match mode with Interp -> None | Compiled -> Some (compiled_of ~spec ~table calls));
    int_hints = Hashtbl.create 128;
    hint_list = [||];
    hints_dirty = false;
  }

let mode t = match t.plans with None -> Interp | Some _ -> Compiled

let add_int_hint t v =
  if Hashtbl.length t.int_hints < max_hints && not (Hashtbl.mem t.int_hints v) then begin
    Hashtbl.replace t.int_hints v ();
    t.hints_dirty <- true
  end

let hint_count t = Hashtbl.length t.int_hints

let hints t =
  if t.hints_dirty then begin
    t.hint_list <- Array.of_seq (Seq.map fst (Hashtbl.to_seq t.int_hints));
    t.hints_dirty <- false
  end;
  t.hint_list

let dep_aware t = t.dep_aware

(* Compiled plan lookup for an int range; [None] means interpret (the
   range always comes from a spec type, so compiled lookups only miss
   for ranges outside this spec's tables — recompute then, identical
   lists either way). *)
let int_plan_of t ~min ~max =
  match t.plans with
  | Some p -> Hashtbl.find_opt p.int_plans (min, max)
  | None -> None

let gen_int t ~min ~max =
  let rng = t.rng in
  let pick_boundary () =
    let candidates =
      match int_plan_of t ~min ~max with
      | Some plan -> plan.boundaries
      | None -> boundary_candidates ~min ~max
    in
    match candidates with [] -> min | cs -> Rng.choose_list rng cs
  in
  let pick_hint () =
    let hs = hints t in
    if Array.length hs = 0 then pick_boundary ()
    else begin
      let v = hs.(Rng.int rng (Array.length hs)) in
      let in_range x = Int64.compare x min >= 0 && Int64.compare x max <= 0 in
      if in_range v then v
      else begin
        (* Fold the harvested constant into the argument's range. *)
        let span = Int64.add (Int64.sub max min) 1L in
        if Int64.compare span 0L <= 0 then pick_boundary ()
        else
          let folded = Int64.add min (Int64.rem (Int64.logand v Int64.max_int) span) in
          if in_range folded then folded else pick_boundary ()
      end
    end
  in
  match Rng.int rng 100 with
  | n when n < 30 -> Rng.int64_in rng min max
  | n when n < 50 -> pick_boundary ()
  | n when n < 60 ->
    (* input-to-state: replay a constant the target compared against *)
    pick_hint ()
  | n when n < 80 ->
    let powers =
      match int_plan_of t ~min ~max with
      | Some plan -> plan.powers
      | None -> powers_of_two_in min max
    in
    (match powers with
     | [] -> pick_boundary ()
     | ps -> Rng.choose_list rng ps)
  | n when n < 95 ->
    (* small values: most APIs branch near zero *)
    let hi = Int64.min max (Int64.add min 16L) in
    Rng.int64_in rng min hi
  | _ ->
    (* wild: deliberately out of range, testing validation paths *)
    Rng.next64 rng

let gen_string t ~max_len =
  let rng = t.rng in
  let cap s = if String.length s > max_len then String.sub s 0 max_len else s in
  match Rng.int rng 100 with
  | n when n < 40 -> cap (Rng.choose rng dictionary)
  | n when n < 75 ->
    let len = Rng.int rng (max_len + 1) in
    String.init len (fun _ ->
        let alphabet = "abcdefghijklmnopqrstuvwxyz0123456789_/.{}[]\":, " in
        alphabet.[Rng.int rng (String.length alphabet)])
  | n when n < 90 ->
    let len = Rng.int rng (max_len + 1) in
    String.make len (Char.chr (Rng.int rng 256))
  | _ -> Bytes.unsafe_to_string (Rng.bytes rng (Rng.int rng (max_len + 1)))

let gen_flags t flags =
  let rng = t.rng in
  let v =
    List.fold_left
      (fun acc (_, bit) -> if Rng.bool rng then Int64.logor acc bit else acc)
      0L flags
  in
  if Rng.chance rng 0.1 then 0L else v

let gen_value t ~produced ty =
  match ty with
  | Ast.Ty_int { min; max } -> Prog.Int (gen_int t ~min ~max)
  | Ast.Ty_flags flags -> Prog.Int (gen_flags t flags)
  | Ast.Ty_str { max_len } | Ast.Ty_buf { max_len } -> Prog.Str (gen_string t ~max_len)
  | Ast.Ty_ptr { base; size; null_ok } ->
    (* Pointers: mostly valid RAM addresses (aligned and not), some
       NULLs, some garbage — what handwritten harnesses pass. *)
    let v =
      match Rng.int t.rng 100 with
      | n when n < 15 -> if null_ok then 0L else Int64.of_int base
      | n when n < 55 ->
        Int64.of_int (base + (Rng.int t.rng (max 1 (size / 4)) * 4))
      | n when n < 80 -> Int64.of_int (base + Rng.int t.rng (max 1 size))
      | _ -> Int64.logand (Rng.next64 t.rng) 0xFFFFFFFFL
    in
    Prog.Int v
  | Ast.Ty_res kind ->
    (match produced kind with
     | [] -> Prog.Int 0L (* no producer: degrade to a bogus handle *)
     | ps ->
       (* Bias toward the most recent instance, as handwritten test
          cases do. *)
       let ps = List.rev ps in
       let idx = if Rng.chance t.rng 0.6 then List.hd ps else Rng.choose_list t.rng ps in
       Prog.Res idx)

let satisfiable produced (call : Ast.call) =
  List.for_all
    (fun (_, ty) -> match ty with Ast.Ty_res kind -> produced kind <> [] | _ -> true)
    call.Ast.args

let has_res_args (call : Ast.call) =
  List.exists (fun (_, ty) -> match ty with Ast.Ty_res _ -> true | _ -> false) call.Ast.args

let missing_kinds t produced =
  List.filter (fun kind -> produced kind = []) t.spec.Ast.resources

let pick_call t ~pos ~produced =
  let missing = missing_kinds t produced in
  let candidates =
    match t.plans with
    | Some p when t.dep_aware ->
      (* Compiled: each call's required kinds were resolved at compile
         time, so satisfiability is a lookup instead of an argument
         walk. Candidate order, weights and the single weighted draw are
         identical to the interpreted path. *)
      let acc = ref [] in
      Array.iteri
        (fun i ((call : Ast.call), idx) ->
          if List.for_all (fun kind -> produced kind <> []) p.req_kinds.(i) then begin
            let boost =
              match call.Ast.ret with
              | Some kind when List.mem kind missing -> 3
              | _ -> 1
            in
            acc := ((call, idx), call.Ast.weight * boost) :: !acc
          end)
        t.calls;
      List.rev !acc
    | _ ->
      Array.to_list t.calls
      |> List.filter_map (fun (call, idx) ->
             if t.dep_aware then
               if satisfiable produced call then
                 let boost =
                   match call.Ast.ret with
                   | Some kind when List.mem kind missing -> 3
                   | _ -> 1
                 in
                 Some ((call, idx), call.Ast.weight * boost)
               else None
             else if pos = 0 && has_res_args call then None
               (* even blind generation cannot emit a backward reference
                  from the first call; the wire format forbids it *)
             else Some ((call, idx), call.Ast.weight))
  in
  match candidates with
  | [] -> None
  | cs -> Some (Rng.weighted t.rng cs)

let gen_args t ~pos ~produced (call : Ast.call) =
  List.map
    (fun (_, ty) ->
      match ty with
      | Ast.Ty_res kind when not t.dep_aware ->
        (* Blind mode: reference an arbitrary earlier call, usually of
           the wrong kind. *)
        ignore kind;
        if pos = 0 then Prog.Int 0L else Prog.Res (Rng.int t.rng pos)
      | ty -> gen_value t ~produced ty)
    call.Ast.args

let generate t ~max_len =
  let target = 1 + Rng.int t.rng (max max_len 1) in
  let acc = ref [] in
  let n = ref 0 in
  (* Compiled: producer positions tracked incrementally per kind —
     appended as calls are emitted — instead of rescanning the whole
     prefix (O(n^2) over program length) on every resource argument.
     Both paths yield the same ascending position lists, so the RNG
     stream is untouched. *)
  let producers : (string, int list) Hashtbl.t = Hashtbl.create 8 in
  let produced =
    match t.plans with
    | Some _ ->
      fun kind ->
        (match Hashtbl.find_opt producers kind with Some ps -> ps | None -> [])
    | None -> fun kind -> Prog.producers_of (List.rev !acc) kind
  in
  for pos = 0 to target - 1 do
    match pick_call t ~pos ~produced with
    | None -> ()
    | Some (call, idx) ->
      let args = gen_args t ~pos ~produced call in
      acc := { Prog.spec = call; api_index = idx; args } :: !acc;
      (match call.Ast.ret with
       | Some kind when Option.is_some t.plans ->
         Hashtbl.replace producers kind (produced kind @ [ !n ])
       | _ -> ());
      incr n
  done;
  List.rev !acc

(* --- mutation ------------------------------------------------------- *)

(* Rebuild a call list after structural edits: remap resource
   references through [mapping] (old position -> new position), retarget
   dangling/mismatched references to some surviving producer of the
   right kind, and drop calls that cannot be satisfied (dep-aware
   mode). *)
let repair t (calls : Prog.call list) =
  let kept = ref [] in
  (* old position -> new position of kept calls *)
  let mapping = Hashtbl.create 16 in
  List.iteri
    (fun old_pos (call : Prog.call) ->
      let new_pos = List.length !kept in
      let produced kind = Prog.producers_of (List.rev !kept) kind in
      let ok = ref true in
      let args =
        List.map2
          (fun arg (_, ty) ->
            match (arg, ty) with
            | Prog.Res old_ref, Ast.Ty_res kind ->
              let retarget () =
                match produced kind with
                | [] ->
                  if t.dep_aware then ok := false;
                  Prog.Int 0L
                | ps -> Prog.Res (List.nth ps (Rng.int t.rng (List.length ps)))
              in
              (match Hashtbl.find_opt mapping old_ref with
               | Some new_ref ->
                 let target = List.nth (List.rev !kept) new_ref in
                 if target.Prog.spec.Ast.ret = Some kind then Prog.Res new_ref
                 else retarget ()
               | None -> retarget ())
            | Prog.Res _, _ ->
              (* a scalar slot holding a reference: regenerate *)
              gen_value t ~produced ty
            | arg, Ast.Ty_res kind ->
              if t.dep_aware then
                (match produced kind with
                 | [] ->
                   ok := false;
                   arg
                 | ps -> Prog.Res (List.nth ps (Rng.int t.rng (List.length ps))))
              else arg
            | arg, _ -> arg)
          call.Prog.args call.Prog.spec.Ast.args
      in
      if !ok then begin
        Hashtbl.replace mapping old_pos new_pos;
        kept := { call with Prog.args } :: !kept
      end)
    calls;
  List.rev !kept

let tweak_int t v =
  (* Multi-scale arithmetic steps: fine steps converge on a comparison
     target once distance buckets reward the direction; coarse steps and
     bit flips escape plateaus. *)
  match Rng.int t.rng 10 with
  | 0 | 1 | 2 -> Int64.add v (Int64.of_int (1 + Rng.int t.rng 32))
  | 3 | 4 | 5 -> Int64.sub v (Int64.of_int (1 + Rng.int t.rng 32))
  | 6 -> Int64.logxor v (Int64.shift_left 1L (Rng.int t.rng 8))
  | 7 -> Int64.logxor v (Int64.shift_left 1L (Rng.int t.rng 63))
  | 8 -> Int64.neg v
  | _ -> Int64.mul v 2L

let tweak_str t s =
  let b = Bytes.of_string s in
  match Rng.int t.rng 3 with
  | 0 -> Bytes.unsafe_to_string (Bytes.cat b (Bytes.make 1 (Char.chr (Rng.int t.rng 256))))
  | 1 when Bytes.length b > 0 -> Bytes.sub_string b 0 (Bytes.length b - 1)
  | _ when Bytes.length b > 0 ->
    Bytes.set b (Rng.int t.rng (Bytes.length b)) (Char.chr (Rng.int t.rng 256));
    Bytes.unsafe_to_string b
  | _ -> "x"

let mutate_arg t (prog : Prog.t) =
  let arr = Array.of_list prog in
  let with_args =
    Array.to_list arr
    |> List.mapi (fun i c -> (i, c))
    |> List.filter (fun (_, (c : Prog.call)) -> c.Prog.args <> [])
  in
  match with_args with
  | [] -> prog
  | _ ->
    let i, call = List.nth with_args (Rng.int t.rng (List.length with_args)) in
    let j = Rng.int t.rng (List.length call.Prog.args) in
    let produced kind =
      Prog.producers_of (Array.to_list (Array.sub arr 0 i)) kind
    in
    let _, ty = List.nth call.Prog.spec.Ast.args j in
    let args =
      List.mapi
        (fun k arg ->
          if k <> j then arg
          else if Rng.chance t.rng 0.6 then gen_value t ~produced ty
          else
            match arg with
            | Prog.Int v -> Prog.Int (tweak_int t v)
            | Prog.Str s -> Prog.Str (tweak_str t s)
            | Prog.Res _ -> gen_value t ~produced ty)
        call.Prog.args
    in
    arr.(i) <- { call with Prog.args };
    Array.to_list arr

let insert_call t (prog : Prog.t) ~max_len =
  if List.length prog >= max_len then prog
  else begin
    let pos = Rng.int t.rng (List.length prog + 1) in
    let prefix = List.filteri (fun i _ -> i < pos) prog in
    let suffix = List.filteri (fun i _ -> i >= pos) prog in
    let produced kind = Prog.producers_of prefix kind in
    match pick_call t ~pos ~produced with
    | None -> prog
    | Some (call, idx) ->
      let args = gen_args t ~pos ~produced call in
      let inserted = { Prog.spec = call; api_index = idx; args } in
      (* Shift references in the suffix past the insertion point. *)
      let suffix =
        List.map
          (fun (c : Prog.call) ->
            {
              c with
              Prog.args =
                List.map
                  (function
                    | Prog.Res k when k >= pos -> Prog.Res (k + 1)
                    | arg -> arg)
                  c.Prog.args;
            })
          suffix
      in
      prefix @ (inserted :: suffix)
  end

let delete_call t (prog : Prog.t) =
  if List.length prog <= 1 then prog
  else begin
    let pos = Rng.int t.rng (List.length prog) in
    repair t (List.filteri (fun i _ -> i <> pos) prog)
  end

let insert_after pos (call : Prog.call) prog =
  let prefix = List.filteri (fun i _ -> i <= pos) prog in
  let suffix = List.filteri (fun i _ -> i > pos) prog in
  let suffix =
    List.map
      (fun (c : Prog.call) ->
        {
          c with
          Prog.args =
            List.map
              (function Prog.Res k when k > pos -> Prog.Res (k + 1) | arg -> arg)
              c.Prog.args;
        })
      suffix
  in
  prefix @ (call :: suffix)

let duplicate_call t (prog : Prog.t) ~max_len =
  if prog = [] || List.length prog >= max_len then prog
  else begin
    let pos = Rng.int t.rng (List.length prog) in
    let call = List.nth prog pos in
    insert_after pos call prog
  end

let swap_adjacent t (prog : Prog.t) =
  if List.length prog < 2 then prog
  else begin
    let arr = Array.of_list prog in
    let i = Rng.int t.rng (Array.length arr - 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(i + 1);
    arr.(i + 1) <- tmp;
    repair t (Array.to_list arr)
  end

let mutate_once t prog ~max_len =
  match Rng.int t.rng 100 with
  | n when n < 45 -> mutate_arg t prog
  | n when n < 65 -> insert_call t prog ~max_len
  | n when n < 80 -> delete_call t prog
  | n when n < 90 -> duplicate_call t prog ~max_len
  | _ -> swap_adjacent t prog

(* Focused mutation: the burst after a narrow find exists to finish a
   comparison gradient, so it only touches integer arguments (tweaks and
   hint replays) and grows the call chain — string churn belongs to the
   exploration phase. *)
let mutate_int_arg t (prog : Prog.t) =
  let arr = Array.of_list prog in
  let int_args = ref [] in
  Array.iteri
    (fun i (c : Prog.call) ->
      List.iteri
        (fun j arg -> match arg with Prog.Int _ -> int_args := (i, j) :: !int_args | _ -> ())
        c.Prog.args)
    arr;
  match !int_args with
  | [] -> prog
  | picks ->
    let i, j = List.nth picks (Rng.int t.rng (List.length picks)) in
    let call = arr.(i) in
    let args =
      List.mapi
        (fun k arg ->
          if k <> j then arg
          else
            match arg with
            | Prog.Int v ->
              if Rng.chance t.rng 0.3 then
                let produced kind = Prog.producers_of (Array.to_list (Array.sub arr 0 i)) kind in
                (match List.nth_opt call.Prog.spec.Ast.args j with
                 | Some (_, ty) -> gen_value t ~produced ty
                 | None -> Prog.Int (tweak_int t v))
              else Prog.Int (tweak_int t v)
            | arg -> arg)
        call.Prog.args
    in
    arr.(i) <- { call with Prog.args };
    Array.to_list arr

let mutate_focus t prog ~max_len =
  let mutated =
    match Rng.int t.rng 100 with
    | n when n < 70 -> mutate_int_arg t prog
    | n when n < 90 -> duplicate_call t prog ~max_len
    | _ -> insert_call t prog ~max_len
  in
  match mutated with [] -> generate t ~max_len | p -> p

let mutate t prog ~max_len =
  (* Stack a few edits, as AFL's havoc stage does: single tweaks mostly
     re-execute the parent. *)
  let rounds = 1 + Rng.int t.rng 3 in
  let rec go prog n = if n <= 0 then prog else go (mutate_once t prog ~max_len) (n - 1) in
  match go prog rounds with [] -> generate t ~max_len | p -> p


let low32 v = Int64.logand v 0xFFFFFFFFL

(* Comparisons against tiny constants (0, 1, small counters) match fuzz
   inputs constantly by coincidence; Redqueen handles this with input
   colorization, we simply ignore the noisy low values. *)
let informative v = Int64.compare (low32 v) 8L >= 0

let substitute t prog ~pairs =
  let pairs = List.filter (fun (a, b) -> informative a && informative b) pairs in
  if pairs = [] then None
  else begin
    (* Collect (position, arg index, replacement) candidates. *)
    let candidates = ref [] in
    List.iteri
      (fun pos (call : Prog.call) ->
        List.iteri
          (fun ai arg ->
            match arg with
            | Prog.Int v ->
              List.iter
                (fun (a, b) ->
                  if Int64.equal (low32 v) (low32 a) && not (Int64.equal (low32 a) (low32 b))
                  then candidates := (pos, ai, b) :: !candidates
                  else if
                    Int64.equal (low32 v) (low32 b) && not (Int64.equal (low32 a) (low32 b))
                  then candidates := (pos, ai, a) :: !candidates)
                pairs
            | Prog.Str _ | Prog.Res _ -> ())
          call.Prog.args)
      prog;
    let patch (pos, ai, replacement) =
      List.mapi
        (fun p (call : Prog.call) ->
          if p <> pos then call
          else
            {
              call with
              Prog.args =
                List.mapi
                  (fun i arg -> if i = ai then Prog.Int replacement else arg)
                  call.Prog.args;
            })
        prog
    in
    match !candidates with
    | [] -> None
    | cs ->
      let pos, ai, replacement = List.nth cs (Rng.int t.rng (List.length cs)) in
      (* Strict-inequality guards want the constant plus or minus one as
         often as the constant itself. *)
      let replacement =
        match Rng.int t.rng 3 with
        | 0 -> replacement
        | 1 -> Int64.add replacement 1L
        | _ -> Int64.sub replacement 1L
      in
      Some (patch (pos, ai, replacement))
  end

let substitute_all _t prog ~pairs =
  let pairs = List.filter (fun (a, b) -> informative a && informative b) pairs in
  if pairs = [] then []
  else begin
    let candidates = ref [] in
    List.iteri
      (fun pos (call : Prog.call) ->
        List.iteri
          (fun ai arg ->
            match arg with
            | Prog.Int v ->
              List.iter
                (fun (a, b) ->
                  if Int64.equal (low32 v) (low32 a) && not (Int64.equal (low32 a) (low32 b))
                  then candidates := (pos, ai, b) :: !candidates
                  else if
                    Int64.equal (low32 v) (low32 b) && not (Int64.equal (low32 a) (low32 b))
                  then candidates := (pos, ai, a) :: !candidates)
                pairs
            | Prog.Str _ | Prog.Res _ -> ())
          call.Prog.args)
      prog;
    let distinct = List.sort_uniq compare !candidates in
    List.concat_map
      (fun (pos, ai, replacement) ->
        let patch r =
          List.mapi
            (fun p (call : Prog.call) ->
              if p <> pos then call
              else
                {
                  call with
                  Prog.args =
                    List.mapi (fun i arg -> if i = ai then Prog.Int r else arg) call.Prog.args;
                })
            prog
        in
        [ patch replacement; patch (Int64.add replacement 1L) ])
      distinct
  end
