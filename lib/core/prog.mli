open Eof_spec

(** Typed test-case programs: call sequences over a validated
    specification, one level above the wire format. *)

type arg = Int of int64 | Str of string | Res of int  (** producing call's position *)

type call = { spec : Ast.call; api_index : int; args : arg list }

type t = call list

val to_wire : t -> Eof_agent.Wire.program

val of_wire :
  spec:Ast.t -> table:Eof_rtos.Api.table -> Eof_agent.Wire.program -> (t, string) result
(** Rebind a wire program to a typed program against [spec]/[table] —
    the inverse of {!to_wire} for corpus transfer between processes
    fuzzing the same personality. Each call's [api_index] is resolved
    through the table to its spec entry, then the whole program is
    {!validate}d. *)

val length : t -> int

val hash : t -> int
(** Stable content hash for corpus deduplication. *)

val validate : t -> (unit, string) result
(** Structural sanity: resource references point at earlier calls that
    produce the kind the argument expects, and argument counts match the
    spec. Generation and mutation must only emit programs that pass. *)

val producers_of : t -> string -> int list
(** Positions of calls producing the kind, ascending. *)

val to_string : t -> string
(** Human-readable listing used in crash reports. *)
