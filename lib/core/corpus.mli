(** The seed corpus: interesting programs and their selection weights.

    A program enters the corpus when it triggered new coverage or
    revealed a fault (the paper's "interesting" rule); selection for
    mutation favours seeds that recently produced new edges, decaying as
    they are reused. *)

type t

val create : ?capacity:int -> rng:Eof_util.Rng.t -> unit -> t
(** Default capacity 512 seeds; the stalest seeds are evicted. *)

val add : t -> prog:Prog.t -> new_edges:int -> crashed:bool -> bool
(** [false] if the program was a duplicate (by content hash). *)

val size : t -> int

val is_empty : t -> bool

val pick : t -> Prog.t option
(** Weighted selection; [None] when empty. Each pick ages the seed. *)

val merge : t -> t -> int
(** [merge dst src] imports every seed of [src] that [dst] has not seen
    (by content hash — a program already imported from another shard, or
    previously evicted from [dst], is rejected), preserving each seed's
    selection score and [src]'s addition order; [dst]'s eviction policy
    applies as it fills. Returns how many seeds were imported. [src] is
    untouched. This is the cross-shard corpus exchange primitive of the
    board farm. *)

val progs : t -> Prog.t list
(** Current seeds, most recent first (for persistence). *)

val total_added : t -> int
