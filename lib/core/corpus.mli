(** The seed corpus: interesting programs, their selection weights, and
    the schedule that turns them into mutation budgets.

    A program enters the corpus when it triggered new coverage or
    revealed a fault (the paper's "interesting" rule); selection for
    mutation favours seeds that recently produced new edges, decaying as
    they are reused. Under the [Energy] schedule a selected seed also
    receives an exponential mutation budget (AFLFast-style power
    scheduling) judged against the per-target rare-edge frontier. *)

type schedule =
  | Uniform  (** the original lottery: every pick earns one mutation *)
  | Energy
      (** power schedule: rare-edge frontier seeds earn exponentially
          larger mutation budgets before the next pick *)

val schedule_name : schedule -> string

val schedule_of_name : string -> (schedule, string) result

type target
(** One personality x API-table shape. Frontier maps are keyed on it,
    and every seed carries the target it was admitted under. *)

val default_target : target

val target_of : os:string -> table:Eof_rtos.Api.table -> target
(** Digest of the table's entry names and argument shapes, prefixed
    with the personality name: equal surfaces are equal targets. *)

val target_name : target -> string

type t

val create :
  ?capacity:int -> ?schedule:schedule -> ?target:target ->
  rng:Eof_util.Rng.t -> unit -> t
(** Default capacity 512 seeds; the stalest seeds are evicted. [target]
    tags locally admitted seeds (default {!default_target});
    [schedule] defaults to [Uniform], which behaves exactly as the
    corpus always has. *)

val schedule : t -> schedule

val add : ?target:target -> t -> prog:Prog.t -> new_edges:int -> crashed:bool -> bool
(** [false] if the program was a duplicate (by content hash). A narrow
    find (1-4 new edges) also joins its target's rare-edge frontier. *)

val size : t -> int

val is_empty : t -> bool

val pick : t -> Prog.t option
(** Weighted selection; [None] when empty. Each pick ages the seed.
    Equivalent to {!next} with the energy discarded. *)

val next : t -> target:target -> (Prog.t * int) option
(** The scheduler interface: one weighted selection plus the energy the
    caller should spend mutating it before picking again. Under
    [Uniform] the energy is always 1 (and the selection stream is
    identical to {!pick}); under [Energy] it is [1 lsl bonus] up to 16,
    boosted for seeds on [target]'s rare-edge frontier, first picks and
    crash/broad finds. *)

val on_frontier : t -> target:target -> Prog.t -> bool
(** Is this program currently among [target]'s recent rare finds? *)

val frontier_size : t -> target:target -> int

val merge : t -> t -> int
(** [merge dst src] imports every seed of [src] that [dst] has not seen
    (by content hash — a program already imported from another shard, or
    previously evicted from [dst], is rejected), preserving each seed's
    full schedule state (score, picks, admission credit, target tag) and
    [src]'s addition order; [dst]'s eviction policy applies as it fills.
    Per-target frontiers merge as well, [src]'s rare finds ranking ahead
    of [dst]'s. Returns how many seeds were imported. [src] is
    untouched. This is the cross-shard corpus exchange primitive of the
    board farm and the hub. *)

val progs : t -> Prog.t list
(** Current seeds, most recent first (for persistence). *)

val total_added : t -> int
