(** Host-side coverage accumulation. *)

type t

val create : edge_capacity:int -> t

val merge : t -> int list -> int
(** Fold a batch of edge indices in; returns how many were new. Edges
    outside the capacity are ignored (defensive against a corrupted
    coverage buffer). *)

val merge_array : t -> int array -> len:int -> int
(** Like {!merge} but over the first [len] entries of a scratch array —
    the allocation-free path used by the batched coverage drain. *)

val union_into : dst:t -> src:t -> int
(** Or [src]'s bitmap into [dst]'s; returns how many edges were new to
    [dst]. Capacities must match (same build). This is the farm's epoch
    merge: one bulk union per sync instead of re-replaying edge lists. *)

val covered : t -> int
(** Distinct edges seen so far. *)

val snapshot : t -> Eof_util.Bitset.t
(** A copy of the current bitmap. *)
