(** Human-readable crash reports and campaign summaries. *)

val crash_to_text : Crash.t -> string
(** Full report: identity header, detection channel, message, the
    captured backtrace, and the triggering program. *)

val save_crashes : dir:string -> Crash.t list -> (string list, string) result
(** Write one report per crash into [dir] (created if missing) as
    [crash-NN-<operation>.txt]; returns the paths written. *)

val outcome_summary : Campaign.outcome -> string
(** The multi-line summary the CLI prints after a campaign. *)

val digest_line :
  label:string ->
  coverage:int ->
  bitmap:Eof_util.Bitset.t ->
  corpus:Prog.t list ->
  crashes:Crash.t list ->
  crash_events:int ->
  executed:int ->
  iterations_done:int ->
  string
(** A wall-clock-free fingerprint of observable campaign results:
    coverage bitmap bits, corpus program hashes, crash dedup keys and
    the headline counts, CRC'd into one printable line. Virtual time is
    deliberately excluded — the determinism CI and the link/native
    differential oracle both compare digests, and the two backends agree
    on results but not on clocks. *)

val campaign_digest : Campaign.outcome -> string

val farm_digest : Farm.outcome -> string

val fleet_digest : (string * string) list -> string
(** [(tenant, digest_line)] pairs — the per-tenant campaign digests of a
    hub run — CRC'd in tenant order into one fleet-level fingerprint, so
    multi-tenant fleet soaks are [cmp]-checkable the same way single
    campaigns and farms are. Order-insensitive: pairs are sorted by
    tenant before hashing. *)
