open Eof_spec

(* Cross-personality transplantation: retype a program admitted under
   one API table against another personality's spec/table, so a seed
   that paid for itself on FreeRTOS can prime the Zephyr shards. The
   mapping is deterministic — no RNG anywhere — so the hub relaying a
   transplant is as replayable as everything else:

   - calls match by resource signature ({!Ast.call_shape}: argument
     shapes in order plus return-resource-ness), taking the first
     destination call, in destination table order, whose resource
     kinds are consistent with the kind mapping accumulated so far
     (src kind -> dst kind, injective); a producer whose resource the
     program later consumes prefers, among the shape-compatible
     candidates, the first whose destination kind can also serve those
     consumer shapes — without the lookahead a producer binds to a
     kind nothing downstream can use and the consumers drop, which
     breaks round-trip stability;
   - unmappable calls are dropped, and surviving resource references
     are remapped through the survivors (a reference whose producer
     was dropped retargets to the most recent surviving producer of
     the right kind, or drops the call);
   - scalar arguments are re-fitted to the destination types: integers
     clamp into the destination range, flags mask to the destination
     bit set, pointers clamp into the destination window, strings and
     buffers truncate;
   - the result must pass {!Prog.validate} — a transplant that cannot
     be proven well-typed is discarded, never relayed. *)

type outcome = { prog : Prog.t; kept : int; dropped : int }

(* Extend the kind mapping with src->dst if consistent; the mapping is
   kept injective so two distinct source kinds never collapse into one
   destination kind (which would let a mutex double as a queue). *)
let bind_kind kmap rmap sk dk =
  match (List.assoc_opt sk kmap, List.assoc_opt dk rmap) with
  | Some dk', _ -> if String.equal dk' dk then Some (kmap, rmap) else None
  | None, Some sk' -> if String.equal sk' sk then Some (kmap, rmap) else None
  | None, None -> Some ((sk, dk) :: kmap, (dk, sk) :: rmap)

(* Do the two argument vectors agree shape-for-shape, and do their
   resource kinds extend the mapping consistently? *)
let rec args_compat kmap rmap sargs dargs =
  match (sargs, dargs) with
  | [], [] -> Some (kmap, rmap)
  | (_, sty) :: srest, (_, dty) :: drest ->
    (match (sty, dty) with
     | Ast.Ty_res sk, Ast.Ty_res dk ->
       (match bind_kind kmap rmap sk dk with
        | None -> None
        | Some (kmap, rmap) -> args_compat kmap rmap srest drest)
     | sty, dty ->
       if Ast.same_shape sty dty then args_compat kmap rmap srest drest
       else None)
  | _, _ -> None

let call_compat kmap rmap (src : Ast.call) (dst : Ast.call) =
  let ret_bound =
    match (src.Ast.ret, dst.Ast.ret) with
    | None, None -> Some (kmap, rmap)
    | Some sk, Some dk -> bind_kind kmap rmap sk dk
    | Some _, None | None, Some _ -> None
  in
  match ret_bound with
  | None -> None
  | Some (kmap, rmap) -> args_compat kmap rmap src.Ast.args dst.Ast.args

(* Lookahead shape test: could [dst] stand in for consumer [src] once
   the produced kind maps sk -> dk? Resource kinds other than [sk] are
   wildcards — their bindings are settled when the consumer itself is
   mapped. *)
let wild_shape_compat ~sk ~dk (src : Ast.call) (dst : Ast.call) =
  (match (src.Ast.ret, dst.Ast.ret) with
   | None, None | Some _, Some _ -> true
   | Some _, None | None, Some _ -> false)
  && List.length src.Ast.args = List.length dst.Ast.args
  && List.for_all2
       (fun (_, sty) (_, dty) ->
         match (sty, dty) with
         | Ast.Ty_res k, Ast.Ty_res k' ->
           (not (String.equal k sk)) || String.equal k' dk
         | Ast.Ty_res _, _ | _, Ast.Ty_res _ -> false
         | sty, dty -> Ast.same_shape sty dty)
       src.Ast.args dst.Ast.args

(* Every consumer shape of the produced resource must have at least one
   destination entry able to accept kind [dk] in the same slot. *)
let serves_consumers dst_calls ~consumers ~sk ~dk =
  List.for_all
    (fun cs ->
      List.exists (fun ((dcall : Ast.call), _) -> wild_shape_compat ~sk ~dk cs dcall) dst_calls)
    consumers

(* Most recent already-kept position producing [kind], scanning the
   kept list (newest-first). *)
let recent_producer kept kind =
  let rec go = function
    | [] -> None
    | (pos, c) :: rest ->
      if c.Prog.spec.Ast.ret = Some kind then Some pos else go rest
  in
  go kept

let clamp_int v ~min ~max =
  if Int64.compare v min < 0 then min
  else if Int64.compare v max > 0 then max
  else v

let flags_union flags =
  List.fold_left (fun acc (_, bit) -> Int64.logor acc bit) 0L flags

(* Re-fit one argument to the destination slot type. [kept] is the
   surviving prefix (newest-first, with new positions); [remap] maps
   old positions to new ones. Returns [None] when a resource slot
   cannot be satisfied — the caller drops the whole call. *)
let refit_arg ~kept ~remap arg (dty : Ast.ty) =
  match (arg, dty) with
  | Prog.Res r, Ast.Ty_res dk ->
    (match List.assoc_opt r remap with
     | Some r' ->
       (match List.assoc_opt r' kept with
        | Some (c : Prog.call) when c.Prog.spec.Ast.ret = Some dk -> Some (Prog.Res r')
        | Some _ | None ->
          (match recent_producer kept dk with
           | Some p -> Some (Prog.Res p)
           | None -> None))
     | None ->
       (* the producer was dropped: retarget to a surviving one *)
       (match recent_producer kept dk with
        | Some p -> Some (Prog.Res p)
        | None -> None))
  | _, Ast.Ty_res dk ->
    (* a degraded scalar in a resource slot (blind-mode seeds): give it
       a real producer or drop the call *)
    (match recent_producer kept dk with
     | Some p -> Some (Prog.Res p)
     | None -> None)
  | Prog.Int v, Ast.Ty_int { min; max } -> Some (Prog.Int (clamp_int v ~min ~max))
  | Prog.Int v, Ast.Ty_flags flags -> Some (Prog.Int (Int64.logand v (flags_union flags)))
  | Prog.Int v, Ast.Ty_ptr { base; size; null_ok } ->
    let lo = Int64.of_int base and hi = Int64.of_int (base + size) in
    if null_ok && Int64.equal v 0L then Some (Prog.Int 0L)
    else if Int64.compare v lo >= 0 && Int64.compare v hi < 0 then Some (Prog.Int v)
    else Some (Prog.Int lo)
  | Prog.Str s, (Ast.Ty_str { max_len } | Ast.Ty_buf { max_len }) ->
    Some (Prog.Str (if String.length s > max_len then String.sub s 0 max_len else s))
  | Prog.Str _, (Ast.Ty_int _ | Ast.Ty_flags _ | Ast.Ty_ptr _) ->
    (* shape-matched slots cannot disagree on str-ness; refuse rather
       than guess if a malformed seed slips through *)
    None
  | Prog.Int _, (Ast.Ty_str { max_len = _ } | Ast.Ty_buf { max_len = _ }) -> None
  | Prog.Res _, (Ast.Ty_int _ | Ast.Ty_flags _ | Ast.Ty_str _ | Ast.Ty_buf _ | Ast.Ty_ptr _)
    ->
    None

let rec refit_args ~kept ~remap args dtys acc =
  match (args, dtys) with
  | [], [] -> Some (List.rev acc)
  | arg :: arest, (_, dty) :: drest ->
    (match refit_arg ~kept ~remap arg dty with
     | None -> None
     | Some arg' -> refit_args ~kept ~remap arest drest (arg' :: acc))
  | _, _ -> None

let retype ~dst_spec ~dst_table (prog : Prog.t) =
  let dst_calls = Synth.index_map dst_spec dst_table in
  (* kmap/rmap: committed src-kind <-> dst-kind mapping; kept:
     surviving calls newest-first as (new position, call); remap: old
     position -> new position. *)
  let kmap = ref [] and rmap = ref [] in
  let kept = ref [] and remap = ref [] in
  let n_kept = ref 0 and n_dropped = ref 0 in
  (* Downstream consumer shapes per producing position, for the
     lookahead. *)
  let consumers = Array.make (List.length prog) [] in
  List.iteri
    (fun _ (c : Prog.call) ->
      List.iter
        (function
          | Prog.Res r when r >= 0 && r < Array.length consumers ->
            consumers.(r) <- consumers.(r) @ [ c.Prog.spec ]
          | _ -> ())
        c.Prog.args)
    prog;
  List.iteri
    (fun old_pos (call : Prog.call) ->
      let search ~lookahead =
        List.find_map
          (fun ((dcall : Ast.call), didx) ->
            match call_compat !kmap !rmap call.Prog.spec dcall with
            | None -> None
            | Some (kmap', rmap') ->
              let consumers_served =
                (not lookahead)
                ||
                match (call.Prog.spec.Ast.ret, dcall.Ast.ret) with
                | Some sk, Some dk ->
                  serves_consumers dst_calls ~consumers:consumers.(old_pos) ~sk ~dk
                | _ -> true
              in
              if not consumers_served then None
              else (
                match
                  refit_args ~kept:!kept ~remap:!remap call.Prog.args dcall.Ast.args []
                with
                | None -> None
                | Some args -> Some (dcall, didx, args, kmap', rmap')))
          dst_calls
      in
      let candidate =
        match call.Prog.spec.Ast.ret with
        | Some sk when consumers.(old_pos) <> [] && not (List.mem_assoc sk !kmap) ->
          (* Prefer a destination kind the downstream consumers can
             live with; fall back to plain shape matching when no
             candidate serves them all. *)
          (match search ~lookahead:true with
           | Some c -> Some c
           | None -> search ~lookahead:false)
        | _ -> search ~lookahead:false
      in
      match candidate with
      | None -> incr n_dropped
      | Some (dcall, didx, args, kmap', rmap') ->
        let new_pos = !n_kept in
        kmap := kmap';
        rmap := rmap';
        kept := (new_pos, { Prog.spec = dcall; api_index = didx; args }) :: !kept;
        remap := (old_pos, new_pos) :: !remap;
        incr n_kept)
    prog;
  if !n_kept = 0 then None
  else begin
    let prog' = List.rev_map snd !kept in
    match Prog.validate prog' with
    | Ok () -> Some { prog = prog'; kept = !n_kept; dropped = !n_dropped }
    | Error _ -> None
  end
