open Eof_hw
open Eof_os
module Machine = Eof_agent.Machine
module Obs = Eof_obs.Obs
module Eof_error = Eof_util.Eof_error

type verdict = Alive | First_observation | Connection_lost | Pc_stalled of int

type error = Eof_error.t

let error_to_string = Eof_error.to_string

type t = {
  threshold : int;
  obs : Obs.t;
  mutable last_pc : int option;
  mutable streak : int;
}

let default_stall_threshold = 3

let create ?obs ?(stall_threshold = default_stall_threshold) () =
  if stall_threshold < 1 then invalid_arg "Liveness.create: stall_threshold must be >= 1";
  let obs = match obs with Some o -> o | None -> Obs.create () in
  { threshold = stall_threshold; obs; last_pc = None; streak = 0 }

let stall_threshold t = t.threshold

let stall_streak t = t.streak

let reset t =
  t.last_pc <- None;
  t.streak <- 0

let verdict_name = function
  | Alive -> "alive"
  | First_observation -> "first-observation"
  | Connection_lost -> "connection-lost"
  | Pc_stalled _ -> "pc-stalled"

let observe t verdict ~pc =
  if Obs.active t.obs then
    Obs.emit t.obs
      (Obs.Event.Liveness_verdict { verdict = verdict_name verdict; pc });
  verdict

let check t machine =
  match Machine.read_pc machine with
  | Error _ -> observe t Connection_lost ~pc:(-1)
  | Ok pc ->
    (match t.last_pc with
     | None ->
       t.last_pc <- Some pc;
       t.streak <- 0;
       observe t First_observation ~pc
     | Some prev when prev = pc ->
       (* One repeated sample is routine — a target parked at a
          breakpoint or polling loop re-reads the same PC. Only a run of
          [threshold] consecutive identical samples is declared a stall. *)
       t.streak <- t.streak + 1;
       if t.streak >= t.threshold then observe t (Pc_stalled pc) ~pc
       else observe t Alive ~pc
     | Some _ ->
       t.last_pc <- Some pc;
       t.streak <- 0;
       observe t Alive ~pc)

let ( let* ) = Result.bind

(* A failed flash step names the partition and the step (erase / which
   chunk / done) in its context — the Session-level retry already
   stamped its "after N attempts" breadcrumb below it, so the boundary
   string reads e.g.
   "reflash partition app: write chunk +0x1800: after 3 attempts:
    debug link timeout". *)
let restore_partitions ?obs machine ~flash_base ~image ~table =
  let obs = match obs with Some o -> o | None -> Machine.obs machine in
  let rec reflash count = function
    | [] -> Ok count
    | (e : Partition.entry) :: rest ->
      let in_partition step r =
        Result.map_error
          (fun err ->
            Eof_error.with_context
              (Printf.sprintf "reflash partition %s" e.Partition.name)
              (Eof_error.with_context step err))
          r
      in
      (match List.assoc_opt e.Partition.name image.Image.blobs with
       | None -> Error (Eof_error.missing_blob e.Partition.name)
       | Some blob ->
         let* () =
           in_partition "erase"
             (Machine.flash_erase machine ~addr:(flash_base + e.Partition.offset)
                ~len:e.Partition.size)
         in
         (* Program in bounded chunks, as a probe constrained by its
            packet size would. The native backend keeps the same chunk
            walk (flash wear and event streams stay comparable) even
            though nothing limits its write size. *)
         let chunk = 2048 in
         let rec program off =
           if off >= String.length blob then Ok ()
           else
             let len = min chunk (String.length blob - off) in
             let* () =
               in_partition
                 (Printf.sprintf "write chunk +0x%x" off)
                 (Machine.flash_write machine
                    ~addr:(flash_base + e.Partition.offset + off)
                    (String.sub blob off len))
             in
             program (off + len)
         in
         (match program 0 with
          | Error _ as err -> err
          | Ok () ->
            let* () = in_partition "done" (Machine.flash_done machine) in
            if Obs.active obs then
              Obs.emit obs
                (Obs.Event.Reflash_partition
                   { partition = e.Partition.name; bytes = String.length blob });
            reflash (count + 1) rest))
  in
  reflash 0 table

let restore ?obs machine ~build =
  let image = Osbuild.image build in
  let flash_base = (Board.profile (Osbuild.board build)).Board.flash_base in
  let obs = match obs with Some o -> o | None -> Machine.obs machine in
  let restored =
    if Machine.has_snapshot machine then
      (* O(dirty pages) fast path: a pristine snapshot is armed (see
         Campaign's snapshot reset policies), so one QSnapshot restore
         replaces the whole partition rewrite. Reported partition count
         stays the table length — the same state is made pristine. *)
      Result.map_error
        (Eof_error.with_context
           (Printf.sprintf "snapshot restore of %d partition(s)"
              (List.length image.Image.table)))
        (Result.map
           (fun (_dirty : int) -> List.length image.Image.table)
           (Machine.snapshot_restore machine))
    else restore_partitions ~obs machine ~flash_base ~image ~table:image.Image.table
  in
  match restored with
  | Error _ as e -> e
  | Ok count ->
    let* () =
      Result.map_error (Eof_error.with_context "post-restore reset")
        (Machine.reset_target machine)
    in
    if Obs.active obs then
      Obs.emit obs (Obs.Event.Restore_done { partitions = count });
    Ok count

let reboot_only machine =
  match Machine.reset_target machine with Ok () -> Ok () | Error e -> Error e
